//go:build race

package rpbeat

// raceEnabled reports whether this test binary carries race instrumentation.
// Timing-ratio assertions (TestBitembKernelSpeedupFloor) skip under it: the
// instrumentation multiplies per-access memory cost unevenly across kernels,
// so the ratio measured is the instrumentation's, not the kernels'.
const raceEnabled = true
