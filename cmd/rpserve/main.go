// Command rpserve serves the embedded heartbeat classifier over HTTP: batch
// classification of whole records and online NDJSON streaming, backed by a
// shared model registry and a worker-pool engine that multiplexes any number
// of concurrent patient streams (internal/pipeline).
//
// Usage:
//
//	rpserve -model default=model.json -addr :8080
//	rpserve -model pc=float.json -model wbsn=embedded.bin -default wbsn
//	rpserve -demo          # no trained model at hand: train a small one
//
// Endpoints:
//
//	GET  /healthz             liveness
//	GET  /v1/models           registered models and their footprints
//	POST /v1/classify         {"model":"...","samples":[...]} -> beats JSON
//	POST /v1/stream?model=m   NDJSON chunks in, NDJSON beats out (chunked)
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"strings"
	"time"

	"rpbeat/internal/beatset"
	"rpbeat/internal/core"
	"rpbeat/internal/fixp"
	"rpbeat/internal/pipeline"
	"rpbeat/internal/serve"
)

func loadModel(path string) (*core.Model, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	if bytes.HasPrefix(data, []byte("RPBT")) {
		return core.ReadBinary(bytes.NewReader(data))
	}
	var m core.Model
	if err := json.Unmarshal(data, &m); err != nil {
		return nil, err
	}
	return &m, nil
}

// trainDemo trains a reduced-scale model so the server can start without any
// artifacts on disk (a few seconds of CPU; for real use, train with
// cmd/rptrain and pass -model).
func trainDemo(seed uint64) (*core.Embedded, error) {
	ds, err := beatset.Build(beatset.Config{Seed: seed, Scale: 0.03})
	if err != nil {
		return nil, err
	}
	m, _, err := core.Train(ds, core.Config{
		Coeffs: 8, Downsample: 4, PopSize: 6, Generations: 3,
		SCGIters: 60, MinARR: 0.9, Seed: seed,
	})
	if err != nil {
		return nil, err
	}
	return m.Quantize(fixp.MFLinear)
}

func main() {
	var (
		addr    = flag.String("addr", ":8080", "listen address")
		workers = flag.Int("workers", 0, "engine worker goroutines (0 = NumCPU)")
		deflt   = flag.String("default", "", "default model name (default: first registered)")
		demo    = flag.Bool("demo", false, "train a small demo model at startup")
	)
	// Flag order decides registration order (and the default model when
	// -default is not given), so keep a slice, not a map.
	type namedModel struct{ name, path string }
	var models []namedModel
	flag.Func("model", "register a model as name=path (repeatable; json or binary)", func(v string) error {
		name, path, ok := strings.Cut(v, "=")
		if !ok || name == "" || path == "" {
			return fmt.Errorf("want name=path, got %q", v)
		}
		models = append(models, namedModel{name, path})
		return nil
	})
	flag.Parse()
	log.SetFlags(0)
	log.SetPrefix("rpserve: ")

	reg := pipeline.NewRegistry()
	var names []string
	for _, nm := range models {
		m, err := loadModel(nm.path)
		if err != nil {
			log.Fatalf("load %s: %v", nm.path, err)
		}
		emb, err := m.Quantize(fixp.MFLinear)
		if err != nil {
			log.Fatalf("quantize %s: %v", nm.path, err)
		}
		if err := reg.Register(nm.name, emb); err != nil {
			log.Fatalf("register %s: %v", nm.name, err)
		}
		log.Printf("model %q: k=%d d=%d downsample=%d, %d bytes on-node",
			nm.name, emb.K, emb.D, emb.Downsample, emb.MemoryBytes())
		names = append(names, nm.name)
	}
	if *demo {
		log.Printf("training demo model (reduced scale)...")
		start := time.Now()
		emb, err := trainDemo(1)
		if err != nil {
			log.Fatalf("demo training: %v", err)
		}
		if err := reg.Register("demo", emb); err != nil {
			log.Fatal(err)
		}
		log.Printf("model %q trained in %v: k=%d d=%d, %d bytes on-node",
			"demo", time.Since(start).Round(time.Millisecond), emb.K, emb.D, emb.MemoryBytes())
		names = append(names, "demo")
	}
	if len(names) == 0 {
		log.Fatal("no models: pass -model name=path (see cmd/rptrain) or -demo")
	}
	def := *deflt
	if def == "" {
		def = names[0]
	}
	if _, err := reg.Get(def); err != nil {
		log.Fatalf("default model: %v", err)
	}

	eng := pipeline.NewEngine(reg, pipeline.EngineConfig{Workers: *workers})
	defer eng.Close()

	log.Printf("serving on %s (default model %q)", *addr, def)
	srv := &http.Server{
		Addr:              *addr,
		Handler:           serve.NewHandler(eng, def),
		ReadHeaderTimeout: 10 * time.Second,
	}
	if err := srv.ListenAndServe(); err != nil {
		log.Fatal(err)
	}
}
