// Command rpserve serves the embedded heartbeat classifier over HTTP: batch
// classification of whole records and online NDJSON streaming, backed by a
// versioned model catalog (internal/catalog) and a worker-pool engine that
// multiplexes any number of concurrent patient streams (internal/pipeline).
//
// Usage:
//
//	rpserve -models-dir ./models -addr :8080   # persistent, admin-managed
//	rpserve -model pc=float.json -model wbsn=embedded.bin -default wbsn
//	rpserve -demo          # no trained model at hand: train a small one
//
// With -models-dir the catalog is durable: models already in the directory
// (e.g. cmd/rptrain output, with their manifest sidecars) are loaded at
// boot, every POST /v1/models upload is persisted, and SIGHUP hot-reloads
// the directory without a restart. -model name=path imports a file into the
// catalog at boot (re-imports of identical bytes are recognized and
// skipped).
//
// Endpoints:
//
//	GET    /healthz             liveness
//	GET    /v1/models           catalog inventory (versions, manifests)
//	POST   /v1/models?name=n    upload a model; next version auto-assigned
//	GET    /v1/models/{ref}     manifest detail ("name" or "name@vN")
//	DELETE /v1/models/{ref}     retire one explicit version
//	PUT    /v1/default          {"model":"ref"} repoint the default
//	POST   /v1/classify         {"model":"...","samples":[...]} -> beats
//	POST   /v1/stream?model=m   NDJSON chunks in, NDJSON beats out (chunked)
//
// Shutdown is graceful: SIGINT/SIGTERM stop the listener, in-flight
// requests (including open streams) get -drain to finish, then the engine
// worker pool is closed.
//
// Overload control (all off by default): -max-streams caps concurrently
// open streams (beyond it new streams shed with the typed server_overloaded
// error while batch stays admitted), -max-batch caps in-flight classify
// requests, and -rate/-burst meter request starts per tenant (X-Tenant
// header, client IP fallback; violations get typed rate_limited). Every
// refusal carries Retry-After — clients see contract errors, never resets.
// cmd/rpload drives a synthetic patient fleet against these defenses and
// measures where the latency knee sits.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"rpbeat/internal/apierr"
	"rpbeat/internal/beatset"
	"rpbeat/internal/catalog"
	"rpbeat/internal/core"
	"rpbeat/internal/pipeline"
	"rpbeat/internal/serve"
)

func loadModel(path string) (*core.Model, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return core.Decode(data)
}

// trainDemo trains a reduced-scale model so the server can start without any
// artifacts on disk (a few seconds of CPU; for real use, train with
// cmd/rptrain and pass -model or drop it in -models-dir).
func trainDemo(seed uint64) (*core.Model, error) {
	ds, err := beatset.Build(beatset.Config{Seed: seed, Scale: 0.03})
	if err != nil {
		return nil, err
	}
	m, _, err := core.Train(ds, core.Config{
		Coeffs: 8, Downsample: 4, PopSize: 6, Generations: 3,
		SCGIters: 60, MinARR: 0.9, Seed: seed,
	})
	return m, err
}

func main() {
	var (
		addr       = flag.String("addr", ":8080", "listen address")
		workers    = flag.Int("workers", 0, "engine worker goroutines (0 = NumCPU)")
		modelsDir  = flag.String("models-dir", "", "persistent catalog directory (loaded at boot, uploads land here, SIGHUP reloads)")
		deflt      = flag.String("default", "", "default model reference (name or name@vN)")
		demo       = flag.Bool("demo", false, "train a small demo model at startup")
		drain      = flag.Duration("drain", 10*time.Second, "graceful-shutdown drain timeout")
		maxStreams = flag.Int("max-streams", 0, "concurrent /v1/stream cap; beyond it new streams shed with typed server_overloaded (0 = unlimited)")
		maxBatch   = flag.Int("max-batch", 0, "in-flight /v1/classify cap, the shed ladder's second rung (0 = unlimited)")
		rate       = flag.Float64("rate", 0, "per-tenant request rate limit, req/s (X-Tenant header or client IP; 0 = unlimited)")
		burst      = flag.Float64("burst", 0, "per-tenant token-bucket depth (0 = max(1, -rate))")
		instance   = flag.String("instance", "", "replica name sent as X-Rpbeat-Instance on every response (how a gateway tier attributes shedding; empty = none)")
	)
	// Flag order decides import order, so keep a slice, not a map.
	type namedModel struct{ name, path string }
	var models []namedModel
	flag.Func("model", "import a model into the catalog as name=path (repeatable; json or binary)", func(v string) error {
		name, path, ok := strings.Cut(v, "=")
		if !ok || name == "" || path == "" {
			return fmt.Errorf("want name=path, got %q", v)
		}
		models = append(models, namedModel{name, path})
		return nil
	})
	flag.Parse()
	log.SetFlags(0)
	log.SetPrefix("rpserve: ")

	var (
		cat *catalog.Catalog
		err error
	)
	if *modelsDir != "" {
		if cat, err = catalog.Open(*modelsDir); err != nil {
			log.Fatalf("models dir: %v", err)
		}
		if n := cat.Snapshot().Len(); n > 0 {
			log.Printf("loaded %d model version(s) from %s", n, *modelsDir)
		}
	} else {
		cat = catalog.New()
	}

	put := func(name string, m *core.Model, what string) {
		man, err := cat.Put(name, m, nil)
		if apierr.IsCode(err, apierr.CodeModelExists) {
			log.Printf("model %q: %s already in catalog (%v)", name, what, err)
			return
		}
		if err != nil {
			log.Fatalf("register %s: %v", what, err)
		}
		e, err := cat.Snapshot().Resolve(man.Ref())
		if err != nil {
			log.Fatalf("resolve %s: %v", man.Ref(), err)
		}
		log.Printf("model %s: k=%d d=%d downsample=%d, %d bytes on-node, digest %.12s…",
			man.Ref(), man.K, man.D, man.Downsample, e.Emb.MemoryBytes(), man.Digest)
	}
	for _, nm := range models {
		m, err := loadModel(nm.path)
		if err != nil {
			log.Fatalf("load %s: %v", nm.path, err)
		}
		put(nm.name, m, nm.path)
	}
	if *demo {
		log.Printf("training demo model (reduced scale)...")
		start := time.Now()
		m, err := trainDemo(1)
		if err != nil {
			log.Fatalf("demo training: %v", err)
		}
		log.Printf("demo model trained in %v", time.Since(start).Round(time.Millisecond))
		put("demo", m, "demo model")
	}
	if *deflt != "" {
		if err := cat.SetDefault(*deflt); err != nil {
			log.Fatalf("default model: %v", err)
		}
	}
	if cat.Snapshot().Len() == 0 && *modelsDir == "" {
		log.Fatal("no models: pass -model name=path, -models-dir (uploads welcome) or -demo")
	}
	if def := cat.Snapshot().Default(); def != "" {
		log.Printf("default model: %s", def)
	} else {
		log.Printf("no default model yet: pick one with PUT /v1/default or upload the first")
	}

	// The engine-level stream cap backs the HTTP gate with a little
	// headroom, so embedded (non-HTTP) streams share the same defense.
	engMax := 0
	if *maxStreams > 0 {
		engMax = *maxStreams + 8
	}
	eng := pipeline.NewEngine(cat, pipeline.EngineConfig{Workers: *workers, MaxStreams: engMax})

	// SIGHUP hot-reloads a directory-backed catalog (e.g. after rsyncing new
	// model files in) without dropping a single stream.
	hup := make(chan os.Signal, 1)
	signal.Notify(hup, syscall.SIGHUP)
	go func() {
		for range hup {
			if cat.Dir() == "" {
				log.Printf("SIGHUP: no -models-dir, nothing to reload")
				continue
			}
			if err := cat.Reload(); err != nil {
				log.Printf("SIGHUP reload failed (catalog unchanged): %v", err)
			} else {
				log.Printf("SIGHUP: reloaded %d model version(s) from %s", cat.Snapshot().Len(), cat.Dir())
			}
		}
	}()

	srv := &http.Server{
		Addr: *addr,
		Handler: serve.NewHandler(eng, serve.HandlerConfig{
			MaxStreams:    *maxStreams,
			MaxBatch:      *maxBatch,
			RatePerTenant: *rate,
			RateBurst:     *burst,
			Instance:      *instance,
		}),
		ReadHeaderTimeout: 10 * time.Second,
	}
	if *maxStreams > 0 || *maxBatch > 0 || *rate > 0 {
		log.Printf("overload control: max-streams=%d max-batch=%d rate=%g/s burst=%g",
			*maxStreams, *maxBatch, *rate, *burst)
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	log.Printf("serving on %s", *addr)

	select {
	case err := <-errc:
		// The listener failed outright (port in use, ...): nothing to drain.
		eng.Close()
		log.Fatal(err)
	case <-ctx.Done():
		stop() // restore default signal behavior: a second ^C kills hard
		log.Printf("shutdown signal; draining in-flight requests (up to %v)", *drain)
		drainCtx, cancel := context.WithTimeout(context.Background(), *drain)
		defer cancel()
		if err := srv.Shutdown(drainCtx); err != nil {
			log.Printf("drain incomplete: %v; closing remaining connections", err)
			srv.Close()
		}
		if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
			log.Printf("listener: %v", err)
		}
		// All stream handlers have returned (and Closed their streams), so
		// the worker pool drains cleanly.
		eng.Close()
		log.Printf("bye")
	}
}
