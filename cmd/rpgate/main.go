// Command rpgate is the gateway tier in front of a pool of rpserve
// backends: it consistent-hashes stream IDs onto backends (per-stream
// pipeline state makes affinity mandatory), relays the binary
// application/x-rpbeat-samples uplink and NDJSON downlink verbatim in both
// directions, health-checks the pool with typed-error-aware backoff, and
// fans catalog mutations (POST /v1/models, DELETE /v1/models/{ref},
// PUT /v1/default) out to every backend with manifest digest verification —
// a backend serving divergent model bytes under a fleet name@vN is refused
// routing until it converges.
//
// Usage:
//
//	rpserve -addr :8081 -demo -instance b1 &
//	rpserve -addr :8082 -demo -instance b2 &
//	rpserve -addr :8083 -demo -instance b3 &
//	rpgate  -addr :8080 -backend http://127.0.0.1:8081 \
//	        -backend http://127.0.0.1:8082 -backend http://127.0.0.1:8083
//	rpload  -server http://127.0.0.1:8080 -streams 200
//
// Clients address the gateway exactly like a single rpserve: same routes,
// same typed error contract, byte-identical responses. Stream affinity
// comes from the X-Stream-Id request header (or a ?stream= query
// parameter); requests without one are balanced round-robin.
//
// A backend dying mid-stream is invisible to the client: the gateway keeps a
// bounded replay journal per stream and, on a retryable failure, reopens on
// the ring successor, replays the journal tail, suppresses beats the client
// already has, and resumes live. With the default -failover-window (the
// deterministic-resync warm-up bound) the post-failover beats are
// bit-identical to an uninterrupted run; -failover-window -1 restores the
// old surface-the-error behavior.
//
// Shutdown is graceful: SIGINT/SIGTERM stop the listener, in-flight relays
// get -drain to finish (backends keep their streams), then the gateway
// closes.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"rpbeat/internal/gate"
)

func main() {
	var (
		addr      = flag.String("addr", ":8080", "listen address")
		replicas  = flag.Int("replicas", 0, "virtual nodes per backend on the hash ring (0 = default)")
		interval  = flag.Duration("health-interval", gate.DefaultHealthInterval, "backend health/catalog probe cadence")
		timeout   = flag.Duration("health-timeout", 2*time.Second, "per-probe timeout")
		failAfter = flag.Int("fail-after", 2, "consecutive transport failures before a backend leaves rotation")
		failover  = flag.Int("failover-window", 0, "replay-journal depth in samples for transparent mid-stream failover (0 = resync warm-up bound, negative = disable failover)")
		drain     = flag.Duration("drain", 10*time.Second, "graceful-shutdown drain timeout")
	)
	var backends []string
	flag.Func("backend", "backend base URL (repeatable), e.g. http://127.0.0.1:8081", func(v string) error {
		if v == "" {
			return fmt.Errorf("empty backend URL")
		}
		backends = append(backends, v)
		return nil
	})
	flag.Parse()
	log.SetFlags(0)
	log.SetPrefix("rpgate: ")

	if len(backends) == 0 {
		log.Fatal("no backends: pass -backend http://host:port at least once")
	}
	g, err := gate.New(gate.Config{
		Backends:       backends,
		Replicas:       *replicas,
		HealthInterval: *interval,
		HealthTimeout:  *timeout,
		FailAfter:      *failAfter,
		FailoverWindow: *failover,
	})
	if err != nil {
		log.Fatal(err)
	}
	// One synchronous round before serving, so the first request already
	// sees real health and an adopted catalog view.
	g.CheckNow(context.Background())
	for _, st := range g.Status().Backends {
		state := "healthy"
		switch {
		case !st.Healthy:
			state = "down (" + st.LastErr + ")"
		case st.Draining:
			state = "draining"
		case st.Divergent:
			state = "divergent (" + st.LastErr + ")"
		}
		log.Printf("backend %s: %s", st.URL, state)
	}

	srv := &http.Server{
		Addr:              *addr,
		Handler:           g.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	log.Printf("gateway on %s over %d backend(s)", *addr, len(backends))

	select {
	case err := <-errc:
		g.Close()
		log.Fatal(err)
	case <-ctx.Done():
		stop()
		log.Printf("shutdown signal; draining in-flight relays (up to %v)", *drain)
		drainCtx, cancel := context.WithTimeout(context.Background(), *drain)
		defer cancel()
		if err := srv.Shutdown(drainCtx); err != nil {
			log.Printf("drain incomplete: %v; closing remaining connections", err)
			srv.Close()
		}
		if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
			log.Printf("listener: %v", err)
		}
		g.Close()
		log.Printf("bye")
	}
}
