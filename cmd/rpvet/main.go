// Command rpvet is the repo's multichecker: it runs the stock `go vet`
// passes (as a subprocess, when a go toolchain is on PATH) and then the
// four rpbeat invariant analyzers — allocfree, apierrcheck, poolcheck,
// snapshotcheck — over the module's packages, exiting nonzero on any
// diagnostic. CI runs it before the test tiers so an invariant violation
// fails fast:
//
//	go run ./cmd/rpvet ./...
//
// Flags:
//
//	-novet    skip the stock `go vet` subprocess (custom analyzers only)
//	-list     print the analyzers and their docs, then exit
//
// False positives are waived per site with a
// `//rpvet:allow <analyzer> -- <reason>` comment on the flagged line or
// the line above it; see internal/analysis.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strings"

	"rpbeat/internal/analysis"
	"rpbeat/internal/analysis/allocfree"
	"rpbeat/internal/analysis/apierrcheck"
	"rpbeat/internal/analysis/poolcheck"
	"rpbeat/internal/analysis/snapshotcheck"
)

var analyzers = []*analysis.Analyzer{
	allocfree.Analyzer,
	apierrcheck.Analyzer,
	poolcheck.Analyzer,
	snapshotcheck.Analyzer,
}

func main() {
	novet := flag.Bool("novet", false, "skip the stock `go vet` passes")
	list := flag.Bool("list", false, "print the analyzers and exit")
	flag.Parse()

	if *list {
		for _, a := range analyzers {
			fmt.Printf("%s: %s\n\n", a.Name, a.Doc)
		}
		return
	}

	if err := run(flag.Args(), *novet); err != nil {
		fmt.Fprintln(os.Stderr, "rpvet:", err)
		os.Exit(1)
	}
}

func run(patterns []string, novet bool) error {
	root, err := moduleRoot()
	if err != nil {
		return err
	}
	modPath, err := analysis.ModuleInfo(root)
	if err != nil {
		return err
	}

	failed := false

	// Stock vet first: it owns the classic mistake classes (printf,
	// copylocks, unreachable, ...). Run as a subprocess so rpvet needs no
	// dependency on vet internals; when no go binary is available (a
	// stripped runtime image), the custom analyzers still run.
	if !novet {
		if gobin, lookErr := exec.LookPath("go"); lookErr == nil {
			args := append([]string{"vet"}, patterns...)
			if len(patterns) == 0 {
				args = append(args, "./...")
			}
			cmd := exec.Command(gobin, args...)
			cmd.Dir = root
			cmd.Stdout = os.Stdout
			cmd.Stderr = os.Stderr
			if err := cmd.Run(); err != nil {
				failed = true
			}
		} else {
			fmt.Fprintln(os.Stderr, "rpvet: no go binary on PATH; skipping stock vet passes")
		}
	}

	paths, err := analysis.ExpandPatterns(modPath, root, patterns)
	if err != nil {
		return err
	}
	loader := analysis.NewLoader(modPath, root)
	var pkgs []*analysis.Package
	for _, p := range paths {
		pkg, err := loader.Load(p)
		if err != nil {
			return fmt.Errorf("loading %s: %w", p, err)
		}
		pkgs = append(pkgs, pkg)
	}

	diags, err := analysis.RunAnalyzers(analyzers, pkgs)
	if err != nil {
		return err
	}
	for _, d := range diags {
		pos := loader.Fset.Position(d.Pos)
		name := pos.Filename
		if rel, err := filepath.Rel(root, name); err == nil && !strings.HasPrefix(rel, "..") {
			name = rel
		}
		fmt.Fprintf(os.Stderr, "%s:%d:%d: %s: %s\n", name, pos.Line, pos.Column, d.Analyzer, d.Message)
		failed = true
	}

	if failed {
		os.Exit(1)
	}
	return nil
}

// moduleRoot walks up from the working directory to the nearest go.mod.
func moduleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod above %s", dir)
		}
		dir = parent
	}
}
