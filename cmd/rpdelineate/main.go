// Command rpdelineate runs 3-lead MMD delineation over a WFDB record and
// prints the fiducial points of every beat (onset/peak/end of the P, QRS and
// T waves), the "detailed analysis" the RP classifier gates on the node.
//
// Usage:
//
//	rpdelineate -db ./db -record 100
//	rpdelineate -db ./db -record 207 -limit 10
package main

import (
	"flag"
	"fmt"
	"log"

	"rpbeat/internal/delin"
	"rpbeat/internal/peak"
	"rpbeat/internal/sigdsp"
	"rpbeat/internal/wfdb"
)

func main() {
	var (
		db     = flag.String("db", "db", "database directory (rpgen output)")
		record = flag.String("record", "100", "record name")
		limit  = flag.Int("limit", 20, "print at most this many beats (0 = all)")
	)
	flag.Parse()
	log.SetFlags(0)
	log.SetPrefix("rpdelineate: ")

	rec, err := wfdb.Load(*db, *record)
	if err != nil {
		log.Fatal(err)
	}
	cfg := sigdsp.DefaultBaselineConfig(rec.Fs)
	leads := make([][]float64, 0, len(rec.Signals))
	for _, sig := range rec.Signals {
		mv := make([]float64, len(sig))
		for i, v := range sig {
			mv[i] = float64(v-rec.ADCZero) / rec.Gain
		}
		leads = append(leads, sigdsp.FilterECG(mv, cfg))
	}

	peaks := peak.Detect(leads[0], peak.Config{Fs: rec.Fs})
	fids := delin.DelineateMultiLead(leads, peaks, delin.Config{Fs: rec.Fs})
	fmt.Printf("record %s: %d beats delineated (%d leads)\n", rec.Name, len(fids), len(leads))

	fmtPoint := func(v int) string {
		if v < 0 {
			return "     -"
		}
		return fmt.Sprintf("%6d", v)
	}
	fmt.Println("beat    POn  PPeak   POff  QRSOn  RPeak QRSOff    TOn  TPeak   TOff  found")
	for i, f := range fids {
		if *limit > 0 && i >= *limit {
			fmt.Printf("... (%d more beats)\n", len(fids)-i)
			break
		}
		fmt.Printf("%4d %s %s %s %s %s %s %s %s %s   %d/9\n",
			i,
			fmtPoint(f.POn), fmtPoint(f.PPeak), fmtPoint(f.POff),
			fmtPoint(f.QRSOn), fmtPoint(f.RPeak), fmtPoint(f.QRSOff),
			fmtPoint(f.TOn), fmtPoint(f.TPeak), fmtPoint(f.TOff),
			f.Count())
	}

	// Aggregate statistics.
	var pFound, tFound, qrsComplete int
	var qrsDurSum float64
	var qrsDurN int
	for _, f := range fids {
		if f.PPeak >= 0 {
			pFound++
		}
		if f.TPeak >= 0 {
			tFound++
		}
		if f.QRSOn >= 0 && f.QRSOff > f.QRSOn {
			qrsComplete++
			qrsDurSum += float64(f.QRSOff-f.QRSOn) / rec.Fs * 1000
			qrsDurN++
		}
	}
	n := len(fids)
	if n > 0 {
		fmt.Printf("\nP wave found: %.1f%%, T wave: %.1f%%, complete QRS: %.1f%%\n",
			100*float64(pFound)/float64(n), 100*float64(tFound)/float64(n), 100*float64(qrsComplete)/float64(n))
	}
	if qrsDurN > 0 {
		fmt.Printf("mean QRS duration: %.0f ms\n", qrsDurSum/float64(qrsDurN))
	}
}
