package main

// The -json mode: a machine-readable benchmark harness. It runs the node
// kernels (projection in all three matrix representations, the integer
// classifier), the end-to-end serving paths (streaming Pipeline.Push,
// batch classification, the multi-stream engine) and the HTTP wire layer
// (per-codec request decoding, live-server request rates, transport sizes
// — see serve.go) under testing.Benchmark, and writes the results as
// BENCH_<n>.json — the repository's tracked performance trajectory (see
// BENCHMARKS.md for the schema and how each entry maps to the paper).

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"sync"
	"testing"
	"time"

	"rpbeat/internal/apierr"
	"rpbeat/internal/bitemb"
	"rpbeat/internal/catalog"
	"rpbeat/internal/core"
	"rpbeat/internal/ecgsyn"
	"rpbeat/internal/fixp"
	"rpbeat/internal/nfc"
	"rpbeat/internal/pipeline"
	"rpbeat/internal/rng"
	"rpbeat/internal/rp"
)

// benchSchema identifies the BENCH_*.json format.
const benchSchema = "rpbeat-bench-v1"

// benchFile is the root JSON document.
type benchFile struct {
	Schema    string            `json:"schema"`
	Created   string            `json:"created"` // RFC 3339, UTC
	GoVersion string            `json:"go_version"`
	GOOS      string            `json:"goos"`
	GOARCH    string            `json:"goarch"`
	NumCPU    int               `json:"num_cpu"`
	Results   []benchResult     `json:"benchmarks"`
	Pipeline  pipelineMetrics   `json:"pipeline"`
	Engine    engineBench       `json:"engine"`
	Serve     serveBenchBlock   `json:"serve"`
	Fleet     fleetBenchBlock   `json:"fleet"`
	Gateway   gatewayBenchBlock `json:"gateway"`
	Matrix    matrixBytes       `json:"matrix_bytes"`
	Heads     headBytes         `json:"head_bytes"`
}

// benchResult is one testing.Benchmark run.
type benchResult struct {
	Name        string  `json:"name"`
	Iterations  int     `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
}

// pipelineMetrics are the throughput figures derived from the streaming
// benchmark: how fast one core consumes a 360 Hz single-lead stream.
type pipelineMetrics struct {
	SamplesPerSec float64 `json:"samples_per_sec"`
	BeatsPerSec   float64 `json:"beats_per_sec"`
	// RealtimeStreams is SamplesPerSec / 360: how many concurrent real-time
	// patient streams one core sustains.
	RealtimeStreams float64 `json:"realtime_streams"`
	AllocsPerPush   int64   `json:"allocs_per_push"`
}

// engineBench is the multi-stream serving experiment family: how the
// pipeline.Engine scheduler behaves when many concurrent patient streams
// share a worker pool (the question BENCH snapshots could not answer while
// only single-pipeline numbers existed).
type engineBench struct {
	// SendAllocsPerOp is the steady-state allocation count of one
	// Stream.Send admitted, copied into a pooled chunk and drained by a
	// worker. Must stay 0 (tested invariant, TestEngineSendZeroAlloc).
	SendAllocsPerOp int64 `json:"send_allocs_per_op"`
	// Sweep is the worker-scaling experiment: aggregate throughput and
	// chunk latency at increasing pool sizes. Scaling across rows is only
	// meaningful when num_cpu provides the cores; on a single-core host the
	// rows document (the absence of) contention overhead instead.
	Sweep []engineMetrics `json:"sweep"`
}

// engineMetrics is one engine sweep row: N concurrent streams over M
// workers.
type engineMetrics struct {
	Workers int `json:"workers"`
	Streams int `json:"streams"`
	// SamplesPerSec is the aggregate drain rate across all streams.
	SamplesPerSec float64 `json:"samples_per_sec"`
	// RealtimeStreams is SamplesPerSec / 360: how many concurrent real-time
	// patient streams this worker count sustains.
	RealtimeStreams float64 `json:"realtime_streams"`
	// ChunkP50Ns / ChunkP99Ns are service-latency percentiles of a 360-sample
	// (one second) probe chunk — Send to fully drained — while the other
	// streams keep the pool saturated.
	ChunkP50Ns float64 `json:"chunk_p50_ns"`
	ChunkP99Ns float64 `json:"chunk_p99_ns"`
}

// matrixBytes records the storage cost of the paper-configuration (8×50)
// projection matrix in each representation (DESIGN.md, "kernel memory
// layouts").
type matrixBytes struct {
	K        int `json:"k"`
	D        int `json:"d"`
	Dense    int `json:"dense"`
	Packed   int `json:"packed"`
	Sparse   int `json:"sparse"`
	NonZeros int `json:"non_zeros"`
}

// headBytes records the storage cost of the two classifier heads at the
// paper configuration (k=8, d=50): the head parameter tables above the
// projection matrix, and the full serialized binary model each ships as.
type headBytes struct {
	K                 int `json:"k"`
	FuzzyTable        int `json:"fuzzy_table"`
	BitembTable       int `json:"bitemb_table"`
	FuzzyModelBinary  int `json:"fuzzy_model_binary"`
	BitembModelBinary int `json:"bitemb_model_binary"`
}

// benchModel fabricates a structurally valid model without running the GA:
// kernel timing is data-independent (the integer pipeline is branch-free
// except defuzzification), so a random matrix and plausible MF parameters
// measure the same code a trained model runs.
func benchModel(r *rng.Rand, k, d, downsample int) *core.Model {
	mf := nfc.NewParams(k)
	for i := range mf.C {
		mf.C[i] = float64(r.Intn(4000) - 2000)
		mf.Sigma[i] = 200 + float64(r.Intn(800))
	}
	return &core.Model{
		K: k, D: d, Downsample: downsample,
		P:  rp.NewRandom(r, k, d),
		MF: mf, AlphaTrain: 0.1, MinARR: 0.97,
	}
}

// benchEmbedded is benchModel quantized to the integer serving form.
func benchEmbedded(r *rng.Rand, k, d, downsample int) (*core.Embedded, error) {
	return benchModel(r, k, d, downsample).Quantize(fixp.MFLinear)
}

// benchBitembModel fabricates a structurally valid binary-embedding model
// without running the GA: a very-sparse projection (the family the head
// trains over) and a random but consistent threshold/prototype/radius set.
func benchBitembModel(r *rng.Rand, k, d, downsample int) *core.Model {
	bp := &bitemb.Params{K: k, Thresholds: make([]int32, k)}
	for j := range bp.Thresholds {
		bp.Thresholds[j] = int32(r.Intn(4000) - 2000)
	}
	w := bitemb.Words(k)
	for l := range bp.Protos {
		bp.Protos[l] = make([]uint64, w)
		for j := 0; j < k; j++ {
			if r.Intn(2) == 1 {
				bp.Protos[l][j/64] |= 1 << uint(j&63)
			}
		}
		bp.Radii[l] = uint16(k)
	}
	return &core.Model{
		Kind: core.KindBitemb, K: k, D: d, Downsample: downsample,
		P:   rp.NewVerySparse(r, k, d),
		Bit: bp, AlphaTrain: 0.1, MinARR: 0.97,
	}
}

func benchBitembEmbedded(r *rng.Rand, k, d, downsample int) (*core.Embedded, error) {
	return benchBitembModel(r, k, d, downsample).Quantize(fixp.MFLinear)
}

// record converts a testing.BenchmarkResult into the JSON row.
func record(name string, res testing.BenchmarkResult) benchResult {
	return benchResult{
		Name:        name,
		Iterations:  res.N,
		NsPerOp:     float64(res.T.Nanoseconds()) / float64(res.N),
		AllocsPerOp: res.AllocsPerOp(),
		BytesPerOp:  res.AllocedBytesPerOp(),
	}
}

// benchInput draws one beat-window-sized input of zero-centered 11-bit
// counts. Centered, not unipolar: the classify kernels run on filtered,
// baseline-removed windows that oscillate around zero, and the fuzzy head's
// membership evaluation is data-dependent (segment selection), so an
// unipolar draw would measure an input distribution the node never sees.
func benchInput(r *rng.Rand, d int) []int32 {
	v := make([]int32, d)
	for i := range v {
		v[i] = int32(r.Intn(2048)) - 1024
	}
	return v
}

// runJSONBench runs the suite and writes BENCH_<n>.json under dir, returning
// the path written.
func runJSONBench(dir string) (string, error) {
	var out benchFile
	out.Schema = benchSchema
	out.Created = time.Now().UTC().Format(time.RFC3339)
	out.GoVersion = runtime.Version()
	out.GOOS = runtime.GOOS
	out.GOARCH = runtime.GOARCH
	out.NumCPU = runtime.NumCPU()

	// --- projection kernels, paper configuration (k=8, d=50) and the
	// largest Table II configuration (k=32) ---
	for _, k := range []int{8, 32} {
		const d = 50
		r := rng.New(1)
		m := rp.NewRandom(r, k, d)
		p := rp.Pack(m)
		s := rp.NewSparse(m)
		v := benchInput(r, d)
		u := make([]int32, k)
		name := fmt.Sprintf("%dx%d", k, d)
		out.Results = append(out.Results,
			record("kernel/projection_dense_"+name, testing.Benchmark(func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					m.ProjectIntInto(v, u)
				}
			})),
			record("kernel/projection_packed_"+name, testing.Benchmark(func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					p.ProjectIntInto(v, u)
				}
			})),
			record("kernel/projection_sparse_"+name, testing.Benchmark(func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					s.ProjectIntInto(v, u)
				}
			})),
		)
		if k == 8 {
			out.Matrix = matrixBytes{
				K: k, D: d,
				Dense:    m.ByteSize(),
				Packed:   p.ByteSize(),
				Sparse:   s.ByteSize(),
				NonZeros: m.NonZeros(),
			}
		}
	}

	// --- integer classifier per beat (projection + grades + fuzzify +
	// defuzzify, the paper's per-beat node work after windowing), and the
	// binary-embedding head's fused project+threshold+popcount kernel on the
	// same geometry ---
	{
		r := rng.New(2)
		emb, err := benchEmbedded(r, 8, 50, 4)
		if err != nil {
			return "", err
		}
		bemb, err := benchBitembEmbedded(r, 8, 50, 4)
		if err != nil {
			return "", err
		}
		v := benchInput(r, 50)
		scr := core.NewScratch(emb)
		bscr := core.NewScratch(bemb)
		u := make([]int32, bemb.K)
		bemb.ProjectIntInto(v, u)
		code := make([]uint64, bitemb.Words(bemb.K))
		out.Results = append(out.Results,
			record("kernel/classify_per_beat_8x50", testing.Benchmark(func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					emb.ClassifyInto(v, scr)
				}
			})),
			record("kernel/classify_per_beat_bitemb_8x50", testing.Benchmark(func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					bemb.ClassifyInto(v, bscr)
				}
			})),
			record("kernel/bitemb_pack_8", testing.Benchmark(func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					bemb.Bit.PackInto(u, code)
				}
			})),
		)

		fm := benchModel(rng.New(2), 8, 50, 4)
		bm := benchBitembModel(rng.New(2), 8, 50, 4)
		var fbuf, bbuf bytes.Buffer
		if err := fm.WriteBinary(&fbuf); err != nil {
			return "", err
		}
		if err := bm.WriteBinary(&bbuf); err != nil {
			return "", err
		}
		out.Heads = headBytes{
			K:                 8,
			FuzzyTable:        emb.Cls.TableBytes(),
			BitembTable:       bemb.Bit.TableBytes(),
			FuzzyModelBinary:  fbuf.Len(),
			BitembModelBinary: bbuf.Len(),
		}
	}

	// --- end-to-end streaming: Pipeline.Push steady state ---
	{
		r := rng.New(3)
		emb, err := benchEmbedded(r, 8, 50, 4)
		if err != nil {
			return "", err
		}
		rec := ecgsyn.Synthesize(ecgsyn.RecordSpec{Name: "bench", Seconds: 60, Seed: 11, PVCRate: 0.1})
		lead := rec.Leads[0]
		var beats int
		var pushRes testing.BenchmarkResult
		pushRes = testing.Benchmark(func(b *testing.B) {
			pipe, err := pipeline.New(emb, pipeline.Config{})
			if err != nil {
				b.Fatal(err)
			}
			for _, s := range lead { // warm-up: rings and FIFOs at capacity
				pipe.Push(s)
			}
			beats = 0
			next := 0
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				beats += len(pipe.Push(lead[next]))
				next++
				if next == len(lead) {
					next = 0
				}
			}
		})
		out.Results = append(out.Results, record("pipeline/push_steady_state", pushRes))
		secs := pushRes.T.Seconds()
		out.Pipeline = pipelineMetrics{
			SamplesPerSec:   float64(pushRes.N) / secs,
			BeatsPerSec:     float64(beats) / secs,
			RealtimeStreams: float64(pushRes.N) / secs / ecgsyn.Fs,
			AllocsPerPush:   pushRes.AllocsPerOp(),
		}

		// --- end-to-end batch: the /v1/classify serving shape ---
		var scratch pipeline.BatchScratch
		out.Results = append(out.Results,
			record("pipeline/batch_classify_30s", testing.Benchmark(func(b *testing.B) {
				half := lead[:len(lead)/2] // 30 s of the 60 s record
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					if _, err := pipeline.BatchClassifyInto(context.Background(), emb, half, pipeline.Config{}, &scratch); err != nil {
						b.Fatal(err)
					}
				}
			})))
	}

	// --- engine scheduler: many concurrent streams over a worker pool, the
	// multi-core serving shape (sharded run queues + pooled Send chunks) ---
	{
		r := rng.New(4)
		cat := catalog.New()
		if _, err := cat.Put("bench", benchModel(r, 8, 50, 4), nil); err != nil {
			return "", err
		}
		lead := ecgsyn.Synthesize(ecgsyn.RecordSpec{Name: "eng", Seconds: 30, Seed: 17, PVCRate: 0.1}).Leads[0]

		// Steady-state Send: admission + pooled copy + worker drain,
		// synchronized per op so allocs/op is exact.
		sendRes, err := benchEngineSend(cat, lead)
		if err != nil {
			return "", err
		}
		out.Results = append(out.Results, record("engine/send_steady_state", sendRes))
		out.Engine.SendAllocsPerOp = sendRes.AllocsPerOp()

		for _, workers := range workerCounts() {
			streams := 4 * workers
			met, err := engineSweepRow(cat, workers, streams, lead)
			if err != nil {
				return "", err
			}
			out.Engine.Sweep = append(out.Engine.Sweep, met)
			out.Results = append(out.Results, benchResult{
				Name:       fmt.Sprintf("engine/throughput_w%d_s%d", workers, streams),
				Iterations: streams * sweepRounds(streams, len(lead)) * len(lead),
				NsPerOp:    1e9 / met.SamplesPerSec, // per aggregate sample
			})
		}
	}

	// --- serving wire layer: request decode, response encode and transport
	// size per codec (stdlib JSON vs fast JSON vs binary frames) ---
	if err := runServeBench(&out); err != nil {
		return "", err
	}

	// --- fleet load: the whole stack under a synthetic patient fleet, up
	// through the overload knee (see fleet.go) ---
	if err := runFleetBench(&out); err != nil {
		return "", err
	}

	// --- gateway tier: the same fleet through rpgate over three capped
	// backends — goodput scaling and typed fleet-level shedding (gateway.go) ---
	if err := runGatewayBench(&out); err != nil {
		return "", err
	}

	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", err
	}
	path, err := nextBenchPath(dir)
	if err != nil {
		return "", err
	}
	data, err := json.MarshalIndent(&out, "", "  ")
	if err != nil {
		return "", err
	}
	data = append(data, '\n')
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return "", err
	}
	return path, nil
}

// workerCounts is the engine sweep's pool sizes: powers of two up to 4 plus
// the host's core count, deduplicated and ascending — enough to show the
// scaling trend on multi-core hardware without making the suite slow.
func workerCounts() []int {
	set := map[int]bool{1: true, 2: true, 4: true, runtime.NumCPU(): true}
	counts := make([]int, 0, len(set))
	for w := range set {
		counts = append(counts, w)
	}
	sort.Ints(counts)
	return counts
}

// sweepRounds sizes one sweep row's work: enough record repetitions per
// stream that the row measures steady-state draining (~1.2M samples total),
// never fewer than one.
func sweepRounds(streams, leadLen int) int {
	rounds := 1_200_000 / (streams * leadLen)
	if rounds < 1 {
		rounds = 1
	}
	return rounds
}

// sendRetry forwards one chunk, retrying (with a scheduler yield) while the
// per-stream queue is full — the producer-side backpressure loop every
// engine client runs.
func sendRetry(ctx context.Context, st *pipeline.Stream, chunk []int32) error {
	for {
		err := st.Send(ctx, chunk)
		if !apierr.IsCode(err, apierr.CodeStreamOverloaded) {
			return err
		}
		runtime.Gosched()
	}
}

// benchEngineSend measures one synchronized Send: admission, the copy into a
// pooled chunk buffer and the worker's drain. The drain-wait makes the
// number a per-chunk service time and the allocation count exact (0 is the
// tested invariant).
func benchEngineSend(cat *catalog.Catalog, lead []int32) (testing.BenchmarkResult, error) {
	eng := pipeline.NewEngine(cat, pipeline.EngineConfig{Workers: 1})
	defer eng.Close()
	ctx := context.Background()
	st, err := eng.Open(ctx, "", pipeline.Config{}, nil)
	if err != nil {
		return testing.BenchmarkResult{}, err
	}
	const chunk = 720
	for off := 0; off+chunk <= len(lead); off += chunk { // warm-up pass
		if err := sendRetry(ctx, st, lead[off:off+chunk]); err != nil {
			return testing.BenchmarkResult{}, err
		}
	}
	for st.PendingSamples() > 0 {
		runtime.Gosched()
	}
	res := testing.Benchmark(func(b *testing.B) {
		next := 0
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if err := st.Send(ctx, lead[next:next+chunk]); err != nil {
				b.Fatal(err)
			}
			next += chunk
			if next+chunk > len(lead) {
				next = 0
			}
			for st.PendingSamples() > 0 {
				runtime.Gosched()
			}
		}
	})
	return res, st.Close()
}

// engineSweepRow runs one worker-scaling row: aggregate drain throughput
// with every stream saturating its queue, then chunk service latency
// percentiles probed while the other streams keep the pool busy.
func engineSweepRow(cat *catalog.Catalog, workers, streams int, lead []int32) (engineMetrics, error) {
	met := engineMetrics{Workers: workers, Streams: streams}
	// A serving-realistic queue bound (~45 s of one lead per stream): deep
	// enough that throughput is drain-limited, shallow enough that the
	// latency probe measures scheduling, not minutes of queued backlog.
	eng := pipeline.NewEngine(cat, pipeline.EngineConfig{Workers: workers, MaxPending: 16384})
	defer eng.Close()
	ctx := context.Background()
	errc := make(chan error, 2*streams+2)

	// Aggregate throughput: elapsed spans the first Send to the last Close
	// (Close waits for the stream's drain), so the rate is the pool's.
	const chunk = 1024
	rounds := sweepRounds(streams, len(lead))
	var wg sync.WaitGroup
	start := time.Now()
	for i := 0; i < streams; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			st, err := eng.Open(ctx, "", pipeline.Config{}, nil)
			if err != nil {
				errc <- err
				return
			}
			for r := 0; r < rounds; r++ {
				for off := 0; off < len(lead); {
					end := min(off+chunk, len(lead))
					if err := sendRetry(ctx, st, lead[off:end]); err != nil {
						errc <- err
						return
					}
					off = end
				}
			}
			if err := st.Close(); err != nil {
				errc <- err
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)
	select {
	case err := <-errc:
		return met, err
	default:
	}
	total := float64(streams * rounds * len(lead))
	met.SamplesPerSec = total / elapsed.Seconds()
	met.RealtimeStreams = met.SamplesPerSec / ecgsyn.Fs

	// Chunk latency: one probe stream measuring Send-to-drained while
	// streams-1 load streams keep every worker saturated.
	stop := make(chan struct{})
	var lwg sync.WaitGroup
	for i := 0; i < streams-1; i++ {
		lwg.Add(1)
		go func() {
			defer lwg.Done()
			st, err := eng.Open(ctx, "", pipeline.Config{}, nil)
			if err != nil {
				errc <- err
				return
			}
			defer st.Close()
			off := 0
			for {
				select {
				case <-stop:
					return
				default:
				}
				end := min(off+chunk, len(lead))
				if err := sendRetry(ctx, st, lead[off:end]); err != nil {
					errc <- err
					return
				}
				if off = end; off == len(lead) {
					off = 0
				}
			}
		}()
	}
	probe, err := eng.Open(ctx, "", pipeline.Config{}, nil)
	if err != nil {
		close(stop)
		lwg.Wait()
		return met, err
	}
	const (
		probes     = 100
		probeChunk = 360 // one second of one 360 Hz lead
	)
	lat := make([]float64, 0, probes)
	off := 0
	for len(lat) < probes {
		t0 := time.Now()
		if err := sendRetry(ctx, probe, lead[off:off+probeChunk]); err != nil {
			close(stop)
			lwg.Wait()
			return met, err
		}
		for probe.PendingSamples() > 0 {
			runtime.Gosched()
		}
		lat = append(lat, float64(time.Since(t0).Nanoseconds()))
		if off += probeChunk; off+probeChunk > len(lead) {
			off = 0
		}
	}
	if err := probe.Close(); err != nil {
		errc <- err
	}
	close(stop)
	lwg.Wait()
	select {
	case err := <-errc:
		return met, err
	default:
	}
	sort.Float64s(lat)
	met.ChunkP50Ns = lat[len(lat)/2]
	met.ChunkP99Ns = lat[min(len(lat)-1, len(lat)*99/100)]
	return met, nil
}

// nextBenchPath returns dir/BENCH_<n>.json for the smallest n >= 1 that does
// not exist yet, so successive runs append to the trajectory instead of
// overwriting it.
func nextBenchPath(dir string) (string, error) {
	for n := 1; n < 100000; n++ {
		path := filepath.Join(dir, fmt.Sprintf("BENCH_%d.json", n))
		if _, err := os.Stat(path); os.IsNotExist(err) {
			return path, nil
		} else if err != nil {
			return "", err
		}
	}
	return "", fmt.Errorf("rpbench: no free BENCH_<n>.json slot under %s", dir)
}
