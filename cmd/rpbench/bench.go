package main

// The -json mode: a machine-readable benchmark harness. It runs the node
// kernels (projection in all three matrix representations, the integer
// classifier) and the end-to-end serving paths (streaming Pipeline.Push,
// batch classification) under testing.Benchmark, and writes the results as
// BENCH_<n>.json — the repository's tracked performance trajectory (see
// BENCHMARKS.md for the schema and how each entry maps to the paper).

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"testing"
	"time"

	"rpbeat/internal/core"
	"rpbeat/internal/ecgsyn"
	"rpbeat/internal/fixp"
	"rpbeat/internal/nfc"
	"rpbeat/internal/pipeline"
	"rpbeat/internal/rng"
	"rpbeat/internal/rp"
)

// benchSchema identifies the BENCH_*.json format.
const benchSchema = "rpbeat-bench-v1"

// benchFile is the root JSON document.
type benchFile struct {
	Schema    string          `json:"schema"`
	Created   string          `json:"created"` // RFC 3339, UTC
	GoVersion string          `json:"go_version"`
	GOOS      string          `json:"goos"`
	GOARCH    string          `json:"goarch"`
	NumCPU    int             `json:"num_cpu"`
	Results   []benchResult   `json:"benchmarks"`
	Pipeline  pipelineMetrics `json:"pipeline"`
	Matrix    matrixBytes     `json:"matrix_bytes"`
}

// benchResult is one testing.Benchmark run.
type benchResult struct {
	Name        string  `json:"name"`
	Iterations  int     `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
}

// pipelineMetrics are the throughput figures derived from the streaming
// benchmark: how fast one core consumes a 360 Hz single-lead stream.
type pipelineMetrics struct {
	SamplesPerSec float64 `json:"samples_per_sec"`
	BeatsPerSec   float64 `json:"beats_per_sec"`
	// RealtimeStreams is SamplesPerSec / 360: how many concurrent real-time
	// patient streams one core sustains.
	RealtimeStreams float64 `json:"realtime_streams"`
	AllocsPerPush   int64   `json:"allocs_per_push"`
}

// matrixBytes records the storage cost of the paper-configuration (8×50)
// projection matrix in each representation (DESIGN.md, "kernel memory
// layouts").
type matrixBytes struct {
	K        int `json:"k"`
	D        int `json:"d"`
	Dense    int `json:"dense"`
	Packed   int `json:"packed"`
	Sparse   int `json:"sparse"`
	NonZeros int `json:"non_zeros"`
}

// benchEmbedded fabricates a structurally valid quantized classifier without
// running the GA: kernel timing is data-independent (the integer pipeline is
// branch-free except defuzzification), so a random matrix and plausible MF
// parameters measure the same code the trained model runs.
func benchEmbedded(r *rng.Rand, k, d, downsample int) (*core.Embedded, error) {
	mf := nfc.NewParams(k)
	for i := range mf.C {
		mf.C[i] = float64(r.Intn(4000) - 2000)
		mf.Sigma[i] = 200 + float64(r.Intn(800))
	}
	m := &core.Model{
		K: k, D: d, Downsample: downsample,
		P:  rp.NewRandom(r, k, d),
		MF: mf, AlphaTrain: 0.1, MinARR: 0.97,
	}
	return m.Quantize(fixp.MFLinear)
}

// record converts a testing.BenchmarkResult into the JSON row.
func record(name string, res testing.BenchmarkResult) benchResult {
	return benchResult{
		Name:        name,
		Iterations:  res.N,
		NsPerOp:     float64(res.T.Nanoseconds()) / float64(res.N),
		AllocsPerOp: res.AllocsPerOp(),
		BytesPerOp:  res.AllocedBytesPerOp(),
	}
}

// benchInput draws one beat-window-sized input of 11-bit ADC counts.
func benchInput(r *rng.Rand, d int) []int32 {
	v := make([]int32, d)
	for i := range v {
		v[i] = int32(r.Intn(2048))
	}
	return v
}

// runJSONBench runs the suite and writes BENCH_<n>.json under dir, returning
// the path written.
func runJSONBench(dir string) (string, error) {
	var out benchFile
	out.Schema = benchSchema
	out.Created = time.Now().UTC().Format(time.RFC3339)
	out.GoVersion = runtime.Version()
	out.GOOS = runtime.GOOS
	out.GOARCH = runtime.GOARCH
	out.NumCPU = runtime.NumCPU()

	// --- projection kernels, paper configuration (k=8, d=50) and the
	// largest Table II configuration (k=32) ---
	for _, k := range []int{8, 32} {
		const d = 50
		r := rng.New(1)
		m := rp.NewRandom(r, k, d)
		p := rp.Pack(m)
		s := rp.NewSparse(m)
		v := benchInput(r, d)
		u := make([]int32, k)
		name := fmt.Sprintf("%dx%d", k, d)
		out.Results = append(out.Results,
			record("kernel/projection_dense_"+name, testing.Benchmark(func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					m.ProjectIntInto(v, u)
				}
			})),
			record("kernel/projection_packed_"+name, testing.Benchmark(func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					p.ProjectIntInto(v, u)
				}
			})),
			record("kernel/projection_sparse_"+name, testing.Benchmark(func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					s.ProjectIntInto(v, u)
				}
			})),
		)
		if k == 8 {
			out.Matrix = matrixBytes{
				K: k, D: d,
				Dense:    m.ByteSize(),
				Packed:   p.ByteSize(),
				Sparse:   s.ByteSize(),
				NonZeros: m.NonZeros(),
			}
		}
	}

	// --- integer classifier per beat (projection + grades + fuzzify +
	// defuzzify, the paper's per-beat node work after windowing) ---
	{
		r := rng.New(2)
		emb, err := benchEmbedded(r, 8, 50, 4)
		if err != nil {
			return "", err
		}
		v := benchInput(r, 50)
		u := make([]int32, emb.K)
		grades := make([]uint16, emb.Cls.GradeBufLen())
		out.Results = append(out.Results,
			record("kernel/classify_per_beat_8x50", testing.Benchmark(func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					emb.ClassifyInto(v, u, grades)
				}
			})))
	}

	// --- end-to-end streaming: Pipeline.Push steady state ---
	{
		r := rng.New(3)
		emb, err := benchEmbedded(r, 8, 50, 4)
		if err != nil {
			return "", err
		}
		rec := ecgsyn.Synthesize(ecgsyn.RecordSpec{Name: "bench", Seconds: 60, Seed: 11, PVCRate: 0.1})
		lead := rec.Leads[0]
		var beats int
		var pushRes testing.BenchmarkResult
		pushRes = testing.Benchmark(func(b *testing.B) {
			pipe, err := pipeline.New(emb, pipeline.Config{})
			if err != nil {
				b.Fatal(err)
			}
			for _, s := range lead { // warm-up: rings and FIFOs at capacity
				pipe.Push(s)
			}
			beats = 0
			next := 0
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				beats += len(pipe.Push(lead[next]))
				next++
				if next == len(lead) {
					next = 0
				}
			}
		})
		out.Results = append(out.Results, record("pipeline/push_steady_state", pushRes))
		secs := pushRes.T.Seconds()
		out.Pipeline = pipelineMetrics{
			SamplesPerSec:   float64(pushRes.N) / secs,
			BeatsPerSec:     float64(beats) / secs,
			RealtimeStreams: float64(pushRes.N) / secs / ecgsyn.Fs,
			AllocsPerPush:   pushRes.AllocsPerOp(),
		}

		// --- end-to-end batch: the /v1/classify serving shape ---
		var scratch pipeline.BatchScratch
		out.Results = append(out.Results,
			record("pipeline/batch_classify_30s", testing.Benchmark(func(b *testing.B) {
				half := lead[:len(lead)/2] // 30 s of the 60 s record
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					if _, err := pipeline.BatchClassifyInto(context.Background(), emb, half, pipeline.Config{}, &scratch); err != nil {
						b.Fatal(err)
					}
				}
			})))
	}

	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", err
	}
	path, err := nextBenchPath(dir)
	if err != nil {
		return "", err
	}
	data, err := json.MarshalIndent(&out, "", "  ")
	if err != nil {
		return "", err
	}
	data = append(data, '\n')
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return "", err
	}
	return path, nil
}

// nextBenchPath returns dir/BENCH_<n>.json for the smallest n >= 1 that does
// not exist yet, so successive runs append to the trajectory instead of
// overwriting it.
func nextBenchPath(dir string) (string, error) {
	for n := 1; n < 100000; n++ {
		path := filepath.Join(dir, fmt.Sprintf("BENCH_%d.json", n))
		if _, err := os.Stat(path); os.IsNotExist(err) {
			return path, nil
		} else if err != nil {
			return "", err
		}
	}
	return "", fmt.Errorf("rpbench: no free BENCH_<n>.json slot under %s", dir)
}
