// Command rpbench regenerates every table and figure of the paper's
// evaluation section from the synthetic database, and (with -json) runs the
// machine-readable kernel/serving benchmark suite.
//
// Usage:
//
//	rpbench -experiment all                 # everything, full scale (slow)
//	rpbench -experiment table2 -scale 0.1   # one experiment, reduced data
//	rpbench -experiment fig5 -pop 8 -gen 10 # reduced GA budget
//	rpbench -json                           # write BENCH_<n>.json (see BENCHMARKS.md)
//
// Experiments: table1, table2, table3, fig4, fig5, energy, ga, downsample,
// alpha, record, heads, all.
//
// Unknown flags, stray arguments and unknown experiment names are errors:
// rpbench prints a usage message and exits non-zero instead of silently
// running nothing.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"rpbeat/internal/experiments"
)

// experimentNames lists the valid -experiment values, in run order.
var experimentNames = []string{
	"table1", "table2", "fig4", "fig5", "table3",
	"energy", "ga", "downsample", "alpha", "record", "heads",
}

func usage() {
	fmt.Fprintf(flag.CommandLine.Output(),
		"usage: rpbench [-json [-out dir]] [-experiment name] [options]\n\nexperiments: %s, all\n\noptions:\n",
		strings.Join(experimentNames, ", "))
	flag.PrintDefaults()
}

func main() {
	var (
		exp      = flag.String("experiment", "all", "which experiment to run (table1|table2|table3|fig4|fig5|energy|ga|downsample|alpha|record|heads|all)")
		scale    = flag.Float64("scale", 1.0, "dataset scale factor (1 = full Table I composition)")
		pop      = flag.Int("pop", 20, "GA population size (paper: 20)")
		gen      = flag.Int("gen", 30, "GA generations (paper: 30)")
		scgIters = flag.Int("scg", 120, "SCG iterations per NFC fit")
		minARR   = flag.Float64("minarr", 0.97, "minimum abnormal recognition rate constraint")
		seed     = flag.Uint64("seed", 0, "experiment seed (0 = default)")
		parallel = flag.Int("parallel", 0, "worker goroutines (0 = NumCPU)")
		jsonOut  = flag.Bool("json", false, "run the kernel/serving benchmark suite and write BENCH_<n>.json")
		outDir   = flag.String("out", ".", "directory BENCH_<n>.json is written to (with -json)")
	)
	flag.Usage = usage
	flag.Parse()
	// flag.Parse already rejects undefined flags (ExitOnError); stray
	// positional arguments would otherwise be dropped on the floor.
	if flag.NArg() > 0 {
		fmt.Fprintf(os.Stderr, "rpbench: unexpected argument %q\n\n", flag.Arg(0))
		usage()
		os.Exit(2)
	}
	// The experiment flags mean nothing to -json (and vice versa for -out):
	// reject the combination instead of silently ignoring half the line.
	experimentOnly := map[string]bool{
		"experiment": true, "scale": true, "pop": true, "gen": true,
		"scg": true, "minarr": true, "seed": true, "parallel": true,
	}
	var conflict string
	flag.Visit(func(f *flag.Flag) {
		switch {
		case *jsonOut && experimentOnly[f.Name]:
			conflict = "-" + f.Name + " has no effect with -json"
		case !*jsonOut && f.Name == "out":
			conflict = "-out has no effect without -json"
		}
	})
	if conflict != "" {
		fmt.Fprintf(os.Stderr, "rpbench: %s\n\n", conflict)
		usage()
		os.Exit(2)
	}

	if *jsonOut {
		path, err := runJSONBench(*outDir)
		if err != nil {
			fmt.Fprintf(os.Stderr, "rpbench: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s\n", path)
		return
	}

	want := strings.ToLower(*exp)
	if want != "all" {
		known := false
		for _, name := range experimentNames {
			if want == name {
				known = true
				break
			}
		}
		if !known {
			fmt.Fprintf(os.Stderr, "rpbench: unknown experiment %q\n\n", *exp)
			usage()
			os.Exit(2)
		}
	}

	r := experiments.NewRunner(experiments.Options{
		Seed:        *seed,
		Scale:       *scale,
		PopSize:     *pop,
		Generations: *gen,
		SCGIters:    *scgIters,
		MinARR:      *minARR,
		Parallel:    *parallel,
	})

	run := func(name string, f func() error) {
		if want != "all" && want != name {
			return
		}
		start := time.Now()
		fmt.Printf("=== %s ===\n", name)
		if err := f(); err != nil {
			fmt.Fprintf(os.Stderr, "rpbench: %s: %v\n", name, err)
			os.Exit(1)
		}
		fmt.Printf("(%s in %.1fs)\n\n", name, time.Since(start).Seconds())
	}

	run("table1", func() error {
		res, err := r.TableI()
		if err != nil {
			return err
		}
		fmt.Print(res.Render())
		return nil
	})
	run("table2", func() error {
		res, err := r.TableII([]int{8, 16, 32})
		if err != nil {
			return err
		}
		fmt.Print(res.Render())
		return nil
	})
	run("fig4", func() error {
		fmt.Print(experiments.RenderFigure4(experiments.Figure4()))
		return nil
	})
	run("fig5", func() error {
		res, err := r.Figure5()
		if err != nil {
			return err
		}
		fmt.Print(res.Render())
		for _, arr := range []float64{0.97, 0.985} {
			g, _ := experiments.NDRAtARROnFront(res.Gaussian, arr)
			l, _ := experiments.NDRAtARROnFront(res.Linear, arr)
			t, _ := experiments.NDRAtARROnFront(res.Triangular, arr)
			fmt.Printf("NDR at ARR>=%.1f%%: gaussian %.1f%%, linear %.1f%%, triangular %.1f%%\n",
				100*arr, 100*g, 100*l, 100*t)
		}
		return nil
	})
	run("table3", func() error {
		res, err := r.TableIII()
		if err != nil {
			return err
		}
		fmt.Print(res.Render())
		return nil
	})
	run("energy", func() error {
		res, err := r.Energy()
		if err != nil {
			return err
		}
		fmt.Print(res.Render())
		return nil
	})
	run("ga", func() error {
		res, err := r.GAAblation()
		if err != nil {
			return err
		}
		fmt.Print(res.Render())
		return nil
	})
	run("downsample", func() error {
		rows, err := r.DownsampleSweep(nil)
		if err != nil {
			return err
		}
		fmt.Print(experiments.RenderDownsample(rows))
		return nil
	})
	run("alpha", func() error {
		pts, err := r.AlphaSensitivity()
		if err != nil {
			return err
		}
		fmt.Print(experiments.RenderAlphaCurve(pts))
		return nil
	})
	run("record", func() error {
		res, err := r.RecordLevel(6, 300)
		if err != nil {
			return err
		}
		fmt.Print(res.Render())
		return nil
	})
	run("heads", func() error {
		res, err := r.HeadComparison(nil, 6, 300)
		if err != nil {
			return err
		}
		fmt.Print(res.Render())
		return nil
	})
}
