package main

// The gateway experiment family: the multi-node serving path through
// cmd/rpgate. Three rpserve backends (each with its own engine, catalog copy
// and stream cap) sit behind one gateway; the fleet harness drives the
// gateway exactly as cmd/rpload would. The sweep shows aggregate goodput
// scaling past what one node's cap admits — the single_node_baseline row is
// the same offered load against one backend directly — and the over-cap row
// shows fleet-level shedding staying exactly typed, attributed per backend
// via X-Rpbeat-Instance. The relay_chunk_360 row pins the relay loop's
// steady-state cost: zero allocations per relayed chunk.

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"runtime"
	"testing"
	"time"

	"rpbeat/internal/catalog"
	"rpbeat/internal/ecgsyn"
	"rpbeat/internal/faultinject"
	"rpbeat/internal/gate"
	"rpbeat/internal/load"
	"rpbeat/internal/pipeline"
	"rpbeat/internal/rng"
	"rpbeat/internal/serve"
	"rpbeat/internal/wire"
)

// gatewayBenchBlock is the "gateway" section of BENCH_<n>.json.
type gatewayBenchBlock struct {
	Backends             int     `json:"backends"`
	MaxStreamsPerBackend int     `json:"max_streams_per_backend"`
	Speedup              float64 `json:"speedup"`
	RecordSeconds        float64 `json:"record_seconds"`
	Workers              int     `json:"workers"`
	// RelayAllocsPerOp is the allocation count of relaying one 360-sample
	// chunk (gate.RelayCopy with a pooled buffer). Must stay 0 — the tested
	// invariant TestRelayCopyZeroAlloc, measured here so the trajectory
	// records it.
	RelayAllocsPerOp int64 `json:"relay_allocs_per_op"`
	// JournalAppendAllocsPerOp is the allocation count of one steady-state
	// replay-journal cycle (append + sender copy-out + delivery ack). Must
	// stay 0 — the tested invariant TestJournalAppendZeroAlloc, measured
	// here so the trajectory records it.
	JournalAppendAllocsPerOp int64 `json:"journal_append_allocs_per_op"`
	// FailoverBlackoutMs is the longest downlink silence a client sees
	// across an injected mid-stream backend kill: the gap covers failure
	// detection, reopening on the ring successor, journal replay through
	// the resync warm-up, and beat dedup until live beats resume.
	FailoverBlackoutMs float64 `json:"failover_blackout_ms"`
	// SingleNode is the same offered load as the at-capacity sweep row
	// pointed at ONE backend directly: what the fleet loses without the
	// gateway tier (everything past one node's cap sheds).
	SingleNode load.Report `json:"single_node_baseline"`
	// Sweep raises the fleet size through the aggregate 3-node capacity into
	// overload; rows past it must shed with typed errors only.
	Sweep []load.Report `json:"sweep"`
}

// gatewaySweepStreams returns fleet sizes around the aggregate cap: well
// under, half, at, and 1.5x past it.
func gatewaySweepStreams(aggregate int) []int {
	return []int{aggregate / 4, aggregate / 2, aggregate, aggregate + aggregate/2}
}

// benchRelayChunk measures gate.RelayCopy on one 360-sample binary frame —
// the steady-state unit of the gateway's data path.
func benchRelayChunk() (testing.BenchmarkResult, error) {
	r := rng.New(11)
	samples := make([]int32, 360)
	for i := range samples {
		samples[i] = int32(r.Intn(2048))
	}
	frame, err := wire.AppendFrame(nil, samples)
	if err != nil {
		return testing.BenchmarkResult{}, err
	}
	buf := make([]byte, 32<<10)
	flush := func() error { return nil }
	var src bytes.Reader
	return testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			src.Reset(frame)
			if _, err := gate.RelayCopy(io.Discard, flush, &src, buf); err != nil {
				b.Fatal(err)
			}
		}
	}), nil
}

// benchJournalAppend measures one steady-state replay-journal cycle at the
// default retention window — the per-uplink-unit cost the failover tentpole
// adds to the relay's data path.
func benchJournalAppend() testing.BenchmarkResult {
	jb := gate.NewJournalBench(pipeline.ResyncWarmup(pipeline.Config{}), 140, 36)
	for i := 0; i < 200; i++ {
		jb.Step() // reach the recycled fixed point before measuring
	}
	return testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if !jb.Step() {
				b.Fatal("journal refused a steady-state step")
			}
		}
	})
}

// streamKiller faults only /v1/stream round trips so health and catalog
// traffic cannot spend the injected-fault budget.
type streamKiller struct {
	inner *faultinject.Transport
}

func (f *streamKiller) RoundTrip(req *http.Request) (*http.Response, error) {
	if req.URL.Path == "/v1/stream" {
		return f.inner.RoundTrip(req)
	}
	return http.DefaultTransport.RoundTrip(req)
}

// benchFailoverBlackout streams one record through a 3-backend gateway whose
// first stream connection is killed half way down the reference body, and
// reports the longest gap between downlink reads — the client-visible
// blackout the transparent failover costs.
func benchFailoverBlackout(workers int) (float64, error) {
	lead := ecgsyn.Synthesize(ecgsyn.RecordSpec{Name: "fo", Seconds: 30, Seed: 41, PVCRate: 0.1}).Leads[0]
	var body []byte
	for i := 0; i < len(lead); i += 360 {
		end := i + 360
		if end > len(lead) {
			end = len(lead)
		}
		f, err := wire.AppendFrame(nil, lead[i:end])
		if err != nil {
			return 0, err
		}
		body = append(body, f...)
	}

	var backends []*gatewayBackend
	defer func() {
		for _, b := range backends {
			b.Close()
		}
	}()
	urls := make([]string, 0, 3)
	for i := 0; i < 3; i++ {
		b, err := newGatewayBackend(16, workers, fmt.Sprintf("fo%d", i+1))
		if err != nil {
			return 0, err
		}
		backends = append(backends, b)
		urls = append(urls, b.ts.URL)
	}

	// Learn the uninterrupted body length so the kill lands mid-response.
	resp, err := http.Post(backends[0].ts.URL+"/v1/stream", wire.ContentTypeSamples, bytes.NewReader(body))
	if err != nil {
		return 0, err
	}
	ref, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		return 0, err
	}

	gw, err := gate.New(gate.Config{
		Backends:       urls,
		HealthInterval: -1,
		Client: &http.Client{Transport: &streamKiller{inner: &faultinject.Transport{
			Downlink: []faultinject.Fault{{
				Kind:   faultinject.KillAfterBytes,
				AtByte: int64(len(ref) / 2),
			}},
			Times: 1,
		}}},
	})
	if err != nil {
		return 0, err
	}
	defer gw.Close()
	gw.CheckNow(context.Background())
	gts := httptest.NewServer(gw.Handler())
	defer gts.Close()

	resp, err = http.Post(gts.URL+"/v1/stream", wire.ContentTypeSamples, bytes.NewReader(body))
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return 0, fmt.Errorf("failover stream status %d", resp.StatusCode)
	}
	var blackout time.Duration
	buf := make([]byte, 32<<10)
	last := time.Now()
	got := 0
	for {
		n, err := resp.Body.Read(buf)
		if n > 0 {
			now := time.Now()
			if gap := now.Sub(last); gap > blackout {
				blackout = gap
			}
			last = now
			got += n
		}
		if err == io.EOF {
			break
		}
		if err != nil {
			return 0, err
		}
	}
	if gw.Status().Failovers == 0 {
		return 0, fmt.Errorf("stream completed without the injected failover firing")
	}
	if got != len(ref) {
		return 0, fmt.Errorf("failover body %d bytes, direct run %d", got, len(ref))
	}
	return float64(blackout) / float64(time.Millisecond), nil
}

// gatewayBackend is one in-process rpserve node for the gateway bench.
type gatewayBackend struct {
	eng *pipeline.Engine
	ts  *httptest.Server
}

func (g *gatewayBackend) Close() {
	g.ts.Close()
	g.eng.Close()
}

// newGatewayBackend boots one backend with its own catalog copy. The model
// seed is fixed, so every backend holds byte-identical model bytes — one
// fleet digest, the invariant the gateway's divergence refusal guards.
func newGatewayBackend(maxStreams, workers int, instance string) (*gatewayBackend, error) {
	cat := catalog.New()
	if _, err := cat.Put("bench", benchModel(rng.New(9), 8, 50, 4), nil); err != nil {
		return nil, err
	}
	eng := pipeline.NewEngine(cat, pipeline.EngineConfig{Workers: workers, MaxStreams: maxStreams + 8})
	ts := httptest.NewServer(serve.NewHandler(eng, serve.HandlerConfig{
		MaxStreams: maxStreams,
		Instance:   instance,
	}))
	return &gatewayBackend{eng: eng, ts: ts}, nil
}

// runGatewayBench fills out.Gateway and appends summary gateway/* rows to
// out.Results.
func runGatewayBench(out *benchFile) error {
	const (
		nBackends     = 3
		maxStreamsPer = 48
		speedup       = 8
		recordSeconds = 10
	)
	workers := runtime.NumCPU()
	aggregate := nBackends * maxStreamsPer

	relayRes, err := benchRelayChunk()
	if err != nil {
		return err
	}
	out.Results = append(out.Results, record("gateway/relay_chunk_360", relayRes))

	journalRes := benchJournalAppend()
	out.Results = append(out.Results, record("gateway/failover_journal_append", journalRes))

	blackoutMs, err := benchFailoverBlackout(workers)
	if err != nil {
		return err
	}
	out.Results = append(out.Results, benchResult{
		Name:       "gateway/failover_blackout",
		Iterations: 1,
		NsPerOp:    blackoutMs * 1e6,
	})

	var backends []*gatewayBackend
	defer func() {
		for _, b := range backends {
			b.Close()
		}
	}()
	urls := make([]string, 0, nBackends)
	for i := 0; i < nBackends; i++ {
		b, err := newGatewayBackend(maxStreamsPer, workers, fmt.Sprintf("b%d", i+1))
		if err != nil {
			return err
		}
		backends = append(backends, b)
		urls = append(urls, b.ts.URL)
	}

	gw, err := gate.New(gate.Config{Backends: urls, HealthInterval: -1})
	if err != nil {
		return err
	}
	defer gw.Close()
	gw.CheckNow(context.Background())
	gts := httptest.NewServer(gw.Handler())
	defer gts.Close()

	out.Gateway = gatewayBenchBlock{
		Backends:                 nBackends,
		MaxStreamsPerBackend:     maxStreamsPer,
		Speedup:                  speedup,
		RecordSeconds:            recordSeconds,
		Workers:                  workers,
		RelayAllocsPerOp:         relayRes.AllocsPerOp(),
		JournalAppendAllocsPerOp: journalRes.AllocsPerOp(),
		FailoverBlackoutMs:       blackoutMs,
	}

	// Baseline: the at-capacity offered load against one backend directly.
	// Without the gateway tier, two thirds of the fleet has nowhere to go.
	single, err := load.Run(context.Background(), load.Config{
		BaseURL: backends[0].ts.URL,
		Streams: aggregate,
		Seconds: recordSeconds,
		Speedup: speedup,
		Seed:    9,
	})
	if err != nil {
		return err
	}
	out.Gateway.SingleNode = *single
	out.Results = append(out.Results, benchResult{
		Name:       fmt.Sprintf("gateway/single_node_streams_%d", aggregate),
		Iterations: int(single.Beats),
		NsPerOp:    single.BeatLatencyMsP99 * 1e6,
	})

	for _, streams := range gatewaySweepStreams(aggregate) {
		rep, err := load.Run(context.Background(), load.Config{
			BaseURL: gts.URL,
			Streams: streams,
			Seconds: recordSeconds,
			Speedup: speedup,
			Seed:    9,
		})
		if err != nil {
			return err
		}
		out.Gateway.Sweep = append(out.Gateway.Sweep, *rep)
		out.Results = append(out.Results, benchResult{
			Name:       fmt.Sprintf("gateway/fleet_streams_%d", streams),
			Iterations: int(rep.Beats),
			NsPerOp:    rep.BeatLatencyMsP99 * 1e6,
		})
	}
	return nil
}
