package main

// The fleet experiment family: the serving stack under fleet-scale load,
// driven by internal/load — the same harness cmd/rpload runs against a
// remote server, here against an in-process loopback server so the numbers
// land in the BENCH trajectory. The sweep raises the concurrent-stream
// count through the provisioned capacity into deliberate overload: below
// the knee the rows show the beat-latency SLO holding at increasing load;
// past the configured stream cap they show the overload ladder doing its
// job — excess streams shed with typed server_overloaded errors while every
// admitted stream keeps its latency, and goodput stays at capacity instead
// of collapsing.

import (
	"context"
	"fmt"
	"net/http/httptest"
	"runtime"

	"rpbeat/internal/catalog"
	"rpbeat/internal/load"
	"rpbeat/internal/pipeline"
	"rpbeat/internal/rng"
	"rpbeat/internal/serve"
)

// fleetBenchBlock is the "fleet" section of BENCH_<n>.json. Each sweep row
// is one internal/load fleet run, verbatim.
type fleetBenchBlock struct {
	// MaxStreams is the server's stream cap for every row: rows with
	// streams <= max_streams measure latency under admitted load, rows
	// beyond it measure the shed path.
	MaxStreams int `json:"max_streams"`
	// Speedup is the per-patient cadence multiplier over the 360 Hz real
	// time — how the sweep reaches engine-saturating sample rates with a
	// connection count the host can hold open.
	Speedup float64 `json:"speedup"`
	// RecordSeconds is each patient's record length (of signal time; wall
	// time per row is record_seconds / speedup).
	RecordSeconds float64       `json:"record_seconds"`
	Workers       int           `json:"workers"`
	Sweep         []load.Report `json:"sweep"`
}

// fleetSweepStreams returns the sweep's fleet sizes around the cap: well
// under, approaching, at, and past it.
func fleetSweepStreams(cap int) []int {
	return []int{cap / 8, cap / 4, cap / 2, cap, cap + cap/2}
}

// runFleetBench fills out.Fleet and appends summary fleet/* rows to
// out.Results.
func runFleetBench(out *benchFile) error {
	const (
		maxStreams    = 256
		speedup       = 32
		recordSeconds = 20
	)
	workers := runtime.NumCPU()

	r := rng.New(9)
	cat := catalog.New()
	if _, err := cat.Put("bench", benchModel(r, 8, 50, 4), nil); err != nil {
		return err
	}
	eng := pipeline.NewEngine(cat, pipeline.EngineConfig{Workers: workers, MaxStreams: maxStreams + 8})
	defer eng.Close()
	ts := httptest.NewServer(serve.NewHandler(eng, serve.HandlerConfig{MaxStreams: maxStreams}))
	defer ts.Close()

	out.Fleet = fleetBenchBlock{
		MaxStreams:    maxStreams,
		Speedup:       speedup,
		RecordSeconds: recordSeconds,
		Workers:       workers,
	}
	for _, streams := range fleetSweepStreams(maxStreams) {
		rep, err := load.Run(context.Background(), load.Config{
			BaseURL: ts.URL,
			Streams: streams,
			Seconds: recordSeconds,
			Speedup: speedup,
			Seed:    9,
		})
		if err != nil {
			return err
		}
		out.Fleet.Sweep = append(out.Fleet.Sweep, *rep)
		out.Results = append(out.Results, benchResult{
			Name:       fmt.Sprintf("fleet/streams_%d", streams),
			Iterations: int(rep.Beats),
			NsPerOp:    rep.BeatLatencyMsP99 * 1e6, // p99 beat latency
		})
	}
	return nil
}
