package main

// The serve experiment family: what the HTTP layer itself costs. The
// kernel/pipeline/engine families measure everything below the socket; these
// rows measure the wire — request decoding, response encoding and the
// transport size of a record — for the three codecs the serving layer can
// run: the stdlib encoding/json baseline, the internal/wire fast JSON path,
// and the binary sample transport.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"rpbeat/internal/catalog"
	"rpbeat/internal/ecgsyn"
	"rpbeat/internal/pipeline"
	"rpbeat/internal/rng"
	"rpbeat/internal/serve"
	"rpbeat/internal/wire"
)

// serveBenchBlock is the "serve" section of BENCH_<n>.json.
type serveBenchBlock struct {
	// Batch is the /v1/classify request rate through a real loopback HTTP
	// server, per request encoding (whole 30 s record per request).
	Batch serveBatchMetrics `json:"batch"`
	// Stream has one row per codec: the per-chunk decode cost of the
	// serving layer (the wire rows CI guards for allocation regressions)
	// and the end-to-end chunk rate through a live /v1/stream request
	// (which includes classification, so codecs converge there — the
	// decode columns are the codec comparison).
	Stream []serveStreamRow `json:"stream"`
	// WireBytes30s is the uplink size of the same 30 s record in each
	// transport encoding.
	WireBytes30s serveWireBytes `json:"wire_bytes_30s"`
	// Heads is the classifier-head A/B: the same binary-transport 30 s
	// /v1/classify request pinned to the fuzzy vs the bitemb model on one
	// server — everything on the wire identical, only the head differs.
	Heads serveHeadMetrics `json:"heads"`
}

type serveBatchMetrics struct {
	JSONReqPerSec   float64 `json:"json_req_per_sec"`
	BinaryReqPerSec float64 `json:"binary_req_per_sec"`
}

type serveHeadMetrics struct {
	FuzzyReqPerSec  float64 `json:"fuzzy_req_per_sec"`
	BitembReqPerSec float64 `json:"bitemb_req_per_sec"`
}

type serveStreamRow struct {
	Codec string `json:"codec"` // json_stdlib | json_fast | binary
	// DecodeChunksPerSec / DecodeAllocsPerOp are the codec-layer cost of
	// one 360-sample (one second) chunk: NDJSON line parse or frame
	// decode into the reused chunk buffer, exactly what the /v1/stream
	// handler runs per line. The fast rows must stay at 0 allocs/op.
	DecodeChunksPerSec float64 `json:"decode_chunks_per_sec"`
	DecodeAllocsPerOp  int64   `json:"decode_allocs_per_op"`
	// HTTPChunksPerSec is the end-to-end rate: a live loopback /v1/stream
	// request draining the same chunks through the engine.
	HTTPChunksPerSec float64 `json:"http_chunks_per_sec"`
}

type serveWireBytes struct {
	// JSONBody / BinaryBody: one /v1/classify body.
	JSONBody   int `json:"json_body"`
	BinaryBody int `json:"binary_body"`
	// JSONNDJSON / BinaryFrames: the same record chunked for /v1/stream
	// (360-sample chunks).
	JSONNDJSON   int `json:"json_ndjson"`
	BinaryFrames int `json:"binary_frames"`
	// JSONOverBinary is JSONBody / BinaryBody — how much uplink the binary
	// transport saves on a whole record.
	JSONOverBinary float64 `json:"json_over_binary"`
}

// serveCodecs enumerates the stream rows in comparison order.
var serveCodecs = []string{"json_stdlib", "json_fast", "binary"}

// runServeBench fills out.Serve and appends the serve/* rows to
// out.Results.
func runServeBench(out *benchFile) error {
	r := rng.New(6)
	cat := catalog.New()
	if _, err := cat.Put("bench", benchModel(r, 8, 50, 4), nil); err != nil {
		return err
	}
	if _, err := cat.Put("benchbit", benchBitembModel(r, 8, 50, 4), nil); err != nil {
		return err
	}
	lead := ecgsyn.Synthesize(ecgsyn.RecordSpec{Name: "srv", Seconds: 30, Seed: 23, PVCRate: 0.1}).Leads[0]

	// --- wire bytes: the same record in every transport encoding ---
	jsonBody, err := json.Marshal(serve.ClassifyRequest{Samples: lead})
	if err != nil {
		return err
	}
	binBody := wire.AppendFrames(nil, lead, 2048)
	const chunkLen = 360
	var ndjson, frames []byte
	var chunkLines [][]byte
	for off := 0; off < len(lead); off += chunkLen {
		end := min(off+chunkLen, len(lead))
		line, err := json.Marshal(serve.StreamChunk{Samples: lead[off:end]})
		if err != nil {
			return err
		}
		chunkLines = append(chunkLines, line)
		ndjson = append(append(ndjson, line...), '\n')
		if frames, err = wire.AppendFrame(frames, lead[off:end]); err != nil {
			return err
		}
	}
	out.Serve.WireBytes30s = serveWireBytes{
		JSONBody:       len(jsonBody),
		BinaryBody:     len(binBody),
		JSONNDJSON:     len(ndjson),
		BinaryFrames:   len(frames),
		JSONOverBinary: float64(len(jsonBody)) / float64(len(binBody)),
	}

	// --- decode rows: the per-chunk codec cost of the /v1/stream handler ---
	frame, err := wire.AppendFrame(nil, lead[:chunkLen])
	if err != nil {
		return err
	}
	line := chunkLines[0]
	dst := make([]int32, 0, 2*chunkLen)
	decoders := map[string]func(b *testing.B){
		"json_stdlib": func(b *testing.B) {
			var chunk serve.StreamChunk
			chunk.Samples = dst
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				chunk.Samples = chunk.Samples[:0]
				if err := json.Unmarshal(line, &chunk); err != nil {
					b.Fatal(err)
				}
			}
		},
		"json_fast": func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				var err error
				dst, err = wire.ParseChunk(dst, line)
				if err != nil {
					b.Fatal(err)
				}
			}
		},
		"binary": func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				var err error
				dst, _, err = wire.DecodeFrame(dst[:0], frame)
				if err != nil {
					b.Fatal(err)
				}
			}
		},
	}

	// --- live server for the end-to-end rows ---
	httpRate := func(stdlib bool, contentType string, body []byte, chunks int) (float64, error) {
		eng := pipeline.NewEngine(cat, pipeline.EngineConfig{})
		defer eng.Close()
		ts := httptest.NewServer(serve.NewHandler(eng, serve.HandlerConfig{StdlibJSON: stdlib}))
		defer ts.Close()
		best := 0.0
		for round := 0; round < 3; round++ {
			start := time.Now()
			resp, err := http.Post(ts.URL+"/v1/stream", contentType, bytes.NewReader(body))
			if err != nil {
				return 0, err
			}
			raw, err := io.ReadAll(resp.Body)
			resp.Body.Close()
			if err != nil {
				return 0, err
			}
			if resp.StatusCode != http.StatusOK {
				return 0, fmt.Errorf("stream bench: %d: %s", resp.StatusCode, raw)
			}
			if rate := float64(chunks) / time.Since(start).Seconds(); rate > best {
				best = rate
			}
		}
		return best, nil
	}

	chunks := len(chunkLines)
	for _, codec := range serveCodecs {
		res := testing.Benchmark(decoders[codec])
		row := serveStreamRow{
			Codec:              codec,
			DecodeChunksPerSec: 1e9 / (float64(res.T.Nanoseconds()) / float64(res.N)),
			DecodeAllocsPerOp:  res.AllocsPerOp(),
		}
		out.Results = append(out.Results, record("serve/stream_decode_chunk_"+codec, res))
		var rate float64
		var err error
		switch codec {
		case "json_stdlib":
			rate, err = httpRate(true, wire.ContentTypeNDJSON, ndjson, chunks)
		case "json_fast":
			rate, err = httpRate(false, wire.ContentTypeNDJSON, ndjson, chunks)
		case "binary":
			rate, err = httpRate(false, wire.ContentTypeSamples, frames, chunks)
		}
		if err != nil {
			return err
		}
		row.HTTPChunksPerSec = rate
		out.Serve.Stream = append(out.Serve.Stream, row)
	}

	// --- batch req/s: the whole record per request, JSON vs binary ---
	{
		eng := pipeline.NewEngine(cat, pipeline.EngineConfig{})
		defer eng.Close()
		ts := httptest.NewServer(serve.NewHandler(eng, serve.HandlerConfig{}))
		defer ts.Close()
		post := func(contentType string, body []byte) func(b *testing.B) {
			return func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					resp, err := http.Post(ts.URL+"/v1/classify", contentType, bytes.NewReader(body))
					if err != nil {
						b.Fatal(err)
					}
					raw, err := io.ReadAll(resp.Body)
					resp.Body.Close()
					if err != nil {
						b.Fatal(err)
					}
					if resp.StatusCode != http.StatusOK {
						b.Fatalf("classify bench: %d: %s", resp.StatusCode, raw)
					}
				}
			}
		}
		jsonRes := testing.Benchmark(post("application/json", jsonBody))
		binRes := testing.Benchmark(post(wire.ContentTypeSamples, binBody))
		out.Results = append(out.Results,
			record("serve/batch_classify_30s_json", jsonRes),
			record("serve/batch_classify_30s_binary", binRes))
		out.Serve.Batch = serveBatchMetrics{
			JSONReqPerSec:   float64(jsonRes.N) / jsonRes.T.Seconds(),
			BinaryReqPerSec: float64(binRes.N) / binRes.T.Seconds(),
		}

		// --- head A/B: identical binary request, pinned per head ---
		pinned := func(ref string) func(b *testing.B) {
			return func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					resp, err := http.Post(ts.URL+"/v1/classify?model="+ref,
						wire.ContentTypeSamples, bytes.NewReader(binBody))
					if err != nil {
						b.Fatal(err)
					}
					raw, err := io.ReadAll(resp.Body)
					resp.Body.Close()
					if err != nil {
						b.Fatal(err)
					}
					if resp.StatusCode != http.StatusOK {
						b.Fatalf("head bench %s: %d: %s", ref, resp.StatusCode, raw)
					}
				}
			}
		}
		fuzzyRes := testing.Benchmark(pinned("bench@v1"))
		bitRes := testing.Benchmark(pinned("benchbit@v1"))
		out.Results = append(out.Results,
			record("serve/classify_30s_head_fuzzy", fuzzyRes),
			record("serve/classify_30s_head_bitemb", bitRes))
		out.Serve.Heads = serveHeadMetrics{
			FuzzyReqPerSec:  float64(fuzzyRes.N) / fuzzyRes.T.Seconds(),
			BitembReqPerSec: float64(bitRes.N) / bitRes.T.Seconds(),
		}
	}
	return nil
}
