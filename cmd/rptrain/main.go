// Command rptrain runs the paper's two-step training methodology (GA over
// Achlioptas projection matrices x SCG-trained neuro-fuzzy classifiers) on
// the synthetic database and saves the resulting model.
//
// Usage:
//
//	rptrain -o model.json                       # paper settings, full data
//	rptrain -o model.bin -format binary -k 8 -downsample 4
//	rptrain -o m.json -scale 0.1 -pop 8 -gen 10 # quick run on reduced data
//	rptrain -o bin.bin -format binary -head bitemb   # packed 1-bit head
//
// -head selects the classifier head: "fuzzy" (the paper's neuro-fuzzy
// decision rule) or "bitemb" (binary adaptive embeddings: thresholded
// projections packed to 1 bit/coefficient, classified by Hamming
// distance to per-class prototypes — smaller models, popcount-speed
// classification).
//
// Alongside the model, rptrain writes a manifest sidecar
// (<out-minus-ext>.manifest.json) carrying the model's SHA-256 digest and
// the training configuration — the provenance record internal/catalog
// preserves when the file is dropped into an rpserve -models-dir (where it
// registers as <name>@v1) or uploaded via POST /v1/models.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"strings"
	"time"

	"rpbeat/internal/beatset"
	"rpbeat/internal/catalog"
	"rpbeat/internal/core"
)

func main() {
	var (
		out        = flag.String("o", "model.json", "output model path")
		format     = flag.String("format", "json", "model format: json or binary")
		head       = flag.String("head", "fuzzy", "classifier head: fuzzy (neuro-fuzzy, the paper's) or bitemb (packed 1-bit embeddings + popcount)")
		k          = flag.Int("k", 8, "number of projected coefficients")
		downsample = flag.Int("downsample", 4, "input downsampling factor (1 = 360 Hz, 4 = 90 Hz)")
		pop        = flag.Int("pop", 20, "GA population (paper: 20)")
		gen        = flag.Int("gen", 30, "GA generations (paper: 30)")
		minARR     = flag.Float64("minarr", 0.97, "minimum ARR constraint for alpha_train")
		scale      = flag.Float64("scale", 1, "dataset scale (1 = full Table I composition)")
		seed       = flag.Uint64("seed", 42, "training seed")
		name       = flag.String("name", "", "model name for the manifest (default: output filename without extension)")
	)
	flag.Parse()
	log.SetFlags(0)
	log.SetPrefix("rptrain: ")

	start := time.Now()
	fmt.Printf("building dataset (scale %.2f)...\n", *scale)
	ds, err := beatset.Build(beatset.Config{Seed: *seed, Scale: *scale})
	if err != nil {
		log.Fatal(err)
	}
	t1 := ds.CountByClass(ds.Train1)
	t2 := ds.CountByClass(ds.Train2)
	fmt.Printf("dataset: %d beats; train1 %v, train2 %v\n", len(ds.Beats), t1, t2)

	fmt.Printf("training: head=%s k=%d downsample=%d GA %dx%d...\n", *head, *k, *downsample, *pop, *gen)
	cfg := core.Config{
		Coeffs:      *k,
		Downsample:  *downsample,
		PopSize:     *pop,
		Generations: *gen,
		MinARR:      *minARR,
		Seed:        *seed,
	}
	var m *core.Model
	var stats core.TrainStats
	switch *head {
	case "fuzzy":
		m, stats, err = core.Train(ds, cfg)
	case "bitemb":
		m, stats, err = core.TrainBitemb(ds, cfg)
	default:
		log.Fatalf("unknown head %q (fuzzy|bitemb)", *head)
	}
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("GA: %d fitness evaluations, best NDR on train2 = %.2f%% (ARR >= %.0f%%)\n",
		stats.FitnessEvals, 100*stats.BestFitness, 100**minARR)
	fmt.Printf("alpha_train = %.6f; train2 operating point NDR %.2f%% ARR %.2f%%\n",
		stats.AlphaTrain, 100*stats.Train2Point.NDR, 100*stats.Train2Point.ARR)

	f, err := os.Create(*out)
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	switch *format {
	case "json":
		enc := json.NewEncoder(f)
		enc.SetIndent("", " ")
		if err := enc.Encode(m); err != nil {
			log.Fatal(err)
		}
	case "binary":
		if err := m.WriteBinary(f); err != nil {
			log.Fatal(err)
		}
	default:
		log.Fatalf("unknown format %q (json|binary)", *format)
	}

	// Manifest sidecar: digest + provenance, verified by the catalog on load.
	manName := *name
	if manName == "" {
		base := filepath.Base(*out)
		manName = strings.TrimSuffix(base, filepath.Ext(base))
	}
	if err := catalog.ValidateName(manName); err != nil {
		log.Fatalf("manifest name: %v (pass -name)", err)
	}
	man, err := catalog.ManifestFor(manName, 1, m, &catalog.TrainingInfo{
		Tool: "rptrain", Seed: *seed, Scale: *scale,
		PopSize: *pop, Generations: *gen,
		MinARR: *minARR, AlphaTrain: stats.AlphaTrain,
	}, time.Now())
	if err != nil {
		log.Fatal(err)
	}
	if err := catalog.WriteManifest(*out, man); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("model written to %s (digest %.12s…, manifest alongside; %.1fs total)\n",
		*out, man.Digest, time.Since(start).Seconds())
}
