// Command rpgen synthesizes the MIT-BIH-like ECG database to disk in WFDB
// format (.hea/.dat/.atr triplets), so the other tools can operate on files
// exactly as they would on PhysioBank downloads.
//
// Usage:
//
//	rpgen -out ./db -seconds 1800            # all 48 records, 30 min each
//	rpgen -out ./db -records 100,109 -seconds 60
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	"rpbeat/internal/beatset"
	"rpbeat/internal/ecgsyn"
	"rpbeat/internal/wfdb"
)

func main() {
	var (
		out     = flag.String("out", "db", "output directory")
		seconds = flag.Float64("seconds", 1800, "record duration in seconds")
		records = flag.String("records", "", "comma-separated record names (default: all 48)")
		seed    = flag.Uint64("seed", 1, "generation seed")
	)
	flag.Parse()
	log.SetFlags(0)
	log.SetPrefix("rpgen: ")

	if err := os.MkdirAll(*out, 0o755); err != nil {
		log.Fatal(err)
	}

	want := map[string]bool{}
	if *records != "" {
		for _, r := range strings.Split(*records, ",") {
			want[strings.TrimSpace(r)] = true
		}
	}

	count := 0
	for i, p := range beatset.Inventory() {
		if len(want) > 0 && !want[p.Name] {
			continue
		}
		spec := ecgsyn.RecordSpec{
			Name:    p.Name,
			Seconds: *seconds,
			Seed:    *seed + uint64(i)*1000003,
			LBBB:    p.L > 0,
		}
		if total := p.N + p.L + p.V; total > 0 && p.L == 0 {
			spec.PVCRate = float64(p.V) / float64(total)
		}
		rec := ecgsyn.Synthesize(spec)
		w := &wfdb.Record{
			Name:         rec.Name,
			Fs:           rec.Fs,
			Gain:         ecgsyn.Gain,
			ADCZero:      ecgsyn.Baseline,
			Descriptions: []string{"MLII", "I", "V1"},
		}
		for l := 0; l < ecgsyn.NumLeads; l++ {
			w.Signals = append(w.Signals, rec.Leads[l])
		}
		for _, a := range rec.Ann {
			code := wfdb.CodeNormal
			switch a.Class {
			case ecgsyn.ClassL:
				code = wfdb.CodeLBBB
			case ecgsyn.ClassV:
				code = wfdb.CodePVC
			}
			w.Ann = append(w.Ann, wfdb.Ann{Sample: a.Sample, Code: code})
		}
		if err := wfdb.Save(*out, w); err != nil {
			log.Fatalf("record %s: %v", p.Name, err)
		}
		count++
		fmt.Printf("wrote %s (%d beats, %.0f s)\n", p.Name, len(w.Ann), *seconds)
	}
	fmt.Printf("%d records written to %s\n", count, *out)
}
