// Command rpload drives a synthetic patient fleet against a live rpserve
// instance and reports what the fleet saw: beat latency percentiles
// (p50/p99/p999), goodput, and every typed refusal by error code. It is the
// client half of the overload-control story — rpserve's -max-streams,
// -max-batch and -rate knobs decide who is shed; rpload measures that the
// SLO holds for everyone who is admitted and that everyone else gets a
// contract error, never a reset.
//
// Each patient is synthesized by internal/ecgsyn from a deterministic
// per-patient seed and streamed as binary application/x-rpbeat-samples
// frames at a realistic cadence: -speedup 1 replays in real time (one
// 0.5 s chunk every 0.5 s per patient), -speedup 32 compresses the same
// arrival pattern 32-fold. A -batch mix POSTs whole records to /v1/classify
// alongside the streams.
//
// Usage:
//
//	rpserve -demo -max-streams 256 &
//	rpload -server http://127.0.0.1:8080 -streams 200 -seconds 30 -speedup 8
//	rpload -streams 400 -speedup 32 -batch 4 -json   # overload the knee
//
// -server also takes an rpgate gateway URL or a comma-separated backend
// list (patient i targets entry i%N); each patient carries a deterministic
// X-Stream-Id affinity token, so the same fleet seed produces the same
// per-patient streams whatever the topology. Shed streams are attributed to
// the refusing backend via its X-Rpbeat-Instance header (rpserve -instance)
// in the shed_by_instance report section.
//
// -chaos <seed> arms deterministic fault injection on every uplink (latency
// spikes, slow-loris dribbles — timing distortions a correct server must
// absorb) and reconciles each stream's beats against a local detection
// oracle. The report then carries beats_lost and beats_duplicated; both must
// be 0, whatever the chaos seed, or the serving tier broke beat continuity.
//
// Exit status is 0 whenever the run completed, shed streams included —
// shedding is the server keeping its promise, not a client failure.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"sort"
	"strings"
	"syscall"
	"time"

	"rpbeat/internal/load"
)

func main() {
	var (
		server  = flag.String("server", "http://127.0.0.1:8080", "target base URL: one rpserve, an rpgate gateway, or a comma-separated backend list (patient i targets entry i%N)")
		streams = flag.Int("streams", 100, "fleet size: concurrent patient streams")
		seconds = flag.Float64("seconds", 30, "record length per patient, seconds of signal")
		speedup = flag.Float64("speedup", 8, "cadence multiplier over real time (0 = firehose, no pacing)")
		chunk   = flag.Int("chunk", load.DefaultChunk, "samples per uplink frame")
		model   = flag.String("model", "", "model reference to pin (empty = server default)")
		tenant  = flag.String("tenant", "", "X-Tenant header for every request (empty = none)")
		batch   = flag.Int("batch", 0, "batch-classify workers riding along with the streams")
		seed    = flag.Uint64("seed", 1, "fleet seed; patient i derives from it deterministically")
		chaos   = flag.Uint64("chaos", 0, "fault-injection seed: distort uplink timing per stream and reconcile the beat-continuity ledger (0 = off)")
		unique  = flag.Int("unique", 0, "distinct records to synthesize, shared round-robin (0 = min(streams, 16))")
		jsonOut = flag.Bool("json", false, "emit the report as JSON")
		timeout = flag.Duration("timeout", 0, "abort the run after this long (0 = none)")
	)
	flag.Parse()
	log.SetFlags(0)
	log.SetPrefix("rpload: ")

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	var targets []string
	for _, t := range strings.Split(*server, ",") {
		if t = strings.TrimSpace(t); t != "" {
			targets = append(targets, strings.TrimRight(t, "/"))
		}
	}
	if len(targets) == 0 {
		log.Fatal("-server: no target URLs")
	}

	cfg := load.Config{
		BaseURLs:      targets,
		Streams:       *streams,
		Seconds:       *seconds,
		Speedup:       *speedup,
		Chunk:         *chunk,
		Model:         *model,
		Tenant:        *tenant,
		BatchWorkers:  *batch,
		Seed:          *seed,
		UniqueRecords: *unique,
		Chaos:         *chaos,
	}
	if !*jsonOut {
		log.Printf("fleet of %d streams x %gs records at x%g cadence against %s",
			cfg.Streams, cfg.Seconds, cfg.Speedup, strings.Join(targets, ", "))
	}
	start := time.Now()
	rep, err := load.Run(ctx, cfg)
	if err != nil {
		log.Fatal(err)
	}

	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			log.Fatal(err)
		}
		return
	}

	fmt.Printf("done in %v\n", time.Since(start).Round(time.Millisecond))
	fmt.Printf("streams: %d ok, %d shed, %d failed\n", rep.StreamsOK, rep.StreamsShed, rep.StreamsFailed)
	fmt.Printf("beats:   %d across %d samples (%.0f samples/s goodput)\n",
		rep.Beats, rep.Samples, rep.GoodputSamplesPerSec)
	fmt.Printf("beat latency ms: p50=%.2f p99=%.2f p999=%.2f max=%.2f\n",
		rep.BeatLatencyMsP50, rep.BeatLatencyMsP99, rep.BeatLatencyMsP999, rep.BeatLatencyMsMax)
	if *chaos != 0 {
		fmt.Printf("ledger:  %d beats lost, %d duplicated (chaos seed %d)\n",
			rep.BeatsLost, rep.BeatsDuplicated, rep.ChaosSeed)
	}
	if rep.BatchRequests > 0 {
		fmt.Printf("batch:   %d/%d ok\n", rep.BatchOK, rep.BatchRequests)
	}
	if len(rep.ShedByInstance) > 0 {
		instances := make([]string, 0, len(rep.ShedByInstance))
		for inst := range rep.ShedByInstance {
			instances = append(instances, inst)
		}
		sort.Strings(instances)
		fmt.Printf("shed by instance:\n")
		for _, inst := range instances {
			fmt.Printf("  %-20s %d\n", inst, rep.ShedByInstance[inst])
		}
	}
	if len(rep.ErrorCounts) > 0 {
		codes := make([]string, 0, len(rep.ErrorCounts))
		for c := range rep.ErrorCounts {
			codes = append(codes, c)
		}
		sort.Strings(codes)
		fmt.Printf("errors:\n")
		for _, c := range codes {
			fmt.Printf("  %-20s %d\n", c, rep.ErrorCounts[c])
		}
	}
}
