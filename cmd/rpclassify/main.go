// Command rpclassify runs the complete embedded classification pipeline on
// a WFDB record: morphological filtering, wavelet peak detection, beat
// windowing, downsampling, 2-bit packed random projection and the integer
// neuro-fuzzy classifier. When the record carries annotations, it reports
// NDR/ARR against them.
//
// With -server it acts as an acquisition client instead: the record is
// posted to a running rpserve's /v1/classify, either as JSON or — with
// -wire binary — as the compact application/x-rpbeat-samples frame
// transport (~5x fewer uplink bytes), and the server's verdicts are scored
// the same way.
//
// Usage:
//
//	rpclassify -db ./db -record 100 -model model.json
//	rpclassify -db ./db -record 119 -model model.bin -alpha 0.02 -v
//	rpclassify -db ./db -record 100 -server http://localhost:8080
//	rpclassify -db ./db -record 100 -server http://localhost:8080 -wire binary -ref default@v1
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"net/url"
	"os"
	"strings"

	"rpbeat/internal/core"
	"rpbeat/internal/fixp"
	"rpbeat/internal/nfc"
	"rpbeat/internal/peak"
	"rpbeat/internal/serve"
	"rpbeat/internal/sigdsp"
	"rpbeat/internal/wfdb"
	"rpbeat/internal/wire"
)

func loadModel(path string) (*core.Model, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	if bytes.HasPrefix(data, []byte("RPBT")) {
		return core.ReadBinary(bytes.NewReader(data))
	}
	var m core.Model
	if err := json.Unmarshal(data, &m); err != nil {
		return nil, err
	}
	return &m, nil
}

func main() {
	var (
		db      = flag.String("db", "db", "database directory (rpgen output)")
		record  = flag.String("record", "100", "record name")
		model   = flag.String("model", "model.json", "trained model (json or binary; local mode)")
		alpha   = flag.Float64("alpha", -1, "override alpha_test (-1 = use alpha_train; local mode)")
		verbose = flag.Bool("v", false, "print every beat decision")
		server  = flag.String("server", "", "classify via a running rpserve at this base URL instead of locally")
		wireFmt = flag.String("wire", "json", "request encoding with -server: json or binary")
		ref     = flag.String("ref", "", "catalog model reference with -server (default: the server's default model)")
	)
	flag.Parse()
	log.SetFlags(0)
	log.SetPrefix("rpclassify: ")

	if *wireFmt != "json" && *wireFmt != "binary" {
		log.Fatalf("-wire must be json or binary, not %q", *wireFmt)
	}
	if *server == "" && (*wireFmt != "json" || *ref != "") {
		log.Fatal("-wire and -ref only make sense with -server")
	}

	rec, err := wfdb.Load(*db, *record)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("record %s: %d signals, %.0f Hz, %.0f s, %d annotations\n",
		rec.Name, len(rec.Signals), rec.Fs, float64(len(rec.Signals[0]))/rec.Fs, len(rec.Ann))

	var peaks []int
	var decided []nfc.Decision
	if *server != "" {
		peaks, decided = classifyRemote(rec, *server, *wireFmt, *ref, *verbose)
	} else {
		peaks, decided = classifyLocal(rec, *model, *alpha, *verbose)
	}

	abnormal := 0
	for _, d := range decided {
		if d.Abnormal() {
			abnormal++
		}
	}
	fmt.Printf("classified: %d beats, %d flagged abnormal (%.1f%%)\n",
		len(decided), abnormal, 100*float64(abnormal)/float64(max(1, len(decided))))
	score(rec, peaks, decided)
}

// classifyLocal is the on-node path: the integer pipeline in-process.
func classifyLocal(rec *wfdb.Record, modelPath string, alpha float64, verbose bool) ([]int, []nfc.Decision) {
	m, err := loadModel(modelPath)
	if err != nil {
		log.Fatal(err)
	}
	emb, err := m.Quantize(fixp.MFLinear)
	if err != nil {
		log.Fatal(err)
	}
	if alpha >= 0 {
		emb.AlphaTest = fixp.AlphaToQ15(alpha)
	}

	// Front end on lead 0: filter, detect peaks.
	mv := make([]float64, len(rec.Signals[0]))
	for i, v := range rec.Signals[0] {
		mv[i] = float64(v-rec.ADCZero) / rec.Gain
	}
	filtered := sigdsp.FilterECG(mv, sigdsp.DefaultBaselineConfig(rec.Fs))
	peaks := peak.Detect(filtered, peak.Config{Fs: rec.Fs})
	fmt.Printf("peak detector: %d beats found\n", len(peaks))

	// Classification per detected beat (integer pipeline on raw ADC counts).
	before, after := 100, 100
	var decided []nfc.Decision
	for _, p := range peaks {
		w := sigdsp.WindowInt(rec.Signals[0], p, before, after)
		w = sigdsp.DownsampleInt(w, emb.Downsample)
		d := emb.Classify(w)
		decided = append(decided, d)
		if verbose {
			fmt.Printf("beat @%7d  ->  %s\n", p, d)
		}
	}
	return peaks, decided
}

// classifyRemote posts lead 0 to a running rpserve and converts the
// response back into the (peaks, decisions) shape the scorer consumes.
func classifyRemote(rec *wfdb.Record, base, wireFmt, ref string, verbose bool) ([]int, []nfc.Decision) {
	lead := rec.Signals[0]
	var (
		body []byte
		ct   string
		err  error
	)
	if wireFmt == "binary" {
		body = wire.AppendFrames(nil, lead, 2048)
		ct = wire.ContentTypeSamples
	} else {
		body, err = json.Marshal(serve.ClassifyRequest{Model: ref, Samples: lead})
		if err != nil {
			log.Fatal(err)
		}
		ct = wire.ContentTypeJSON
	}
	u := strings.TrimRight(base, "/") + "/v1/classify"
	if ref != "" && wireFmt == "binary" {
		u += "?model=" + url.QueryEscape(ref)
	}
	resp, err := http.Post(u, ct, bytes.NewReader(body))
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		log.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		log.Fatalf("server: %d: %s", resp.StatusCode, bytes.TrimSpace(raw))
	}
	var out serve.ClassifyResponse
	if err := json.Unmarshal(raw, &out); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("POST /v1/classify (%s, %d request bytes): model %s, %d beats\n",
		wireFmt, len(body), out.Model, out.Total)

	classes := map[string]nfc.Decision{
		nfc.DecideN.String(): nfc.DecideN, nfc.DecideL.String(): nfc.DecideL,
		nfc.DecideV.String(): nfc.DecideV, nfc.DecideU.String(): nfc.DecideU,
	}
	peaks := make([]int, 0, len(out.Beats))
	decided := make([]nfc.Decision, 0, len(out.Beats))
	for _, b := range out.Beats {
		d, ok := classes[b.Class]
		if !ok {
			log.Fatalf("server returned unknown class %q", b.Class)
		}
		peaks = append(peaks, b.Sample)
		decided = append(decided, d)
		if verbose {
			fmt.Printf("beat @%7d  ->  %s\n", b.Sample, b.Class)
		}
	}
	return peaks, decided
}

// score reports NDR/ARR against the record's annotations, when it has any.
func score(rec *wfdb.Record, peaks []int, decided []nfc.Decision) {
	if len(rec.Ann) == 0 {
		return
	}
	// Match detections to annotated beats.
	tol := int(0.05 * rec.Fs)
	var normalsTotal, normalsDiscarded, abTotal, abRecognized int
	for _, a := range rec.Ann {
		// Find the detection matching this annotation.
		match := -1
		for i, p := range peaks {
			if p >= a.Sample-tol && p <= a.Sample+tol {
				match = i
				break
			}
		}
		isNormal := a.Code == wfdb.CodeNormal
		if isNormal {
			normalsTotal++
		} else {
			abTotal++
		}
		if match < 0 {
			// Missed beats are never discarded; a missed abnormal is a miss.
			continue
		}
		if isNormal && decided[match] == nfc.DecideN {
			normalsDiscarded++
		}
		if !isNormal && decided[match].Abnormal() {
			abRecognized++
		}
	}
	if normalsTotal > 0 {
		fmt.Printf("NDR %.2f%% (%d/%d normals discarded)\n",
			100*float64(normalsDiscarded)/float64(normalsTotal), normalsDiscarded, normalsTotal)
	}
	if abTotal > 0 {
		fmt.Printf("ARR %.2f%% (%d/%d abnormals recognized)\n",
			100*float64(abRecognized)/float64(abTotal), abRecognized, abTotal)
	}
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
