// Command rpclassify runs the complete embedded classification pipeline on
// a WFDB record: morphological filtering, wavelet peak detection, beat
// windowing, downsampling, 2-bit packed random projection and the integer
// neuro-fuzzy classifier. When the record carries annotations, it reports
// NDR/ARR against them.
//
// Usage:
//
//	rpclassify -db ./db -record 100 -model model.json
//	rpclassify -db ./db -record 119 -model model.bin -alpha 0.02 -v
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"

	"rpbeat/internal/core"
	"rpbeat/internal/ecgsyn"
	"rpbeat/internal/fixp"
	"rpbeat/internal/nfc"
	"rpbeat/internal/peak"
	"rpbeat/internal/sigdsp"
	"rpbeat/internal/wfdb"
)

func loadModel(path string) (*core.Model, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	if bytes.HasPrefix(data, []byte("RPBT")) {
		return core.ReadBinary(bytes.NewReader(data))
	}
	var m core.Model
	if err := json.Unmarshal(data, &m); err != nil {
		return nil, err
	}
	return &m, nil
}

func main() {
	var (
		db      = flag.String("db", "db", "database directory (rpgen output)")
		record  = flag.String("record", "100", "record name")
		model   = flag.String("model", "model.json", "trained model (json or binary)")
		alpha   = flag.Float64("alpha", -1, "override alpha_test (-1 = use alpha_train)")
		verbose = flag.Bool("v", false, "print every beat decision")
	)
	flag.Parse()
	log.SetFlags(0)
	log.SetPrefix("rpclassify: ")

	m, err := loadModel(*model)
	if err != nil {
		log.Fatal(err)
	}
	emb, err := m.Quantize(fixp.MFLinear)
	if err != nil {
		log.Fatal(err)
	}
	if *alpha >= 0 {
		emb.AlphaTest = fixp.AlphaToQ15(*alpha)
	}

	rec, err := wfdb.Load(*db, *record)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("record %s: %d signals, %.0f Hz, %.0f s, %d annotations\n",
		rec.Name, len(rec.Signals), rec.Fs, float64(len(rec.Signals[0]))/rec.Fs, len(rec.Ann))

	// Front end on lead 0: filter, detect peaks.
	mv := make([]float64, len(rec.Signals[0]))
	for i, v := range rec.Signals[0] {
		mv[i] = float64(v-rec.ADCZero) / rec.Gain
	}
	filtered := sigdsp.FilterECG(mv, sigdsp.DefaultBaselineConfig(rec.Fs))
	peaks := peak.Detect(filtered, peak.Config{Fs: rec.Fs})
	fmt.Printf("peak detector: %d beats found\n", len(peaks))

	// Classification per detected beat (integer pipeline on raw ADC counts).
	before, after := 100, 100
	var decided []nfc.Decision
	abnormal := 0
	for _, p := range peaks {
		w := sigdsp.WindowInt(rec.Signals[0], p, before, after)
		w = sigdsp.DownsampleInt(w, emb.Downsample)
		d := emb.Classify(w)
		decided = append(decided, d)
		if d.Abnormal() {
			abnormal++
		}
		if *verbose {
			fmt.Printf("beat @%7d  ->  %s\n", p, d)
		}
	}
	fmt.Printf("classified: %d beats, %d flagged abnormal (%.1f%%)\n",
		len(decided), abnormal, 100*float64(abnormal)/float64(max(1, len(decided))))

	if len(rec.Ann) == 0 {
		return
	}
	// Score against annotations: match detections to annotated beats.
	tol := int(0.05 * rec.Fs)
	var normalsTotal, normalsDiscarded, abTotal, abRecognized int
	for _, a := range rec.Ann {
		// Find the detection matching this annotation.
		match := -1
		for i, p := range peaks {
			if p >= a.Sample-tol && p <= a.Sample+tol {
				match = i
				break
			}
		}
		isNormal := a.Code == wfdb.CodeNormal
		if isNormal {
			normalsTotal++
		} else {
			abTotal++
		}
		if match < 0 {
			// Missed beats are never discarded; a missed abnormal is a miss.
			continue
		}
		if isNormal && decided[match] == nfc.DecideN {
			normalsDiscarded++
		}
		if !isNormal && decided[match].Abnormal() {
			abRecognized++
		}
	}
	if normalsTotal > 0 {
		fmt.Printf("NDR %.2f%% (%d/%d normals discarded)\n",
			100*float64(normalsDiscarded)/float64(normalsTotal), normalsDiscarded, normalsTotal)
	}
	if abTotal > 0 {
		fmt.Printf("ARR %.2f%% (%d/%d abnormals recognized)\n",
			100*float64(abRecognized)/float64(abTotal), abRecognized, abTotal)
	}
	_ = ecgsyn.Fs
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
