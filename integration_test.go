package rpbeat

// Cross-module integration tests: the paths a deployment would exercise,
// including the on-disk WFDB round trip that cmd/rpgen + cmd/rpclassify use.

import (
	"bytes"
	"encoding/json"
	"testing"

	"rpbeat/internal/beatset"
	"rpbeat/internal/core"
	"rpbeat/internal/delin"
	"rpbeat/internal/ecgsyn"
	"rpbeat/internal/fixp"
	"rpbeat/internal/peak"
	"rpbeat/internal/sigdsp"
	"rpbeat/internal/wfdb"
)

// synthToWFDB writes a synthetic record to disk and loads it back.
func synthToWFDB(t *testing.T, spec ecgsyn.RecordSpec) (*ecgsyn.Record, *wfdb.Record) {
	t.Helper()
	rec := ecgsyn.Synthesize(spec)
	w := &wfdb.Record{
		Name: rec.Name, Fs: rec.Fs, Gain: ecgsyn.Gain, ADCZero: ecgsyn.Baseline,
		Descriptions: []string{"MLII", "I", "V1"},
	}
	for l := 0; l < ecgsyn.NumLeads; l++ {
		w.Signals = append(w.Signals, rec.Leads[l])
	}
	for _, a := range rec.Ann {
		code := wfdb.CodeNormal
		switch a.Class {
		case ecgsyn.ClassL:
			code = wfdb.CodeLBBB
		case ecgsyn.ClassV:
			code = wfdb.CodePVC
		}
		w.Ann = append(w.Ann, wfdb.Ann{Sample: a.Sample, Code: code})
	}
	dir := t.TempDir()
	if err := wfdb.Save(dir, w); err != nil {
		t.Fatal(err)
	}
	loaded, err := wfdb.Load(dir, rec.Name)
	if err != nil {
		t.Fatal(err)
	}
	return rec, loaded
}

func TestIntegration_SynthWFDBRoundTripPreservesEverything(t *testing.T) {
	rec, loaded := synthToWFDB(t, ecgsyn.RecordSpec{Name: "i100", Seconds: 60, Seed: 1, PVCRate: 0.1})
	if len(loaded.Signals) != ecgsyn.NumLeads {
		t.Fatalf("%d signals after round trip", len(loaded.Signals))
	}
	for l := 0; l < ecgsyn.NumLeads; l++ {
		for i := range rec.Leads[l] {
			if loaded.Signals[l][i] != rec.Leads[l][i] {
				t.Fatalf("lead %d sample %d corrupted by the codec", l, i)
			}
		}
	}
	if len(loaded.Ann) != len(rec.Ann) {
		t.Fatalf("annotations %d != %d", len(loaded.Ann), len(rec.Ann))
	}
	for i, a := range rec.Ann {
		if loaded.Ann[i].Sample != a.Sample {
			t.Fatalf("annotation %d moved", i)
		}
	}
}

func TestIntegration_DetectorOnDiskedRecord(t *testing.T) {
	// Full front end on a record that went through the on-disk format.
	_, loaded := synthToWFDB(t, ecgsyn.RecordSpec{Name: "i101", Seconds: 120, Seed: 2})
	mv := make([]float64, len(loaded.Signals[0]))
	for i, v := range loaded.Signals[0] {
		mv[i] = float64(v-loaded.ADCZero) / loaded.Gain
	}
	filtered := sigdsp.FilterECG(mv, sigdsp.DefaultBaselineConfig(loaded.Fs))
	det := peak.Detect(filtered, peak.Config{Fs: loaded.Fs})
	var ref []int
	for _, a := range loaded.Ann {
		ref = append(ref, a.Sample)
	}
	tp, _, fn := peak.Match(det, ref, 18)
	if se := float64(tp) / float64(tp+fn); se < 0.95 {
		t.Fatalf("sensitivity %.3f through the disk round trip", se)
	}
}

func TestIntegration_TrainSaveLoadClassify(t *testing.T) {
	// Train -> serialize (both formats) -> deserialize -> quantize ->
	// classify a disked record: the rptrain + rpclassify path.
	ds, err := beatset.Build(beatset.Config{Seed: 31, Scale: 0.03})
	if err != nil {
		t.Fatal(err)
	}
	m, _, err := core.Train(ds, core.Config{
		Coeffs: 8, Downsample: 4, PopSize: 4, Generations: 2,
		SCGIters: 50, MinARR: 0.9, Seed: 31,
	})
	if err != nil {
		t.Fatal(err)
	}
	// JSON round trip.
	data, err := json.Marshal(m)
	if err != nil {
		t.Fatal(err)
	}
	var viaJSON core.Model
	if err := json.Unmarshal(data, &viaJSON); err != nil {
		t.Fatal(err)
	}
	// Binary round trip.
	var buf bytes.Buffer
	if err := m.WriteBinary(&buf); err != nil {
		t.Fatal(err)
	}
	viaBin, err := core.ReadBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}

	_, loaded := synthToWFDB(t, ecgsyn.RecordSpec{Name: "i102", Seconds: 60, Seed: 3, PVCRate: 0.15})
	mv := make([]float64, len(loaded.Signals[0]))
	for i, v := range loaded.Signals[0] {
		mv[i] = float64(v-loaded.ADCZero) / loaded.Gain
	}
	filtered := sigdsp.FilterECG(mv, sigdsp.DefaultBaselineConfig(loaded.Fs))
	peaks := peak.Detect(filtered, peak.Config{Fs: loaded.Fs})
	if len(peaks) == 0 {
		t.Fatal("no beats detected")
	}

	embA, err := viaJSON.Quantize(fixp.MFLinear)
	if err != nil {
		t.Fatal(err)
	}
	embB, err := viaBin.Quantize(fixp.MFLinear)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range peaks {
		w := sigdsp.WindowInt(loaded.Signals[0], p, 100, 100)
		w = sigdsp.DownsampleInt(w, embA.Downsample)
		da := embA.Classify(w)
		db := embB.Classify(w)
		if da != db {
			t.Fatalf("JSON- and binary-loaded models disagree at %d: %v vs %v", p, da, db)
		}
	}
}

func TestIntegration_GatedDelineationTargetsAbnormalBeats(t *testing.T) {
	// On a PVC-rich record, the fraction of PVC annotations whose windows
	// classify abnormal should far exceed the false-alarm rate on normals;
	// delineation of those beats must produce QRS boundaries around each.
	ds, err := beatset.Build(beatset.Config{Seed: 33, Scale: 0.04})
	if err != nil {
		t.Fatal(err)
	}
	m, _, err := core.Train(ds, core.Config{
		Coeffs: 8, Downsample: 4, PopSize: 6, Generations: 4,
		SCGIters: 60, MinARR: 0.95, Seed: 33,
	})
	if err != nil {
		t.Fatal(err)
	}
	emb, err := m.Quantize(fixp.MFLinear)
	if err != nil {
		t.Fatal(err)
	}
	rec, _ := synthToWFDB(t, ecgsyn.RecordSpec{Name: "i103", Seconds: 300, Seed: 5, PVCRate: 0.2})

	mv := rec.LeadMillivolts(0)
	filtered := sigdsp.FilterECG(mv, sigdsp.DefaultBaselineConfig(rec.Fs))
	var flaggedV, totalV, flaggedN, totalN int
	var abnormalPeaks []int
	for _, a := range rec.Ann {
		if a.Sample < 120 || a.Sample > len(mv)-120 {
			continue
		}
		w := sigdsp.WindowInt(rec.Leads[0], a.Sample, 100, 100)
		w = sigdsp.DownsampleInt(w, emb.Downsample)
		d := emb.Classify(w)
		if a.Class == ecgsyn.ClassV {
			totalV++
			if d.Abnormal() {
				flaggedV++
				abnormalPeaks = append(abnormalPeaks, a.Sample)
			}
		} else {
			totalN++
			if d.Abnormal() {
				flaggedN++
			}
		}
	}
	if totalV == 0 {
		t.Fatal("no PVCs in record")
	}
	vRate := float64(flaggedV) / float64(totalV)
	nRate := float64(flaggedN) / float64(totalN)
	if vRate < 0.8 {
		t.Fatalf("only %.1f%% of PVCs flagged", 100*vRate)
	}
	if nRate > vRate/2 {
		t.Fatalf("normal false-alarm rate %.2f too close to PVC rate %.2f", nRate, vRate)
	}
	fids := delin.DelineateMultiLead([][]float64{filtered}, abnormalPeaks, delin.Config{Fs: rec.Fs})
	for i, f := range fids {
		if f.QRSOn < 0 || f.QRSOff < 0 {
			t.Fatalf("flagged beat %d missing QRS boundaries", i)
		}
	}
}
