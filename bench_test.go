package rpbeat

// One benchmark per table and figure of the paper's evaluation section,
// plus micro-benchmarks of the per-beat and per-second kernels the run-time
// analysis (Table III) models. The experiment benchmarks regenerate their
// result at a reduced dataset scale and GA budget so `go test -bench=.`
// terminates in minutes; `cmd/rpbench` runs the same drivers at full scale.

import (
	"context"
	"sync"
	"testing"

	"rpbeat/internal/beatset"
	"rpbeat/internal/core"
	"rpbeat/internal/ecgsyn"
	"rpbeat/internal/experiments"
	"rpbeat/internal/fixp"
	"rpbeat/internal/peak"
	"rpbeat/internal/pipeline"
	"rpbeat/internal/platform"
	"rpbeat/internal/rng"
	"rpbeat/internal/rp"
	"rpbeat/internal/sigdsp"
	"rpbeat/internal/wbsn"
)

// benchOptions keeps experiment benchmarks tractable.
func benchOptions() experiments.Options {
	return experiments.Options{
		Seed:        99,
		Scale:       0.05,
		PopSize:     8,
		Generations: 6,
		SCGIters:    80,
		MinARR:      0.97,
	}
}

var (
	benchOnce   sync.Once
	benchRunner *experiments.Runner
	benchModel  *core.Model
	benchEmb    *core.Embedded
	benchDS     *beatset.Dataset
)

func benchSetup(b *testing.B) (*experiments.Runner, *core.Model, *core.Embedded, *beatset.Dataset) {
	b.Helper()
	var err error
	benchOnce.Do(func() {
		benchRunner = experiments.NewRunner(benchOptions())
		benchDS, err = benchRunner.Dataset()
		if err != nil {
			return
		}
		benchModel, _, err = benchRunner.Model(8, 4)
		if err != nil {
			return
		}
		benchEmb, err = benchModel.Quantize(fixp.MFLinear)
	})
	if err != nil || benchEmb == nil {
		b.Fatalf("benchmark setup failed: %v", err)
	}
	return benchRunner, benchModel, benchEmb, benchDS
}

// --- Table I ---

func BenchmarkTableI_DatasetAssembly(b *testing.B) {
	for i := 0; i < b.N; i++ {
		ds, err := beatset.Build(beatset.Config{Seed: uint64(i + 1), Scale: 0.05})
		if err != nil {
			b.Fatal(err)
		}
		if len(ds.Beats) == 0 {
			b.Fatal("empty dataset")
		}
	}
}

// --- Table II: one benchmark per coefficient count, full two-step training
// (GA x SCG) plus test-set evaluation for all three rows. ---

func benchmarkTableII(b *testing.B, k int) {
	for i := 0; i < b.N; i++ {
		r := experiments.NewRunner(benchOptions())
		res, err := r.TableII([]int{k})
		if err != nil {
			b.Fatal(err)
		}
		if res.NDRPC[0] <= 0 {
			b.Fatal("degenerate NDR")
		}
	}
}

func BenchmarkTableII_Coefficients8(b *testing.B)  { benchmarkTableII(b, 8) }
func BenchmarkTableII_Coefficients16(b *testing.B) { benchmarkTableII(b, 16) }
func BenchmarkTableII_Coefficients32(b *testing.B) { benchmarkTableII(b, 32) }

// --- Figure 4 ---

func BenchmarkFigure4_MFShapes(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if pts := experiments.Figure4(); len(pts) == 0 {
			b.Fatal("no points")
		}
	}
}

// --- Figure 5 ---

func BenchmarkFigure5_ParetoFronts(b *testing.B) {
	r, _, _, _ := benchSetup(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := r.Figure5()
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Linear) == 0 {
			b.Fatal("empty front")
		}
	}
}

// --- Table III ---

func BenchmarkTableIII_CodeSizeAndDutyCycle(b *testing.B) {
	r, _, _, _ := benchSetup(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := r.TableIII()
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Rows) != 4 {
			b.Fatal("wrong row count")
		}
	}
}

// --- Sec. IV-E energy ---

func BenchmarkEnergy_Savings(b *testing.B) {
	r, _, _, _ := benchSetup(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := r.Energy()
		if err != nil {
			b.Fatal(err)
		}
		if res.Report.RadioReduction <= 0 {
			b.Fatal("no saving computed")
		}
	}
}

// --- Ablations ---

func BenchmarkAblation_DownsampleSweep(b *testing.B) {
	r, _, _, _ := benchSetup(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := r.DownsampleSweep([]int{4, 8}); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Micro-benchmarks of the node kernels (the quantities the Table III
// cost model prices) ---

func BenchmarkKernel_ProjectionPacked_8x50(b *testing.B) {
	r := rng.New(1)
	m := rp.Pack(rp.NewRandom(r, 8, 50))
	v := make([]int32, 50)
	for i := range v {
		v[i] = int32(r.Intn(2048))
	}
	u := make([]int32, 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.ProjectIntInto(v, u)
	}
}

func BenchmarkKernel_ProjectionDense_8x50(b *testing.B) {
	r := rng.New(1)
	m := rp.NewRandom(r, 8, 50)
	v := make([]int32, 50)
	for i := range v {
		v[i] = int32(r.Intn(2048))
	}
	u := make([]int32, 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.ProjectIntInto(v, u)
	}
}

func BenchmarkKernel_ProjectionSparse_8x50(b *testing.B) {
	r := rng.New(1)
	m := rp.NewSparse(rp.NewRandom(r, 8, 50))
	v := make([]int32, 50)
	for i := range v {
		v[i] = int32(r.Intn(2048))
	}
	u := make([]int32, 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.ProjectIntInto(v, u)
	}
}

// BenchmarkKernel_PipelinePushSteadyState measures the per-sample cost of
// the full online pipeline after warm-up. allocs/op must be 0 — the
// invariant TestPipelinePushZeroAlloc enforces and the Engine's
// many-streams story depends on.
func BenchmarkKernel_PipelinePushSteadyState(b *testing.B) {
	_, _, emb, _ := benchSetup(b)
	pipe, err := pipeline.New(emb, pipeline.Config{})
	if err != nil {
		b.Fatal(err)
	}
	rec := ecgsyn.Synthesize(ecgsyn.RecordSpec{Name: "push", Seconds: 60, Seed: 6, PVCRate: 0.1})
	lead := rec.Leads[0]
	for _, v := range lead {
		pipe.Push(v)
	}
	next := 0
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pipe.Push(lead[next])
		next++
		if next == len(lead) {
			next = 0
		}
	}
}

// BenchmarkKernel_BatchClassify30s is the /v1/classify serving shape: one
// whole record through the batch reference path with pooled scratch.
func BenchmarkKernel_BatchClassify30s(b *testing.B) {
	_, _, emb, _ := benchSetup(b)
	rec := ecgsyn.Synthesize(ecgsyn.RecordSpec{Name: "batch", Seconds: 30, Seed: 7, PVCRate: 0.1})
	lead := rec.Leads[0]
	var scratch pipeline.BatchScratch
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := pipeline.BatchClassifyInto(context.Background(), emb, lead, pipeline.Config{}, &scratch); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkKernel_IntegerClassifierPerBeat(b *testing.B) {
	_, _, emb, ds := benchSetup(b)
	w := ds.IntWindow(ds.Test[0], emb.Downsample)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = emb.Classify(w)
	}
}

// BenchmarkKernel_BitembClassifierPerBeat is the binary head on the same
// window: fused very-sparse projection + threshold + popcount, one scratch
// reused across beats (the pipeline's calling convention).
func BenchmarkKernel_BitembClassifierPerBeat(b *testing.B) {
	r, _, _, ds := benchSetup(b)
	bm, _, err := r.BitembModel(8, 4)
	if err != nil {
		b.Fatal(err)
	}
	emb, err := bm.Quantize(fixp.MFLinear)
	if err != nil {
		b.Fatal(err)
	}
	s := core.NewScratch(emb)
	w := ds.IntWindow(ds.Test[0], emb.Downsample)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = emb.ClassifyInto(w, s)
	}
}

func BenchmarkKernel_FloatClassifierPerBeat(b *testing.B) {
	_, m, _, ds := benchSetup(b)
	w := ds.FloatWindow(ds.Test[0], m.Downsample)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = m.Classify(w, m.AlphaTrain)
	}
}

func BenchmarkKernel_FrontEnd30s(b *testing.B) {
	rec := ecgsyn.Synthesize(ecgsyn.RecordSpec{Name: "b", Seconds: 30, Seed: 4})
	mv := rec.LeadMillivolts(0)
	cfg := sigdsp.DefaultBaselineConfig(rec.Fs)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		filtered := sigdsp.FilterECG(mv, cfg)
		_ = peak.Detect(filtered, peak.Config{Fs: rec.Fs})
	}
}

func BenchmarkKernel_FullNodePipeline30s(b *testing.B) {
	_, _, emb, _ := benchSetup(b)
	node, err := wbsn.NewNode(emb)
	if err != nil {
		b.Fatal(err)
	}
	rec := ecgsyn.Synthesize(ecgsyn.RecordSpec{Name: "b", Seconds: 30, Seed: 5, PVCRate: 0.1})
	leads := make([][]int32, ecgsyn.NumLeads)
	for l := range leads {
		leads[l] = rec.Leads[l]
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := node.Process(leads); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkKernel_PlatformCostModel(b *testing.B) {
	p := platform.SystemParams{
		Fs: 360, BeatsPerSec: 1.2, ActivationRate: 0.22,
		K: 8, D: 50, ClassifierData: 784, Leads: 3, Model: platform.Icyflex(),
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if rows := platform.TableIII(p); len(rows) != 4 {
			b.Fatal("bad rows")
		}
	}
}
