package delin

import (
	"math"
	"testing"

	"rpbeat/internal/ecgsyn"
	"rpbeat/internal/sigdsp"
)

// quietRecord synthesizes a low-noise record and returns its filtered leads,
// reference peaks, classes and ground-truth fiducials.
func quietRecord(seed uint64, seconds float64, pvcRate float64, lbbb bool) (
	leads [][]float64, peaks []int, classes []ecgsyn.Class, truth []ecgsyn.Fiducials) {
	v := ecgsyn.DefaultVariability()
	v.NoiseSDMin, v.NoiseSDMax = 0.004, 0.008
	v.WanderAmpMax, v.MainsAmpMax, v.ArtifactProb = 0.01, 0, 0
	rec := ecgsyn.Synthesize(ecgsyn.RecordSpec{
		Name: "d", Seconds: seconds, Seed: seed, PVCRate: pvcRate, LBBB: lbbb, Var: &v,
	})
	cfg := sigdsp.DefaultBaselineConfig(rec.Fs)
	for l := 0; l < ecgsyn.NumLeads; l++ {
		leads = append(leads, sigdsp.FilterECG(rec.LeadMillivolts(l), cfg))
	}
	for i, a := range rec.Ann {
		peaks = append(peaks, a.Sample)
		classes = append(classes, a.Class)
		truth = append(truth, rec.Truth[i])
	}
	return
}

func TestMultiLeadQRSBoundaries(t *testing.T) {
	leads, peaks, _, truth := quietRecord(1, 60, 0, false)
	fids := DelineateMultiLead(leads, peaks, Config{Fs: 360})
	if len(fids) != len(peaks) {
		t.Fatalf("got %d fiducial sets for %d beats", len(fids), len(peaks))
	}
	const tol = 18 // 50 ms
	okOn, okOff, n := 0, 0, 0
	for i, f := range fids {
		if truth[i].QRSOn < 200 || truth[i].QRSOff > len(leads[0])-200 {
			continue // skip boundary beats
		}
		n++
		if f.QRSOn >= 0 && abs(f.QRSOn-truth[i].QRSOn) <= tol {
			okOn++
		}
		if f.QRSOff >= 0 && abs(f.QRSOff-truth[i].QRSOff) <= tol {
			okOff++
		}
	}
	if n == 0 {
		t.Fatal("no beats evaluated")
	}
	if rate := float64(okOn) / float64(n); rate < 0.9 {
		t.Fatalf("QRS onset within 50 ms for only %.1f%% of beats", 100*rate)
	}
	if rate := float64(okOff) / float64(n); rate < 0.9 {
		t.Fatalf("QRS end within 50 ms for only %.1f%% of beats", 100*rate)
	}
}

func TestMultiLeadTWave(t *testing.T) {
	leads, peaks, _, truth := quietRecord(2, 60, 0, false)
	fids := DelineateMultiLead(leads, peaks, Config{Fs: 360})
	const tol = 25 // ~70 ms: T boundaries are soft even for human annotators
	ok, n := 0, 0
	for i, f := range fids {
		if truth[i].TPeak < 0 || truth[i].TOff > len(leads[0])-200 || truth[i].TOn < 200 {
			continue
		}
		n++
		if f.TPeak >= 0 && abs(f.TPeak-truth[i].TPeak) <= tol {
			ok++
		}
	}
	if n == 0 {
		t.Fatal("no T waves evaluated")
	}
	if rate := float64(ok) / float64(n); rate < 0.85 {
		t.Fatalf("T peak within 70 ms for only %.1f%% of beats (%d/%d)", 100*rate, ok, n)
	}
}

func TestPWavePresenceByClass(t *testing.T) {
	leads, peaks, classes, _ := quietRecord(3, 240, 0.15, false)
	fids := DelineateMultiLead(leads, peaks, Config{Fs: 360})
	var pOnN, nN, pOnV, nV int
	for i, f := range fids {
		switch classes[i] {
		case ecgsyn.ClassN:
			nN++
			if f.PPeak >= 0 {
				pOnN++
			}
		case ecgsyn.ClassV:
			nV++
			if f.PPeak >= 0 {
				pOnV++
			}
		}
	}
	if nN == 0 || nV == 0 {
		t.Fatalf("need both N and V beats (%d, %d)", nN, nV)
	}
	if rate := float64(pOnN) / float64(nN); rate < 0.7 {
		t.Fatalf("P wave found on only %.1f%% of N beats", 100*rate)
	}
	if rate := float64(pOnV) / float64(nV); rate > 0.45 {
		t.Fatalf("P wave 'found' on %.1f%% of V beats (should be absent)", 100*rate)
	}
}

func TestSingleLeadAgreesWithTruthOnQRS(t *testing.T) {
	leads, peaks, _, truth := quietRecord(4, 60, 0, false)
	fids := DelineateLead(leads[0], peaks, Config{Fs: 360})
	const tol = 20
	ok, n := 0, 0
	for i, f := range fids {
		if truth[i].QRSOn < 200 || truth[i].QRSOff > len(leads[0])-200 {
			continue
		}
		n++
		if f.QRSOn >= 0 && abs(f.QRSOn-truth[i].QRSOn) <= tol &&
			f.QRSOff >= 0 && abs(f.QRSOff-truth[i].QRSOff) <= tol {
			ok++
		}
	}
	if rate := float64(ok) / float64(n); rate < 0.85 {
		t.Fatalf("single-lead QRS boundaries within 55 ms for only %.1f%% (%d/%d)", 100*rate, ok, n)
	}
}

func TestLBBBWideQRS(t *testing.T) {
	// Delineated QRS duration for LBBB beats must exceed that of normal
	// beats (the defining feature of the class).
	leadsN, peaksN, _, _ := quietRecord(5, 60, 0, false)
	fidsN := DelineateMultiLead(leadsN, peaksN, Config{Fs: 360})
	leadsL, peaksL, _, _ := quietRecord(6, 60, 0, true)
	fidsL := DelineateMultiLead(leadsL, peaksL, Config{Fs: 360})

	mean := func(fids []Fiducials) float64 {
		var s, n float64
		for _, f := range fids {
			if f.QRSOn >= 0 && f.QRSOff > f.QRSOn {
				s += float64(f.QRSOff - f.QRSOn)
				n++
			}
		}
		return s / math.Max(n, 1)
	}
	durN, durL := mean(fidsN), mean(fidsL)
	if durL <= durN {
		t.Fatalf("LBBB QRS duration %.1f samples not wider than normal %.1f", durL, durN)
	}
}

func TestFiducialOrderingInvariant(t *testing.T) {
	leads, peaks, _, _ := quietRecord(7, 120, 0.1, false)
	fids := DelineateMultiLead(leads, peaks, Config{Fs: 360})
	for i, f := range fids {
		if f.QRSOn >= 0 && f.QRSOff >= 0 && f.QRSOn >= f.QRSOff {
			t.Fatalf("beat %d: QRS onset %d >= end %d", i, f.QRSOn, f.QRSOff)
		}
		if f.POn >= 0 && !(f.POn < f.PPeak && f.PPeak < f.POff) {
			t.Fatalf("beat %d: P fiducials out of order: %+v", i, f)
		}
		if f.TOn >= 0 && !(f.TOn < f.TPeak && f.TPeak < f.TOff) {
			t.Fatalf("beat %d: T fiducials out of order: %+v", i, f)
		}
		if f.POff >= 0 && f.QRSOn >= 0 && f.POff > f.QRSOn+5 {
			t.Fatalf("beat %d: P end %d after QRS onset %d", i, f.POff, f.QRSOn)
		}
	}
}

func TestCountFiducials(t *testing.T) {
	f := Fiducials{POn: -1, PPeak: -1, POff: -1, QRSOn: 10, RPeak: 20, QRSOff: 30, TOn: 40, TPeak: 50, TOff: 60}
	if f.Count() != 6 {
		t.Fatalf("count = %d, want 6", f.Count())
	}
}

func TestDelineateEmptyInputs(t *testing.T) {
	if got := DelineateMultiLead(nil, []int{5}, Config{}); got != nil {
		t.Fatal("no leads should give nil")
	}
	fids := DelineateLead([]float64{0, 0, 0}, []int{-5, 99}, Config{Fs: 360})
	if len(fids) != 2 {
		t.Fatalf("got %d fiducial sets", len(fids))
	}
	if fids[0].RPeak != -1 {
		t.Fatal("out-of-range peak should yield RPeak=-1")
	}
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

func BenchmarkDelineateMultiLead30s(b *testing.B) {
	leads, peaks, _, _ := quietRecordB(30)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = DelineateMultiLead(leads, peaks, Config{Fs: 360})
	}
}

func quietRecordB(seconds float64) ([][]float64, []int, []ecgsyn.Class, []ecgsyn.Fiducials) {
	v := ecgsyn.DefaultVariability()
	rec := ecgsyn.Synthesize(ecgsyn.RecordSpec{Name: "b", Seconds: seconds, Seed: 1, Var: &v})
	cfg := sigdsp.DefaultBaselineConfig(rec.Fs)
	var leads [][]float64
	for l := 0; l < ecgsyn.NumLeads; l++ {
		leads = append(leads, sigdsp.FilterECG(rec.LeadMillivolts(l), cfg))
	}
	var peaks []int
	for _, a := range rec.Ann {
		peaks = append(peaks, a.Sample)
	}
	return leads, peaks, nil, nil
}
