// Package delin implements ECG wave delineation with multiscale
// morphological derivatives (MMD), the "detailed analysis" stage the
// RP-classifier gates on the WBSN (sub-system (2) of the paper, after
// Rincon et al., IEEE TITB 2011).
//
// The MMD transform (see sigdsp.MMD) responds positively at concave corners
// of the signal — wave onsets and ends — and strongly negatively at convex
// peaks, so fiducial points are located as MMD extrema inside physiologically
// bounded search windows around each detected R peak. Three-lead delineation
// fuses the filtered leads into a root-sum-square envelope before applying
// the transform, which makes boundaries visible even when a wave projects
// weakly on one lead.
package delin

import (
	"math"

	"rpbeat/internal/sigdsp"
)

// Fiducials are the delineation outputs for one beat: nine fiducial points
// (3 waves × onset/peak/end), as sample indices, or -1 when the wave was not
// found (e.g. no P wave before a ventricular beat).
type Fiducials struct {
	POn, PPeak, POff     int
	QRSOn, RPeak, QRSOff int
	TOn, TPeak, TOff     int
}

// Count returns how many of the nine fiducial points were found.
func (f *Fiducials) Count() int {
	n := 0
	for _, v := range []int{f.POn, f.PPeak, f.POff, f.QRSOn, f.RPeak, f.QRSOff, f.TOn, f.TPeak, f.TOff} {
		if v >= 0 {
			n++
		}
	}
	return n
}

// Config bounds the search windows. Zero values take defaults suitable for
// adult ECG at any sampling rate (windows are expressed in seconds).
type Config struct {
	Fs float64 // sampling frequency; default 360

	QRSScaleSec float64 // MMD scale for QRS corners; default 0.028
	PTScaleSec  float64 // MMD scale for P/T corners; default 0.055

	QRSPreSec  float64 // QRS onset search before R; default 0.13
	QRSPostSec float64 // QRS end search after R; default 0.17
	PWinSec    float64 // P search window before QRS onset; default 0.24
	TWinSec    float64 // T search window after QRS end; default 0.38

	// PMinAmp is the minimum P-wave prominence (in signal units) for the
	// wave to be reported; default 0.05 (mV when fed millivolt signals).
	PMinAmp float64
}

func (c Config) withDefaults() Config {
	if c.Fs <= 0 {
		c.Fs = 360
	}
	if c.QRSScaleSec <= 0 {
		c.QRSScaleSec = 0.028
	}
	if c.PTScaleSec <= 0 {
		c.PTScaleSec = 0.055
	}
	if c.QRSPreSec <= 0 {
		c.QRSPreSec = 0.13
	}
	if c.QRSPostSec <= 0 {
		c.QRSPostSec = 0.17
	}
	if c.PWinSec <= 0 {
		c.PWinSec = 0.24
	}
	if c.TWinSec <= 0 {
		c.TWinSec = 0.38
	}
	if c.PMinAmp <= 0 {
		c.PMinAmp = 0.05
	}
	return c
}

// DelineateLead delineates every beat of one filtered (baseline-free) lead
// given the detected R-peak positions. The lead is rectified first so that
// inverted waves (discordant T in LBBB/PVC beats, Q/S deflections) present
// the same corner geometry as upright ones: onsets/ends are concave corners
// (MMD maxima) and wave apexes convex peaks (MMD minima) of the envelope.
func DelineateLead(x []float64, rPeaks []int, cfg Config) []Fiducials {
	env := make([]float64, len(x))
	for i, v := range x {
		env[i] = math.Abs(v)
	}
	return delineate(env, rPeaks, cfg)
}

// DelineateMultiLead fuses the filtered leads (root sum of squares, which
// rectifies and combines wave energy across projections) and delineates the
// fused envelope. This is the 3-lead configuration of sub-system (2).
func DelineateMultiLead(leads [][]float64, rPeaks []int, cfg Config) []Fiducials {
	if len(leads) == 0 {
		return nil
	}
	n := len(leads[0])
	fused := make([]float64, n)
	for i := 0; i < n; i++ {
		var s float64
		for _, l := range leads {
			s += l[i] * l[i]
		}
		fused[i] = math.Sqrt(s)
	}
	return delineate(fused, rPeaks, cfg)
}

func delineate(x []float64, rPeaks []int, cfg Config) []Fiducials {
	c := cfg.withDefaults()
	qrsScale := int(c.QRSScaleSec * c.Fs)
	ptScale := int(c.PTScaleSec * c.Fs)
	mmdQRS := sigdsp.MMD(x, qrsScale)
	mmdPT := sigdsp.MMD(x, ptScale)

	out := make([]Fiducials, len(rPeaks))
	for i, r := range rPeaks {
		out[i] = delineateBeat(x, mmdQRS, mmdPT, r, c)
	}
	return out
}

func delineateBeat(x, mmdQRS, mmdPT []float64, r int, c Config) Fiducials {
	f := Fiducials{POn: -1, PPeak: -1, POff: -1, QRSOn: -1, RPeak: r, QRSOff: -1, TOn: -1, TPeak: -1, TOff: -1}
	n := len(x)
	if r < 0 || r >= n {
		f.RPeak = -1
		return f
	}
	sec := func(s float64) int { return int(s * c.Fs) }

	// QRS onset: the strongest concave corner (MMD maximum) before R.
	lo, hi := r-sec(c.QRSPreSec), r-sec(0.012)
	f.QRSOn = argmaxRange(mmdQRS, lo, hi)
	// QRS end: the strongest corner after R.
	lo, hi = r+sec(0.012), r+sec(c.QRSPostSec)
	f.QRSOff = argmaxRange(mmdQRS, lo, hi)

	// T wave: search after QRS end.
	if f.QRSOff >= 0 {
		tLo := f.QRSOff + sec(0.04)
		tHi := f.QRSOff + sec(c.TWinSec)
		if tHi > n {
			tHi = n
		}
		// T peak: strongest convex extremum (most negative MMD).
		f.TPeak = argminRange(mmdPT, tLo, tHi)
		if f.TPeak >= 0 {
			f.TOn = argmaxRange(mmdPT, tLo, f.TPeak-sec(0.01))
			f.TOff = argmaxRange(mmdPT, f.TPeak+sec(0.01), tHi+sec(0.08))
			if f.TOn < 0 || f.TOff < 0 {
				f.TOn, f.TPeak, f.TOff = -1, -1, -1
			}
		}
	}

	// P wave: search before QRS onset; may be absent (PVC).
	if f.QRSOn >= 0 {
		pLo := f.QRSOn - sec(c.PWinSec)
		pHi := f.QRSOn - sec(0.015)
		pPeak := argminRange(mmdPT, pLo, pHi)
		if pPeak >= 0 {
			// Prominence test against the local envelope baseline.
			base := math.Min(valueAt(x, pLo), valueAt(x, pHi))
			if x[pPeak]-base >= c.PMinAmp {
				f.PPeak = pPeak
				f.POn = argmaxRange(mmdPT, pLo-sec(0.06), pPeak-sec(0.01))
				f.POff = argmaxRange(mmdPT, pPeak+sec(0.01), pHi+sec(0.02))
				if f.POn < 0 || f.POff < 0 {
					f.POn, f.PPeak, f.POff = -1, -1, -1
				}
			}
		}
	}
	return f
}

func valueAt(x []float64, i int) float64 {
	if i < 0 {
		i = 0
	}
	if i >= len(x) {
		i = len(x) - 1
	}
	if len(x) == 0 {
		return 0
	}
	return x[i]
}

// argmaxRange returns the index of the maximum of v on [lo, hi), clipped to
// the signal, or -1 for an empty window.
func argmaxRange(v []float64, lo, hi int) int {
	if lo < 0 {
		lo = 0
	}
	if hi > len(v) {
		hi = len(v)
	}
	if hi <= lo {
		return -1
	}
	best := lo
	for i := lo + 1; i < hi; i++ {
		if v[i] > v[best] {
			best = i
		}
	}
	return best
}

// argminRange is argmaxRange for the minimum.
func argminRange(v []float64, lo, hi int) int {
	if lo < 0 {
		lo = 0
	}
	if hi > len(v) {
		hi = len(v)
	}
	if hi <= lo {
		return -1
	}
	best := lo
	for i := lo + 1; i < hi; i++ {
		if v[i] < v[best] {
			best = i
		}
	}
	return best
}
