package apierrcheck_test

import (
	"testing"

	"rpbeat/internal/analysis/analysistest"
	"rpbeat/internal/analysis/apierrcheck"
)

func TestAPIErrCheck(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(t), apierrcheck.Analyzer,
		"rpbeat/internal/serve",
		"rpbeat/internal/other",
	)
}
