// Package apierrcheck enforces the typed-error wire contract in the HTTP
// tiers: every error value that reaches a response-writing sink in
// internal/serve or internal/gate must be a typed apierr value (or pass
// through apierr.From), never a raw fmt.Errorf / errors.New. A raw error
// reaching the wire would render as code "internal" with an arbitrary
// message, silently breaking the byte-identity proxy contract between the
// gateway and the serving tier.
package apierrcheck

import (
	"go/ast"
	"go/types"
	"strings"

	"rpbeat/internal/analysis"
)

// Analyzer flags fmt.Errorf/errors.New values flowing into wire-facing
// error sinks of internal/serve and internal/gate.
var Analyzer = &analysis.Analyzer{
	Name: "apierrcheck",
	Doc: "report raw errors reaching wire-facing sinks in internal/serve and internal/gate\n\n" +
		"A sink is any function or closure whose error parameter flows into\n" +
		"apierr.From (the coercion point before wire.AppendError), or that\n" +
		"forwards its error parameter to another sink. At every sink call\n" +
		"site the error argument must not be a fmt.Errorf or errors.New\n" +
		"value — construct a typed apierr code instead, so the client sees\n" +
		"a stable machine-readable refusal.",
	Run: run,
}

func run(pass *analysis.Pass) error {
	path := pass.Pkg.Path()
	if !strings.HasSuffix(path, "internal/serve") && !strings.HasSuffix(path, "internal/gate") {
		return nil
	}
	c := &checker{
		pass:  pass,
		sinks: make(map[types.Object]bool),
		fns:   make(map[types.Object]fn),
	}
	c.collect()
	c.resolveSinks()
	c.checkCallSites()
	return nil
}

// fn is one candidate sink: a declared function or a closure bound to a
// local variable, with its error-typed parameter objects.
type fn struct {
	body    *ast.BlockStmt
	errPars map[types.Object]bool
}

type checker struct {
	pass  *analysis.Pass
	sinks map[types.Object]bool
	fns   map[types.Object]fn
}

// collect gathers every function declaration and every `name := func(...)`
// closure that has at least one error-typed parameter.
func (c *checker) collect() {
	info := c.pass.TypesInfo
	for _, f := range c.pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			obj := info.Defs[fd.Name]
			if obj == nil {
				continue
			}
			if ep := errParams(info, fd.Type.Params); len(ep) > 0 {
				c.fns[obj] = fn{body: fd.Body, errPars: ep}
			}
			// Closures bound to locals inside any function body.
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				as, ok := n.(*ast.AssignStmt)
				if !ok {
					return true
				}
				for i, rhs := range as.Rhs {
					fl, ok := rhs.(*ast.FuncLit)
					if !ok || i >= len(as.Lhs) {
						continue
					}
					id, ok := as.Lhs[i].(*ast.Ident)
					if !ok {
						continue
					}
					vobj := info.Defs[id]
					if vobj == nil {
						vobj = info.Uses[id]
					}
					if vobj == nil {
						continue
					}
					if ep := errParams(info, fl.Type.Params); len(ep) > 0 {
						c.fns[vobj] = fn{body: fl.Body, errPars: ep}
					}
				}
				return true
			})
		}
	}
}

// errParams returns the set of error-typed parameter objects of a field
// list.
func errParams(info *types.Info, params *ast.FieldList) map[types.Object]bool {
	out := make(map[types.Object]bool)
	if params == nil {
		return out
	}
	for _, field := range params.List {
		for _, name := range field.Names {
			obj := info.Defs[name]
			if obj != nil && isErrorType(obj.Type()) {
				out[obj] = true
			}
		}
	}
	return out
}

func isErrorType(t types.Type) bool {
	return types.Identical(t, types.Universe.Lookup("error").Type())
}

// resolveSinks marks direct sinks (error param flows into apierr.From) and
// then iterates transitive ones (error param forwarded to a known sink) to
// a fixed point.
func (c *checker) resolveSinks() {
	info := c.pass.TypesInfo
	for obj, f := range c.fns {
		if c.paramFlowsToFrom(info, f) {
			c.sinks[obj] = true
		}
	}
	for changed := true; changed; {
		changed = false
		for obj, f := range c.fns {
			if c.sinks[obj] {
				continue
			}
			if c.paramForwardedToSink(info, f) {
				c.sinks[obj] = true
				changed = true
			}
		}
	}
}

func (c *checker) paramFlowsToFrom(info *types.Info, f fn) bool {
	found := false
	ast.Inspect(f.body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || !isApierrFrom(info, call) {
			return true
		}
		for _, arg := range call.Args {
			if id, ok := ast.Unparen(arg).(*ast.Ident); ok && f.errPars[info.Uses[id]] {
				found = true
			}
		}
		return true
	})
	return found
}

func (c *checker) paramForwardedToSink(info *types.Info, f fn) bool {
	found := false
	ast.Inspect(f.body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		callee := calleeObject(info, call)
		if callee == nil || !c.sinks[callee] {
			return true
		}
		for _, arg := range call.Args {
			if id, ok := ast.Unparen(arg).(*ast.Ident); ok && f.errPars[info.Uses[id]] {
				found = true
			}
		}
		return true
	})
	return found
}

// checkCallSites inspects every call to a resolved sink and flags raw
// error constructors in its error-typed argument positions.
func (c *checker) checkCallSites() {
	info := c.pass.TypesInfo
	for _, f := range c.pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			callee := calleeObject(info, call)
			if callee == nil || !c.sinks[callee] {
				return true
			}
			sinkName := callee.Name()
			for _, arg := range call.Args {
				if !isErrorExpr(info, arg) {
					continue
				}
				if origin := rawConstructor(info, f, arg); origin != "" {
					c.pass.Reportf(arg.Pos(),
						"raw %s error reaches wire sink %s; use a typed apierr code so the client sees a stable machine-readable error", origin, sinkName)
				}
			}
			return true
		})
	}
}

func isErrorExpr(info *types.Info, e ast.Expr) bool {
	t := info.Types[e].Type
	return t != nil && isErrorType(t)
}

// rawConstructor reports the untyped constructor ("fmt.Errorf",
// "errors.New", ...) behind the expression, or "" when the value is typed
// or of unknown provenance. It resolves one level of local or package
// variable indirection.
func rawConstructor(info *types.Info, file *ast.File, e ast.Expr) string {
	e = ast.Unparen(e)
	if call, ok := e.(*ast.CallExpr); ok {
		return rawCall(info, call)
	}
	id, ok := e.(*ast.Ident)
	if !ok {
		return ""
	}
	obj := info.Uses[id]
	v, ok := obj.(*types.Var)
	if !ok {
		return ""
	}
	// Every assignment to the variable must be a raw constructor for the
	// flag to fire — if any source is unknown, stay silent.
	origin := ""
	unknown := false
	ast.Inspect(file, func(n ast.Node) bool {
		if unknown {
			return false
		}
		switch n := n.(type) {
		case *ast.AssignStmt:
			for i, lhs := range n.Lhs {
				lid, ok := ast.Unparen(lhs).(*ast.Ident)
				if !ok || (info.Defs[lid] != v && info.Uses[lid] != v) {
					continue
				}
				if len(n.Rhs) != len(n.Lhs) {
					unknown = true
					return false
				}
				rc, ok := ast.Unparen(n.Rhs[i]).(*ast.CallExpr)
				if !ok {
					unknown = true
					return false
				}
				if o := rawCall(info, rc); o != "" {
					origin = o
				} else {
					unknown = true
					return false
				}
			}
		case *ast.ValueSpec:
			for i, name := range n.Names {
				if info.Defs[name] != v {
					continue
				}
				if i >= len(n.Values) {
					continue // zero value nil: fine
				}
				rc, ok := ast.Unparen(n.Values[i]).(*ast.CallExpr)
				if !ok {
					unknown = true
					return false
				}
				if o := rawCall(info, rc); o != "" {
					origin = o
				} else {
					unknown = true
					return false
				}
			}
		}
		return true
	})
	if unknown {
		return ""
	}
	return origin
}

// rawCall reports "fmt.Errorf" or "errors.New" when the call is one of the
// raw constructors, "" otherwise.
func rawCall(info *types.Info, call *ast.CallExpr) string {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return ""
	}
	pn, ok := info.Uses[id].(*types.PkgName)
	if !ok {
		return ""
	}
	switch {
	case pn.Imported().Path() == "fmt" && sel.Sel.Name == "Errorf":
		return "fmt.Errorf"
	case pn.Imported().Path() == "errors" && sel.Sel.Name == "New":
		return "errors.New"
	}
	return ""
}

// isApierrFrom matches apierr.From(...) for any import whose path ends in
// /apierr (the real package or a fixture stub).
func isApierrFrom(info *types.Info, call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "From" {
		return false
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return false
	}
	pn, ok := info.Uses[id].(*types.PkgName)
	if !ok {
		return false
	}
	p := pn.Imported().Path()
	return p == "apierr" || strings.HasSuffix(p, "/apierr")
}

// calleeObject resolves the called function to its object: a declared
// function (possibly pkg-qualified within the package) or a local closure
// variable.
func calleeObject(info *types.Info, call *ast.CallExpr) types.Object {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return info.Uses[fun]
	case *ast.SelectorExpr:
		return info.Uses[fun.Sel]
	}
	return nil
}
