// Fixtures for the apierrcheck analyzer: writeErr is a direct sink (its
// error parameter flows into apierr.From), streamErr/abort are the closure
// and transitive-closure shapes from the real stream handler.
package serve

import (
	"errors"
	"fmt"
	"io"

	"rpbeat/internal/apierr"
)

func writeErr(w io.Writer, err error) {
	ae := apierr.From(err)
	w.Write([]byte(ae.Message))
}

func handleRawErrorf(w io.Writer, path string) {
	writeErr(w, fmt.Errorf("no handler for %s", path)) // want `raw fmt\.Errorf error reaches wire sink writeErr`
}

func handleRawNewVar(w io.Writer) {
	err := errors.New("nope")
	writeErr(w, err) // want `raw errors\.New error reaches wire sink writeErr`
}

func handleTyped(w io.Writer) {
	writeErr(w, apierr.New("bad_input", "bad payload")) // typed: clean
}

func handleUnknownProvenance(w io.Writer, err error) {
	writeErr(w, err) // caller-supplied: provenance unknown, not flagged
}

func handleStream(w io.Writer) {
	streamErr := func(err error) {
		ae := apierr.From(err)
		w.Write([]byte(ae.Message))
	}
	abort := func(err error) {
		streamErr(err)
	}
	streamErr(errors.New("torn line"))  // want `raw errors\.New error reaches wire sink streamErr`
	abort(fmt.Errorf("backend lost"))   // want `raw fmt\.Errorf error reaches wire sink abort`
	abort(apierr.New("internal", "x"))  // typed through the transitive sink: clean
	streamErr(coerce(io.ErrClosedPipe)) // coerced elsewhere: clean
}

func coerce(err error) error {
	return apierr.New("internal", err.Error())
}
