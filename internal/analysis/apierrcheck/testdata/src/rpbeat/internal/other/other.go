// Negative fixture: the same raw-error-to-sink shape OUTSIDE
// internal/serve and internal/gate — apierrcheck scopes to the wire tiers
// and must stay silent here.
package other

import (
	"errors"
	"io"

	"rpbeat/internal/apierr"
)

func writeErr(w io.Writer, err error) {
	ae := apierr.From(err)
	w.Write([]byte(ae.Message))
}

func handle(w io.Writer) {
	writeErr(w, errors.New("internal tier, not wire-facing"))
}
