// Package apierr is a fixture stub of the real rpbeat/internal/apierr:
// just enough surface for the apierrcheck fixtures to exercise sink
// detection (From) and typed construction (New).
package apierr

type Code string

// Error is the typed wire error.
type Error struct {
	Code    Code
	Message string
}

func (e *Error) Error() string { return e.Message }

// New builds a typed error.
func New(code Code, msg string) *Error { return &Error{Code: code, Message: msg} }

// From coerces any error into a typed one.
func From(err error) *Error {
	if e, ok := err.(*Error); ok {
		return e
	}
	return &Error{Code: "internal", Message: err.Error()}
}
