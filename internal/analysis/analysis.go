// Package analysis is a self-contained static-analysis framework for the
// repo's own invariant checkers (cmd/rpvet). It mirrors the API shape of
// golang.org/x/tools/go/analysis — Analyzer, Pass, Diagnostic — so the
// checkers themselves read like stock vet passes and could be lifted onto
// the x/tools driver unchanged, but it is built entirely on the standard
// library (go/ast, go/parser, go/types, go/importer): the module has no
// external dependencies and its analyzers must not introduce one.
//
// The framework has three parts:
//
//   - this file: the Analyzer/Pass/Diagnostic contract and the
//     //rpvet:allow suppression mechanism;
//   - load.go: a module-aware package loader that parses and type-checks
//     rpbeat packages from source in dependency order, resolving standard
//     library imports through go/importer's source importer (no `go list`
//     subprocess, no network, no GOPATH);
//   - analysistest/: a fixture harness in the style of x/tools'
//     analysistest, driving an analyzer over testdata/src packages and
//     matching reported diagnostics against `// want "regexp"` comments.
//
// Suppressing a false positive: put the comment
//
//	//rpvet:allow <analyzer> -- <why this site is safe>
//
// on the flagged line or the line directly above it. Suppressions are
// deliberately per-site and per-analyzer; there is no file- or
// package-level escape hatch, so every waived diagnostic is visible next
// to the code it waives.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Analyzer is one invariant checker.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in //rpvet:allow
	// suppression comments.
	Name string
	// Doc is the one-paragraph description `rpvet -help` prints.
	Doc string
	// Run inspects one package and reports diagnostics through the pass.
	Run func(*Pass) error
}

// Pass carries one analyzed package into an Analyzer's Run.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	diags []Diagnostic
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.diags = append(p.diags, Diagnostic{
		Pos:      pos,
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// Diagnostic is one reported invariant violation.
type Diagnostic struct {
	Pos      token.Pos
	Analyzer string
	Message  string
}

// allowPrefix opens a suppression comment; the analyzer name follows, then
// optionally " -- reason".
const allowPrefix = "//rpvet:allow "

// suppressed reports whether a //rpvet:allow comment for the named analyzer
// sits on the diagnostic's line or the line directly above it.
func suppressed(fset *token.FileSet, files []*ast.File, d Diagnostic) bool {
	pos := fset.Position(d.Pos)
	for _, f := range files {
		if fset.Position(f.Pos()).Filename != pos.Filename {
			continue
		}
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text, ok := strings.CutPrefix(c.Text, allowPrefix)
				if !ok {
					continue
				}
				name, _, _ := strings.Cut(text, "--")
				if strings.TrimSpace(name) != d.Analyzer {
					continue
				}
				if line := fset.Position(c.Pos()).Line; line == pos.Line || line == pos.Line-1 {
					return true
				}
			}
		}
		return false
	}
	return false
}

// RunAnalyzers applies every analyzer to every package, drops suppressed
// diagnostics and returns the rest in file/line order.
func RunAnalyzers(analyzers []*Analyzer, pkgs []*Package) ([]Diagnostic, error) {
	var out []Diagnostic
	for _, pkg := range pkgs {
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer:  a,
				Fset:      pkg.Fset,
				Files:     pkg.Files,
				Pkg:       pkg.Types,
				TypesInfo: pkg.Info,
			}
			if err := a.Run(pass); err != nil {
				return out, fmt.Errorf("%s on %s: %w", a.Name, pkg.Path, err)
			}
			for _, d := range pass.diags {
				if !suppressed(pkg.Fset, pkg.Files, d) {
					out = append(out, d)
				}
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Pos < out[j].Pos })
	return out, nil
}
