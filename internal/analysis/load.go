package analysis

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one parsed, type-checked package.
type Package struct {
	Path  string // import path ("rpbeat/internal/wire", fixture path, ...)
	Dir   string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// Loader parses and type-checks packages from source. It resolves imports
// in three tiers: an optional overlay directory first (the analysistest
// fixture root, mapping import path -> Overlay/<path>), then the module's
// own packages (ModulePath prefix -> ModuleDir), then the standard library
// through go/importer's source importer. Module and overlay packages are
// type-checked recursively in dependency order and memoized, so every
// package is checked exactly once per Loader.
type Loader struct {
	Fset       *token.FileSet
	ModulePath string // "" disables module resolution
	ModuleDir  string
	Overlay    string // "" disables overlay resolution

	std     types.Importer
	pkgs    map[string]*Package
	loading map[string]bool
}

// NewLoader returns a loader rooted at the module (either argument may be
// empty for overlay-only use).
func NewLoader(modulePath, moduleDir string) *Loader {
	fset := token.NewFileSet()
	return &Loader{
		Fset:       fset,
		ModulePath: modulePath,
		ModuleDir:  moduleDir,
		std:        importer.ForCompiler(fset, "source", nil),
		pkgs:       make(map[string]*Package),
		loading:    make(map[string]bool),
	}
}

// ModuleInfo reads the module path out of dir/go.mod.
func ModuleInfo(dir string) (string, error) {
	data, err := os.ReadFile(filepath.Join(dir, "go.mod"))
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		if mod, ok := strings.CutPrefix(strings.TrimSpace(line), "module "); ok {
			return strings.TrimSpace(mod), nil
		}
	}
	return "", fmt.Errorf("no module line in %s/go.mod", dir)
}

// dirFor resolves an import path onto a source directory, or ok=false when
// the path belongs to the standard library (or nowhere we resolve).
func (l *Loader) dirFor(path string) (string, bool) {
	if l.Overlay != "" {
		dir := filepath.Join(l.Overlay, filepath.FromSlash(path))
		if fi, err := os.Stat(dir); err == nil && fi.IsDir() {
			return dir, true
		}
	}
	if l.ModulePath != "" {
		if path == l.ModulePath {
			return l.ModuleDir, true
		}
		if rel, ok := strings.CutPrefix(path, l.ModulePath+"/"); ok {
			return filepath.Join(l.ModuleDir, filepath.FromSlash(rel)), true
		}
	}
	return "", false
}

// Import implements types.Importer over the three resolution tiers, so the
// type checker pulls dependencies through the loader itself.
func (l *Loader) Import(path string) (*types.Package, error) {
	if dir, ok := l.dirFor(path); ok {
		pkg, err := l.load(path, dir)
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	return l.std.Import(path)
}

// Load parses and type-checks the package at the import path (resolved per
// the loader's tiers; standard-library paths are rejected — analyze the
// repo, not the toolchain).
func (l *Loader) Load(path string) (*Package, error) {
	dir, ok := l.dirFor(path)
	if !ok {
		return nil, fmt.Errorf("analysis: cannot resolve %q to a source directory", path)
	}
	return l.load(path, dir)
}

func (l *Loader) load(path, dir string) (*Package, error) {
	if pkg, ok := l.pkgs[path]; ok {
		return pkg, nil
	}
	if l.loading[path] {
		return nil, fmt.Errorf("analysis: import cycle through %q", path)
	}
	l.loading[path] = true
	defer delete(l.loading, path)

	names, err := sourceFiles(dir)
	if err != nil {
		return nil, err
	}
	if len(names) == 0 {
		return nil, fmt.Errorf("analysis: no Go source files in %s", dir)
	}
	files := make([]*ast.File, 0, len(names))
	for _, name := range names {
		f, err := parser.ParseFile(l.Fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}

	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	var typeErrs []error
	conf := types.Config{
		Importer: l,
		Error:    func(err error) { typeErrs = append(typeErrs, err) },
	}
	tpkg, _ := conf.Check(path, l.Fset, files, info)
	if len(typeErrs) > 0 {
		return nil, fmt.Errorf("analysis: type-checking %s: %w", path, typeErrs[0])
	}

	pkg := &Package{Path: path, Dir: dir, Fset: l.Fset, Files: files, Types: tpkg, Info: info}
	l.pkgs[path] = pkg
	return pkg, nil
}

// sourceFiles lists the buildable non-test Go files of dir, sorted. The
// module carries no build tags or platform-suffixed files (pure stdlib,
// single build shape), so filtering is by suffix only.
func sourceFiles(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") ||
			strings.HasSuffix(name, "_test.go") || strings.HasPrefix(name, ".") {
			continue
		}
		names = append(names, name)
	}
	sort.Strings(names)
	return names, nil
}

// ModulePackages enumerates every package directory of the module (skipping
// testdata, hidden and vendor directories) as import paths, sorted — the
// expansion of the "./..." pattern.
func ModulePackages(modulePath, moduleDir string) ([]string, error) {
	var paths []string
	err := filepath.WalkDir(moduleDir, func(p string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if p != moduleDir && (name == "testdata" || name == "vendor" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
			return filepath.SkipDir
		}
		files, err := sourceFiles(p)
		if err != nil {
			return err
		}
		if len(files) == 0 {
			return nil
		}
		rel, err := filepath.Rel(moduleDir, p)
		if err != nil {
			return err
		}
		if rel == "." {
			paths = append(paths, modulePath)
		} else {
			paths = append(paths, modulePath+"/"+filepath.ToSlash(rel))
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(paths)
	return paths, nil
}

// ExpandPatterns maps rpvet's command-line patterns onto module import
// paths: "./..." (or "all") is every module package, "./x/..." a subtree,
// "./x" or "rpbeat/x" a single package.
func ExpandPatterns(modulePath, moduleDir string, patterns []string) ([]string, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	all, err := ModulePackages(modulePath, moduleDir)
	if err != nil {
		return nil, err
	}
	seen := make(map[string]bool)
	var out []string
	add := func(p string) {
		if !seen[p] {
			seen[p] = true
			out = append(out, p)
		}
	}
	for _, pat := range patterns {
		switch {
		case pat == "./..." || pat == "all":
			for _, p := range all {
				add(p)
			}
		case strings.HasSuffix(pat, "/..."):
			prefix := toImportPath(modulePath, strings.TrimSuffix(pat, "/..."))
			matched := false
			for _, p := range all {
				if p == prefix || strings.HasPrefix(p, prefix+"/") {
					add(p)
					matched = true
				}
			}
			if !matched {
				return nil, fmt.Errorf("no packages match %q", pat)
			}
		default:
			p := toImportPath(modulePath, pat)
			found := false
			for _, known := range all {
				if known == p {
					found = true
					break
				}
			}
			if !found {
				return nil, fmt.Errorf("no package matches %q", pat)
			}
			add(p)
		}
	}
	sort.Strings(out)
	return out, nil
}

// toImportPath canonicalizes one pattern element: "./x" and "x" become
// module-relative, "." the module root, full import paths pass through.
func toImportPath(modulePath, pat string) string {
	pat = strings.TrimSuffix(pat, "/")
	if pat == "." || pat == "./" || pat == "" {
		return modulePath
	}
	if rel, ok := strings.CutPrefix(pat, "./"); ok {
		return modulePath + "/" + rel
	}
	if pat == modulePath || strings.HasPrefix(pat, modulePath+"/") {
		return pat
	}
	return modulePath + "/" + pat
}
