package allocfree_test

import (
	"testing"

	"rpbeat/internal/analysis/allocfree"
	"rpbeat/internal/analysis/analysistest"
)

func TestAllocFree(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(t), allocfree.Analyzer, "allocfree")
}
