// Fixtures for the allocfree analyzer: each hot* function carries the
// //rpbeat:allocfree directive; `want` comments mark the expected
// diagnostics, directive-carrying functions without them are the negative
// cases.
package allocfree

import "fmt"

type obj struct{ buf []int32 }

//rpbeat:allocfree
func hotMake(n int) []byte {
	b := make([]byte, n) // want `calls make`
	return b
}

//rpbeat:allocfree
func hotNew() *obj {
	return new(obj) // want `calls new`
}

//rpbeat:allocfree
func hotSliceLit() []int {
	return []int{1, 2, 3} // want `builds a slice literal`
}

//rpbeat:allocfree
func hotMapLit() map[string]int {
	return map[string]int{"a": 1} // want `builds a map literal`
}

//rpbeat:allocfree
func hotAddrLit() *obj {
	return &obj{} // want `address of a composite literal`
}

//rpbeat:allocfree
func hotValueLit() obj {
	return obj{} // value literal: registers or stack, no heap traffic
}

//rpbeat:allocfree
func hotAppendLocal(x int32) []int32 {
	var s []int32
	s = append(s, x) // want `appends to local slice s`
	return s
}

//rpbeat:allocfree
func hotAppendParam(dst []int32, x int32) []int32 {
	return append(dst, x) // caller controls the capacity
}

//rpbeat:allocfree
func (o *obj) hotAppendRecv(x int32) {
	o.buf = append(o.buf, x) // receiver-rooted: amortized by the owner
}

//rpbeat:allocfree
func hotAppendFromCallee(x int32) []int32 {
	s := borrow()
	s = append(s, x) // backing came from the callee
	return s
}

func borrow() []int32 { return nil }

//rpbeat:allocfree
func hotConvS2B(s string) []byte {
	return []byte(s) // want `converts string to \[\]byte`
}

//rpbeat:allocfree
func hotConvB2S(b []byte) string {
	return string(b) // want `converts \[\]byte to string`
}

//rpbeat:allocfree
func hotConvCompare(b []byte, s string) bool {
	return string(b) == s // comparison context: the compiler elides the copy
}

//rpbeat:allocfree
func hotFmt(n int) {
	fmt.Println(n) // want `calls fmt\.Println`
}

func sink(v any) {}

//rpbeat:allocfree
func hotBox(n int) {
	sink(n) // want `boxes int into interface`
}

//rpbeat:allocfree
func hotBoxConst() {
	sink("static") // constants box into read-only static data
}

//rpbeat:allocfree
func hotBoxPointer(o *obj) {
	sink(o) // pointers fit the interface data word directly
}

//rpbeat:allocfree
func hotClosure() func() int {
	n := 0
	return func() int { // want `closure capturing n`
		n++
		return n
	}
}

//rpbeat:allocfree
func hotSuppressed() *obj {
	//rpvet:allow allocfree -- fixture: demonstrates per-site suppression
	return &obj{}
}

func coldPath() *obj {
	return &obj{} // unannotated function: anything goes
}
