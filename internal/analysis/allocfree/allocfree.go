// Package allocfree flags allocation-inducing constructs inside functions
// annotated //rpbeat:allocfree — the statically-enforced half of the
// repo's 0 allocs/op invariant. The runtime AllocsPerRun tests prove the
// property on the paths a test happens to drive; this analyzer proves the
// absence of allocation *sources* over the whole function body, on every
// build.
package allocfree

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"strings"

	"rpbeat/internal/analysis"
)

// Marker is the annotation that opts a function into this analyzer.
const Marker = "//rpbeat:allocfree"

// Analyzer flags make/new, escaping composite literals, appends onto
// fresh local slices, string<->[]byte conversions, interface boxing,
// fmt.* calls and capturing closures inside //rpbeat:allocfree functions.
var Analyzer = &analysis.Analyzer{
	Name: "allocfree",
	Doc: "report allocation-inducing constructs in //rpbeat:allocfree functions\n\n" +
		"A function carrying the //rpbeat:allocfree directive in its doc\n" +
		"comment promises the 0 allocs/op steady-state contract. The analyzer\n" +
		"flags: make/new calls; composite literals that escape (&T{...}, or\n" +
		"slice/map literals); append onto a slice that is not rooted in a\n" +
		"parameter, the receiver, or a callee's result; string<->[]byte\n" +
		"conversions outside == / != comparisons; non-constant, non-pointer\n" +
		"arguments boxed into interface parameters; any fmt.* call; and\n" +
		"closures that capture enclosing locals.",
	Run: run,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !marked(fd) {
				continue
			}
			check(pass, fd)
		}
	}
	return nil
}

// marked reports whether the function's doc comment carries the directive.
func marked(fd *ast.FuncDecl) bool {
	if fd.Doc == nil {
		return false
	}
	for _, c := range fd.Doc.List {
		if strings.TrimSpace(c.Text) == Marker {
			return true
		}
	}
	return false
}

type checker struct {
	pass   *analysis.Pass
	fd     *ast.FuncDecl
	params map[types.Object]bool // parameters and receiver
}

func check(pass *analysis.Pass, fd *ast.FuncDecl) {
	c := &checker{pass: pass, fd: fd, params: make(map[types.Object]bool)}
	collect := func(fields *ast.FieldList) {
		if fields == nil {
			return
		}
		for _, f := range fields.List {
			for _, name := range f.Names {
				if obj := pass.TypesInfo.Defs[name]; obj != nil {
					c.params[obj] = true
				}
			}
		}
	}
	collect(fd.Recv)
	collect(fd.Type.Params)

	// Walk with an explicit parent stack: the conversion check needs to see
	// whether the expression sits inside a == / != comparison, and the
	// composite-literal check whether its address is taken.
	var stack []ast.Node
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		c.node(n, stack)
		stack = append(stack, n)
		return true
	})
}

func (c *checker) node(n ast.Node, stack []ast.Node) {
	switch n := n.(type) {
	case *ast.CallExpr:
		c.call(n, stack)
	case *ast.CompositeLit:
		c.compositeLit(n, stack)
	case *ast.FuncLit:
		c.funcLit(n)
	}
}

func (c *checker) call(call *ast.CallExpr, stack []ast.Node) {
	info := c.pass.TypesInfo

	// Builtins: make and new always allocate; append is checked by origin.
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if b, ok := info.Uses[id].(*types.Builtin); ok {
			switch b.Name() {
			case "make", "new":
				c.pass.Reportf(call.Pos(), "allocfree function %s calls %s", c.fd.Name.Name, b.Name())
			case "append":
				c.append(call)
			}
			return
		}
	}

	tv, ok := info.Types[call.Fun]
	if !ok {
		return
	}
	if tv.IsType() {
		c.conversion(call, tv.Type, stack)
		return
	}

	if pkg, sel := callPkg(info, call); pkg == "fmt" {
		c.pass.Reportf(call.Pos(), "allocfree function %s calls fmt.%s", c.fd.Name.Name, sel)
		return
	}

	c.boxing(call, tv)
}

// conversion flags string<->[]byte conversions. Exemptions: constant
// operands (no runtime conversion) and conversions compared with == or !=
// (the compiler elides the copy there).
func (c *checker) conversion(call *ast.CallExpr, target types.Type, stack []ast.Node) {
	if len(call.Args) != 1 {
		return
	}
	argTV := c.pass.TypesInfo.Types[call.Args[0]]
	src := argTV.Type
	if src == nil || argTV.Value != nil {
		return
	}
	s2b := isString(src) && isByteSlice(target)
	b2s := isByteSlice(src) && isString(target)
	if !s2b && !b2s {
		return
	}
	for i := len(stack) - 1; i >= 0; i-- {
		switch p := stack[i].(type) {
		case *ast.ParenExpr:
			continue
		case *ast.BinaryExpr:
			if p.Op == token.EQL || p.Op == token.NEQ {
				return
			}
		}
		break
	}
	c.pass.Reportf(call.Pos(), "allocfree function %s converts %s", c.fd.Name.Name, map[bool]string{true: "string to []byte", false: "[]byte to string"}[s2b])
}

// boxing flags arguments passed into interface-typed parameters when the
// conversion allocates: constants are wired into read-only data, nil is
// free, and pointer-shaped values (pointers, channels, maps, funcs) fit an
// interface word directly.
func (c *checker) boxing(call *ast.CallExpr, funTV types.TypeAndValue) {
	sig, ok := funTV.Type.(*types.Signature)
	if !ok {
		return
	}
	info := c.pass.TypesInfo
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			if call.Ellipsis.IsValid() {
				if i != params.Len()-1 {
					continue
				}
				pt = params.At(params.Len() - 1).Type() // x... passes the slice itself
			} else {
				pt = params.At(params.Len() - 1).Type().(*types.Slice).Elem()
			}
		case i < params.Len():
			pt = params.At(i).Type()
		default:
			continue
		}
		if !types.IsInterface(pt) {
			continue
		}
		atv := info.Types[arg]
		at := atv.Type
		if at == nil || types.IsInterface(at) {
			continue
		}
		if atv.Value != nil && atv.Value.Kind() != constant.Unknown {
			continue // constant: boxed into static data at compile time
		}
		if b, ok := at.Underlying().(*types.Basic); ok && b.Kind() == types.UntypedNil {
			continue
		}
		if pointerShaped(at) {
			continue
		}
		c.pass.Reportf(arg.Pos(), "allocfree function %s boxes %s into interface argument", c.fd.Name.Name, types.TypeString(at, types.RelativeTo(c.pass.Pkg)))
	}
}

// append flags appends whose destination is not rooted in a parameter, the
// receiver, or a value produced by a callee — the shapes under the caller's
// amortized-capacity control. Appending to a fresh local (var s []T, or a
// literal) grows from zero and allocates on the hot path.
func (c *checker) append(call *ast.CallExpr) {
	if len(call.Args) == 0 {
		return
	}
	base := call.Args[0]
	root, viaCall := rootOf(base)
	if viaCall {
		return
	}
	if root == nil {
		c.pass.Reportf(call.Pos(), "allocfree function %s appends to a freshly allocated slice", c.fd.Name.Name)
		return
	}
	obj := c.pass.TypesInfo.Uses[root]
	if obj == nil || c.params[obj] {
		return
	}
	if v, ok := obj.(*types.Var); ok {
		if v.Parent() == c.pass.Pkg.Scope() {
			return // package-level slice: preallocated once, not per-op
		}
		if c.localFedByCallOrParam(obj) {
			return
		}
	}
	c.pass.Reportf(call.Pos(), "allocfree function %s appends to local slice %s with no parameter- or callee-provided backing", c.fd.Name.Name, root.Name)
}

// localFedByCallOrParam reports whether any assignment to the local (other
// than self-reslicing) takes its value from a call result or a
// parameter-rooted expression — i.e. the backing array came from outside
// this function.
func (c *checker) localFedByCallOrParam(obj types.Object) bool {
	info := c.pass.TypesInfo
	fed := false
	ast.Inspect(c.fd.Body, func(n ast.Node) bool {
		if fed {
			return false
		}
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		for i, lhs := range as.Lhs {
			id, ok := ast.Unparen(lhs).(*ast.Ident)
			if !ok || (info.Defs[id] != obj && info.Uses[id] != obj) {
				continue
			}
			var rhs ast.Expr
			if len(as.Rhs) == len(as.Lhs) {
				rhs = as.Rhs[i]
			} else {
				rhs = as.Rhs[0] // multi-value call: a call result by definition
			}
			root, viaCall := rootOf(rhs)
			if viaCall {
				// append(obj, ...) self-growth feeds nothing new.
				if callee, ok := rhs.(*ast.CallExpr); ok {
					if id, ok := ast.Unparen(callee.Fun).(*ast.Ident); ok {
						if b, ok := info.Uses[id].(*types.Builtin); ok && b.Name() == "append" {
							continue
						}
					}
				}
				fed = true
				return false
			}
			if root != nil {
				ro := info.Uses[root]
				if ro != nil && ro != obj && (c.params[ro] || c.localIsParamLike(ro)) {
					fed = true
					return false
				}
			}
		}
		return true
	})
	return fed
}

// localIsParamLike is the one-level transitive case: a local that itself
// was fed by a call or parameter.
func (c *checker) localIsParamLike(obj types.Object) bool {
	if _, ok := obj.(*types.Var); !ok {
		return false
	}
	if c.params[obj] {
		return true
	}
	return c.localFedByCallOrParam(obj)
}

// funcLit flags closures that capture enclosing locals — each such literal
// materializes a heap closure (and often moves the captured variable to the
// heap with it).
func (c *checker) funcLit(fl *ast.FuncLit) {
	info := c.pass.TypesInfo
	var captured types.Object
	ast.Inspect(fl.Body, func(n ast.Node) bool {
		if captured != nil {
			return false
		}
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj := info.Uses[id]
		v, ok := obj.(*types.Var)
		if !ok || v.Parent() == c.pass.Pkg.Scope() || v.Parent() == types.Universe {
			return true
		}
		// Declared inside the enclosing function but outside the literal.
		if v.Pos() >= c.fd.Pos() && v.Pos() < c.fd.End() && (v.Pos() < fl.Pos() || v.Pos() >= fl.End()) {
			captured = v
			return false
		}
		return true
	})
	if captured != nil {
		c.pass.Reportf(fl.Pos(), "allocfree function %s creates a closure capturing %s", c.fd.Name.Name, captured.Name())
	}
}

// rootOf unwraps selector/index/slice/deref chains to the leftmost
// identifier. viaCall is true when the chain bottoms out in a function
// call (a callee-provided value).
func rootOf(e ast.Expr) (root *ast.Ident, viaCall bool) {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			return x, false
		case *ast.ParenExpr:
			e = x.X
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.SliceExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.TypeAssertExpr:
			e = x.X
		case *ast.CallExpr:
			return nil, true
		case *ast.UnaryExpr:
			e = x.X
		default:
			return nil, false
		}
	}
}

// callPkg resolves a call of the form pkg.F(...) to its package path base
// and selector name, or "", "".
func callPkg(info *types.Info, call *ast.CallExpr) (string, string) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return "", ""
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return "", ""
	}
	pn, ok := info.Uses[id].(*types.PkgName)
	if !ok {
		return "", ""
	}
	return pn.Imported().Path(), sel.Sel.Name
}

func (c *checker) compositeLit(lit *ast.CompositeLit, stack []ast.Node) {
	t := c.pass.TypesInfo.Types[lit].Type
	if t == nil {
		return
	}
	switch t.Underlying().(type) {
	case *types.Slice, *types.Map:
		c.pass.Reportf(lit.Pos(), "allocfree function %s builds a %s literal", c.fd.Name.Name, kindName(t))
		return
	}
	// A plain struct or array literal lives in registers or on the stack —
	// unless its address is taken, which forces it to the heap whenever the
	// pointer escapes.
	if len(stack) > 0 {
		if u, ok := stack[len(stack)-1].(*ast.UnaryExpr); ok && u.Op == token.AND {
			c.pass.Reportf(lit.Pos(), "allocfree function %s takes the address of a composite literal", c.fd.Name.Name)
		}
	}
}

func kindName(t types.Type) string {
	switch t.Underlying().(type) {
	case *types.Slice:
		return "slice"
	case *types.Map:
		return "map"
	}
	return "composite"
}

// pointerShaped reports whether values of the type fit an interface's data
// word without a heap copy.
func pointerShaped(t types.Type) bool {
	switch u := t.Underlying().(type) {
	case *types.Pointer, *types.Chan, *types.Map, *types.Signature:
		return true
	case *types.Basic:
		return u.Kind() == types.UnsafePointer
	}
	return false
}

func isString(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isByteSlice(t types.Type) bool {
	s, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := s.Elem().Underlying().(*types.Basic)
	return ok && b.Kind() == types.Byte
}
