// Fixtures for the snapshotcheck analyzer: build-then-publish is the
// copy-on-write discipline (okPublish, the catalog's shape); the bad*
// functions mutate through the pointer after Store/CompareAndSwap.
package snapshotcheck

import "sync/atomic"

type snap struct {
	n  int
	xs []int
}

type reg struct {
	cur atomic.Pointer[snap]
}

func okPublish(r *reg, prev *snap) {
	next := &snap{n: prev.n + 1}
	next.xs = append(next.xs, 1) // building before publication is the point
	r.cur.Store(next)
}

func okRebind(r *reg) {
	next := &snap{}
	r.cur.Store(next)
	next = &snap{} // a fresh value under the same name
	next.n = 2
	r.cur.Store(next)
}

func badMutateAfterStore(r *reg) {
	next := &snap{}
	r.cur.Store(next)
	next.n = 1 // want `next is mutated after being published`
}

func badIndexAfterStore(r *reg) {
	next := &snap{xs: make([]int, 4)}
	r.cur.Store(next)
	next.xs[0] = 9 // want `next is mutated after being published`
}

func badIncAfterCAS(r *reg) {
	old := r.cur.Load()
	next := &snap{}
	if r.cur.CompareAndSwap(old, next) {
		next.n++ // want `next is mutated after being published`
	}
}

func badSuppressible(r *reg) {
	next := &snap{}
	r.cur.Store(next)
	//rpvet:allow snapshotcheck -- fixture: demonstrates per-site suppression
	next.n = 3
}
