// Package snapshotcheck guards the copy-on-write publication discipline:
// once a value is published through atomic.Pointer.Store (the catalog's
// snapshots, the gateway's backend ring), concurrent readers hold it
// lock-free, so any subsequent write through the published pointer is a
// data race — the whole point of copy-on-write is that published values
// are frozen and mutation happens on a fresh copy before the next Store.
package snapshotcheck

import (
	"go/ast"
	"go/token"
	"go/types"

	"rpbeat/internal/analysis"
)

// Analyzer flags mutations through a pointer after it was published via
// atomic.Pointer.Store / CompareAndSwap.
var Analyzer = &analysis.Analyzer{
	Name: "snapshotcheck",
	Doc: "report mutations of a value after it was published via atomic.Pointer.Store\n\n" +
		"Within a function, once a local pointer p is passed to an\n" +
		"atomic.Pointer Store (or as the new value of a CompareAndSwap),\n" +
		"any later assignment through p — p.f = v, p.xs[i] = v, *p = v,\n" +
		"p.f++ — is flagged: lock-free readers may already hold the\n" +
		"snapshot. Build the value completely, then publish it last.",
	Run: run,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkFunc(pass, fd.Body)
		}
	}
	return nil
}

// published is one Store site: the local pointer object and where it was
// published.
type published struct {
	obj types.Object
	pos token.Pos
}

func checkFunc(pass *analysis.Pass, body *ast.BlockStmt) {
	info := pass.TypesInfo

	// First pass: collect publication sites.
	var pubs []published
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		name, ok := atomicPointerMethod(info, call)
		if !ok {
			return true
		}
		var val ast.Expr
		switch name {
		case "Store":
			if len(call.Args) == 1 {
				val = call.Args[0]
			}
		case "CompareAndSwap":
			if len(call.Args) == 2 {
				val = call.Args[1]
			}
		}
		if val == nil {
			return true
		}
		if id, ok := ast.Unparen(val).(*ast.Ident); ok {
			if obj, ok := info.Uses[id].(*types.Var); ok {
				pubs = append(pubs, published{obj: obj, pos: call.Pos()})
			}
		}
		return true
	})
	if len(pubs) == 0 {
		return
	}

	// Rebinding the local to a fresh value (next = &snap{...}) starts a new
	// unpublished snapshot under the same name: writes after a rebind are
	// building the next value, not mutating the published one.
	var rebinds []published
	ast.Inspect(body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		for _, lhs := range as.Lhs {
			if id, ok := ast.Unparen(lhs).(*ast.Ident); ok {
				if obj, ok := info.Uses[id].(*types.Var); ok {
					rebinds = append(rebinds, published{obj: obj, pos: as.Pos()})
				}
			}
		}
		return true
	})

	// Second pass: writes through a published pointer after its Store, in
	// source order — the straight-line approximation of "after publication".
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				checkWrite(pass, pubs, rebinds, lhs, n.Pos())
			}
		case *ast.IncDecStmt:
			checkWrite(pass, pubs, rebinds, n.X, n.Pos())
		}
		return true
	})
}

// checkWrite flags the write when its target dereferences a pointer that
// an earlier (in source order) Store already published, with no
// intervening rebind of the local.
func checkWrite(pass *analysis.Pass, pubs, rebinds []published, lhs ast.Expr, pos token.Pos) {
	root, derefs := writeRoot(lhs)
	if root == nil || !derefs {
		return
	}
	obj := pass.TypesInfo.Uses[root]
	if obj == nil {
		return
	}
	for _, p := range pubs {
		if p.obj != obj || pos <= p.pos {
			continue
		}
		rebound := false
		for _, rb := range rebinds {
			if rb.obj == obj && rb.pos > p.pos && rb.pos < pos {
				rebound = true
				break
			}
		}
		if !rebound {
			pass.Reportf(pos, "snapshot %s is mutated after being published via atomic.Pointer.Store; copy-on-write values must be frozen once stored", obj.Name())
			return
		}
	}
}

// writeRoot unwraps the write target to its root identifier and reports
// whether the path goes through a dereference (selector on a pointer,
// index, or explicit *p) — a bare `p = ...` rebinds the local and is fine.
func writeRoot(e ast.Expr) (*ast.Ident, bool) {
	derefs := false
	for {
		switch x := e.(type) {
		case *ast.Ident:
			return x, derefs
		case *ast.ParenExpr:
			e = x.X
		case *ast.SelectorExpr:
			derefs = true
			e = x.X
		case *ast.IndexExpr:
			derefs = true
			e = x.X
		case *ast.StarExpr:
			derefs = true
			e = x.X
		case *ast.SliceExpr:
			derefs = true
			e = x.X
		default:
			return nil, false
		}
	}
}

// atomicPointerMethod matches a method call on sync/atomic's Pointer[T]
// (or the pre-generics atomic.Value, which has the same publish-then-
// freeze contract), returning the method name.
func atomicPointerMethod(info *types.Info, call *ast.CallExpr) (string, bool) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	fobj, ok := info.Uses[sel.Sel].(*types.Func)
	if !ok {
		return "", false
	}
	sig, ok := fobj.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return "", false
	}
	rt := sig.Recv().Type()
	if p, ok := rt.(*types.Pointer); ok {
		rt = p.Elem()
	}
	named, ok := rt.(*types.Named)
	if !ok {
		return "", false
	}
	tn := named.Obj()
	if tn.Pkg() == nil || tn.Pkg().Path() != "sync/atomic" {
		return "", false
	}
	if name := tn.Name(); name != "Pointer" && name != "Value" {
		return "", false
	}
	return fobj.Name(), true
}
