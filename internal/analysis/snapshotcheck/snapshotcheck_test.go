package snapshotcheck_test

import (
	"testing"

	"rpbeat/internal/analysis/analysistest"
	"rpbeat/internal/analysis/snapshotcheck"
)

func TestSnapshotCheck(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(t), snapshotcheck.Analyzer, "snapshotcheck")
}
