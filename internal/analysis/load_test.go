package analysis

import (
	"path/filepath"
	"slices"
	"strings"
	"testing"
)

// repoRoot walks up from the package directory to the module root.
func repoRoot(t *testing.T) string {
	t.Helper()
	dir, err := filepath.Abs(".")
	if err != nil {
		t.Fatal(err)
	}
	for {
		if _, err := ModuleInfo(dir); err == nil {
			return dir
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			t.Fatal("no go.mod above the test directory")
		}
		dir = parent
	}
}

func TestModuleInfo(t *testing.T) {
	root := repoRoot(t)
	mod, err := ModuleInfo(root)
	if err != nil {
		t.Fatal(err)
	}
	if mod != "rpbeat" {
		t.Fatalf("module path = %q, want rpbeat", mod)
	}
}

func TestModulePackagesSkipsTestdata(t *testing.T) {
	root := repoRoot(t)
	pkgs, err := ModulePackages("rpbeat", root)
	if err != nil {
		t.Fatal(err)
	}
	if !slices.Contains(pkgs, "rpbeat/internal/analysis") {
		t.Fatalf("missing rpbeat/internal/analysis in %v", pkgs)
	}
	for _, p := range pkgs {
		if strings.Contains(p, "testdata") {
			t.Fatalf("testdata package leaked into enumeration: %s", p)
		}
	}
}

func TestExpandPatterns(t *testing.T) {
	root := repoRoot(t)
	all, err := ExpandPatterns("rpbeat", root, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(all) < 10 {
		t.Fatalf("expected the full module, got %d packages", len(all))
	}

	sub, err := ExpandPatterns("rpbeat", root, []string{"./internal/analysis/..."})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range sub {
		if !strings.HasPrefix(p, "rpbeat/internal/analysis") {
			t.Fatalf("subtree pattern matched %s", p)
		}
	}
	if len(sub) < 5 {
		t.Fatalf("subtree expansion too small: %v", sub)
	}

	one, err := ExpandPatterns("rpbeat", root, []string{"./internal/wire"})
	if err != nil {
		t.Fatal(err)
	}
	if len(one) != 1 || one[0] != "rpbeat/internal/wire" {
		t.Fatalf("single pattern = %v", one)
	}

	if _, err := ExpandPatterns("rpbeat", root, []string{"./no/such/pkg"}); err == nil {
		t.Fatal("expected an error for an unknown pattern")
	}
}

// TestLoadTypeChecks proves the loader produces a usable types.Info for a
// real module package with module-internal and stdlib imports.
func TestLoadTypeChecks(t *testing.T) {
	root := repoRoot(t)
	l := NewLoader("rpbeat", root)
	pkg, err := l.Load("rpbeat/internal/apierr")
	if err != nil {
		t.Fatal(err)
	}
	if pkg.Types.Name() != "apierr" {
		t.Fatalf("package name = %q", pkg.Types.Name())
	}
	if len(pkg.Info.Defs) == 0 {
		t.Fatal("no definitions recorded — types.Info not populated")
	}
	// Memoized: the same package comes back identical.
	again, err := l.Load("rpbeat/internal/apierr")
	if err != nil {
		t.Fatal(err)
	}
	if again != pkg {
		t.Fatal("loader did not memoize the package")
	}
}
