// Package analysistest drives an analyzer over fixture packages and
// matches its diagnostics against expectations embedded in the fixtures,
// in the style of golang.org/x/tools/go/analysis/analysistest:
//
//	err := doThing() // want `raw fmt\.Errorf`
//
// Each `// want "regexp"` (or backquoted) expectation on a line must be
// matched by a diagnostic reported on that line, and every diagnostic must
// match an expectation — unexpected diagnostics fail the test, so negative
// fixtures are just clean code with no want comments.
package analysistest

import (
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"rpbeat/internal/analysis"
)

// TestData returns the testdata directory of the caller's package
// (resolved relative to the test's working directory).
func TestData(t *testing.T) string {
	t.Helper()
	dir, err := filepath.Abs("testdata")
	if err != nil {
		t.Fatal(err)
	}
	return dir
}

// Run loads each fixture package from testdata/src/<path>, applies the
// analyzer, and checks diagnostics against the fixtures' want comments.
// Imports between fixture packages resolve inside testdata/src, so a
// fixture at testdata/src/rpbeat/internal/serve can import a stub
// rpbeat/internal/apierr placed next to it.
func Run(t *testing.T, testdata string, a *analysis.Analyzer, paths ...string) {
	t.Helper()
	loader := analysis.NewLoader("", "")
	loader.Overlay = filepath.Join(testdata, "src")

	var pkgs []*analysis.Package
	for _, path := range paths {
		pkg, err := loader.Load(path)
		if err != nil {
			t.Fatalf("loading fixture %s: %v", path, err)
		}
		pkgs = append(pkgs, pkg)
	}

	diags, err := analysis.RunAnalyzers([]*analysis.Analyzer{a}, pkgs)
	if err != nil {
		t.Fatalf("running %s: %v", a.Name, err)
	}

	type key struct {
		file string
		line int
	}
	wants := make(map[key][]*want)
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			name := pkg.Fset.Position(f.Pos()).Filename
			for _, w := range parseWants(t, name) {
				k := key{name, w.line}
				wants[k] = append(wants[k], w)
			}
		}
	}

	for _, d := range diags {
		pos := pkgs[0].Fset.Position(d.Pos)
		k := key{pos.Filename, pos.Line}
		matched := false
		for _, w := range wants[k] {
			if !w.matched && w.re.MatchString(d.Message) {
				w.matched = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("%s: unexpected diagnostic: %s", pos, d.Message)
		}
	}
	for k, ws := range wants {
		for _, w := range ws {
			if !w.matched {
				t.Errorf("%s:%d: no diagnostic matching %q", k.file, k.line, w.re)
			}
		}
	}
}

type want struct {
	line    int
	re      *regexp.Regexp
	matched bool
}

// wantRE extracts the expectation list of a line: everything after
// `// want`.
var wantRE = regexp.MustCompile(`//\s*want\s+(.*)$`)

// parseWants scans a fixture file for `// want "re" "re" ...` comments
// (double-quoted or backquoted regexps).
func parseWants(t *testing.T, filename string) []*want {
	t.Helper()
	data, err := os.ReadFile(filename)
	if err != nil {
		t.Fatalf("reading fixture: %v", err)
	}
	var out []*want
	for i, line := range strings.Split(string(data), "\n") {
		m := wantRE.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		rest := strings.TrimSpace(m[1])
		for rest != "" {
			var raw string
			var err error
			switch rest[0] {
			case '"':
				end := matchedQuote(rest)
				if end < 0 {
					t.Fatalf("%s:%d: unterminated want pattern", filename, i+1)
				}
				raw, err = strconv.Unquote(rest[:end+1])
				rest = strings.TrimSpace(rest[end+1:])
			case '`':
				end := strings.IndexByte(rest[1:], '`')
				if end < 0 {
					t.Fatalf("%s:%d: unterminated want pattern", filename, i+1)
				}
				raw = rest[1 : end+1]
				rest = strings.TrimSpace(rest[end+2:])
			default:
				t.Fatalf("%s:%d: malformed want expectation near %q", filename, i+1, rest)
			}
			if err != nil {
				t.Fatalf("%s:%d: bad want pattern: %v", filename, i+1, err)
			}
			re, err := regexp.Compile(raw)
			if err != nil {
				t.Fatalf("%s:%d: bad want regexp: %v", filename, i+1, err)
			}
			out = append(out, &want{line: i + 1, re: re})
		}
	}
	return out
}

// matchedQuote returns the index of the closing double quote of a string
// starting at index 0, honoring backslash escapes, or -1.
func matchedQuote(s string) int {
	for i := 1; i < len(s); i++ {
		switch s[i] {
		case '\\':
			i++
		case '"':
			return i
		}
	}
	return -1
}
