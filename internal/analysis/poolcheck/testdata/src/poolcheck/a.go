// Fixtures for the poolcheck analyzer: the ok* functions are the repo's
// real acquisition shapes (straight-line, defer, deferred closure,
// ownership transfer, comma-ok), the bad* ones seed each leak and escape
// kind.
package poolcheck

import "sync"

var bufs = sync.Pool{New: func() any { b := make([]byte, 0, 64); return &b }}

type holder struct{ b *[]byte }

var global *[]byte

func use(*[]byte) {}

func okStraightLine() {
	bp := bufs.Get().(*[]byte)
	use(bp)
	bufs.Put(bp)
}

func okDefer() {
	bp := bufs.Get().(*[]byte)
	defer bufs.Put(bp)
	use(bp)
}

func okDeferClosure() {
	bp := bufs.Get().(*[]byte)
	defer func() {
		use(bp)
		bufs.Put(bp)
	}()
	use(bp)
}

func okTransfer() *[]byte {
	bp := bufs.Get().(*[]byte)
	return bp // ownership moves to the caller
}

func okCommaOk() *[]byte {
	if bp, ok := bufs.Get().(*[]byte); ok {
		return bp // the not-ok path never held a pool value
	}
	b := make([]byte, 0, 64)
	return &b
}

func okBranchesBalanced(cond bool) {
	bp := bufs.Get().(*[]byte)
	if cond {
		use(bp)
		bufs.Put(bp)
	} else {
		bufs.Put(bp)
	}
}

func okInnerScope(mode int) {
	switch mode {
	default:
		bp := bufs.Get().(*[]byte)
		use(bp)
		bufs.Put(bp)
	}
}

func badReturnLeak(cond bool) {
	bp := bufs.Get().(*[]byte)
	if cond {
		return // want `bp is returned past`
	}
	bufs.Put(bp)
}

func badFallthroughLeak() {
	bp := bufs.Get().(*[]byte) // want `bp falls out of scope`
	use(bp)
}

func badInnerScopeLeak(mode int) {
	switch mode {
	default:
		bp := bufs.Get().(*[]byte) // want `bp falls out of scope`
		use(bp)
	}
}

func badStoreField(h *holder) {
	bp := bufs.Get().(*[]byte)
	h.b = bp // want `stored into field b`
	bufs.Put(bp)
}

func badStoreGlobal() {
	bp := bufs.Get().(*[]byte)
	global = bp // want `stored into package variable global`
	bufs.Put(bp)
}

func badSend(ch chan *[]byte) {
	bp := bufs.Get().(*[]byte)
	ch <- bp // want `sent on a channel`
	bufs.Put(bp)
}

func badCompositeLit() *holder {
	bp := bufs.Get().(*[]byte)
	h := &holder{b: bp} // want `stored into a composite literal`
	bufs.Put(bp)
	return h
}

func okSuppressed() {
	//rpvet:allow poolcheck -- fixture: ownership handed to use's callee graph
	bp := bufs.Get().(*[]byte)
	use(bp)
}
