// Package poolcheck enforces the sync.Pool discipline the buffer pools
// (lineBufs, chunk buffers, classify scratch) rely on: a value obtained
// from Pool.Get must go back via Pool.Put on every return path of the
// acquiring function — or be returned to the caller, which transfers
// ownership — and must never be stored into a field, global, channel or
// composite value, where it would outlive the acquisition and alias a
// recycled buffer.
package poolcheck

import (
	"go/ast"
	"go/token"
	"go/types"

	"rpbeat/internal/analysis"
)

// Analyzer flags sync.Pool.Get values that leak a return path or escape
// the acquiring function.
var Analyzer = &analysis.Analyzer{
	Name: "poolcheck",
	Doc: "report sync.Pool.Get values not Put on every return path or escaping the function\n\n" +
		"For each x := pool.Get() (with or without a type assertion) the\n" +
		"analyzer walks the remaining statements of the acquiring scope and\n" +
		"requires a pool Put of x — direct, deferred, or inside a deferred\n" +
		"closure — before every return and before falling off the scope's\n" +
		"end. Returning x transfers ownership and waives the Put on that\n" +
		"path. Independently, storing x into a struct field, package\n" +
		"variable, map/slice element or channel is always flagged. The\n" +
		"comma-ok form `if x, ok := pool.Get().(*T); ok { ... }` is\n" +
		"understood: only the ok branch holds a pool value.",
	Run: run,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkFunc(pass, fd.Body)
		}
	}
	return nil
}

// checkFunc analyzes one function body; closures are analyzed as their own
// acquiring scope — a Get inside a closure must be balanced inside it.
func checkFunc(pass *analysis.Pass, body *ast.BlockStmt) {
	c := &checker{pass: pass}
	c.scanList(body.List)
	ast.Inspect(body, func(n ast.Node) bool {
		if fl, ok := n.(*ast.FuncLit); ok {
			checkFunc(pass, fl.Body)
			return false
		}
		return true
	})
}

type checker struct {
	pass *analysis.Pass
}

// scanList finds pool acquisitions directly in a statement list and tracks
// each across the list's remainder; nested blocks are scanned recursively
// so acquisitions inside an if/for/switch body are tracked within their
// own scope.
func (c *checker) scanList(stmts []ast.Stmt) {
	for i, s := range stmts {
		switch st := s.(type) {
		case *ast.AssignStmt:
			if obj, getPos, ok := c.acquisition(st); ok {
				tr := &tracker{pass: c.pass, obj: obj}
				if !tr.scan(stmts[i+1:], false) {
					tr.reportLeak(getPos, "falls out of scope")
				}
				tr.checkEscapes(stmts[i+1:])
			}
		case *ast.IfStmt:
			if init, ok := st.Init.(*ast.AssignStmt); ok {
				if obj, getPos, ok := c.acquisition(init); ok {
					// Comma-ok assert: the not-ok branch holds no pool
					// value, so only the ok body is tracked.
					tr := &tracker{pass: c.pass, obj: obj}
					if !tr.scan(st.Body.List, false) {
						tr.reportLeak(getPos, "falls out of the if body")
					}
					tr.checkEscapes(st.Body.List)
				}
			}
		}
		c.scanNested(s)
	}
}

// scanNested descends into block-bearing statements so Gets in inner
// scopes are found too.
func (c *checker) scanNested(s ast.Stmt) {
	switch st := s.(type) {
	case *ast.BlockStmt:
		c.scanList(st.List)
	case *ast.IfStmt:
		c.scanList(st.Body.List)
		if st.Else != nil {
			c.scanNested(st.Else)
		}
	case *ast.ForStmt:
		c.scanList(st.Body.List)
	case *ast.RangeStmt:
		c.scanList(st.Body.List)
	case *ast.SwitchStmt:
		for _, cc := range st.Body.List {
			c.scanList(cc.(*ast.CaseClause).Body)
		}
	case *ast.TypeSwitchStmt:
		for _, cc := range st.Body.List {
			c.scanList(cc.(*ast.CaseClause).Body)
		}
	case *ast.SelectStmt:
		for _, cc := range st.Body.List {
			c.scanList(cc.(*ast.CommClause).Body)
		}
	case *ast.LabeledStmt:
		c.scanNested(st.Stmt)
	}
}

// acquisition matches x := pool.Get(), x := pool.Get().(*T) and
// x, ok := pool.Get().(*T), returning the acquired variable.
func (c *checker) acquisition(as *ast.AssignStmt) (types.Object, token.Pos, bool) {
	if len(as.Rhs) != 1 || len(as.Lhs) == 0 {
		return nil, token.NoPos, false
	}
	rhs := ast.Unparen(as.Rhs[0])
	if ta, ok := rhs.(*ast.TypeAssertExpr); ok {
		rhs = ast.Unparen(ta.X)
	}
	call, ok := rhs.(*ast.CallExpr)
	if !ok || !isPoolMethod(c.pass.TypesInfo, call, "Get") {
		return nil, token.NoPos, false
	}
	id, ok := ast.Unparen(as.Lhs[0]).(*ast.Ident)
	if !ok || id.Name == "_" {
		return nil, token.NoPos, false
	}
	obj := c.pass.TypesInfo.Defs[id]
	if obj == nil {
		obj = c.pass.TypesInfo.Uses[id]
	}
	if obj == nil {
		return nil, token.NoPos, false
	}
	return obj, call.Pos(), true
}

type tracker struct {
	pass *analysis.Pass
	obj  types.Object
}

func (tr *tracker) reportLeak(pos token.Pos, how string) {
	tr.pass.Reportf(pos, "sync.Pool value %s %s without being Put back", tr.obj.Name(), how)
}

// scan walks a statement list with the pool value live and `released`
// telling whether a Put (or defer Put) already covers the path. It reports
// returns that leak and returns whether the value is released when control
// falls off the end of the list.
func (tr *tracker) scan(stmts []ast.Stmt, released bool) bool {
	for _, s := range stmts {
		switch st := s.(type) {
		case *ast.DeferStmt:
			if tr.releases(st.Call) {
				released = true
			}
		case *ast.GoStmt:
			if tr.releases(st.Call) {
				released = true
			}
		case *ast.ReturnStmt:
			if !released && !tr.returnsValue(st) {
				tr.reportLeak(st.Pos(), "is returned past")
			}
			return true // the path ends here; nothing further to require
		case *ast.IfStmt:
			thenEnd := tr.scan(st.Body.List, released)
			if st.Else != nil {
				var elseEnd bool
				switch e := st.Else.(type) {
				case *ast.BlockStmt:
					elseEnd = tr.scan(e.List, released)
				case *ast.IfStmt:
					elseEnd = tr.scan([]ast.Stmt{e}, released)
				}
				if thenEnd && elseEnd {
					released = true
				}
			}
		case *ast.BlockStmt:
			released = tr.scan(st.List, released)
		case *ast.ForStmt:
			tr.scan(st.Body.List, released)
		case *ast.RangeStmt:
			tr.scan(st.Body.List, released)
		case *ast.SwitchStmt:
			released = tr.scanCases(st.Body.List, released)
		case *ast.TypeSwitchStmt:
			released = tr.scanCases(st.Body.List, released)
		case *ast.SelectStmt:
			for _, cc := range st.Body.List {
				tr.scan(cc.(*ast.CommClause).Body, released)
			}
		case *ast.LabeledStmt:
			released = tr.scan([]ast.Stmt{st.Stmt}, released)
		default:
			if tr.stmtPuts(s) {
				released = true
			}
		}
	}
	return released
}

// scanCases handles switch bodies: the value counts as released after the
// switch only when every case (including a default) ends released.
func (tr *tracker) scanCases(clauses []ast.Stmt, released bool) bool {
	all := true
	hasDefault := false
	for _, cs := range clauses {
		cc := cs.(*ast.CaseClause)
		if cc.List == nil {
			hasDefault = true
		}
		if !tr.scan(cc.Body, released) {
			all = false
		}
	}
	return released || (all && hasDefault)
}

// releases matches pool.Put(x) directly or inside a deferred closure body.
func (tr *tracker) releases(call *ast.CallExpr) bool {
	if tr.isPutOfObj(call) {
		return true
	}
	if fl, ok := ast.Unparen(call.Fun).(*ast.FuncLit); ok {
		found := false
		ast.Inspect(fl.Body, func(n ast.Node) bool {
			if c, ok := n.(*ast.CallExpr); ok && tr.isPutOfObj(c) {
				found = true
			}
			return !found
		})
		return found
	}
	return false
}

func (tr *tracker) isPutOfObj(call *ast.CallExpr) bool {
	if !isPoolMethod(tr.pass.TypesInfo, call, "Put") || len(call.Args) != 1 {
		return false
	}
	id, ok := ast.Unparen(call.Args[0]).(*ast.Ident)
	return ok && tr.pass.TypesInfo.Uses[id] == tr.obj
}

// stmtPuts reports whether a non-branching statement performs the Put.
// Puts inside non-deferred closures don't count — they run who-knows-when.
func (tr *tracker) stmtPuts(s ast.Stmt) bool {
	found := false
	ast.Inspect(s, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		if c, ok := n.(*ast.CallExpr); ok && tr.isPutOfObj(c) {
			found = true
		}
		return !found
	})
	return found
}

// returnsValue reports whether the return hands the pool value itself to
// the caller (ownership transfer).
func (tr *tracker) returnsValue(st *ast.ReturnStmt) bool {
	for _, r := range st.Results {
		if id, ok := ast.Unparen(r).(*ast.Ident); ok && tr.pass.TypesInfo.Uses[id] == tr.obj {
			return true
		}
	}
	return false
}

// checkEscapes flags stores of the pool value into places that outlive the
// acquiring scope: struct fields, package variables, map/slice elements,
// channels, and composite literals.
func (tr *tracker) checkEscapes(stmts []ast.Stmt) {
	info := tr.pass.TypesInfo
	isObj := func(e ast.Expr) bool {
		id, ok := ast.Unparen(e).(*ast.Ident)
		return ok && info.Uses[id] == tr.obj
	}
	for _, s := range stmts {
		ast.Inspect(s, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.AssignStmt:
				for i, rhs := range n.Rhs {
					if !isObj(rhs) || i >= len(n.Lhs) {
						continue
					}
					switch lhs := ast.Unparen(n.Lhs[i]).(type) {
					case *ast.SelectorExpr:
						tr.pass.Reportf(n.Pos(), "sync.Pool value %s stored into field %s; it must not outlive the acquiring function", tr.obj.Name(), lhs.Sel.Name)
					case *ast.IndexExpr:
						tr.pass.Reportf(n.Pos(), "sync.Pool value %s stored into an element; it must not outlive the acquiring function", tr.obj.Name())
					case *ast.Ident:
						if v, ok := info.Uses[lhs].(*types.Var); ok && v.Parent() == tr.pass.Pkg.Scope() {
							tr.pass.Reportf(n.Pos(), "sync.Pool value %s stored into package variable %s; it must not outlive the acquiring function", tr.obj.Name(), lhs.Name)
						}
					}
				}
			case *ast.SendStmt:
				if isObj(n.Value) {
					tr.pass.Reportf(n.Pos(), "sync.Pool value %s sent on a channel; it must not outlive the acquiring function", tr.obj.Name())
				}
			case *ast.CompositeLit:
				for _, el := range n.Elts {
					v := el
					if kv, ok := el.(*ast.KeyValueExpr); ok {
						v = kv.Value
					}
					if isObj(v) {
						tr.pass.Reportf(el.Pos(), "sync.Pool value %s stored into a composite literal; it must not outlive the acquiring function", tr.obj.Name())
					}
				}
			}
			return true
		})
	}
}

// isPoolMethod matches a call to (*sync.Pool).<name>.
func isPoolMethod(info *types.Info, call *ast.CallExpr, name string) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != name {
		return false
	}
	fobj, ok := info.Uses[sel.Sel].(*types.Func)
	if !ok {
		return false
	}
	return fobj.FullName() == "(*sync.Pool)."+name
}
