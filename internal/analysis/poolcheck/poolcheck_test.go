package poolcheck_test

import (
	"testing"

	"rpbeat/internal/analysis/analysistest"
	"rpbeat/internal/analysis/poolcheck"
)

func TestPoolCheck(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(t), poolcheck.Analyzer, "poolcheck")
}
