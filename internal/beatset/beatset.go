// Package beatset assembles the heartbeat datasets of the paper's Table I:
// a synthetic database whose per-class composition matches the MIT-BIH
// Arrhythmia Database exactly (74355 N, 8039 L, 6618 V beats across 48
// records), plus the two training excerpts (450 and 12000 beats) drawn from
// it. Each beat is a 200-sample window (100 before + 100 after the R peak)
// at 360 Hz, stored as 11-bit ADC counts.
//
// The record inventory mirrors the structure of the real database: four
// LBBB-subject records carry all L beats, a set of ectopy-prone records
// carries most V beats, and the rest are predominantly normal. Every record
// gets its own synthetic subject (morphology, noise level, heart rate), so
// inter-record variability is present in both training and test data, as it
// is in the real recordings.
package beatset

import (
	"errors"
	"fmt"
	"runtime"
	"sync"

	"rpbeat/internal/ecgsyn"
	"rpbeat/internal/rng"
)

// Default window geometry (Sec. IV-A: "each heartbeat as spanning 100
// samples before and 100 samples after its peak").
const (
	DefaultBefore = 100
	DefaultAfter  = 100
)

// Table I targets.
const (
	Train1PerClass = 150
	Train2N        = 10024
	Train2V        = 892
	Train2L        = 1084
	TestN          = 74355
	TestV          = 6618
	TestL          = 8039
)

// Beat is one windowed heartbeat.
type Beat struct {
	Record  string
	Class   ecgsyn.Class
	Samples []int16 // ADC counts, length Before+After
}

// RecordProfile is the per-record beat composition of the synthetic DB.
type RecordProfile struct {
	Name string
	N    int
	L    int
	V    int
}

// Inventory returns the 48-record composition. L beats live in the four
// LBBB records (mirroring MIT-BIH records 109, 111, 207 and 214); V beats
// concentrate in the ectopy-prone records; totals match Table I exactly
// (checked by TestInventoryMatchesTableI).
func Inventory() []RecordProfile {
	names := []string{
		"100", "101", "102", "103", "104", "105", "106", "107", "108", "109",
		"111", "112", "113", "114", "115", "116", "117", "118", "119", "121",
		"122", "123", "124", "200", "201", "202", "203", "205", "207", "208",
		"209", "210", "212", "213", "214", "215", "217", "219", "220", "221",
		"222", "223", "228", "230", "231", "232", "233", "234",
	}
	l := map[string]int{"109": 2492, "111": 2123, "207": 1421, "214": 2003}
	v := map[string]int{
		"109": 38, "111": 1, "207": 105, "214": 256,
		"106": 520, "119": 444, "200": 826, "201": 198, "203": 444,
		"205": 71, "208": 992, "210": 194, "213": 220, "215": 164,
		"219": 64, "221": 396, "223": 473, "228": 362, "233": 830, "116": 20,
	}
	profiles := make([]RecordProfile, len(names))
	// N beats: LBBB records carry none (as in the real DB); the others get a
	// deterministic pseudo-varied count, with the final non-LBBB record
	// absorbing the remainder so the total is exact.
	nTotal := 0
	lastNonLBBB := -1
	for i, name := range names {
		p := RecordProfile{Name: name, L: l[name], V: v[name]}
		if p.L == 0 {
			p.N = 1400 + (i*137)%600
			nTotal += p.N
			lastNonLBBB = i
		}
		profiles[i] = p
	}
	profiles[lastNonLBBB].N += TestN - nTotal
	return profiles
}

// Config parameterizes dataset construction.
type Config struct {
	// Seed drives subject synthesis and split sampling.
	Seed uint64
	// Before/After set the beat window; defaults 100/100.
	Before, After int
	// Var overrides beat variability (nil = ecgsyn.DefaultVariability).
	Var *ecgsyn.VariabilityConfig
	// Scale shrinks every per-record class count to ceil(count*Scale) —
	// used by tests and quick benchmarks. Scale <= 0 or >= 1 means full size.
	Scale float64
	// Parallel bounds worker goroutines; default NumCPU.
	Parallel int
}

func (c Config) withDefaults() Config {
	if c.Before <= 0 {
		c.Before = DefaultBefore
	}
	if c.After <= 0 {
		c.After = DefaultAfter
	}
	if c.Parallel <= 0 {
		c.Parallel = runtime.NumCPU()
	}
	return c
}

// Dataset is the assembled beat database with its standard splits. The test
// set is the entire database (as in the paper); the training sets are
// disjoint from each other but, like the paper's excerpts, drawn from the
// same records as the test data.
type Dataset struct {
	Before, After int
	Beats         []Beat
	Train1        []int // indexes into Beats: 150 beats per class
	Train2        []int // 10024 N, 1084 L, 892 V
	Test          []int // all beats
}

// Build synthesizes the full dataset. With Scale = 1 this takes a few
// seconds and ~40 MB; construction is deterministic in Config.Seed.
func Build(cfg Config) (*Dataset, error) {
	c := cfg.withDefaults()
	v := ecgsyn.DefaultVariability()
	if c.Var != nil {
		v = *c.Var
	}
	scale := func(n int) int {
		if c.Scale <= 0 || c.Scale >= 1 {
			return n
		}
		if n == 0 {
			return 0
		}
		s := int(float64(n)*c.Scale + 0.999999)
		if s < 1 {
			s = 1
		}
		return s
	}

	profiles := Inventory()
	master := rng.New(c.Seed)
	// Pre-derive one independent stream per record so parallel generation is
	// order-independent.
	seeds := make([]uint64, len(profiles))
	for i := range seeds {
		seeds[i] = master.Uint64()
	}

	type chunk struct {
		idx   int
		beats []Beat
	}
	chunks := make([][]Beat, len(profiles))
	var wg sync.WaitGroup
	sem := make(chan struct{}, c.Parallel)
	for i := range profiles {
		wg.Add(1)
		sem <- struct{}{}
		go func(i int) {
			defer wg.Done()
			defer func() { <-sem }()
			p := profiles[i]
			r := rng.New(seeds[i])
			subj := ecgsyn.NewSubject(r, v)
			// Interleave classes the way they appear in a recording (rather
			// than generating them in class blocks): build the class order
			// first, then synthesize in that order.
			nN, nL, nV := scale(p.N), scale(p.L), scale(p.V)
			order := make([]ecgsyn.Class, 0, nN+nL+nV)
			for b := 0; b < nN; b++ {
				order = append(order, ecgsyn.ClassN)
			}
			for b := 0; b < nL; b++ {
				order = append(order, ecgsyn.ClassL)
			}
			for b := 0; b < nV; b++ {
				order = append(order, ecgsyn.ClassV)
			}
			r.Shuffle(len(order), func(a, b int) { order[a], order[b] = order[b], order[a] })
			beats := make([]Beat, 0, len(order))
			for _, class := range order {
				w := subj.Beat(class, c.Before, c.After)
				s16 := make([]int16, len(w))
				for j, x := range w {
					s16[j] = int16(x)
				}
				beats = append(beats, Beat{Record: p.Name, Class: class, Samples: s16})
			}
			chunks[i] = beats
		}(i)
	}
	wg.Wait()

	ds := &Dataset{Before: c.Before, After: c.After}
	for _, ch := range chunks {
		ds.Beats = append(ds.Beats, ch...)
	}
	ds.Test = make([]int, len(ds.Beats))
	for i := range ds.Test {
		ds.Test[i] = i
	}

	// Splits: deterministic class-stratified sampling without replacement.
	splitRng := rng.New(master.Uint64())
	byClass := [3][]int{}
	for i, b := range ds.Beats {
		byClass[b.Class] = append(byClass[b.Class], i)
	}
	for cl := range byClass {
		splitRng.Shuffle(len(byClass[cl]), func(a, b int) {
			byClass[cl][a], byClass[cl][b] = byClass[cl][b], byClass[cl][a]
		})
	}
	take := func(class ecgsyn.Class, n int) ([]int, error) {
		pool := byClass[class]
		if n > len(pool) {
			return nil, fmt.Errorf("beatset: need %d beats of class %v, have %d", n, class, len(pool))
		}
		out := pool[:n]
		byClass[class] = pool[n:]
		return out, nil
	}
	var err error
	appendTake := func(dst *[]int, class ecgsyn.Class, n int) {
		if err != nil {
			return
		}
		var idx []int
		idx, err = take(class, n)
		*dst = append(*dst, idx...)
	}
	appendTake(&ds.Train1, ecgsyn.ClassN, scale(Train1PerClass))
	appendTake(&ds.Train1, ecgsyn.ClassL, scale(Train1PerClass))
	appendTake(&ds.Train1, ecgsyn.ClassV, scale(Train1PerClass))
	appendTake(&ds.Train2, ecgsyn.ClassN, scale(Train2N))
	appendTake(&ds.Train2, ecgsyn.ClassL, scale(Train2L))
	appendTake(&ds.Train2, ecgsyn.ClassV, scale(Train2V))
	if err != nil {
		return nil, err
	}
	return ds, nil
}

// CountByClass tallies the classes of the indexed beats.
func (ds *Dataset) CountByClass(indices []int) [3]int {
	var out [3]int
	for _, i := range indices {
		out[ds.Beats[i].Class]++
	}
	return out
}

// FloatWindow returns the beat's samples as float64 ADC counts, optionally
// downsampled by the given factor (1 = full rate). This is the input
// representation used for float training (counts, not millivolts, so that
// trained centers quantize directly to the integer pipeline).
func (ds *Dataset) FloatWindow(beat int, downsample int) []float64 {
	s := ds.Beats[beat].Samples
	if downsample <= 1 {
		out := make([]float64, len(s))
		for i, v := range s {
			out[i] = float64(v)
		}
		return out
	}
	out := make([]float64, 0, (len(s)+downsample-1)/downsample)
	for i := 0; i < len(s); i += downsample {
		out = append(out, float64(s[i]))
	}
	return out
}

// IntWindow returns the beat's samples as int32 ADC counts, optionally
// downsampled — the embedded pipeline's input.
func (ds *Dataset) IntWindow(beat int, downsample int) []int32 {
	s := ds.Beats[beat].Samples
	if downsample <= 1 {
		out := make([]int32, len(s))
		for i, v := range s {
			out[i] = int32(v)
		}
		return out
	}
	out := make([]int32, 0, (len(s)+downsample-1)/downsample)
	for i := 0; i < len(s); i += downsample {
		out = append(out, int32(s[i]))
	}
	return out
}

// Dim returns the input dimensionality at the given downsampling factor.
func (ds *Dataset) Dim(downsample int) int {
	n := ds.Before + ds.After
	if downsample <= 1 {
		return n
	}
	return (n + downsample - 1) / downsample
}

// Labels returns the class labels (as uint8, ecgsyn order) of the indexed
// beats.
func (ds *Dataset) Labels(indices []int) []uint8 {
	out := make([]uint8, len(indices))
	for i, idx := range indices {
		out[i] = uint8(ds.Beats[idx].Class)
	}
	return out
}

// Validate checks invariants (window sizes, class sanity, split overlap).
func (ds *Dataset) Validate() error {
	if len(ds.Beats) == 0 {
		return errors.New("beatset: empty dataset")
	}
	want := ds.Before + ds.After
	for i, b := range ds.Beats {
		if len(b.Samples) != want {
			return fmt.Errorf("beatset: beat %d window %d, want %d", i, len(b.Samples), want)
		}
		if b.Class >= ecgsyn.NumClasses {
			return fmt.Errorf("beatset: beat %d class %d", i, b.Class)
		}
	}
	seen := make(map[int]bool, len(ds.Train1)+len(ds.Train2))
	for _, i := range ds.Train1 {
		if seen[i] {
			return errors.New("beatset: duplicate beat in train1")
		}
		seen[i] = true
	}
	for _, i := range ds.Train2 {
		if seen[i] {
			return errors.New("beatset: train1/train2 overlap")
		}
		seen[i] = true
	}
	return nil
}
