package beatset

import (
	"testing"

	"rpbeat/internal/ecgsyn"
)

func TestInventoryMatchesTableI(t *testing.T) {
	var n, l, v int
	inv := Inventory()
	if len(inv) != 48 {
		t.Fatalf("inventory has %d records, want 48 (as MIT-BIH)", len(inv))
	}
	for _, p := range inv {
		n += p.N
		l += p.L
		v += p.V
	}
	if n != TestN || l != TestL || v != TestV {
		t.Fatalf("inventory totals N=%d L=%d V=%d, want %d/%d/%d", n, l, v, TestN, TestL, TestV)
	}
}

func TestInventoryLBBBStructure(t *testing.T) {
	lbbb := map[string]bool{"109": true, "111": true, "207": true, "214": true}
	for _, p := range Inventory() {
		if lbbb[p.Name] {
			if p.L == 0 || p.N != 0 {
				t.Fatalf("LBBB record %s: N=%d L=%d", p.Name, p.N, p.L)
			}
		} else if p.L != 0 {
			t.Fatalf("non-LBBB record %s carries L beats", p.Name)
		}
	}
}

func buildSmall(t *testing.T) *Dataset {
	t.Helper()
	ds, err := Build(Config{Seed: 1, Scale: 0.02})
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

func TestBuildSmallValid(t *testing.T) {
	ds := buildSmall(t)
	if err := ds.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(ds.Test) != len(ds.Beats) {
		t.Fatal("test set must cover the whole database")
	}
}

func TestBuildDeterministic(t *testing.T) {
	a := buildSmall(t)
	b := buildSmall(t)
	if len(a.Beats) != len(b.Beats) {
		t.Fatalf("beat counts differ: %d vs %d", len(a.Beats), len(b.Beats))
	}
	for i := range a.Beats {
		if a.Beats[i].Class != b.Beats[i].Class || a.Beats[i].Record != b.Beats[i].Record {
			t.Fatalf("beat %d metadata differs", i)
		}
		for j := range a.Beats[i].Samples {
			if a.Beats[i].Samples[j] != b.Beats[i].Samples[j] {
				t.Fatalf("beat %d sample %d differs", i, j)
			}
		}
	}
	for i := range a.Train1 {
		if a.Train1[i] != b.Train1[i] {
			t.Fatal("train1 split differs")
		}
	}
}

func TestBuildSeedChangesData(t *testing.T) {
	a, err := Build(Config{Seed: 1, Scale: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Build(Config{Seed: 2, Scale: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for j := range a.Beats[0].Samples {
		if a.Beats[0].Samples[j] != b.Beats[0].Samples[j] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical first beat")
	}
}

func TestSplitComposition(t *testing.T) {
	ds := buildSmall(t)
	t1 := ds.CountByClass(ds.Train1)
	// Scale 0.02: ceil(150*0.02) = 3 per class.
	for cl, n := range t1 {
		if n != 3 {
			t.Fatalf("train1 class %d has %d beats, want 3", cl, n)
		}
	}
	t2 := ds.CountByClass(ds.Train2)
	if t2[ecgsyn.ClassN] != 201 || t2[ecgsyn.ClassL] != 22 || t2[ecgsyn.ClassV] != 18 {
		t.Fatalf("train2 composition %v, want [201 22 18] at scale 0.02", t2)
	}
}

func TestWindowAccessors(t *testing.T) {
	ds := buildSmall(t)
	fw := ds.FloatWindow(0, 1)
	iw := ds.IntWindow(0, 1)
	if len(fw) != 200 || len(iw) != 200 {
		t.Fatalf("window lengths %d/%d, want 200", len(fw), len(iw))
	}
	for i := range fw {
		if fw[i] != float64(iw[i]) {
			t.Fatalf("float/int window mismatch at %d", i)
		}
	}
	fw4 := ds.FloatWindow(0, 4)
	if len(fw4) != 50 {
		t.Fatalf("downsampled window length %d, want 50", len(fw4))
	}
	for i := range fw4 {
		if fw4[i] != fw[i*4] {
			t.Fatalf("downsample mismatch at %d", i)
		}
	}
	if ds.Dim(1) != 200 || ds.Dim(4) != 50 {
		t.Fatalf("Dim: %d/%d", ds.Dim(1), ds.Dim(4))
	}
}

func TestLabels(t *testing.T) {
	ds := buildSmall(t)
	labels := ds.Labels(ds.Train1)
	counts := [3]int{}
	for _, l := range labels {
		counts[l]++
	}
	if counts[0] != 3 || counts[1] != 3 || counts[2] != 3 {
		t.Fatalf("label counts %v", counts)
	}
}

func TestADCRange(t *testing.T) {
	ds := buildSmall(t)
	for i, b := range ds.Beats {
		for j, s := range b.Samples {
			if s < 0 || s > ecgsyn.ADCMax {
				t.Fatalf("beat %d sample %d = %d outside ADC range", i, j, s)
			}
		}
	}
}

func TestRecordDiversity(t *testing.T) {
	ds := buildSmall(t)
	records := map[string]bool{}
	for _, b := range ds.Beats {
		records[b.Record] = true
	}
	if len(records) != 48 {
		t.Fatalf("beats from %d records, want 48", len(records))
	}
}

func TestFullScaleComposition(t *testing.T) {
	if testing.Short() {
		t.Skip("full dataset build in -short mode")
	}
	ds, err := Build(Config{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if err := ds.Validate(); err != nil {
		t.Fatal(err)
	}
	test := ds.CountByClass(ds.Test)
	if test[ecgsyn.ClassN] != TestN || test[ecgsyn.ClassL] != TestL || test[ecgsyn.ClassV] != TestV {
		t.Fatalf("test composition %v, want [%d %d %d]", test, TestN, TestL, TestV)
	}
	t1 := ds.CountByClass(ds.Train1)
	if t1 != [3]int{150, 150, 150} {
		t.Fatalf("train1 composition %v", t1)
	}
	t2 := ds.CountByClass(ds.Train2)
	if t2[ecgsyn.ClassN] != Train2N || t2[ecgsyn.ClassL] != Train2L || t2[ecgsyn.ClassV] != Train2V {
		t.Fatalf("train2 composition %v", t2)
	}
	if len(ds.Test) != 89012 {
		t.Fatalf("test set size %d, want 89012", len(ds.Test))
	}
}

func BenchmarkBuildScale2Percent(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := Build(Config{Seed: 1, Scale: 0.02}); err != nil {
			b.Fatal(err)
		}
	}
}
