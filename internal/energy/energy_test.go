package energy

import (
	"math"
	"testing"
)

func TestPayloadConstants(t *testing.T) {
	if FullBeatBytes != 18 || PeakOnlyBytes != 2 {
		t.Fatalf("payloads %d/%d, want 18/2", FullBeatBytes, PeakOnlyBytes)
	}
}

func TestTrafficBytes(t *testing.T) {
	tr := TrafficCounts{NormalDiscarded: 100, FullReports: 25}
	r := RadioModel{JoulePerByte: 1}
	if tr.Total() != 125 {
		t.Fatalf("total %d", tr.Total())
	}
	if got := tr.BaselineBytes(r); got != 125*18 {
		t.Fatalf("baseline bytes %d", got)
	}
	if got := tr.GatedBytes(r); got != 100*2+25*18 {
		t.Fatalf("gated bytes %d", got)
	}
	// Overhead applies per beat in both policies.
	r.PacketOverheadBytes = 4
	if got := tr.BaselineBytes(r); got != 125*22 {
		t.Fatalf("baseline bytes with overhead %d", got)
	}
	if got := tr.GatedBytes(r); got != 100*6+25*22 {
		t.Fatalf("gated bytes with overhead %d", got)
	}
}

func TestAnalyzePaperRegime(t *testing.T) {
	// Test-set-like composition: 83.5% normals of which ~92.5% discarded;
	// the rest ship full fiducials. Expected radio saving ~68%.
	total := 89012
	normals := 74355
	discarded := int(0.925 * float64(normals))
	tr := TrafficCounts{
		NormalDiscarded: discarded,
		FullReports:     total - discarded,
	}
	rep, err := Analyze(Params{
		Traffic:       tr,
		StreamSeconds: 74176, // ~20.6 h of signal at 1.2 beats/s
		DutyGated:     0.24,
		DutyAlwaysOn:  0.64,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.RadioReduction < 0.60 || rep.RadioReduction > 0.75 {
		t.Fatalf("radio reduction %.3f, want ~0.68", rep.RadioReduction)
	}
	if rep.ComputeReduction < 0.55 || rep.ComputeReduction > 0.70 {
		t.Fatalf("compute reduction %.3f, want ~0.63", rep.ComputeReduction)
	}
	if rep.TotalReduction < 0.18 || rep.TotalReduction > 0.28 {
		t.Fatalf("total reduction %.3f, want ~0.23", rep.TotalReduction)
	}
}

func TestAnalyzeConsistency(t *testing.T) {
	tr := TrafficCounts{NormalDiscarded: 1000, FullReports: 200}
	rep, err := Analyze(Params{
		Traffic:       tr,
		StreamSeconds: 1000,
		DutyGated:     0.2,
		DutyAlwaysOn:  0.5,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Reductions must match the absolute energies.
	if math.Abs(rep.RadioReduction-(1-rep.RadioGatedJ/rep.RadioBaselineJ)) > 1e-12 {
		t.Fatal("radio reduction inconsistent with energies")
	}
	if math.Abs(rep.ComputeReduction-(1-rep.ComputeGatedJ/rep.ComputeBaselineJ)) > 1e-12 {
		t.Fatal("compute reduction inconsistent with energies")
	}
	if math.Abs(rep.ComputeReduction-0.6) > 1e-12 {
		t.Fatalf("compute reduction %v, want 0.6", rep.ComputeReduction)
	}
}

func TestAnalyzeNoDiscards(t *testing.T) {
	// A broken classifier that discards nothing saves no radio energy.
	tr := TrafficCounts{NormalDiscarded: 0, FullReports: 100}
	rep, err := Analyze(Params{Traffic: tr, StreamSeconds: 100, DutyGated: 0.5, DutyAlwaysOn: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if rep.RadioReduction != 0 || rep.ComputeReduction != 0 || rep.TotalReduction != 0 {
		t.Fatalf("expected zero savings: %+v", rep)
	}
}

func TestAnalyzePerfectDiscards(t *testing.T) {
	tr := TrafficCounts{NormalDiscarded: 100, FullReports: 0}
	rep, err := Analyze(Params{Traffic: tr, StreamSeconds: 100, DutyGated: 0.1, DutyAlwaysOn: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	want := 1.0 - float64(PeakOnlyBytes)/float64(FullBeatBytes) // 8/9
	if math.Abs(rep.RadioReduction-want) > 1e-12 {
		t.Fatalf("radio reduction %v, want %v", rep.RadioReduction, want)
	}
}

func TestAnalyzeValidation(t *testing.T) {
	if _, err := Analyze(Params{}); err == nil {
		t.Fatal("empty traffic should error")
	}
	if _, err := Analyze(Params{Traffic: TrafficCounts{FullReports: 1}}); err == nil {
		t.Fatal("zero always-on duty should error")
	}
}

func TestBudgetSharesBound(t *testing.T) {
	// With the documented ~34% combined share, the total node saving cannot
	// exceed 34% no matter how good the classifier is.
	s := DefaultShares()
	if s.Radio+s.Compute > 0.35 {
		t.Fatalf("shares sum %.2f, want ~0.34 per the paper's budget", s.Radio+s.Compute)
	}
	tr := TrafficCounts{NormalDiscarded: 100, FullReports: 0}
	rep, err := Analyze(Params{Traffic: tr, StreamSeconds: 1, DutyGated: 0.001, DutyAlwaysOn: 1})
	if err != nil {
		t.Fatal(err)
	}
	if rep.TotalReduction > s.Radio+s.Compute {
		t.Fatalf("total reduction %v exceeds budget share bound", rep.TotalReduction)
	}
}
