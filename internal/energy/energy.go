// Package energy models the WBSN's energy budget to reproduce Sec. IV-E of
// the paper: classification-gated reporting reduces both the bio-signal
// analysis energy (by deactivating delineation for normal beats) and the
// wireless transmission energy (by sending only the peak position of normal
// beats instead of all nine fiducial points).
//
// Model constants (radio energy per byte, CPU active power, the share of
// the node budget taken by computation + radio) are documented, configurable
// values; the *reductions* the experiments report are ratios of byte counts
// and duty cycles produced by the actual pipeline on the actual test set,
// so they do not depend on the absolute constants.
package energy

import "fmt"

// Payload sizes (bytes). A fiducial point is a 16-bit sample offset.
const (
	BytesPerFiducial = 2
	FiducialsPerBeat = 9 // onset/peak/end of P, QRS, T (Sec. IV-E)
	// PeakOnlyBytes is the payload for a normal beat under the optimized
	// policy: just the R-peak position.
	PeakOnlyBytes = 1 * BytesPerFiducial
	// FullBeatBytes is the payload carrying all fiducial points.
	FullBeatBytes = FiducialsPerBeat * BytesPerFiducial
)

// RadioModel converts transmitted bytes to energy.
type RadioModel struct {
	// JoulePerByte is the TX energy per payload byte. Default 2e-6 J/B
	// (a low-power sub-GHz transceiver at ~250 kbit/s, ~60 mW TX).
	JoulePerByte float64
	// PacketOverheadBytes is the per-beat framing overhead. The paper's 68%
	// figure compares payloads, so the default is 0.
	PacketOverheadBytes int
}

// DefaultRadio returns the documented radio constants.
func DefaultRadio() RadioModel {
	return RadioModel{JoulePerByte: 2e-6}
}

// CPUModel converts duty cycle to energy.
type CPUModel struct {
	// ActiveWatt is the core's power while processing. Default 0.6 mW
	// (icyflex-class core at 6 MHz, ~100 µW/MHz).
	ActiveWatt float64
}

// DefaultCPU returns the documented CPU constants.
func DefaultCPU() CPUModel {
	return CPUModel{ActiveWatt: 0.6e-3}
}

// TrafficCounts summarizes the classifier's decisions over a beat stream,
// as needed for payload accounting.
type TrafficCounts struct {
	NormalDiscarded int // true normals reported as N (peak-only payload)
	FullReports     int // everything else: abnormal + normals misread
}

// Total returns the number of beats.
func (t TrafficCounts) Total() int { return t.NormalDiscarded + t.FullReports }

// BaselineBytes is the radio payload when every beat ships all fiducials
// (the non-gated reference system).
func (t TrafficCounts) BaselineBytes(r RadioModel) int {
	return t.Total() * (FullBeatBytes + r.PacketOverheadBytes)
}

// GatedBytes is the payload under the classification-gated policy: peak-only
// for discarded normals, full fiducials otherwise.
func (t TrafficCounts) GatedBytes(r RadioModel) int {
	return t.NormalDiscarded*(PeakOnlyBytes+r.PacketOverheadBytes) +
		t.FullReports*(FullBeatBytes+r.PacketOverheadBytes)
}

// Report is the Sec. IV-E summary.
type Report struct {
	// RadioReduction is the fractional saving in wireless energy.
	RadioReduction float64
	// ComputeReduction is the fractional saving in bio-signal analysis
	// energy (from the duty cycles of Table III).
	ComputeReduction float64
	// TotalReduction is the estimated whole-node saving given the budget
	// shares of radio and computation.
	TotalReduction float64
	// Absolute energies over the evaluated stream (joules), for reference.
	RadioBaselineJ, RadioGatedJ     float64
	ComputeBaselineJ, ComputeGatedJ float64
}

// BudgetShares describes how much of the node's total energy goes to the
// two subsystems the classifier influences. The paper cites ~34% combined
// for computation plus wireless communication in typical WBSN designs [1];
// the default split gives the radio the larger half.
type BudgetShares struct {
	Radio   float64 // default 0.20
	Compute float64 // default 0.14
}

// DefaultShares returns the documented budget split.
func DefaultShares() BudgetShares { return BudgetShares{Radio: 0.20, Compute: 0.14} }

// Params collects everything the Sec. IV-E computation needs.
type Params struct {
	Traffic       TrafficCounts
	Radio         RadioModel
	CPU           CPUModel
	Shares        BudgetShares
	StreamSeconds float64 // duration of the evaluated beat stream
	DutyGated     float64 // Table III system (3)
	DutyAlwaysOn  float64 // Table III sub-system (2)
}

// Analyze computes the energy report.
func Analyze(p Params) (Report, error) {
	var rep Report
	if p.Traffic.Total() == 0 {
		return rep, fmt.Errorf("energy: no beats in traffic counts")
	}
	if p.DutyAlwaysOn <= 0 {
		return rep, fmt.Errorf("energy: always-on duty cycle must be positive")
	}
	if p.Radio.JoulePerByte == 0 {
		p.Radio = DefaultRadio()
	}
	if p.CPU.ActiveWatt == 0 {
		p.CPU = DefaultCPU()
	}
	if p.Shares.Radio == 0 && p.Shares.Compute == 0 {
		p.Shares = DefaultShares()
	}
	base := float64(p.Traffic.BaselineBytes(p.Radio)) * p.Radio.JoulePerByte
	gated := float64(p.Traffic.GatedBytes(p.Radio)) * p.Radio.JoulePerByte
	rep.RadioBaselineJ, rep.RadioGatedJ = base, gated
	rep.RadioReduction = 1 - gated/base

	rep.ComputeBaselineJ = p.CPU.ActiveWatt * p.DutyAlwaysOn * p.StreamSeconds
	rep.ComputeGatedJ = p.CPU.ActiveWatt * p.DutyGated * p.StreamSeconds
	rep.ComputeReduction = 1 - p.DutyGated/p.DutyAlwaysOn

	rep.TotalReduction = p.Shares.Radio*rep.RadioReduction + p.Shares.Compute*rep.ComputeReduction
	return rep, nil
}
