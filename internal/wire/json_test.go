package wire

import (
	"encoding/json"
	"errors"
	"fmt"
	"strings"
	"testing"

	"rpbeat/internal/rng"
	"rpbeat/internal/testutil"
)

// classifyBody mirrors serve.ClassifyRequest for stdlib comparison.
type classifyBody struct {
	Model   string  `json:"model,omitempty"`
	Samples []int32 `json:"samples"`
}

// chunkBody mirrors serve.StreamChunk.
type chunkBody struct {
	Samples []int32 `json:"samples"`
}

// stdClassify is the reference decode through encoding/json.
func stdClassify(data []byte) (string, []int32, error) {
	var b classifyBody
	if err := json.Unmarshal(data, &b); err != nil {
		return "", nil, err
	}
	return b.Model, b.Samples, nil
}

func sameSamples(a, b []int32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestParseClassifyAgreesWithStdlib drives both decoders over a corpus of
// valid bodies exercising whitespace, key order, case folding, escapes,
// duplicate keys, nulls and unknown keys — the completeness half of the
// equivalence contract (the fuzz target holds the soundness half).
func TestParseClassifyAgreesWithStdlib(t *testing.T) {
	corpus := []string{
		`{"samples":[1,2,3]}`,
		`{"samples":[]}`,
		`{}`,
		`null`,
		` { "model" : "default" , "samples" : [ 0 , -1 , 2047 ] } `,
		"\t{\n\"samples\":[1,\r\n2]}\n",
		`{"model":"a@v1","samples":[-2147483648,2147483647]}`,
		`{"Samples":[4,5],"MODEL":"x"}`,
		`{"samples":[1],"samples":[9,8]}`,
		`{"samples":[1],"samples":null}`,
		`{"model":null,"samples":[3]}`,
		`{"model":"first","model":"second","samples":[1]}`,
		`{"unknown":{"nested":[1,{"deep":true}]},"samples":[7]}`,
		`{"other":1.5e-9,"samples":[2],"more":"str\"esc"}`,
		`{"model":"escA\n\t\\\"/é","samples":[1]}`,
		`{"model":"😀","samples":[1]}`,
		`{"model":"\ud800unpaired","samples":[1]}`,
		`{"samples":[11,12]}`,
		`{"samples":[-0]}`,
		`{"samples":null}`,
		`{"a":true,"b":false,"c":null,"samples":[1]}`,
	}
	for _, in := range corpus {
		wantModel, wantSamples, wantErr := stdClassify([]byte(in))
		if wantErr != nil {
			t.Fatalf("corpus entry is not stdlib-valid: %q: %v", in, wantErr)
		}
		model, samples, err := ParseClassify(nil, []byte(in))
		if err != nil {
			t.Fatalf("fast parser rejected valid %q: %v", in, err)
		}
		if model != wantModel || !sameSamples(samples, wantSamples) {
			t.Fatalf("%q: fast (%q, %v) != stdlib (%q, %v)", in, model, samples, wantModel, wantSamples)
		}

		// ParseChunk over the same input must agree with the chunk struct.
		var cb chunkBody
		if err := json.Unmarshal([]byte(in), &cb); err != nil {
			t.Fatal(err)
		}
		got, err := ParseChunk(nil, []byte(in))
		if err != nil {
			t.Fatalf("ParseChunk rejected valid %q: %v", in, err)
		}
		if !sameSamples(got, cb.Samples) {
			t.Fatalf("%q: ParseChunk %v != stdlib %v", in, got, cb.Samples)
		}
	}
}

// TestParseRejectsHostileInput holds the parser to typed *SyntaxError
// rejection (never a panic, never silent acceptance) on malformed bodies.
func TestParseRejectsHostileInput(t *testing.T) {
	bad := []string{
		``,
		` `,
		`{`,
		`{"samples":[1,2}`,
		`{"samples":[1,]}`,
		`{"samples":[01]}`,
		`{"samples":[1.5]}`,
		`{"samples":[1e3]}`,
		`{"samples":[2147483648]}`,
		`{"samples":[-2147483649]}`,
		`{"samples":["1"]}`,
		`{"samples":[--1]}`,
		`{"samples":{}}`,
		`{"samples":true}`,
		`{"samples":[1]}x`,
		`{"samples":[1]} {"samples":[2]}`,
		`[1,2]`,
		`true`,
		`"samples"`,
		`{"model":3,"samples":[1]}`,
		`{"model":"x` + "\x01" + `","samples":[1]}`,
		`{"model":"\q","samples":[1]}`,
		`{"model":"\u12g4","samples":[1]}`,
		`{"model":"unterminated`,
		`{"samples":[1],}`,
		`{"samples" [1]}`,
		`{samples:[1]}`,
		`{"x":01,"samples":[1]}`,
		`{"x":1.,"samples":[1]}`,
		`{"x":1e,"samples":[1]}`,
		`{"x":tru}`,
		strings.Repeat(`{"a":`, 600) + `1` + strings.Repeat(`}`, 600),
	}
	for _, in := range bad {
		_, _, err := ParseClassify(nil, []byte(in))
		if err == nil {
			t.Fatalf("fast parser accepted %q", in)
		}
		var se *SyntaxError
		if !errors.As(err, &se) {
			t.Fatalf("%q: error %v is not a *SyntaxError", in, err)
		}
	}
}

// TestParseChunkPropertyEquivalence cross-checks the two decoders over
// randomly generated valid chunk lines: random sample counts and values,
// random whitespace, random key case, occasional unknown keys.
func TestParseChunkPropertyEquivalence(t *testing.T) {
	r := rng.New(99)
	ws := []string{"", " ", "\t", "\n", "  "}
	keys := []string{"samples", "Samples", "SAMPLES", "sAmPlEs"}
	var reused []int32
	for trial := 0; trial < 500; trial++ {
		n := r.Intn(40)
		var sb strings.Builder
		sb.WriteString(ws[r.Intn(len(ws))] + "{")
		if r.Intn(4) == 0 {
			fmt.Fprintf(&sb, `"extra%d":%d,`, trial, r.Intn(1000))
		}
		fmt.Fprintf(&sb, `%s"%s"%s:%s[`, ws[r.Intn(len(ws))], keys[r.Intn(len(keys))],
			ws[r.Intn(len(ws))], ws[r.Intn(len(ws))])
		for i := 0; i < n; i++ {
			if i > 0 {
				sb.WriteString("," + ws[r.Intn(len(ws))])
			}
			fmt.Fprintf(&sb, "%d", r.Intn(4096)-2048)
		}
		sb.WriteString("]}" + ws[r.Intn(len(ws))])
		line := []byte(sb.String())

		var want chunkBody
		if err := json.Unmarshal(line, &want); err != nil {
			t.Fatalf("generator produced stdlib-invalid %q: %v", line, err)
		}
		var err error
		reused, err = ParseChunk(reused, line)
		if err != nil {
			t.Fatalf("fast parser rejected %q: %v", line, err)
		}
		if !sameSamples(reused, want.Samples) {
			t.Fatalf("%q: fast %v != stdlib %v", line, reused, want.Samples)
		}
	}
}

// TestParseChunkReusesBuffer pins the append-into-dst contract: across
// lines that fit the warm capacity, the returned slice shares dst's
// backing array and no reallocation happens.
func TestParseChunkReusesBuffer(t *testing.T) {
	buf := make([]int32, 0, 64)
	first, err := ParseChunk(buf, []byte(`{"samples":[1,2,3]}`))
	if err != nil {
		t.Fatal(err)
	}
	second, err := ParseChunk(first, []byte(`{"samples":[9,8]}`))
	if err != nil {
		t.Fatal(err)
	}
	if cap(second) != cap(buf) {
		t.Fatalf("warm parse reallocated: cap %d -> %d", cap(buf), cap(second))
	}
	if !sameSamples(second, []int32{9, 8}) {
		t.Fatalf("second parse = %v", second)
	}
}

// TestParseChunkZeroAlloc is the wire row's allocation invariant: parsing a
// steady stream of chunk lines into a warm buffer allocates nothing.
func TestParseChunkZeroAlloc(t *testing.T) {
	line := []byte(`{"samples":[1017,1020,1013,998,1004,1011,1002,997,1003,1008]}`)
	buf := make([]int32, 0, 16)
	var parseErr error
	testutil.AssertZeroAlloc(t, "warm ParseChunk", func() {
		buf, parseErr = ParseChunk(buf, line)
	})
	if parseErr != nil {
		t.Fatal(parseErr)
	}
}

// TestParseChunkKeepsBufferOnError: a malformed line must not cost the
// caller its pooled buffer — the returned slice still shares dst's backing
// array, so a trickle of bad requests cannot defeat the pooling.
func TestParseChunkKeepsBufferOnError(t *testing.T) {
	buf := make([]int32, 0, 64)
	for _, bad := range []string{`{"samples":[1,`, `{"samples":[1.5]}`, `junk`} {
		out, err := ParseChunk(buf, []byte(bad))
		if err == nil {
			t.Fatalf("accepted %q", bad)
		}
		if cap(out) != cap(buf) {
			t.Fatalf("%q: error path dropped the buffer (cap %d -> %d)", bad, cap(buf), cap(out))
		}
		buf = out
	}
}
