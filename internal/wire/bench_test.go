package wire

import (
	"encoding/json"
	"testing"

	"rpbeat/internal/ecgsyn"
	"rpbeat/internal/nfc"
	"rpbeat/internal/pipeline"
	"rpbeat/internal/rng"
)

// The wire-row benchmarks: the per-chunk decode cost of each codec the
// serving layer can run, over the same one-second 360-sample chunk. CI runs
// them as a smoke test (-bench=Wire); rpbench -json records them as the
// serve/stream decode rows of BENCH_<n>.json.

func benchChunkLine(b *testing.B) ([]byte, []int32) {
	b.Helper()
	samples := ecgsyn.Synthesize(ecgsyn.RecordSpec{Name: "wb", Seconds: 10, Seed: 9}).Leads[0][:360]
	line, err := json.Marshal(chunkBody{Samples: samples})
	if err != nil {
		b.Fatal(err)
	}
	return line, samples
}

func BenchmarkWireParseChunkFast(b *testing.B) {
	line, _ := benchChunkLine(b)
	dst := make([]int32, 0, 512)
	b.SetBytes(int64(len(line)))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		var err error
		dst, err = ParseChunk(dst, line)
		if err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkWireParseChunkStdlib(b *testing.B) {
	line, _ := benchChunkLine(b)
	var chunk chunkBody
	chunk.Samples = make([]int32, 0, 512)
	b.SetBytes(int64(len(line)))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		chunk.Samples = chunk.Samples[:0]
		if err := json.Unmarshal(line, &chunk); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkWireDecodeFrameChunk(b *testing.B) {
	_, samples := benchChunkLine(b)
	frame, err := AppendFrame(nil, samples)
	if err != nil {
		b.Fatal(err)
	}
	dst := make([]int32, 0, 512)
	b.SetBytes(int64(len(frame)))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		var err error
		dst, _, err = DecodeFrame(dst[:0], frame)
		if err != nil {
			b.Fatal(err)
		}
	}
}

func makeBeats(n int) []pipeline.BeatResult {
	r := rng.New(12)
	beats := make([]pipeline.BeatResult, n)
	for i := range beats {
		beats[i] = pipeline.BeatResult{
			Peak: i * 300, Decision: nfc.Decision(r.Intn(4)), DetectedAt: i*300 + 60,
		}
	}
	return beats
}

func BenchmarkWireAppendClassifyResponse(b *testing.B) {
	beats := makeBeats(200)
	buf := make([]byte, 0, 16384)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		buf = AppendClassifyResponse(buf[:0], "default@v1", beats)
	}
}
