package wire

import (
	"strconv"
	"unicode/utf8"

	"rpbeat/internal/nfc"
	"rpbeat/internal/pipeline"
)

// The append-style response encoders. Each produces exactly the bytes the
// stdlib path (json.NewEncoder(w).Encode(v) on the serving layer's response
// structs) would produce — including the HTML escaping encoding/json applies
// by default and the trailing newline Encode writes — so switching a handler
// between the stdlib and the fast encoder is invisible on the wire. The
// equivalence is enforced byte-for-byte by the encode tests.

// AppendStreamBeat appends one /v1/stream beat line:
// {"sample":S,"class":"C","detectedAt":D}\n.
//
//rpbeat:allocfree
func AppendStreamBeat(buf []byte, sample int, class string, detectedAt int) []byte {
	buf = append(buf, `{"sample":`...)
	buf = strconv.AppendInt(buf, int64(sample), 10)
	buf = append(buf, `,"class":`...)
	buf = AppendString(buf, class)
	buf = append(buf, `,"detectedAt":`...)
	buf = strconv.AppendInt(buf, int64(detectedAt), 10)
	return append(buf, '}', '\n')
}

// AppendStreamDone appends the final /v1/stream summary line:
// {"done":true,"model":"M","beats":B,"samples":S}\n.
//
//rpbeat:allocfree
func AppendStreamDone(buf []byte, model string, beats, samples int) []byte {
	buf = append(buf, `{"done":true,"model":`...)
	buf = AppendString(buf, model)
	buf = append(buf, `,"beats":`...)
	buf = strconv.AppendInt(buf, int64(beats), 10)
	buf = append(buf, `,"samples":`...)
	buf = strconv.AppendInt(buf, int64(samples), 10)
	return append(buf, '}', '\n')
}

// AppendError appends the uniform typed error body every endpoint renders:
// {"error":{"code":"C","message":"M"}}\n.
//
//rpbeat:allocfree
func AppendError(buf []byte, code, message string) []byte {
	buf = append(buf, `{"error":{"code":`...)
	buf = AppendString(buf, code)
	buf = append(buf, `,"message":`...)
	buf = AppendString(buf, message)
	return append(buf, '}', '}', '\n')
}

// AppendClassifyResponse appends the whole /v1/classify success body for a
// classified record: resolved model, total, the per-class counts (all four
// classes, keys in sorted order — what encoding/json emits for the counts
// map) and one object per beat.
//
//rpbeat:allocfree
func AppendClassifyResponse(buf []byte, model string, beats []pipeline.BeatResult) []byte {
	var counts [4]int64 // indexed by nfc.Decision (N, L, V, U)
	for _, b := range beats {
		counts[b.Decision]++
	}
	buf = append(buf, `{"model":`...)
	buf = AppendString(buf, model)
	buf = append(buf, `,"total":`...)
	buf = strconv.AppendInt(buf, int64(len(beats)), 10)
	// Sorted key order, as the stdlib encodes map[string]int.
	buf = append(buf, `,"counts":{"L":`...)
	buf = strconv.AppendInt(buf, counts[nfc.DecideL], 10)
	buf = append(buf, `,"N":`...)
	buf = strconv.AppendInt(buf, counts[nfc.DecideN], 10)
	buf = append(buf, `,"U":`...)
	buf = strconv.AppendInt(buf, counts[nfc.DecideU], 10)
	buf = append(buf, `,"V":`...)
	buf = strconv.AppendInt(buf, counts[nfc.DecideV], 10)
	buf = append(buf, `},"beats":[`...)
	for i, b := range beats {
		if i > 0 {
			buf = append(buf, ',')
		}
		buf = append(buf, `{"sample":`...)
		buf = strconv.AppendInt(buf, int64(b.Peak), 10)
		buf = append(buf, `,"class":`...)
		buf = AppendString(buf, b.Decision.String())
		buf = append(buf, '}')
	}
	return append(buf, ']', '}', '\n')
}

const hexDigits = "0123456789abcdef"

// AppendString appends the JSON encoding of s, byte-identical to
// encoding/json's default encoder: quotes, backslash escapes, \u00XX for
// control characters, HTML escaping of < > &, U+2028/U+2029 escaping, and
// each invalid UTF-8 byte coerced to \ufffd.
//
//rpbeat:allocfree
func AppendString(buf []byte, s string) []byte {
	buf = append(buf, '"')
	start := 0
	for i := 0; i < len(s); {
		if b := s[i]; b < utf8.RuneSelf {
			if b >= 0x20 && b != '"' && b != '\\' && b != '<' && b != '>' && b != '&' {
				i++
				continue
			}
			buf = append(buf, s[start:i]...)
			switch b {
			case '\\', '"':
				buf = append(buf, '\\', b)
			case '\n':
				buf = append(buf, '\\', 'n')
			case '\r':
				buf = append(buf, '\\', 'r')
			case '\t':
				buf = append(buf, '\\', 't')
			default:
				buf = append(buf, '\\', 'u', '0', '0', hexDigits[b>>4], hexDigits[b&0xF])
			}
			i++
			start = i
			continue
		}
		c, size := utf8.DecodeRuneInString(s[i:])
		if c == utf8.RuneError && size == 1 {
			buf = append(buf, s[start:i]...)
			buf = append(buf, '\\', 'u', 'f', 'f', 'f', 'd')
			i += size
			start = i
			continue
		}
		if c == '\u2028' || c == '\u2029' {
			buf = append(buf, s[start:i]...)
			buf = append(buf, '\\', 'u', '2', '0', '2', hexDigits[c&0xF])
			i += size
			start = i
			continue
		}
		i += size
	}
	buf = append(buf, s[start:]...)
	return append(buf, '"')
}
