package wire

import "testing"

func TestIsSampleContentType(t *testing.T) {
	cases := []struct {
		ct   string
		want bool
	}{
		{"application/x-rpbeat-samples", true},
		{"Application/X-RPBeat-Samples", true}, // media types are case-insensitive (RFC 9110)
		{"APPLICATION/X-RPBEAT-SAMPLES", true},
		{" application/x-rpbeat-samples ", true},
		{"application/x-rpbeat-samples; charset=utf-8", true},
		{"application/x-rpbeat-samples;foo=bar", true},
		{"application/json", false},
		{"application/x-ndjson", false},
		{"application/x-rpbeat-samplesx", false},
		{"", false},
	}
	for _, c := range cases {
		if got := IsSampleContentType(c.ct); got != c.want {
			t.Fatalf("IsSampleContentType(%q) = %v, want %v", c.ct, got, c.want)
		}
	}
}
