package wire

import (
	"fmt"
	"math"
	"strings"
	"unicode"
	"unicode/utf16"
	"unicode/utf8"
)

// SyntaxError is the typed rejection of the fast JSON parser: where in the
// input it gave up and why. The serving layer renders it as bad_input.
type SyntaxError struct {
	Off int    // byte offset the parser stopped at
	Msg string // what it expected or found
}

func (e *SyntaxError) Error() string {
	return fmt.Sprintf("invalid request JSON at byte %d: %s", e.Off, e.Msg)
}

// maxNestingDepth bounds how deep skipped (unknown-key) values may nest.
// Inputs deeper than this are rejected — strictly less than encoding/json
// tolerates, which keeps the "fast success implies stdlib success"
// equivalence direction intact while refusing stack-abuse payloads early.
const maxNestingDepth = 512

// ParseChunk parses one NDJSON chunk line of /v1/stream, {"samples":[...]},
// appending the decoded samples into dst[:0] and returning the result (so a
// reused dst makes steady-state parsing allocation-free). Unknown keys are
// skipped, key matching is case-folded and duplicate keys last-win, exactly
// as encoding/json unmarshals the same line into a struct with a "samples"
// field. Anything the parser does not understand returns a *SyntaxError
// describing the first offending byte; the returned slice still shares
// dst's backing array on error, so pooled buffers survive bad requests.
//
//rpbeat:allocfree
func ParseChunk(dst []int32, data []byte) ([]int32, error) {
	_, samples, err := parseBody(dst, data, false)
	return samples, err
}

// ParseClassify parses a /v1/classify JSON request body,
// {"model":"...","samples":[...]}, with the same grammar and stdlib
// equivalence as ParseChunk plus the optional model reference string (full
// escape handling; the returned string is freshly allocated and safe to
// retain after data is recycled).
func ParseClassify(dst []int32, data []byte) (model string, samples []int32, err error) {
	return parseBody(dst, data, true)
}

type jsonParser struct {
	data []byte
	i    int
}

func (p *jsonParser) errf(format string, args ...any) error {
	return &SyntaxError{Off: p.i, Msg: fmt.Sprintf(format, args...)}
}

func (p *jsonParser) skipWS() {
	for p.i < len(p.data) {
		switch p.data[p.i] {
		case ' ', '\t', '\n', '\r':
			p.i++
		default:
			return
		}
	}
}

// lit consumes the exact literal s (true/false/null).
func (p *jsonParser) lit(s string) error {
	if len(p.data)-p.i < len(s) || string(p.data[p.i:p.i+len(s)]) != s {
		return p.errf("invalid literal")
	}
	p.i += len(s)
	return nil
}

// end asserts nothing but whitespace follows the top-level value.
func (p *jsonParser) end() error {
	p.skipWS()
	if p.i != len(p.data) {
		return p.errf("unexpected data after top-level value")
	}
	return nil
}

//rpbeat:allocfree
func parseBody(dst []int32, data []byte, wantModel bool) (string, []int32, error) {
	p := jsonParser{data: data}
	samples := dst[:0]
	model := ""
	p.skipWS()
	if p.i >= len(p.data) {
		return "", samples, p.errf("unexpected end of input")
	}
	// A top-level null is a no-op for encoding/json; mirror that.
	if p.data[p.i] == 'n' {
		if err := p.lit("null"); err != nil {
			return "", samples, err
		}
		if err := p.end(); err != nil {
			return "", samples, err
		}
		return model, samples, nil
	}
	if p.data[p.i] != '{' {
		return "", samples, p.errf("expected an object")
	}
	p.i++
	p.skipWS()
	if p.i < len(p.data) && p.data[p.i] == '}' {
		p.i++
	} else {
		for {
			p.skipWS()
			key, keyEsc, err := p.scanString()
			if err != nil {
				return "", samples, err
			}
			p.skipWS()
			if p.i >= len(p.data) || p.data[p.i] != ':' {
				return "", samples, p.errf("expected ':' after object key")
			}
			p.i++
			p.skipWS()
			switch {
			case keyEquals(key, keyEsc, "samples"):
				samples, err = p.parseSamples(samples)
			case wantModel && keyEquals(key, keyEsc, "model"):
				model, err = p.parseModel(model)
			default:
				err = p.skipValue(0)
			}
			if err != nil {
				return "", samples, err
			}
			p.skipWS()
			if p.i >= len(p.data) {
				return "", samples, p.errf("unexpected end of object")
			}
			if c := p.data[p.i]; c == ',' {
				p.i++
				continue
			} else if c == '}' {
				p.i++
				break
			}
			return "", samples, p.errf("expected ',' or '}' in object")
		}
	}
	if err := p.end(); err != nil {
		return "", samples, err
	}
	return model, samples, nil
}

// parseSamples parses the value of a "samples" key: an array of int32s
// appended into dst[:0] (a repeated key re-decodes from scratch, last wins,
// as the stdlib does) or null, which zeroes the slice — encoding/json sets
// slice fields to nil on an explicit null (unlike string fields, which it
// leaves untouched; parseModel mirrors that asymmetry).
//
//rpbeat:allocfree
func (p *jsonParser) parseSamples(dst []int32) ([]int32, error) {
	if p.i < len(p.data) && p.data[p.i] == 'n' {
		return dst[:0], p.lit("null")
	}
	if p.i >= len(p.data) || p.data[p.i] != '[' {
		return dst, p.errf("samples must be an array")
	}
	p.i++
	dst = dst[:0]
	p.skipWS()
	if p.i < len(p.data) && p.data[p.i] == ']' {
		p.i++
		return dst, nil
	}
	for {
		p.skipWS()
		v, err := p.parseInt32()
		if err != nil {
			return dst, err
		}
		dst = append(dst, v)
		p.skipWS()
		if p.i >= len(p.data) {
			return dst, p.errf("unexpected end of samples array")
		}
		switch p.data[p.i] {
		case ',':
			p.i++
		case ']':
			p.i++
			return dst, nil
		default:
			return dst, p.errf("expected ',' or ']' in samples array")
		}
	}
}

// parseModel parses the value of a "model" key: a string (unescaped) or
// null, which keeps the previous value — stdlib semantics for both.
func (p *jsonParser) parseModel(prev string) (string, error) {
	if p.i < len(p.data) && p.data[p.i] == 'n' {
		return prev, p.lit("null")
	}
	raw, hasEsc, err := p.scanString()
	if err != nil {
		return prev, err
	}
	return unquote(raw, hasEsc), nil
}

// parseInt32 parses one integer sample with exactly the strictness
// encoding/json applies when unmarshaling into an int32: JSON number
// grammar, no fraction, no exponent, no leading zeros, in-range.
//
//rpbeat:allocfree
func (p *jsonParser) parseInt32() (int32, error) {
	neg := false
	if p.i < len(p.data) && p.data[p.i] == '-' {
		neg = true
		p.i++
	}
	if p.i >= len(p.data) || p.data[p.i] < '0' || p.data[p.i] > '9' {
		return 0, p.errf("expected an integer sample")
	}
	if p.data[p.i] == '0' && p.i+1 < len(p.data) && p.data[p.i+1] >= '0' && p.data[p.i+1] <= '9' {
		return 0, p.errf("number has a leading zero")
	}
	var n int64
	for p.i < len(p.data) && p.data[p.i] >= '0' && p.data[p.i] <= '9' {
		n = n*10 + int64(p.data[p.i]-'0')
		if n > 1<<31 {
			return 0, p.errf("sample overflows int32")
		}
		p.i++
	}
	if p.i < len(p.data) {
		switch p.data[p.i] {
		case '.', 'e', 'E':
			return 0, p.errf("sample is not an integer")
		}
	}
	if neg {
		n = -n
	}
	if n < math.MinInt32 || n > math.MaxInt32 {
		return 0, p.errf("sample overflows int32")
	}
	return int32(n), nil
}

// scanString consumes a JSON string starting at the opening quote and
// returns the raw (still escaped) content bytes plus whether any escape
// occurred. Escape sequences are validated here; decoding happens in
// unquote, only when a caller needs the value.
func (p *jsonParser) scanString() ([]byte, bool, error) {
	if p.i >= len(p.data) || p.data[p.i] != '"' {
		return nil, false, p.errf("expected a string")
	}
	p.i++
	start := p.i
	hasEsc := false
	for p.i < len(p.data) {
		switch c := p.data[p.i]; {
		case c == '"':
			raw := p.data[start:p.i]
			p.i++
			return raw, hasEsc, nil
		case c == '\\':
			hasEsc = true
			p.i++
			if p.i >= len(p.data) {
				return nil, false, p.errf("unexpected end of string")
			}
			switch p.data[p.i] {
			case '"', '\\', '/', 'b', 'f', 'n', 'r', 't':
				p.i++
			case 'u':
				p.i++
				for k := 0; k < 4; k++ {
					if p.i >= len(p.data) || !isHex(p.data[p.i]) {
						return nil, false, p.errf("invalid \\u escape")
					}
					p.i++
				}
			default:
				return nil, false, p.errf("invalid escape character")
			}
		case c < 0x20:
			return nil, false, p.errf("control character in string")
		default:
			p.i++
		}
	}
	return nil, false, p.errf("unterminated string")
}

// skipValue consumes any JSON value with full grammar validation — the
// skipped value must be something encoding/json would also have accepted,
// so skipping an unknown key never lets a malformed body through.
func (p *jsonParser) skipValue(depth int) error {
	if depth > maxNestingDepth {
		return p.errf("value nested deeper than %d levels", maxNestingDepth)
	}
	if p.i >= len(p.data) {
		return p.errf("unexpected end of input")
	}
	switch c := p.data[p.i]; {
	case c == '"':
		_, _, err := p.scanString()
		return err
	case c == 't':
		return p.lit("true")
	case c == 'f':
		return p.lit("false")
	case c == 'n':
		return p.lit("null")
	case c == '-' || (c >= '0' && c <= '9'):
		return p.skipNumber()
	case c == '[':
		p.i++
		p.skipWS()
		if p.i < len(p.data) && p.data[p.i] == ']' {
			p.i++
			return nil
		}
		for {
			p.skipWS()
			if err := p.skipValue(depth + 1); err != nil {
				return err
			}
			p.skipWS()
			if p.i >= len(p.data) {
				return p.errf("unexpected end of array")
			}
			if p.data[p.i] == ',' {
				p.i++
				continue
			}
			if p.data[p.i] == ']' {
				p.i++
				return nil
			}
			return p.errf("expected ',' or ']' in array")
		}
	case c == '{':
		p.i++
		p.skipWS()
		if p.i < len(p.data) && p.data[p.i] == '}' {
			p.i++
			return nil
		}
		for {
			p.skipWS()
			if _, _, err := p.scanString(); err != nil {
				return err
			}
			p.skipWS()
			if p.i >= len(p.data) || p.data[p.i] != ':' {
				return p.errf("expected ':' after object key")
			}
			p.i++
			p.skipWS()
			if err := p.skipValue(depth + 1); err != nil {
				return err
			}
			p.skipWS()
			if p.i >= len(p.data) {
				return p.errf("unexpected end of object")
			}
			if p.data[p.i] == ',' {
				p.i++
				continue
			}
			if p.data[p.i] == '}' {
				p.i++
				return nil
			}
			return p.errf("expected ',' or '}' in object")
		}
	default:
		return p.errf("unexpected character %q", c)
	}
}

// skipNumber consumes one number with the full JSON grammar (fractions and
// exponents allowed — this is for skipped values, not samples).
func (p *jsonParser) skipNumber() error {
	if p.data[p.i] == '-' {
		p.i++
	}
	switch {
	case p.i < len(p.data) && p.data[p.i] == '0':
		p.i++
	case p.i < len(p.data) && p.data[p.i] >= '1' && p.data[p.i] <= '9':
		for p.i < len(p.data) && p.data[p.i] >= '0' && p.data[p.i] <= '9' {
			p.i++
		}
	default:
		return p.errf("invalid number")
	}
	if p.i < len(p.data) && p.data[p.i] == '.' {
		p.i++
		if p.i >= len(p.data) || p.data[p.i] < '0' || p.data[p.i] > '9' {
			return p.errf("invalid number fraction")
		}
		for p.i < len(p.data) && p.data[p.i] >= '0' && p.data[p.i] <= '9' {
			p.i++
		}
	}
	if p.i < len(p.data) && (p.data[p.i] == 'e' || p.data[p.i] == 'E') {
		p.i++
		if p.i < len(p.data) && (p.data[p.i] == '+' || p.data[p.i] == '-') {
			p.i++
		}
		if p.i >= len(p.data) || p.data[p.i] < '0' || p.data[p.i] > '9' {
			return p.errf("invalid number exponent")
		}
		for p.i < len(p.data) && p.data[p.i] >= '0' && p.data[p.i] <= '9' {
			p.i++
		}
	}
	return nil
}

func isHex(c byte) bool {
	return c >= '0' && c <= '9' || c >= 'a' && c <= 'f' || c >= 'A' && c <= 'F'
}

func isASCII(b []byte) bool {
	for _, c := range b {
		if c >= utf8.RuneSelf {
			return false
		}
	}
	return true
}

// keyEquals matches a raw object key against a lowercase field name with
// encoding/json's semantics: the unescaped key must equal the name under
// Unicode simple case-folding. The common case (unescaped ASCII key) is a
// byte loop with no allocation; exotic keys (escapes or non-ASCII bytes,
// which can still fold-match — 'ſ' folds to 's') take the allocating slow
// path through unquote + strings.EqualFold.
func keyEquals(raw []byte, hasEsc bool, name string) bool {
	if !hasEsc && isASCII(raw) {
		if len(raw) != len(name) {
			return false
		}
		for i := 0; i < len(raw); i++ {
			c := raw[i]
			if c >= 'A' && c <= 'Z' {
				c += 'a' - 'A'
			}
			if c != name[i] {
				return false
			}
		}
		return true
	}
	return strings.EqualFold(unquote(raw, hasEsc), name)
}

// unquote decodes the raw content of a scanned string: escape sequences,
// surrogate pairs (unpaired halves become U+FFFD) and invalid UTF-8 bytes
// (each coerced to U+FFFD) — byte-for-byte what encoding/json's
// unquoteBytes produces. raw must have passed scanString.
func unquote(raw []byte, hasEsc bool) string {
	if !hasEsc && utf8.Valid(raw) {
		return string(raw)
	}
	b := make([]byte, 0, len(raw)+2*utf8.UTFMax)
	for r := 0; r < len(raw); {
		switch c := raw[r]; {
		case c == '\\':
			r++
			switch raw[r] {
			case '"', '\\', '/':
				b = append(b, raw[r])
				r++
			case 'b':
				b = append(b, '\b')
				r++
			case 'f':
				b = append(b, '\f')
				r++
			case 'n':
				b = append(b, '\n')
				r++
			case 'r':
				b = append(b, '\r')
				r++
			case 't':
				b = append(b, '\t')
				r++
			case 'u':
				rr := getu4(raw[r+1:])
				r += 5
				if utf16.IsSurrogate(rr) {
					if r+6 <= len(raw) && raw[r] == '\\' && raw[r+1] == 'u' {
						rr1 := getu4(raw[r+2:])
						if dec := utf16.DecodeRune(rr, rr1); dec != unicode.ReplacementChar {
							r += 6
							b = utf8.AppendRune(b, dec)
							break
						}
					}
					rr = unicode.ReplacementChar
				}
				b = utf8.AppendRune(b, rr)
			}
		case c < utf8.RuneSelf:
			b = append(b, c)
			r++
		default:
			rr, size := utf8.DecodeRune(raw[r:])
			r += size
			b = utf8.AppendRune(b, rr)
		}
	}
	return string(b)
}

// getu4 decodes 4 hex digits (already validated by scanString).
func getu4(s []byte) rune {
	var r rune
	for k := 0; k < 4; k++ {
		c := s[k]
		switch {
		case c >= '0' && c <= '9':
			c -= '0'
		case c >= 'a' && c <= 'f':
			c = c - 'a' + 10
		default:
			c = c - 'A' + 10
		}
		r = r*16 + rune(c)
	}
	return r
}
