package wire

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"math"
	"testing"

	"rpbeat/internal/ecgsyn"
	"rpbeat/internal/rng"
	"rpbeat/internal/testutil"
)

// TestFrameRoundTrip: encode → decode is the identity for every width, at
// hostile sizes and values.
func TestFrameRoundTrip(t *testing.T) {
	r := rng.New(21)
	cases := [][]int32{
		nil,
		{},
		{0},
		{-1},
		{math.MaxInt16, math.MinInt16},
		{math.MaxInt32, math.MinInt32, 0, -1},
		{1000, 1001, 999, 1127, 1000}, // int8 deltas
		{1000, 2000},                  // delta overflow -> width 2
	}
	long := make([]int32, 10000)
	for i := range long {
		long[i] = int32(r.Intn(1 << 20))
	}
	cases = append(cases, long)
	for ci, samples := range cases {
		for _, width := range []int{0, 1, 2, 4} { // 0 = auto
			var (
				enc []byte
				err error
			)
			if width == 0 {
				enc, err = AppendFrame(nil, samples)
			} else {
				enc, err = AppendFrameWidth(nil, samples, width)
				if err != nil {
					continue // samples legitimately don't fit this width
				}
			}
			if err != nil {
				t.Fatalf("case %d width %d: %v", ci, width, err)
			}
			dec, rest, err := DecodeFrame(nil, enc)
			if err != nil {
				t.Fatalf("case %d width %d: decode: %v", ci, width, err)
			}
			if len(rest) != 0 {
				t.Fatalf("case %d width %d: %d trailing bytes", ci, width, len(rest))
			}
			if !sameSamples(dec, samples) {
				t.Fatalf("case %d width %d: decode mismatch", ci, width)
			}
		}
	}
}

// TestFrameWidthSelection pins the auto-width policy.
func TestFrameWidthSelection(t *testing.T) {
	cases := []struct {
		samples []int32
		want    int
	}{
		{nil, 1},
		{[]int32{1000, 1010, 1005}, 1},
		{[]int32{1000, 1128}, 2}, // delta +128 exceeds int8
		{[]int32{0, 127}, 1},
		{[]int32{0, 128}, 2},
		{[]int32{0, -128}, 1},
		{[]int32{0, -129}, 2},
		{[]int32{40000}, 4},
		{[]int32{0, 1 << 20}, 4},
	}
	for _, c := range cases {
		if got := FrameWidth(c.samples); got != c.want {
			t.Fatalf("FrameWidth(%v) = %d, want %d", c.samples, got, c.want)
		}
	}
}

// TestFramesSplitRecord: a long record through AppendFrames decodes to the
// identical lead via both the byte-slice and the io.Reader decoders, and
// the delta coding actually lands near 1 byte/sample on real ECG.
func TestFramesSplitRecord(t *testing.T) {
	lead := ecgsyn.Synthesize(ecgsyn.RecordSpec{Name: "fr", Seconds: 30, Seed: 4, PVCRate: 0.1}).Leads[0]
	body := AppendFrames(nil, lead, 1024)
	if got, want := len(body), 2*len(lead); got >= want {
		t.Fatalf("framed record is %d bytes for %d samples; delta coding should beat int16 (%d)", got, len(lead), want)
	}

	// Byte-slice decoder, accumulating across frames.
	var dec []int32
	data := body
	for len(data) > 0 {
		var err error
		dec, data, err = DecodeFrame(dec, data)
		if err != nil {
			t.Fatal(err)
		}
	}
	if !sameSamples(dec, lead) {
		t.Fatal("byte-slice decode mismatch")
	}

	// Streaming decoder, chunk per frame.
	fr := NewFrameReader(bytes.NewReader(body))
	var streamed []int32
	var chunk []int32
	for {
		var err error
		chunk, err = fr.Next(chunk)
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		streamed = append(streamed, chunk...)
	}
	if !sameSamples(streamed, lead) {
		t.Fatal("streaming decode mismatch")
	}
}

// TestFrameDecoderRejectsHostileInput: every malformed frame is a typed
// error (never a panic), and oversized counts are rejected before any
// allocation.
func TestFrameDecoderRejectsHostileInput(t *testing.T) {
	good, err := AppendFrame(nil, []int32{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	huge := append([]byte{}, good[:6]...) // magic+version+width
	huge = binary.LittleEndian.AppendUint32(huge, math.MaxUint32)

	cases := []struct {
		name    string
		data    []byte
		tooBig  bool
		isFrame bool
	}{
		{"empty", nil, false, true},
		{"short header", good[:5], false, true},
		{"bad magic", append([]byte("XXXX"), good[4:]...), false, true},
		{"bad version", append(append([]byte{}, good[:4]...), append([]byte{9}, good[5:]...)...), false, true},
		{"bad width", append(append([]byte{}, good[:5]...), append([]byte{3}, good[6:]...)...), false, true},
		{"truncated payload", good[:len(good)-1], false, true},
		{"oversized count", huge, true, false},
	}
	for _, c := range cases {
		_, _, err := DecodeFrame(nil, c.data)
		if err == nil {
			t.Fatalf("%s: accepted", c.name)
		}
		if c.tooBig != errors.Is(err, ErrFrameTooLarge) {
			t.Fatalf("%s: ErrFrameTooLarge = %v, want %v (err %v)", c.name, !c.tooBig, c.tooBig, err)
		}
		var fe *FrameError
		if c.isFrame && !errors.As(err, &fe) {
			t.Fatalf("%s: error %v is not a *FrameError", c.name, err)
		}

		// The io.Reader path must agree.
		_, rerr := NewFrameReader(bytes.NewReader(c.data)).Next(nil)
		if len(c.data) == 0 {
			if rerr != io.EOF {
				t.Fatalf("%s: reader err = %v, want io.EOF at clean boundary", c.name, rerr)
			}
			continue
		}
		if rerr == nil {
			t.Fatalf("%s: reader accepted", c.name)
		}
		if c.tooBig != errors.Is(rerr, ErrFrameTooLarge) {
			t.Fatalf("%s: reader ErrFrameTooLarge mismatch: %v", c.name, rerr)
		}
	}
}

// TestFrameReaderZeroAlloc: steady-state frame decoding into warm buffers
// allocates nothing (the binary stream serve row's invariant).
func TestFrameReaderZeroAlloc(t *testing.T) {
	chunkSamples := make([]int32, 360)
	for i := range chunkSamples {
		chunkSamples[i] = 1000 + int32(i%40)
	}
	frame, err := AppendFrame(nil, chunkSamples)
	if err != nil {
		t.Fatal(err)
	}
	rd := bytes.NewReader(frame)
	fr := NewFrameReader(rd)
	dst := make([]int32, 0, 512)
	if dst, err = fr.Next(dst); err != nil { // warm the payload buffer
		t.Fatal(err)
	}
	testutil.AssertZeroAlloc(t, "warm FrameReader.Next", func() {
		rd.Reset(frame)
		var err error
		dst, err = fr.Next(dst)
		if err != nil {
			t.Fatal(err)
		}
	})
}

func BenchmarkWireDecodeFrame(b *testing.B) {
	samples := ecgsyn.Synthesize(ecgsyn.RecordSpec{Name: "bf", Seconds: 10, Seed: 3}).Leads[0][:360]
	frame, err := AppendFrame(nil, samples)
	if err != nil {
		b.Fatal(err)
	}
	dst := make([]int32, 0, 512)
	b.SetBytes(int64(len(frame)))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		var err error
		dst, _, err = DecodeFrame(dst[:0], frame)
		if err != nil {
			b.Fatal(err)
		}
	}
}
