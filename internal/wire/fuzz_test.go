package wire

import (
	"bytes"
	"encoding/json"
	"errors"
	"io"
	"testing"
)

// The fuzz targets hold the codec's two safety contracts:
//
//  1. Soundness: whenever the fast parser ACCEPTS an input, encoding/json
//     accepts it too and produces the identical value — so no byte sequence
//     can mean two different things on the fast and stdlib paths. (The fast
//     parser is allowed to REJECT inputs the stdlib tolerates, e.g. nesting
//     past maxNestingDepth; the corpus tests pin completeness for realistic
//     bodies.)
//  2. Totality: hostile input produces a typed error, never a panic, and
//     never an allocation proportional to a declared-but-absent length.
//
// `go test` runs every seed below on each CI run; `go test -fuzz=FuzzX`
// explores further locally.

func FuzzParseClassify(f *testing.F) {
	for _, seed := range []string{
		`{"samples":[1,2,3]}`,
		`{"model":"default@v1","samples":[-1,0,2047]}`,
		`{"Samples":null,"MODEL":"x"}`,
		`{"model":"😀\n<&>","samples":[1],"samples":[2]}`,
		`{"unknown":{"a":[1.5e9,true,null,"s"]},"samples":[7]}`,
		` { } `,
		`null`,
		`{"samples":[2147483647,-2147483648]}`,
		`{"samples":[21474836470]}`,
		`{"samples":[0`,
		"{\"samples\":[1],\"\xff\xfe\":2}",
	} {
		f.Add([]byte(seed))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		model, samples, err := ParseClassify(nil, data)
		if err != nil {
			var se *SyntaxError
			if !errors.As(err, &se) {
				t.Fatalf("rejection is not a *SyntaxError: %v", err)
			}
			return
		}
		wantModel, wantSamples, stdErr := stdClassify(data)
		if stdErr != nil {
			t.Fatalf("fast accepted %q but stdlib rejects it: %v", data, stdErr)
		}
		if model != wantModel || !sameSamples(samples, wantSamples) {
			t.Fatalf("%q: fast (%q, %v) != stdlib (%q, %v)",
				data, model, samples, wantModel, wantSamples)
		}
	})
}

func FuzzParseChunk(f *testing.F) {
	for _, seed := range []string{
		`{"samples":[1017,1020,1013]}`,
		`{"samples":[]}`,
		`{"samples":null}`,
		`{"sAmPlEs":[1],"x":"y"}`,
		`{"samples":[01]}`,
		`{"samples":[ 1 , -2 ]}`,
	} {
		f.Add([]byte(seed))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		samples, err := ParseChunk(nil, data)
		if err != nil {
			var se *SyntaxError
			if !errors.As(err, &se) {
				t.Fatalf("rejection is not a *SyntaxError: %v", err)
			}
			return
		}
		var want chunkBody
		if stdErr := json.Unmarshal(data, &want); stdErr != nil {
			t.Fatalf("fast accepted %q but stdlib rejects it: %v", data, stdErr)
		}
		if !sameSamples(samples, want.Samples) {
			t.Fatalf("%q: fast %v != stdlib %v", data, samples, want.Samples)
		}
	})
}

func FuzzDecodeFrame(f *testing.F) {
	valid, _ := AppendFrame(nil, []int32{1000, 1010, 990, -40000, 1 << 20})
	delta, _ := AppendFrameWidth(nil, []int32{1000, 1001, 999}, 1)
	wide, _ := AppendFrameWidth(nil, []int32{1, 2, 3}, 4)
	f.Add(valid)
	f.Add(delta)
	f.Add(wide)
	f.Add(append(append([]byte{}, valid...), valid...)) // two frames
	f.Add([]byte("RPBS"))
	f.Add([]byte("RPBS\x01\x01\xff\xff\xff\xff"))
	f.Fuzz(func(t *testing.T, data []byte) {
		// Byte-slice decoder: must return a typed error or consume a
		// well-formed prefix — and never panic or over-read.
		dec, rest, err := DecodeFrame(nil, data)
		if err != nil {
			var fe *FrameError
			if !errors.As(err, &fe) && !errors.Is(err, ErrFrameTooLarge) {
				t.Fatalf("rejection is not typed: %v", err)
			}
		} else {
			if len(rest) > len(data) {
				t.Fatalf("rest grew: %d > %d", len(rest), len(data))
			}
			// A decoded frame must re-encode to the same sample values.
			re, encErr := AppendFrame(nil, dec)
			if encErr != nil {
				t.Fatalf("re-encode failed: %v", encErr)
			}
			back, _, decErr := DecodeFrame(nil, re)
			if decErr != nil || !sameSamples(back, dec) {
				t.Fatalf("re-encode round trip broke: %v", decErr)
			}
		}

		// The io.Reader decoder must agree with the byte-slice decoder on
		// the first frame.
		rdec, rerr := NewFrameReader(bytes.NewReader(data)).Next(nil)
		if err == nil {
			if rerr != nil {
				t.Fatalf("slice decoder accepted, reader rejected: %v", rerr)
			}
			if !sameSamples(rdec, dec) {
				t.Fatal("slice and reader decoders disagree")
			}
		} else if rerr == nil {
			t.Fatal("slice decoder rejected, reader accepted")
		} else if len(data) == 0 && rerr != io.EOF {
			t.Fatalf("empty stream: reader err = %v, want io.EOF", rerr)
		}
	})
}
