package wire

import (
	"encoding/binary"
	"errors"
	"io"
	"math"
)

// The binary sample transport: a body is a sequence of self-describing
// frames, each one chunk of raw ADC samples. Everything is little-endian.
//
//	offset  size  field
//	0       4     magic "RPBS"
//	4       1     version (1)
//	5       1     width: 1, 2 or 4
//	6       4     count (uint32): samples in this frame
//	10      …     payload
//
// Payload by width:
//
//	width 4  count int32s, the samples verbatim
//	width 2  count int16s (every sample must fit int16 — always true for
//	         the 11-bit ADC geometries the paper targets)
//	width 1  one int32 base (the first sample) followed by count-1 int8
//	         first differences; empty when count is 0. ECG is smooth at
//	         360 Hz, so deltas almost always fit int8 and a record costs
//	         ~1 byte per sample — ~5x under its decimal JSON size.
//
// Decoders bound count by MaxFrameSamples BEFORE allocating anything
// (mirroring core.MaxModelBytes: hostile lengths are rejected, not
// trusted), reject unknown magic/version/width, and report truncation as a
// typed *FrameError instead of panicking. Delta accumulation uses int32
// wraparound on hostile input — deterministic, never a crash.
const (
	// FrameVersion is the (only) frame format version.
	FrameVersion = 1
	// FrameHeaderLen is the fixed frame header size in bytes.
	FrameHeaderLen = 10
	// MaxFrameSamples bounds one frame's sample count (~97 minutes of one
	// 360 Hz lead; 8 MiB of payload at width 4) — the binary counterpart of
	// the NDJSON line length bound.
	MaxFrameSamples = 1 << 21
)

var frameMagic = [4]byte{'R', 'P', 'B', 'S'}

// FrameError is the typed rejection of the binary decoder (bad magic,
// version, width, or a truncated frame). The serving layer renders it as
// bad_input.
type FrameError struct {
	Msg string
}

func (e *FrameError) Error() string { return "invalid sample frame: " + e.Msg }

// ErrFrameTooLarge rejects a frame whose declared count exceeds
// MaxFrameSamples, before any payload is read or allocated. The serving
// layer renders it as payload_too_large.
var ErrFrameTooLarge = errors.New("sample frame exceeds " +
	"the per-frame sample bound")

// decodeHeader validates one frame header and returns its width and count.
func decodeHeader(hdr []byte) (width, count int, err error) {
	if [4]byte(hdr[:4]) != frameMagic {
		return 0, 0, &FrameError{"bad magic (want \"RPBS\")"}
	}
	if hdr[4] != FrameVersion {
		return 0, 0, &FrameError{"unsupported version"}
	}
	width = int(hdr[5])
	if width != 1 && width != 2 && width != 4 {
		return 0, 0, &FrameError{"width must be 1, 2 or 4"}
	}
	// Bound-check in uint32 before converting: on 32-bit platforms a
	// hostile count like 0xFFFFFFFF would wrap negative as an int and slip
	// past the bound into a negative payload size.
	c := binary.LittleEndian.Uint32(hdr[6:10])
	if c > MaxFrameSamples {
		return 0, 0, ErrFrameTooLarge
	}
	return width, int(c), nil
}

// payloadSize returns the exact payload byte count of a frame.
func payloadSize(width, count int) int {
	switch width {
	case 1:
		if count == 0 {
			return 0
		}
		return 4 + count - 1
	case 2:
		return 2 * count
	default:
		return 4 * count
	}
}

// decodePayload appends a validated payload's samples onto dst.
func decodePayload(dst []int32, p []byte, width, count int) []int32 {
	switch width {
	case 1:
		if count == 0 {
			return dst
		}
		v := int32(binary.LittleEndian.Uint32(p))
		dst = append(dst, v)
		for _, d := range p[4:] {
			v += int32(int8(d))
			dst = append(dst, v)
		}
	case 2:
		for i := 0; i < count; i++ {
			dst = append(dst, int32(int16(binary.LittleEndian.Uint16(p[2*i:]))))
		}
	default:
		for i := 0; i < count; i++ {
			dst = append(dst, int32(binary.LittleEndian.Uint32(p[4*i:])))
		}
	}
	return dst
}

// DecodeFrame decodes the first frame of data, appending its samples onto
// dst (append — a multi-frame body accumulates into one lead), and returns
// the remaining bytes. A warm dst makes decoding allocation-free.
func DecodeFrame(dst []int32, data []byte) (samples []int32, rest []byte, err error) {
	if len(data) < FrameHeaderLen {
		return dst, data, &FrameError{"truncated header"}
	}
	width, count, err := decodeHeader(data)
	if err != nil {
		return dst, data, err
	}
	n := payloadSize(width, count)
	if len(data)-FrameHeaderLen < n {
		return dst, data, &FrameError{"truncated payload"}
	}
	dst = decodePayload(dst, data[FrameHeaderLen:FrameHeaderLen+n], width, count)
	return dst, data[FrameHeaderLen+n:], nil
}

// FrameReader decodes a stream of frames from r (a request body), one
// Next call per frame. The payload staging buffer is reused across frames.
type FrameReader struct {
	r       io.Reader
	hdr     [FrameHeaderLen]byte
	payload []byte
}

// NewFrameReader wraps r for frame-at-a-time decoding.
func NewFrameReader(r io.Reader) *FrameReader { return &FrameReader{r: r} }

// Next reads one frame and returns its samples appended into dst[:0] (the
// chunk-per-call shape of /v1/stream: each frame replaces the last, and a
// reused dst makes steady-state decoding allocation-free). A clean end of
// stream — EOF exactly on a frame boundary — returns io.EOF; anything
// partial is a typed *FrameError.
func (fr *FrameReader) Next(dst []int32) ([]int32, error) {
	dst = dst[:0]
	if _, err := io.ReadFull(fr.r, fr.hdr[:]); err != nil {
		if err == io.EOF {
			return dst, io.EOF
		}
		if err == io.ErrUnexpectedEOF {
			return dst, &FrameError{"truncated header"}
		}
		return dst, err
	}
	width, count, err := decodeHeader(fr.hdr[:])
	if err != nil {
		return dst, err
	}
	n := payloadSize(width, count)
	if cap(fr.payload) < n {
		fr.payload = make([]byte, n)
	}
	buf := fr.payload[:n]
	if _, err := io.ReadFull(fr.r, buf); err != nil {
		if err == io.EOF || err == io.ErrUnexpectedEOF {
			return dst, &FrameError{"truncated payload"}
		}
		return dst, err
	}
	return decodePayload(dst, buf, width, count), nil
}

// ReadRawFrame reads one binary frame from r into buf (grown as needed,
// reused when large enough — pass the last returned frame back in to stay
// allocation-free once warm) and returns the frame's verbatim bytes and its
// declared sample count WITHOUT decoding the payload — the shape a relay
// journal needs: raw bytes to replay plus the sample accounting. A clean end
// of stream on a frame boundary returns io.EOF; anything partial is a typed
// *FrameError, with whatever bytes were consumed returned so a forwarder can
// still pass them through verbatim.
func ReadRawFrame(r io.Reader, buf []byte) (frame []byte, count int, err error) {
	if cap(buf) < FrameHeaderLen {
		buf = make([]byte, FrameHeaderLen, 4096)
	}
	hdr := buf[:FrameHeaderLen]
	nh, err := io.ReadFull(r, hdr)
	if err != nil {
		if err == io.EOF {
			return hdr[:0], 0, io.EOF
		}
		if err == io.ErrUnexpectedEOF {
			return hdr[:nh], 0, &FrameError{"truncated header"}
		}
		return hdr[:nh], 0, err
	}
	width, count, err := decodeHeader(hdr)
	if err != nil {
		return hdr, 0, err
	}
	n := payloadSize(width, count)
	total := FrameHeaderLen + n
	if cap(buf) < total {
		grown := make([]byte, total)
		copy(grown, hdr)
		buf = grown
	}
	frame = buf[:total]
	np, err := io.ReadFull(r, frame[FrameHeaderLen:])
	if err != nil {
		if err == io.EOF || err == io.ErrUnexpectedEOF {
			return frame[:FrameHeaderLen+np], 0, &FrameError{"truncated payload"}
		}
		return frame[:FrameHeaderLen+np], 0, err
	}
	return frame, count, nil
}

// FrameWidth returns the smallest width that represents samples exactly:
// 1 when every first difference fits int8 (and samples fit int16), 2 when
// the samples fit int16, 4 otherwise.
func FrameWidth(samples []int32) int {
	width := 1
	for i, v := range samples {
		if v < math.MinInt16 || v > math.MaxInt16 {
			return 4
		}
		if width == 1 && i > 0 {
			if d := int64(v) - int64(samples[i-1]); d < math.MinInt8 || d > math.MaxInt8 {
				width = 2
			}
		}
	}
	return width
}

// AppendFrame appends samples as one frame at the smallest exact width.
// It fails only when len(samples) exceeds MaxFrameSamples — split with
// AppendFrames instead.
func AppendFrame(buf []byte, samples []int32) ([]byte, error) {
	return AppendFrameWidth(buf, samples, FrameWidth(samples))
}

// AppendFrameWidth appends samples as one frame at an explicit width,
// erroring when the samples (or their deltas, at width 1) do not fit.
func AppendFrameWidth(buf []byte, samples []int32, width int) ([]byte, error) {
	if len(samples) > MaxFrameSamples {
		return buf, ErrFrameTooLarge
	}
	if width != 1 && width != 2 && width != 4 {
		return buf, &FrameError{"width must be 1, 2 or 4"}
	}
	buf = append(buf, frameMagic[:]...)
	buf = append(buf, FrameVersion, byte(width))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(samples)))
	switch width {
	case 1:
		if len(samples) == 0 {
			return buf, nil
		}
		buf = binary.LittleEndian.AppendUint32(buf, uint32(samples[0]))
		for i := 1; i < len(samples); i++ {
			d := int64(samples[i]) - int64(samples[i-1])
			if d < math.MinInt8 || d > math.MaxInt8 {
				return buf, &FrameError{"delta does not fit int8"}
			}
			buf = append(buf, byte(int8(d)))
		}
	case 2:
		for _, v := range samples {
			if v < math.MinInt16 || v > math.MaxInt16 {
				return buf, &FrameError{"sample does not fit int16"}
			}
			buf = binary.LittleEndian.AppendUint16(buf, uint16(int16(v)))
		}
	default:
		for _, v := range samples {
			buf = binary.LittleEndian.AppendUint32(buf, uint32(v))
		}
	}
	return buf, nil
}

// defaultFrameLen is AppendFrames' split size: long enough that the 10-byte
// header amortizes away, short enough that one outlier delta only forces a
// single frame (not a whole record) up to width 2.
const defaultFrameLen = 2048

// AppendFrames encodes a whole record as consecutive frames of at most
// frameLen samples each (0 selects the default), each frame at its own
// smallest exact width — the client-side record encoder for /v1/classify
// and the chunked uplink for /v1/stream.
func AppendFrames(buf []byte, samples []int32, frameLen int) []byte {
	if frameLen <= 0 || frameLen > MaxFrameSamples {
		frameLen = defaultFrameLen
	}
	for off := 0; off < len(samples); off += frameLen {
		end := min(off+frameLen, len(samples))
		// Width is exact by construction, and the slice is within the
		// frame bound: AppendFrameWidth cannot fail here.
		buf, _ = AppendFrame(buf, samples[off:end])
	}
	return buf
}
