package wire

import (
	"encoding/json"
	"testing"

	"rpbeat/internal/nfc"
	"rpbeat/internal/pipeline"
	"rpbeat/internal/rng"
	"rpbeat/internal/testutil"
)

// The response types mirrored from internal/serve (field order and tags
// must match — the handlers' stdlib path encodes exactly these shapes).
type streamBeatBody struct {
	Sample     int    `json:"sample"`
	Class      string `json:"class"`
	DetectedAt int    `json:"detectedAt"`
}

type streamDoneBody struct {
	Done    bool   `json:"done"`
	Model   string `json:"model"`
	Beats   int    `json:"beats"`
	Samples int    `json:"samples"`
}

type errorBody struct {
	Error struct {
		Code    string `json:"code"`
		Message string `json:"message"`
	} `json:"error"`
}

type beatBody struct {
	Sample int    `json:"sample"`
	Class  string `json:"class"`
}

type classifyRespBody struct {
	Model  string         `json:"model"`
	Total  int            `json:"total"`
	Counts map[string]int `json:"counts"`
	Beats  []beatBody     `json:"beats"`
}

// mustStdlib renders v the way the handlers' stdlib path does:
// json.Encoder output, HTML-escaped, with the trailing newline.
func mustStdlib(t *testing.T, v any) []byte {
	t.Helper()
	data, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return append(data, '\n')
}

func TestAppendStreamBeatMatchesStdlib(t *testing.T) {
	for _, b := range []streamBeatBody{
		{Sample: 0, Class: "N", DetectedAt: 0},
		{Sample: 12345, Class: "V", DetectedAt: 12399},
		{Sample: -7, Class: `we"ird<class>&`, DetectedAt: 1 << 30},
	} {
		got := AppendStreamBeat(nil, b.Sample, b.Class, b.DetectedAt)
		want := mustStdlib(t, b)
		if string(got) != string(want) {
			t.Fatalf("beat line:\nfast   %q\nstdlib %q", got, want)
		}
	}
}

func TestAppendStreamDoneMatchesStdlib(t *testing.T) {
	b := streamDoneBody{Done: true, Model: "default@v1", Beats: 42, Samples: 21600}
	got := AppendStreamDone(nil, b.Model, b.Beats, b.Samples)
	if want := mustStdlib(t, b); string(got) != string(want) {
		t.Fatalf("done line:\nfast   %q\nstdlib %q", got, want)
	}
}

func TestAppendErrorMatchesStdlib(t *testing.T) {
	var b errorBody
	b.Error.Code = "bad_input"
	b.Error.Message = "bad chunk: invalid request JSON at byte 3: expected \"x\" <&>\n"
	got := AppendError(nil, b.Error.Code, b.Error.Message)
	if want := mustStdlib(t, b); string(got) != string(want) {
		t.Fatalf("error line:\nfast   %q\nstdlib %q", got, want)
	}
}

func TestAppendClassifyResponseMatchesStdlib(t *testing.T) {
	r := rng.New(5)
	for trial := 0; trial < 20; trial++ {
		beats := make([]pipeline.BeatResult, r.Intn(30))
		for i := range beats {
			beats[i] = pipeline.BeatResult{
				Peak:       r.Intn(100000),
				Decision:   nfc.Decision(r.Intn(4)),
				DetectedAt: r.Intn(100000),
			}
		}
		want := classifyRespBody{
			Model: "default@v1", Total: len(beats),
			Counts: map[string]int{"N": 0, "L": 0, "V": 0, "U": 0},
			Beats:  make([]beatBody, 0, len(beats)),
		}
		for _, b := range beats {
			want.Counts[b.Decision.String()]++
			want.Beats = append(want.Beats, beatBody{Sample: b.Peak, Class: b.Decision.String()})
		}
		got := AppendClassifyResponse(nil, want.Model, beats)
		if w := mustStdlib(t, want); string(got) != string(w) {
			t.Fatalf("classify response (%d beats):\nfast   %s\nstdlib %s", len(beats), got, w)
		}
	}
}

// TestAppendStringMatchesStdlib fuzz-lite: random byte strings (valid and
// invalid UTF-8, control chars, HTML chars, U+2028/U+2029) must encode
// byte-identically to encoding/json.
func TestAppendStringMatchesStdlib(t *testing.T) {
	r := rng.New(77)
	alphabet := []string{
		"a", "Z", "0", `"`, `\`, "<", ">", "&", "\n", "\r", "\t", "\x00", "\x1f", "\x7f",
		"é", "😀", "\u2028", "\u2029", "\xff", "\xc3", "\xed\xa0\x80", "中",
	}
	for trial := 0; trial < 2000; trial++ {
		var s string
		for n := r.Intn(12); n > 0; n-- {
			s += alphabet[r.Intn(len(alphabet))]
		}
		got := AppendString(nil, s)
		want, err := json.Marshal(s)
		if err != nil {
			t.Fatal(err)
		}
		if string(got) != string(want) {
			t.Fatalf("string %q:\nfast   %q\nstdlib %q", s, got, want)
		}
	}
}

// TestAppendStreamBeatZeroAlloc holds the per-line encoder to zero
// allocations on a warm buffer — the response half of the stream serve
// row's allocation invariant.
func TestAppendStreamBeatZeroAlloc(t *testing.T) {
	buf := make([]byte, 0, 256)
	testutil.AssertZeroAlloc(t, "warm AppendStreamBeat", func() {
		buf = AppendStreamBeat(buf[:0], 54321, "V", 54390)
	})
}

func BenchmarkWireAppendStreamBeat(b *testing.B) {
	buf := make([]byte, 0, 256)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		buf = AppendStreamBeat(buf[:0], 54321, "V", 54390)
	}
}
