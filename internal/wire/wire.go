// Package wire is the serving layer's codec toolbox: the request/response
// encodings of the two data endpoints, built so the HTTP surface costs what
// the pipeline behind it costs — nothing per request once warm.
//
// Three codecs live here:
//
//   - A hand-rolled JSON parser for the two request shapes the data paths
//     accept — {"samples":[...]} chunk lines on /v1/stream and
//     {"model":"...","samples":[...]} bodies on /v1/classify. ParseChunk and
//     ParseClassify scan bytes directly and append the decoded samples into
//     a caller-provided slice: no encoding/json, no reflection, no float64
//     round-trip, zero allocations on a warm buffer. The parser accepts a
//     subset of what encoding/json accepts (nesting depth is bounded), and
//     on everything it accepts it agrees with encoding/json byte for byte —
//     the fuzz suite holds it to "success implies stdlib success with
//     identical output", so no input can mean two different things on the
//     fast and the slow path.
//
//   - Append-style response encoders (AppendStreamBeat, AppendStreamDone,
//     AppendError, AppendClassifyResponse) that build the exact bytes
//     encoding/json would emit for the serving layer's response types —
//     HTML escaping, � coercion, sorted count keys, trailing newline —
//     into a recycled buffer, one Write per line.
//
//   - A binary sample transport (Content-Type application/x-rpbeat-samples)
//     for the uplink, where bandwidth is the WBSN budget JSON wastes:
//     framed little-endian sample chunks with an int8-delta mode that cuts
//     a 30 s record to ~1/5 of its decimal-JSON size. See frame.go for the
//     layout; DecodeFrame/FrameReader bound every length before allocating,
//     mirroring the core codec's MaxModelBytes hardening.
//
// The package deliberately knows nothing about HTTP: internal/serve owns
// content negotiation and maps the typed errors (SyntaxError, FrameError,
// ErrFrameTooLarge) onto the apierr contract.
package wire

// The content types the serving layer negotiates with. Requests declare
// the binary transport with ContentTypeSamples; everything else on the data
// paths is parsed as JSON/NDJSON.
const (
	ContentTypeJSON    = "application/json"
	ContentTypeNDJSON  = "application/x-ndjson"
	ContentTypeSamples = "application/x-rpbeat-samples"
)

// ResumeFromHeader is the /v1/stream resume handshake: its value is the
// absolute sample index the request body starts at. A gateway replaying its
// failover journal sets it so the backend phase-aligns a resumed pipeline
// with the interrupted one and reports absolute beat indices.
const ResumeFromHeader = "X-Rpbeat-Resume-From"

// IsSampleContentType reports whether a request Content-Type selects the
// binary sample transport. Media-type parameters (";charset=..." and
// friends) are ignored, and matching is case-insensitive, as RFC 9110
// defines media types.
func IsSampleContentType(ct string) bool {
	for i := 0; i < len(ct); i++ {
		if ct[i] == ';' {
			ct = ct[:i]
			break
		}
	}
	for len(ct) > 0 && (ct[0] == ' ' || ct[0] == '\t') {
		ct = ct[1:]
	}
	for len(ct) > 0 && (ct[len(ct)-1] == ' ' || ct[len(ct)-1] == '\t') {
		ct = ct[:len(ct)-1]
	}
	if len(ct) != len(ContentTypeSamples) {
		return false
	}
	for i := 0; i < len(ct); i++ {
		c := ct[i]
		if c >= 'A' && c <= 'Z' {
			c += 'a' - 'A'
		}
		if c != ContentTypeSamples[i] {
			return false
		}
	}
	return true
}
