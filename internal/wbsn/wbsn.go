// Package wbsn assembles the complete sensor-node pipeline of the paper's
// Figure 6: morphological filtering of the leads, wavelet peak detection on
// lead 0, windowing, the embedded RP + neuro-fuzzy classifier, and — only
// for beats flagged abnormal — 3-lead MMD delineation, followed by the
// radio reporting policy of Sec. IV-E (peak-only for discarded normals, all
// nine fiducial points otherwise).
package wbsn

import (
	"errors"

	"rpbeat/internal/core"
	"rpbeat/internal/delin"
	"rpbeat/internal/ecgsyn"
	"rpbeat/internal/energy"
	"rpbeat/internal/nfc"
	"rpbeat/internal/peak"
	"rpbeat/internal/sigdsp"
)

// Node is a configured WBSN instance.
type Node struct {
	Emb      *core.Embedded
	Fs       float64
	Before   int // beat window samples before the peak (default 100)
	After    int // after the peak (default 100)
	PeakCfg  peak.Config
	DelinCfg delin.Config
}

// NewNode builds a node around an embedded classifier with the paper's
// window geometry.
func NewNode(emb *core.Embedded) (*Node, error) {
	if emb == nil {
		return nil, errors.New("wbsn: nil classifier")
	}
	if err := emb.Validate(); err != nil {
		return nil, err
	}
	return &Node{
		Emb:      emb,
		Fs:       ecgsyn.Fs,
		Before:   100,
		After:    100,
		PeakCfg:  peak.Config{Fs: ecgsyn.Fs},
		DelinCfg: delin.Config{Fs: ecgsyn.Fs},
	}, nil
}

// BeatReport is the node's output for one detected beat.
type BeatReport struct {
	Sample       int
	Decision     nfc.Decision
	Delineated   bool
	Fiducials    delin.Fiducials // valid when Delineated
	PayloadBytes int             // radio payload under the gated policy
}

// Result summarizes a processing run.
type Result struct {
	Beats []BeatReport
	// Traffic feeds the energy model directly.
	Traffic energy.TrafficCounts
	// DelineatedBeats is how many beats activated the detailed analysis.
	DelineatedBeats int
}

// ActivationRate is the fraction of beats that triggered delineation.
func (r *Result) ActivationRate() float64 {
	if len(r.Beats) == 0 {
		return 0
	}
	return float64(r.DelineatedBeats) / float64(len(r.Beats))
}

// Process runs the full pipeline over raw ADC leads (lead 0 drives
// detection and classification; all leads feed delineation).
func (n *Node) Process(leads [][]int32) (*Result, error) {
	if len(leads) == 0 || len(leads[0]) == 0 {
		return nil, errors.New("wbsn: no signal")
	}
	// Filter every lead in millivolts.
	base := sigdsp.DefaultBaselineConfig(n.Fs)
	filtered := make([][]float64, len(leads))
	for l, sig := range leads {
		mv := make([]float64, len(sig))
		for i, v := range sig {
			mv[i] = ecgsyn.ToMillivolts(v)
		}
		filtered[l] = sigdsp.FilterECG(mv, base)
	}

	peaks := peak.Detect(filtered[0], n.PeakCfg)

	res := &Result{}
	// Classify every beat; collect the abnormal ones for delineation.
	var abnormalIdx []int
	var abnormalPeaks []int
	for i, p := range peaks {
		w := sigdsp.WindowInt(leads[0], p, n.Before, n.After)
		w = sigdsp.DownsampleInt(w, n.Emb.Downsample)
		d := n.Emb.Classify(w)
		rep := BeatReport{Sample: p, Decision: d}
		if d.Abnormal() {
			abnormalIdx = append(abnormalIdx, i)
			abnormalPeaks = append(abnormalPeaks, p)
			rep.PayloadBytes = energy.FullBeatBytes
			res.Traffic.FullReports++
		} else {
			rep.PayloadBytes = energy.PeakOnlyBytes
			res.Traffic.NormalDiscarded++
		}
		res.Beats = append(res.Beats, rep)
	}

	// Delineate only the flagged beats (the gating that saves the duty
	// cycle in Table III).
	if len(abnormalPeaks) > 0 {
		fids := delin.DelineateMultiLead(filtered, abnormalPeaks, n.DelinCfg)
		for j, idx := range abnormalIdx {
			res.Beats[idx].Delineated = true
			res.Beats[idx].Fiducials = fids[j]
		}
		res.DelineatedBeats = len(abnormalPeaks)
	}
	return res, nil
}
