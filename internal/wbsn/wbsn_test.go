package wbsn

import (
	"testing"

	"rpbeat/internal/beatset"
	"rpbeat/internal/core"
	"rpbeat/internal/ecgsyn"
	"rpbeat/internal/energy"
	"rpbeat/internal/fixp"
)

// trainedNode builds a node from a quick training run (cached per binary).
var cachedNode *Node

func trainedNode(t testing.TB) *Node {
	t.Helper()
	if cachedNode != nil {
		return cachedNode
	}
	ds, err := beatset.Build(beatset.Config{Seed: 21, Scale: 0.04})
	if err != nil {
		t.Fatal(err)
	}
	m, _, err := core.Train(ds, core.Config{
		Coeffs: 8, Downsample: 4, PopSize: 6, Generations: 4,
		SCGIters: 60, MinARR: 0.95, Seed: 9,
	})
	if err != nil {
		t.Fatal(err)
	}
	emb, err := m.Quantize(fixp.MFLinear)
	if err != nil {
		t.Fatal(err)
	}
	n, err := NewNode(emb)
	if err != nil {
		t.Fatal(err)
	}
	cachedNode = n
	return n
}

func record(seed uint64, seconds, pvcRate float64) [][]int32 {
	rec := ecgsyn.Synthesize(ecgsyn.RecordSpec{
		Name: "w", Seconds: seconds, Seed: seed, PVCRate: pvcRate,
	})
	leads := make([][]int32, ecgsyn.NumLeads)
	for l := range leads {
		leads[l] = rec.Leads[l]
	}
	return leads
}

func TestNewNodeValidation(t *testing.T) {
	if _, err := NewNode(nil); err == nil {
		t.Fatal("nil classifier should error")
	}
}

func TestProcessEmptySignal(t *testing.T) {
	n := trainedNode(t)
	if _, err := n.Process(nil); err == nil {
		t.Fatal("empty signal should error")
	}
}

func TestProcessEndToEnd(t *testing.T) {
	n := trainedNode(t)
	res, err := n.Process(record(1, 120, 0.12))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Beats) < 100 {
		t.Fatalf("only %d beats processed in 120 s", len(res.Beats))
	}
	// Abnormal beats (including PVCs) should trigger delineation; the
	// activation rate must sit between the PVC rate and ~1.
	rate := res.ActivationRate()
	if rate < 0.05 || rate > 0.8 {
		t.Fatalf("activation rate %.3f implausible", rate)
	}
	if res.DelineatedBeats == 0 {
		t.Fatal("no beats delineated despite PVCs present")
	}
}

func TestGatingConsistency(t *testing.T) {
	n := trainedNode(t)
	res, err := n.Process(record(2, 60, 0.1))
	if err != nil {
		t.Fatal(err)
	}
	for i, b := range res.Beats {
		if b.Decision.Abnormal() != b.Delineated {
			t.Fatalf("beat %d: abnormal=%v but delineated=%v (gating broken)",
				i, b.Decision.Abnormal(), b.Delineated)
		}
		wantPayload := energy.PeakOnlyBytes
		if b.Decision.Abnormal() {
			wantPayload = energy.FullBeatBytes
		}
		if b.PayloadBytes != wantPayload {
			t.Fatalf("beat %d: payload %d, want %d", i, b.PayloadBytes, wantPayload)
		}
	}
}

func TestTrafficAccounting(t *testing.T) {
	n := trainedNode(t)
	res, err := n.Process(record(3, 60, 0.1))
	if err != nil {
		t.Fatal(err)
	}
	if res.Traffic.Total() != len(res.Beats) {
		t.Fatalf("traffic total %d != %d beats", res.Traffic.Total(), len(res.Beats))
	}
	if res.Traffic.FullReports != res.DelineatedBeats {
		t.Fatalf("full reports %d != delineated %d", res.Traffic.FullReports, res.DelineatedBeats)
	}
	// The traffic must plug into the energy model.
	rep, err := energy.Analyze(energy.Params{
		Traffic: res.Traffic, StreamSeconds: 60, DutyGated: 0.2, DutyAlwaysOn: 0.6,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.RadioReduction <= 0 {
		t.Fatalf("no radio saving: %+v", rep)
	}
}

func TestDelineatedBeatsCarryFiducials(t *testing.T) {
	n := trainedNode(t)
	res, err := n.Process(record(4, 120, 0.15))
	if err != nil {
		t.Fatal(err)
	}
	checked := 0
	for _, b := range res.Beats {
		if !b.Delineated {
			continue
		}
		checked++
		if b.Fiducials.RPeak < 0 {
			t.Fatalf("delineated beat @%d has no R peak fiducial", b.Sample)
		}
	}
	if checked == 0 {
		t.Fatal("no delineated beats to check")
	}
}

func TestNormalOnlyRecordMostlyDiscarded(t *testing.T) {
	n := trainedNode(t)
	res, err := n.Process(record(5, 120, 0))
	if err != nil {
		t.Fatal(err)
	}
	if rate := res.ActivationRate(); rate > 0.5 {
		t.Fatalf("activation rate %.3f on an all-normal record (expected mostly discards)", rate)
	}
}
