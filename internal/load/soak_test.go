package load

import (
	"context"
	"net/http"
	"net/http/httptest"
	"runtime"
	"testing"
	"time"

	"rpbeat/internal/apierr"
	"rpbeat/internal/catalog"
	"rpbeat/internal/ecgsyn"
	"rpbeat/internal/pipeline"
	"rpbeat/internal/serve"
	"rpbeat/internal/testutil"
)

// soakStack builds the serving stack without t.Cleanup so the test
// controls teardown order explicitly (the drain test IS the teardown).
func soakStack(t *testing.T, workers int, cfg serve.HandlerConfig) (*httptest.Server, *pipeline.Engine) {
	t.Helper()
	cat := catalog.New()
	if _, err := cat.Put("default", testModel(t), nil); err != nil {
		t.Fatal(err)
	}
	eng := pipeline.NewEngine(cat, pipeline.EngineConfig{Workers: workers})
	return httptest.NewServer(serve.NewHandler(eng, cfg)), eng
}

// waitGoroutines polls until the goroutine count settles at or below want.
func waitGoroutines(t *testing.T, want int) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= want {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			t.Fatalf("goroutines stuck at %d, want <= %d\n%s",
				runtime.NumGoroutine(), want, buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestSoakFleet is the soak satellite: ~200 concurrent streams through the
// whole stack (fleet driver -> HTTP -> binary decode -> engine -> NDJSON
// beats back), meant to run under -race. Afterward the engine must still
// hold its steady-state invariants: Send at 0 allocs/op on the soaked pool
// state, and not one goroutine leaked.
func TestSoakFleet(t *testing.T) {
	baseline := runtime.NumGoroutine()
	ts, eng := soakStack(t, 2, serve.HandlerConfig{})

	transport := &http.Transport{MaxIdleConns: 256, MaxIdleConnsPerHost: 256}
	const streams, seconds = 200, 12
	rep, err := Run(context.Background(), Config{
		BaseURL: ts.URL,
		Streams: streams,
		Seconds: seconds,
		Speedup: 24,
		Seed:    7,
		Client:  &http.Client{Transport: transport},
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.StreamsOK != streams || rep.StreamsShed != 0 || rep.StreamsFailed != 0 {
		t.Fatalf("streams ok/shed/failed = %d/%d/%d, want %d/0/0 (errors: %v)",
			rep.StreamsOK, rep.StreamsShed, rep.StreamsFailed, streams, rep.ErrorCounts)
	}
	if want := int64(streams * seconds * 360); rep.Samples != want {
		t.Fatalf("samples = %d, want %d: beats or samples went missing under load", rep.Samples, want)
	}
	if rep.Beats == 0 {
		t.Fatal("soak observed no beats")
	}

	// Zero-alloc invariant, re-asserted on the engine the soak just
	// hammered: the pool/FIFO state 200 streams left behind must still
	// serve steady-state Send without allocating. A couple of attempts
	// tolerate an unluckily-timed GC clearing the pools mid-measurement.
	lead := ecgsyn.Synthesize(ecgsyn.RecordSpec{Name: "probe", Seconds: 30, Seed: 99, PVCRate: 0.1}).Leads[0]
	st, err := eng.Open(context.Background(), "", pipeline.Config{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	const chunk = 720
	drain := func() {
		for st.PendingSamples() > 0 {
			runtime.Gosched()
		}
	}
	for off := 0; off+chunk <= len(lead); off += chunk { // warm this stream
		if err := st.Send(context.Background(), lead[off:off+chunk]); err != nil {
			t.Fatal(err)
		}
	}
	drain()
	next := 0
	testutil.AssertZeroAllocN(t, "steady-state Send after the soak", 10, func() {
		for i := 0; i < 5; i++ {
			if err := st.Send(context.Background(), lead[next:next+chunk]); err != nil {
				t.Fatal(err)
			}
			next += chunk
			if next+chunk > len(lead) {
				next = 0
			}
			drain()
		}
	})
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	// Full teardown, then the leak check: everything the soak spawned —
	// fleet goroutines, HTTP conns both sides, engine workers — must be
	// gone.
	transport.CloseIdleConnections()
	ts.Close()
	eng.Close()
	waitGoroutines(t, baseline+2)
}

// TestGracefulDrainMidFleet is the drain satellite: SIGTERM's handler path
// (http.Server.Shutdown, then Engine.Close — exactly rpserve's order) fired
// while a fleet is mid-stream. Every admitted stream must finish with its
// beats and done line, post-drain engine work must get typed shutting_down
// errors, and nothing may leak.
func TestGracefulDrainMidFleet(t *testing.T) {
	baseline := runtime.NumGoroutine()
	ts, eng := soakStack(t, 2, serve.HandlerConfig{})
	transport := &http.Transport{MaxIdleConns: 64, MaxIdleConnsPerHost: 64}

	const streams, seconds = 24, 10
	type result struct {
		rep *Report
		err error
	}
	resc := make(chan result, 1)
	go func() {
		rep, err := Run(context.Background(), Config{
			BaseURL: ts.URL,
			Streams: streams,
			Seconds: seconds,
			Speedup: 8, // ~1.25s per stream: plenty of mid-stream to drain in
			Seed:    3,
			Client:  &http.Client{Transport: transport},
		})
		resc <- result{rep, err}
	}()

	// Wait until the whole fleet is mid-stream, then pull the trigger.
	for eng.OpenStreams() < streams {
		time.Sleep(time.Millisecond)
	}
	// A direct engine stream stands in for any embedded (non-HTTP) user:
	// alive through the HTTP drain, typed-refused after engine close.
	direct, err := eng.Open(context.Background(), "", pipeline.Config{}, nil)
	if err != nil {
		t.Fatal(err)
	}

	shutCtx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := ts.Config.Shutdown(shutCtx); err != nil {
		t.Fatalf("drain did not complete: %v", err)
	}

	r := <-resc
	if r.err != nil {
		t.Fatal(r.err)
	}
	// Shutdown waits for in-flight requests: every stream that was open
	// when the signal hit must have delivered everything.
	if r.rep.StreamsOK != streams || r.rep.StreamsFailed != 0 {
		t.Fatalf("streams ok/failed = %d/%d, want %d/0 (errors: %v)",
			r.rep.StreamsOK, r.rep.StreamsFailed, streams, r.rep.ErrorCounts)
	}
	if want := int64(streams * seconds * 360); r.rep.Samples != want {
		t.Fatalf("samples = %d, want %d: drain dropped in-flight beats", r.rep.Samples, want)
	}
	if r.rep.Beats == 0 {
		t.Fatal("drained fleet delivered no beats")
	}

	// The HTTP drain never touched the engine: the direct stream still works.
	if err := direct.Send(context.Background(), []int32{1000, 1001, 1002, 1003}); err != nil {
		t.Fatalf("direct stream dead during HTTP drain: %v", err)
	}
	eng.Close()
	// Post-drain: typed errors, not panics or hangs.
	if err := direct.Send(context.Background(), []int32{1000}); !apierr.IsCode(err, apierr.CodeShuttingDown) {
		t.Fatalf("post-drain Send error = %v, want typed shutting_down", err)
	}
	if _, err := eng.Open(context.Background(), "", pipeline.Config{}, nil); !apierr.IsCode(err, apierr.CodeShuttingDown) {
		t.Fatalf("post-drain Open error = %v, want typed shutting_down", err)
	}

	transport.CloseIdleConnections()
	ts.Close() // idempotent after Shutdown; frees the test server bookkeeping
	waitGoroutines(t, baseline+2)
}
