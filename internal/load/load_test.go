package load

import (
	"context"
	"testing"

	"rpbeat/internal/serve"
)

// TestPatientSeedDeterministicAndDistinct: the fleet is reproducible
// because patient seeds are a pure function of (fleet seed, index), and
// every patient gets their own.
func TestPatientSeedDeterministicAndDistinct(t *testing.T) {
	if PatientSeed(7, 3) != PatientSeed(7, 3) {
		t.Fatal("PatientSeed is not deterministic")
	}
	seen := make(map[uint64]int)
	for i := 0; i < 10000; i++ {
		s := PatientSeed(1, i)
		if prev, dup := seen[s]; dup {
			t.Fatalf("patients %d and %d share seed %#x", prev, i, s)
		}
		seen[s] = i
	}
	// Different fleet seeds give different patients too.
	if PatientSeed(1, 0) == PatientSeed(2, 0) {
		t.Fatal("fleet seeds 1 and 2 derived the same patient seed")
	}
}

// TestFleetRun drives a small fleet (with a batch mix) end to end against
// the real serving stack and checks the report adds up: every stream
// admitted and finished, beats observed with measurable latency, goodput
// accounted.
func TestFleetRun(t *testing.T) {
	ts, _ := testServer(t, 2, serve.HandlerConfig{})

	rep, err := Run(context.Background(), Config{
		BaseURL:      ts.URL,
		Streams:      8,
		Seconds:      10,
		Speedup:      64,
		BatchWorkers: 1,
		Seed:         1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.StreamsOK != 8 || rep.StreamsShed != 0 || rep.StreamsFailed != 0 {
		t.Fatalf("streams ok/shed/failed = %d/%d/%d, want 8/0/0 (errors: %v)",
			rep.StreamsOK, rep.StreamsShed, rep.StreamsFailed, rep.ErrorCounts)
	}
	if rep.Beats == 0 {
		t.Fatal("fleet observed no beats")
	}
	// 10 s of 360 Hz signal per stream, every sample acknowledged.
	if want := int64(8 * 10 * 360); rep.Samples != want {
		t.Fatalf("samples = %d, want %d", rep.Samples, want)
	}
	if rep.GoodputSamplesPerSec <= 0 {
		t.Fatal("no goodput reported")
	}
	if rep.BeatLatencyMsP50 <= 0 || rep.BeatLatencyMsP999 < rep.BeatLatencyMsP50 {
		t.Fatalf("latency percentiles inconsistent: p50=%.3f p99=%.3f p999=%.3f",
			rep.BeatLatencyMsP50, rep.BeatLatencyMsP99, rep.BeatLatencyMsP999)
	}
	if rep.BatchRequests == 0 || rep.BatchOK == 0 {
		t.Fatalf("batch mix idle: %d requests, %d ok", rep.BatchRequests, rep.BatchOK)
	}
	if len(rep.ErrorCounts) != 0 {
		t.Fatalf("unexpected errors: %v", rep.ErrorCounts)
	}
	// The continuity ledger must reconcile exactly on a clean run — this is
	// also the proof the local oracle (ExpectedBeats) matches the server's
	// detection beat for beat.
	if rep.BeatsLost != 0 || rep.BeatsDuplicated != 0 {
		t.Fatalf("beat ledger lost/duplicated = %d/%d, want 0/0", rep.BeatsLost, rep.BeatsDuplicated)
	}
}

// TestFleetChaosLedger runs the fleet with chaos self-injection on: the
// absorbable faults distort timing only, so against a healthy server every
// stream must still complete with the continuity ledger at zero — the
// baseline the CI chaos smoke (which additionally kills a backend) builds
// on.
func TestFleetChaosLedger(t *testing.T) {
	ts, _ := testServer(t, 2, serve.HandlerConfig{})

	rep, err := Run(context.Background(), Config{
		BaseURL: ts.URL,
		Streams: 6,
		Seconds: 10,
		Speedup: 64,
		Seed:    1,
		Chaos:   99,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.StreamsOK != 6 || rep.StreamsShed != 0 || rep.StreamsFailed != 0 {
		t.Fatalf("streams ok/shed/failed = %d/%d/%d, want 6/0/0 (errors: %v)",
			rep.StreamsOK, rep.StreamsShed, rep.StreamsFailed, rep.ErrorCounts)
	}
	if rep.BeatsLost != 0 || rep.BeatsDuplicated != 0 {
		t.Fatalf("beat ledger lost/duplicated = %d/%d, want 0/0", rep.BeatsLost, rep.BeatsDuplicated)
	}
	if rep.ChaosSeed != 99 {
		t.Fatalf("report echoes chaos seed %d, want 99", rep.ChaosSeed)
	}
}

// TestBeatLedger pins the reconciliation arithmetic.
func TestBeatLedger(t *testing.T) {
	want := []int{100, 200, 300, 400}
	lost, dup := beatLedger(want, []int{100, 200, 300, 400})
	if lost != 0 || dup != 0 {
		t.Fatalf("exact stream: lost/dup = %d/%d, want 0/0", lost, dup)
	}
	lost, dup = beatLedger(want, []int{100, 200, 200, 400})
	if lost != 1 || dup != 1 {
		t.Fatalf("one missing, one doubled: lost/dup = %d/%d, want 1/1", lost, dup)
	}
	lost, dup = beatLedger(want, nil)
	if lost != 4 || dup != 0 {
		t.Fatalf("empty stream: lost/dup = %d/%d, want 4/0", lost, dup)
	}
}

// TestFleetShedCounting: against a capped server, refused streams land in
// streams_shed with their typed code tallied — the client-side view of the
// overload contract.
func TestFleetShedCounting(t *testing.T) {
	ts, _ := testServer(t, 2, serve.HandlerConfig{MaxStreams: 2})

	rep, err := Run(context.Background(), Config{
		BaseURL: ts.URL,
		Streams: 6,
		Seconds: 10,
		Speedup: 16, // admitted streams hold their slot ~600ms: full overlap
		Seed:    1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.StreamsOK != 2 || rep.StreamsShed != 4 || rep.StreamsFailed != 0 {
		t.Fatalf("streams ok/shed/failed = %d/%d/%d, want 2/4/0 (errors: %v)",
			rep.StreamsOK, rep.StreamsShed, rep.StreamsFailed, rep.ErrorCounts)
	}
	if rep.ErrorCounts["server_overloaded"] != 4 {
		t.Fatalf("error counts = %v, want 4x server_overloaded", rep.ErrorCounts)
	}
	// Only admitted streams count toward goodput.
	if want := int64(2 * 10 * 360); rep.Samples != want {
		t.Fatalf("samples = %d, want %d (admitted streams only)", rep.Samples, want)
	}
}
