// Package load is the fleet-scale load harness: it synthesizes a fleet of
// virtual patients from internal/ecgsyn (each with a deterministic
// per-patient seed) and drives their leads as concurrent binary
// application/x-rpbeat-samples streams — plus an optional batch-classify
// mix — against a live rpbeat server, measuring what the paper's serving
// story actually promises: beat latency under fleet load.
//
// Pacing is cadence-faithful: a patient emits chunk k no earlier than
// k*chunk/(Fs*Speedup) after its stream start, so Speedup=1 replays at the
// 360 Hz wearable rate and Speedup=32 compresses an hour of fleet traffic
// into under two minutes without changing the arrival pattern. Beat latency
// is measured end to end — from the wall-clock instant the chunk containing
// the beat's DetectedAt sample was written to the socket until the beat's
// NDJSON line is read back — so it includes server queueing, worker
// scheduling and the transport, exactly what a monitoring client sees.
//
// Every refusal the server issues (server_overloaded, rate_limited,
// stream_overloaded, ...) is tallied by typed code, never treated as a
// transport failure: the overload-control contract is that shed clients see
// contract errors, and this package is how that contract is exercised at
// fleet scale (cmd/rpload, the rpbench fleet family, and the soak tests all
// drive it).
package load

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"rpbeat/internal/apierr"
	"rpbeat/internal/ecgsyn"
	"rpbeat/internal/faultinject"
	"rpbeat/internal/peak"
	"rpbeat/internal/sigdsp"
	"rpbeat/internal/wire"
)

// DefaultChunk is the per-frame sample count when Config.Chunk is zero:
// half a second at the 360 Hz ADC rate, the cadence a wearable uplink
// would batch at.
const DefaultChunk = 180

// Config describes one fleet run.
type Config struct {
	// BaseURL is the server root, e.g. "http://127.0.0.1:8080".
	BaseURL string
	// BaseURLs drives a multi-target topology instead: patient i sends to
	// BaseURLs[i % len(BaseURLs)]. One entry pointing at an rpgate gateway
	// and N entries pointing at rpserve backends directly are both valid
	// fleets — the synthesized per-patient traffic is identical either way
	// (the per-patient seed and X-Stream-Id depend only on Seed and i).
	// When non-empty, BaseURL is ignored.
	BaseURLs []string
	// Streams is the fleet size: concurrent patient streams.
	Streams int
	// Seconds is each patient's record length (default 30).
	Seconds float64
	// Speedup multiplies the real-time 360 Hz cadence; <= 0 disables
	// pacing entirely (firehose — useful for throughput ceilings, useless
	// for latency).
	Speedup float64
	// Chunk is the samples per binary frame (default DefaultChunk).
	Chunk int
	// Model is the ?model= reference ("" = server default).
	Model string
	// Tenant is sent as X-Tenant on every request ("" = none, the server
	// falls back to client IP).
	Tenant string
	// BatchWorkers adds a batch-classify mix: that many loops POSTing
	// whole records to /v1/classify while the streams run.
	BatchWorkers int
	// BatchInterval paces each batch worker (default 500ms between
	// requests).
	BatchInterval time.Duration
	// Seed is the fleet seed; patient i synthesizes from
	// PatientSeed(Seed, i).
	Seed uint64
	// UniqueRecords caps how many distinct records are synthesized;
	// patients share them round-robin so a 1000-stream fleet does not pay
	// for 1000 syntheses (default min(Streams, 16), which still gives
	// distinct per-patient phase in aggregate).
	UniqueRecords int
	// PVCRate is the premature-beat fraction per record (default 0.1).
	PVCRate float64
	// Client overrides the HTTP client (default: one with an unbounded
	// connection pool sized for the fleet).
	Client *http.Client
	// Chaos, when non-zero, seeds deterministic client-side fault
	// self-injection: each patient's uplink is wrapped with the absorbable
	// faultinject kinds (latency spikes, slow-loris pacing), derived from
	// (Chaos, StreamID). Absorbable faults degrade only timing, never
	// integrity, so a correct serving tier still completes every stream —
	// streams_failed stays 0 — while the jitter staggers the fleet so an
	// externally injected backend kill lands at varied stream positions.
	// The beat-continuity ledger (BeatsLost/BeatsDuplicated) is what turns
	// that into a verdict.
	Chaos uint64
}

// Report is the fleet run's outcome, shaped for JSON (rpload -json and the
// rpbench fleet family embed it verbatim).
type Report struct {
	Streams int `json:"streams"`
	// Targets is how many distinct base URLs the fleet was spread over
	// (1 for a single server or a gateway).
	Targets       int     `json:"targets,omitempty"`
	RecordSeconds float64 `json:"record_seconds"`
	Speedup       float64 `json:"speedup"`
	Chunk         int     `json:"chunk"`
	WallSeconds   float64 `json:"wall_seconds"`

	// StreamsOK finished with the server's done line; StreamsShed were
	// refused admission with a typed retryable error; StreamsFailed hit
	// anything else (transport errors, non-retryable refusals).
	StreamsOK     int64 `json:"streams_ok"`
	StreamsShed   int64 `json:"streams_shed"`
	StreamsFailed int64 `json:"streams_failed"`

	Beats   int64 `json:"beats"`
	Samples int64 `json:"samples"`
	// The beat-continuity ledger: every completed stream's beat samples are
	// compared against a local model-independent detection oracle
	// (ExpectedBeats) over the same record. BeatsLost counts expected beats
	// that never arrived; BeatsDuplicated counts beat samples delivered
	// more than once. Both must be 0 for a lossless serving tier — the
	// invariant transparent mid-stream failover is held to under chaos.
	BeatsLost       int64 `json:"beats_lost"`
	BeatsDuplicated int64 `json:"beats_duplicated"`
	// ChaosSeed echoes Config.Chaos so a failing chaos run is replayable.
	ChaosSeed uint64 `json:"chaos_seed,omitempty"`
	// GoodputSamplesPerSec counts only samples the server acknowledged in
	// done lines — shed and failed streams contribute nothing.
	GoodputSamplesPerSec float64 `json:"goodput_samples_per_sec"`

	// Beat latency percentiles, milliseconds, over every beat line from
	// every admitted stream.
	BeatLatencyMsP50  float64 `json:"beat_latency_ms_p50"`
	BeatLatencyMsP99  float64 `json:"beat_latency_ms_p99"`
	BeatLatencyMsP999 float64 `json:"beat_latency_ms_p999"`
	BeatLatencyMsMax  float64 `json:"beat_latency_ms_max"`

	BatchRequests int64 `json:"batch_requests,omitempty"`
	BatchOK       int64 `json:"batch_ok,omitempty"`

	// ErrorCounts tallies every typed error code the server returned,
	// plus "transport" for failures below the HTTP contract.
	ErrorCounts map[string]int64 `json:"error_counts,omitempty"`

	// ShedByInstance attributes shed streams to the backend that refused
	// them, keyed by the refusal's X-Rpbeat-Instance response header (set
	// with rpserve -instance; relayed verbatim through rpgate). Refusals
	// without the header are not counted here — only in StreamsShed.
	ShedByInstance map[string]int64 `json:"shed_by_instance,omitempty"`
}

// PatientSeed derives patient i's record seed from the fleet seed: a
// splitmix64 finalizer over a golden-ratio stride, so seeds are
// deterministic, well-spread, and distinct per patient.
func PatientSeed(fleetSeed uint64, patient int) uint64 {
	z := fleetSeed + 0x9e3779b97f4a7c15*uint64(patient+1)
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// StreamID is patient i's affinity token, sent as X-Stream-Id on its
// stream. It derives from the same (Seed, i) pair as the patient's record,
// so a fleet run produces identical per-patient streams — same bytes, same
// identity — whatever topology it is pointed at (one server, a backend
// list, or a gateway that hashes this token onto its pool).
func StreamID(fleetSeed uint64, patient int) string {
	return fmt.Sprintf("patient-%016x", PatientSeed(fleetSeed, patient))
}

// fleet is one run's shared state.
type fleet struct {
	cfg     Config
	targets []string // resolved base URLs; worker i uses targets[i%len]
	client  *http.Client

	records []*ecgsyn.Record
	synth   []sync.Once

	expected [][]int // per-slot beat oracle (ExpectedBeats of the lead)
	expOnce  []sync.Once

	mu        sync.Mutex
	latencies []int64 // beat latency, microseconds
	report    Report
}

func (f *fleet) countErr(code string) {
	f.mu.Lock()
	if f.report.ErrorCounts == nil {
		f.report.ErrorCounts = make(map[string]int64)
	}
	f.report.ErrorCounts[code]++
	f.mu.Unlock()
}

// countShed attributes one shed stream to the refusing backend instance.
func (f *fleet) countShed(instance string) {
	f.mu.Lock()
	if f.report.ShedByInstance == nil {
		f.report.ShedByInstance = make(map[string]int64)
	}
	f.report.ShedByInstance[instance]++
	f.mu.Unlock()
}

// target is worker i's base URL.
func (f *fleet) target(i int) string { return f.targets[i%len(f.targets)] }

// record returns (synthesizing on first use) the shared record for patient i.
func (f *fleet) record(i int) *ecgsyn.Record {
	slot := i % len(f.records)
	f.synth[slot].Do(func() {
		f.records[slot] = ecgsyn.Synthesize(ecgsyn.RecordSpec{
			Name:    fmt.Sprintf("fleet-%d", slot),
			Seconds: f.cfg.Seconds,
			Seed:    PatientSeed(f.cfg.Seed, slot),
			PVCRate: f.cfg.PVCRate,
		})
	})
	return f.records[slot]
}

// ExpectedBeats is the beat-continuity oracle: it runs the serving
// pipeline's model-independent front half — millivolt conversion, the
// streaming ECG filter and the peak detector, all at their serving
// defaults — over one lead and returns the beat sample indices a lossless
// stream of that lead must deliver, in order. Classification plays no part
// in which beats exist, so the oracle needs no model and matches whatever
// model the server applies.
func ExpectedBeats(lead []int32) []int {
	filter := sigdsp.NewStreamECGFilter(sigdsp.DefaultBaselineConfig(ecgsyn.Fs))
	det, err := peak.NewStreamDetector(peak.Config{Fs: ecgsyn.Fs, SearchBackOff: true})
	if err != nil {
		panic("load: ExpectedBeats: " + err.Error())
	}
	var out []int
	for _, v := range lead {
		y, ok := filter.Push(float64(v-ecgsyn.Baseline) / ecgsyn.Gain)
		if !ok {
			continue
		}
		out = append(out, det.Push(y)...)
	}
	out = append(out, det.Flush()...)
	return out
}

// expectedBeats returns (computing on first use) the shared oracle for
// patient i's record slot.
func (f *fleet) expectedBeats(i int) []int {
	slot := i % len(f.records)
	f.expOnce[slot].Do(func() {
		f.expected[slot] = ExpectedBeats(f.record(i).Leads[0])
	})
	return f.expected[slot]
}

// beatLedger reconciles one completed stream against its oracle: expected
// beats that never arrived are lost, beat samples that arrived more than
// once are duplicated.
func beatLedger(want, got []int) (lost, dup int64) {
	seen := make(map[int]int, len(got))
	for _, s := range got {
		seen[s]++
	}
	for _, s := range want {
		if seen[s] == 0 {
			lost++
		}
	}
	for _, n := range seen {
		if n > 1 {
			dup += int64(n - 1)
		}
	}
	return lost, dup
}

// streamLine is the union of every NDJSON line /v1/stream emits: beat
// lines, the done summary, and trailing error lines.
type streamLine struct {
	// beat
	Sample     int    `json:"sample"`
	Class      string `json:"class"`
	DetectedAt int    `json:"detectedAt"`
	// done
	Done    bool `json:"done"`
	Beats   int  `json:"beats"`
	Samples int  `json:"samples"`
	// error
	Error *apierr.Error `json:"error"`
}

// Run drives the fleet to completion: every stream plays its record once
// (or until ctx cancels) while the batch mix rides along, then the report
// is assembled. The error return is reserved for configuration problems;
// per-stream failures are data, tallied in the report.
func Run(ctx context.Context, cfg Config) (*Report, error) {
	targets := cfg.BaseURLs
	if len(targets) == 0 {
		if cfg.BaseURL == "" {
			return nil, fmt.Errorf("load: BaseURL (or BaseURLs) required")
		}
		targets = []string{cfg.BaseURL}
	}
	for _, t := range targets {
		if t == "" {
			return nil, fmt.Errorf("load: empty entry in BaseURLs")
		}
	}
	if cfg.Streams <= 0 {
		cfg.Streams = 1
	}
	if cfg.Seconds <= 0 {
		cfg.Seconds = 30
	}
	if cfg.Chunk <= 0 {
		cfg.Chunk = DefaultChunk
	}
	if cfg.PVCRate == 0 {
		cfg.PVCRate = 0.1
	}
	if cfg.BatchInterval <= 0 {
		cfg.BatchInterval = 500 * time.Millisecond
	}
	unique := cfg.UniqueRecords
	if unique <= 0 {
		unique = cfg.Streams
		if unique > 16 {
			unique = 16
		}
	}
	client := cfg.Client
	if client == nil {
		client = &http.Client{Transport: &http.Transport{
			MaxIdleConns:        cfg.Streams + cfg.BatchWorkers,
			MaxIdleConnsPerHost: cfg.Streams + cfg.BatchWorkers,
		}}
	}

	f := &fleet{
		cfg:      cfg,
		targets:  targets,
		client:   client,
		records:  make([]*ecgsyn.Record, unique),
		synth:    make([]sync.Once, unique),
		expected: make([][]int, unique),
		expOnce:  make([]sync.Once, unique),
	}
	f.report = Report{
		Streams:       cfg.Streams,
		Targets:       len(targets),
		RecordSeconds: cfg.Seconds,
		Speedup:       cfg.Speedup,
		Chunk:         cfg.Chunk,
		ChaosSeed:     cfg.Chaos,
	}

	start := time.Now()
	var wg sync.WaitGroup

	// The batch mix stops when the stream fleet is done.
	batchCtx, stopBatch := context.WithCancel(ctx)
	defer stopBatch()
	for i := 0; i < cfg.BatchWorkers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			f.runBatch(batchCtx, i)
		}(i)
	}

	var streams sync.WaitGroup
	for i := 0; i < cfg.Streams; i++ {
		streams.Add(1)
		go func(i int) {
			defer streams.Done()
			f.runStream(ctx, i)
		}(i)
	}
	streams.Wait()
	stopBatch()
	wg.Wait()

	f.report.WallSeconds = time.Since(start).Seconds()
	if f.report.WallSeconds > 0 {
		f.report.GoodputSamplesPerSec = float64(f.report.Samples) / f.report.WallSeconds
	}
	sort.Slice(f.latencies, func(a, b int) bool { return f.latencies[a] < f.latencies[b] })
	f.report.BeatLatencyMsP50 = f.percentile(0.50)
	f.report.BeatLatencyMsP99 = f.percentile(0.99)
	f.report.BeatLatencyMsP999 = f.percentile(0.999)
	if n := len(f.latencies); n > 0 {
		f.report.BeatLatencyMsMax = float64(f.latencies[n-1]) / 1e3
	}
	return &f.report, nil
}

// percentile reads the sorted latency slice; q in [0,1].
func (f *fleet) percentile(q float64) float64 {
	n := len(f.latencies)
	if n == 0 {
		return 0
	}
	idx := int(q * float64(n-1))
	return float64(f.latencies[idx]) / 1e3
}

// runStream plays patient i's record as one binary stream.
func (f *fleet) runStream(ctx context.Context, i int) {
	lead := f.record(i).Leads[0]
	chunk := f.cfg.Chunk
	nChunks := (len(lead) + chunk - 1) / chunk
	// sendNanos[k] is the wall clock when chunk k hit the socket, written
	// by the uplink goroutine and read by the response reader. The server
	// round trip orders the accesses in practice, but that edge crosses a
	// socket the race detector cannot see — hence atomics.
	sendNanos := make([]int64, nChunks)

	pr, pw := io.Pipe()
	url := f.target(i) + "/v1/stream"
	if f.cfg.Model != "" {
		url += "?model=" + f.cfg.Model
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, pr)
	if err != nil {
		f.countErr("transport")
		atomic.AddInt64(&f.report.StreamsFailed, 1)
		return
	}
	req.Header.Set("Content-Type", wire.ContentTypeSamples)
	// The affinity token: deterministic per (Seed, i), so a gateway pins
	// this patient to the same backend run after run.
	req.Header.Set("X-Stream-Id", StreamID(f.cfg.Seed, i))
	if f.cfg.Tenant != "" {
		req.Header.Set("X-Tenant", f.cfg.Tenant)
	}

	// Uplink: chunks at the patient's cadence. time.Since/Until on the
	// monotonic clock, one target per chunk so pacing error never
	// accumulates.
	go func() {
		start := time.Now()
		var frame []byte
		var perChunk time.Duration
		if f.cfg.Speedup > 0 {
			perChunk = time.Duration(float64(chunk) / (ecgsyn.Fs * f.cfg.Speedup) * float64(time.Second))
		}
		// Chaos self-injection: absorbable (timing-only) faults on this
		// patient's own uplink, deterministic per (Chaos, StreamID).
		var uplink io.Writer = pw
		if f.cfg.Chaos != 0 {
			plan := faultinject.Plan{Seed: f.cfg.Chaos, MaxByte: int64(2 * len(lead)), MaxDelay: 2 * time.Millisecond}
			uplink = faultinject.NewWriter(pw,
				plan.Pick(StreamID(f.cfg.Seed, i), faultinject.LatencySpike, faultinject.SlowLoris))
		}
		for k := 0; k < nChunks; k++ {
			if perChunk > 0 {
				target := start.Add(time.Duration(k) * perChunk)
				if d := time.Until(target); d > 0 {
					select {
					case <-time.After(d):
					case <-ctx.Done():
						pw.CloseWithError(ctx.Err())
						return
					}
				}
			}
			lo, hi := k*chunk, (k+1)*chunk
			if hi > len(lead) {
				hi = len(lead)
			}
			var ferr error
			frame, ferr = wire.AppendFrame(frame[:0], lead[lo:hi])
			if ferr != nil {
				pw.CloseWithError(ferr)
				return
			}
			atomic.StoreInt64(&sendNanos[k], time.Now().UnixNano())
			if _, err := uplink.Write(frame); err != nil {
				// Server hung up mid-stream; the reader side classifies it.
				return
			}
		}
		pw.Close()
	}()

	resp, err := f.client.Do(req)
	if err != nil {
		pr.CloseWithError(err) // release the uplink goroutine
		f.countErr("transport")
		atomic.AddInt64(&f.report.StreamsFailed, 1)
		return
	}
	defer func() {
		pr.CloseWithError(io.ErrClosedPipe)
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}()

	if resp.StatusCode != http.StatusOK {
		// A typed refusal before the first byte of body was read: the
		// overload-control contract at work.
		var body struct {
			Error apierr.Error `json:"error"`
		}
		code := "transport"
		if json.NewDecoder(resp.Body).Decode(&body) == nil && body.Error.Code != "" {
			code = string(body.Error.Code)
		}
		f.countErr(code)
		if body.Error.Retryable() {
			atomic.AddInt64(&f.report.StreamsShed, 1)
			if inst := resp.Header.Get("X-Rpbeat-Instance"); inst != "" {
				f.countShed(inst)
			}
		} else {
			atomic.AddInt64(&f.report.StreamsFailed, 1)
		}
		return
	}

	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 64*1024), 1024*1024)
	var (
		local    []int64
		got      []int // beat samples received, for the continuity ledger
		done     bool
		sawError bool
	)
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var l streamLine
		if err := json.Unmarshal(line, &l); err != nil {
			f.countErr("transport")
			continue
		}
		switch {
		case l.Error != nil:
			f.countErr(string(l.Error.Code))
			sawError = true
		case l.Done:
			atomic.AddInt64(&f.report.Beats, int64(l.Beats))
			atomic.AddInt64(&f.report.Samples, int64(l.Samples))
			done = true
		case l.Class != "":
			got = append(got, l.Sample)
			k := l.DetectedAt / chunk
			if k >= 0 && k < nChunks {
				if sent := atomic.LoadInt64(&sendNanos[k]); sent != 0 {
					local = append(local, (time.Now().UnixNano()-sent)/1e3)
				}
			}
		}
	}
	if err := sc.Err(); err != nil {
		f.countErr("transport")
		sawError = true
	}

	f.mu.Lock()
	f.latencies = append(f.latencies, local...)
	f.mu.Unlock()
	switch {
	case done:
		atomic.AddInt64(&f.report.StreamsOK, 1)
		// Reconcile the completed stream against the beat oracle. Shed and
		// failed streams are excluded: their loss is already attributed by
		// the stream counters, not the continuity ledger.
		lost, dup := beatLedger(f.expectedBeats(i), got)
		atomic.AddInt64(&f.report.BeatsLost, lost)
		atomic.AddInt64(&f.report.BeatsDuplicated, dup)
	case sawError:
		atomic.AddInt64(&f.report.StreamsFailed, 1)
	default:
		f.countErr("transport") // stream ended with neither done nor error
		atomic.AddInt64(&f.report.StreamsFailed, 1)
	}
}

// runBatch is one worker of the batch-classify mix: whole records POSTed at
// a fixed interval while the stream fleet runs.
func (f *fleet) runBatch(ctx context.Context, i int) {
	frame, err := wire.AppendFrame(nil, f.record(i).Leads[0])
	if err != nil {
		f.countErr("transport")
		return
	}
	url := f.target(i) + "/v1/classify"
	if f.cfg.Model != "" {
		url += "?model=" + f.cfg.Model
	}
	tick := time.NewTicker(f.cfg.BatchInterval)
	defer tick.Stop()
	for {
		req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, bytes.NewReader(frame))
		if err != nil {
			f.countErr("transport")
			return
		}
		req.Header.Set("Content-Type", wire.ContentTypeSamples)
		if f.cfg.Tenant != "" {
			req.Header.Set("X-Tenant", f.cfg.Tenant)
		}
		atomic.AddInt64(&f.report.BatchRequests, 1)
		resp, err := f.client.Do(req)
		switch {
		case err != nil:
			if ctx.Err() != nil {
				atomic.AddInt64(&f.report.BatchRequests, -1) // canceled, not attempted
				return
			}
			f.countErr("transport")
		case resp.StatusCode == http.StatusOK:
			atomic.AddInt64(&f.report.BatchOK, 1)
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		default:
			var body struct {
				Error apierr.Error `json:"error"`
			}
			code := "transport"
			if json.NewDecoder(resp.Body).Decode(&body) == nil && body.Error.Code != "" {
				code = string(body.Error.Code)
			}
			f.countErr(code)
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}
		select {
		case <-ctx.Done():
			return
		case <-tick.C:
		}
	}
}
