package load

import (
	"net/http/httptest"
	"sync"
	"testing"

	"rpbeat/internal/beatset"
	"rpbeat/internal/catalog"
	"rpbeat/internal/core"
	"rpbeat/internal/pipeline"
	"rpbeat/internal/serve"
)

var (
	modelOnce sync.Once
	modelVal  *core.Model
	modelErr  error
)

// testModel trains one reduced-scale model per test binary.
func testModel(t testing.TB) *core.Model {
	t.Helper()
	modelOnce.Do(func() {
		ds, err := beatset.Build(beatset.Config{Seed: 31, Scale: 0.03})
		if err != nil {
			modelErr = err
			return
		}
		modelVal, _, modelErr = core.Train(ds, core.Config{
			Coeffs: 8, Downsample: 4, PopSize: 4, Generations: 2,
			SCGIters: 50, MinARR: 0.9, Seed: 31,
		})
	})
	if modelErr != nil {
		t.Fatal(modelErr)
	}
	return modelVal
}

// testServer boots the real serving stack — catalog, engine, HTTP handler —
// the way rpserve wires it, and hands back both halves so tests can drive
// HTTP load while inspecting the engine. Close order matters (handler
// before engine), mirroring rpserve's shutdown.
func testServer(t testing.TB, workers int, cfg serve.HandlerConfig) (*httptest.Server, *pipeline.Engine) {
	t.Helper()
	cat := catalog.New()
	if _, err := cat.Put("default", testModel(t), nil); err != nil {
		t.Fatal(err)
	}
	engMax := 0
	if cfg.MaxStreams > 0 {
		engMax = cfg.MaxStreams + 8
	}
	eng := pipeline.NewEngine(cat, pipeline.EngineConfig{Workers: workers, MaxStreams: engMax})
	ts := httptest.NewServer(serve.NewHandler(eng, cfg))
	t.Cleanup(func() {
		ts.Close()
		eng.Close()
	})
	return ts, eng
}
