package load

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
)

// captureServer records, per X-Stream-Id, the digest of every uploaded
// stream body and answers with a valid done line so the fleet counts the
// stream as OK.
type captureServer struct {
	mu     sync.Mutex
	bodies map[string]string // stream id -> hex digest of the raw upload
	ts     *httptest.Server
}

func newCaptureServer(t *testing.T) *captureServer {
	t.Helper()
	c := &captureServer{bodies: make(map[string]string)}
	c.ts = httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/v1/stream" {
			http.NotFound(w, r)
			return
		}
		id := r.Header.Get("X-Stream-Id")
		body, err := io.ReadAll(r.Body)
		if err != nil {
			t.Errorf("capture read: %v", err)
			return
		}
		sum := sha256.Sum256(body)
		c.mu.Lock()
		if prev, dup := c.bodies[id]; dup && prev != hex.EncodeToString(sum[:]) {
			t.Errorf("stream id %q uploaded twice with different bytes", id)
		}
		c.bodies[id] = hex.EncodeToString(sum[:])
		c.mu.Unlock()
		fmt.Fprintf(w, "{\"done\":true,\"beats\":0,\"samples\":%d}\n", 0)
	}))
	t.Cleanup(c.ts.Close)
	return c
}

// merged combines the recordings of several capture servers; stream ids are
// globally unique so a plain union is safe.
func merged(t *testing.T, servers ...*captureServer) map[string]string {
	t.Helper()
	out := make(map[string]string)
	for _, c := range servers {
		c.mu.Lock()
		for id, digest := range c.bodies {
			if _, dup := out[id]; dup {
				t.Fatalf("stream id %q seen on two targets", id)
			}
			out[id] = digest
		}
		c.mu.Unlock()
	}
	return out
}

// TestFleetTopologyDeterminism: the same (Seed, Streams) fleet produces the
// same per-patient stream — same X-Stream-Id, same uploaded bytes — whether
// it targets one server or is split across two. Topology routes traffic; it
// never changes it.
func TestFleetTopologyDeterminism(t *testing.T) {
	const streams = 8
	cfg := Config{
		Streams: streams,
		Seconds: 2,
		Speedup: 0, // firehose: this test is about bytes, not pacing
		Seed:    7,
	}

	single := newCaptureServer(t)
	cfg.BaseURLs = []string{single.ts.URL}
	rep1, err := Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep1.Targets != 1 || rep1.StreamsOK != streams {
		t.Fatalf("single-target run: targets=%d ok=%d, want 1/%d", rep1.Targets, rep1.StreamsOK, streams)
	}

	a, b := newCaptureServer(t), newCaptureServer(t)
	cfg.BaseURLs = []string{a.ts.URL, b.ts.URL}
	rep2, err := Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep2.Targets != 2 || rep2.StreamsOK != streams {
		t.Fatalf("split-target run: targets=%d ok=%d, want 2/%d", rep2.Targets, rep2.StreamsOK, streams)
	}
	if len(a.bodies) == 0 || len(b.bodies) == 0 {
		t.Fatalf("split fleet did not use both targets: %d vs %d streams", len(a.bodies), len(b.bodies))
	}

	mono, split := merged(t, single), merged(t, a, b)
	if len(mono) != streams || len(split) != streams {
		t.Fatalf("stream id counts %d vs %d, want %d each", len(mono), len(split), streams)
	}
	for i := 0; i < streams; i++ {
		id := StreamID(cfg.Seed, i)
		dm, ok := mono[id]
		if !ok {
			t.Fatalf("single-target run missing stream id %s", id)
		}
		ds, ok := split[id]
		if !ok {
			t.Fatalf("split-target run missing stream id %s", id)
		}
		if dm != ds {
			t.Fatalf("patient %d (%s): upload bytes differ across topologies", i, id)
		}
	}
}
