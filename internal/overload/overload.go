// Package overload is the server's admission control: it decides, before any
// work is done, whether a request may consume capacity. Three mechanisms
// compose (see DESIGN.md, "Overload control"):
//
//   - A Gate bounds the two request classes separately — concurrently open
//     streams and in-flight batch requests — and sheds on a ladder: when the
//     stream slots run out, new streams are refused with the typed
//     server_overloaded error while batch requests stay admitted (a stream
//     client can degrade to posting whole records); only when the batch
//     bound is also hit does the server refuse data-path work entirely.
//     Admission is a single atomic CAS per request, so the gate costs
//     nothing measurable on the hot paths.
//
//   - A Limiter meters request starts per tenant with a token bucket, so one
//     chatty client cannot monopolize admission while others starve. The
//     tenant table is bounded: at capacity, the least recently active bucket
//     is evicted (a tenant that stopped sending stops costing memory).
//
//   - Every refusal is counted per class; the counters feed /healthz and the
//     fleet benchmark's shed columns, so "the server shed load" is a number,
//     not an anecdote.
//
// Everything here refuses work with typed *apierr.Error values; nothing in
// this package ever blocks, queues or drops silently.
package overload

import (
	"sync"
	"sync/atomic"
	"time"

	"rpbeat/internal/apierr"
)

// GateConfig bounds the Gate. Zero values mean "unlimited" for each bound.
type GateConfig struct {
	// MaxStreams bounds concurrently open /v1/stream requests.
	MaxStreams int
	// MaxBatch bounds in-flight /v1/classify requests.
	MaxBatch int
}

// Gate is the two-class admission gate. The zero value admits everything;
// construct with NewGate to set bounds.
type Gate struct {
	maxStreams int64
	maxBatch   int64

	streams atomic.Int64 // open streams
	batch   atomic.Int64 // in-flight batch requests

	shedStreams atomic.Int64 // refusals, cumulative
	shedBatch   atomic.Int64
}

// NewGate builds a gate with the configured bounds.
func NewGate(cfg GateConfig) *Gate {
	return &Gate{maxStreams: int64(cfg.MaxStreams), maxBatch: int64(cfg.MaxBatch)}
}

// acquire CAS-increments n unless it is at bound (bound<=0 is unlimited).
func acquire(n *atomic.Int64, bound int64) bool {
	for {
		cur := n.Load()
		if bound > 0 && cur >= bound {
			return false
		}
		if n.CompareAndSwap(cur, cur+1) {
			return true
		}
	}
}

// AcquireStream admits one stream, or refuses it with the typed
// server_overloaded error. Callers that got nil must ReleaseStream exactly
// once when the stream ends.
func (g *Gate) AcquireStream() error {
	if g == nil || acquire(&g.streams, g.maxStreams) {
		return nil
	}
	g.shedStreams.Add(1)
	return apierr.New(apierr.CodeServerOverloaded,
		"stream slots exhausted (%d open); degraded to batch-only — retry, or POST whole records to /v1/classify",
		g.maxStreams)
}

// ReleaseStream returns a stream slot.
func (g *Gate) ReleaseStream() {
	if g != nil {
		g.streams.Add(-1)
	}
}

// AcquireBatch admits one batch request, or refuses it with the typed
// server_overloaded error. Callers that got nil must ReleaseBatch exactly
// once when the request finishes.
func (g *Gate) AcquireBatch() error {
	if g == nil || acquire(&g.batch, g.maxBatch) {
		return nil
	}
	g.shedBatch.Add(1)
	return apierr.New(apierr.CodeServerOverloaded,
		"server at capacity (%d batch requests in flight); back off and retry", g.maxBatch)
}

// ReleaseBatch returns a batch slot.
func (g *Gate) ReleaseBatch() {
	if g != nil {
		g.batch.Add(-1)
	}
}

// Stats is a point-in-time view of the gate for introspection surfaces.
type Stats struct {
	OpenStreams   int64 `json:"openStreams"`
	InFlightBatch int64 `json:"inFlightBatch"`
	ShedStreams   int64 `json:"shedStreams"` // cumulative refusals
	ShedBatch     int64 `json:"shedBatch"`
}

// Stats snapshots the gate's counters (each individually atomic; the set is
// not one consistent cut, which introspection does not need).
func (g *Gate) Stats() Stats {
	if g == nil {
		return Stats{}
	}
	return Stats{
		OpenStreams:   g.streams.Load(),
		InFlightBatch: g.batch.Load(),
		ShedStreams:   g.shedStreams.Load(),
		ShedBatch:     g.shedBatch.Load(),
	}
}

// LimiterConfig sizes a per-tenant rate limiter.
type LimiterConfig struct {
	// Rate is the sustained request budget per tenant, in requests/second.
	// Zero or negative disables limiting (Allow always nil).
	Rate float64
	// Burst is the bucket depth — how many requests a tenant may start
	// back-to-back after an idle period. Default max(1, ceil(Rate)).
	Burst float64
	// MaxTenants bounds the tenant table; at capacity the least recently
	// active tenant's bucket is evicted. Default 4096.
	MaxTenants int
	// now overrides the clock in tests.
	now func() time.Time
}

// bucket is one tenant's token bucket.
type bucket struct {
	tokens float64
	last   time.Time // last refill
	touch  int64     // LRU tick of the last Allow
}

// Limiter meters request starts per tenant. The zero value is not usable;
// construct with NewLimiter.
type Limiter struct {
	rate       float64
	burst      float64
	maxTenants int
	now        func() time.Time

	mu      sync.Mutex
	tenants map[string]*bucket
	tick    int64
}

// NewLimiter builds a limiter; cfg.Rate <= 0 yields a disabled limiter that
// admits everything.
func NewLimiter(cfg LimiterConfig) *Limiter {
	if cfg.Burst <= 0 {
		cfg.Burst = cfg.Rate
		if cfg.Burst < 1 {
			cfg.Burst = 1
		}
	}
	if cfg.MaxTenants <= 0 {
		cfg.MaxTenants = 4096
	}
	if cfg.now == nil {
		cfg.now = time.Now
	}
	return &Limiter{
		rate: cfg.Rate, burst: cfg.Burst, maxTenants: cfg.MaxTenants,
		now: cfg.now, tenants: make(map[string]*bucket),
	}
}

// refusal is built once: the limiter's rejection is always the same shape.
var refusal = apierr.New(apierr.CodeRateLimited,
	"tenant request rate exceeded; retry after the Retry-After delay")

// Allow spends one token from the tenant's bucket, or refuses with the typed
// rate_limited error. Unknown tenants start with a full bucket.
func (l *Limiter) Allow(tenant string) error {
	if l == nil || l.rate <= 0 {
		return nil
	}
	now := l.now()
	l.mu.Lock()
	defer l.mu.Unlock()
	l.tick++
	b := l.tenants[tenant]
	if b == nil {
		if len(l.tenants) >= l.maxTenants {
			l.evictLocked()
		}
		b = &bucket{tokens: l.burst, last: now}
		l.tenants[tenant] = b
	} else {
		b.tokens += now.Sub(b.last).Seconds() * l.rate
		if b.tokens > l.burst {
			b.tokens = l.burst
		}
		b.last = now
	}
	b.touch = l.tick
	if b.tokens < 1 {
		return refusal
	}
	b.tokens--
	return nil
}

// evictLocked drops the least recently active tenant. Linear scan: eviction
// only runs when a *new* tenant arrives with the table full, so its cost is
// bounded by tenant churn, not by request rate.
func (l *Limiter) evictLocked() {
	var victim string
	oldest := int64(1<<63 - 1)
	for name, b := range l.tenants {
		if b.touch < oldest {
			oldest, victim = b.touch, name
		}
	}
	delete(l.tenants, victim)
}

// Tenants reports the current tenant-table size.
func (l *Limiter) Tenants() int {
	if l == nil {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.tenants)
}
