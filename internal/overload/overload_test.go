package overload

import (
	"sync"
	"testing"
	"time"

	"rpbeat/internal/apierr"
)

func TestGateStreamLadder(t *testing.T) {
	g := NewGate(GateConfig{MaxStreams: 2, MaxBatch: 3})

	// Fill the stream slots.
	for i := 0; i < 2; i++ {
		if err := g.AcquireStream(); err != nil {
			t.Fatalf("stream %d refused below bound: %v", i, err)
		}
	}
	// The ladder's first rung: streams shed, batch still admitted.
	err := g.AcquireStream()
	if !apierr.IsCode(err, apierr.CodeServerOverloaded) {
		t.Fatalf("stream beyond bound: err = %v, want server_overloaded", err)
	}
	if err := g.AcquireBatch(); err != nil {
		t.Fatalf("batch refused while only streams are saturated: %v", err)
	}
	g.ReleaseBatch()

	// Second rung: batch slots full too.
	for i := 0; i < 3; i++ {
		if err := g.AcquireBatch(); err != nil {
			t.Fatalf("batch %d refused below bound: %v", i, err)
		}
	}
	if err := g.AcquireBatch(); !apierr.IsCode(err, apierr.CodeServerOverloaded) {
		t.Fatalf("batch beyond bound: err = %v, want server_overloaded", err)
	}

	st := g.Stats()
	if st.OpenStreams != 2 || st.InFlightBatch != 3 {
		t.Fatalf("stats = %+v, want 2 open streams, 3 in-flight batch", st)
	}
	if st.ShedStreams != 1 || st.ShedBatch != 1 {
		t.Fatalf("shed counters = %+v, want 1 and 1", st)
	}

	// Releases reopen admission.
	g.ReleaseStream()
	if err := g.AcquireStream(); err != nil {
		t.Fatalf("stream refused after release: %v", err)
	}
}

func TestGateUnlimitedAndNil(t *testing.T) {
	g := NewGate(GateConfig{}) // zero bounds: unlimited
	for i := 0; i < 100; i++ {
		if err := g.AcquireStream(); err != nil {
			t.Fatal(err)
		}
		if err := g.AcquireBatch(); err != nil {
			t.Fatal(err)
		}
	}
	var nilGate *Gate
	if err := nilGate.AcquireStream(); err != nil {
		t.Fatalf("nil gate refused a stream: %v", err)
	}
	nilGate.ReleaseStream()
	if s := nilGate.Stats(); s != (Stats{}) {
		t.Fatalf("nil gate stats = %+v", s)
	}
}

func TestGateConcurrentNeverExceedsBound(t *testing.T) {
	const bound = 8
	g := NewGate(GateConfig{MaxStreams: bound})
	var wg sync.WaitGroup
	for i := 0; i < 64; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 200; j++ {
				if g.AcquireStream() == nil {
					if n := g.Stats().OpenStreams; n > bound {
						t.Errorf("open streams %d exceeds bound %d", n, bound)
					}
					g.ReleaseStream()
				}
			}
		}()
	}
	wg.Wait()
	if n := g.Stats().OpenStreams; n != 0 {
		t.Fatalf("open streams after all released: %d", n)
	}
}

// fakeClock steps time manually for deterministic bucket math.
type fakeClock struct{ t time.Time }

func (c *fakeClock) now() time.Time          { return c.t }
func (c *fakeClock) advance(d time.Duration) { c.t = c.t.Add(d) }

func TestLimiterRefillMath(t *testing.T) {
	clk := &fakeClock{t: time.Unix(1000, 0)}
	l := NewLimiter(LimiterConfig{Rate: 10, Burst: 3, now: clk.now})

	// A fresh tenant has a full burst.
	for i := 0; i < 3; i++ {
		if err := l.Allow("a"); err != nil {
			t.Fatalf("burst request %d refused: %v", i, err)
		}
	}
	if err := l.Allow("a"); !apierr.IsCode(err, apierr.CodeRateLimited) {
		t.Fatalf("empty bucket: err = %v, want rate_limited", err)
	}

	// 100 ms at 10 req/s refills exactly one token.
	clk.advance(100 * time.Millisecond)
	if err := l.Allow("a"); err != nil {
		t.Fatalf("refilled token refused: %v", err)
	}
	if err := l.Allow("a"); !apierr.IsCode(err, apierr.CodeRateLimited) {
		t.Fatalf("second request on one refilled token: err = %v, want rate_limited", err)
	}

	// The bucket caps at burst, however long the idle period.
	clk.advance(time.Hour)
	for i := 0; i < 3; i++ {
		if err := l.Allow("a"); err != nil {
			t.Fatalf("post-idle request %d refused: %v", i, err)
		}
	}
	if err := l.Allow("a"); !apierr.IsCode(err, apierr.CodeRateLimited) {
		t.Fatal("bucket exceeded burst after idle")
	}
}

func TestLimiterTenantsIndependent(t *testing.T) {
	clk := &fakeClock{t: time.Unix(1000, 0)}
	l := NewLimiter(LimiterConfig{Rate: 1, Burst: 1, now: clk.now})
	if err := l.Allow("a"); err != nil {
		t.Fatal(err)
	}
	if err := l.Allow("a"); !apierr.IsCode(err, apierr.CodeRateLimited) {
		t.Fatalf("tenant a second request: %v", err)
	}
	// Tenant b is unaffected by a's exhaustion.
	if err := l.Allow("b"); err != nil {
		t.Fatalf("tenant b refused by a's bucket: %v", err)
	}
}

func TestLimiterEvictsLeastRecentTenant(t *testing.T) {
	clk := &fakeClock{t: time.Unix(1000, 0)}
	l := NewLimiter(LimiterConfig{Rate: 1, Burst: 1, MaxTenants: 2, now: clk.now})

	if err := l.Allow("old"); err != nil {
		t.Fatal(err)
	}
	if err := l.Allow("warm"); err != nil {
		t.Fatal(err)
	}
	// "warm" stays active (refused counts as activity for LRU purposes).
	l.Allow("warm")
	// A third tenant evicts "old", the least recently active.
	if err := l.Allow("new"); err != nil {
		t.Fatal(err)
	}
	if n := l.Tenants(); n != 2 {
		t.Fatalf("tenant table size = %d, want 2", n)
	}
	// "new" was admitted with a full burst while "warm" kept its drained
	// bucket — the eviction hit the least recently active tenant, not an
	// active one.
	if err := l.Allow("warm"); !apierr.IsCode(err, apierr.CodeRateLimited) {
		t.Fatalf("warm tenant's drained bucket did not survive: %v", err)
	}
	// The evicted tenant returns as fresh, with a full burst again.
	if err := l.Allow("old"); err != nil {
		t.Fatalf("evicted tenant did not restart fresh: %v", err)
	}
	if n := l.Tenants(); n != 2 {
		t.Fatalf("tenant table size = %d, want 2 (bounded)", n)
	}
}

func TestLimiterDisabledAndNil(t *testing.T) {
	l := NewLimiter(LimiterConfig{}) // Rate 0: disabled
	for i := 0; i < 1000; i++ {
		if err := l.Allow("t"); err != nil {
			t.Fatal(err)
		}
	}
	var nilL *Limiter
	if err := nilL.Allow("t"); err != nil {
		t.Fatal(err)
	}
	if n := nilL.Tenants(); n != 0 {
		t.Fatalf("nil limiter tenants = %d", n)
	}
}

func TestLimiterConcurrentBudget(t *testing.T) {
	clk := &fakeClock{t: time.Unix(1000, 0)}
	l := NewLimiter(LimiterConfig{Rate: 1, Burst: 100, now: clk.now})
	var wg sync.WaitGroup
	granted := make([]int, 8)
	for i := range granted {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				if l.Allow("shared") == nil {
					granted[i]++
				}
			}
		}(i)
	}
	wg.Wait()
	total := 0
	for _, n := range granted {
		total += n
	}
	// The clock never advances: exactly the burst may be granted, no matter
	// the interleaving.
	if total != 100 {
		t.Fatalf("granted %d requests from a burst-100 bucket with a frozen clock", total)
	}
}

func TestRefusalsAreRetryable(t *testing.T) {
	g := NewGate(GateConfig{MaxStreams: 1, MaxBatch: 1})
	if err := g.AcquireStream(); err != nil {
		t.Fatal(err)
	}
	if err := g.AcquireBatch(); err != nil {
		t.Fatal(err)
	}
	clk := &fakeClock{t: time.Unix(1000, 0)}
	l := NewLimiter(LimiterConfig{Rate: 1, Burst: 1, now: clk.now})
	l.Allow("t")
	for i, err := range []error{g.AcquireStream(), g.AcquireBatch(), l.Allow("t")} {
		ae := apierr.From(err)
		if ae == nil || !ae.Retryable() {
			t.Fatalf("refusal %d (%v) is not marked retryable", i, err)
		}
		if s := ae.HTTPStatus(); s != 503 && s != 429 {
			t.Fatalf("refusal %d status = %d", i, s)
		}
	}
}
