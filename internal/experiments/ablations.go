package experiments

import (
	"fmt"
	"strings"

	"rpbeat/internal/fixp"
	"rpbeat/internal/metrics"
)

// Ablation studies beyond the paper's tables, covering the design choices
// DESIGN.md calls out: the value of the genetic search, the downsampling
// factor, and the 2-bit matrix packing (speed side measured in bench_test).

// GAAblationResult compares the best random projection (generation 0) with
// the GA-optimized one.
type GAAblationResult struct {
	InitialBest float64 // best fitness among the random initial population
	FinalBest   float64 // best fitness after the configured generations
	Generations int
}

// GAAblation quantifies what the genetic optimization adds over drawing
// random Achlioptas matrices (Sec. I: "even a rather simple optimization
// ... can find a proper projection").
func (r *Runner) GAAblation() (GAAblationResult, error) {
	_, stats, err := r.Model(8, 4)
	if err != nil {
		return GAAblationResult{}, err
	}
	if len(stats.History) == 0 {
		return GAAblationResult{}, fmt.Errorf("experiments: no GA history recorded")
	}
	return GAAblationResult{
		InitialBest: stats.History[0],
		FinalBest:   stats.History[len(stats.History)-1],
		Generations: len(stats.History),
	}, nil
}

// Render formats the GA ablation.
func (g GAAblationResult) Render() string {
	return fmt.Sprintf("best NDR on training set 2 (at ARR constraint):\n"+
		"  random projections (best of initial population): %6.2f%%\n"+
		"  after %d GA generations:                          %6.2f%%\n"+
		"  improvement: %+.2f points\n",
		100*g.InitialBest, g.Generations, 100*g.FinalBest,
		100*(g.FinalBest-g.InitialBest))
}

// DownsampleResult is one row of the downsampling sweep.
type DownsampleResult struct {
	Factor      int
	InputDim    int
	NDR         float64 // % on the test set at the ARR constraint
	ARR         float64
	MatrixBytes int // packed projection matrix footprint
}

// DownsampleSweep measures the accuracy/memory trade-off of Sec. III-B's
// downsampling for k = 8 coefficients.
func (r *Runner) DownsampleSweep(factors []int) ([]DownsampleResult, error) {
	if len(factors) == 0 {
		factors = []int{1, 2, 4, 8}
	}
	ds, err := r.Dataset()
	if err != nil {
		return nil, err
	}
	var out []DownsampleResult
	for _, f := range factors {
		m, _, err := r.Model(8, f)
		if err != nil {
			return nil, fmt.Errorf("downsample %d: %w", f, err)
		}
		emb, err := m.Quantize(fixp.MFLinear)
		if err != nil {
			return nil, err
		}
		pt, err := operatingPoint(emb.Evaluate(ds, ds.Test), r.Opts.MinARR)
		if err != nil {
			return nil, fmt.Errorf("downsample %d: %w", f, err)
		}
		out = append(out, DownsampleResult{
			Factor:      f,
			InputDim:    m.D,
			NDR:         100 * pt.NDR,
			ARR:         100 * pt.ARR,
			MatrixBytes: emb.P.ByteSize(),
		})
	}
	return out, nil
}

// RenderDownsample formats the sweep.
func RenderDownsample(rows []DownsampleResult) string {
	var b strings.Builder
	b.WriteString("factor  rate(Hz)  samples  matrix(B)    NDR%%    ARR%%\n")
	for _, r := range rows {
		fmt.Fprintf(&b, "%6d  %8.0f  %7d  %9d  %6.2f  %6.2f\n",
			r.Factor, 360.0/float64(r.Factor), r.InputDim, r.MatrixBytes, r.NDR, r.ARR)
	}
	return b.String()
}

// AlphaSensitivity returns the operating curve of the deployed (linear-MF)
// classifier as α_test sweeps its range — the knob Sec. III-B exposes for
// post-deployment tuning.
func (r *Runner) AlphaSensitivity() ([]metrics.Point, error) {
	ds, err := r.Dataset()
	if err != nil {
		return nil, err
	}
	m, _, err := r.Model(8, 4)
	if err != nil {
		return nil, err
	}
	emb, err := m.Quantize(fixp.MFLinear)
	if err != nil {
		return nil, err
	}
	evals := emb.Evaluate(ds, ds.Test)
	return metrics.Curve(evals, alphaGrid()), nil
}

// RenderAlphaCurve formats an operating curve.
func RenderAlphaCurve(pts []metrics.Point) string {
	var b strings.Builder
	b.WriteString("  alpha     NDR%%     ARR%%\n")
	for _, p := range pts {
		fmt.Fprintf(&b, "%7.4f  %7.3f  %7.3f\n", p.Alpha, 100*p.NDR, 100*p.ARR)
	}
	return b.String()
}
