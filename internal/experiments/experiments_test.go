package experiments

import (
	"strings"
	"testing"

	"rpbeat/internal/ecgsyn"
	"rpbeat/internal/metrics"
)

// testRunner is shared across tests: tiny dataset, tiny GA, so the whole
// file runs in seconds while still exercising every driver end to end.
var shared *Runner

func testRunner(t testing.TB) *Runner {
	t.Helper()
	if shared == nil {
		shared = NewRunner(Options{
			Seed:        5,
			Scale:       0.03,
			PopSize:     6,
			Generations: 3,
			SCGIters:    60,
			MinARR:      0.95,
		})
	}
	return shared
}

func TestTableIComposition(t *testing.T) {
	r := testRunner(t)
	res, err := r.TableI()
	if err != nil {
		t.Fatal(err)
	}
	// Scaled composition: train1 = ceil(150*0.03) = 5 per class.
	for cl, n := range res.Train1 {
		if n != 5 {
			t.Fatalf("train1 class %d count %d, want 5", cl, n)
		}
	}
	if res.Test[ecgsyn.ClassN] == 0 || res.Test[ecgsyn.ClassL] == 0 || res.Test[ecgsyn.ClassV] == 0 {
		t.Fatalf("test composition %v has empty classes", res.Test)
	}
	out := res.Render()
	if !strings.Contains(out, "training set 1") || !strings.Contains(out, "test set") {
		t.Fatalf("render missing rows:\n%s", out)
	}
}

func TestTableIIReducedScale(t *testing.T) {
	r := testRunner(t)
	res, err := r.TableII([]int{8})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.NDRPC) != 1 || len(res.NDRWBSN) != 1 || len(res.PCAPC) != 1 {
		t.Fatalf("row lengths wrong: %+v", res)
	}
	// All three settings must reach a usable operating point; the paper's
	// regime is NDR > 90 at full scale, we accept > 70 at 3% scale with a
	// tiny GA.
	for name, v := range map[string]float64{
		"NDR-PC": res.NDRPC[0], "NDR-WBSN": res.NDRWBSN[0], "PCA-PC": res.PCAPC[0],
	} {
		if v < 70 || v > 100 {
			t.Fatalf("%s = %.2f%%, out of plausible range", name, v)
		}
	}
	for _, arr := range [][]float64{res.ARRPC, res.ARRWBSN, res.ARRPCA} {
		if arr[0] < 95 {
			t.Fatalf("ARR %.2f below the constraint", arr[0])
		}
	}
	out := res.Render()
	if !strings.Contains(out, "NDR-WBSN") {
		t.Fatalf("render:\n%s", out)
	}
}

func TestFigure4Shapes(t *testing.T) {
	pts := Figure4()
	if len(pts) < 40 {
		t.Fatalf("only %d points", len(pts))
	}
	last := pts[len(pts)-1]
	if last.X != 0 && last.X > 0.01 {
		t.Fatalf("last point at %v, want 0", last.X)
	}
	if last.Gaussian < 0.99 || last.Linear < 0.99 || last.Triangular < 0.99 {
		t.Fatalf("all shapes must peak at the center: %+v", last)
	}
	// Beyond 2S = 4.7σ the triangular MF is exactly 0 while the linear
	// approximation keeps its small positive tail (out to 4S) — the
	// property Sec. III-B credits for the linear MF's robustness.
	first := pts[0] // x = -5σ
	if first.Triangular != 0 {
		t.Fatalf("triangular MF at -5σ = %v, want 0", first.Triangular)
	}
	if first.Linear <= 0 {
		t.Fatalf("linear MF tail at -5σ = %v, want > 0", first.Linear)
	}
	// In the mid range the linear shape hugs the Gaussian from above/below
	// while the triangle overshoots it badly (visible in Fig. 4).
	var at3 Figure4Point
	for _, p := range pts {
		if p.X > -3.05 && p.X < -2.95 {
			at3 = p
		}
	}
	if gapTri, gapLin := at3.Triangular-at3.Gaussian, at3.Linear-at3.Gaussian; gapTri < 10*gapLin {
		t.Fatalf("triangle should deviate far more than linear at -3σ: tri %+.4f vs lin %+.4f", gapTri, gapLin)
	}
	if s := RenderFigure4(pts); !strings.Contains(s, "gaussian") {
		t.Fatal("render header missing")
	}
}

func TestFigure5Fronts(t *testing.T) {
	r := testRunner(t)
	res, err := r.Figure5()
	if err != nil {
		t.Fatal(err)
	}
	for name, front := range map[string][]metrics.Point{
		"gaussian": res.Gaussian, "linear": res.Linear, "triangular": res.Triangular,
	} {
		if len(front) == 0 {
			t.Fatalf("%s front empty", name)
		}
	}
	// The linear front must track the gaussian front much more closely than
	// the triangular one at high ARR — the qualitative claim of Fig. 5.
	// (The probe sits at 97% here: at this tiny test scale with a 3-
	// generation GA the highest ARR levels are data-limited; the full-scale
	// run in EXPERIMENTS.md probes 98.5% as the paper does.)
	const arr = 0.97
	g, okG := NDRAtARROnFront(res.Gaussian, arr)
	l, okL := NDRAtARROnFront(res.Linear, arr)
	tr, okT := NDRAtARROnFront(res.Triangular, arr)
	if !okG || !okL {
		t.Fatalf("gaussian/linear fronts do not reach ARR %.3f", arr)
	}
	if gap := g - l; gap > 0.15 {
		t.Fatalf("linear NDR %.3f too far below gaussian %.3f", l, g)
	}
	if okT && tr > l+0.02 {
		t.Fatalf("triangular (%.3f) should not beat linear (%.3f) at high ARR", tr, l)
	}
	if s := res.Render(); !strings.Contains(s, "triangular front") {
		t.Fatal("render missing front")
	}
}

func TestTableIIIReduced(t *testing.T) {
	r := testRunner(t)
	res, err := r.TableIII()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 4 {
		t.Fatalf("%d rows", len(res.Rows))
	}
	if res.ActivationRate <= 0 || res.ActivationRate >= 1 {
		t.Fatalf("activation rate %v", res.ActivationRate)
	}
	if !res.MemoryOK {
		t.Fatal("system must fit the 96 KB budget")
	}
	if res.Rows[0].Duty >= 0.01 {
		t.Fatalf("classifier duty %v", res.Rows[0].Duty)
	}
	if !(res.Rows[3].Duty < res.Rows[2].Duty) {
		t.Fatal("gated system must beat always-on delineation")
	}
	if s := res.Render(); !strings.Contains(s, "Proposed system") {
		t.Fatalf("render:\n%s", s)
	}
}

func TestEnergyReduced(t *testing.T) {
	r := testRunner(t)
	res, err := r.Energy()
	if err != nil {
		t.Fatal(err)
	}
	if res.Report.RadioReduction < 0.4 {
		t.Fatalf("radio reduction %.3f too small", res.Report.RadioReduction)
	}
	if res.Report.ComputeReduction < 0.3 {
		t.Fatalf("compute reduction %.3f too small", res.Report.ComputeReduction)
	}
	if res.Report.TotalReduction < 0.10 || res.Report.TotalReduction > 0.34 {
		t.Fatalf("total reduction %.3f outside plausible band", res.Report.TotalReduction)
	}
	if s := res.Render(); !strings.Contains(s, "wireless energy reduction") {
		t.Fatalf("render:\n%s", s)
	}
}

func TestGAAblation(t *testing.T) {
	r := testRunner(t)
	res, err := r.GAAblation()
	if err != nil {
		t.Fatal(err)
	}
	if res.FinalBest < res.InitialBest {
		t.Fatalf("GA regressed: %v -> %v", res.InitialBest, res.FinalBest)
	}
	if s := res.Render(); !strings.Contains(s, "GA generations") {
		t.Fatalf("render:\n%s", s)
	}
}

func TestDownsampleSweep(t *testing.T) {
	r := testRunner(t)
	rows, err := r.DownsampleSweep([]int{4, 8})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("%d rows", len(rows))
	}
	if rows[0].InputDim != 50 || rows[1].InputDim != 25 {
		t.Fatalf("dims %d/%d", rows[0].InputDim, rows[1].InputDim)
	}
	if rows[1].MatrixBytes >= rows[0].MatrixBytes {
		t.Fatal("higher downsampling must shrink the matrix")
	}
	if s := RenderDownsample(rows); !strings.Contains(s, "matrix(B)") {
		t.Fatalf("render:\n%s", s)
	}
}

func TestAlphaSensitivity(t *testing.T) {
	r := testRunner(t)
	pts, err := r.AlphaSensitivity()
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) < 50 {
		t.Fatalf("%d points", len(pts))
	}
	// Monotone trade-off along the grid.
	for i := 1; i < len(pts); i++ {
		if pts[i].ARR < pts[i-1].ARR-1e-9 {
			t.Fatalf("ARR not monotone at %d", i)
		}
		if pts[i].NDR > pts[i-1].NDR+1e-9 {
			t.Fatalf("NDR not antitone at %d", i)
		}
	}
	if s := RenderAlphaCurve(pts[:3]); !strings.Contains(s, "alpha") {
		t.Fatal("render header missing")
	}
}

func TestRunnerCachesModels(t *testing.T) {
	r := testRunner(t)
	a, _, err := r.Model(8, 4)
	if err != nil {
		t.Fatal(err)
	}
	b, _, err := r.Model(8, 4)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatal("model not cached")
	}
}

func TestHeadComparisonReduced(t *testing.T) {
	r := testRunner(t)
	res, err := r.HeadComparison([]int{8}, 3, 120)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Fuzzy) != 1 || len(res.Bitemb) != 1 {
		t.Fatalf("row counts: %d fuzzy, %d bitemb", len(res.Fuzzy), len(res.Bitemb))
	}
	fz, bt := res.Fuzzy[0], res.Bitemb[0]
	if fz.K != 8 || bt.K != 8 {
		t.Fatalf("k: fuzzy %d bitemb %d", fz.K, bt.K)
	}
	// Both heads must reach a usable record-level operating point even at
	// this tiny training scale.
	for name, row := range map[string]HeadRow{"fuzzy": fz, "bitemb": bt} {
		if row.NDR < 0.5 || row.NDR > 1 {
			t.Fatalf("%s NDR %.3f out of plausible range", name, row.NDR)
		}
		if row.ARR < 0.6 || row.ARR > 1 {
			t.Fatalf("%s ARR %.3f out of plausible range", name, row.ARR)
		}
	}
	// The point of the binary head: the model artifact must be much
	// smaller (1 bit/coefficient + thresholds vs float64 MF tables).
	if bt.ModelBytes*2 >= fz.ModelBytes {
		t.Fatalf("bitemb model %d B not meaningfully smaller than fuzzy %d B",
			bt.ModelBytes, fz.ModelBytes)
	}
	if bt.TableBytes >= fz.TableBytes {
		t.Fatalf("bitemb tables %d B not smaller than fuzzy %d B", bt.TableBytes, fz.TableBytes)
	}
	s := res.Render()
	if !strings.Contains(s, "bitemb") || !strings.Contains(s, "fuzzy") {
		t.Fatalf("render:\n%s", s)
	}
}

func TestFigure5BitembFront(t *testing.T) {
	r := testRunner(t)
	res, err := r.Figure5()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Bitemb) == 0 {
		t.Fatal("bitemb front empty")
	}
	if _, ok := NDRAtARROnFront(res.Bitemb, 0.9); !ok {
		t.Fatalf("bitemb front never reaches ARR 0.9: %+v", res.Bitemb)
	}
	if s := res.Render(); !strings.Contains(s, "bitemb front") {
		t.Fatal("render missing bitemb front")
	}
}

func TestRecordLevelEndToEnd(t *testing.T) {
	r := testRunner(t)
	res, err := r.RecordLevel(3, 120)
	if err != nil {
		t.Fatal(err)
	}
	if res.Records != 3 {
		t.Fatalf("records %d", res.Records)
	}
	if res.DetectorSensitivity < 0.9 {
		t.Fatalf("detector sensitivity %.3f", res.DetectorSensitivity)
	}
	if res.ARR < 0.7 {
		t.Fatalf("end-to-end ARR %.3f too low", res.ARR)
	}
	if res.NDR < 0.7 {
		t.Fatalf("end-to-end NDR %.3f too low", res.NDR)
	}
	if res.StoreGatedHours <= res.StoreAllHours {
		t.Fatal("gated storage must outlast store-all")
	}
	if s := res.Render(); !strings.Contains(s, "end-to-end classification") {
		t.Fatalf("render:\n%s", s)
	}
}
