package experiments

import (
	"bytes"
	"fmt"
	"strings"

	"rpbeat/internal/core"
	"rpbeat/internal/ecgsyn"
	"rpbeat/internal/fixp"
	"rpbeat/internal/wbsn"
)

// BitembModel trains (or returns the cached) binary-embedding model for the
// given geometry — the A/B counterpart of Model for the head-comparison
// drivers.
func (r *Runner) BitembModel(k, downsample int) (*core.Model, core.TrainStats, error) {
	key := [2]int{k, downsample}
	r.mu.Lock()
	if m, ok := r.bitModels[key]; ok {
		s := r.bitStats[key]
		r.mu.Unlock()
		return m, s, nil
	}
	r.mu.Unlock()
	ds, err := r.Dataset()
	if err != nil {
		return nil, core.TrainStats{}, err
	}
	m, stats, err := core.TrainBitemb(ds, r.Opts.coreConfig(k, downsample))
	if err != nil {
		return nil, stats, err
	}
	r.mu.Lock()
	r.bitModels[key] = m
	r.bitStats[key] = stats
	r.mu.Unlock()
	return m, stats, nil
}

// --- shared record-level scoring ---

// headScore accumulates the record-level counts for one classifier head over
// the shared evaluation stream.
type headScore struct {
	records  int
	seconds  float64
	annBeats int
	detected int
	matched  int

	matchedNormals, discardedNormals int
	abnormals, recognized            int
	delineated                       int
}

func (s headScore) ndr() float64 {
	if s.matchedNormals == 0 {
		return 0
	}
	return float64(s.discardedNormals) / float64(s.matchedNormals)
}

func (s headScore) arr() float64 {
	if s.abnormals == 0 {
		return 0
	}
	return float64(s.recognized) / float64(s.abnormals)
}

// score matches a record's annotations against one node's output and folds
// the counts in. Each detection is matched at most once; missed beats count
// against ARR (the honest end-to-end accounting). tol is the peak-matching
// tolerance in samples.
func (s *headScore) score(rec *ecgsyn.Record, out *wbsn.Result, tol int) {
	s.records++
	s.seconds += rec.Duration()
	s.annBeats += len(rec.Ann)
	s.detected += len(out.Beats)
	s.delineated += out.DelineatedBeats
	used := make([]bool, len(out.Beats))
	for _, a := range rec.Ann {
		best, bestDiff := -1, tol+1
		for i, b := range out.Beats {
			if used[i] {
				continue
			}
			d := b.Sample - a.Sample
			if d < 0 {
				d = -d
			}
			if d < bestDiff {
				best, bestDiff = i, d
			}
		}
		isAbnormal := a.Class != ecgsyn.ClassN
		if isAbnormal {
			s.abnormals++
		}
		if best < 0 {
			continue // missed beat: abnormal stays unrecognized
		}
		used[best] = true
		s.matched++
		dec := out.Beats[best].Decision
		if isAbnormal {
			if dec.Abnormal() {
				s.recognized++
			}
		} else {
			s.matchedNormals++
			if !dec.Abnormal() {
				s.discardedNormals++
			}
		}
	}
}

// recordSpecs is the fixed mix of subjects the record-level drivers
// evaluate: mostly-normal, ectopy-prone and LBBB records in rotation.
func (r *Runner) recordSpecs(records int, secondsEach float64) []ecgsyn.RecordSpec {
	specs := make([]ecgsyn.RecordSpec, records)
	for rec := range specs {
		spec := ecgsyn.RecordSpec{
			Name:    fmt.Sprintf("rl%02d", rec),
			Seconds: secondsEach,
			Seed:    r.Opts.Seed + uint64(rec)*7919,
		}
		switch rec % 3 {
		case 0: // mostly normal
			spec.PVCRate = 0.02
		case 1: // ectopy-prone
			spec.PVCRate = 0.18
		case 2: // LBBB subject
			spec.LBBB = true
		}
		specs[rec] = spec
	}
	return specs
}

// scoreRecords synthesizes the evaluation stream once and runs every record
// through one assembled node per head, so every head scores against the
// identical signal and annotations.
func scoreRecords(embs []*core.Embedded, specs []ecgsyn.RecordSpec) ([]headScore, error) {
	nodes := make([]*wbsn.Node, len(embs))
	for i, e := range embs {
		n, err := wbsn.NewNode(e)
		if err != nil {
			return nil, err
		}
		nodes[i] = n
	}
	scores := make([]headScore, len(embs))
	const tol = 18 // +/- 50 ms at 360 Hz
	for _, spec := range specs {
		record := ecgsyn.Synthesize(spec)
		leads := make([][]int32, ecgsyn.NumLeads)
		for l := range leads {
			leads[l] = record.Leads[l]
		}
		for i, n := range nodes {
			out, err := n.Process(leads)
			if err != nil {
				return nil, err
			}
			scores[i].score(record, out, tol)
		}
	}
	return scores, nil
}

// --- fuzzy vs bitemb A/B comparison ---

// HeadRow is one head x k operating point of the A/B comparison.
type HeadRow struct {
	K          int
	NDR, ARR   float64
	ModelBytes int // binary codec size: what a node stores and receives OTA
	TableBytes int // classifier working set on the node (tables + scratch)
}

// HeadComparisonResult is the record-level fuzzy-vs-bitemb study: both heads
// trained on the same dataset with the same GA budget, evaluated on the same
// detector output, at k in Coeffs.
type HeadComparisonResult struct {
	Records int
	Seconds float64
	Fuzzy   []HeadRow
	Bitemb  []HeadRow
}

// HeadComparison trains both heads at each coefficient count (paper
// geometry: 90 Hz windows, integer pipeline) and scores them record-level —
// the accuracy cost of the packed 1-bit head, measured next to its model
// size. Defaults: k in {8, 16, 32}, 6 records of 300 s.
func (r *Runner) HeadComparison(coeffs []int, records int, secondsEach float64) (HeadComparisonResult, error) {
	if len(coeffs) == 0 {
		coeffs = []int{8, 16, 32}
	}
	if records <= 0 {
		records = 6
	}
	if secondsEach <= 0 {
		secondsEach = 300
	}
	var res HeadComparisonResult
	specs := r.recordSpecs(records, secondsEach)
	for _, k := range coeffs {
		fm, _, err := r.Model(k, 4)
		if err != nil {
			return res, fmt.Errorf("heads k=%d fuzzy: %w", k, err)
		}
		bm, _, err := r.BitembModel(k, 4)
		if err != nil {
			return res, fmt.Errorf("heads k=%d bitemb: %w", k, err)
		}
		fe, err := fm.Quantize(fixp.MFLinear)
		if err != nil {
			return res, err
		}
		be, err := bm.Quantize(fixp.MFLinear)
		if err != nil {
			return res, err
		}
		scores, err := scoreRecords([]*core.Embedded{fe, be}, specs)
		if err != nil {
			return res, err
		}
		res.Records, res.Seconds = scores[0].records, scores[0].seconds
		fr, err := headRow(k, fm, fe, scores[0])
		if err != nil {
			return res, err
		}
		br, err := headRow(k, bm, be, scores[1])
		if err != nil {
			return res, err
		}
		res.Fuzzy = append(res.Fuzzy, fr)
		res.Bitemb = append(res.Bitemb, br)
	}
	return res, nil
}

func headRow(k int, m *core.Model, e *core.Embedded, s headScore) (HeadRow, error) {
	var bin bytes.Buffer
	if err := m.WriteBinary(&bin); err != nil {
		return HeadRow{}, err
	}
	return HeadRow{K: k, NDR: s.ndr(), ARR: s.arr(), ModelBytes: bin.Len(), TableBytes: e.MemoryBytes()}, nil
}

// Render formats the comparison as one aligned table, fuzzy and bitemb rows
// interleaved per k.
func (h HeadComparisonResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "record-level head comparison (%d records, %.0f s; missed beats count against ARR)\n",
		h.Records, h.Seconds)
	b.WriteString("   k  head        NDR%     ARR%   model B   table B\n")
	row := func(name string, r HeadRow) {
		fmt.Fprintf(&b, "%4d  %-8s %7.2f  %7.2f  %8d  %8d\n",
			r.K, name, 100*r.NDR, 100*r.ARR, r.ModelBytes, r.TableBytes)
	}
	for i := range h.Fuzzy {
		row("fuzzy", h.Fuzzy[i])
		row("bitemb", h.Bitemb[i])
	}
	return b.String()
}
