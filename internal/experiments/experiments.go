// Package experiments contains one driver per table and figure of the
// paper's evaluation (Sec. IV), shared by cmd/rpbench and the repository's
// top-level benchmarks. Each driver returns a structured result plus a
// paper-style text rendering; EXPERIMENTS.md records paper-vs-measured for
// every one of them.
package experiments

import (
	"fmt"
	"runtime"
	"strings"
	"sync"

	"rpbeat/internal/beatset"
	"rpbeat/internal/core"
	"rpbeat/internal/ecgsyn"
	"rpbeat/internal/fixp"
	"rpbeat/internal/metrics"
	"rpbeat/internal/nfc"
	"rpbeat/internal/pca"
	"rpbeat/internal/scg"
)

// Options scales the experiments. The zero value reproduces the paper's
// settings at full dataset size.
type Options struct {
	Seed uint64
	// Scale shrinks the dataset (1 or 0 = full size, Table I composition).
	Scale float64
	// PopSize/Generations set the GA budget; defaults 20/30 (paper).
	PopSize     int
	Generations int
	// SCGIters bounds NFC training; default 120.
	SCGIters int
	// MinARR is the operating constraint; default 0.97 (paper).
	MinARR float64
	// Parallel bounds worker goroutines; default NumCPU.
	Parallel int
}

func (o Options) withDefaults() Options {
	if o.PopSize <= 0 {
		o.PopSize = 20
	}
	if o.Generations <= 0 {
		o.Generations = 30
	}
	if o.SCGIters <= 0 {
		o.SCGIters = 120
	}
	if o.MinARR <= 0 {
		o.MinARR = 0.97
	}
	if o.Parallel <= 0 {
		o.Parallel = runtime.NumCPU()
	}
	if o.Seed == 0 {
		o.Seed = 20130318 // DATE'13 conference date; any fixed value works
	}
	return o
}

func (o Options) coreConfig(k, downsample int) core.Config {
	return core.Config{
		Coeffs:      k,
		Downsample:  downsample,
		PopSize:     o.PopSize,
		Generations: o.Generations,
		SCGIters:    o.SCGIters,
		MinARR:      o.MinARR,
		Seed:        o.Seed ^ uint64(k)<<32 ^ uint64(downsample),
		Parallel:    o.Parallel,
	}
}

// Runner caches the dataset and trained models across experiments so that
// `rpbench -experiment all` does not retrain for every table.
type Runner struct {
	Opts Options

	mu        sync.Mutex
	ds        *beatset.Dataset
	models    map[[2]int]*core.Model // key: {k, downsample}
	stats     map[[2]int]core.TrainStats
	bitModels map[[2]int]*core.Model // bitemb head, same keying
	bitStats  map[[2]int]core.TrainStats
}

// NewRunner builds a runner with the given options.
func NewRunner(opts Options) *Runner {
	return &Runner{
		Opts:      opts.withDefaults(),
		models:    map[[2]int]*core.Model{},
		stats:     map[[2]int]core.TrainStats{},
		bitModels: map[[2]int]*core.Model{},
		bitStats:  map[[2]int]core.TrainStats{},
	}
}

// Dataset returns the (lazily built, cached) dataset.
func (r *Runner) Dataset() (*beatset.Dataset, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.ds != nil {
		return r.ds, nil
	}
	ds, err := beatset.Build(beatset.Config{
		Seed:     r.Opts.Seed,
		Scale:    r.Opts.Scale,
		Parallel: r.Opts.Parallel,
	})
	if err != nil {
		return nil, err
	}
	r.ds = ds
	return ds, nil
}

// Model trains (or returns the cached) model for the given geometry.
func (r *Runner) Model(k, downsample int) (*core.Model, core.TrainStats, error) {
	key := [2]int{k, downsample}
	r.mu.Lock()
	if m, ok := r.models[key]; ok {
		s := r.stats[key]
		r.mu.Unlock()
		return m, s, nil
	}
	r.mu.Unlock()
	ds, err := r.Dataset()
	if err != nil {
		return nil, core.TrainStats{}, err
	}
	m, stats, err := core.Train(ds, r.Opts.coreConfig(k, downsample))
	if err != nil {
		return nil, stats, err
	}
	r.mu.Lock()
	r.models[key] = m
	r.stats[key] = stats
	r.mu.Unlock()
	return m, stats, nil
}

// --- Table I ---

// TableIResult is the dataset composition (paper Table I).
type TableIResult struct {
	Train1, Train2, Test [3]int // N, L, V order follows ecgsyn.Class
}

// TableI reports the composition of the generated splits.
func (r *Runner) TableI() (TableIResult, error) {
	ds, err := r.Dataset()
	if err != nil {
		return TableIResult{}, err
	}
	return TableIResult{
		Train1: ds.CountByClass(ds.Train1),
		Train2: ds.CountByClass(ds.Train2),
		Test:   ds.CountByClass(ds.Test),
	}, nil
}

// Render formats the result like the paper's Table I (columns N, V, L).
func (t TableIResult) Render() string {
	var b strings.Builder
	row := func(name string, c [3]int) {
		n, l, v := c[ecgsyn.ClassN], c[ecgsyn.ClassL], c[ecgsyn.ClassV]
		fmt.Fprintf(&b, "%-16s %8d %7d %7d %8d\n", name, n, v, l, n+v+l)
	}
	b.WriteString("set                     N       V       L    Total\n")
	row("training set 1", t.Train1)
	row("training set 2", t.Train2)
	row("test set", t.Test)
	return b.String()
}

// --- Table II ---

// TableIIResult holds NDR (%) per coefficient count for the three settings.
type TableIIResult struct {
	Coeffs  []int
	NDRPC   []float64 // float pipeline, full-rate windows
	NDRWBSN []float64 // integer pipeline, 4x downsampled, linear MFs
	PCAPC   []float64 // PCA coefficients, float pipeline
	// AchievedARR records the ARR at each reported operating point.
	ARRPC, ARRWBSN, ARRPCA []float64
}

// TableII reproduces the coefficient-count study: NDR on the test set at a
// minimum ARR of 97%, for k in coeffs (paper: 8, 16, 32).
func (r *Runner) TableII(coeffs []int) (TableIIResult, error) {
	if len(coeffs) == 0 {
		coeffs = []int{8, 16, 32}
	}
	ds, err := r.Dataset()
	if err != nil {
		return TableIIResult{}, err
	}
	res := TableIIResult{Coeffs: coeffs}
	for _, k := range coeffs {
		// Row 1: RP + float NFC on full-rate windows.
		m, _, err := r.Model(k, 1)
		if err != nil {
			return res, fmt.Errorf("table2 k=%d float: %w", k, err)
		}
		pt, err := operatingPoint(m.Evaluate(ds, ds.Test), r.Opts.MinARR)
		if err != nil {
			return res, fmt.Errorf("table2 k=%d float: %w", k, err)
		}
		res.NDRPC = append(res.NDRPC, 100*pt.NDR)
		res.ARRPC = append(res.ARRPC, 100*pt.ARR)

		// Row 2: embedded pipeline (90 Hz windows, packed matrix, linear
		// MFs, integer arithmetic).
		mw, _, err := r.Model(k, 4)
		if err != nil {
			return res, fmt.Errorf("table2 k=%d wbsn: %w", k, err)
		}
		emb, err := mw.Quantize(fixp.MFLinear)
		if err != nil {
			return res, err
		}
		pt, err = operatingPoint(emb.Evaluate(ds, ds.Test), r.Opts.MinARR)
		if err != nil {
			return res, fmt.Errorf("table2 k=%d wbsn: %w", k, err)
		}
		res.NDRWBSN = append(res.NDRWBSN, 100*pt.NDR)
		res.ARRWBSN = append(res.ARRWBSN, 100*pt.ARR)

		// Row 3: PCA baseline (off-line, float).
		pt, err = r.pcaPoint(ds, k)
		if err != nil {
			return res, fmt.Errorf("table2 k=%d pca: %w", k, err)
		}
		res.PCAPC = append(res.PCAPC, 100*pt.NDR)
		res.ARRPCA = append(res.ARRPCA, 100*pt.ARR)
	}
	return res, nil
}

// operatingPoint finds the Table II operating point. When the ARR target is
// unreachable even at α = 1 (possible in the integer pipeline when fuzzy
// values collapse to zero for a few beats), it reports the best achievable
// point instead of failing — the rendered ARR column makes the shortfall
// visible.
func operatingPoint(evals []metrics.Eval, minARR float64) (metrics.Point, error) {
	pt, _, err := metrics.NDRAtARR(evals, minARR)
	if err != nil && pt.ARR > 0 {
		return pt, nil
	}
	return pt, err
}

// pcaPoint trains the NFC on PCA coefficients (fitted on training set 1)
// and evaluates the test split, mirroring the RP fitness path.
func (r *Runner) pcaPoint(ds *beatset.Dataset, k int) (metrics.Point, error) {
	train1 := windowsOf(ds, ds.Train1, 1)
	proj, err := pca.Fit(train1, k)
	if err != nil {
		return metrics.Point{}, err
	}
	project := func(idx []int) [][]float64 {
		u := make([][]float64, len(idx))
		for i, b := range idx {
			u[i] = proj.Project(ds.FloatWindow(b, 1))
		}
		return u
	}
	u1 := project(ds.Train1)
	labels1 := ds.Labels(ds.Train1)
	ts := &nfc.TrainingSet{U: u1, Label: labels1,
		Weight: [nfc.NumClasses]float64{nfc.IdxN: 1, nfc.IdxL: 3, nfc.IdxV: 3}}
	params := nfc.InitFromData(k, u1, labels1)
	optRes, err := scg.Minimize(scg.Objective(nfc.Objective(k, ts)), params.ToVector(),
		scg.Options{MaxIter: r.Opts.SCGIters})
	if err != nil {
		return metrics.Point{}, err
	}
	params.FromVector(optRes.X)

	labels := ds.Labels(ds.Test)
	evals := make([]metrics.Eval, len(ds.Test))
	for i, b := range ds.Test {
		f := params.Fuzzy(proj.Project(ds.FloatWindow(b, 1)))
		evals[i] = metrics.Eval{Label: labels[i], F: f}
	}
	return operatingPoint(evals, r.Opts.MinARR)
}

func windowsOf(ds *beatset.Dataset, idx []int, down int) [][]float64 {
	out := make([][]float64, len(idx))
	for i, b := range idx {
		out[i] = ds.FloatWindow(b, down)
	}
	return out
}

// Render formats the result like the paper's Table II.
func (t TableIIResult) Render() string {
	var b strings.Builder
	b.WriteString("coefficients ")
	for _, k := range t.Coeffs {
		fmt.Fprintf(&b, "%8d", k)
	}
	b.WriteString("\n")
	row := func(name string, vals []float64) {
		fmt.Fprintf(&b, "%-13s", name)
		for _, v := range vals {
			fmt.Fprintf(&b, "%8.2f", v)
		}
		b.WriteString("\n")
	}
	row("NDR-PC", t.NDRPC)
	row("NDR-WBSN", t.NDRWBSN)
	row("PCA-PC", t.PCAPC)
	b.WriteString("achieved ARR at the reported operating points:\n")
	row("  ARR-PC", t.ARRPC)
	row("  ARR-WBSN", t.ARRWBSN)
	row("  ARR-PCA", t.ARRPCA)
	return b.String()
}
