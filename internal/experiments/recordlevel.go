package experiments

import (
	"fmt"
	"strings"

	"rpbeat/internal/ecgsyn"
	"rpbeat/internal/fixp"
	"rpbeat/internal/store"
	"rpbeat/internal/wbsn"
)

// RecordLevelResult is the end-to-end (record-driven) evaluation: unlike the
// Table II beat sets, beats here are located by the node's own wavelet
// detector, so detector misses and localization jitter — present on the
// real WBSN — affect the figures.
type RecordLevelResult struct {
	Records  int
	Seconds  float64 // total signal evaluated
	AnnBeats int     // annotated beats
	Detected int     // detector output count

	DetectorSensitivity float64 // matched annotations / annotations
	DetectorPPV         float64 // matched detections / detections

	NDR float64 // discarded true normals / matched true normals
	ARR float64 // recognized true abnormals / true abnormals (missed = not recognized)

	ActivationRate float64 // delineations / detected beats

	// Storage endurance of a 1 MiB archive under the two policies of the
	// introduction's second scenario.
	StoreAllHours, StoreGatedHours float64
}

// RecordLevel synthesizes full records (a mix of normal, ectopic and LBBB
// subjects), runs the assembled node (filter → detect → classify → gated
// delineation) and scores the decisions against the generator's
// annotations. Missed beats count against ARR — the honest end-to-end
// accounting.
func (r *Runner) RecordLevel(records int, secondsEach float64) (RecordLevelResult, error) {
	var res RecordLevelResult
	if records <= 0 {
		records = 6
	}
	if secondsEach <= 0 {
		secondsEach = 300
	}
	m, _, err := r.Model(8, 4)
	if err != nil {
		return res, err
	}
	emb, err := m.Quantize(fixp.MFLinear)
	if err != nil {
		return res, err
	}
	node, err := wbsn.NewNode(emb)
	if err != nil {
		return res, err
	}

	var matchedNormals, discardedNormals int
	var abnormals, recognized int
	var matched int
	tol := 18 // +/- 50 ms at 360 Hz

	for rec := 0; rec < records; rec++ {
		spec := ecgsyn.RecordSpec{
			Name:    fmt.Sprintf("rl%02d", rec),
			Seconds: secondsEach,
			Seed:    r.Opts.Seed + uint64(rec)*7919,
		}
		switch rec % 3 {
		case 0: // mostly normal
			spec.PVCRate = 0.02
		case 1: // ectopy-prone
			spec.PVCRate = 0.18
		case 2: // LBBB subject
			spec.LBBB = true
		}
		record := ecgsyn.Synthesize(spec)
		leads := make([][]int32, ecgsyn.NumLeads)
		for l := range leads {
			leads[l] = record.Leads[l]
		}
		out, err := node.Process(leads)
		if err != nil {
			return res, err
		}
		res.Records++
		res.Seconds += record.Duration()
		res.AnnBeats += len(record.Ann)
		res.Detected += len(out.Beats)
		res.ActivationRate += float64(out.DelineatedBeats)

		// Match annotations to detections (each detection used once).
		used := make([]bool, len(out.Beats))
		for _, a := range record.Ann {
			best, bestDiff := -1, tol+1
			for i, b := range out.Beats {
				if used[i] {
					continue
				}
				d := b.Sample - a.Sample
				if d < 0 {
					d = -d
				}
				if d < bestDiff {
					best, bestDiff = i, d
				}
			}
			isAbnormal := a.Class != ecgsyn.ClassN
			if isAbnormal {
				abnormals++
			}
			if best < 0 {
				continue // missed beat: abnormal stays unrecognized
			}
			used[best] = true
			matched++
			dec := out.Beats[best].Decision
			if isAbnormal {
				if dec.Abnormal() {
					recognized++
				}
			} else {
				matchedNormals++
				if !dec.Abnormal() {
					discardedNormals++
				}
			}
		}
	}

	if res.AnnBeats > 0 {
		res.DetectorSensitivity = float64(matched) / float64(res.AnnBeats)
	}
	if res.Detected > 0 {
		res.DetectorPPV = float64(matched) / float64(res.Detected)
		res.ActivationRate /= float64(res.Detected)
	}
	if matchedNormals > 0 {
		res.NDR = float64(discardedNormals) / float64(matchedNormals)
	}
	if abnormals > 0 {
		res.ARR = float64(recognized) / float64(abnormals)
	}

	// Storage scenario: 1 MiB archive, observed beat rate, observed full-
	// report fraction.
	beatsPerSec := float64(res.Detected) / res.Seconds
	allSec, gatedSec, err := store.Endurance(1<<20, beatsPerSec, res.ActivationRate)
	if err == nil {
		res.StoreAllHours = allSec / 3600
		res.StoreGatedHours = gatedSec / 3600
	}
	return res, nil
}

// Render summarizes the record-level evaluation.
func (r RecordLevelResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "records: %d (%.0f s total), %d annotated beats, %d detected\n",
		r.Records, r.Seconds, r.AnnBeats, r.Detected)
	fmt.Fprintf(&b, "detector: sensitivity %.2f%%, PPV %.2f%%\n",
		100*r.DetectorSensitivity, 100*r.DetectorPPV)
	fmt.Fprintf(&b, "end-to-end classification: NDR %.2f%%  ARR %.2f%%  (activation %.1f%%)\n",
		100*r.NDR, 100*r.ARR, 100*r.ActivationRate)
	fmt.Fprintf(&b, "1 MiB beat archive lasts: %.1f h storing all beats, %.1f h gated\n",
		r.StoreAllHours, r.StoreGatedHours)
	return b.String()
}
