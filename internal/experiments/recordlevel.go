package experiments

import (
	"fmt"
	"strings"

	"rpbeat/internal/core"
	"rpbeat/internal/fixp"
	"rpbeat/internal/store"
)

// RecordLevelResult is the end-to-end (record-driven) evaluation: unlike the
// Table II beat sets, beats here are located by the node's own wavelet
// detector, so detector misses and localization jitter — present on the
// real WBSN — affect the figures.
type RecordLevelResult struct {
	Records  int
	Seconds  float64 // total signal evaluated
	AnnBeats int     // annotated beats
	Detected int     // detector output count

	DetectorSensitivity float64 // matched annotations / annotations
	DetectorPPV         float64 // matched detections / detections

	NDR float64 // discarded true normals / matched true normals
	ARR float64 // recognized true abnormals / true abnormals (missed = not recognized)

	ActivationRate float64 // delineations / detected beats

	// Storage endurance of a 1 MiB archive under the two policies of the
	// introduction's second scenario.
	StoreAllHours, StoreGatedHours float64
}

// RecordLevel synthesizes full records (a mix of normal, ectopic and LBBB
// subjects), runs the assembled node (filter → detect → classify → gated
// delineation) and scores the decisions against the generator's
// annotations. Missed beats count against ARR — the honest end-to-end
// accounting.
func (r *Runner) RecordLevel(records int, secondsEach float64) (RecordLevelResult, error) {
	var res RecordLevelResult
	if records <= 0 {
		records = 6
	}
	if secondsEach <= 0 {
		secondsEach = 300
	}
	m, _, err := r.Model(8, 4)
	if err != nil {
		return res, err
	}
	emb, err := m.Quantize(fixp.MFLinear)
	if err != nil {
		return res, err
	}
	scores, err := scoreRecords([]*core.Embedded{emb}, r.recordSpecs(records, secondsEach))
	if err != nil {
		return res, err
	}
	s := scores[0]
	res.Records = s.records
	res.Seconds = s.seconds
	res.AnnBeats = s.annBeats
	res.Detected = s.detected
	if res.AnnBeats > 0 {
		res.DetectorSensitivity = float64(s.matched) / float64(res.AnnBeats)
	}
	if res.Detected > 0 {
		res.DetectorPPV = float64(s.matched) / float64(res.Detected)
		res.ActivationRate = float64(s.delineated) / float64(res.Detected)
	}
	res.NDR = s.ndr()
	res.ARR = s.arr()

	// Storage scenario: 1 MiB archive, observed beat rate, observed full-
	// report fraction.
	beatsPerSec := float64(res.Detected) / res.Seconds
	allSec, gatedSec, err := store.Endurance(1<<20, beatsPerSec, res.ActivationRate)
	if err == nil {
		res.StoreAllHours = allSec / 3600
		res.StoreGatedHours = gatedSec / 3600
	}
	return res, nil
}

// Render summarizes the record-level evaluation.
func (r RecordLevelResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "records: %d (%.0f s total), %d annotated beats, %d detected\n",
		r.Records, r.Seconds, r.AnnBeats, r.Detected)
	fmt.Fprintf(&b, "detector: sensitivity %.2f%%, PPV %.2f%%\n",
		100*r.DetectorSensitivity, 100*r.DetectorPPV)
	fmt.Fprintf(&b, "end-to-end classification: NDR %.2f%%  ARR %.2f%%  (activation %.1f%%)\n",
		100*r.NDR, 100*r.ARR, 100*r.ActivationRate)
	fmt.Fprintf(&b, "1 MiB beat archive lasts: %.1f h storing all beats, %.1f h gated\n",
		r.StoreAllHours, r.StoreGatedHours)
	return b.String()
}
