package experiments

import (
	"fmt"
	"strings"

	"rpbeat/internal/ecgsyn"
	"rpbeat/internal/energy"
	"rpbeat/internal/fixp"
	"rpbeat/internal/metrics"
	"rpbeat/internal/nfc"
	"rpbeat/internal/platform"
)

// --- Figure 4: membership-function shapes ---

// Figure4Point is one abscissa of the MF-shape comparison.
type Figure4Point struct {
	X          float64 // distance from the center in units of sigma
	Gaussian   float64 // grades normalized to [0, 1]
	Linear     float64
	Triangular float64
}

// Figure4 samples the three membership shapes over [-5σ, 0] (the paper plots
// [-4.7σ, 0], i.e. [-2S, 0]), for a representative sigma.
func Figure4() []Figure4Point {
	const sigma = 1000.0
	gauss := fixp.NewIntMF(fixp.MFGaussianRef, 0, sigma)
	lin := fixp.NewIntMF(fixp.MFLinear, 0, sigma)
	tri := fixp.NewIntMF(fixp.MFTriangular, 0, sigma)
	var pts []Figure4Point
	for xs := -5.0; xs <= 0.001; xs += 0.1 {
		x := int32(xs * sigma)
		pts = append(pts, Figure4Point{
			X:          xs,
			Gaussian:   float64(gauss.Eval(x)) / fixp.GradeMax,
			Linear:     float64(lin.Eval(x)) / fixp.GradeMax,
			Triangular: float64(tri.Eval(x)) / fixp.GradeMax,
		})
	}
	return pts
}

// RenderFigure4 prints the series as aligned columns (CSV-like, suitable for
// replotting).
func RenderFigure4(pts []Figure4Point) string {
	var b strings.Builder
	b.WriteString("x/sigma   gaussian    linear  triangular\n")
	for _, p := range pts {
		fmt.Fprintf(&b, "%7.2f %10.4f %9.4f %11.4f\n", p.X, p.Gaussian, p.Linear, p.Triangular)
	}
	return b.String()
}

// --- Figure 5: NDR/ARR Pareto fronts per MF shape ---

// Figure5Result holds one Pareto front per membership shape, plus the
// binary-embedding head's front as the A/B axis: the same α sweep over the
// popcount head's similarities, so the speed-for-accuracy trade is a
// measured curve next to the fuzzy shapes.
type Figure5Result struct {
	Gaussian   []metrics.Point
	Linear     []metrics.Point
	Triangular []metrics.Point
	Bitemb     []metrics.Point
}

// Figure5 reproduces the MF-linearization study: one WBSN-configured model
// (8 coefficients, 50 samples at 90 Hz), quantized with each membership
// shape, α_test swept over the test set, Pareto fronts extracted.
func (r *Runner) Figure5() (Figure5Result, error) {
	var res Figure5Result
	ds, err := r.Dataset()
	if err != nil {
		return res, err
	}
	m, _, err := r.Model(8, 4)
	if err != nil {
		return res, err
	}
	alphas := alphaGrid()
	front := func(kind fixp.MFKind) ([]metrics.Point, error) {
		emb, err := m.Quantize(kind)
		if err != nil {
			return nil, err
		}
		evals := emb.Evaluate(ds, ds.Test)
		return metrics.Pareto(metrics.Curve(evals, alphas)), nil
	}
	// The gaussian curve is the PC (floating-point) implementation, as in
	// the paper; the approximated shapes run through the integer pipeline.
	res.Gaussian = metrics.Pareto(metrics.Curve(m.Evaluate(ds, ds.Test), alphas))
	if res.Linear, err = front(fixp.MFLinear); err != nil {
		return res, err
	}
	if res.Triangular, err = front(fixp.MFTriangular); err != nil {
		return res, err
	}
	// The bitemb front: same geometry, packed 1-bit head.
	bm, _, err := r.BitembModel(8, 4)
	if err != nil {
		return res, err
	}
	be, err := bm.Quantize(fixp.MFLinear)
	if err != nil {
		return res, err
	}
	res.Bitemb = metrics.Pareto(metrics.Curve(be.Evaluate(ds, ds.Test), alphas))
	return res, nil
}

// alphaGrid spans the defuzzification coefficient densely near 0 (where
// high-NDR operating points live) and geometrically toward 1 (the margins
// (M1-M2)/S of decisively classified beats cluster near 1, so the high-ARR
// end of the trade-off needs 1-10^-k resolution).
func alphaGrid() []float64 {
	var g []float64
	for a := 0.0; a < 0.02; a += 0.0005 {
		g = append(g, a)
	}
	for a := 0.02; a < 0.2; a += 0.005 {
		g = append(g, a)
	}
	for a := 0.2; a < 0.95; a += 0.025 {
		g = append(g, a)
	}
	for eps := 0.05; eps > 1e-12; eps /= 2 {
		g = append(g, 1-eps)
	}
	g = append(g, 1)
	return g
}

// Render formats the three fronts as aligned columns.
func (f Figure5Result) Render() string {
	var b strings.Builder
	dump := func(name string, pts []metrics.Point) {
		fmt.Fprintf(&b, "# %s front (ARR%%  NDR%%  alpha)\n", name)
		for _, p := range pts {
			fmt.Fprintf(&b, "%8.3f %8.3f %8.4f\n", 100*p.ARR, 100*p.NDR, p.Alpha)
		}
	}
	dump("gaussian", f.Gaussian)
	dump("linear", f.Linear)
	dump("triangular", f.Triangular)
	dump("bitemb", f.Bitemb)
	return b.String()
}

// NDRAtARROnFront interpolates a front at the requested ARR level (the
// paper's reading of Fig. 5: "it is possible to correctly recognize 98.5%
// of abnormal beats, with a NDR of 87%").
func NDRAtARROnFront(front []metrics.Point, arr float64) (float64, bool) {
	best := -1.0
	for _, p := range front {
		if p.ARR >= arr && p.NDR > best {
			best = p.NDR
		}
	}
	if best < 0 {
		return 0, false
	}
	return best, true
}

// --- Table III: code size and duty cycle ---

// TableIIIResult pairs the modeled rows with the measured activation rate.
type TableIIIResult struct {
	Rows           []platform.StageReport
	ActivationRate float64 // fraction of test beats flagged abnormal
	MemoryOK       bool
}

// TableIII reproduces the run-time/memory evaluation: the activation rate
// comes from the trained embedded classifier on the test set (at its ARR ≥
// 97% operating point), the duty cycles from the icyflex cost model, and
// the classifier data bytes from the actual artifact.
func (r *Runner) TableIII() (TableIIIResult, error) {
	var res TableIIIResult
	ds, err := r.Dataset()
	if err != nil {
		return res, err
	}
	m, _, err := r.Model(8, 4)
	if err != nil {
		return res, err
	}
	emb, err := m.Quantize(fixp.MFLinear)
	if err != nil {
		return res, err
	}
	evals := emb.Evaluate(ds, ds.Test)
	// Use the best achievable point when the target ARR cannot be met
	// exactly (the activation rate is what Table III needs).
	alpha, _, err := metrics.MinAlphaForARR(evals, r.Opts.MinARR)
	if err != nil {
		return res, err
	}
	_, conf := metrics.Evaluate(evals, alpha)
	total := conf.Total()
	activated := total - conf[0][nfc.DecideN] // everything not discarded as N
	res.ActivationRate = float64(activated) / float64(total)

	res.Rows = platform.TableIII(platform.SystemParams{
		Fs:             360,
		BeatsPerSec:    1.2,
		ActivationRate: res.ActivationRate,
		K:              emb.K,
		D:              emb.D,
		ClassifierData: emb.MemoryBytes(),
		Leads:          ecgsyn.NumLeads,
		Model:          platform.Icyflex(),
	})
	res.MemoryOK = platform.FitsRAM(res.Rows[3].CodeBytes)
	return res, nil
}

// Render formats the rows like the paper's Table III.
func (t TableIIIResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-32s %12s   %s\n", "", "Code Size", "Duty Cycle")
	for _, r := range t.Rows {
		b.WriteString(r.String())
		b.WriteString("\n")
	}
	fmt.Fprintf(&b, "(delineation activated for %.1f%% of beats; fits 96 KB RAM: %v)\n",
		100*t.ActivationRate, t.MemoryOK)
	return b.String()
}

// --- Sec. IV-E: energy ---

// EnergyResult wraps the Sec. IV-E report with its inputs.
type EnergyResult struct {
	Report         energy.Report
	Traffic        energy.TrafficCounts
	DutyGated      float64
	DutyAlwaysOn   float64
	ActivationRate float64
}

// Energy reproduces the energy-efficiency analysis: traffic counts from the
// classifier's decisions over the test set, compute duty cycles from Table
// III, combined via the documented budget shares.
func (r *Runner) Energy() (EnergyResult, error) {
	var res EnergyResult
	ds, err := r.Dataset()
	if err != nil {
		return res, err
	}
	m, _, err := r.Model(8, 4)
	if err != nil {
		return res, err
	}
	emb, err := m.Quantize(fixp.MFLinear)
	if err != nil {
		return res, err
	}
	evals := emb.Evaluate(ds, ds.Test)
	alpha, _, err := metrics.MinAlphaForARR(evals, r.Opts.MinARR)
	if err != nil {
		return res, err
	}
	_, conf := metrics.Evaluate(evals, alpha)
	total := conf.Total()
	discarded := conf[0][nfc.DecideN]
	res.Traffic = energy.TrafficCounts{
		NormalDiscarded: discarded,
		FullReports:     total - discarded,
	}

	t3, err := r.TableIII()
	if err != nil {
		return res, err
	}
	res.DutyGated = t3.Rows[3].Duty
	res.DutyAlwaysOn = t3.Rows[2].Duty
	res.ActivationRate = t3.ActivationRate

	// Stream duration: beats at the nominal 1.2 beats/s.
	seconds := float64(total) / 1.2
	res.Report, err = energy.Analyze(energy.Params{
		Traffic:       res.Traffic,
		StreamSeconds: seconds,
		DutyGated:     res.DutyGated,
		DutyAlwaysOn:  res.DutyAlwaysOn,
	})
	return res, err
}

// Render summarizes the energy findings.
func (e EnergyResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "beats: %d (%d reported peak-only, %d full fiducials)\n",
		e.Traffic.Total(), e.Traffic.NormalDiscarded, e.Traffic.FullReports)
	fmt.Fprintf(&b, "wireless energy reduction:   %5.1f%%  (paper: 68%%)\n", 100*e.Report.RadioReduction)
	fmt.Fprintf(&b, "bio-signal analysis savings: %5.1f%%  (paper: 63%%)\n", 100*e.Report.ComputeReduction)
	fmt.Fprintf(&b, "estimated total node energy: %5.1f%%  (paper: ~23%%)\n", 100*e.Report.TotalReduction)
	return b.String()
}
