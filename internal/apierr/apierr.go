// Package apierr is the service's error vocabulary: every failure a client
// can observe is an *Error carrying a stable machine-readable code, a human
// message and the HTTP status the serving layer renders it with. The codes
// are the API contract — internal/serve turns any error reaching a handler
// into the uniform JSON body
//
//	{"error":{"code":"model_not_found","message":"..."}}
//
// so clients switch on Code, never on message text. Packages below the HTTP
// layer (internal/catalog, internal/pipeline) return *Error directly for
// conditions a client caused; anything else is wrapped as CodeInternal at
// the boundary.
package apierr

import (
	"context"
	"errors"
	"fmt"
	"net/http"
)

// Code identifies one failure class of the API contract.
type Code string

// The API error codes. Stable: clients are expected to switch on these.
const (
	// CodeModelNotFound: the model reference does not resolve to a catalog
	// entry (unknown name, unknown version, or no default configured).
	CodeModelNotFound Code = "model_not_found"
	// CodeModelExists: an upload is byte-identical (same digest) to a
	// version the catalog already holds for that name.
	CodeModelExists Code = "model_exists"
	// CodeStreamOverloaded: a stream's input queue is full; the producer
	// outruns the worker pool and should back off.
	CodeStreamOverloaded Code = "stream_overloaded"
	// CodeServerOverloaded: the server as a whole is at capacity (stream
	// slots exhausted, shed ladder engaged). The request was refused before
	// any work was done; clients should back off, or degrade a stream
	// workload to batch /v1/classify requests, which stay admitted longer.
	CodeServerOverloaded Code = "server_overloaded"
	// CodeRateLimited: the tenant exceeded its request rate budget. Retry
	// after the Retry-After delay.
	CodeRateLimited Code = "rate_limited"
	// CodeShuttingDown: the server is draining for shutdown; the request (or
	// Send) was refused so in-flight work can finish. Retry against another
	// replica or after the restart.
	CodeShuttingDown Code = "shutting_down"
	// CodeBadInput: the request is malformed (bad JSON, bad model
	// reference syntax, empty samples, invalid model bytes, ...).
	CodeBadInput Code = "bad_input"
	// CodeMethodNotAllowed: the path exists but not with this HTTP method.
	CodeMethodNotAllowed Code = "method_not_allowed"
	// CodeNotFound: no such route (or resource kind) at all.
	CodeNotFound Code = "not_found"
	// CodePayloadTooLarge: the request body exceeds the endpoint's limit.
	CodePayloadTooLarge Code = "payload_too_large"
	// CodeCanceled: the request context was canceled or timed out before
	// the work finished.
	CodeCanceled Code = "canceled"
	// CodeInternal: an unexpected server-side failure.
	CodeInternal Code = "internal"
)

// httpStatus maps each code to the status the HTTP layer writes.
// CodeCanceled uses 499 (client closed request, the de-facto convention).
var httpStatus = map[Code]int{
	CodeModelNotFound:    http.StatusNotFound,
	CodeModelExists:      http.StatusConflict,
	CodeStreamOverloaded: http.StatusServiceUnavailable,
	CodeServerOverloaded: http.StatusServiceUnavailable,
	CodeRateLimited:      http.StatusTooManyRequests,
	CodeShuttingDown:     http.StatusServiceUnavailable,
	CodeBadInput:         http.StatusBadRequest,
	CodeMethodNotAllowed: http.StatusMethodNotAllowed,
	CodeNotFound:         http.StatusNotFound,
	CodePayloadTooLarge:  http.StatusRequestEntityTooLarge,
	CodeCanceled:         499,
	CodeInternal:         http.StatusInternalServerError,
}

// Error is one typed API failure.
type Error struct {
	Code    Code   `json:"code"`
	Message string `json:"message"`
}

// New builds an *Error with a formatted message.
func New(code Code, format string, args ...any) *Error {
	return &Error{Code: code, Message: fmt.Sprintf(format, args...)}
}

// Error implements the error interface.
func (e *Error) Error() string { return string(e.Code) + ": " + e.Message }

// HTTPStatus returns the status code the error renders with.
func (e *Error) HTTPStatus() int {
	if s, ok := httpStatus[e.Code]; ok {
		return s
	}
	return http.StatusInternalServerError
}

// Retryable reports whether the failure is a transient capacity condition —
// overload, rate limiting, shutdown drain — that a client should retry after
// a short delay. The serving layer adds a Retry-After header exactly for
// these codes.
func (e *Error) Retryable() bool {
	switch e.Code {
	case CodeStreamOverloaded, CodeServerOverloaded, CodeRateLimited, CodeShuttingDown:
		return true
	}
	return false
}

// From coerces any error to an *Error: typed errors pass through (also when
// wrapped), context cancellation/timeout becomes CodeCanceled, and anything
// else is CodeInternal. From(nil) is nil.
func From(err error) *Error {
	if err == nil {
		return nil
	}
	var ae *Error
	if errors.As(err, &ae) {
		return ae
	}
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return New(CodeCanceled, "%v", err)
	}
	return New(CodeInternal, "%v", err)
}

// IsCode reports whether err is (or wraps) an *Error with the given code.
func IsCode(err error, code Code) bool {
	var ae *Error
	return errors.As(err, &ae) && ae.Code == code
}
