package apierr

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"testing"
)

func TestErrorFormatting(t *testing.T) {
	err := New(CodeModelNotFound, "model %q not found", "ecg@v3")
	if err.Error() != `model_not_found: model "ecg@v3" not found` {
		t.Fatalf("Error() = %q", err.Error())
	}
	if err.HTTPStatus() != http.StatusNotFound {
		t.Fatalf("HTTPStatus() = %d", err.HTTPStatus())
	}
}

func TestHTTPStatusCovered(t *testing.T) {
	codes := []Code{
		CodeModelNotFound, CodeModelExists, CodeStreamOverloaded,
		CodeBadInput, CodeMethodNotAllowed, CodeNotFound,
		CodePayloadTooLarge, CodeCanceled, CodeInternal,
	}
	for _, c := range codes {
		if New(c, "x").HTTPStatus() == 0 {
			t.Fatalf("code %q has no HTTP status", c)
		}
	}
	if New(Code("made_up"), "x").HTTPStatus() != http.StatusInternalServerError {
		t.Fatal("unknown code should default to 500")
	}
}

func TestFrom(t *testing.T) {
	if From(nil) != nil {
		t.Fatal("From(nil) should be nil")
	}
	typed := New(CodeModelExists, "dup")
	if got := From(typed); got != typed {
		t.Fatal("typed error should pass through unchanged")
	}
	wrapped := fmt.Errorf("put: %w", typed)
	if got := From(wrapped); got.Code != CodeModelExists {
		t.Fatalf("wrapped typed error lost its code: %+v", got)
	}
	if got := From(context.Canceled); got.Code != CodeCanceled {
		t.Fatalf("context.Canceled -> %q", got.Code)
	}
	if got := From(context.DeadlineExceeded); got.Code != CodeCanceled {
		t.Fatalf("DeadlineExceeded -> %q", got.Code)
	}
	if got := From(errors.New("boom")); got.Code != CodeInternal {
		t.Fatalf("plain error -> %q", got.Code)
	}
}

func TestIsCode(t *testing.T) {
	err := fmt.Errorf("wrap: %w", New(CodeStreamOverloaded, "queue full"))
	if !IsCode(err, CodeStreamOverloaded) {
		t.Fatal("IsCode should see through wrapping")
	}
	if IsCode(err, CodeBadInput) {
		t.Fatal("IsCode matched the wrong code")
	}
	if IsCode(errors.New("plain"), CodeInternal) {
		t.Fatal("plain errors carry no code")
	}
}
