package sigdsp

// Streaming versions of the two remaining batch front-end operators: the
// complete ECG filter (noise suppression + baseline removal, the software
// equivalent of FilterECG) and the à trous dyadic wavelet transform that
// feeds R-peak detection. Together with StreamMorph/StreamFilter these make
// the entire sub-system (1) front end runnable one ADC sample at a time
// with bounded memory — the substrate of internal/pipeline.
//
// Bit-identity contract: every operator here reproduces its batch
// counterpart exactly — including the left signal border, where the batch
// operators shrink their windows (a trailing window over the first samples
// covers exactly the same clipped range) or replicate the edge sample
// (StreamDWT memoizes the first sample of each level). The only divergence
// is the right border: a stream cannot see future samples, so the final
// Delay() outputs of a record are never emitted and must be handled by the
// caller's flush policy.

// StreamECGFilter is the streaming form of FilterECG: morphological noise
// suppression (the averaged open-close / close-open pair) followed by
// baseline-wander removal, with the raw-path delay line needed to align the
// final subtraction. Output sample i is emitted after input sample
// i + Delay() arrives and is bit-identical to FilterECG(x, cfg)[i].
type StreamECGFilter struct {
	// Noise suppression: two parallel 4-stage chains over the same input.
	// oc = Close(Open(x,k),k) = Erode,Dilate,Dilate,Erode;
	// co = Open(Close(x,k),k) = Dilate,Erode,Erode,Dilate.
	oc, co []*StreamMorph
	// Baseline estimation over the suppressed signal:
	// Close(Open(y,openLen),closeLen) = Erode,Dilate (open) then
	// Dilate,Erode (close).
	base []*StreamMorph
	// supRing delays the suppressed signal by the baseline-cascade delay so
	// the subtraction y - baseline is index-aligned.
	supRing []float64
	supN    int
	baseDel int
	total   int
}

// NewStreamECGFilter builds the streaming front end for cfg.
func NewStreamECGFilter(cfg BaselineConfig) *StreamECGFilter {
	k := oddAtLeast(cfg.NoiseElem, 3)
	openL, closeL := cfg.openLen(), cfg.closeLen()
	f := &StreamECGFilter{
		oc: []*StreamMorph{
			NewStreamErode(k), NewStreamDilate(k),
			NewStreamDilate(k), NewStreamErode(k),
		},
		co: []*StreamMorph{
			NewStreamDilate(k), NewStreamErode(k),
			NewStreamErode(k), NewStreamDilate(k),
		},
		base: []*StreamMorph{
			NewStreamErode(openL), NewStreamDilate(openL),
			NewStreamDilate(closeL), NewStreamErode(closeL),
		},
	}
	for _, s := range f.base {
		f.baseDel += s.Delay()
	}
	noiseDel := 0
	for _, s := range f.oc {
		noiseDel += s.Delay()
	}
	f.total = noiseDel + f.baseDel
	f.supRing = make([]float64, f.baseDel+1)
	return f
}

// Delay returns the filter's group delay: output sample i becomes available
// once input sample i+Delay() has been consumed.
func (f *StreamECGFilter) Delay() int { return f.total }

func pushChain(stages []*StreamMorph, x float64) (float64, bool) {
	v, ok := x, true
	for _, s := range stages {
		v, ok = s.Push(v)
		if !ok {
			return 0, false
		}
	}
	return v, true
}

// Push consumes one raw sample and, once the cascade is primed, emits one
// filtered sample (aligned to input index n - Delay()).
func (f *StreamECGFilter) Push(x float64) (float64, bool) {
	a, okA := pushChain(f.oc, x)
	b, okB := pushChain(f.co, x)
	if !okA || !okB { // the chains share stage lengths, so okA == okB
		return 0, false
	}
	sup := 0.5 * (a + b)

	m := f.supN
	f.supRing[m%len(f.supRing)] = sup
	f.supN++
	bl, ok := pushChain(f.base, sup)
	if !ok {
		return 0, false
	}
	i := m - f.baseDel
	return f.supRing[i%len(f.supRing)] - bl, true
}

// streamDWTLevel computes one à trous level as a stream: given the level's
// approximation signal a (arriving one sample at a time), it emits the
// recentered detail sample w[i] and the next-level approximation sample,
// reproducing AtrousDWT exactly (the left border replicates a[0]; the right
// border is never reached by a stream).
type streamDWTLevel struct {
	gap, half int
	buf       []float64
	n         int // input samples consumed
	out       int // next output index
	first     float64
	hasFirst  bool
}

func newStreamDWTLevel(level int) *streamDWTLevel {
	gap := 1 << level
	return &streamDWTLevel{gap: gap, half: gap / 2, buf: make([]float64, 4*gap)}
}

// delay returns how many extra inputs must arrive before output i exists.
func (l *streamDWTLevel) delay() int { return l.half + 2*l.gap }

func (l *streamDWTLevel) push(a float64) (w, next float64, ok bool) {
	if !l.hasFirst {
		l.first, l.hasFirst = a, true
	}
	l.buf[l.n%len(l.buf)] = a
	l.n++

	i := l.out
	if i+l.half+2*l.gap >= l.n {
		return 0, 0, false
	}
	at := func(j int) float64 {
		if j < 0 {
			return l.first
		}
		return l.buf[j%len(l.buf)]
	}
	am := at(i + l.half - l.gap)
	a0 := at(i + l.half)
	ap := at(i + l.half + l.gap)
	app := at(i + l.half + 2*l.gap)
	l.out++
	// Same expressions as AtrousDWT (recentered by half up front).
	return 2 * (ap - a0), (am + 3*a0 + 3*ap + app) / 8, true
}

// StreamDWT is the streaming à trous transform: it consumes one input sample
// per Push and, after Delay() samples of warm-up, emits the detail samples
// W[0..levels-1][i] for one index i per call, bit-identical to
// AtrousDWT(x, levels').W[j][i] for any levels' >= levels (deeper levels do
// not affect shallower ones).
type StreamDWT struct {
	levels []*streamDWTLevel
	// fifo[j] holds detail samples level j has produced but that are not yet
	// aligned with the deeper (slower) levels; head[j] is its logical front.
	fifo [][]float64
	head []int
	out  []float64
	n    int // aligned output samples emitted
}

// NewStreamDWT builds a streaming transform with the given number of detail
// levels (>= 1).
func NewStreamDWT(levels int) *StreamDWT {
	if levels < 1 {
		levels = 1
	}
	d := &StreamDWT{
		levels: make([]*streamDWTLevel, levels),
		fifo:   make([][]float64, levels),
		head:   make([]int, levels),
		out:    make([]float64, levels),
	}
	for j := range d.levels {
		d.levels[j] = newStreamDWTLevel(j)
	}
	return d
}

// Delay returns the total warm-up: detail index i for every level is
// available once input sample i+Delay() has been consumed.
func (d *StreamDWT) Delay() int {
	total := 0
	for _, l := range d.levels {
		total += l.delay()
	}
	return total
}

// Push consumes one input sample. Once all levels have produced detail
// sample i it returns the slice [W0[i], W1[i], ...] and true. The returned
// slice is reused by the next call; copy it to retain.
func (d *StreamDWT) Push(x float64) ([]float64, bool) {
	v := x
	for j, l := range d.levels {
		w, next, ok := l.push(v)
		if !ok {
			break
		}
		d.fifo[j] = append(d.fifo[j], w)
		v = next
	}
	for j := range d.levels {
		if d.head[j] >= len(d.fifo[j]) {
			return nil, false
		}
	}
	for j := range d.levels {
		d.out[j] = d.fifo[j][d.head[j]]
		d.head[j]++
		// Compact drained FIFOs so they stay bounded.
		if d.head[j] == len(d.fifo[j]) {
			d.fifo[j] = d.fifo[j][:0]
			d.head[j] = 0
		} else if d.head[j] > 64 {
			d.fifo[j] = append(d.fifo[j][:0], d.fifo[j][d.head[j]:]...)
			d.head[j] = 0
		}
	}
	d.n++
	return d.out, true
}
