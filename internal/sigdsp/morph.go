// Package sigdsp implements the signal-processing substrate used by the
// WBSN pipeline of Braojos et al. (DATE'13): mathematical morphology on 1-D
// signals (used for ECG filtering, per Rincon et al., IEEE TITB 2011), the
// à trous dyadic wavelet transform (used for R-peak detection), and window
// and downsampling utilities.
//
// All operators work on float64 slices in place-independent fashion (inputs
// are never modified) and have integer counterparts where the embedded
// pipeline needs them.
package sigdsp

// Erode computes the morphological erosion of x with a flat structuring
// element of the given length (a sliding-window minimum centered on each
// sample; even lengths extend one sample further to the left). Signal borders
// are handled by shrinking the window. The implementation is the van
// Herk/Gil-Werman algorithm: O(n) independent of the element length.
func Erode(x []float64, length int) []float64 {
	return slideExtremum(x, length, false)
}

// Dilate computes the morphological dilation of x with a flat structuring
// element of the given length (sliding-window maximum).
func Dilate(x []float64, length int) []float64 {
	return slideExtremum(x, length, true)
}

// slideExtremum computes a centered sliding max (wantMax) or min over a
// window of the given length using monotonic-deque streaming: amortized O(1)
// per sample regardless of window length.
func slideExtremum(x []float64, length int, wantMax bool) []float64 {
	out := make([]float64, len(x))
	slideExtremumInto(out, x, length, wantMax, nil)
	return out
}

// slideExtremumInto is slideExtremum into a caller-provided slice (len(out)
// must equal len(x); out must not alias x). deque is an optional reusable
// index buffer; the possibly-grown buffer is returned for the caller to keep
// for the next call, so repeated invocations allocate nothing.
//
//rpbeat:allocfree
func slideExtremumInto(out, x []float64, length int, wantMax bool, deque []int) []int {
	n := len(x)
	if n == 0 {
		return deque
	}
	if length < 1 {
		length = 1
	}
	if length > 2*n {
		length = 2 * n
	}
	// Window covering sample i: [i-left, i+right], clipped to the signal.
	left := length / 2
	right := length - 1 - left

	// Monotonic deque of indices into x: front holds the window extremum.
	deque = deque[:0]
	head := 0 // logical front of the deque within the slice
	next := 0 // next sample index to enter the deque
	for i := 0; i < n; i++ {
		hi := i + right
		if hi >= n {
			hi = n - 1
		}
		for ; next <= hi; next++ {
			v := x[next]
			if wantMax {
				for len(deque) > head && v >= x[deque[len(deque)-1]] {
					deque = deque[:len(deque)-1]
				}
			} else {
				for len(deque) > head && v <= x[deque[len(deque)-1]] {
					deque = deque[:len(deque)-1]
				}
			}
			deque = append(deque, next)
		}
		// Drop elements that fell out on the left.
		for head < len(deque) && deque[head] < i-left {
			head++
		}
		out[i] = x[deque[head]]
	}
	return deque
}

// Open computes morphological opening: erosion followed by dilation.
// Opening removes positive peaks narrower than the structuring element.
func Open(x []float64, length int) []float64 {
	return Dilate(Erode(x, length), length)
}

// Close computes morphological closing: dilation followed by erosion.
// Closing removes negative pits narrower than the structuring element.
func Close(x []float64, length int) []float64 {
	return Erode(Dilate(x, length), length)
}

// BaselineConfig parameterizes morphological baseline-wander estimation.
// The defaults follow the two-stage estimator used on the WBSN (opening with
// an element longer than the QRS complex to suppress beats, then closing with
// a 1.5x longer element to bridge the T wave), expressed in seconds and
// converted with the sampling frequency.
type BaselineConfig struct {
	Fs        float64 // sampling frequency in Hz
	OpenSec   float64 // opening element duration; default 0.2 s
	CloseSec  float64 // closing element duration; default 0.3 s
	NoiseElem int     // small element (samples) for noise suppression; default 3
}

// DefaultBaselineConfig returns the standard WBSN filter configuration for
// the given sampling frequency.
func DefaultBaselineConfig(fs float64) BaselineConfig {
	return BaselineConfig{Fs: fs, OpenSec: 0.2, CloseSec: 0.3, NoiseElem: 3}
}

func (c BaselineConfig) openLen() int  { return oddAtLeast(int(c.OpenSec*c.Fs), 3) }
func (c BaselineConfig) closeLen() int { return oddAtLeast(int(c.CloseSec*c.Fs), 5) }

func oddAtLeast(n, min int) int {
	if n < min {
		n = min
	}
	if n%2 == 0 {
		n++
	}
	return n
}

// Baseline estimates the baseline wander of x by opening-then-closing with
// the configured structuring elements.
func Baseline(x []float64, cfg BaselineConfig) []float64 {
	return Close(Open(x, cfg.openLen()), cfg.closeLen())
}

// RemoveBaseline returns x minus its estimated baseline. This is the first
// filtering stage of the WBSN front end.
func RemoveBaseline(x []float64, cfg BaselineConfig) []float64 {
	b := Baseline(x, cfg)
	out := make([]float64, len(x))
	for i := range x {
		out[i] = x[i] - b[i]
	}
	return out
}

// SuppressNoise attenuates high-frequency artifacts by averaging the
// opening-closing and closing-opening of x with a small structuring element
// (the "MF pair" smoother used in morphological ECG filtering).
func SuppressNoise(x []float64, cfg BaselineConfig) []float64 {
	k := oddAtLeast(cfg.NoiseElem, 3)
	oc := Close(Open(x, k), k)
	co := Open(Close(x, k), k)
	out := make([]float64, len(x))
	for i := range x {
		out[i] = 0.5 * (oc[i] + co[i])
	}
	return out
}

// FilterECG applies the complete morphological front end: noise suppression
// followed by baseline removal. It is the software equivalent of the
// "filtering" stage of sub-system (1) in the paper.
//
// Each call allocates fresh output and working buffers; request loops should
// hold a FilterScratch and call FilterECGInto instead.
func FilterECG(x []float64, cfg BaselineConfig) []float64 {
	return FilterECGInto(nil, x, cfg, new(FilterScratch))
}

// FilterScratch holds the working buffers of FilterECGInto: three
// signal-length ping-pong buffers for the morphological cascades and the
// shared monotonic-deque index buffer. A zero value is ready to use; buffers
// grow to the largest signal seen and are reused afterwards. Not safe for
// concurrent use.
type FilterScratch struct {
	a, b, c []float64
	deque   []int
}

func growFloatBuf(buf []float64, n int) []float64 {
	if cap(buf) < n {
		return make([]float64, n)
	}
	return buf[:n]
}

// FilterECGInto is FilterECG running through the caller's scratch buffers:
// the thirteen sliding-extremum passes of the front end ping-pong between
// three reused buffers instead of each allocating their own, so a warm
// scratch makes the whole filter allocation-free. dst is grown as needed and
// returned (it must not alias x); the result is bit-identical to
// FilterECG(x, cfg).
//
//rpbeat:allocfree
func FilterECGInto(dst, x []float64, cfg BaselineConfig, s *FilterScratch) []float64 {
	n := len(x)
	dst = growFloatBuf(dst, n)
	s.a = growFloatBuf(s.a, n)
	s.b = growFloatBuf(s.b, n)
	s.c = growFloatBuf(s.c, n)

	// SuppressNoise: oc = Close(Open(x,k),k), co = Open(Close(x,k),k),
	// averaged. Same operator order (and therefore the same floats) as the
	// allocating composition.
	k := oddAtLeast(cfg.NoiseElem, 3)
	s.deque = slideExtremumInto(s.a, x, k, false, s.deque) // erode
	s.deque = slideExtremumInto(s.b, s.a, k, true, s.deque)
	s.deque = slideExtremumInto(s.a, s.b, k, true, s.deque)
	s.deque = slideExtremumInto(s.b, s.a, k, false, s.deque) // oc in b
	s.deque = slideExtremumInto(s.a, x, k, true, s.deque)    // dilate
	s.deque = slideExtremumInto(s.c, s.a, k, false, s.deque)
	s.deque = slideExtremumInto(s.a, s.c, k, false, s.deque)
	s.deque = slideExtremumInto(s.c, s.a, k, true, s.deque) // co in c
	for i := range s.a {
		s.a[i] = 0.5 * (s.b[i] + s.c[i]) // suppressed signal in a
	}

	// RemoveBaseline: baseline = Close(Open(sup, openLen), closeLen).
	ol, cl := cfg.openLen(), cfg.closeLen()
	s.deque = slideExtremumInto(s.b, s.a, ol, false, s.deque)
	s.deque = slideExtremumInto(s.c, s.b, ol, true, s.deque)
	s.deque = slideExtremumInto(s.b, s.c, cl, true, s.deque)
	s.deque = slideExtremumInto(s.c, s.b, cl, false, s.deque) // baseline in c
	for i := range dst {
		dst[i] = s.a[i] - s.c[i]
	}
	return dst
}

// MMD computes the multiscale morphological derivative of x at the given
// scale s (in samples): MMD(f)(t) = ((f⊕g_s)(t) - 2 f(t) + (f⊖g_s)(t)) / s,
// where g_s is a flat structuring element spanning [t-s, t+s]. Positive peaks
// of the MMD mark concave corners (wave onsets/ends), strong negative values
// mark convex peaks. This is the transform driving the delineation stage.
func MMD(x []float64, s int) []float64 {
	if s < 1 {
		s = 1
	}
	length := 2*s + 1
	dil := Dilate(x, length)
	ero := Erode(x, length)
	out := make([]float64, len(x))
	inv := 1.0 / float64(s)
	for i := range x {
		out[i] = (dil[i] - 2*x[i] + ero[i]) * inv
	}
	return out
}
