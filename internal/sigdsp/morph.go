// Package sigdsp implements the signal-processing substrate used by the
// WBSN pipeline of Braojos et al. (DATE'13): mathematical morphology on 1-D
// signals (used for ECG filtering, per Rincon et al., IEEE TITB 2011), the
// à trous dyadic wavelet transform (used for R-peak detection), and window
// and downsampling utilities.
//
// All operators work on float64 slices in place-independent fashion (inputs
// are never modified) and have integer counterparts where the embedded
// pipeline needs them.
package sigdsp

// Erode computes the morphological erosion of x with a flat structuring
// element of the given length (a sliding-window minimum centered on each
// sample; even lengths extend one sample further to the left). Signal borders
// are handled by shrinking the window. The implementation is the van
// Herk/Gil-Werman algorithm: O(n) independent of the element length.
func Erode(x []float64, length int) []float64 {
	return slideExtremum(x, length, false)
}

// Dilate computes the morphological dilation of x with a flat structuring
// element of the given length (sliding-window maximum).
func Dilate(x []float64, length int) []float64 {
	return slideExtremum(x, length, true)
}

// slideExtremum computes a centered sliding max (wantMax) or min over a
// window of the given length using monotonic-deque streaming: amortized O(1)
// per sample regardless of window length.
func slideExtremum(x []float64, length int, wantMax bool) []float64 {
	n := len(x)
	out := make([]float64, n)
	if n == 0 {
		return out
	}
	if length < 1 {
		length = 1
	}
	if length > 2*n {
		length = 2 * n
	}
	// Window covering sample i: [i-left, i+right], clipped to the signal.
	left := length / 2
	right := length - 1 - left

	// Monotonic deque of indices into x: front holds the window extremum.
	deque := make([]int, 0, length)
	head := 0 // logical front of the deque within the slice
	better := func(a, b float64) bool {
		if wantMax {
			return a >= b
		}
		return a <= b
	}
	next := 0 // next sample index to enter the deque
	for i := 0; i < n; i++ {
		hi := i + right
		if hi >= n {
			hi = n - 1
		}
		for ; next <= hi; next++ {
			for len(deque) > head && better(x[next], x[deque[len(deque)-1]]) {
				deque = deque[:len(deque)-1]
			}
			deque = append(deque, next)
		}
		// Drop elements that fell out on the left.
		for head < len(deque) && deque[head] < i-left {
			head++
		}
		out[i] = x[deque[head]]
	}
	return out
}

// Open computes morphological opening: erosion followed by dilation.
// Opening removes positive peaks narrower than the structuring element.
func Open(x []float64, length int) []float64 {
	return Dilate(Erode(x, length), length)
}

// Close computes morphological closing: dilation followed by erosion.
// Closing removes negative pits narrower than the structuring element.
func Close(x []float64, length int) []float64 {
	return Erode(Dilate(x, length), length)
}

// BaselineConfig parameterizes morphological baseline-wander estimation.
// The defaults follow the two-stage estimator used on the WBSN (opening with
// an element longer than the QRS complex to suppress beats, then closing with
// a 1.5x longer element to bridge the T wave), expressed in seconds and
// converted with the sampling frequency.
type BaselineConfig struct {
	Fs        float64 // sampling frequency in Hz
	OpenSec   float64 // opening element duration; default 0.2 s
	CloseSec  float64 // closing element duration; default 0.3 s
	NoiseElem int     // small element (samples) for noise suppression; default 3
}

// DefaultBaselineConfig returns the standard WBSN filter configuration for
// the given sampling frequency.
func DefaultBaselineConfig(fs float64) BaselineConfig {
	return BaselineConfig{Fs: fs, OpenSec: 0.2, CloseSec: 0.3, NoiseElem: 3}
}

func (c BaselineConfig) openLen() int  { return oddAtLeast(int(c.OpenSec*c.Fs), 3) }
func (c BaselineConfig) closeLen() int { return oddAtLeast(int(c.CloseSec*c.Fs), 5) }

func oddAtLeast(n, min int) int {
	if n < min {
		n = min
	}
	if n%2 == 0 {
		n++
	}
	return n
}

// Baseline estimates the baseline wander of x by opening-then-closing with
// the configured structuring elements.
func Baseline(x []float64, cfg BaselineConfig) []float64 {
	return Close(Open(x, cfg.openLen()), cfg.closeLen())
}

// RemoveBaseline returns x minus its estimated baseline. This is the first
// filtering stage of the WBSN front end.
func RemoveBaseline(x []float64, cfg BaselineConfig) []float64 {
	b := Baseline(x, cfg)
	out := make([]float64, len(x))
	for i := range x {
		out[i] = x[i] - b[i]
	}
	return out
}

// SuppressNoise attenuates high-frequency artifacts by averaging the
// opening-closing and closing-opening of x with a small structuring element
// (the "MF pair" smoother used in morphological ECG filtering).
func SuppressNoise(x []float64, cfg BaselineConfig) []float64 {
	k := oddAtLeast(cfg.NoiseElem, 3)
	oc := Close(Open(x, k), k)
	co := Open(Close(x, k), k)
	out := make([]float64, len(x))
	for i := range x {
		out[i] = 0.5 * (oc[i] + co[i])
	}
	return out
}

// FilterECG applies the complete morphological front end: noise suppression
// followed by baseline removal. It is the software equivalent of the
// "filtering" stage of sub-system (1) in the paper.
func FilterECG(x []float64, cfg BaselineConfig) []float64 {
	return RemoveBaseline(SuppressNoise(x, cfg), cfg)
}

// MMD computes the multiscale morphological derivative of x at the given
// scale s (in samples): MMD(f)(t) = ((f⊕g_s)(t) - 2 f(t) + (f⊖g_s)(t)) / s,
// where g_s is a flat structuring element spanning [t-s, t+s]. Positive peaks
// of the MMD mark concave corners (wave onsets/ends), strong negative values
// mark convex peaks. This is the transform driving the delineation stage.
func MMD(x []float64, s int) []float64 {
	if s < 1 {
		s = 1
	}
	length := 2*s + 1
	dil := Dilate(x, length)
	ero := Erode(x, length)
	out := make([]float64, len(x))
	inv := 1.0 / float64(s)
	for i := range x {
		out[i] = (dil[i] - 2*x[i] + ero[i]) * inv
	}
	return out
}
