package sigdsp

// Streaming (sample-by-sample) versions of the front-end operators, matching
// how the node actually consumes its ADC: bounded memory, O(1) amortized
// work per sample, and an explicitly reported group delay so downstream
// stages can align their sample indices with the batch implementations.
//
// The batch functions in this package are the reference; every streaming
// operator is tested to produce bit-identical output (modulo the documented
// warm-up region) against its batch counterpart.

// StreamExtremum is a running windowed min or max over the last `length`
// samples (Lemire's monotonic-wedge algorithm): O(1) amortized per sample
// with at most `length` stored indices. The wedge lives in a fixed-capacity
// ring deque, so steady-state Push never allocates — the property the whole
// pipeline's zero-allocation hot path rests on (a plain slice deque would
// shed front capacity at every pop and reallocate on append).
type StreamExtremum struct {
	length  int
	wantMax bool
	buf     []float64 // ring buffer of the last `length` samples
	idx     []int     // ring deque of absolute indices, capacity length+1
	head    int       // deque front position in idx
	count   int       // deque occupancy
	n       int       // samples consumed
}

// NewStreamMax returns a running maximum over `length` samples.
func NewStreamMax(length int) *StreamExtremum { return newStreamExtremum(length, true) }

// NewStreamMin returns a running minimum over `length` samples.
func NewStreamMin(length int) *StreamExtremum { return newStreamExtremum(length, false) }

func newStreamExtremum(length int, wantMax bool) *StreamExtremum {
	if length < 1 {
		length = 1
	}
	return &StreamExtremum{
		length:  length,
		wantMax: wantMax,
		buf:     make([]float64, length),
		idx:     make([]int, length+1),
	}
}

// Push consumes one sample and returns the extremum of the trailing window
// (shorter during warm-up).
func (s *StreamExtremum) Push(x float64) float64 {
	s.buf[s.n%s.length] = x
	// Pop dominated indices off the back of the wedge.
	for s.count > 0 {
		back := s.buf[s.idx[(s.head+s.count-1)%len(s.idx)]%s.length]
		if s.wantMax {
			if x < back {
				break
			}
		} else if x > back {
			break
		}
		s.count--
	}
	s.idx[(s.head+s.count)%len(s.idx)] = s.n
	s.count++
	// Expire the front once it leaves the window.
	if s.idx[s.head] <= s.n-s.length {
		s.head = (s.head + 1) % len(s.idx)
		s.count--
	}
	s.n++
	return s.buf[s.idx[s.head]%s.length]
}

// Delay returns the number of samples by which the trailing-window output
// lags a centered batch operator of the same length: (length-1)/2... the
// exact alignment depends on the batch operator's window split; see
// StreamErode/StreamDilate which handle it.
func (s *StreamExtremum) Delay() int { return s.length / 2 }

// StreamMorph runs a centered erosion or dilation as a stream: output sample
// i (in input coordinates) becomes available after Delay() further input
// samples have arrived.
type StreamMorph struct {
	ex    *StreamExtremum
	right int // trailing window must extend this far past the center
	n     int
}

// NewStreamErode returns a streaming erosion with a flat element of the
// given length, aligned with Erode.
func NewStreamErode(length int) *StreamMorph {
	if length < 1 {
		length = 1
	}
	return &StreamMorph{ex: newStreamExtremum(length, false), right: length - 1 - length/2}
}

// NewStreamDilate returns a streaming dilation aligned with Dilate.
func NewStreamDilate(length int) *StreamMorph {
	if length < 1 {
		length = 1
	}
	return &StreamMorph{ex: newStreamExtremum(length, true), right: length - 1 - length/2}
}

// Delay returns how many input samples arrive before output sample 0.
func (m *StreamMorph) Delay() int { return m.right }

// Push consumes one sample. It returns the next output sample and true once
// the pipeline has filled (after Delay() samples), or 0 and false before.
// Note the border semantics differ from the batch operator only in the first
// Delay() outputs (the batch version shrinks its window at the left border;
// the stream has no access to "future" samples and therefore emits the
// trailing-window result there).
func (m *StreamMorph) Push(x float64) (float64, bool) {
	v := m.ex.Push(x)
	m.n++
	if m.n <= m.right {
		return 0, false
	}
	return v, true
}

// StreamFilter chains the complete morphological front end (noise
// suppression + baseline removal) as a fixed-latency stream. It composes
// the four cascaded opening/closing stages; the total latency is the sum of
// the stage delays.
type StreamFilter struct {
	stages []*StreamMorph
	// rawDelay delays the input so the final subtraction x - baseline
	// aligns with the cascade's group delay.
	rawDelay []float64
	rawPos   int
	total    int
}

// NewStreamFilter builds the streaming front end for cfg. The current
// implementation mirrors RemoveBaseline (opening then closing); streaming
// noise suppression would add the dual chain and an averaging stage, which
// block processing covers in this repository.
func NewStreamFilter(cfg BaselineConfig) *StreamFilter {
	openL := cfg.openLen()
	closeL := cfg.closeLen()
	stages := []*StreamMorph{
		NewStreamErode(openL), NewStreamDilate(openL),
		NewStreamDilate(closeL), NewStreamErode(closeL),
	}
	total := 0
	for _, s := range stages {
		total += s.Delay()
	}
	return &StreamFilter{
		stages:   stages,
		rawDelay: make([]float64, total+1),
		total:    total,
	}
}

// Delay returns the filter's group delay in samples.
func (f *StreamFilter) Delay() int { return f.total }

// Push consumes one raw sample and, once the pipeline is primed, emits one
// baseline-removed sample (aligned to input index n - Delay()).
func (f *StreamFilter) Push(x float64) (float64, bool) {
	// Delay the raw signal by the cascade latency.
	f.rawDelay[f.rawPos%len(f.rawDelay)] = x
	delayedIdx := f.rawPos - f.total
	f.rawPos++

	v, ok := x, true
	for _, s := range f.stages {
		v, ok = s.Push(v)
		if !ok {
			return 0, false
		}
	}
	if delayedIdx < 0 {
		return 0, false
	}
	raw := f.rawDelay[delayedIdx%len(f.rawDelay)]
	return raw - v, true
}
