package sigdsp

import (
	"math"
	"testing"
	"testing/quick"

	"rpbeat/internal/rng"
)

// naiveExtremum is the O(n*k) reference implementation used to validate the
// deque-based sliding extremum.
func naiveExtremum(x []float64, length int, wantMax bool) []float64 {
	n := len(x)
	out := make([]float64, n)
	if length < 1 {
		length = 1
	}
	left := length / 2
	right := length - 1 - left
	for i := 0; i < n; i++ {
		lo, hi := i-left, i+right
		if lo < 0 {
			lo = 0
		}
		if hi >= n {
			hi = n - 1
		}
		best := x[lo]
		for j := lo + 1; j <= hi; j++ {
			if wantMax && x[j] > best || !wantMax && x[j] < best {
				best = x[j]
			}
		}
		out[i] = best
	}
	return out
}

func randomSignal(r *rng.Rand, n int) []float64 {
	x := make([]float64, n)
	for i := range x {
		x[i] = r.Norm()
	}
	return x
}

func TestErodeDilateMatchNaive(t *testing.T) {
	r := rng.New(1)
	for _, n := range []int{1, 2, 7, 64, 257} {
		for _, k := range []int{1, 2, 3, 5, 9, 31, 200} {
			x := randomSignal(r, n)
			for _, wantMax := range []bool{false, true} {
				got := slideExtremum(x, k, wantMax)
				want := naiveExtremum(x, k, wantMax)
				for i := range got {
					if got[i] != want[i] {
						t.Fatalf("n=%d k=%d max=%v: sample %d: got %v want %v",
							n, k, wantMax, i, got[i], want[i])
					}
				}
			}
		}
	}
}

func TestErosionBelowDilationAbove(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		x := randomSignal(r, 100)
		e := Erode(x, 7)
		d := Dilate(x, 7)
		for i := range x {
			if e[i] > x[i] || d[i] < x[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestOpeningAntiExtensiveClosingExtensive(t *testing.T) {
	r := rng.New(2)
	x := randomSignal(r, 200)
	o := Open(x, 9)
	c := Close(x, 9)
	for i := range x {
		if o[i] > x[i]+1e-12 {
			t.Fatalf("opening exceeded signal at %d: %v > %v", i, o[i], x[i])
		}
		if c[i] < x[i]-1e-12 {
			t.Fatalf("closing fell below signal at %d: %v < %v", i, c[i], x[i])
		}
	}
}

func TestOpeningIdempotent(t *testing.T) {
	r := rng.New(3)
	x := randomSignal(r, 150)
	once := Open(x, 7)
	twice := Open(once, 7)
	for i := range once {
		if math.Abs(once[i]-twice[i]) > 1e-12 {
			t.Fatalf("opening not idempotent at %d: %v vs %v", i, once[i], twice[i])
		}
	}
}

func TestClosingIdempotent(t *testing.T) {
	r := rng.New(4)
	x := randomSignal(r, 150)
	once := Close(x, 7)
	twice := Close(once, 7)
	for i := range once {
		if math.Abs(once[i]-twice[i]) > 1e-12 {
			t.Fatalf("closing not idempotent at %d: %v vs %v", i, once[i], twice[i])
		}
	}
}

func TestOpeningRemovesNarrowSpike(t *testing.T) {
	x := make([]float64, 50)
	x[25] = 5 // single-sample spike
	o := Open(x, 5)
	if o[25] != 0 {
		t.Fatalf("opening kept a 1-sample spike: %v", o[25])
	}
	c := Close(x, 5)
	if c[25] != 5 {
		t.Fatalf("closing should keep positive spike: %v", c[25])
	}
}

func TestClosingFillsNarrowPit(t *testing.T) {
	x := make([]float64, 50)
	x[25] = -5
	c := Close(x, 5)
	if c[25] != 0 {
		t.Fatalf("closing kept a 1-sample pit: %v", c[25])
	}
}

func TestBaselineTracksSlowDrift(t *testing.T) {
	// Slow sine drift plus narrow spikes: baseline estimate should follow the
	// drift and ignore the spikes.
	fs := 360.0
	n := 3600
	x := make([]float64, n)
	for i := range x {
		tsec := float64(i) / fs
		x[i] = 0.5 * math.Sin(2*math.Pi*0.3*tsec)
	}
	for i := 180; i < n; i += 360 {
		x[i] += 3 // fake QRS spikes, 1 sample wide
	}
	b := Baseline(x, DefaultBaselineConfig(fs))
	var maxErr float64
	for i := n / 4; i < 3*n/4; i++ { // skip borders
		tsec := float64(i) / fs
		drift := 0.5 * math.Sin(2*math.Pi*0.3*tsec)
		if e := math.Abs(b[i] - drift); e > maxErr {
			maxErr = e
		}
	}
	if maxErr > 0.15 {
		t.Fatalf("baseline estimate error %.3f too large", maxErr)
	}
}

func TestRemoveBaselineZeroCentersOutput(t *testing.T) {
	fs := 360.0
	n := 3600
	x := make([]float64, n)
	for i := range x {
		tsec := float64(i) / fs
		x[i] = 2.0 + 0.8*math.Sin(2*math.Pi*0.2*tsec) // offset + wander
	}
	y := RemoveBaseline(x, DefaultBaselineConfig(fs))
	m := Mean(y[n/4 : 3*n/4])
	if math.Abs(m) > 0.1 {
		t.Fatalf("baseline-removed mean %.3f, want ~0", m)
	}
}

func TestSuppressNoiseReducesRMSOfWhiteNoise(t *testing.T) {
	r := rng.New(5)
	n := 2000
	x := make([]float64, n)
	for i := range x {
		x[i] = 0.1 * r.Norm()
	}
	y := SuppressNoise(x, DefaultBaselineConfig(360))
	if RMS(y) >= RMS(x) {
		t.Fatalf("noise suppression did not reduce RMS: %.4f >= %.4f", RMS(y), RMS(x))
	}
}

func TestMMDPositiveAtCorners(t *testing.T) {
	// A V-shaped valley has a concave corner at the bottom: MMD > 0 there.
	n := 101
	x := make([]float64, n)
	for i := range x {
		x[i] = math.Abs(float64(i - 50))
	}
	m := MMD(x, 5)
	if m[50] <= 0 {
		t.Fatalf("MMD at valley bottom = %v, want > 0", m[50])
	}
	// An inverted V (peak) is convex at the top: MMD < 0.
	for i := range x {
		x[i] = -math.Abs(float64(i - 50))
	}
	m = MMD(x, 5)
	if m[50] >= 0 {
		t.Fatalf("MMD at peak = %v, want < 0", m[50])
	}
}

func TestMMDZeroOnLinearRamp(t *testing.T) {
	n := 100
	x := make([]float64, n)
	for i := range x {
		x[i] = 0.5 * float64(i)
	}
	m := MMD(x, 4)
	for i := 10; i < n-10; i++ {
		if math.Abs(m[i]) > 1e-9 {
			t.Fatalf("MMD on ramp at %d = %v, want 0", i, m[i])
		}
	}
}

func TestFilterECGPreservesQRSAmplitude(t *testing.T) {
	// A synthetic spike train on top of drift: after filtering, spikes should
	// retain most of their amplitude while drift disappears.
	fs := 360.0
	n := 7200
	x := make([]float64, n)
	for i := range x {
		tsec := float64(i) / fs
		x[i] = 0.7 * math.Sin(2*math.Pi*0.15*tsec)
	}
	// Triangular "QRS" of ~80 ms width, amplitude 1.
	addQRS := func(center int) {
		w := 14
		for d := -w; d <= w; d++ {
			if center+d >= 0 && center+d < n {
				x[center+d] += 1 - math.Abs(float64(d))/float64(w+1)
			}
		}
	}
	for c := 200; c < n-200; c += 300 {
		addQRS(c)
	}
	y := FilterECG(x, DefaultBaselineConfig(fs))
	// Check amplitude at one mid-signal QRS.
	c := 3500
	// nearest multiple of 300 offset by 200
	c = 200 + ((c-200)/300)*300
	if y[c] < 0.6 {
		t.Fatalf("QRS amplitude after filtering = %.3f, want > 0.6", y[c])
	}
	// Check drift removal between beats.
	if math.Abs(y[c+150]) > 0.2 {
		t.Fatalf("inter-beat residual %.3f, want ~0", y[c+150])
	}
}

func BenchmarkErode(b *testing.B) {
	r := rng.New(1)
	x := randomSignal(r, 360*30) // 30 s of 360 Hz ECG
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = Erode(x, 73)
	}
}

func BenchmarkFilterECG(b *testing.B) {
	r := rng.New(1)
	x := randomSignal(r, 360*30)
	cfg := DefaultBaselineConfig(360)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = FilterECG(x, cfg)
	}
}
