package sigdsp

import (
	"math"
	"testing"
)

// noisyECGLike builds a deterministic test signal with ECG-like structure:
// sharp spikes on a wandering baseline plus pseudo-noise.
func noisyECGLike(n int) []float64 {
	x := make([]float64, n)
	for i := range x {
		t := float64(i)
		v := 0.3 * math.Sin(2*math.Pi*t/700)     // baseline wander
		v += 0.05 * math.Sin(2*math.Pi*t/6.3)    // "mains"
		v += 0.02 * math.Sin(2*math.Pi*t*0.7713) // pseudo-noise
		if i%360 == 180 {
			v += 1.2 // spike train standing in for QRS complexes
		}
		if i%360 == 181 {
			v -= 0.4
		}
		x[i] = v
	}
	return x
}

func TestStreamECGFilterMatchesFilterECG(t *testing.T) {
	x := noisyECGLike(4000)
	cfg := DefaultBaselineConfig(360)
	batch := FilterECG(x, cfg)

	f := NewStreamECGFilter(cfg)
	if f.Delay() <= 0 {
		t.Fatal("no group delay reported")
	}
	var out []float64
	for _, v := range x {
		if y, ok := f.Push(v); ok {
			out = append(out, y)
		}
	}
	if len(out) != len(x)-f.Delay() {
		t.Fatalf("emitted %d samples, want n-delay = %d", len(out), len(x)-f.Delay())
	}
	// The stream is bit-identical from sample 0: the trailing windows over
	// the first samples cover exactly the batch operators' shrunken windows.
	for i, y := range out {
		if y != batch[i] {
			t.Fatalf("sample %d: stream %g != batch %g", i, y, batch[i])
		}
	}
}

func TestStreamDWTMatchesAtrousDWT(t *testing.T) {
	x := noisyECGLike(3000)
	for _, levels := range []int{1, 3, 4} {
		batch := AtrousDWT(x, levels)
		d := NewStreamDWT(levels)
		emitted := 0
		for _, v := range x {
			w, ok := d.Push(v)
			if !ok {
				continue
			}
			for j := 0; j < levels; j++ {
				if w[j] != batch.W[j][emitted] {
					t.Fatalf("levels=%d: W[%d][%d]: stream %g != batch %g",
						levels, j, emitted, w[j], batch.W[j][emitted])
				}
			}
			emitted++
		}
		if emitted != len(x)-d.Delay() {
			t.Fatalf("levels=%d: emitted %d, want n-delay = %d", levels, emitted, len(x)-d.Delay())
		}
	}
}

// Deeper levels must not perturb shallower ones: a 3-level stream must match
// the 4-level batch on its shared scales (the detector relies on this).
func TestStreamDWTPrefixOfDeeperBatch(t *testing.T) {
	x := noisyECGLike(2500)
	batch := AtrousDWT(x, 4)
	d := NewStreamDWT(3)
	emitted := 0
	for _, v := range x {
		w, ok := d.Push(v)
		if !ok {
			continue
		}
		for j := 0; j < 3; j++ {
			if w[j] != batch.W[j][emitted] {
				t.Fatalf("W[%d][%d]: stream %g != 4-level batch %g", j, emitted, w[j], batch.W[j][emitted])
			}
		}
		emitted++
	}
	if emitted == 0 {
		t.Fatal("nothing emitted")
	}
}

func BenchmarkStreamECGFilterPush(b *testing.B) {
	x := noisyECGLike(4096)
	f := NewStreamECGFilter(DefaultBaselineConfig(360))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		f.Push(x[i%len(x)])
	}
}
