package sigdsp

import (
	"math"
	"testing"
	"testing/quick"

	"rpbeat/internal/rng"
)

func TestStreamExtremumMatchesTrailingWindow(t *testing.T) {
	r := rng.New(1)
	for _, length := range []int{1, 2, 3, 7, 32} {
		x := randomSignal(r, 300)
		sMax := NewStreamMax(length)
		sMin := NewStreamMin(length)
		for i := range x {
			gotMax := sMax.Push(x[i])
			gotMin := sMin.Push(x[i])
			lo := i - length + 1
			if lo < 0 {
				lo = 0
			}
			wantMax, wantMin := x[lo], x[lo]
			for j := lo + 1; j <= i; j++ {
				if x[j] > wantMax {
					wantMax = x[j]
				}
				if x[j] < wantMin {
					wantMin = x[j]
				}
			}
			if gotMax != wantMax {
				t.Fatalf("len %d sample %d: max %v want %v", length, i, gotMax, wantMax)
			}
			if gotMin != wantMin {
				t.Fatalf("len %d sample %d: min %v want %v", length, i, gotMin, wantMin)
			}
		}
	}
}

func TestStreamMorphMatchesBatchAfterWarmup(t *testing.T) {
	r := rng.New(2)
	for _, length := range []int{3, 5, 9, 31} {
		x := randomSignal(r, 400)
		batchE := Erode(x, length)
		batchD := Dilate(x, length)
		sm := NewStreamErode(length)
		sd := NewStreamDilate(length)
		var gotE, gotD []float64
		for _, v := range x {
			if o, ok := sm.Push(v); ok {
				gotE = append(gotE, o)
			}
			if o, ok := sd.Push(v); ok {
				gotD = append(gotD, o)
			}
		}
		// Output i corresponds to input i; the stream cannot produce the
		// final Delay() samples (their windows need future input) and its
		// first Delay() outputs use a trailing (not centered) window.
		warm := length // covers the left-border semantic difference
		if len(gotE) != len(x)-sm.Delay() {
			t.Fatalf("len %d: stream emitted %d samples, want %d", length, len(gotE), len(x)-sm.Delay())
		}
		for i := warm; i < len(gotE); i++ {
			if gotE[i] != batchE[i] {
				t.Fatalf("len %d: erosion sample %d: stream %v batch %v", length, i, gotE[i], batchE[i])
			}
			if gotD[i] != batchD[i] {
				t.Fatalf("len %d: dilation sample %d: stream %v batch %v", length, i, gotD[i], batchD[i])
			}
		}
	}
}

func TestStreamMorphPropertyEquivalence(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		length := 3 + r.Intn(20)
		x := randomSignal(r, 100+r.Intn(100))
		batch := Erode(x, length)
		s := NewStreamErode(length)
		var got []float64
		for _, v := range x {
			if o, ok := s.Push(v); ok {
				got = append(got, o)
			}
		}
		for i := length; i < len(got); i++ {
			if got[i] != batch[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestStreamFilterMatchesBatchBaselineRemoval(t *testing.T) {
	// The streaming front end must agree with RemoveBaseline away from the
	// record borders.
	fs := 360.0
	cfg := DefaultBaselineConfig(fs)
	n := 3600
	x := make([]float64, n)
	for i := range x {
		ts := float64(i) / fs
		x[i] = 0.6*math.Sin(2*math.Pi*0.25*ts) + 0.9*math.Exp(-sq(math.Mod(ts, 0.8)-0.4)/0.0008)
	}
	batch := RemoveBaseline(x, cfg)
	f := NewStreamFilter(cfg)
	var got []float64
	for _, v := range x {
		if o, ok := f.Push(v); ok {
			got = append(got, o)
		}
	}
	if len(got) != n-f.Delay() {
		t.Fatalf("stream emitted %d samples, want %d", len(got), n-f.Delay())
	}
	// Skip the warm-up region (one full cascade support).
	warm := 2 * f.Delay()
	var maxErr float64
	for i := warm; i < len(got); i++ {
		if e := math.Abs(got[i] - batch[i]); e > maxErr {
			maxErr = e
		}
	}
	if maxErr > 1e-9 {
		t.Fatalf("stream/batch divergence %.3g after warm-up", maxErr)
	}
}

func sq(x float64) float64 { return x * x }

func TestStreamFilterDelayReported(t *testing.T) {
	cfg := DefaultBaselineConfig(360)
	f := NewStreamFilter(cfg)
	if f.Delay() <= 0 {
		t.Fatal("non-positive delay")
	}
	// No output before Delay() samples.
	emitted := 0
	for i := 0; i < f.Delay(); i++ {
		if _, ok := f.Push(0); ok {
			emitted++
		}
	}
	if emitted != 0 {
		t.Fatalf("emitted %d samples before the pipeline filled", emitted)
	}
	if _, ok := f.Push(0); !ok {
		t.Fatal("no output after the pipeline filled")
	}
}

func TestStreamExtremumBoundedMemory(t *testing.T) {
	s := NewStreamMax(16)
	ring := &s.idx[0]
	r := rng.New(9)
	for i := 0; i < 10000; i++ {
		s.Push(r.Norm())
		if s.count > 16 {
			t.Fatalf("deque holds %d entries for a 16-sample window", s.count)
		}
	}
	if &s.idx[0] != ring {
		t.Fatal("deque ring was reallocated; Push must not allocate")
	}
}

func BenchmarkStreamFilterPerSample(b *testing.B) {
	f := NewStreamFilter(DefaultBaselineConfig(360))
	r := rng.New(1)
	x := randomSignal(r, 4096)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.Push(x[i&4095])
	}
}
