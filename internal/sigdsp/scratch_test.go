package sigdsp

import (
	"testing"

	"rpbeat/internal/rng"
	"rpbeat/internal/testutil"
)

// TestFilterECGIntoMatchesFilterECG holds the scratch-reusing front end to
// bit-identity with the allocating composition, across repeated reuse of one
// scratch — including a shorter signal after a longer one, so stale buffer
// tails would surface.
func TestFilterECGIntoMatchesFilterECG(t *testing.T) {
	r := rng.New(11)
	cfg := DefaultBaselineConfig(360)
	var s FilterScratch
	var dst []float64
	for _, n := range []int{2000, 977, 3600, 16, 1, 0} {
		x := randomSignal(r, n)
		want := RemoveBaseline(SuppressNoise(x, cfg), cfg)
		dst = FilterECGInto(dst, x, cfg, &s)
		if len(dst) != len(want) {
			t.Fatalf("n=%d: got %d samples, want %d", n, len(dst), len(want))
		}
		for i := range want {
			if dst[i] != want[i] {
				t.Fatalf("n=%d: sample %d = %v, want %v", n, i, dst[i], want[i])
			}
		}
		// The exported wrapper must agree too (it delegates).
		got := FilterECG(x, cfg)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("n=%d: FilterECG sample %d = %v, want %v", n, i, got[i], want[i])
			}
		}
	}
}

// TestAtrousDWTIntoReuse checks that recomputing into a used DWT (larger and
// smaller signals, different level counts) matches a fresh transform
// bitwise.
func TestAtrousDWTIntoReuse(t *testing.T) {
	r := rng.New(12)
	var d DWT
	for _, tc := range []struct{ n, levels int }{
		{1500, 4}, {700, 4}, {1500, 3}, {64, 5}, {16, 1},
	} {
		x := randomSignal(r, tc.n)
		AtrousDWTInto(&d, x, tc.levels)
		want := AtrousDWT(x, tc.levels)
		if len(d.W) != tc.levels || len(want.W) != tc.levels {
			t.Fatalf("n=%d levels=%d: got %d levels, want %d", tc.n, tc.levels, len(d.W), tc.levels)
		}
		for j := range want.W {
			for i := range want.W[j] {
				if d.W[j][i] != want.W[j][i] {
					t.Fatalf("n=%d: W[%d][%d] = %v, want %v", tc.n, j, i, d.W[j][i], want.W[j][i])
				}
			}
		}
		for i := range want.A {
			if d.A[i] != want.A[i] {
				t.Fatalf("n=%d: A[%d] = %v, want %v", tc.n, i, d.A[i], want.A[i])
			}
		}
	}
}

// TestFilterECGIntoSteadyStateAllocs: after the first call sized the
// scratch, re-filtering same-length signals must not allocate — the property
// the /v1/classify request loop relies on.
func TestFilterECGIntoSteadyStateAllocs(t *testing.T) {
	r := rng.New(13)
	cfg := DefaultBaselineConfig(360)
	x := randomSignal(r, 3600)
	var s FilterScratch
	dst := FilterECGInto(nil, x, cfg, &s) // size every buffer
	testutil.AssertZeroAllocN(t, "warm FilterECGInto", 20, func() {
		dst = FilterECGInto(dst, x, cfg, &s)
	})
}
