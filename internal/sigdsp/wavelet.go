package sigdsp

import "math"

// Dyadic à trous wavelet transform with the quadratic-spline wavelet of
// Mallat & Zhong, the standard choice for QRS detection (Martinez et al.;
// Rincon et al., IEEE TITB 2011, used on the IcyHeart node). The transform
// produces detail signals W[1..K] at scales 2^1..2^K. QRS complexes appear
// as maximum-minimum pairs of |W| across adjacent scales, with the R peak at
// the zero crossing in between.
//
// Filters (non-normalized integer-friendly form):
//
//	lowpass  h = (1/8)[1 3 3 1]
//	highpass g = 2[1 -1]
//
// At scale j the filters are upsampled by inserting 2^(j-1)-1 zeros between
// taps ("à trous"/with holes), so no decimation occurs and every scale stays
// sample-aligned with the input, which is what allows zero-crossing peak
// localization directly in input coordinates.

// DWT holds the detail signals of a dyadic à trous decomposition.
type DWT struct {
	// W[j] is the detail signal at scale 2^(j+1); len(W) == levels.
	W [][]float64
	// A is the final approximation (lowpass residue).
	A []float64

	// prev is the level-recursion ping-pong buffer, kept so AtrousDWTInto
	// can recompute the transform without reallocating it.
	prev []float64
}

// filter delay compensation: the causal convolution with the centered
// quadratic-spline filters introduces a known group delay per scale; the
// implementation below uses symmetric (centered) indexing so that wavelet
// extrema align with the generating signal features.

// AtrousDWT computes `levels` detail scales of x. Border samples are handled
// by edge replication. Typical use for 360 Hz ECG is levels = 4.
func AtrousDWT(x []float64, levels int) DWT {
	var d DWT
	AtrousDWTInto(&d, x, levels)
	return d
}

// AtrousDWTInto recomputes the transform into d, reusing d's detail,
// approximation and recursion buffers when they are large enough — repeated
// transforms over same-length signals allocate nothing. The result is
// bit-identical to AtrousDWT(x, levels).
func AtrousDWTInto(d *DWT, x []float64, levels int) {
	n := len(x)
	if cap(d.W) >= levels {
		d.W = d.W[:levels]
	} else {
		w := make([][]float64, levels)
		copy(w, d.W)
		d.W = w
	}
	for j := range d.W {
		d.W[j] = growFloatBuf(d.W[j], n)
	}
	d.A = growFloatBuf(d.A, n)
	d.prev = growFloatBuf(d.prev, n)

	at := func(s []float64, i int) float64 {
		if i < 0 {
			return s[0]
		}
		if i >= n {
			return s[n-1]
		}
		return s[i]
	}

	// The recursion ping-pongs between d.prev and d.A; after `levels`
	// iterations the final approximation lands in one of the two and is
	// copied into d.A if needed.
	approx, next := d.prev, d.A
	copy(approx, x)
	for j := 0; j < levels; j++ {
		gap := 1 << j // hole spacing at this level
		half := gap / 2
		w := d.W[j]
		for i := 0; i < n; i++ {
			// The filters are evaluated at the recentered index directly
			// (the separate shift pass of the textbook formulation, fused):
			//
			// Highpass g = 2[1 -1]: forward difference over one hole
			// spacing; it estimates the derivative at c+gap/2, so reading
			// at c = min(i+half, n-1) aligns zero crossings with peaks.
			//
			// Lowpass h = (1/8)[1 3 3 1]: the 4-tap support spans offsets
			// {-gap, 0, +gap, +2gap}, putting its center of mass at +gap/2;
			// the same recentering keeps the drift from compounding across
			// levels (coarse-scale detections would shift by tens of
			// samples otherwise).
			c := minInt(i+half, n-1)
			w[i] = 2 * (at(approx, c+gap) - at(approx, c))
			next[i] = (at(approx, c-gap) + 3*at(approx, c) +
				3*at(approx, c+gap) + at(approx, c+2*gap)) / 8
		}
		approx, next = next, approx
	}
	if levels%2 == 0 { // final approximation ended up in d.prev
		copy(d.A, d.prev)
	}
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// Downsample returns every factor-th sample of x starting at offset 0.
// It implements the 4x rate reduction (360 Hz -> 90 Hz) used by the embedded
// classifier to shrink the projection matrix.
func Downsample(x []float64, factor int) []float64 {
	if factor <= 1 {
		out := make([]float64, len(x))
		copy(out, x)
		return out
	}
	out := make([]float64, 0, (len(x)+factor-1)/factor)
	for i := 0; i < len(x); i += factor {
		out = append(out, x[i])
	}
	return out
}

// DownsampleInt is Downsample for integer (ADC count) signals.
func DownsampleInt(x []int32, factor int) []int32 {
	if factor <= 1 {
		out := make([]int32, len(x))
		copy(out, x)
		return out
	}
	out := make([]int32, (len(x)+factor-1)/factor)
	DownsampleIntInto(out, x, factor)
	return out
}

// DownsampleIntInto is DownsampleInt into a caller-provided slice of length
// ceil(len(x)/factor) (len(x) for factor <= 1), for the allocation-free
// per-beat path.
//
//rpbeat:allocfree
func DownsampleIntInto(dst []int32, x []int32, factor int) {
	if factor <= 1 {
		if len(dst) != len(x) {
			panic("sigdsp: DownsampleIntInto length mismatch")
		}
		copy(dst, x)
		return
	}
	if len(dst) != (len(x)+factor-1)/factor {
		panic("sigdsp: DownsampleIntInto length mismatch")
	}
	for i, k := 0, 0; k < len(x); i, k = i+1, k+factor {
		dst[i] = x[k]
	}
}

// Window extracts the samples [center-before, center+after) from x,
// replicating edge samples when the window exceeds the signal. The paper's
// beat window is before = after = 100 samples at 360 Hz.
func Window(x []float64, center, before, after int) []float64 {
	out := make([]float64, before+after)
	n := len(x)
	for i := range out {
		j := center - before + i
		if j < 0 {
			j = 0
		}
		if j >= n {
			j = n - 1
		}
		if n == 0 {
			out[i] = 0
			continue
		}
		out[i] = x[j]
	}
	return out
}

// WindowInt is Window for integer signals.
func WindowInt(x []int32, center, before, after int) []int32 {
	out := make([]int32, before+after)
	WindowIntInto(out, x, center, before)
	return out
}

// WindowIntInto is WindowInt into a caller-provided slice whose length sets
// the window size (before + after), for the allocation-free per-beat path.
//
//rpbeat:allocfree
func WindowIntInto(dst []int32, x []int32, center, before int) {
	n := len(x)
	for i := range dst {
		j := center - before + i
		if j < 0 {
			j = 0
		}
		if j >= n {
			j = n - 1
		}
		if n == 0 {
			dst[i] = 0
			continue
		}
		dst[i] = x[j]
	}
}

// Mean returns the arithmetic mean of x (0 for empty input).
func Mean(x []float64) float64 {
	if len(x) == 0 {
		return 0
	}
	var s float64
	for _, v := range x {
		s += v
	}
	return s / float64(len(x))
}

// RMS returns the root-mean-square of x (0 for empty input).
func RMS(x []float64) float64 {
	if len(x) == 0 {
		return 0
	}
	var s float64
	for _, v := range x {
		s += v * v
	}
	return math.Sqrt(s / float64(len(x)))
}
