package sigdsp

import (
	"math"
	"testing"

	"rpbeat/internal/rng"
)

func TestAtrousDWTShape(t *testing.T) {
	x := make([]float64, 500)
	d := AtrousDWT(x, 4)
	if len(d.W) != 4 {
		t.Fatalf("levels = %d, want 4", len(d.W))
	}
	for j, w := range d.W {
		if len(w) != len(x) {
			t.Fatalf("scale %d has %d samples, want %d (à trous = undecimated)", j, len(w), len(x))
		}
	}
	if len(d.A) != len(x) {
		t.Fatalf("approximation has %d samples, want %d", len(d.A), len(x))
	}
}

func TestAtrousDWTZeroOnConstant(t *testing.T) {
	x := make([]float64, 300)
	for i := range x {
		x[i] = 3.7
	}
	d := AtrousDWT(x, 4)
	for j, w := range d.W {
		for i, v := range w {
			if math.Abs(v) > 1e-12 {
				t.Fatalf("scale %d sample %d = %v on constant input", j, i, v)
			}
		}
	}
	for i, v := range d.A {
		if math.Abs(v-3.7) > 1e-9 {
			t.Fatalf("approximation sample %d = %v, want 3.7", i, v)
		}
	}
}

func TestAtrousDWTStepResponseSign(t *testing.T) {
	// A rising step produces positive detail response around the edge.
	n := 200
	x := make([]float64, n)
	for i := n / 2; i < n; i++ {
		x[i] = 1
	}
	d := AtrousDWT(x, 3)
	for j := range d.W {
		var peak float64
		for _, v := range d.W[j][n/2-16 : n/2+16] {
			if v > peak {
				peak = v
			}
		}
		if peak <= 0 {
			t.Fatalf("scale %d: no positive response to rising edge", j)
		}
	}
}

func TestAtrousDWTZeroCrossingAtPeak(t *testing.T) {
	// A symmetric bump must generate a +/- modulus maxima pair with a zero
	// crossing near the bump apex on the first scales.
	n := 400
	center := 200
	x := make([]float64, n)
	for i := range x {
		d := float64(i - center)
		x[i] = math.Exp(-d * d / (2 * 16))
	}
	d := AtrousDWT(x, 3)
	for j := 0; j < 2; j++ {
		w := d.W[j]
		// find max and min in a window around the bump
		maxI, minI := center-30, center-30
		for i := center - 30; i <= center+30; i++ {
			if w[i] > w[maxI] {
				maxI = i
			}
			if w[i] < w[minI] {
				minI = i
			}
		}
		if !(maxI < minI) {
			t.Fatalf("scale %d: expected max before min around a positive bump (max@%d min@%d)", j, maxI, minI)
		}
		// zero crossing between them
		zc := -1
		for i := maxI; i < minI; i++ {
			if w[i] >= 0 && w[i+1] < 0 {
				zc = i
				break
			}
		}
		if zc == -1 {
			t.Fatalf("scale %d: no zero crossing between modulus maxima", j)
		}
		if abs := int(math.Abs(float64(zc - center))); abs > 4 {
			t.Fatalf("scale %d: zero crossing at %d, want within 4 samples of %d", j, zc, center)
		}
	}
}

func TestDownsample(t *testing.T) {
	x := []float64{0, 1, 2, 3, 4, 5, 6, 7, 8, 9}
	got := Downsample(x, 4)
	want := []float64{0, 4, 8}
	if len(got) != len(want) {
		t.Fatalf("len = %d, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("sample %d = %v, want %v", i, got[i], want[i])
		}
	}
	// factor 1 copies
	c := Downsample(x, 1)
	c[0] = 99
	if x[0] == 99 {
		t.Fatal("Downsample(x,1) aliased its input")
	}
}

func TestDownsampleInt(t *testing.T) {
	x := []int32{10, 11, 12, 13, 14}
	got := DownsampleInt(x, 2)
	want := []int32{10, 12, 14}
	if len(got) != len(want) {
		t.Fatalf("len = %d, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("sample %d = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestWindowEdges(t *testing.T) {
	x := []float64{1, 2, 3, 4, 5}
	w := Window(x, 0, 2, 3)
	want := []float64{1, 1, 1, 2, 3}
	for i := range want {
		if w[i] != want[i] {
			t.Fatalf("left-edge window[%d] = %v, want %v", i, w[i], want[i])
		}
	}
	w = Window(x, 4, 2, 3)
	want = []float64{3, 4, 5, 5, 5}
	for i := range want {
		if w[i] != want[i] {
			t.Fatalf("right-edge window[%d] = %v, want %v", i, w[i], want[i])
		}
	}
}

func TestWindowInterior(t *testing.T) {
	x := make([]float64, 300)
	for i := range x {
		x[i] = float64(i)
	}
	w := Window(x, 150, 100, 100)
	if len(w) != 200 {
		t.Fatalf("window length %d, want 200", len(w))
	}
	if w[0] != 50 || w[100] != 150 || w[199] != 249 {
		t.Fatalf("window content wrong: w[0]=%v w[100]=%v w[199]=%v", w[0], w[100], w[199])
	}
}

func TestWindowIntMatchesFloat(t *testing.T) {
	xi := make([]int32, 50)
	xf := make([]float64, 50)
	r := rng.New(8)
	for i := range xi {
		v := int32(r.Intn(2048))
		xi[i] = v
		xf[i] = float64(v)
	}
	wi := WindowInt(xi, 25, 10, 10)
	wf := Window(xf, 25, 10, 10)
	for i := range wi {
		if float64(wi[i]) != wf[i] {
			t.Fatalf("int/float window mismatch at %d", i)
		}
	}
}

func TestMeanRMS(t *testing.T) {
	if Mean(nil) != 0 || RMS(nil) != 0 {
		t.Fatal("empty input should give 0")
	}
	x := []float64{3, 3, 3, 3}
	if Mean(x) != 3 {
		t.Fatalf("mean = %v", Mean(x))
	}
	if RMS(x) != 3 {
		t.Fatalf("rms = %v", RMS(x))
	}
	y := []float64{-1, 1, -1, 1}
	if Mean(y) != 0 {
		t.Fatalf("mean = %v", Mean(y))
	}
	if RMS(y) != 1 {
		t.Fatalf("rms = %v", RMS(y))
	}
}

func BenchmarkAtrousDWT(b *testing.B) {
	r := rng.New(1)
	x := make([]float64, 360*30)
	for i := range x {
		x[i] = r.Norm()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = AtrousDWT(x, 4)
	}
}
