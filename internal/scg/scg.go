// Package scg implements Møller's Scaled Conjugate Gradient algorithm
// ("A scaled conjugate gradient algorithm for fast supervised learning",
// Neural Networks 6(4), 1993), the trainer the paper uses for the NFC
// membership functions: a conjugate-gradient method whose step size comes
// from a Levenberg-Marquardt-style scaling rather than a line search, so
// each iteration costs a small, fixed number of gradient evaluations.
package scg

import (
	"errors"
	"math"
)

// Objective evaluates a function at x, stores the gradient into grad
// (len(grad) == len(x)) and returns the function value.
type Objective func(x, grad []float64) float64

// Options tunes the optimizer. Zero values select defaults.
type Options struct {
	MaxIter  int     // maximum iterations; default 200
	GradTol  float64 // stop when the gradient inf-norm falls below; default 1e-6
	StepTol  float64 // stop when |Δf| stays below for two iterations; default 1e-9
	SigmaRef float64 // σ of Møller's finite-difference second order; default 1e-4
	LambdaIn float64 // initial λ; default 1e-6
}

func (o Options) withDefaults() Options {
	if o.MaxIter <= 0 {
		o.MaxIter = 200
	}
	if o.GradTol <= 0 {
		o.GradTol = 1e-6
	}
	if o.StepTol <= 0 {
		o.StepTol = 1e-9
	}
	if o.SigmaRef <= 0 {
		o.SigmaRef = 1e-4
	}
	if o.LambdaIn <= 0 {
		o.LambdaIn = 1e-6
	}
	return o
}

// Result reports the optimization outcome.
type Result struct {
	X          []float64 // final parameters
	F          float64   // final function value
	Iterations int
	FuncEvals  int
	Converged  bool // gradient or step tolerance met (vs. iteration cap)
}

func norm2(v []float64) float64 {
	var s float64
	for _, x := range v {
		s += x * x
	}
	return math.Sqrt(s)
}

func dot(a, b []float64) float64 {
	var s float64
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}

func infNorm(v []float64) float64 {
	var m float64
	for _, x := range v {
		if a := math.Abs(x); a > m {
			m = a
		}
	}
	return m
}

// Minimize runs SCG from x0. The input slice is not modified.
func Minimize(obj Objective, x0 []float64, opts Options) (Result, error) {
	o := opts.withDefaults()
	n := len(x0)
	if n == 0 {
		return Result{}, errors.New("scg: empty parameter vector")
	}

	w := append([]float64(nil), x0...)
	grad := make([]float64, n)
	gradPlus := make([]float64, n)
	wTry := make([]float64, n)
	evals := 0

	f := obj(w, grad)
	evals++
	if math.IsNaN(f) || math.IsInf(f, 0) {
		return Result{X: w, F: f, FuncEvals: evals}, errors.New("scg: objective not finite at x0")
	}

	// r: steepest descent direction, p: conjugate direction.
	r := make([]float64, n)
	p := make([]float64, n)
	for i := range grad {
		r[i] = -grad[i]
		p[i] = -grad[i]
	}

	lambda := o.LambdaIn
	lambdaBar := 0.0
	success := true
	var delta float64
	s := make([]float64, n)
	res := Result{}
	smallSteps := 0

	for iter := 1; iter <= o.MaxIter; iter++ {
		res.Iterations = iter
		pNorm2 := dot(p, p)
		pNorm := math.Sqrt(pNorm2)
		if pNorm < 1e-300 {
			res.Converged = true
			break
		}

		if success {
			// Second-order information: s ≈ H·p via finite differences.
			sigma := o.SigmaRef / pNorm
			for i := range w {
				wTry[i] = w[i] + sigma*p[i]
			}
			obj(wTry, gradPlus)
			evals++
			for i := range s {
				s[i] = (gradPlus[i] - grad[i]) / sigma
			}
			delta = dot(p, s)
		}

		// Scale: delta += (λ - λ̄)|p|².
		delta += (lambda - lambdaBar) * pNorm2
		if delta <= 0 {
			// Make the Hessian approximation positive definite.
			lambdaBar = 2 * (lambda - delta/pNorm2)
			delta = -delta + lambda*pNorm2
			lambda = lambdaBar
		}

		mu := dot(p, r)
		alpha := mu / delta
		for i := range w {
			wTry[i] = w[i] + alpha*p[i]
		}
		fTry := obj(wTry, gradPlus)
		evals++

		// Comparison parameter Δ.
		comp := 2 * delta * (f - fTry) / (mu * mu)
		if comp >= 0 && !math.IsNaN(fTry) {
			// Successful step.
			df := f - fTry
			copy(w, wTry)
			f = fTry
			// gradient at the new point
			obj(w, grad)
			evals++
			lambdaBar = 0
			success = true

			rNew := make([]float64, n)
			for i := range grad {
				rNew[i] = -grad[i]
			}
			if iter%n == 0 {
				copy(p, rNew) // restart
			} else {
				beta := (dot(rNew, rNew) - dot(rNew, r)) / mu
				for i := range p {
					p[i] = rNew[i] + beta*p[i]
				}
			}
			copy(r, rNew)
			if comp >= 0.75 {
				lambda *= 0.25
			}
			if infNorm(grad) < o.GradTol {
				res.Converged = true
				break
			}
			if math.Abs(df) < o.StepTol {
				smallSteps++
				if smallSteps >= 2 {
					res.Converged = true
					break
				}
			} else {
				smallSteps = 0
			}
		} else {
			lambdaBar = lambda
			success = false
		}
		if comp < 0.25 || math.IsNaN(comp) {
			lambda += delta * (1 - comp) / pNorm2
			if math.IsNaN(lambda) || math.IsInf(lambda, 0) || lambda > 1e100 {
				lambda = 1e100
			}
		}
	}

	res.X = w
	res.F = f
	res.FuncEvals = evals
	return res, nil
}
