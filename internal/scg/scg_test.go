package scg

import (
	"math"
	"testing"
)

// quadratic: f(x) = Σ a_i (x_i - b_i)²
func quadratic(a, b []float64) Objective {
	return func(x, grad []float64) float64 {
		var f float64
		for i := range x {
			d := x[i] - b[i]
			f += a[i] * d * d
			grad[i] = 2 * a[i] * d
		}
		return f
	}
}

func TestMinimizeQuadratic(t *testing.T) {
	a := []float64{1, 10, 0.5, 3}
	b := []float64{1, -2, 3, 0.5}
	res, err := Minimize(quadratic(a, b), []float64{5, 5, 5, 5}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatalf("did not converge: %+v", res)
	}
	for i := range b {
		if math.Abs(res.X[i]-b[i]) > 1e-4 {
			t.Fatalf("x[%d] = %v, want %v", i, res.X[i], b[i])
		}
	}
	if res.F > 1e-8 {
		t.Fatalf("final f = %v", res.F)
	}
}

func TestMinimizeIllConditionedQuadratic(t *testing.T) {
	// Condition number 1e4: requires real conjugate-gradient behaviour.
	a := []float64{1e-2, 1e2, 1, 10, 0.1}
	b := []float64{3, -1, 0, 7, 2}
	res, err := Minimize(quadratic(a, b), make([]float64, 5), Options{MaxIter: 2000, GradTol: 1e-8})
	if err != nil {
		t.Fatal(err)
	}
	for i := range b {
		if math.Abs(res.X[i]-b[i]) > 1e-3 {
			t.Fatalf("x[%d] = %v, want %v (res %+v)", i, res.X[i], b[i], res)
		}
	}
}

func rosenbrock(x, grad []float64) float64 {
	// f = Σ 100(x_{i+1}-x_i²)² + (1-x_i)²
	n := len(x)
	var f float64
	for i := range grad {
		grad[i] = 0
	}
	for i := 0; i < n-1; i++ {
		t1 := x[i+1] - x[i]*x[i]
		t2 := 1 - x[i]
		f += 100*t1*t1 + t2*t2
		grad[i] += -400*t1*x[i] - 2*t2
		grad[i+1] += 200 * t1
	}
	return f
}

func TestMinimizeRosenbrock(t *testing.T) {
	res, err := Minimize(rosenbrock, []float64{-1.2, 1}, Options{MaxIter: 5000, GradTol: 1e-7, StepTol: 1e-14})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.X[0]-1) > 1e-2 || math.Abs(res.X[1]-1) > 1e-2 {
		t.Fatalf("Rosenbrock minimum not found: %+v", res)
	}
}

func TestMinimizeStartsAtOptimum(t *testing.T) {
	a := []float64{1, 1}
	b := []float64{0, 0}
	res, err := Minimize(quadratic(a, b), []float64{0, 0}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged || res.F != 0 {
		t.Fatalf("optimum start should converge immediately: %+v", res)
	}
}

func TestMinimizeRespectsIterationCap(t *testing.T) {
	res, err := Minimize(rosenbrock, []float64{-1.2, 1}, Options{MaxIter: 3})
	if err != nil {
		t.Fatal(err)
	}
	if res.Iterations > 3 {
		t.Fatalf("ran %d iterations with cap 3", res.Iterations)
	}
}

func TestMinimizeEmptyVector(t *testing.T) {
	if _, err := Minimize(rosenbrock, nil, Options{}); err == nil {
		t.Fatal("empty parameter vector should error")
	}
}

func TestMinimizeNonFiniteStart(t *testing.T) {
	bad := func(x, grad []float64) float64 {
		for i := range grad {
			grad[i] = math.NaN()
		}
		return math.NaN()
	}
	if _, err := Minimize(bad, []float64{1}, Options{}); err == nil {
		t.Fatal("NaN objective at start should error")
	}
}

func TestMinimizeDoesNotModifyInput(t *testing.T) {
	x0 := []float64{5, 5}
	_, err := Minimize(quadratic([]float64{1, 1}, []float64{0, 0}), x0, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if x0[0] != 5 || x0[1] != 5 {
		t.Fatal("Minimize modified its input slice")
	}
}

func TestMonotoneDecrease(t *testing.T) {
	// Track accepted f values via a wrapper: each accepted step must not
	// increase the objective (SCG only moves on successful steps).
	var history []float64
	obj := func(x, grad []float64) float64 {
		f := rosenbrock(x, grad)
		history = append(history, f)
		return f
	}
	res, err := Minimize(obj, []float64{-1.2, 1}, Options{MaxIter: 500})
	if err != nil {
		t.Fatal(err)
	}
	if res.F > rosenbrockAt([]float64{-1.2, 1}) {
		t.Fatalf("final value %v worse than start", res.F)
	}
}

func rosenbrockAt(x []float64) float64 {
	g := make([]float64, len(x))
	return rosenbrock(x, g)
}

func BenchmarkMinimizeQuadratic100(b *testing.B) {
	n := 100
	a := make([]float64, n)
	bb := make([]float64, n)
	x0 := make([]float64, n)
	for i := range a {
		a[i] = 1 + float64(i%7)
		bb[i] = float64(i % 5)
		x0[i] = 10
	}
	obj := quadratic(a, bb)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Minimize(obj, x0, Options{MaxIter: 300}); err != nil {
			b.Fatal(err)
		}
	}
}
