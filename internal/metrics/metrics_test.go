package metrics

import (
	"math"
	"testing"

	"rpbeat/internal/nfc"
	"rpbeat/internal/rng"
)

// evalsFixture builds a controllable evaluation set:
// - nClear normals with strong N fuzzy values
// - nBorder normals with weak margins (flip to U early)
// - aClear abnormals correctly V
// - aMissed abnormals that look N with given margins
func evalsFixture() []Eval {
	var evals []Eval
	add := func(label uint8, f [3]float64, n int) {
		for i := 0; i < n; i++ {
			evals = append(evals, Eval{Label: label, F: f})
		}
	}
	add(0, [3]float64{1.0, 0.1, 0.1}, 80)   // clear normals (margin 0.75)
	add(0, [3]float64{0.5, 0.45, 0.05}, 20) // borderline normals (margin 0.05)
	add(2, [3]float64{0.1, 0.1, 1.0}, 15)   // clear V
	add(1, [3]float64{0.6, 0.55, 0.05}, 5)  // L misread as N (margin ~0.0417)
	return evals
}

func TestEvaluateAlphaZero(t *testing.T) {
	p, conf := Evaluate(evalsFixture(), 0)
	if p.NDR != 1.0 {
		t.Fatalf("NDR = %v, want 1 (all normals argmax N)", p.NDR)
	}
	// 15 of 20 abnormal recognized.
	if math.Abs(p.ARR-0.75) > 1e-9 {
		t.Fatalf("ARR = %v, want 0.75", p.ARR)
	}
	if conf.Total() != 120 {
		t.Fatalf("total = %d", conf.Total())
	}
}

func TestEvaluateHighAlpha(t *testing.T) {
	// alpha above every margin: everything U.
	p, conf := Evaluate(evalsFixture(), 0.9)
	if p.NDR != 0 {
		t.Fatalf("NDR = %v, want 0", p.NDR)
	}
	if p.ARR != 1 {
		t.Fatalf("ARR = %v, want 1", p.ARR)
	}
	if conf[0][nfc.DecideU] != 100 {
		t.Fatalf("normals as U = %d, want 100", conf[0][nfc.DecideU])
	}
}

func TestMinAlphaForARRExact(t *testing.T) {
	evals := evalsFixture()
	// Need ARR >= 0.9 -> 18 of 20. 15 always recognized; must flip 3 of the
	// 5 misread L beats (all with margin (0.6-0.55)/1.2 = 0.0416667).
	alpha, achieved, err := MinAlphaForARR(evals, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	if !achieved {
		t.Fatal("target should be achievable")
	}
	p, _ := Evaluate(evals, alpha)
	if p.ARR < 0.9 {
		t.Fatalf("ARR at returned alpha = %v < 0.9", p.ARR)
	}
	// The misread beats share one margin, so flipping any flips all 5.
	if p.ARR != 1.0 {
		t.Fatalf("ARR = %v, want 1.0 (all share the critical alpha)", p.ARR)
	}
	// The borderline normals (margin 0.05) must NOT yet be rejected at this
	// alpha (0.0417 < 0.05), so NDR stays 1.
	if p.NDR != 1.0 {
		t.Fatalf("NDR = %v, want 1.0", p.NDR)
	}
}

func TestMinAlphaForARRZeroWhenAlreadyMet(t *testing.T) {
	evals := evalsFixture()
	alpha, achieved, err := MinAlphaForARR(evals, 0.7) // 0.75 at alpha 0
	if err != nil || !achieved {
		t.Fatal(err, achieved)
	}
	if alpha != 0 {
		t.Fatalf("alpha = %v, want 0", alpha)
	}
}

func TestMinAlphaForARRUnreachable(t *testing.T) {
	// Abnormal beat with M2 = M3 = 0: stays N forever.
	evals := []Eval{
		{Label: 1, F: [3]float64{1, 0, 0}},
		{Label: 0, F: [3]float64{1, 0, 0}},
	}
	alpha, achieved, err := MinAlphaForARR(evals, 0.99)
	if err != nil {
		t.Fatal(err)
	}
	if achieved {
		t.Fatalf("target should be unreachable, got alpha %v", alpha)
	}
}

func TestMinAlphaForARRNoAbnormals(t *testing.T) {
	evals := []Eval{{Label: 0, F: [3]float64{1, 0, 0}}}
	if _, _, err := MinAlphaForARR(evals, 0.9); err == nil {
		t.Fatal("no abnormal beats should be an error")
	}
}

func TestARRMonotoneInAlpha(t *testing.T) {
	r := rng.New(1)
	var evals []Eval
	for i := 0; i < 500; i++ {
		var f [3]float64
		for l := range f {
			f[l] = r.Float64()
		}
		evals = append(evals, Eval{Label: uint8(r.Intn(3)), F: f})
	}
	prevARR, prevNDR := -1.0, 2.0
	for _, a := range []float64{0, 0.05, 0.1, 0.2, 0.4, 0.8, 1} {
		p, _ := Evaluate(evals, a)
		if p.ARR < prevARR-1e-12 {
			t.Fatalf("ARR decreased at alpha %v", a)
		}
		if p.NDR > prevNDR+1e-12 {
			t.Fatalf("NDR increased at alpha %v", a)
		}
		prevARR, prevNDR = p.ARR, p.NDR
	}
}

func TestMinAlphaMatchesSweep(t *testing.T) {
	// The exact operating-point search must agree with a fine grid sweep.
	r := rng.New(2)
	var evals []Eval
	for i := 0; i < 300; i++ {
		var f [3]float64
		for l := range f {
			f[l] = r.Float64()
		}
		evals = append(evals, Eval{Label: uint8(r.Intn(3)), F: f})
	}
	const target = 0.97
	alpha, achieved, err := MinAlphaForARR(evals, target)
	if err != nil || !achieved {
		t.Fatal(err, achieved)
	}
	p, _ := Evaluate(evals, alpha)
	if p.ARR < target {
		t.Fatalf("exact search: ARR %v < %v", p.ARR, target)
	}
	// No smaller alpha on a fine grid should reach the target.
	for a := 0.0; a < alpha; a += alpha / 200 {
		pg, _ := Evaluate(evals, a)
		if pg.ARR >= target && pg.NDR > p.NDR {
			t.Fatalf("grid alpha %v dominates exact alpha %v", a, alpha)
		}
	}
}

func TestPareto(t *testing.T) {
	pts := []Point{
		{Alpha: 0.1, NDR: 0.9, ARR: 0.90},
		{Alpha: 0.2, NDR: 0.85, ARR: 0.95},
		{Alpha: 0.3, NDR: 0.80, ARR: 0.97},
		{Alpha: 0.15, NDR: 0.7, ARR: 0.93}, // dominated
		{Alpha: 0.4, NDR: 0.6, ARR: 0.99},
	}
	front := Pareto(pts)
	if len(front) != 4 {
		t.Fatalf("front size %d, want 4: %+v", len(front), front)
	}
	for i := 1; i < len(front); i++ {
		if front[i].ARR < front[i-1].ARR {
			t.Fatal("front not sorted by ARR")
		}
		if front[i].NDR > front[i-1].NDR {
			t.Fatal("front not monotone in NDR")
		}
	}
	for _, p := range front {
		if p.Alpha == 0.15 {
			t.Fatal("dominated point survived")
		}
	}
}

func TestCurve(t *testing.T) {
	evals := evalsFixture()
	alphas := []float64{0, 0.05, 0.5}
	pts := Curve(evals, alphas)
	if len(pts) != 3 {
		t.Fatalf("curve length %d", len(pts))
	}
	for i, p := range pts {
		if p.Alpha != alphas[i] {
			t.Fatalf("point %d alpha %v", i, p.Alpha)
		}
	}
}

func TestNDRAtARR(t *testing.T) {
	evals := evalsFixture()
	p, conf, err := NDRAtARR(evals, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	if p.ARR < 0.9 {
		t.Fatalf("ARR %v", p.ARR)
	}
	if conf.Total() != len(evals) {
		t.Fatal("confusion total mismatch")
	}
	// Unreachable target errors but still reports the best point.
	bad := []Eval{{Label: 1, F: [3]float64{1, 0, 0}}}
	if _, _, err := NDRAtARR(bad, 0.99); err == nil {
		t.Fatal("unreachable target should error")
	}
}

func TestConfusionString(t *testing.T) {
	var c Confusion
	c.Add(0, nfc.DecideN)
	c.Add(1, nfc.DecideU)
	s := c.String()
	if len(s) == 0 {
		t.Fatal("empty confusion string")
	}
}
