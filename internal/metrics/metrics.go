// Package metrics computes the paper's figures of merit:
//
//   - NDR (Normal Discard Rate): fraction of normal beats correctly
//     identified as normal and therefore discarded from further analysis;
//   - ARR (Abnormal Recognition Rate): fraction of abnormal beats (V, L)
//     that correctly activate the delineation block — a beat counts as
//     recognized when the classifier outputs V, L or U (anything but a
//     confident N).
//
// It also provides the operating-point machinery used throughout Sec. IV:
// the defuzzification coefficient α trades NDR against ARR, and experiments
// pick the smallest α that achieves a minimum ARR (97% in Table II), or
// sweep α to trace the NDR/ARR Pareto fronts of Figure 5.
package metrics

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"rpbeat/internal/nfc"
)

// Eval is one classified beat: its true label (0 = N, 1 = L, 2 = V, the
// ecgsyn.Class order) and its fuzzy values (any common scaling is fine —
// only ratios matter).
type Eval struct {
	Label uint8
	F     [nfc.NumClasses]float64
}

// Confusion counts decisions per true class: rows are true classes (N, L,
// V), columns are decisions (N, L, V, U).
type Confusion [nfc.NumClasses][4]int

// Add records one decision.
func (c *Confusion) Add(label uint8, d nfc.Decision) {
	c[label][d]++
}

// Total returns the number of recorded beats.
func (c *Confusion) Total() int {
	n := 0
	for _, row := range c {
		for _, v := range row {
			n += v
		}
	}
	return n
}

// String renders the confusion matrix in a compact fixed-width table.
func (c *Confusion) String() string {
	names := [nfc.NumClasses]string{"N", "L", "V"}
	out := "true\\dec      N        L        V        U\n"
	for l := 0; l < nfc.NumClasses; l++ {
		out += fmt.Sprintf("%-8s", names[l])
		for d := 0; d < 4; d++ {
			out += fmt.Sprintf(" %8d", c[l][d])
		}
		out += "\n"
	}
	return out
}

// Point is one operating point on the NDR/ARR trade-off.
type Point struct {
	Alpha float64
	NDR   float64 // normal discard rate, in [0, 1]
	ARR   float64 // abnormal recognition rate, in [0, 1]
}

// Evaluate applies the defuzzification rule at the given α to every beat
// and returns the operating point and full confusion matrix.
func Evaluate(evals []Eval, alpha float64) (Point, Confusion) {
	var conf Confusion
	for _, e := range evals {
		conf.Add(e.Label, nfc.Decide(e.F, alpha))
	}
	return pointFrom(conf, alpha), conf
}

func pointFrom(c Confusion, alpha float64) Point {
	normalTotal := 0
	for _, v := range c[0] {
		normalTotal += v
	}
	abnormalTotal, abnormalRecognized := 0, 0
	for l := 1; l < nfc.NumClasses; l++ {
		for d, v := range c[l] {
			abnormalTotal += v
			if nfc.Decision(d).Abnormal() {
				abnormalRecognized += v
			}
		}
	}
	p := Point{Alpha: alpha}
	if normalTotal > 0 {
		p.NDR = float64(c[0][nfc.DecideN]) / float64(normalTotal)
	}
	if abnormalTotal > 0 {
		p.ARR = float64(abnormalRecognized) / float64(abnormalTotal)
	}
	return p
}

// criticalAlpha returns the α above which the beat's decision flips to U,
// together with the arg-max class. A beat is assigned its arg-max class
// while α ≤ (M1-M2)/S.
func criticalAlpha(f [nfc.NumClasses]float64) (float64, int) {
	best := 0
	for l := 1; l < nfc.NumClasses; l++ {
		if f[l] > f[best] {
			best = l
		}
	}
	second := -1
	for l := 0; l < nfc.NumClasses; l++ {
		if l == best {
			continue
		}
		if second == -1 || f[l] > f[second] {
			second = l
		}
	}
	sum := f[0] + f[1] + f[2]
	if sum <= 0 || math.IsNaN(sum) {
		return -1, best // always U
	}
	return (f[best] - f[second]) / sum, best
}

// MinAlphaForARR returns the smallest α ∈ [0, 1] whose ARR reaches minARR,
// computed exactly from the per-beat critical α values (no grid search).
// If even α = 1 cannot reach the target (possible in the integer pipeline
// when fuzzy values collapse), it returns 1 with achieved = false.
func MinAlphaForARR(evals []Eval, minARR float64) (alpha float64, achieved bool, err error) {
	abnormalTotal := 0
	// Critical alphas of abnormal beats currently misread as N: the beat
	// becomes "recognized" (U) once α exceeds its critical value.
	var critical []float64
	misreadForever := 0
	for _, e := range evals {
		if e.Label == 0 {
			continue
		}
		abnormalTotal++
		ca, best := criticalAlpha(e.F)
		if best != nfc.IdxN || ca < 0 {
			continue // already recognized at every α
		}
		if ca >= 1 {
			// Stays N even at α = 1 (requires M2 = M3 = 0).
			misreadForever++
			continue
		}
		critical = append(critical, ca)
	}
	if abnormalTotal == 0 {
		return 0, false, errors.New("metrics: no abnormal beats in evaluation set")
	}
	need := int(math.Ceil(minARR * float64(abnormalTotal)))
	alwaysRecognized := abnormalTotal - len(critical) - misreadForever
	if alwaysRecognized >= need {
		return 0, true, nil
	}
	if alwaysRecognized+len(critical) < need {
		return 1, false, nil
	}
	// Flip the beats with the smallest critical α first.
	sort.Float64s(critical)
	kth := critical[need-alwaysRecognized-1]
	// Assignment uses (M1-M2) ≥ α·S, so the beat flips strictly above its
	// critical value: nudge by one ulp. The critical ratio (M1-M2)/S and the
	// rule's product α·S round differently in float64, so verify against
	// the actual decision rule and walk up a few ulps if needed.
	alpha = math.Nextafter(kth, 2)
	for i := 0; i < 8; i++ {
		if p, _ := Evaluate(evals, alpha); p.ARR*float64(abnormalTotal) >= float64(need)-1e-9 {
			return alpha, true, nil
		}
		alpha = math.Nextafter(alpha, 2)
	}
	return alpha, true, nil
}

// Curve evaluates the operating point at each α (ascending order is
// conventional but not required).
func Curve(evals []Eval, alphas []float64) []Point {
	pts := make([]Point, len(alphas))
	for i, a := range alphas {
		pts[i], _ = Evaluate(evals, a)
	}
	return pts
}

// Pareto extracts the non-dominated subset of points (maximizing both NDR
// and ARR), sorted by ascending ARR.
func Pareto(points []Point) []Point {
	sorted := append([]Point(nil), points...)
	sort.Slice(sorted, func(i, j int) bool {
		if sorted[i].ARR != sorted[j].ARR {
			return sorted[i].ARR > sorted[j].ARR
		}
		return sorted[i].NDR > sorted[j].NDR
	})
	var front []Point
	bestNDR := math.Inf(-1)
	for _, p := range sorted {
		if p.NDR > bestNDR {
			front = append(front, p)
			bestNDR = p.NDR
		}
	}
	// front is in descending-ARR order; reverse to ascending.
	for i, j := 0, len(front)-1; i < j; i, j = i+1, j-1 {
		front[i], front[j] = front[j], front[i]
	}
	return front
}

// NDRAtARR is the Table II primitive: the NDR obtained at the smallest α
// achieving the requested minimum ARR.
func NDRAtARR(evals []Eval, minARR float64) (Point, Confusion, error) {
	alpha, achieved, err := MinAlphaForARR(evals, minARR)
	if err != nil {
		return Point{}, Confusion{}, err
	}
	if !achieved {
		p, c := Evaluate(evals, alpha)
		return p, c, fmt.Errorf("metrics: ARR target %.4f unreachable (best %.4f at α=%.4f)", minARR, p.ARR, alpha)
	}
	p, c := Evaluate(evals, alpha)
	return p, c, nil
}
