package metrics

import (
	"math"
	"testing"
	"testing/quick"

	"rpbeat/internal/nfc"
	"rpbeat/internal/rng"
)

// TestCriticalAlphaConsistentWithDecide verifies the closed-form critical α
// against the decision rule: a beat keeps its arg-max class for α up to the
// critical value and flips to U strictly above it.
func TestCriticalAlphaConsistentWithDecide(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		var fv [nfc.NumClasses]float64
		for l := range fv {
			fv[l] = r.Float64() * 10
		}
		ca, best := criticalAlpha(fv)
		if ca < 0 {
			return nfc.Decide(fv, 0) == nfc.DecideU
		}
		classOf := func(i int) nfc.Decision {
			switch i {
			case nfc.IdxN:
				return nfc.DecideN
			case nfc.IdxL:
				return nfc.DecideL
			}
			return nfc.DecideV
		}
		// The ratio (M1-M2)/S and the rule's product α·S round differently,
		// so the boundary is exact only to ~1 ulp: probe comfortably below
		// and above instead of at the critical value itself.
		if belowα := ca * (1 - 1e-12); belowα >= 0 {
			if nfc.Decide(fv, belowα) != classOf(best) {
				return false
			}
		}
		if aboveα := ca + 1e-9*(1+ca); aboveα <= 1 {
			if nfc.Decide(fv, aboveα) != nfc.DecideU {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// TestParetoFrontDominance verifies no front point is dominated by any
// input point.
func TestParetoFrontDominance(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		n := 5 + r.Intn(50)
		pts := make([]Point, n)
		for i := range pts {
			pts[i] = Point{Alpha: r.Float64(), NDR: r.Float64(), ARR: r.Float64()}
		}
		front := Pareto(pts)
		for _, fp := range front {
			for _, p := range pts {
				if p.NDR > fp.NDR && p.ARR > fp.ARR {
					return false // dominated point on the front
				}
			}
		}
		// Every input point must be dominated-or-equal by some front point.
		for _, p := range pts {
			ok := false
			for _, fp := range front {
				if fp.NDR >= p.NDR && fp.ARR >= p.ARR {
					ok = true
					break
				}
			}
			if !ok {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestMinAlphaIsMinimal checks minimality: reducing the returned α by a
// whisker must violate the ARR constraint (unless α is already 0).
func TestMinAlphaIsMinimal(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		n := 50 + r.Intn(200)
		evals := make([]Eval, n)
		for i := range evals {
			var fv [nfc.NumClasses]float64
			for l := range fv {
				fv[l] = r.Float64()
			}
			evals[i] = Eval{Label: uint8(r.Intn(3)), F: fv}
		}
		const target = 0.9
		alpha, achieved, err := MinAlphaForARR(evals, target)
		if err != nil {
			return true // no abnormals drawn; nothing to check
		}
		if !achieved {
			return true
		}
		p, _ := Evaluate(evals, alpha)
		if p.ARR < target {
			return false
		}
		if alpha == 0 {
			return true
		}
		// One ulp below the returned α must not strictly improve NDR while
		// still meeting the target (that would mean α was not minimal).
		below, _ := Evaluate(evals, nextDown(alpha))
		return below.ARR < target || below.NDR <= p.NDR
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func nextDown(x float64) float64 { return math.Nextafter(x, -1) }
