package bitemb

import (
	"errors"
	"fmt"
	"runtime"
	"sort"

	"rpbeat/internal/beatset"
	"rpbeat/internal/ga"
	"rpbeat/internal/metrics"
	"rpbeat/internal/nfc"
	"rpbeat/internal/rng"
	"rpbeat/internal/rp"
)

// Config parameterizes binary-head training. Zero values select the same
// defaults as the fuzzy methodology where the paper states them (GA 20×30,
// ARR ≥ 0.97); the projection family is the very-sparse one (density ln(d)/d),
// the head's speed budget — see rp.NewVerySparse.
type Config struct {
	// Coeffs is k, the number of embedding bits; default 8.
	Coeffs int
	// Downsample reduces the window rate before projection; default 1.
	Downsample int
	// PopSize and Generations configure the GA; defaults 20 and 30.
	PopSize     int
	Generations int
	// MutationRate is the per-element resampling probability; default 0.02.
	MutationRate float64
	// MinARR is the abnormal-recognition constraint for α_train; default 0.97.
	MinARR float64
	// Seed drives matrix generation and the GA.
	Seed uint64
	// Parallel bounds concurrent fitness evaluations; default NumCPU.
	Parallel int
}

func (c Config) withDefaults() Config {
	if c.Coeffs <= 0 {
		c.Coeffs = 8
	}
	if c.Downsample <= 0 {
		c.Downsample = 1
	}
	if c.PopSize <= 0 {
		c.PopSize = 20
	}
	if c.Generations <= 0 {
		c.Generations = 30
	}
	if c.MutationRate <= 0 {
		c.MutationRate = 0.02
	}
	if c.MinARR <= 0 {
		c.MinARR = 0.97
	}
	if c.Parallel <= 0 {
		c.Parallel = runtime.NumCPU()
	}
	return c
}

// Stats reports what training did, mirroring core.TrainStats.
type Stats struct {
	BestFitness  float64
	History      []float64
	FitnessEvals int
	AlphaTrain   float64
	Train2Point  metrics.Point
}

// Fit derives the head from integer projections of training beats: each
// threshold is the median (the adaptive order statistic) of its coefficient,
// each prototype the per-bit majority vote of its class, and each radius the
// maximum within-class Hamming distance to the class prototype plus one bit
// of slack (capped at K) — so in-distribution beats are never radius-
// rejected, and the gate only fires on codes farther out than anything the
// class exhibited in training.
func Fit(proj [][]int32, labels []uint8, k int) (*Params, error) {
	if len(proj) == 0 {
		return nil, errors.New("bitemb: empty training projection set")
	}
	if len(labels) != len(proj) {
		return nil, fmt.Errorf("bitemb: %d labels for %d beats", len(labels), len(proj))
	}
	p := &Params{K: k, Thresholds: make([]int32, k)}

	// Thresholds: per-coefficient medians over all training beats.
	col := make([]int32, len(proj))
	for j := 0; j < k; j++ {
		for i, u := range proj {
			if len(u) != k {
				return nil, fmt.Errorf("bitemb: beat %d has %d coefficients, want %d", i, len(u), k)
			}
			col[i] = u[j]
		}
		sort.Slice(col, func(a, b int) bool { return col[a] < col[b] })
		p.Thresholds[j] = col[len(col)/2]
	}

	// Codes, then per-class majority-bit prototypes.
	w := Words(k)
	codes := make([][]uint64, len(proj))
	flat := make([]uint64, len(proj)*w)
	for i, u := range proj {
		codes[i] = flat[i*w : (i+1)*w]
		p.PackInto(u, codes[i])
	}
	var ones [nfc.NumClasses][]int
	var count [nfc.NumClasses]int
	for l := range ones {
		ones[l] = make([]int, k)
	}
	for i, code := range codes {
		l := labels[i]
		if int(l) >= nfc.NumClasses {
			return nil, fmt.Errorf("bitemb: label %d out of range", l)
		}
		count[l]++
		for j := 0; j < k; j++ {
			ones[l][j] += int(code[j/64] >> uint(j&63) & 1)
		}
	}
	for l := 0; l < nfc.NumClasses; l++ {
		if count[l] == 0 {
			return nil, fmt.Errorf("bitemb: class %d has no training beats", l)
		}
		p.Protos[l] = make([]uint64, w)
		for j := 0; j < k; j++ {
			if 2*ones[l][j] >= count[l] {
				p.Protos[l][j/64] |= 1 << uint(j&63)
			}
		}
	}

	// Radii: max within-class distance + 1 bit of slack, capped at K.
	for i, code := range codes {
		f := p.Similarity(code)
		if d := k - int(f[labels[i]]); d > int(p.Radii[labels[i]]) {
			p.Radii[labels[i]] = uint16(d)
		}
	}
	for l := range p.Radii {
		if int(p.Radii[l]) < k {
			p.Radii[l]++
		}
	}
	return p, p.Validate()
}

// Evals scores the head over integer projections, producing the shared
// metrics rows: F is the similarity vector k - dist, so the α machinery
// (MinAlphaForARR, Pareto, Evaluate) applies to this head unchanged.
func (p *Params) Evals(proj [][]int32, labels []uint8) []metrics.Eval {
	code := make([]uint64, Words(p.K))
	evals := make([]metrics.Eval, len(proj))
	for i, u := range proj {
		p.PackInto(u, code)
		f := p.Similarity(code)
		evals[i] = metrics.Eval{
			Label: labels[i],
			F:     [nfc.NumClasses]float64{float64(f[0]), float64(f[1]), float64(f[2])},
		}
	}
	return evals
}

// Train runs the two-step methodology with the binary head substituted for
// the NFC: a GA over very-sparse projection matrices, each candidate scored
// by fitting the head on training set 1 and measuring the NDR on training
// set 2 at the smallest α achieving MinARR — structurally identical to
// core.Train, with Fit replacing the SCG-trained membership functions (and
// therefore orders of magnitude cheaper per candidate).
func Train(ds *beatset.Dataset, cfg Config) (*rp.Matrix, *Params, Stats, error) {
	c := cfg.withDefaults()
	var stats Stats

	d := ds.Dim(c.Downsample)
	win1 := intWindows(ds, ds.Train1, c.Downsample)
	labels1 := ds.Labels(ds.Train1)
	win2 := intWindows(ds, ds.Train2, c.Downsample)
	labels2 := ds.Labels(ds.Train2)
	if len(win1) == 0 || len(win2) == 0 {
		return nil, nil, stats, errors.New("bitemb: empty training split")
	}

	score := func(P *rp.Matrix) (*Params, []metrics.Eval, error) {
		par, err := Fit(projectAll(P, win1), labels1, c.Coeffs)
		if err != nil {
			return nil, nil, err
		}
		return par, par.Evals(projectAll(P, win2), labels2), nil
	}
	fitness := func(P *rp.Matrix) float64 {
		_, evals, err := score(P)
		if err != nil {
			return -2
		}
		alpha, achieved, err := metrics.MinAlphaForARR(evals, c.MinARR)
		if err != nil {
			return -2
		}
		pt, _ := metrics.Evaluate(evals, alpha)
		if !achieved {
			return -1 + (pt.ARR - c.MinARR)
		}
		return pt.NDR
	}

	seedRng := rng.New(c.Seed)
	initial := make([]*rp.Matrix, c.PopSize)
	for i := range initial {
		initial[i] = rp.NewVerySparse(seedRng.Split(), c.Coeffs, d)
	}
	gaRes, err := ga.Run(initial, ga.Config[*rp.Matrix]{
		Generations:  c.Generations,
		MutationRate: c.MutationRate,
		Fitness:      fitness,
		Crossover:    crossoverRows,
		Mutate:       mutateVerySparse,
		Parallel:     c.Parallel,
		Seed:         seedRng.Uint64(),
	})
	if err != nil {
		return nil, nil, stats, err
	}
	stats.BestFitness = gaRes.BestFitness
	stats.History = gaRes.History
	stats.FitnessEvals = gaRes.Evaluations

	best := gaRes.Best
	par, evals, err := score(best)
	if err != nil {
		return nil, nil, stats, err
	}
	alpha, achieved, err := metrics.MinAlphaForARR(evals, c.MinARR)
	if err != nil {
		return nil, nil, stats, err
	}
	if !achieved {
		return nil, nil, stats, fmt.Errorf("bitemb: final head cannot reach ARR %.3f on training set 2", c.MinARR)
	}
	stats.AlphaTrain = alpha
	stats.Train2Point, _ = metrics.Evaluate(evals, alpha)
	return best, par, stats, nil
}

// intWindows extracts the integer windows of the indexed beats — the binary
// head trains directly in the integer domain the node executes in, so no
// float/integer calibration gap exists for the thresholds.
func intWindows(ds *beatset.Dataset, idx []int, downsample int) [][]int32 {
	out := make([][]int32, len(idx))
	for i, b := range idx {
		out[i] = ds.IntWindow(b, downsample)
	}
	return out
}

// projectAll projects every window through P.
func projectAll(P *rp.Matrix, wins [][]int32) [][]int32 {
	out := make([][]int32, len(wins))
	for i, w := range wins {
		out[i] = P.ProjectInt(w)
	}
	return out
}

// crossoverRows is uniform row crossover, preserving whole coefficients —
// the same operator the fuzzy methodology uses.
func crossoverRows(r *rng.Rand, a, b *rp.Matrix) *rp.Matrix {
	child := a.Clone()
	for row := 0; row < child.K; row++ {
		if r.Float64() < 0.5 {
			copy(child.El[row*child.D:(row+1)*child.D], b.El[row*b.D:(row+1)*b.D])
		}
	}
	return child
}

// mutateVerySparse resamples each element with the configured probability
// from the very-sparse distribution, keeping the matrix in its family.
func mutateVerySparse(r *rng.Rand, m *rp.Matrix, rate float64) *rp.Matrix {
	out := m.Clone()
	for i := range out.El {
		if r.Float64() < rate {
			out.El[i] = r.LogSparseTrit(out.D)
		}
	}
	return out
}
