// Package bitemb implements the binary adaptive embedding head: a second
// classifier kind alongside the paper's neuro-fuzzy head, following Valsesia
// & Magli's "binary adaptive embeddings from order statistics of random
// projections" (see PAPERS.md).
//
// Instead of evaluating k×3 membership functions and a product fuzzifier per
// beat, the head thresholds each projected coefficient u_j at an adaptive
// per-coefficient threshold t_j (an order statistic — the training-set
// median — of that coefficient, which is what makes the embedding
// "adaptive"), packs the k resulting sign bits into ⌈k/64⌉ uint64 words, and
// classifies by Hamming distance to one packed prototype per class:
//
//	bit_j   = 1  iff  u_j ≥ t_j
//	dist_l  = popcount(code XOR proto_l)
//
// The decision reuses the paper's defuzzification machinery verbatim by
// mapping distances to similarities f_l = k - dist_l: the division-free Q15
// margin rule (fixp.Defuzzify) then applies unchanged, so α calibration,
// MinAlphaForARR and the Pareto drivers in internal/metrics all work on this
// head exactly as on the fuzzy one. A per-class Hamming acceptance radius
// (calibrated from the training distance distribution) additionally rejects
// beats far from every prototype as U; since U counts as "recognized" for
// ARR, the radius gate can only make the abnormal-recognition guarantee
// tighter, never looser, so the α picked by MinAlphaForARR stays valid.
//
// The whole per-beat cost is the sparse projection plus a handful of word
// ops — branch-free and data-independent — and the model above the
// projection matrix is k thresholds + 3 packed prototypes + 3 radii: a few
// dozen bytes at the paper's k = 8.
package bitemb

import (
	"errors"
	"fmt"
	"math/bits"

	"rpbeat/internal/fixp"
	"rpbeat/internal/nfc"
	"rpbeat/internal/rp"
)

// Words returns the number of uint64 code words a k-bit embedding packs
// into.
func Words(k int) int { return (k + 63) / 64 }

// Params is the binary embedding head: thresholds, packed class prototypes
// and acceptance radii. It is immutable after construction and may be shared
// freely across goroutines (every classify method writes only into
// caller-owned scratch).
type Params struct {
	// K is the number of embedding bits (= projection coefficients).
	K int
	// Thresholds holds the per-coefficient binarization thresholds, in the
	// integer units of the projected ADC counts. Fit derives them as
	// training-set medians.
	Thresholds []int32
	// Protos holds one packed prototype code per class (nfc class order),
	// Words(K) words each, bit j of word j/64 carrying coefficient j. Bits at
	// positions ≥ K are zero.
	Protos [nfc.NumClasses][]uint64
	// Radii holds the per-class Hamming acceptance radius: a beat whose
	// arg-max class l sits further than Radii[l] bits from proto_l is
	// rejected as U.
	Radii [nfc.NumClasses]uint16
}

// Validate checks structural invariants.
func (p *Params) Validate() error {
	if p.K <= 0 {
		return errors.New("bitemb: non-positive K")
	}
	if len(p.Thresholds) != p.K {
		return fmt.Errorf("bitemb: %d thresholds, want %d", len(p.Thresholds), p.K)
	}
	w := Words(p.K)
	for l := 0; l < nfc.NumClasses; l++ {
		if len(p.Protos[l]) != w {
			return fmt.Errorf("bitemb: prototype %d has %d words, want %d", l, len(p.Protos[l]), w)
		}
		if r := p.K & 63; r != 0 {
			if p.Protos[l][w-1]&^(1<<uint(r)-1) != 0 {
				return fmt.Errorf("bitemb: prototype %d has bits set beyond K=%d", l, p.K)
			}
		}
		if int(p.Radii[l]) > p.K {
			return fmt.Errorf("bitemb: radius %d exceeds K=%d", p.Radii[l], p.K)
		}
	}
	return nil
}

// TableBytes reports the model footprint above the projection matrix: the
// thresholds, the packed prototypes and the radii — what the node stores
// besides the matrix and code.
func (p *Params) TableBytes() int {
	return 4*len(p.Thresholds) + 8*nfc.NumClasses*Words(p.K) + 2*nfc.NumClasses
}

// PackInto binarizes the projected coefficients u (length K) into the packed
// code (length Words(K)). The sign extraction is branch-free: bit j is set
// iff u_j ≥ t_j.
//
//rpbeat:allocfree
func (p *Params) PackInto(u []int32, code []uint64) {
	if len(u) != p.K || len(code) != Words(p.K) {
		panic("bitemb: PackInto dimension mismatch")
	}
	var word uint64
	wi := 0
	for j, v := range u {
		word |= uint64((^uint32(v-p.Thresholds[j]))>>31) << uint(j&63)
		if j&63 == 63 {
			code[wi] = word
			word = 0
			wi++
		}
	}
	if p.K&63 != 0 {
		code[wi] = word
	}
}

// Similarity returns the per-class similarities f_l = K - hamming(code,
// proto_l) — the non-negative values the shared defuzzification and metrics
// machinery consumes in place of the fuzzy accumulators.
//
//rpbeat:allocfree
func (p *Params) Similarity(code []uint64) [nfc.NumClasses]uint32 {
	if len(code) != Words(p.K) {
		panic("bitemb: Similarity dimension mismatch")
	}
	k := uint32(p.K)
	var f [nfc.NumClasses]uint32
	for l := 0; l < nfc.NumClasses; l++ {
		proto := p.Protos[l]
		var d uint32
		for w := range proto {
			d += uint32(bits.OnesCount64(code[w] ^ proto[w]))
		}
		f[l] = k - d
	}
	return f
}

// ClassifyCode applies the decision rule to a packed code: the Q15 margin
// rule over similarities (identical to the fuzzy head's defuzzification),
// then the per-class radius gate.
//
//rpbeat:allocfree
func (p *Params) ClassifyCode(code []uint64, alpha fixp.AlphaQ15) nfc.Decision {
	if len(code) != Words(p.K) {
		panic("bitemb: ClassifyCode dimension mismatch")
	}
	if p.K <= 64 {
		return p.classifyWord(code[0], alpha)
	}
	f := p.Similarity(code)
	return p.gate(f, fixp.Defuzzify(f, alpha))
}

// classifyWord is the single-word (K ≤ 64) decide path: the three popcounts
// unrolled with no slice traffic, then the same margin rule and radius gate
// as the general path (TestClassifyWordMatchesGeneral asserts equivalence).
//
//rpbeat:allocfree
func (p *Params) classifyWord(word uint64, alpha fixp.AlphaQ15) nfc.Decision {
	k := uint32(p.K)
	f := [nfc.NumClasses]uint32{
		k - uint32(bits.OnesCount64(word^p.Protos[0][0])),
		k - uint32(bits.OnesCount64(word^p.Protos[1][0])),
		k - uint32(bits.OnesCount64(word^p.Protos[2][0])),
	}
	return p.gate(f, fixp.Defuzzify(f, alpha))
}

// gate applies the per-class Hamming radius to a margin-rule decision.
// nfc encodes DecideN/L/V as the class indices 0/1/2, so a non-U decision
// indexes its own similarity: the gate rejects when the winning class is
// further than its calibrated radius.
//
//rpbeat:allocfree
func (p *Params) gate(f [nfc.NumClasses]uint32, d nfc.Decision) nfc.Decision {
	if d != nfc.DecideU && uint32(p.K)-f[d] > uint32(p.Radii[d]) {
		return nfc.DecideU
	}
	return d
}

// ClassifyInto runs threshold + pack + popcount + decide on projected
// coefficients, with caller-owned code scratch of length Words(K).
//
//rpbeat:allocfree
func (p *Params) ClassifyInto(u []int32, alpha fixp.AlphaQ15, code []uint64) nfc.Decision {
	p.PackInto(u, code)
	return p.ClassifyCode(code, alpha)
}

// PreLen returns the length of the prefix scratch ClassifySparseInto needs
// for the matrix s: one running-sum slot per non-zero plus a leading zero
// per sign.
func PreLen(s *rp.SparseMatrix) int { return len(s.Pos) + len(s.Neg) + 2 }

// ClassifySparseInto is the fused hot-path kernel: it folds the sparse
// projection, the threshold comparison and the bit pack into one pass over
// the matrix — no intermediate coefficient buffer — then decides by XOR +
// popcount. It is bit-identical to ProjectIntInto + ClassifyInto (asserted
// by TestFusedKernelMatchesReference) and is what core.Embedded.ClassifyInto
// dispatches to for bitemb models.
//
// The projection runs as one flat prefix-sum pass per sign over pre (caller
// scratch, at least PreLen(s) long); row r's partial sum is then a prefix
// difference. Two long predictable loops replace 2k tiny ones whose exits
// mispredict at very-sparse densities — at ~2 non-zeros per row the loop
// overhead, not the adds, dominates the per-row form. Two's-complement
// wraparound makes each prefix difference bit-identical to direct per-row
// accumulation.
//
//rpbeat:allocfree
func (p *Params) ClassifySparseInto(s *rp.SparseMatrix, v []int32, alpha fixp.AlphaQ15, code []uint64, pre []int32) nfc.Decision {
	if s.K != p.K || len(v) != s.D || len(code) != Words(p.K) {
		panic("bitemb: ClassifySparseInto dimension mismatch")
	}
	np, nn := len(s.Pos), len(s.Neg)
	if len(pre) < np+nn+2 {
		panic("bitemb: ClassifySparseInto prefix scratch too small")
	}
	prePos := pre[: np+1 : np+1]
	preNeg := pre[np+1 : np+nn+2]
	var run int32
	prePos[0] = 0
	pp := prePos[1:]
	for i, c := range s.Pos {
		run += v[c]
		pp[i] = run
	}
	run = 0
	preNeg[0] = 0
	pn := preNeg[1:]
	for i, c := range s.Neg {
		run += v[c]
		pn[i] = run
	}
	var word uint64
	wi := 0
	for r := 0; r < s.K; r++ {
		acc := prePos[s.PosStart[r+1]] - prePos[s.PosStart[r]] -
			preNeg[s.NegStart[r+1]] + preNeg[s.NegStart[r]]
		word |= uint64((^uint32(acc-p.Thresholds[r]))>>31) << uint(r&63)
		if r&63 == 63 {
			code[wi] = word
			word = 0
			wi++
		}
	}
	if p.K&63 != 0 {
		code[wi] = word
	}
	return p.ClassifyCode(code, alpha)
}
