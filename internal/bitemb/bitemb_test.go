package bitemb

import (
	"testing"

	"rpbeat/internal/beatset"
	"rpbeat/internal/fixp"
	"rpbeat/internal/metrics"
	"rpbeat/internal/nfc"
	"rpbeat/internal/rng"
	"rpbeat/internal/rp"
	"rpbeat/internal/testutil"
)

// refClassify is the obviously-correct reference: dense projection, per-bit
// threshold comparison with explicit branches, per-class Hamming distance by
// bit loop, then the margin + radius rule spelled out in floats.
func refClassify(p *Params, m *rp.Matrix, v []int32, alpha fixp.AlphaQ15) nfc.Decision {
	u := m.ProjectInt(v)
	bits := make([]int, p.K)
	for j := range bits {
		if u[j] >= p.Thresholds[j] {
			bits[j] = 1
		}
	}
	var dist [nfc.NumClasses]int
	for l := 0; l < nfc.NumClasses; l++ {
		for j := 0; j < p.K; j++ {
			pb := int(p.Protos[l][j/64] >> uint(j&63) & 1)
			if pb != bits[j] {
				dist[l]++
			}
		}
	}
	var f [nfc.NumClasses]uint32
	for l := range f {
		f[l] = uint32(p.K - dist[l])
	}
	d := fixp.Defuzzify(f, alpha)
	if d != nfc.DecideU && dist[d] > int(p.Radii[d]) {
		return nfc.DecideU
	}
	return d
}

// randomParams fabricates a structurally valid head for kernel tests.
func randomParams(r *rng.Rand, k int) *Params {
	p := &Params{K: k, Thresholds: make([]int32, k)}
	for j := range p.Thresholds {
		p.Thresholds[j] = int32(r.Intn(4000) - 2000)
	}
	w := Words(k)
	for l := range p.Protos {
		p.Protos[l] = make([]uint64, w)
		for j := 0; j < k; j++ {
			if r.Intn(2) == 1 {
				p.Protos[l][j/64] |= 1 << uint(j&63)
			}
		}
		p.Radii[l] = uint16(r.Intn(k + 1))
	}
	return p
}

func randomInput(r *rng.Rand, d int) []int32 {
	v := make([]int32, d)
	for i := range v {
		v[i] = int32(r.Intn(2048))
	}
	return v
}

// TestFusedKernelMatchesReference holds the fused sparse kernel, the
// two-step PackInto+ClassifyCode path and the dense reference to the same
// decision across random heads and inputs, for single-word and multi-word K
// and a sweep of α including both extremes.
func TestFusedKernelMatchesReference(t *testing.T) {
	r := rng.New(7)
	for _, k := range []int{1, 8, 32, 63, 64, 65, 100, 130} {
		const d = 50
		p := randomParams(r, k)
		if err := p.Validate(); err != nil {
			t.Fatalf("k=%d: %v", k, err)
		}
		m := rp.NewVerySparse(r, k, d)
		s := rp.NewSparse(m)
		u := make([]int32, k)
		code := make([]uint64, Words(k))
		code2 := make([]uint64, Words(k))
		pre := make([]int32, PreLen(s))
		for trial := 0; trial < 200; trial++ {
			v := randomInput(r, d)
			alpha := fixp.AlphaQ15(r.Intn(1 << 16))
			if alpha > 1<<15 {
				alpha = 1 << 15
			}
			want := refClassify(p, m, v, alpha)
			if got := p.ClassifySparseInto(s, v, alpha, code, pre); got != want {
				t.Fatalf("k=%d trial %d: fused %v, reference %v", k, trial, got, want)
			}
			m.ProjectIntInto(v, u)
			if got := p.ClassifyInto(u, alpha, code2); got != want {
				t.Fatalf("k=%d trial %d: two-step %v, reference %v", k, trial, got, want)
			}
			for w := range code {
				if code[w] != code2[w] {
					t.Fatalf("k=%d trial %d: fused code %x != packed code %x", k, trial, code, code2)
				}
			}
		}
	}
}

// TestPackHighBitsClear verifies the partial final word never carries bits
// at positions >= K (the invariant Validate enforces on prototypes and
// Similarity's k-dist mapping relies on).
func TestPackHighBitsClear(t *testing.T) {
	r := rng.New(3)
	for _, k := range []int{1, 7, 63, 65, 100} {
		p := randomParams(r, k)
		u := make([]int32, k)
		for j := range u {
			u[j] = 1 << 20 // all bits set
		}
		for j := range p.Thresholds {
			p.Thresholds[j] = 0
		}
		code := make([]uint64, Words(k))
		p.PackInto(u, code)
		if rem := k & 63; rem != 0 {
			if hi := code[len(code)-1] &^ (1<<uint(rem) - 1); hi != 0 {
				t.Fatalf("k=%d: high bits set: %x", k, hi)
			}
		}
		f := p.Similarity(code)
		for l, v := range f {
			if int(v) > k {
				t.Fatalf("k=%d: similarity %d for class %d exceeds K", k, v, l)
			}
		}
	}
}

// TestRadiusGate pins the gate semantics: a code inside the winning class's
// radius keeps its decision, one outside is rejected as U.
func TestRadiusGate(t *testing.T) {
	p := &Params{K: 8, Thresholds: make([]int32, 8)}
	for l := range p.Protos {
		p.Protos[l] = make([]uint64, 1)
	}
	p.Protos[nfc.IdxL][0] = 0xff // class L prototype: all ones
	p.Radii = [nfc.NumClasses]uint16{0: 2, 1: 2, 2: 2}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	// Code at distance 1 from L (7 from N and V): decisive, inside radius.
	code := []uint64{0x7f}
	if got := p.ClassifyCode(code, fixp.AlphaToQ15(0.1)); got != nfc.DecideL {
		t.Fatalf("inside radius: got %v, want L", got)
	}
	// Distance 3 from L (5 from N and V): still arg-max L at α=0, but
	// outside the radius — rejected.
	code[0] = 0x1f
	if got := p.ClassifyCode(code, 0); got != nfc.DecideU {
		t.Fatalf("outside radius: got %v, want U", got)
	}
}

// TestKernelZeroAlloc is the runtime half of the //rpbeat:allocfree
// annotations on the classify kernels.
func TestKernelZeroAlloc(t *testing.T) {
	r := rng.New(11)
	for _, k := range []int{8, 100} {
		const d = 50
		p := randomParams(r, k)
		m := rp.NewVerySparse(r, k, d)
		s := rp.NewSparse(m)
		v := randomInput(r, d)
		u := make([]int32, k)
		code := make([]uint64, Words(k))
		pre := make([]int32, PreLen(s))
		alpha := fixp.AlphaToQ15(0.05)
		testutil.AssertZeroAlloc(t, "bitemb.ClassifySparseInto", func() {
			p.ClassifySparseInto(s, v, alpha, code, pre)
		})
		testutil.AssertZeroAlloc(t, "bitemb.ClassifyInto", func() {
			m.ProjectIntInto(v, u)
			p.ClassifyInto(u, alpha, code)
		})
	}
}

func TestValidateRejects(t *testing.T) {
	r := rng.New(5)
	base := func() *Params { return randomParams(r, 8) }
	cases := []struct {
		name    string
		corrupt func(*Params)
	}{
		{"wrong threshold count", func(p *Params) { p.Thresholds = p.Thresholds[:7] }},
		{"wrong proto words", func(p *Params) { p.Protos[1] = nil }},
		{"high bits in proto", func(p *Params) { p.Protos[2][0] |= 1 << 13 }},
		{"radius beyond K", func(p *Params) { p.Radii[0] = 9 }},
	}
	for _, tc := range cases {
		p := base()
		tc.corrupt(p)
		if err := p.Validate(); err == nil {
			t.Errorf("%s: validate accepted a broken head", tc.name)
		}
	}
}

// TestFitAndTrain exercises the derivation end to end on a tiny dataset:
// thresholds are medians, prototypes classify their own class's training
// beats well, the radius gate never fires on training beats, and Train
// reaches the ARR constraint with a usable α.
func TestFitAndTrain(t *testing.T) {
	if testing.Short() {
		t.Skip("trains on a synthesized dataset")
	}
	ds, err := beatset.Build(beatset.Config{Seed: 42, Scale: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	P, par, stats, err := Train(ds, Config{
		Coeffs: 8, Downsample: 4, PopSize: 6, Generations: 4, Seed: 9,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := par.Validate(); err != nil {
		t.Fatal(err)
	}
	if stats.AlphaTrain < 0 || stats.AlphaTrain > 1 {
		t.Fatalf("alpha out of range: %v", stats.AlphaTrain)
	}
	if stats.Train2Point.ARR < 0.97 {
		t.Fatalf("training did not reach the ARR constraint: %+v", stats.Train2Point)
	}
	// Non-degenerate separation on the held-out test split.
	proj := projectAll(P, intWindows(ds, ds.Test, 4))
	evals := par.Evals(proj, ds.Labels(ds.Test))
	pt, _ := metrics.Evaluate(evals, stats.AlphaTrain)
	if pt.NDR <= 0.3 {
		t.Fatalf("degenerate test NDR %.3f", pt.NDR)
	}
	// Radius slack: training beats of each class must sit inside their own
	// class radius (the calibration contract Fit documents).
	trainProj := projectAll(P, intWindows(ds, ds.Train1, 4))
	labels := ds.Labels(ds.Train1)
	code := make([]uint64, Words(par.K))
	for i, u := range trainProj {
		par.PackInto(u, code)
		f := par.Similarity(code)
		if d := par.K - int(f[labels[i]]); d > int(par.Radii[labels[i]]) {
			t.Fatalf("training beat %d outside its class radius (%d > %d)", i, d, par.Radii[labels[i]])
		}
	}
}

// TestClassifyWordMatchesGeneral exhausts every 8-bit code against the
// general similarity + margin + radius path: the single-word fast path in
// ClassifyCode must be a pure specialization, never a different rule.
func TestClassifyWordMatchesGeneral(t *testing.T) {
	r := rng.New(31)
	const k = 8
	for trial := 0; trial < 8; trial++ {
		p := randomParams(r, k)
		for _, alpha := range []fixp.AlphaQ15{0, fixp.AlphaToQ15(0.25), fixp.AlphaToQ15(1)} {
			for c := uint64(0); c < 1<<k; c++ {
				code := []uint64{c}
				f := p.Similarity(code)
				want := p.gate(f, fixp.Defuzzify(f, alpha))
				if got := p.ClassifyCode(code, alpha); got != want {
					t.Fatalf("trial %d code %#x alpha %d: fast path %v, general %v",
						trial, c, alpha, got, want)
				}
			}
		}
	}
}
