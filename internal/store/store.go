// Package store models on-node beat storage, the second exploitation
// scenario of the paper's introduction: "it can be desirable to transmit or
// store only pathological beats on the WBSN, greatly reducing either the
// energy employed for wireless transmission or the data storage
// requirements".
//
// A Store is a bounded byte budget (node flash or spare RAM) filled by beat
// records under one of two policies: the reference policy stores every beat
// in full, the gated policy stores full waveforms only for beats the
// classifier flagged abnormal and a 2-byte peak marker for discarded
// normals. The figure of merit is recording endurance: how many hours fit
// before the budget is exhausted.
package store

import (
	"errors"
	"fmt"
)

// Per-beat record sizes (bytes).
const (
	// FullBeatBytes stores the 200-sample window at 12 bits per sample
	// (packed in pairs like signal format 212) plus a 2-byte class tag.
	FullBeatBytes = 200*3/2 + 2
	// MarkerBytes stores only the peak position of a discarded normal.
	MarkerBytes = 2
)

// Policy selects what gets persisted.
type Policy uint8

const (
	// StoreAll persists every beat in full (the non-gated reference).
	StoreAll Policy = iota
	// StoreAbnormal persists abnormal beats in full and a marker for
	// normals (the classifier-gated policy).
	StoreAbnormal
)

// String names the policy.
func (p Policy) String() string {
	switch p {
	case StoreAll:
		return "store-all"
	case StoreAbnormal:
		return "store-abnormal"
	}
	return fmt.Sprintf("Policy(%d)", uint8(p))
}

// Store is a bounded beat archive.
type Store struct {
	Capacity int // bytes
	Policy   Policy

	used    int
	beats   int
	full    int
	markers int
	dropped int
}

// New builds a store with the given byte budget.
func New(capacity int, policy Policy) (*Store, error) {
	if capacity <= 0 {
		return nil, errors.New("store: capacity must be positive")
	}
	if policy > StoreAbnormal {
		return nil, fmt.Errorf("store: unknown policy %d", policy)
	}
	return &Store{Capacity: capacity, Policy: policy}, nil
}

// Add records one beat. abnormal reports the classifier's verdict. It
// returns false when the budget is exhausted and the beat was dropped.
func (s *Store) Add(abnormal bool) bool {
	s.beats++
	size := FullBeatBytes
	marker := false
	if s.Policy == StoreAbnormal && !abnormal {
		size = MarkerBytes
		marker = true
	}
	if s.used+size > s.Capacity {
		s.dropped++
		return false
	}
	s.used += size
	if marker {
		s.markers++
	} else {
		s.full++
	}
	return true
}

// Used returns the bytes consumed.
func (s *Store) Used() int { return s.used }

// Beats returns (full waveforms stored, markers stored, beats dropped).
func (s *Store) Beats() (full, markers, dropped int) {
	return s.full, s.markers, s.dropped
}

// Utilization returns the used fraction of the budget.
func (s *Store) Utilization() float64 {
	return float64(s.used) / float64(s.Capacity)
}

// Endurance estimates how many seconds of recording fit in a budget under
// each policy, given the mean beat rate and the fraction of beats the
// classifier stores in full (abnormal + false alarms). It is the planning
// counterpart of the Store simulation.
func Endurance(capacityBytes int, beatsPerSec, fullFraction float64) (allSec, gatedSec float64, err error) {
	if capacityBytes <= 0 || beatsPerSec <= 0 {
		return 0, 0, errors.New("store: capacity and beat rate must be positive")
	}
	if fullFraction < 0 || fullFraction > 1 {
		return 0, 0, errors.New("store: fullFraction outside [0,1]")
	}
	bytesPerBeatAll := float64(FullBeatBytes)
	bytesPerBeatGated := fullFraction*float64(FullBeatBytes) + (1-fullFraction)*float64(MarkerBytes)
	allSec = float64(capacityBytes) / (bytesPerBeatAll * beatsPerSec)
	gatedSec = float64(capacityBytes) / (bytesPerBeatGated * beatsPerSec)
	return allSec, gatedSec, nil
}
