package store

import (
	"math"
	"testing"
)

func TestNewValidation(t *testing.T) {
	if _, err := New(0, StoreAll); err == nil {
		t.Fatal("zero capacity should error")
	}
	if _, err := New(100, Policy(9)); err == nil {
		t.Fatal("unknown policy should error")
	}
}

func TestPolicyString(t *testing.T) {
	if StoreAll.String() != "store-all" || StoreAbnormal.String() != "store-abnormal" {
		t.Fatal("policy names wrong")
	}
	if Policy(9).String() == "" {
		t.Fatal("unknown policy should format")
	}
}

func TestStoreAllConsumesFullRecords(t *testing.T) {
	s, err := New(10*FullBeatBytes, StoreAll)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if !s.Add(i%3 == 0) {
			t.Fatalf("beat %d dropped with budget remaining", i)
		}
	}
	if !s.Add(false) == false {
		t.Fatal("11th beat should be dropped")
	}
	full, markers, dropped := s.Beats()
	if full != 10 || markers != 0 || dropped != 1 {
		t.Fatalf("full=%d markers=%d dropped=%d", full, markers, dropped)
	}
	if s.Used() != 10*FullBeatBytes {
		t.Fatalf("used %d", s.Used())
	}
}

func TestStoreAbnormalGates(t *testing.T) {
	s, err := New(FullBeatBytes+5*MarkerBytes, StoreAbnormal)
	if err != nil {
		t.Fatal(err)
	}
	if !s.Add(true) { // abnormal: full record
		t.Fatal("abnormal beat dropped")
	}
	for i := 0; i < 5; i++ {
		if !s.Add(false) { // normals: markers
			t.Fatalf("marker %d dropped", i)
		}
	}
	full, markers, dropped := s.Beats()
	if full != 1 || markers != 5 || dropped != 0 {
		t.Fatalf("full=%d markers=%d dropped=%d", full, markers, dropped)
	}
	if s.Utilization() != 1.0 {
		t.Fatalf("utilization %v, want 1", s.Utilization())
	}
	if s.Add(false) {
		t.Fatal("store should be full")
	}
}

func TestGatedPolicyExtendsEndurance(t *testing.T) {
	// With ~20% of beats stored in full, the gated store must hold several
	// times more recording time than store-all.
	allSec, gatedSec, err := Endurance(1<<20, 1.2, 0.20)
	if err != nil {
		t.Fatal(err)
	}
	gain := gatedSec / allSec
	if gain < 3 || gain > 6 {
		t.Fatalf("endurance gain %.2fx, want the 4-5x regime for 20%% full reports", gain)
	}
}

func TestEnduranceEdgeCases(t *testing.T) {
	if _, _, err := Endurance(0, 1, 0.5); err == nil {
		t.Fatal("zero capacity should error")
	}
	if _, _, err := Endurance(100, 0, 0.5); err == nil {
		t.Fatal("zero beat rate should error")
	}
	if _, _, err := Endurance(100, 1, 1.5); err == nil {
		t.Fatal("fraction > 1 should error")
	}
	// fullFraction 1: both policies identical.
	a, g, err := Endurance(1<<20, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(a-g) > 1e-9 {
		t.Fatalf("at 100%% full reports the policies must match: %v vs %v", a, g)
	}
}

func TestSimulationMatchesEnduranceModel(t *testing.T) {
	// Fill a store with the Endurance model's assumptions and compare the
	// number of beats accommodated.
	capacity := 256 * 1024
	fullFrac := 0.2
	s, err := New(capacity, StoreAbnormal)
	if err != nil {
		t.Fatal(err)
	}
	beats := 0
	for i := 0; ; i++ {
		abnormal := i%5 == 0 // exactly 20%
		if !s.Add(abnormal) {
			break
		}
		beats++
	}
	allSec, gatedSec, err := Endurance(capacity, 1.0, fullFrac)
	if err != nil {
		t.Fatal(err)
	}
	_ = allSec
	if diff := math.Abs(float64(beats) - gatedSec); diff > 0.01*gatedSec {
		t.Fatalf("simulated %d beats, model predicts %.0f", beats, gatedSec)
	}
}
