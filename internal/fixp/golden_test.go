package fixp

// Golden-vector tests: frozen input/output pairs for the integer pipeline.
// A firmware port of the classifier (the deployment target of the paper) can
// validate bit-exactness against these vectors without running Go. If any
// of these tests fails after a code change, the on-disk/on-node semantics
// changed and existing deployed artifacts are invalidated — bump the model
// format version rather than "fixing" the vectors.

import "testing"

func TestGoldenLinearMFVectors(t *testing.T) {
	// MF with center 0, sigma 1000 -> S = 2350.
	m := NewIntMF(MFLinear, 0, 1000)
	if m.S != 2350 {
		t.Fatalf("S = %d, want 2350", m.S)
	}
	vectors := []struct {
		x    int32
		want uint16
	}{
		{0, 65535},
		{1, 65509},
		{-1, 65509},
		{235, 59396},
		{1000, 39411},
		{2349, 4170},
		{2350, 4143}, // knee: g1
		{2351, 4142},
		{3000, 2998},
		{4699, 3},
		{4700, 1}, // 2S: constant-1 tail begins
		{7049, 1},
		{9399, 1}, // just under 4S
		{9400, 0}, // 4S: zero
		{20000, 0},
	}
	for _, v := range vectors {
		if got := m.Eval(v.x); got != v.want {
			t.Errorf("Eval(%d) = %d, want %d", v.x, got, v.want)
		}
	}
}

func TestGoldenTriangularMFVectors(t *testing.T) {
	m := NewIntMF(MFTriangular, 0, 1000)
	vectors := []struct {
		x    int32
		want uint16
	}{
		{0, 65535},
		{2350, 32768}, // S: half scale
		{4699, 15},    // one count before the cutoff
		{4700, 0},     // 2S: zero
		{9999, 0},
	}
	for _, v := range vectors {
		if got := m.Eval(v.x); got != v.want {
			t.Errorf("Eval(%d) = %d, want %d", v.x, got, v.want)
		}
	}
}

func TestGoldenFuzzifyVectors(t *testing.T) {
	// k=4, grades chosen to exercise the renormalization path.
	grades := []uint16{
		60000, 30000, 10,
		50000, 40000, 65535,
		65535, 1, 65535,
		40000, 40000, 40000,
	}
	got := Fuzzify(4, grades)
	want := [NumClasses]uint32{1831000000, 0, 320000}
	if got != want {
		t.Fatalf("Fuzzify = %v, want %v", got, want)
	}
}

func TestGoldenDefuzzifyVectors(t *testing.T) {
	cases := []struct {
		f     [NumClasses]uint32
		alpha AlphaQ15
		want  string
	}{
		{[NumClasses]uint32{1831000000, 0, 320000}, AlphaToQ15(0.5), "N"},
		{[NumClasses]uint32{1831000000, 0, 320000}, AlphaToQ15(0.99), "N"},
		{[NumClasses]uint32{100, 200, 150}, AlphaToQ15(0.10), "L"},
		{[NumClasses]uint32{100, 200, 150}, AlphaToQ15(0.12), "U"},
		{[NumClasses]uint32{0, 0, 7}, 0, "V"},
		{[NumClasses]uint32{0, 0, 0}, 0, "U"},
	}
	for i, c := range cases {
		if got := Defuzzify(c.f, c.alpha).String(); got != c.want {
			t.Errorf("case %d: Defuzzify(%v, %d) = %s, want %s", i, c.f, c.alpha, got, c.want)
		}
	}
}

func TestGoldenAlphaQ15Vectors(t *testing.T) {
	cases := []struct {
		alpha float64
		want  AlphaQ15
	}{
		{0, 0}, {0.25, 8192}, {0.5, 16384}, {0.97, 31785}, {1, 32768},
	}
	for _, c := range cases {
		if got := AlphaToQ15(c.alpha); got != c.want {
			t.Errorf("AlphaToQ15(%v) = %d, want %d", c.alpha, got, c.want)
		}
	}
}
