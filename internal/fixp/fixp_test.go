package fixp

import (
	"math"
	"testing"
	"testing/quick"

	"rpbeat/internal/nfc"
	"rpbeat/internal/rng"
)

func TestG1Value(t *testing.T) {
	// g1 = 65535 * exp(-2.35^2/2) ≈ 65535 * 0.0632.
	want := 65535 * math.Exp(-2.35*2.35/2)
	if math.Abs(float64(G1())-want) > 1 {
		t.Fatalf("g1 = %d, want ~%.0f", G1(), want)
	}
}

func TestLinearMFSegments(t *testing.T) {
	m := NewIntMF(MFLinear, 1000, 100) // c=1000, sigma=100 -> S=235
	s := m.S
	if m.Eval(1000) != GradeMax {
		t.Fatalf("grade at center = %d, want %d", m.Eval(1000), GradeMax)
	}
	// At |d| = S the grade should be ~g1.
	if g := m.Eval(1000 + s); absDiff(uint32(g), uint32(g1)) > 2 {
		t.Fatalf("grade at S = %d, want ~%d", g, g1)
	}
	// At |d| = 2S the grade should be ~1 (the constant tail).
	if g := m.Eval(1000 + 2*s); g != 1 {
		t.Fatalf("grade at 2S = %d, want 1", g)
	}
	// Inside [2S, 4S): exactly 1.
	if g := m.Eval(1000 + 3*s); g != 1 {
		t.Fatalf("grade at 3S = %d, want 1", g)
	}
	// Beyond 4S: 0.
	if g := m.Eval(1000 + 4*s); g != 0 {
		t.Fatalf("grade at 4S = %d, want 0", g)
	}
	if g := m.Eval(1000 - 4*s - 100); g != 0 {
		t.Fatalf("grade far below = %d, want 0", g)
	}
}

func absDiff(a, b uint32) uint32 {
	if a > b {
		return a - b
	}
	return b - a
}

func TestLinearMFSymmetry(t *testing.T) {
	m := NewIntMF(MFLinear, 0, 50)
	for d := int32(0); d < 600; d += 7 {
		if m.Eval(d) != m.Eval(-d) {
			t.Fatalf("asymmetric at d=%d: %d vs %d", d, m.Eval(d), m.Eval(-d))
		}
	}
}

func TestLinearMFMonotoneFromCenter(t *testing.T) {
	m := NewIntMF(MFLinear, 0, 80)
	prev := m.Eval(0)
	for d := int32(1); d < 1000; d++ {
		g := m.Eval(d)
		if g > prev {
			t.Fatalf("grade increased away from center at d=%d: %d > %d", d, g, prev)
		}
		prev = g
	}
}

func TestLinearMFApproximatesGaussian(t *testing.T) {
	// Max relative deviation from the true Gaussian inside |d| < S should be
	// modest (the linearization is designed to hug the curve there).
	m := NewIntMF(MFLinear, 0, 100)
	var maxAbs float64
	for d := int32(0); d < m.S; d++ {
		g := float64(m.Eval(d))
		ref := m.EvalFloat(d)
		if e := math.Abs(g-ref) / GradeMax; e > maxAbs {
			maxAbs = e
		}
	}
	if maxAbs > 0.20 {
		t.Fatalf("linearization deviates %.1f%% from Gaussian inside |d|<S", 100*maxAbs)
	}
}

func TestTriangularMF(t *testing.T) {
	m := NewIntMF(MFTriangular, 0, 100)
	if m.Eval(0) != GradeMax {
		t.Fatalf("triangular at center = %d", m.Eval(0))
	}
	if g := m.Eval(2 * m.S); g != 0 {
		t.Fatalf("triangular at 2S = %d, want 0", g)
	}
	if g := m.Eval(3 * m.S); g != 0 {
		t.Fatalf("triangular beyond 2S = %d, want 0", g)
	}
	// Halfway: ~GradeMax/2.
	if g := m.Eval(m.S); absDiff(uint32(g), GradeMax/2) > 300 {
		t.Fatalf("triangular at S = %d, want ~%d", g, GradeMax/2)
	}
}

func TestGaussianRefMF(t *testing.T) {
	m := NewIntMF(MFGaussianRef, 0, 100)
	if m.Eval(0) != GradeMax {
		t.Fatalf("gaussian at center = %d", m.Eval(0))
	}
	want := uint16(math.Round(GradeMax * math.Exp(-0.5)))
	if g := m.Eval(100); absDiff(uint32(g), uint32(want)) > 1 {
		t.Fatalf("gaussian at sigma = %d, want %d", g, want)
	}
}

func TestMFKindString(t *testing.T) {
	if MFLinear.String() != "linear" || MFTriangular.String() != "triangular" || MFGaussianRef.String() != "gaussian" {
		t.Fatal("MF kind names wrong")
	}
	if MFKind(9).String() == "" {
		t.Fatal("unknown kind should format")
	}
}

func TestTinySigmaClampsToS1(t *testing.T) {
	m := NewIntMF(MFLinear, 0, 0.01)
	if m.S != 1 {
		t.Fatalf("S = %d, want clamp to 1", m.S)
	}
	if m.Eval(0) != GradeMax {
		t.Fatal("center grade wrong for tiny sigma")
	}
	if m.Eval(4) != 0 {
		t.Fatalf("grade at 4S: %d", m.Eval(4))
	}
}

func TestAlphaQ15RoundTrip(t *testing.T) {
	for _, a := range []float64{0, 0.1, 0.25, 0.5, 0.9, 1} {
		q := AlphaToQ15(a)
		if math.Abs(q.Float()-a) > 1.0/(1<<15) {
			t.Fatalf("alpha %v -> %v", a, q.Float())
		}
	}
	if AlphaToQ15(-1) != 0 || AlphaToQ15(2) != 1<<15 {
		t.Fatal("alpha clamping broken")
	}
}

func TestFuzzifyPreservesTopClass(t *testing.T) {
	// Property: the class the integer fuzzifier ranks first matches the
	// exact (log-domain) product whenever the exact winner leads by a clear
	// margin AND the per-coefficient grade ratios between classes stay
	// bounded — the regime real beats live in, where the three grades per
	// coefficient come from overlapping membership functions. (With
	// unbounded adversarial ratios a class can truncate to zero while far
	// below the running maximum, the collapse Sec. III-B accepts as rare;
	// TestFuzzifyZeroGradeKillsClass covers that path.)
	f := func(seed uint64) bool {
		r := rng.New(seed)
		k := 2 + r.Intn(31)
		grades := make([]uint16, k*NumClasses)
		for kk := 0; kk < k; kk++ {
			base := 256 + r.Intn(GradeMax-512)
			for l := 0; l < NumClasses; l++ {
				// Per-class ratio within 2x of the coefficient's base grade.
				g := int(float64(base) * (0.5 + r.Float64()*1.5))
				if g < 1 {
					g = 1
				}
				if g > GradeMax {
					g = GradeMax
				}
				grades[kk*NumClasses+l] = uint16(g)
			}
		}
		got := Fuzzify(k, grades)
		var logp [NumClasses]float64
		for kk := 0; kk < k; kk++ {
			for l := 0; l < NumClasses; l++ {
				logp[l] += math.Log(float64(grades[kk*NumClasses+l]))
			}
		}
		exactBest, intBest := 0, 0
		for l := 1; l < NumClasses; l++ {
			if logp[l] > logp[exactBest] {
				exactBest = l
			}
			if got[l] > got[intBest] {
				intBest = l
			}
		}
		// Margin of the exact winner over the exact runner-up.
		margin := math.Inf(1)
		for l := 0; l < NumClasses; l++ {
			if l != exactBest && logp[exactBest]-logp[l] < margin {
				margin = logp[exactBest] - logp[l]
			}
		}
		if margin > 0.05 && intBest != exactBest {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestFuzzifyTopClassPrecision(t *testing.T) {
	// The winning accumulator and any class within a small factor of it keep
	// enough precision that their ratio approximates the exact ratio.
	r := rng.New(77)
	for trial := 0; trial < 200; trial++ {
		k := 8
		grades := make([]uint16, k*NumClasses)
		// All classes near full scale: ratios stay close to 1.
		for i := range grades {
			grades[i] = uint16(GradeMax - r.Intn(2000))
		}
		got := Fuzzify(k, grades)
		var logp [NumClasses]float64
		for kk := 0; kk < k; kk++ {
			for l := 0; l < NumClasses; l++ {
				logp[l] += math.Log(float64(grades[kk*NumClasses+l]))
			}
		}
		for a := 0; a < NumClasses; a++ {
			for b := 0; b < NumClasses; b++ {
				if got[b] == 0 {
					continue
				}
				gotRatio := float64(got[a]) / float64(got[b])
				wantRatio := math.Exp(logp[a] - logp[b])
				if math.Abs(gotRatio-wantRatio) > 0.01*wantRatio {
					t.Fatalf("trial %d: ratio %d/%d = %v, exact %v", trial, a, b, gotRatio, wantRatio)
				}
			}
		}
	}
}

func TestFuzzifyZeroGradeKillsClass(t *testing.T) {
	k := 4
	grades := make([]uint16, k*NumClasses)
	for i := range grades {
		grades[i] = GradeMax
	}
	grades[2*NumClasses+1] = 0 // class 1 hits a zero grade at coefficient 2
	f := Fuzzify(k, grades)
	if f[1] != 0 {
		t.Fatalf("class with zero grade survived: %v", f)
	}
	if f[0] == 0 || f[2] == 0 {
		t.Fatalf("other classes died: %v", f)
	}
}

func TestFuzzifyAllZeroGivesAllZero(t *testing.T) {
	k := 8
	grades := make([]uint16, k*NumClasses) // all zero
	f := Fuzzify(k, grades)
	if f[0] != 0 || f[1] != 0 || f[2] != 0 {
		t.Fatalf("expected dead accumulators, got %v", f)
	}
}

func TestFuzzifyEqualGradesStayEqual(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		k := 2 + r.Intn(20)
		grades := make([]uint16, k*NumClasses)
		for kk := 0; kk < k; kk++ {
			g := uint16(1 + r.Intn(GradeMax))
			for l := 0; l < NumClasses; l++ {
				grades[kk*NumClasses+l] = g
			}
		}
		out := Fuzzify(k, grades)
		return out[0] == out[1] && out[1] == out[2]
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestDefuzzifyBasics(t *testing.T) {
	if d := Defuzzify([NumClasses]uint32{100, 10, 5}, AlphaToQ15(0.2)); d != nfc.DecideN {
		t.Fatalf("clear N: got %v", d)
	}
	if d := Defuzzify([NumClasses]uint32{10, 100, 5}, AlphaToQ15(0.2)); d != nfc.DecideL {
		t.Fatalf("clear L: got %v", d)
	}
	if d := Defuzzify([NumClasses]uint32{10, 5, 100}, AlphaToQ15(0.2)); d != nfc.DecideV {
		t.Fatalf("clear V: got %v", d)
	}
	if d := Defuzzify([NumClasses]uint32{100, 98, 90}, AlphaToQ15(0.2)); d != nfc.DecideU {
		t.Fatalf("close call: got %v, want U", d)
	}
	if d := Defuzzify([NumClasses]uint32{0, 0, 0}, 0); d != nfc.DecideU {
		t.Fatalf("dead accumulators: got %v, want U", d)
	}
}

func TestDefuzzifyMatchesFloatRule(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		var fv [NumClasses]uint32
		for l := range fv {
			fv[l] = uint32(r.Intn(1 << 30))
		}
		alpha := r.Float64()
		q := AlphaToQ15(alpha)
		got := Defuzzify(fv, q)
		// Float reference with the Q15-rounded alpha (so both sides use the
		// same threshold).
		var ff [NumClasses]float64
		for l := range ff {
			ff[l] = float64(fv[l])
		}
		want := nfc.Decide(ff, q.Float())
		return got == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestQuantizeAndClassifyAgreesWithFloat(t *testing.T) {
	// Train a float NFC on separated integer-scale clusters, quantize with
	// the linear MF, and check the two pipelines agree on most beats.
	r := rng.New(42)
	k := 8
	var u [][]float64
	var label []uint8
	centers := [NumClasses]float64{-4000, 0, 4000}
	for l := 0; l < NumClasses; l++ {
		for i := 0; i < 150; i++ {
			row := make([]float64, k)
			for j := range row {
				row[j] = centers[l] + 900*r.Norm()
			}
			u = append(u, row)
			label = append(label, uint8(l))
		}
	}
	p := nfc.InitFromData(k, u, label)
	c, err := Quantize(p, MFLinear)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	agree := 0
	grades := make([]uint16, k*NumClasses)
	for i := range u {
		ui := make([]int32, k)
		for j := range ui {
			ui[j] = int32(math.Round(u[i][j]))
		}
		di := c.ClassifyInto(ui, AlphaToQ15(0.05), grades)
		df := p.Classify(u[i], 0.05)
		if di == df {
			agree++
		}
	}
	frac := float64(agree) / float64(len(u))
	if frac < 0.9 {
		t.Fatalf("int/float agreement %.3f, want >= 0.9", frac)
	}
}

func TestQuantizeRejectsInvalidParams(t *testing.T) {
	p := nfc.NewParams(2)
	p.Sigma[0] = -1
	if _, err := Quantize(p, MFLinear); err == nil {
		t.Fatal("invalid params should fail quantization")
	}
}

func TestTableBytes(t *testing.T) {
	p := nfc.NewParams(8)
	c, err := Quantize(p, MFLinear)
	if err != nil {
		t.Fatal(err)
	}
	if c.TableBytes() != 8*3*16 {
		t.Fatalf("table bytes = %d", c.TableBytes())
	}
}

func TestClassifierValidate(t *testing.T) {
	c := &Classifier{K: 0}
	if c.Validate() == nil {
		t.Fatal("K=0 should fail")
	}
	c = &Classifier{K: 2, MF: make([]IntMF, 3)}
	if c.Validate() == nil {
		t.Fatal("wrong MF count should fail")
	}
}

func BenchmarkIntMFEval(b *testing.B) {
	m := NewIntMF(MFLinear, 1000, 300)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = m.Eval(int32(i & 0xfff))
	}
}

func BenchmarkClassify_K8(b *testing.B) {
	r := rng.New(1)
	p := nfc.NewParams(8)
	for i := range p.C {
		p.C[i] = 4000 * r.Norm()
		p.Sigma[i] = 500 + 500*r.Float64()
	}
	c, err := Quantize(p, MFLinear)
	if err != nil {
		b.Fatal(err)
	}
	u := make([]int32, 8)
	for i := range u {
		u[i] = int32(4000 * r.Norm())
	}
	grades := make([]uint16, 8*NumClasses)
	alpha := AlphaToQ15(0.1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = c.ClassifyInto(u, alpha, grades)
	}
}
