package fixp

import (
	"errors"
	"fmt"
	"math"
	"math/bits"

	"rpbeat/internal/nfc"
)

// NumClasses mirrors nfc.NumClasses for the integer pipeline.
const NumClasses = nfc.NumClasses

// AlphaQ15 is the fixed-point representation of the defuzzification
// coefficient α ∈ [0, 1]: α·2^15.
type AlphaQ15 uint16

// AlphaToQ15 converts a float α to Q15, clamping to [0, 1].
func AlphaToQ15(a float64) AlphaQ15 {
	if a <= 0 {
		return 0
	}
	if a >= 1 {
		return 1 << 15
	}
	return AlphaQ15(math.Round(a * (1 << 15)))
}

// Float converts back to a float α.
func (a AlphaQ15) Float() float64 { return float64(a) / (1 << 15) }

// Classifier is the integer neuro-fuzzy classifier deployed on the node:
// K coefficients × NumClasses quantized membership functions plus the
// shift-normalized product fuzzifier and the division-free defuzzifier.
type Classifier struct {
	K  int
	MF []IntMF // layout MF[k*NumClasses+l]
}

// Quantize converts trained float parameters into an integer classifier with
// the requested membership shape. Centers and sigmas must be expressed in
// the units of the integer projected coefficients (they are, when training
// ran on float64 conversions of ADC counts).
func Quantize(p *nfc.Params, kind MFKind) (*Classifier, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	c := &Classifier{K: p.K, MF: make([]IntMF, p.K*NumClasses)}
	for i := range c.MF {
		c.MF[i] = NewIntMF(kind, p.C[i], p.Sigma[i])
		if err := c.MF[i].validate(); err != nil {
			return nil, fmt.Errorf("fixp: MF %d: %w", i, err)
		}
	}
	return c, nil
}

// Grades evaluates all membership functions for the projected coefficients
// u (len K), writing K*NumClasses grades into out.
//
//rpbeat:allocfree
func (c *Classifier) Grades(u []int32, out []uint16) {
	if len(u) != c.K || len(out) != c.K*NumClasses {
		panic("fixp: Grades dimension mismatch")
	}
	for k := 0; k < c.K; k++ {
		base := k * NumClasses
		for l := 0; l < NumClasses; l++ {
			out[base+l] = c.MF[base+l].Eval(u[k])
		}
	}
}

// Fuzzify runs the paper's overflow-free product fuzzification over the
// grade matrix (layout grades[k*NumClasses+l]) and returns the three fuzzy
// accumulators. The procedure (Sec. III-B):
//
//  1. multiply the grades of the first two coefficients per class into
//     32-bit accumulators;
//  2. left-shift all three accumulators by the largest common amount that
//     overflows none of them, then drop the low 16 bits;
//  3. multiply in the next coefficient's grade and repeat.
//
// Because every step applies the same scaling to all classes, the ratios
// between the f_l — the only thing defuzzification consumes — are preserved.
func Fuzzify(k int, grades []uint16) [NumClasses]uint32 {
	if len(grades) != k*NumClasses {
		panic("fixp: Fuzzify dimension mismatch")
	}
	var f [NumClasses]uint32
	if k == 0 {
		return f
	}
	for l := 0; l < NumClasses; l++ {
		f[l] = uint32(grades[l])
	}
	if k == 1 {
		return f
	}
	for step := 1; step < k; step++ {
		base := step * NumClasses
		for l := 0; l < NumClasses; l++ {
			f[l] = renorm16(f[l]) * uint32(grades[base+l])
		}
		if step == k-1 {
			break
		}
		// Common renormalization: shift all classes left until the largest
		// uses the full 32 bits, then keep the top 16 for the next product.
		maxv := f[0]
		if f[1] > maxv {
			maxv = f[1]
		}
		if f[2] > maxv {
			maxv = f[2]
		}
		if maxv == 0 {
			return f // all classes dead: stays dead, beat will be rejected
		}
		sh := uint(bits.LeadingZeros32(maxv))
		for l := 0; l < NumClasses; l++ {
			f[l] = (f[l] << sh) >> 16
		}
	}
	return f
}

// renorm16 is the identity for values already below 2^16; values above
// cannot occur by construction (accumulators are shifted down before each
// multiplication), but the guard keeps the function total.
func renorm16(v uint32) uint32 {
	if v > 0xffff {
		return 0xffff
	}
	return v
}

// Defuzzify applies the division-free decision rule: with M1 ≥ M2 the two
// largest fuzzy values and S their total, assign arg-max iff
// (M1-M2)·2^15 ≥ α_Q15·S, else reject as U. All products fit in uint64.
func Defuzzify(f [NumClasses]uint32, alpha AlphaQ15) nfc.Decision {
	best := 0
	for l := 1; l < NumClasses; l++ {
		if f[l] > f[best] {
			best = l
		}
	}
	second := -1
	for l := 0; l < NumClasses; l++ {
		if l == best {
			continue
		}
		if second == -1 || f[l] > f[second] {
			second = l
		}
	}
	sum := uint64(f[0]) + uint64(f[1]) + uint64(f[2])
	if sum == 0 {
		return nfc.DecideU
	}
	diff := uint64(f[best] - f[second])
	if diff<<15 >= uint64(alpha)*sum {
		switch best {
		case nfc.IdxN:
			return nfc.DecideN
		case nfc.IdxL:
			return nfc.DecideL
		default:
			return nfc.DecideV
		}
	}
	return nfc.DecideU
}

// Classify runs the complete integer pipeline on projected coefficients.
// It allocates a grade buffer per call; hot paths should preallocate one of
// GradeBufLen() and use ClassifyInto.
func (c *Classifier) Classify(u []int32, alpha AlphaQ15) nfc.Decision {
	grades := make([]uint16, c.GradeBufLen())
	c.Grades(u, grades)
	return Defuzzify(Fuzzify(c.K, grades), alpha)
}

// GradeBufLen returns the length of the grade scratch buffer ClassifyInto
// and FuzzyValues require (K*NumClasses), so callers can preallocate without
// duplicating the layout rule.
func (c *Classifier) GradeBufLen() int { return c.K * NumClasses }

// ClassifyInto is Classify with a caller-provided grade buffer (length
// GradeBufLen()), for the allocation-free hot path.
//
//rpbeat:allocfree
func (c *Classifier) ClassifyInto(u []int32, alpha AlphaQ15, grades []uint16) nfc.Decision {
	c.Grades(u, grades)
	return Defuzzify(Fuzzify(c.K, grades), alpha)
}

// FuzzyValues exposes the integer fuzzy accumulators (for experiments that
// sweep α over precomputed values).
func (c *Classifier) FuzzyValues(u []int32, grades []uint16) [NumClasses]uint32 {
	c.Grades(u, grades)
	return Fuzzify(c.K, grades)
}

// TableBytes returns the ROM footprint of the MF parameter tables: per MF a
// center (4 B), an S (4 B) and two Q16 slopes (8 B) — what the node stores
// besides code.
func (c *Classifier) TableBytes() int { return len(c.MF) * 16 }

// Validate checks structural invariants.
func (c *Classifier) Validate() error {
	if c.K <= 0 {
		return errors.New("fixp: non-positive K")
	}
	if len(c.MF) != c.K*NumClasses {
		return fmt.Errorf("fixp: MF count %d, want %d", len(c.MF), c.K*NumClasses)
	}
	for i := range c.MF {
		if err := c.MF[i].validate(); err != nil {
			return fmt.Errorf("fixp: MF %d: %w", i, err)
		}
	}
	return nil
}
