// Package fixp implements the resource-constrained (integer) version of the
// RP + neuro-fuzzy classifier, per Sec. III-B of Braojos et al. (DATE'13):
//
//   - membership functions linearized to the range [0, 2^16-1] with four
//     segments (Fig. 4), plus the simpler triangular variant the paper
//     compares against and a quantized-Gaussian reference;
//   - product fuzzification kept inside 32 bits by left-shifting the three
//     per-class accumulators by a common amount and discarding the low
//     16 bits after each multiplication, which preserves the ratios between
//     classes exactly as required by the defuzzification rule;
//   - division-free defuzzification: (M1 - M2) ≥ α·S is evaluated with a
//     Q15 fixed-point α and a 64-bit-free cross-multiplication.
//
// Everything in the classification path uses integer arithmetic only and no
// exponentials, matching what runs on the 6 MHz IcyHeart node.
package fixp

import (
	"errors"
	"fmt"
	"math"
)

// GradeMax is the full-scale membership grade (2^16 - 1).
const GradeMax = 65535

// SOverSigma is the ratio S/σ used by the linearization: the paper defines
// S = 2.35σ (half the full width at ~5% of the Gaussian peak).
const SOverSigma = 2.35

// g1 is the grade of the Gaussian at distance S = 2.35σ from the center,
// scaled to GradeMax: the knee between the two linear segments of Fig. 4.
var g1 = uint16(math.Round(GradeMax * math.Exp(-SOverSigma*SOverSigma/2)))

// G1 returns the linearization knee grade (exported for the Figure 4
// experiment and for documentation).
func G1() uint16 { return g1 }

// MFKind selects the membership-function shape of an integer classifier.
type MFKind uint8

const (
	// MFLinear is the paper's 4-segment linear approximation (Fig. 4):
	//
	//	|x-c| >= 4S          -> 0
	//	4S > |x-c| >= 2S     -> 1
	//	2S > |x-c| >= S      -> line from g1 down to 1
	//	S  > |x-c|           -> line from GradeMax down to g1
	//
	// The tiny constant tail keeps the grade positive over a wide range, so
	// fuzzy products rarely collapse to zero (the property Sec. III-B calls
	// out as desirable).
	MFLinear MFKind = iota
	// MFTriangular is the simpler triangular interpolation of Fig. 4: a line
	// from GradeMax at the center to 0 at |x-c| = 2S, zero beyond.
	MFTriangular
	// MFGaussianRef evaluates the true Gaussian and rounds it to the integer
	// grade range. It is not implementable on the node (needs exp) and
	// exists as the accuracy reference in Figs. 4 and 5.
	MFGaussianRef
)

// String names the MF kind.
func (k MFKind) String() string {
	switch k {
	case MFLinear:
		return "linear"
	case MFTriangular:
		return "triangular"
	case MFGaussianRef:
		return "gaussian"
	}
	return fmt.Sprintf("MFKind(%d)", uint8(k))
}

// IntMF is one quantized membership function. The slopes are precomputed
// Q16 fixed-point multipliers so evaluation needs only compare/multiply/
// shift — no division at run time.
type IntMF struct {
	Kind MFKind
	C    int32 // center, in projected-coefficient units
	S    int32 // 2.35σ, in the same units, always >= 1

	// Linear segments (MFLinear): grade = GradeMax - (slope2*d)>>16 for
	// d < S; grade = g1 - (slope1*(d-S))>>16 for S <= d < 2S.
	Slope1 uint32
	Slope2 uint32
	// Triangular slope (MFTriangular): grade = GradeMax - (slopeT*d)>>16,
	// hitting zero at d = 2S.
	SlopeT uint32

	// SigmaF keeps the float sigma for the Gaussian reference kind.
	SigmaF float64
}

// NewIntMF quantizes a Gaussian membership function (center c, deviation
// sigma, both in projected-coefficient units) into the requested integer
// shape.
func NewIntMF(kind MFKind, c, sigma float64) IntMF {
	s := int32(math.Round(SOverSigma * sigma))
	if s < 1 {
		s = 1
	}
	m := IntMF{Kind: kind, C: int32(math.Round(c)), S: s, SigmaF: sigma}
	// Build-time divisions are fine: they run on the host during
	// quantization, never on the node.
	m.Slope1 = uint32((uint64(g1-1) << 16) / uint64(s))
	m.Slope2 = uint32((uint64(GradeMax-uint32(g1)) << 16) / uint64(s))
	m.SlopeT = uint32((uint64(GradeMax) << 16) / uint64(2*s))
	return m
}

// Eval returns the membership grade of x in [0, GradeMax].
func (m *IntMF) Eval(x int32) uint16 {
	d := int64(x) - int64(m.C)
	if d < 0 {
		d = -d
	}
	s := int64(m.S)
	switch m.Kind {
	case MFLinear:
		switch {
		case d >= 4*s:
			return 0
		case d >= 2*s:
			return 1
		case d >= s:
			dec := (uint64(m.Slope1) * uint64(d-s)) >> 16
			g := int64(g1) - int64(dec)
			if g < 1 {
				g = 1
			}
			return uint16(g)
		default:
			dec := (uint64(m.Slope2) * uint64(d)) >> 16
			g := int64(GradeMax) - int64(dec)
			if g < int64(g1) {
				g = int64(g1)
			}
			return uint16(g)
		}
	case MFTriangular:
		if d >= 2*s {
			return 0
		}
		dec := (uint64(m.SlopeT) * uint64(d)) >> 16
		g := int64(GradeMax) - int64(dec)
		if g < 0 {
			g = 0
		}
		return uint16(g)
	case MFGaussianRef:
		sigma := m.SigmaF
		if sigma <= 0 {
			sigma = float64(m.S) / SOverSigma
		}
		z := float64(d) / sigma
		return uint16(math.Round(GradeMax * math.Exp(-z*z/2)))
	}
	return 0
}

// EvalFloat returns the ideal (float Gaussian) grade scaled to GradeMax,
// used to measure the linearization error (Fig. 4).
func (m *IntMF) EvalFloat(x int32) float64 {
	sigma := m.SigmaF
	if sigma <= 0 {
		sigma = float64(m.S) / SOverSigma
	}
	d := float64(x) - float64(m.C)
	return GradeMax * math.Exp(-d*d/(2*sigma*sigma))
}

// validate checks invariants of a quantized MF.
func (m *IntMF) validate() error {
	if m.S < 1 {
		return errors.New("fixp: S must be >= 1")
	}
	if m.Kind > MFGaussianRef {
		return fmt.Errorf("fixp: unknown MF kind %d", m.Kind)
	}
	return nil
}
