package wfdb

import (
	"math"
	"strings"
	"testing"
	"testing/quick"

	"rpbeat/internal/rng"
)

func TestEncode212RoundTrip(t *testing.T) {
	signals := [][]int32{
		{0, 1, -1, 2047, -2048, 100},
		{5, -5, 1000, -1000, 0, 42},
	}
	data, err := Encode212(signals)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Decode212(data, 2, 6)
	if err != nil {
		t.Fatal(err)
	}
	for s := range signals {
		for i := range signals[s] {
			if got[s][i] != signals[s][i] {
				t.Fatalf("signal %d sample %d: got %d want %d", s, i, got[s][i], signals[s][i])
			}
		}
	}
}

func TestEncode212OddSampleCount(t *testing.T) {
	signals := [][]int32{{1, 2, 3}} // 3 samples, odd
	data, err := Encode212(signals)
	if err != nil {
		t.Fatal(err)
	}
	if len(data) != 6 { // two pairs of 3 bytes
		t.Fatalf("data length %d, want 6", len(data))
	}
	got, err := Decode212(data, 1, 3)
	if err != nil {
		t.Fatal(err)
	}
	for i, want := range []int32{1, 2, 3} {
		if got[0][i] != want {
			t.Fatalf("sample %d: got %d want %d", i, got[0][i], want)
		}
	}
}

func TestEncode212RangeCheck(t *testing.T) {
	if _, err := Encode212([][]int32{{2048}}); err == nil {
		t.Fatal("2048 should exceed 12-bit range")
	}
	if _, err := Encode212([][]int32{{-2049}}); err == nil {
		t.Fatal("-2049 should exceed 12-bit range")
	}
	if _, err := Encode212(nil); err == nil {
		t.Fatal("no signals should be an error")
	}
	if _, err := Encode212([][]int32{{1, 2}, {1}}); err == nil {
		t.Fatal("mismatched lengths should be an error")
	}
}

func TestEncode212PropertyRoundTrip(t *testing.T) {
	r := rng.New(1)
	f := func(seed uint64) bool {
		rr := rng.New(seed)
		nsig := 1 + rr.Intn(3)
		nsamp := 1 + rr.Intn(200)
		signals := make([][]int32, nsig)
		for s := range signals {
			signals[s] = make([]int32, nsamp)
			for i := range signals[s] {
				signals[s][i] = int32(rr.Intn(4096)) - 2048
			}
		}
		data, err := Encode212(signals)
		if err != nil {
			return false
		}
		got, err := Decode212(data, nsig, nsamp)
		if err != nil {
			return false
		}
		for s := range signals {
			for i := range signals[s] {
				if got[s][i] != signals[s][i] {
					return false
				}
			}
		}
		return true
	}
	_ = r
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestDecode212Truncated(t *testing.T) {
	if _, err := Decode212([]byte{1, 2}, 1, 2); err == nil {
		t.Fatal("truncated data should error")
	}
	if _, err := Decode212(nil, 0, 10); err == nil {
		t.Fatal("nsig=0 should error")
	}
}

func TestHeaderRoundTrip(t *testing.T) {
	h := Header{
		Record: "s100", Fs: 360, NumSamples: 650000,
		Signals: []SignalSpec{
			{FileName: "s100.dat", Format: 212, Gain: 200, ADCRes: 11, ADCZero: 1024, InitValue: 995, Checksum: -22131, Description: "MLII"},
			{FileName: "s100.dat", Format: 212, Gain: 200, ADCRes: 11, ADCZero: 1024, InitValue: 1011, Checksum: 20052, Description: "V5"},
		},
	}
	text := FormatHeader(h)
	got, err := ParseHeader(strings.NewReader(text))
	if err != nil {
		t.Fatal(err)
	}
	if got.Record != h.Record || got.Fs != h.Fs || got.NumSamples != h.NumSamples {
		t.Fatalf("record line mismatch: %+v", got)
	}
	if len(got.Signals) != 2 {
		t.Fatalf("got %d signals", len(got.Signals))
	}
	for i := range h.Signals {
		a, b := got.Signals[i], h.Signals[i]
		if a.FileName != b.FileName || a.Format != b.Format || a.Gain != b.Gain ||
			a.ADCRes != b.ADCRes || a.ADCZero != b.ADCZero || a.InitValue != b.InitValue ||
			a.Checksum != b.Checksum || a.Description != b.Description {
			t.Fatalf("signal %d mismatch:\n got %+v\nwant %+v", i, a, b)
		}
	}
}

func TestParseHeaderRealWorldShape(t *testing.T) {
	// Shape taken from the published MIT-BIH 100.hea.
	text := "100 2 360 650000\n100.dat 212 200 11 1024 995 -22131 0 MLII\n100.dat 212 200 11 1024 1011 20052 0 V5\n"
	h, err := ParseHeader(strings.NewReader(text))
	if err != nil {
		t.Fatal(err)
	}
	if h.Record != "100" || h.Fs != 360 || h.NumSamples != 650000 || len(h.Signals) != 2 {
		t.Fatalf("parsed %+v", h)
	}
	if h.Signals[0].Description != "MLII" {
		t.Fatalf("description %q", h.Signals[0].Description)
	}
}

func TestParseHeaderErrors(t *testing.T) {
	cases := []string{
		"",
		"100\n",
		"100 x 360 650000\n",
		"100 1 360 650000\nfile.dat 212\n",
	}
	for _, c := range cases {
		if _, err := ParseHeader(strings.NewReader(c)); err == nil {
			t.Fatalf("header %q should fail to parse", c)
		}
	}
}

func TestAnnotationsRoundTrip(t *testing.T) {
	anns := []Ann{
		{Sample: 18, Code: CodeNormal},
		{Sample: 400, Code: CodeLBBB},
		{Sample: 1500, Code: CodePVC}, // forces >1023 delta
		{Sample: 999999, Code: CodeNormal},
		{Sample: 1000100, Code: CodePVC, Sub: 3, Chan: 1, Num: 2, Aux: "(VT"},
	}
	data, err := EncodeAnnotations(anns)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeAnnotations(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(anns) {
		t.Fatalf("got %d annotations, want %d", len(got), len(anns))
	}
	for i := range anns {
		if got[i] != anns[i] {
			t.Fatalf("annotation %d: got %+v want %+v", i, got[i], anns[i])
		}
	}
}

func TestAnnotationsPropertyRoundTrip(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		n := 1 + r.Intn(100)
		anns := make([]Ann, n)
		t0 := 0
		codes := []byte{CodeNormal, CodeLBBB, CodePVC, CodeRBBB}
		for i := range anns {
			t0 += r.Intn(5000) // sometimes > 1023 to exercise SKIP
			anns[i] = Ann{Sample: t0, Code: codes[r.Intn(len(codes))]}
		}
		data, err := EncodeAnnotations(anns)
		if err != nil {
			return false
		}
		got, err := DecodeAnnotations(data)
		if err != nil || len(got) != len(anns) {
			return false
		}
		for i := range anns {
			if got[i] != anns[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestAnnotationsRejectUnsorted(t *testing.T) {
	if _, err := EncodeAnnotations([]Ann{{Sample: 100, Code: 1}, {Sample: 50, Code: 1}}); err == nil {
		t.Fatal("unsorted annotations should error")
	}
}

func TestAnnotationsRejectReservedCodes(t *testing.T) {
	for _, code := range []byte{0, codeSkip, codeAux} {
		if _, err := EncodeAnnotations([]Ann{{Sample: 1, Code: code}}); err == nil {
			t.Fatalf("code %d should be rejected", code)
		}
	}
}

func TestDecodeAnnotationsTruncated(t *testing.T) {
	if _, err := DecodeAnnotations([]byte{0x01}); err == nil {
		t.Fatal("odd-length stream should error")
	}
	// SKIP word without its 4-byte interval:
	w := uint16(codeSkip) << 10
	if _, err := DecodeAnnotations([]byte{byte(w), byte(w >> 8)}); err == nil {
		t.Fatal("truncated SKIP should error")
	}
}

func TestSaveLoadRecord(t *testing.T) {
	dir := t.TempDir()
	r := rng.New(7)
	n := 5000
	rec := &Record{
		Name: "s999", Fs: 360, Gain: 200, ADCZero: 1024,
		Descriptions: []string{"MLII", "V1", "V5"},
	}
	for s := 0; s < 3; s++ {
		sig := make([]int32, n)
		for i := range sig {
			sig[i] = int32(1024 + 200*math.Sin(float64(i)/20+float64(s)))
		}
		rec.Signals = append(rec.Signals, sig)
	}
	t0 := 0
	for i := 0; i < 20; i++ {
		t0 += 200 + r.Intn(100)
		rec.Ann = append(rec.Ann, Ann{Sample: t0, Code: CodeNormal})
	}
	if err := Save(dir, rec); err != nil {
		t.Fatal(err)
	}
	got, err := Load(dir, "s999")
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != rec.Name || got.Fs != rec.Fs || got.Gain != rec.Gain || got.ADCZero != rec.ADCZero {
		t.Fatalf("metadata mismatch: %+v", got)
	}
	if len(got.Signals) != 3 {
		t.Fatalf("got %d signals", len(got.Signals))
	}
	for s := range rec.Signals {
		for i := range rec.Signals[s] {
			if got.Signals[s][i] != rec.Signals[s][i] {
				t.Fatalf("signal %d sample %d mismatch", s, i)
			}
		}
	}
	if len(got.Ann) != len(rec.Ann) {
		t.Fatalf("got %d annotations, want %d", len(got.Ann), len(rec.Ann))
	}
	for i := range rec.Ann {
		if got.Ann[i] != rec.Ann[i] {
			t.Fatalf("annotation %d mismatch", i)
		}
	}
	if got.Descriptions[0] != "MLII" || got.Descriptions[2] != "V5" {
		t.Fatalf("descriptions: %v", got.Descriptions)
	}
}

func TestLoadMissingRecord(t *testing.T) {
	if _, err := Load(t.TempDir(), "nope"); err == nil {
		t.Fatal("loading a missing record should error")
	}
}

func TestLoadWithoutAnnotations(t *testing.T) {
	dir := t.TempDir()
	rec := &Record{Name: "s1", Fs: 360, Gain: 200, ADCZero: 1024,
		Signals: [][]int32{{1, 2, 3, 4}}}
	if err := Save(dir, rec); err != nil {
		t.Fatal(err)
	}
	got, err := Load(dir, "s1")
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Ann) != 0 {
		t.Fatalf("expected no annotations, got %d", len(got.Ann))
	}
}

func TestChecksumDetectsCorruption(t *testing.T) {
	dir := t.TempDir()
	rec := &Record{Name: "s2", Fs: 360, Gain: 200, ADCZero: 1024,
		Signals: [][]int32{{10, 20, 30, 40, 50, 60}}}
	if err := Save(dir, rec); err != nil {
		t.Fatal(err)
	}
	// Corrupt one byte of the .dat file.
	path := dir + "/s2.dat"
	data, err := osReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[0] ^= 0xff
	if err := osWriteFile(path, data); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(dir, "s2"); err == nil {
		t.Fatal("corrupted signal file should fail checksum verification")
	}
}

func BenchmarkEncode212(b *testing.B) {
	sig := make([]int32, 360*60*3)
	for i := range sig {
		sig[i] = int32(i % 2048)
	}
	signals := [][]int32{sig}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Encode212(signals); err != nil {
			b.Fatal(err)
		}
	}
}
