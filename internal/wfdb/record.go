package wfdb

import (
	"fmt"
	"os"
	"path/filepath"
)

// Record bundles a multi-signal recording with its annotations, matching the
// triplet of files (.hea/.dat/.atr) that make up one database record.
type Record struct {
	Name         string
	Fs           float64
	Signals      [][]int32
	Gain         float64
	ADCZero      int32
	Descriptions []string
	Ann          []Ann
}

// Save writes rec to dir as name.hea, name.dat and (if annotated) name.atr.
func Save(dir string, rec *Record) error {
	if len(rec.Signals) == 0 {
		return fmt.Errorf("wfdb: record %q has no signals", rec.Name)
	}
	n := len(rec.Signals[0])
	h := Header{Record: rec.Name, Fs: rec.Fs, NumSamples: n}
	datName := rec.Name + ".dat"
	for i, s := range rec.Signals {
		desc := fmt.Sprintf("lead%d", i)
		if i < len(rec.Descriptions) && rec.Descriptions[i] != "" {
			desc = rec.Descriptions[i]
		}
		var init int32
		if len(s) > 0 {
			init = s[0]
		}
		h.Signals = append(h.Signals, SignalSpec{
			FileName:    datName,
			Format:      212,
			Gain:        rec.Gain,
			ADCRes:      11,
			ADCZero:     rec.ADCZero,
			InitValue:   init,
			Checksum:    SignalChecksum(s),
			Description: desc,
		})
	}
	if err := os.WriteFile(filepath.Join(dir, rec.Name+".hea"), []byte(FormatHeader(h)), 0o644); err != nil {
		return err
	}
	dat, err := Encode212(rec.Signals)
	if err != nil {
		return err
	}
	if err := os.WriteFile(filepath.Join(dir, datName), dat, 0o644); err != nil {
		return err
	}
	if len(rec.Ann) > 0 {
		atr, err := EncodeAnnotations(rec.Ann)
		if err != nil {
			return err
		}
		if err := os.WriteFile(filepath.Join(dir, rec.Name+".atr"), atr, 0o644); err != nil {
			return err
		}
	}
	return nil
}

// Load reads record `name` from dir. A missing annotation file is not an
// error (rec.Ann stays empty).
func Load(dir, name string) (*Record, error) {
	hf, err := os.Open(filepath.Join(dir, name+".hea"))
	if err != nil {
		return nil, err
	}
	defer hf.Close()
	h, err := ParseHeader(hf)
	if err != nil {
		return nil, fmt.Errorf("wfdb: %s.hea: %w", name, err)
	}
	if len(h.Signals) == 0 {
		return nil, fmt.Errorf("wfdb: %s.hea describes no signals", name)
	}
	for _, s := range h.Signals {
		if s.Format != 212 {
			return nil, fmt.Errorf("wfdb: unsupported format %d (only 212)", s.Format)
		}
		if s.FileName != h.Signals[0].FileName {
			return nil, fmt.Errorf("wfdb: multi-file records unsupported")
		}
	}
	data, err := os.ReadFile(filepath.Join(dir, h.Signals[0].FileName))
	if err != nil {
		return nil, err
	}
	signals, err := Decode212(data, len(h.Signals), h.NumSamples)
	if err != nil {
		return nil, fmt.Errorf("wfdb: %s: %w", h.Signals[0].FileName, err)
	}
	rec := &Record{
		Name:    h.Record,
		Fs:      h.Fs,
		Signals: signals,
		Gain:    h.Signals[0].Gain,
		ADCZero: h.Signals[0].ADCZero,
	}
	for _, s := range h.Signals {
		rec.Descriptions = append(rec.Descriptions, s.Description)
	}
	// Verify checksums: catches corrupt or mis-decoded signal files early.
	for i, s := range h.Signals {
		if got := SignalChecksum(signals[i]); got != s.Checksum {
			return nil, fmt.Errorf("wfdb: %s signal %d checksum mismatch (got %d, header %d)",
				name, i, got, s.Checksum)
		}
	}
	if atr, err := os.ReadFile(filepath.Join(dir, name+".atr")); err == nil {
		anns, err := DecodeAnnotations(atr)
		if err != nil {
			return nil, fmt.Errorf("wfdb: %s.atr: %w", name, err)
		}
		rec.Ann = anns
	} else if !os.IsNotExist(err) {
		return nil, err
	}
	return rec, nil
}
