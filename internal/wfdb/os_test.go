package wfdb

import "os"

// Thin wrappers so the corruption test reads naturally.
func osReadFile(path string) ([]byte, error)  { return os.ReadFile(path) }
func osWriteFile(path string, b []byte) error { return os.WriteFile(path, b, 0o644) }
