package wfdb

import (
	"errors"
	"fmt"
	"io"
)

// EncodeAnnotations renders annotations (sorted by sample index) in the MIT
// annotation format. Each annotation becomes a 16-bit little-endian word:
// the top 6 bits are the type code, the bottom 10 bits the time increment
// from the previous annotation. Increments that do not fit in 10 bits are
// carried by a SKIP pseudo-annotation followed by a 32-bit interval in
// PDP-11 byte order (high word first, each word little-endian). The stream
// ends with a zero word.
func EncodeAnnotations(anns []Ann) ([]byte, error) {
	var out []byte
	word := func(code byte, t int) {
		w := uint16(code&0x3f)<<10 | uint16(t&0x3ff)
		out = append(out, byte(w&0xff), byte(w>>8))
	}
	prev := 0
	for i, a := range anns {
		if a.Sample < prev {
			return nil, fmt.Errorf("wfdb: annotation %d not sorted (sample %d < %d)", i, a.Sample, prev)
		}
		if a.Code == 0 || a.Code >= codeSkip {
			return nil, fmt.Errorf("wfdb: annotation %d has reserved code %d", i, a.Code)
		}
		delta := a.Sample - prev
		if delta > 1023 {
			word(codeSkip, 0)
			d := uint32(delta)
			// PDP-11 order: high 16 bits first, each halfword little-endian.
			out = append(out,
				byte(d>>16), byte(d>>24),
				byte(d), byte(d>>8))
			delta = 0
		}
		word(a.Code, delta)
		if a.Sub != 0 {
			word(codeSub, int(a.Sub))
		}
		if a.Chan != 0 {
			word(codeChan, int(a.Chan))
		}
		if a.Num != 0 {
			word(codeNum, int(a.Num))
		}
		if a.Aux != "" {
			if len(a.Aux) > 255 {
				return nil, fmt.Errorf("wfdb: annotation %d aux too long", i)
			}
			word(codeAux, len(a.Aux))
			out = append(out, []byte(a.Aux)...)
			if len(a.Aux)%2 == 1 {
				out = append(out, 0) // pad to word boundary
			}
		}
		prev = a.Sample
	}
	out = append(out, 0, 0) // EOF word
	return out, nil
}

// DecodeAnnotations parses a MIT-format annotation stream.
func DecodeAnnotations(data []byte) ([]Ann, error) {
	var anns []Ann
	t := 0
	i := 0
	pendingSkip := 0
	for {
		if i+2 > len(data) {
			return nil, errors.New("wfdb: unterminated annotation stream")
		}
		w := uint16(data[i]) | uint16(data[i+1])<<8
		i += 2
		code := byte(w >> 10)
		field := int(w & 0x3ff)
		if w == 0 {
			return anns, nil // EOF
		}
		switch code {
		case codeSkip:
			if i+4 > len(data) {
				return nil, errors.New("wfdb: truncated SKIP interval")
			}
			d := uint32(data[i])<<16 | uint32(data[i+1])<<24 |
				uint32(data[i+2]) | uint32(data[i+3])<<8
			i += 4
			pendingSkip += int(int32(d))
		case codeSub:
			if len(anns) == 0 {
				return nil, errors.New("wfdb: SUB before any annotation")
			}
			anns[len(anns)-1].Sub = byte(field)
		case codeChan:
			if len(anns) == 0 {
				return nil, errors.New("wfdb: CHN before any annotation")
			}
			anns[len(anns)-1].Chan = byte(field)
		case codeNum:
			if len(anns) == 0 {
				return nil, errors.New("wfdb: NUM before any annotation")
			}
			anns[len(anns)-1].Num = byte(field)
		case codeAux:
			if i+field > len(data) {
				return nil, errors.New("wfdb: truncated AUX string")
			}
			if len(anns) == 0 {
				return nil, errors.New("wfdb: AUX before any annotation")
			}
			anns[len(anns)-1].Aux = string(data[i : i+field])
			i += field
			if field%2 == 1 {
				i++ // padding byte
			}
		default:
			t += pendingSkip + field
			pendingSkip = 0
			anns = append(anns, Ann{Sample: t, Code: code})
		}
	}
}

// WriteAnnotations writes the encoded annotations to w.
func WriteAnnotations(w io.Writer, anns []Ann) error {
	b, err := EncodeAnnotations(anns)
	if err != nil {
		return err
	}
	_, err = w.Write(b)
	return err
}

// ReadAnnotations reads and decodes an annotation stream from r.
func ReadAnnotations(r io.Reader) ([]Ann, error) {
	b, err := io.ReadAll(r)
	if err != nil {
		return nil, err
	}
	return DecodeAnnotations(b)
}
