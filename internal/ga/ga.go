// Package ga provides the generic genetic algorithm used to optimize the
// random projection matrix (Sec. III-A of the paper: population of 20
// matrices evolved for 30 generations; each matrix is a chromosome, combined
// by crossover and mutation, with fitness given by the score of the NFC
// trained on that projection).
//
// The engine is deliberately generic: chromosomes are opaque values handled
// through caller-supplied crossover/mutation/fitness hooks, so the same code
// drives unit tests (bit strings) and the production search (rp.Matrix).
package ga

import (
	"errors"
	"sort"
	"sync"

	"rpbeat/internal/rng"
)

// Config parameterizes a run of the genetic algorithm over chromosomes of
// type T. Fitness is maximized.
type Config[T any] struct {
	// Generations is the number of evolution steps (required, > 0).
	Generations int
	// Elite is how many top individuals survive unchanged; default 2.
	Elite int
	// TournamentK is the tournament selection size; default 3.
	TournamentK int
	// MutationRate is passed to Mutate as contextual information; the hook
	// itself decides what it means. Kept here so sweeps can tune it centrally.
	MutationRate float64
	// Fitness scores a chromosome; larger is better. Must be deterministic
	// (it may be called from multiple goroutines concurrently).
	Fitness func(T) float64
	// Crossover combines two parents into a child.
	Crossover func(r *rng.Rand, a, b T) T
	// Mutate perturbs a chromosome (it receives MutationRate).
	Mutate func(r *rng.Rand, c T, rate float64) T
	// Parallel bounds concurrent fitness evaluations; default 1 (serial).
	Parallel int
	// Seed drives all stochastic choices of the engine.
	Seed uint64
	// OnGeneration, if set, observes progress after each generation.
	OnGeneration func(gen int, bestFitness float64)
}

// Result reports the best individual found.
type Result[T any] struct {
	Best        T
	BestFitness float64
	// History holds the best fitness after each generation.
	History []float64
	// Evaluations is the number of fitness calls performed.
	Evaluations int
}

type scored[T any] struct {
	c   T
	fit float64
}

// Run evolves the given initial population and returns the best chromosome
// ever observed. The initial population provides the population size.
func Run[T any](initial []T, cfg Config[T]) (Result[T], error) {
	var res Result[T]
	if len(initial) < 2 {
		return res, errors.New("ga: population must have at least 2 individuals")
	}
	if cfg.Generations <= 0 {
		return res, errors.New("ga: Generations must be positive")
	}
	if cfg.Fitness == nil || cfg.Crossover == nil || cfg.Mutate == nil {
		return res, errors.New("ga: Fitness, Crossover and Mutate hooks are required")
	}
	elite := cfg.Elite
	if elite <= 0 {
		elite = 2
	}
	if elite > len(initial) {
		elite = len(initial)
	}
	tk := cfg.TournamentK
	if tk <= 0 {
		tk = 3
	}
	workers := cfg.Parallel
	if workers <= 0 {
		workers = 1
	}

	master := rng.New(cfg.Seed)
	pop := make([]scored[T], len(initial))
	for i, c := range initial {
		pop[i].c = c
	}

	evaluate := func(p []scored[T]) {
		var wg sync.WaitGroup
		sem := make(chan struct{}, workers)
		for i := range p {
			wg.Add(1)
			sem <- struct{}{}
			go func(s *scored[T]) {
				defer wg.Done()
				s.fit = cfg.Fitness(s.c)
				<-sem
			}(&p[i])
		}
		wg.Wait()
		res.Evaluations += len(p)
	}

	evaluate(pop)
	sortByFitness(pop)
	res.Best = pop[0].c
	res.BestFitness = pop[0].fit

	tournament := func(r *rng.Rand) T {
		best := r.Intn(len(pop))
		for i := 1; i < tk; i++ {
			c := r.Intn(len(pop))
			if pop[c].fit > pop[best].fit {
				best = c
			}
		}
		return pop[best].c
	}

	for gen := 0; gen < cfg.Generations; gen++ {
		next := make([]scored[T], 0, len(pop))
		// Elitism: carry over the best unchanged (already scored).
		for i := 0; i < elite; i++ {
			next = append(next, pop[i])
		}
		// Offspring: tournament-select two parents, cross, mutate.
		for len(next) < len(pop) {
			a := tournament(master)
			b := tournament(master)
			child := cfg.Crossover(master.Split(), a, b)
			child = cfg.Mutate(master.Split(), child, cfg.MutationRate)
			next = append(next, scored[T]{c: child})
		}
		// Score only the new individuals (the elite keep their fitness).
		evaluate(next[elite:])
		pop = next
		sortByFitness(pop)
		if pop[0].fit > res.BestFitness {
			res.Best = pop[0].c
			res.BestFitness = pop[0].fit
		}
		res.History = append(res.History, res.BestFitness)
		if cfg.OnGeneration != nil {
			cfg.OnGeneration(gen, res.BestFitness)
		}
	}
	return res, nil
}

func sortByFitness[T any](p []scored[T]) {
	sort.SliceStable(p, func(i, j int) bool { return p[i].fit > p[j].fit })
}
