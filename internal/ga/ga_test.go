package ga

import (
	"testing"

	"rpbeat/internal/rng"
)

// oneMax: maximize the number of 1 bits in a fixed-length bit string.
type bits []byte

func oneMaxConfig(seed uint64, parallel int) Config[bits] {
	return Config[bits]{
		Generations:  60,
		Elite:        2,
		Seed:         seed,
		Parallel:     parallel,
		MutationRate: 0.02,
		Fitness: func(b bits) float64 {
			s := 0
			for _, v := range b {
				s += int(v)
			}
			return float64(s)
		},
		Crossover: func(r *rng.Rand, a, b bits) bits {
			child := make(bits, len(a))
			cut := r.Intn(len(a))
			copy(child, a[:cut])
			copy(child[cut:], b[cut:])
			return child
		},
		Mutate: func(r *rng.Rand, c bits, rate float64) bits {
			out := make(bits, len(c))
			copy(out, c)
			for i := range out {
				if r.Float64() < rate {
					out[i] ^= 1
				}
			}
			return out
		},
	}
}

func randomPop(seed uint64, n, length int) []bits {
	r := rng.New(seed)
	pop := make([]bits, n)
	for i := range pop {
		pop[i] = make(bits, length)
		for j := range pop[i] {
			pop[i][j] = byte(r.Intn(2))
		}
	}
	return pop
}

func TestRunSolvesOneMax(t *testing.T) {
	res, err := Run(randomPop(1, 20, 40), oneMaxConfig(2, 1))
	if err != nil {
		t.Fatal(err)
	}
	if res.BestFitness < 38 {
		t.Fatalf("best fitness %v after 60 generations, want >= 38/40", res.BestFitness)
	}
}

func TestRunDeterministic(t *testing.T) {
	a, err := Run(randomPop(1, 16, 32), oneMaxConfig(7, 1))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(randomPop(1, 16, 32), oneMaxConfig(7, 1))
	if err != nil {
		t.Fatal(err)
	}
	if a.BestFitness != b.BestFitness {
		t.Fatalf("same seed, different results: %v vs %v", a.BestFitness, b.BestFitness)
	}
	for i := range a.History {
		if a.History[i] != b.History[i] {
			t.Fatalf("histories diverge at generation %d", i)
		}
	}
}

func TestParallelMatchesSerial(t *testing.T) {
	serial, err := Run(randomPop(3, 16, 32), oneMaxConfig(9, 1))
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := Run(randomPop(3, 16, 32), oneMaxConfig(9, 8))
	if err != nil {
		t.Fatal(err)
	}
	if serial.BestFitness != parallel.BestFitness {
		t.Fatalf("parallel evaluation changed the result: %v vs %v", serial.BestFitness, parallel.BestFitness)
	}
}

func TestMonotoneBestFitness(t *testing.T) {
	res, err := Run(randomPop(5, 20, 40), oneMaxConfig(11, 4))
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(res.History); i++ {
		if res.History[i] < res.History[i-1] {
			t.Fatalf("best fitness regressed at generation %d: %v -> %v (elitism broken)",
				i, res.History[i-1], res.History[i])
		}
	}
}

func TestEvaluationAccounting(t *testing.T) {
	cfg := oneMaxConfig(13, 1)
	cfg.Generations = 5
	cfg.Elite = 2
	pop := randomPop(13, 10, 16)
	res, err := Run(pop, cfg)
	if err != nil {
		t.Fatal(err)
	}
	want := 10 + 5*(10-2) // initial + per-generation offspring
	if res.Evaluations != want {
		t.Fatalf("evaluations = %d, want %d", res.Evaluations, want)
	}
}

func TestOnGenerationCallback(t *testing.T) {
	cfg := oneMaxConfig(15, 1)
	cfg.Generations = 7
	calls := 0
	cfg.OnGeneration = func(gen int, best float64) { calls++ }
	if _, err := Run(randomPop(15, 8, 16), cfg); err != nil {
		t.Fatal(err)
	}
	if calls != 7 {
		t.Fatalf("callback called %d times, want 7", calls)
	}
}

func TestRunValidation(t *testing.T) {
	cfg := oneMaxConfig(1, 1)
	if _, err := Run([]bits{make(bits, 4)}, cfg); err == nil {
		t.Fatal("population of 1 should error")
	}
	cfg.Generations = 0
	if _, err := Run(randomPop(1, 4, 4), cfg); err == nil {
		t.Fatal("zero generations should error")
	}
	cfg = oneMaxConfig(1, 1)
	cfg.Fitness = nil
	if _, err := Run(randomPop(1, 4, 4), cfg); err == nil {
		t.Fatal("missing fitness should error")
	}
}

func TestEliteLargerThanPopulationClamped(t *testing.T) {
	cfg := oneMaxConfig(17, 1)
	cfg.Elite = 100
	cfg.Generations = 3
	res, err := Run(randomPop(17, 6, 8), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.BestFitness < 0 {
		t.Fatal("run failed with clamped elite")
	}
}
