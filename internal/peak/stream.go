package peak

// Streaming (sample-by-sample) R-peak detection with bounded memory.
//
// StreamDetector reproduces Detect exactly — same à trous scales, same
// windowed-RMS adaptive thresholds, same modulus-maxima pairing, zero
// crossing localization and refractory arbitration — but consumes the
// filtered lead one sample at a time. The batch function is the reference:
// on any signal, the peaks a StreamDetector emits are identical to
// Detect(x, cfg) up to the right signal border (the final thresholds of a
// batch run use the last, partial RMS window of the whole record, which a
// stream only sees at Flush; peaks earlier than roughly Delay() samples
// before the end are unaffected).
//
// The one batch feature with no causal equivalent is search-back: it
// re-scans long RR gaps against the *record-wide* median RR, a global
// statistic a stream cannot know. NewStreamDetector therefore requires
// cfg.SearchBackOff to be set, and parity holds against the batch detector
// configured the same way.

import (
	"errors"
	"math"

	"rpbeat/internal/sigdsp"
)

// streamDWTLevels is how many à trous detail levels the detector consumes:
// the detection signal z uses scales 2^2 and 2^3 (levels 1 and 2).
const streamDWTLevels = 3

// StreamDetector is the online QRS detector. Feed it filtered samples with
// Push; peak indices come back (possibly several per call, usually none)
// once they are final, i.e. once no future sample can change them.
type StreamDetector struct {
	c                  Config
	dwt                *sigdsp.StreamDWT
	win, pair, refract int
	// nextWin is how many detection-scale samples complete the window being
	// buffered right now: win - (StartSample mod win) for the first window of
	// a resumed stream (so later boundaries align with an uninterrupted
	// run's), win for every window after it.
	nextWin int

	// Current adaptive-threshold window of the two detection scales.
	wbase int // absolute index of the window's first sample
	wbuf  [2][]float64
	sumsq [2]float64

	// Detection signal and its threshold, as rings indexed by absolute
	// sample position modulo ring.
	z, thrZ []float64
	ring    int
	zN      int // detection-signal samples produced
	scan    int // next index to scan for significant extrema

	havePrev bool // last significant extremum (pair-window state)
	prevPos  int
	prevVal  float64

	hasPending bool // last kept candidate, not yet final (refractory state)
	pending    candidate

	emit    []int
	flushed bool
}

// NewStreamDetector builds a streaming detector. cfg.SearchBackOff must be
// set: search-back needs the record-wide median RR, which does not exist
// online (see the package comment above).
func NewStreamDetector(cfg Config) (*StreamDetector, error) {
	c := cfg.withDefaults()
	if !c.SearchBackOff {
		return nil, errors.New("peak: streaming detection requires Config.SearchBackOff (search-back needs the record-wide median RR)")
	}
	win := int(c.WindowSec * c.Fs)
	if win < 8 {
		win = 8 // windowedRMS applies the same floor
	}
	d := &StreamDetector{
		c:       c,
		dwt:     sigdsp.NewStreamDWT(streamDWTLevels),
		win:     win,
		pair:    int(c.PairSec * c.Fs),
		refract: int(c.RefractorySec * c.Fs),
		scan:    1, // the batch extremum scan starts at index 1
	}
	d.nextWin = win
	if c.StartSample > 0 {
		// Resuming at absolute sample S: shorten the first threshold window
		// to win - (S mod win) samples, so this detector's later window
		// boundaries fall on the same absolute indices as those of a detector
		// that started at sample zero. Only S mod win matters — the wavelet
		// warm-up offsets are the same for both runs and cancel.
		if phase := c.StartSample % win; phase != 0 {
			d.nextWin = win - phase
		}
	}
	d.ring = d.win + d.pair + 16
	d.z = make([]float64, d.ring)
	d.thrZ = make([]float64, d.ring)
	d.wbuf[0] = make([]float64, 0, d.win)
	d.wbuf[1] = make([]float64, 0, d.win)
	return d, nil
}

// Delay returns the worst-case number of input samples between a peak's
// position and its emission: the wavelet warm-up, up to two threshold
// windows (the detection signal and its own RMS complete per window), and
// the refractory + pairing margin that makes a candidate final.
func (d *StreamDetector) Delay() int {
	return d.dwt.Delay() + 2*d.win + d.refract + d.pair + 2
}

// Window returns the adaptive-threshold window length in samples — the
// quantum of the detector's phase grid, which a resumed stream must align to
// (Config.StartSample) for bit-identical detections.
func (d *StreamDetector) Window() int { return d.win }

// Push consumes one sample of the filtered lead and returns the R peaks
// finalized by it, as absolute sample indices (aligned with the input).
// The returned slice is reused by the next call; copy it to retain.
func (d *StreamDetector) Push(x float64) []int {
	d.emit = d.emit[:0]
	w, ok := d.dwt.Push(x)
	if !ok {
		return nil
	}
	d.wbuf[0] = append(d.wbuf[0], w[1])
	d.sumsq[0] += w[1] * w[1]
	d.wbuf[1] = append(d.wbuf[1], w[2])
	d.sumsq[1] += w[2] * w[2]
	if len(d.wbuf[0]) == d.nextWin {
		d.completeWindow()
	}
	return d.emit
}

// Flush finishes the stream: the final partial threshold window is processed
// (as the batch windowed RMS does for the record tail) and the pending
// candidate, which no longer has future rivals, is emitted.
func (d *StreamDetector) Flush() []int {
	d.emit = d.emit[:0]
	if d.flushed {
		return nil
	}
	d.flushed = true
	d.completeWindow()
	if d.hasPending {
		d.emit = append(d.emit, d.pending.pos)
		d.hasPending = false
	}
	return d.emit
}

// completeWindow turns the buffered detection-scale samples into detection
// signal + thresholds (exactly windowedRMS + the z formula of decompose) and
// advances the extremum scan.
func (d *StreamDetector) completeWindow() {
	count := len(d.wbuf[0])
	if count == 0 {
		return
	}
	thr1 := math.Sqrt(d.sumsq[0] / float64(count))
	thr2 := math.Sqrt(d.sumsq[1] / float64(count))
	var zs float64
	base := d.wbase
	for k := 0; k < count; k++ {
		zv := d.wbuf[0][k]/(thr1+1e-300) + d.wbuf[1][k]/(thr2+1e-300)
		d.z[(base+k)%d.ring] = zv
		zs += zv * zv
	}
	tz := math.Sqrt(zs / float64(count))
	for k := 0; k < count; k++ {
		d.thrZ[(base+k)%d.ring] = tz
	}
	d.zN = base + count
	d.wbase = d.zN
	d.nextWin = d.win // only the first window of a resumed stream is short
	d.wbuf[0] = d.wbuf[0][:0]
	d.wbuf[1] = d.wbuf[1][:0]
	d.sumsq[0], d.sumsq[1] = 0, 0
	d.advance()
}

// advance scans newly available detection-signal samples for significant
// extrema (the detectPass criteria) and finalizes the pending candidate once
// no future candidate can fall inside its refractory period.
func (d *StreamDetector) advance() {
	for d.scan+1 < d.zN {
		i := d.scan
		d.scan++
		v := d.z[i%d.ring]
		if math.Abs(v) < d.c.ThresholdFactor*d.thrZ[i%d.ring] {
			continue
		}
		prev := d.z[(i-1)%d.ring]
		next := d.z[(i+1)%d.ring]
		if (v > 0 && v >= prev && v > next) || (v < 0 && v <= prev && v < next) {
			d.extremum(i, v)
		}
	}
	// A future candidate's position is at least scan-pair (its pair partner
	// must lie within the pair window of a yet-unscanned extremum), so once
	// that bound clears the refractory period the pending candidate is final.
	if d.hasPending && d.scan-d.pair >= d.pending.pos+d.refract {
		d.emit = append(d.emit, d.pending.pos)
		d.hasPending = false
	}
}

func (d *StreamDetector) extremum(pos int, val float64) {
	if d.havePrev && d.prevVal*val < 0 && pos-d.prevPos <= d.pair {
		zc := d.zeroCross(d.prevPos, pos)
		if zc < 0 {
			zc = (d.prevPos + pos) / 2
		}
		d.candidate(candidate{pos: zc, amp: math.Abs(d.prevVal) + math.Abs(val)})
	}
	d.havePrev, d.prevPos, d.prevVal = true, pos, val
}

// zeroCross is zeroCrossing over the detection-signal ring.
func (d *StreamDetector) zeroCross(lo, hi int) int {
	for i := lo; i < hi; i++ {
		wi := d.z[i%d.ring]
		if wi == 0 {
			return i
		}
		wn := d.z[(i+1)%d.ring]
		if (wi > 0) != (wn > 0) {
			if math.Abs(wi) <= math.Abs(wn) {
				return i
			}
			return i + 1
		}
	}
	return -1
}

// candidate applies the refractory arbitration incrementally: candidates
// arrive position-ordered, so only the last kept one can still be replaced.
func (d *StreamDetector) candidate(c candidate) {
	if !d.hasPending {
		d.pending, d.hasPending = c, true
		return
	}
	if c.pos-d.pending.pos < d.refract {
		if c.amp > d.pending.amp {
			d.pending = c
		}
		return
	}
	d.emit = append(d.emit, d.pending.pos)
	d.pending = c
}
