package peak

import (
	"testing"

	"rpbeat/internal/ecgsyn"
	"rpbeat/internal/sigdsp"
	"rpbeat/internal/testutil"
)

// TestDetectIntoMatchesDetect holds the scratch-reusing detector to exact
// agreement with the allocating one, across repeated reuse of one scratch
// (longer and shorter records, with and without search-back).
func TestDetectIntoMatchesDetect(t *testing.T) {
	var s Scratch
	for _, tc := range []struct {
		spec    ecgsyn.RecordSpec
		backOff bool
	}{
		{ecgsyn.RecordSpec{Name: "d1", Seconds: 60, Seed: 4, PVCRate: 0.1}, true},
		{ecgsyn.RecordSpec{Name: "d2", Seconds: 30, Seed: 9}, true},
		{ecgsyn.RecordSpec{Name: "d3", Seconds: 45, Seed: 2, PVCRate: 0.2}, false},
		{ecgsyn.RecordSpec{Name: "d4", Seconds: 20, Seed: 7}, false},
	} {
		rec := ecgsyn.Synthesize(tc.spec)
		filtered := sigdsp.FilterECG(rec.LeadMillivolts(0), sigdsp.DefaultBaselineConfig(rec.Fs))
		cfg := Config{Fs: rec.Fs, SearchBackOff: tc.backOff}
		want := Detect(filtered, cfg)
		got := DetectInto(filtered, cfg, &s)
		if len(got) != len(want) {
			t.Fatalf("%s: %d peaks via scratch, %d via reference", tc.spec.Name, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("%s: peak %d = %d, want %d", tc.spec.Name, i, got[i], want[i])
			}
		}
		if len(want) == 0 {
			t.Fatalf("%s: no peaks at all", tc.spec.Name)
		}
	}
}

// TestDetectIntoSteadyStateAllocs: with search-back off (every streaming and
// serving configuration), a warm scratch must detect with O(1) allocations —
// the sort.Slice closure is the only remaining source.
func TestDetectIntoSteadyStateAllocs(t *testing.T) {
	rec := ecgsyn.Synthesize(ecgsyn.RecordSpec{Name: "da", Seconds: 30, Seed: 5, PVCRate: 0.1})
	filtered := sigdsp.FilterECG(rec.LeadMillivolts(0), sigdsp.DefaultBaselineConfig(rec.Fs))
	cfg := Config{Fs: rec.Fs, SearchBackOff: true}
	var s Scratch
	if got := DetectInto(filtered, cfg, &s); len(got) == 0 {
		t.Fatal("warm-up detected nothing")
	}
	// sort.Slice wraps its less func in an interface: a handful of small
	// allocations per record is the accepted floor; the ~40 signal-length
	// buffers are what must not come back.
	testutil.AssertAllocsAtMost(t, "warm DetectInto per record", 8, 10, func() {
		DetectInto(filtered, cfg, &s)
	})
}
