package peak

import (
	"testing"

	"rpbeat/internal/ecgsyn"
	"rpbeat/internal/sigdsp"
)

// filteredRecord synthesizes a record and runs the batch front end, giving
// both detectors the identical filtered lead.
func filteredRecord(seconds float64, seed uint64, pvc float64) []float64 {
	rec := ecgsyn.Synthesize(ecgsyn.RecordSpec{Name: "sd", Seconds: seconds, Seed: seed, PVCRate: pvc})
	return sigdsp.FilterECG(rec.LeadMillivolts(0), sigdsp.DefaultBaselineConfig(rec.Fs))
}

func TestStreamDetectorMatchesBatch(t *testing.T) {
	for _, tc := range []struct {
		seed uint64
		pvc  float64
	}{{1, 0}, {2, 0.15}, {7, 0.3}} {
		x := filteredRecord(180, tc.seed, tc.pvc)
		cfg := Config{Fs: 360, SearchBackOff: true}
		batch := Detect(x, cfg)

		d, err := NewStreamDetector(cfg)
		if err != nil {
			t.Fatal(err)
		}
		var stream []int
		for _, v := range x {
			stream = append(stream, d.Push(v)...)
		}
		stream = append(stream, d.Flush()...)

		// Batch thresholds near the record end come from windows the stream
		// only completes at Flush with fewer samples (the wavelet tail is
		// never produced), so parity is asserted away from the right border.
		tail := len(x) - d.Delay()
		want := keepBefore(batch, tail)
		got := keepBefore(stream, tail)
		if len(want) == 0 {
			t.Fatalf("seed %d: batch found no peaks before the tail margin", tc.seed)
		}
		if len(got) != len(want) {
			t.Fatalf("seed %d: stream found %d peaks, batch %d", tc.seed, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("seed %d: peak %d at %d, batch at %d", tc.seed, i, got[i], want[i])
			}
		}
	}
}

func keepBefore(peaks []int, limit int) []int {
	out := peaks[:0:0]
	for _, p := range peaks {
		if p < limit {
			out = append(out, p)
		}
	}
	return out
}

func TestStreamDetectorPeaksAreOrderedAndFinal(t *testing.T) {
	x := filteredRecord(120, 3, 0.1)
	d, err := NewStreamDetector(Config{Fs: 360, SearchBackOff: true})
	if err != nil {
		t.Fatal(err)
	}
	last := -1
	for n, v := range x {
		for _, p := range d.Push(v) {
			if p <= last {
				t.Fatalf("peak %d emitted after %d (out of order)", p, last)
			}
			if lat := n - p; lat > d.Delay() {
				t.Fatalf("peak %d finalized %d samples late (> Delay %d)", p, lat, d.Delay())
			}
			last = p
		}
	}
}

func TestStreamDetectorRequiresSearchBackOff(t *testing.T) {
	if _, err := NewStreamDetector(Config{Fs: 360}); err == nil {
		t.Fatal("expected an error when search-back is enabled")
	}
}

func BenchmarkStreamDetectorPush(b *testing.B) {
	x := filteredRecord(60, 9, 0.1)
	d, _ := NewStreamDetector(Config{Fs: 360, SearchBackOff: true})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		d.Push(x[i%len(x)])
	}
}
