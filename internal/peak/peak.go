// Package peak implements the wavelet-based QRS detector used by the WBSN
// front end (first proposed for embedded nodes in Rincon et al., IEEE TITB
// 2011, following the Mallat/Li modulus-maxima approach): the signal is
// decomposed into four dyadic scales with the à trous transform; QRS
// complexes appear as pairs of modulus maxima with opposite signs across
// adjacent scales, and the R peak is the zero crossing between the pair on
// the first scale.
package peak

import (
	"math"
	"sort"

	"rpbeat/internal/sigdsp"
)

// Config tunes the detector. Zero values select defaults appropriate for
// 360 Hz ambulatory ECG.
type Config struct {
	Fs float64 // sampling frequency; default 360

	// ThresholdFactor scales the per-window RMS threshold; default 2.0.
	ThresholdFactor float64
	// WindowSec is the adaptive-threshold window length; default 2 s.
	WindowSec float64
	// PairSec is the maximum spacing of a modulus-maxima pair; default 0.16 s (wide enough for LBBB/PVC complexes).
	PairSec float64
	// RefractorySec suppresses detections after an accepted peak; default 0.22 s.
	RefractorySec float64
	// SearchBack enables re-scanning long RR gaps with halved thresholds;
	// default on (disable with SearchBackOff).
	SearchBackOff bool

	// StartSample phase-aligns a StreamDetector that resumes an interrupted
	// stream mid-record: it is the absolute index of the first sample this
	// detector will see, and the detector shortens its first adaptive-
	// threshold window so that all later window boundaries land on the same
	// absolute sample indices as a detector that consumed the stream from
	// sample zero. Emitted peak indices stay relative to the resumed feed
	// (the caller re-bases them). The batch detector ignores it — a batch
	// run always sees the whole record.
	StartSample int
}

func (c Config) withDefaults() Config {
	if c.Fs <= 0 {
		c.Fs = 360
	}
	if c.ThresholdFactor <= 0 {
		c.ThresholdFactor = 2.0
	}
	if c.WindowSec <= 0 {
		c.WindowSec = 2
	}
	if c.PairSec <= 0 {
		c.PairSec = 0.16
	}
	if c.RefractorySec <= 0 {
		c.RefractorySec = 0.22
	}
	return c
}

// candidate is an internal QRS candidate: the zero-crossing position and the
// modulus-maxima pair amplitude (used to arbitrate refractory conflicts).
type candidate struct {
	pos int
	amp float64
}

// extremum is a significant local extremum of the detection signal.
type extremum struct {
	pos int
	val float64
}

// Scratch holds the reusable working buffers of one detection run: the
// wavelet decomposition, the per-scale and combined thresholds, and the
// extremum/candidate/peak lists. A zero value is ready to use; buffers grow
// to the largest record seen and are reused afterwards, so a warm scratch
// makes DetectInto nearly allocation-free. Not safe for concurrent use.
type Scratch struct {
	dwt   sigdsp.DWT
	thr   [][]float64
	z     []float64
	thrZ  []float64
	ext   []extremum
	cands []candidate
	kept  []candidate
	peaks []int
}

func growFloat(buf []float64, n int) []float64 {
	if cap(buf) < n {
		return make([]float64, n)
	}
	return buf[:n]
}

// scales holds the decomposition, the per-scale adaptive thresholds and the
// combined detection signal.
type scales struct {
	w   [][]float64
	thr [][]float64
	// z is the detection signal: the sum of scales 2^2 and 2^3 normalized by
	// their local RMS. QRS complexes put energy into both scales (narrow
	// ones into 2^2, wide LBBB/PVC ones into 2^3) while T waves and
	// wide-band noise each excite only one, so the normalized sum separates
	// beats from both.
	z    []float64
	thrZ []float64
}

func decompose(sc *Scratch, x []float64, c Config) scales {
	sigdsp.AtrousDWTInto(&sc.dwt, x, 4)
	d := &sc.dwt
	if cap(sc.thr) >= len(d.W) {
		sc.thr = sc.thr[:len(d.W)]
	} else {
		thr := make([][]float64, len(d.W))
		copy(thr, sc.thr)
		sc.thr = thr
	}
	n := len(x)
	s := scales{w: d.W, thr: sc.thr}
	win := int(c.WindowSec * c.Fs)
	for i := range d.W {
		sc.thr[i] = growFloat(sc.thr[i], n)
		windowedRMSInto(sc.thr[i], d.W[i], win)
	}
	sc.z = growFloat(sc.z, n)
	s.z = sc.z
	for i := 0; i < n; i++ {
		s.z[i] = d.W[1][i]/(s.thr[1][i]+1e-300) + d.W[2][i]/(s.thr[2][i]+1e-300)
	}
	sc.thrZ = growFloat(sc.thrZ, n)
	s.thrZ = sc.thrZ
	windowedRMSInto(s.thrZ, s.z, win)
	return s
}

// slice restricts the scales to [lo, hi) (for search-back).
func (s scales) slice(lo, hi int) scales {
	out := scales{w: make([][]float64, len(s.w)), thr: make([][]float64, len(s.thr))}
	for i := range s.w {
		out.w[i] = s.w[i][lo:hi]
		out.thr[i] = s.thr[i][lo:hi]
	}
	out.z = s.z[lo:hi]
	out.thrZ = s.thrZ[lo:hi]
	return out
}

// Detect returns the R-peak sample indices found in x (a single filtered
// lead), sorted ascending.
//
// Each call allocates its own working buffers. Request loops should hold a
// Scratch (as pipeline.BatchScratch does) and call DetectInto instead.
func Detect(x []float64, cfg Config) []int {
	return DetectInto(x, cfg, new(Scratch))
}

// DetectInto is Detect running through the caller's scratch buffers: the
// decomposition, thresholds and candidate lists are reused across calls, so
// a warm scratch detects with O(1) allocations (search-back, when enabled,
// still allocates for its re-scan passes). The returned slice aliases s and
// is valid until the next call with the same scratch; copy it to retain.
//
//rpbeat:allocfree
func DetectInto(x []float64, cfg Config, s *Scratch) []int {
	c := cfg.withDefaults()
	if len(x) < 16 {
		return nil
	}
	sc := decompose(s, x, c)
	cands := detectPass(s, sc, c, 1.0)
	peaks := arbitrate(s, cands, int(c.RefractorySec*c.Fs))

	if !c.SearchBackOff && len(peaks) >= 3 {
		peaks = searchBack(s, peaks, sc, c)
	}
	return peaks
}

// detectPass scans the combined detection signal for significant
// modulus-maxima pairs and localizes each QRS at the zero crossing between
// the pair (on the finest scale that shows one, per the paper). thrScale
// relaxes thresholds (< 1) during search-back. The returned slice aliases
// sc.cands.
func detectPass(sc *Scratch, s scales, c Config, thrScale float64) []candidate {
	z, tz := s.z, s.thrZ
	n := len(z)
	pair := int(c.PairSec * c.Fs)

	// Significant local extrema of the detection signal.
	ext := sc.ext[:0]
	for i := 1; i < n-1; i++ {
		v := z[i]
		if math.Abs(v) < thrScale*c.ThresholdFactor*tz[i] {
			continue
		}
		if (v > 0 && v >= z[i-1] && v > z[i+1]) || (v < 0 && v <= z[i-1] && v < z[i+1]) {
			ext = append(ext, extremum{i, v})
		}
	}
	sc.ext = ext

	cands := sc.cands[:0]
	for i := 0; i+1 < len(ext); i++ {
		a, b := ext[i], ext[i+1]
		if a.val*b.val >= 0 || b.pos-a.pos > pair {
			continue // need opposite signs within the pair window
		}
		// Zero crossing of the detection signal between the pair (the
		// paper's scale-1 zero crossing generalized to the combined signal;
		// fine scales alone are unreliable for wide, smooth complexes whose
		// high-frequency content is noise).
		zc := zeroCrossing(z, a.pos, b.pos)
		if zc < 0 {
			zc = (a.pos + b.pos) / 2
		}
		cands = append(cands, candidate{pos: zc, amp: math.Abs(a.val) + math.Abs(b.val)})
	}
	sc.cands = cands
	return cands
}

// windowedRMSInto computes a per-sample threshold baseline into out (which
// must have len(v)): the RMS of v over
// non-overlapping windows, held constant inside each window. Using windows
// rather than a global RMS makes the detector robust to noise bursts and
// amplitude drift within a record.
//
//rpbeat:allocfree
func windowedRMSInto(out, v []float64, win int) {
	if win < 8 {
		win = 8
	}
	for start := 0; start < len(v); start += win {
		end := start + win
		if end > len(v) {
			end = len(v)
		}
		var s float64
		for _, x := range v[start:end] {
			s += x * x
		}
		r := math.Sqrt(s / float64(end-start))
		for i := start; i < end; i++ {
			out[i] = r
		}
	}
}

// zeroCrossing returns the index of the sign change of w inside (lo, hi), or
// -1 when w does not change sign there.
func zeroCrossing(w []float64, lo, hi int) int {
	if lo < 0 {
		lo = 0
	}
	if hi >= len(w) {
		hi = len(w) - 1
	}
	for i := lo; i < hi; i++ {
		if w[i] == 0 {
			return i
		}
		if (w[i] > 0) != (w[i+1] > 0) {
			// Pick the sample closer to zero.
			if math.Abs(w[i]) <= math.Abs(w[i+1]) {
				return i
			}
			return i + 1
		}
	}
	return -1
}

// arbitrate enforces the refractory period: candidates closer than refract
// keep only the largest-amplitude member. cands is sorted in place; the
// returned slice aliases sc.peaks.
func arbitrate(sc *Scratch, cands []candidate, refract int) []int {
	if len(cands) == 0 {
		return nil
	}
	sort.Slice(cands, func(i, j int) bool { return cands[i].pos < cands[j].pos })
	kept := sc.kept[:0]
	for _, c := range cands {
		if len(kept) > 0 && c.pos-kept[len(kept)-1].pos < refract {
			if c.amp > kept[len(kept)-1].amp {
				kept[len(kept)-1] = c
			}
			continue
		}
		kept = append(kept, c)
	}
	sc.kept = kept
	peaks := sc.peaks[:0]
	for _, c := range kept {
		peaks = append(peaks, c.pos)
	}
	sc.peaks = peaks
	return peaks
}

// searchBack re-scans abnormally long RR gaps with relaxed thresholds,
// recovering low-amplitude beats the first pass missed. peaks may alias
// sc.peaks: the gap list is copied up front because the nested
// detectPass/arbitrate calls clobber the scratch lists. The returned slice
// is freshly allocated (search-back is the retrospective batch path, off on
// every streaming/serving configuration, so its allocations are acceptable).
func searchBack(sc *Scratch, peaks []int, s scales, c Config) []int {
	orig := append([]int(nil), peaks...)
	rrs := make([]float64, 0, len(orig)-1)
	for i := 1; i < len(orig); i++ {
		rrs = append(rrs, float64(orig[i]-orig[i-1]))
	}
	med := median(rrs)
	if med <= 0 {
		return orig
	}
	refract := int(c.RefractorySec * c.Fs)
	out := append([]int(nil), orig...)
	for i := 1; i < len(orig); i++ {
		gap := float64(orig[i] - orig[i-1])
		if gap < 1.66*med {
			continue
		}
		lo, hi := orig[i-1]+refract, orig[i]-refract
		if hi <= lo {
			continue
		}
		sub := detectPass(sc, s.slice(lo, hi), c, 0.5)
		for _, cd := range arbitrate(sc, sub, refract) {
			out = append(out, lo+cd)
		}
	}
	sort.Ints(out)
	// Deduplicate anything the search-back re-found.
	dedup := out[:0]
	for _, p := range out {
		if len(dedup) > 0 && p-dedup[len(dedup)-1] < refract {
			continue
		}
		dedup = append(dedup, p)
	}
	return dedup
}

func median(v []float64) float64 {
	if len(v) == 0 {
		return 0
	}
	s := append([]float64(nil), v...)
	sort.Float64s(s)
	if len(s)%2 == 1 {
		return s[len(s)/2]
	}
	return 0.5 * (s[len(s)/2-1] + s[len(s)/2])
}

// Match compares detections against reference annotations with the given
// tolerance (samples) and returns (truePositives, falsePositives,
// falseNegatives). Each reference matches at most one detection.
func Match(detected, reference []int, tol int) (tp, fp, fn int) {
	used := make([]bool, len(detected))
	for _, ref := range reference {
		found := false
		for i, det := range detected {
			if used[i] {
				continue
			}
			if det >= ref-tol && det <= ref+tol {
				used[i] = true
				found = true
				break
			}
		}
		if found {
			tp++
		} else {
			fn++
		}
	}
	for _, u := range used {
		if !u {
			fp++
		}
	}
	return
}
