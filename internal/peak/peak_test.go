package peak

import (
	"testing"

	"rpbeat/internal/ecgsyn"
	"rpbeat/internal/sigdsp"
)

// detectOnRecord runs the full front end (filter + detect) on lead 0 of a
// synthetic record and returns detections plus reference peaks.
func detectOnRecord(t *testing.T, spec ecgsyn.RecordSpec) (det []int, ref []int) {
	t.Helper()
	rec := ecgsyn.Synthesize(spec)
	mv := rec.LeadMillivolts(0)
	filtered := sigdsp.FilterECG(mv, sigdsp.DefaultBaselineConfig(rec.Fs))
	det = Detect(filtered, Config{Fs: rec.Fs})
	for _, a := range rec.Ann {
		ref = append(ref, a.Sample)
	}
	return det, ref
}

func sensitivityPPV(det, ref []int, tol int) (se, ppv float64) {
	tp, fp, fn := Match(det, ref, tol)
	if tp+fn > 0 {
		se = float64(tp) / float64(tp+fn)
	}
	if tp+fp > 0 {
		ppv = float64(tp) / float64(tp+fp)
	}
	return
}

func TestDetectCleanRecord(t *testing.T) {
	v := ecgsyn.DefaultVariability()
	v.NoiseSDMin, v.NoiseSDMax = 0.005, 0.01
	v.WanderAmpMax, v.MainsAmpMax, v.ArtifactProb = 0.02, 0, 0
	det, ref := detectOnRecord(t, ecgsyn.RecordSpec{Name: "clean", Seconds: 120, Seed: 1, Var: &v})
	se, ppv := sensitivityPPV(det, ref, 18) // +/- 50 ms
	if se < 0.99 {
		t.Fatalf("sensitivity %.4f on clean record, want >= 0.99 (%d det, %d ref)", se, len(det), len(ref))
	}
	if ppv < 0.99 {
		t.Fatalf("PPV %.4f on clean record, want >= 0.99", ppv)
	}
}

func TestDetectNoisyRecord(t *testing.T) {
	det, ref := detectOnRecord(t, ecgsyn.RecordSpec{Name: "noisy", Seconds: 120, Seed: 2, PVCRate: 0.08})
	se, ppv := sensitivityPPV(det, ref, 18)
	if se < 0.97 {
		t.Fatalf("sensitivity %.4f on default-noise record, want >= 0.97", se)
	}
	if ppv < 0.97 {
		t.Fatalf("PPV %.4f, want >= 0.97", ppv)
	}
}

func TestDetectLBBBRecord(t *testing.T) {
	det, ref := detectOnRecord(t, ecgsyn.RecordSpec{Name: "lbbb", Seconds: 120, Seed: 3, LBBB: true})
	se, ppv := sensitivityPPV(det, ref, 18)
	if se < 0.95 {
		t.Fatalf("sensitivity %.4f on LBBB record, want >= 0.95", se)
	}
	if ppv < 0.95 {
		t.Fatalf("PPV %.4f, want >= 0.95", ppv)
	}
}

func TestDetectPVCRecord(t *testing.T) {
	det, ref := detectOnRecord(t, ecgsyn.RecordSpec{Name: "pvc", Seconds: 180, Seed: 4, PVCRate: 0.15})
	se, ppv := sensitivityPPV(det, ref, 18)
	if se < 0.96 {
		t.Fatalf("sensitivity %.4f on PVC-heavy record, want >= 0.96", se)
	}
	if ppv < 0.96 {
		t.Fatalf("PPV %.4f, want >= 0.96", ppv)
	}
}

func TestDetectLocalizationAccuracy(t *testing.T) {
	v := ecgsyn.DefaultVariability()
	v.NoiseSDMin, v.NoiseSDMax = 0.005, 0.01
	v.WanderAmpMax, v.MainsAmpMax, v.ArtifactProb = 0, 0, 0
	det, ref := detectOnRecord(t, ecgsyn.RecordSpec{Name: "loc", Seconds: 60, Seed: 5, Var: &v})
	// Mean |error| of matched peaks should be just a few samples.
	var sum, n float64
	for _, r := range ref {
		bestD, best := 1<<30, -1
		for _, d := range det {
			if diff := abs(d - r); diff < bestD {
				bestD, best = diff, d
			}
		}
		if best >= 0 && bestD <= 18 {
			sum += float64(bestD)
			n++
		}
	}
	if n == 0 {
		t.Fatal("no matched peaks")
	}
	if mean := sum / n; mean > 6 {
		t.Fatalf("mean localization error %.2f samples, want <= 6", mean)
	}
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

func TestDetectEmptyAndShort(t *testing.T) {
	if got := Detect(nil, Config{}); got != nil {
		t.Fatalf("nil input produced %v", got)
	}
	if got := Detect(make([]float64, 10), Config{}); got != nil {
		t.Fatalf("short input produced %v", got)
	}
}

func TestDetectFlatSignal(t *testing.T) {
	if got := Detect(make([]float64, 3600), Config{}); len(got) != 0 {
		t.Fatalf("flat signal produced %d detections", len(got))
	}
}

func TestDetectOutputSorted(t *testing.T) {
	det, _ := detectOnRecord(t, ecgsyn.RecordSpec{Name: "sort", Seconds: 60, Seed: 6})
	for i := 1; i < len(det); i++ {
		if det[i] <= det[i-1] {
			t.Fatal("detections not strictly increasing")
		}
	}
}

func TestRefractorySpacing(t *testing.T) {
	det, _ := detectOnRecord(t, ecgsyn.RecordSpec{Name: "rf", Seconds: 120, Seed: 7, PVCRate: 0.1})
	minGap := 79 // 0.22 s at 360 Hz
	for i := 1; i < len(det); i++ {
		if det[i]-det[i-1] < minGap {
			t.Fatalf("detections %d and %d closer than refractory period", det[i-1], det[i])
		}
	}
}

func TestMatchAccounting(t *testing.T) {
	tp, fp, fn := Match([]int{100, 200, 300}, []int{102, 205, 400}, 10)
	if tp != 2 || fp != 1 || fn != 1 {
		t.Fatalf("tp=%d fp=%d fn=%d, want 2/1/1", tp, fp, fn)
	}
	// Each reference matches at most one detection.
	tp, fp, fn = Match([]int{100, 101}, []int{100}, 5)
	if tp != 1 || fp != 1 || fn != 0 {
		t.Fatalf("duplicate detections: tp=%d fp=%d fn=%d, want 1/1/0", tp, fp, fn)
	}
}

func BenchmarkDetect30s(b *testing.B) {
	rec := ecgsyn.Synthesize(ecgsyn.RecordSpec{Name: "b", Seconds: 30, Seed: 1})
	mv := rec.LeadMillivolts(0)
	filtered := sigdsp.FilterECG(mv, sigdsp.DefaultBaselineConfig(rec.Fs))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = Detect(filtered, Config{Fs: rec.Fs})
	}
}
