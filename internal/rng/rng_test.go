package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverged at draw %d", i)
		}
	}
}

func TestDistinctSeedsDiffer(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("seeds 1 and 2 produced %d identical draws out of 100", same)
	}
}

func TestSplitIndependence(t *testing.T) {
	r := New(7)
	c1 := r.Split()
	c2 := r.Split()
	if c1.Uint64() == c2.Uint64() {
		t.Fatal("two Split children produced identical first draw")
	}
}

func TestIntnRange(t *testing.T) {
	r := New(3)
	for n := 1; n <= 17; n++ {
		for i := 0; i < 200; i++ {
			v := r.Intn(n)
			if v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestIntnUniformity(t *testing.T) {
	r := New(99)
	const n, draws = 10, 100000
	counts := make([]int, n)
	for i := 0; i < draws; i++ {
		counts[r.Intn(n)]++
	}
	want := float64(draws) / n
	for i, c := range counts {
		if math.Abs(float64(c)-want) > 5*math.Sqrt(want) {
			t.Errorf("bucket %d: got %d, want about %.0f", i, c, want)
		}
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(5)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64() = %v out of [0,1)", f)
		}
	}
}

func TestNormMoments(t *testing.T) {
	r := New(11)
	const n = 200000
	var sum, sumsq float64
	for i := 0; i < n; i++ {
		x := r.Norm()
		sum += x
		sumsq += x * x
	}
	mean := sum / n
	variance := sumsq/n - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Errorf("normal mean = %v, want ~0", mean)
	}
	if math.Abs(variance-1) > 0.03 {
		t.Errorf("normal variance = %v, want ~1", variance)
	}
}

func TestNormScaled(t *testing.T) {
	r := New(13)
	const n = 100000
	var sum float64
	for i := 0; i < n; i++ {
		sum += r.NormScaled(10, 2)
	}
	if mean := sum / n; math.Abs(mean-10) > 0.05 {
		t.Errorf("scaled mean = %v, want ~10", mean)
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := New(17)
	for _, n := range []int{0, 1, 2, 5, 50} {
		p := r.Perm(n)
		if len(p) != n {
			t.Fatalf("Perm(%d) has length %d", n, len(p))
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				t.Fatalf("Perm(%d) = %v is not a permutation", n, p)
			}
			seen[v] = true
		}
	}
}

func TestShuffleIsPermutation(t *testing.T) {
	r := New(19)
	s := []int{0, 1, 2, 3, 4, 5, 6, 7}
	r.Shuffle(len(s), func(i, j int) { s[i], s[j] = s[j], s[i] })
	seen := make(map[int]bool)
	for _, v := range s {
		seen[v] = true
	}
	if len(seen) != 8 {
		t.Fatalf("shuffle lost elements: %v", s)
	}
}

func TestTritProbabilities(t *testing.T) {
	r := New(23)
	const n = 120000
	var plus, minus, zero int
	for i := 0; i < n; i++ {
		switch r.Trit() {
		case +1:
			plus++
		case -1:
			minus++
		case 0:
			zero++
		default:
			t.Fatal("Trit returned value outside {+1,-1,0}")
		}
	}
	// Expected: n/6, n/6, 2n/3. Allow 5 sigma.
	checkFrac := func(name string, got int, p float64) {
		want := p * n
		sd := math.Sqrt(n * p * (1 - p))
		if math.Abs(float64(got)-want) > 5*sd {
			t.Errorf("%s: got %d, want about %.0f (±%.0f)", name, got, want, 5*sd)
		}
	}
	checkFrac("+1", plus, 1.0/6)
	checkFrac("-1", minus, 1.0/6)
	checkFrac("0", zero, 2.0/3)
}

func TestIntnCoversAllValues(t *testing.T) {
	f := func(seed uint64) bool {
		r := New(seed)
		seen := make(map[int]bool)
		for i := 0; i < 300; i++ {
			seen[r.Intn(7)] = true
		}
		return len(seen) == 7
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func BenchmarkUint64(b *testing.B) {
	r := New(1)
	for i := 0; i < b.N; i++ {
		_ = r.Uint64()
	}
}

func BenchmarkNorm(b *testing.B) {
	r := New(1)
	for i := 0; i < b.N; i++ {
		_ = r.Norm()
	}
}
