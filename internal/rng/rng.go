// Package rng provides a small, deterministic pseudo-random number generator
// used by every randomized component of the library (projection generation,
// genetic search, synthetic ECG generation, dataset splits).
//
// The generator is xoshiro256**, seeded through splitmix64. It is implemented
// here, rather than using math/rand, so that results are bit-reproducible
// across Go versions and platforms: experiment tables in EXPERIMENTS.md can be
// regenerated exactly from a seed.
package rng

import (
	"math"
	"math/bits"
)

// Rand is a deterministic xoshiro256** pseudo-random number generator.
// The zero value is not usable; construct with New.
type Rand struct {
	s [4]uint64
	// cached spare normal deviate for Box-Muller
	hasSpare bool
	spare    float64
}

// splitmix64 advances the state and returns the next value of the splitmix64
// sequence. It is used only to expand a single seed word into the full
// xoshiro256** state, as recommended by the xoshiro authors.
func splitmix64(state *uint64) uint64 {
	*state += 0x9e3779b97f4a7c15
	z := *state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// New returns a generator seeded from seed. Distinct seeds yield independent
// streams for any practical purpose.
func New(seed uint64) *Rand {
	r := &Rand{}
	sm := seed
	for i := range r.s {
		r.s[i] = splitmix64(&sm)
	}
	// A pathological all-zero state cannot occur: splitmix64 is a bijection
	// over uint64, so four consecutive outputs are zero only for one specific
	// seed per position, never all four at once. Guard anyway.
	if r.s[0]|r.s[1]|r.s[2]|r.s[3] == 0 {
		r.s[0] = 0x9e3779b97f4a7c15
	}
	return r
}

// Split derives a new, statistically independent generator from r.
// It is used to give each record/beat/GA-worker its own stream so that
// parallel evaluation order does not change results.
func (r *Rand) Split() *Rand {
	return New(r.Uint64() ^ 0xd1b54a32d192ed03)
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 uniformly distributed bits.
func (r *Rand) Uint64() uint64 {
	s := &r.s
	result := rotl(s[1]*5, 7) * 9
	t := s[1] << 17
	s[2] ^= s[0]
	s[3] ^= s[1]
	s[1] ^= s[2]
	s[0] ^= s[3]
	s[2] ^= t
	s[3] = rotl(s[3], 45)
	return result
}

// Intn returns a uniform integer in [0, n). It panics if n <= 0.
// It uses Lemire's multiply-rejection method, which is exact (unbiased).
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with non-positive n")
	}
	un := uint64(n)
	hi, lo := bits.Mul64(r.Uint64(), un)
	if lo < un {
		threshold := -un % un
		for lo < threshold {
			hi, lo = bits.Mul64(r.Uint64(), un)
		}
	}
	return int(hi)
}

// Float64 returns a uniform float64 in [0, 1).
func (r *Rand) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Norm returns a standard normal deviate (mean 0, standard deviation 1)
// using the Box-Muller transform with a cached spare.
func (r *Rand) Norm() float64 {
	if r.hasSpare {
		r.hasSpare = false
		return r.spare
	}
	var u, v, s float64
	for {
		u = 2*r.Float64() - 1
		v = 2*r.Float64() - 1
		s = u*u + v*v
		if s > 0 && s < 1 {
			break
		}
	}
	f := math.Sqrt(-2 * math.Log(s) / s)
	r.spare = v * f
	r.hasSpare = true
	return u * f
}

// NormScaled returns mean + sd*Norm().
func (r *Rand) NormScaled(mean, sd float64) float64 {
	return mean + sd*r.Norm()
}

// Perm returns a uniformly random permutation of [0, n).
func (r *Rand) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Shuffle randomly permutes n elements using the provided swap function.
func (r *Rand) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}

// Trit returns one of {+1, -1, 0} with the Achlioptas probabilities
// {1/6, 1/6, 2/3}. It consumes one 64-bit draw.
func (r *Rand) Trit() int8 {
	// Draw a uniform value in [0, 6) exactly.
	switch r.Intn(6) {
	case 0:
		return +1
	case 1:
		return -1
	default:
		return 0
	}
}

// VerySparseTrit returns one of {+1, -1, 0} with the Li-Hastie-Church "very
// sparse" probabilities {1/(2√d), 1/(2√d), 1-1/√d}. It consumes one draw for
// the zero test plus one for the sign when non-zero; d must be positive.
func (r *Rand) VerySparseTrit(d int) int8 {
	if d <= 0 {
		panic("rng: VerySparseTrit needs d > 0")
	}
	if r.Float64()*math.Sqrt(float64(d)) >= 1 {
		return 0
	}
	if r.Intn(2) == 0 {
		return +1
	}
	return -1
}

// LogSparseTrit returns one of {+1, -1, 0} at the aggressive end of the
// Li-Hastie-Church very sparse family, s = d/ln(d): non-zero with probability
// ln(d)/d (half each sign), floored at 1/d so tiny d still draws entries and
// capped at the Achlioptas 1/3 so it never exceeds the dense-sparse families.
// d must be positive.
func (r *Rand) LogSparseTrit(d int) int8 {
	if d <= 0 {
		panic("rng: LogSparseTrit needs d > 0")
	}
	p := math.Log(float64(d)) / float64(d)
	if p < 1/float64(d) {
		p = 1 / float64(d)
	}
	if p > 1.0/3 {
		p = 1.0 / 3
	}
	if r.Float64() >= p {
		return 0
	}
	if r.Intn(2) == 0 {
		return +1
	}
	return -1
}
