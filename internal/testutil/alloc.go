// Package testutil carries helpers shared by the package test suites.
//
// AssertZeroAlloc is the runtime half of the repo's allocation invariant:
// cmd/rpvet's allocfree analyzer statically proves a //rpbeat:allocfree
// function contains no allocation *sources*, and these helpers prove at
// runtime that escape analysis actually kept the hot path on the stack.
// Both layers name the same invariant set — a function annotated
// //rpbeat:allocfree should have an AssertZeroAlloc test, and vice versa.
package testutil

import "testing"

// AssertZeroAlloc fails the test if f allocates. name labels the measured
// operation in the failure message.
func AssertZeroAlloc(t *testing.T, name string, f func()) {
	t.Helper()
	AssertZeroAllocN(t, name, 100, f)
}

// AssertZeroAllocN is AssertZeroAlloc with a caller-chosen number of
// measurement rounds, for operations expensive enough that the default 100
// would dominate the suite's runtime.
//
// The measurement is retried a few times before failing: paths that hand
// work to a goroutine (engine workers draining chunks) are measured
// globally by testing.AllocsPerRun, and a warm-up racing the first round
// can charge one-time growth to it.
func AssertZeroAllocN(t *testing.T, name string, runs int, f func()) {
	t.Helper()
	var allocs float64
	for attempt := 0; attempt < 3; attempt++ {
		allocs = testing.AllocsPerRun(runs, f)
		if allocs == 0 {
			return
		}
	}
	t.Fatalf("%s allocates %.1f times per run, want 0", name, allocs)
}

// AssertAllocsAtMost bounds f's allocations per run for paths with a
// documented nonzero floor (e.g. sort.Slice boxing its less closure).
func AssertAllocsAtMost(t *testing.T, name string, max float64, runs int, f func()) {
	t.Helper()
	if allocs := testing.AllocsPerRun(runs, f); allocs > max {
		t.Fatalf("%s allocates %.1f times per run, want <= %.1f", name, allocs, max)
	}
}
