// Package pca implements principal component analysis, the off-line
// dimensionality-reduction baseline the paper compares random projections
// against in Table II (row PCA-PC, following Ceylan & Ozbay's use of PCA for
// ECG beat classification).
//
// The eigendecomposition uses the cyclic Jacobi method, which is simple,
// numerically robust for symmetric matrices, and entirely stdlib.
package pca

import (
	"errors"
	"fmt"
	"math"
)

// Projection is a fitted PCA transform: center on Mean, then project onto
// the top-K principal components.
type Projection struct {
	Mean       []float64   // length D
	Components [][]float64 // K rows of length D, orthonormal
	Variances  []float64   // eigenvalues of the K retained components
}

// Fit computes the top-k principal components of the data (rows are
// observations of equal length).
func Fit(data [][]float64, k int) (*Projection, error) {
	if len(data) < 2 {
		return nil, errors.New("pca: need at least 2 observations")
	}
	d := len(data[0])
	if d == 0 {
		return nil, errors.New("pca: empty observations")
	}
	if k <= 0 || k > d {
		return nil, fmt.Errorf("pca: k=%d outside [1, %d]", k, d)
	}
	for i, row := range data {
		if len(row) != d {
			return nil, fmt.Errorf("pca: row %d has length %d, want %d", i, len(row), d)
		}
	}
	mean := make([]float64, d)
	for _, row := range data {
		for j, v := range row {
			mean[j] += v
		}
	}
	inv := 1 / float64(len(data))
	for j := range mean {
		mean[j] *= inv
	}
	// Covariance matrix (d x d, symmetric).
	cov := newSquare(d)
	for _, row := range data {
		for a := 0; a < d; a++ {
			da := row[a] - mean[a]
			cova := cov[a]
			for b := a; b < d; b++ {
				cova[b] += da * (row[b] - mean[b])
			}
		}
	}
	norm := 1 / float64(len(data)-1)
	for a := 0; a < d; a++ {
		for b := a; b < d; b++ {
			cov[a][b] *= norm
			cov[b][a] = cov[a][b]
		}
	}
	values, vectors, err := JacobiEigen(cov, 100)
	if err != nil {
		return nil, err
	}
	p := &Projection{Mean: mean}
	for i := 0; i < k; i++ {
		p.Components = append(p.Components, vectors[i])
		p.Variances = append(p.Variances, values[i])
	}
	return p, nil
}

// Project maps v (length D) to its K principal-component scores.
func (p *Projection) Project(v []float64) []float64 {
	d := len(p.Mean)
	if len(v) != d {
		panic(fmt.Sprintf("pca: input length %d, want %d", len(v), d))
	}
	out := make([]float64, len(p.Components))
	for i, comp := range p.Components {
		var s float64
		for j := range comp {
			s += comp[j] * (v[j] - p.Mean[j])
		}
		out[i] = s
	}
	return out
}

// K returns the number of retained components.
func (p *Projection) K() int { return len(p.Components) }

func newSquare(n int) [][]float64 {
	backing := make([]float64, n*n)
	m := make([][]float64, n)
	for i := range m {
		m[i] = backing[i*n : (i+1)*n]
	}
	return m
}

// JacobiEigen computes the eigendecomposition of the symmetric matrix a
// (which is destroyed) using cyclic Jacobi rotations. It returns eigenvalues
// sorted in descending order and the matching eigenvectors as rows.
func JacobiEigen(a [][]float64, maxSweeps int) ([]float64, [][]float64, error) {
	n := len(a)
	if n == 0 {
		return nil, nil, errors.New("pca: empty matrix")
	}
	for i := range a {
		if len(a[i]) != n {
			return nil, nil, errors.New("pca: matrix not square")
		}
	}
	// v starts as identity; rows of the final v^T are eigenvectors.
	v := newSquare(n)
	for i := 0; i < n; i++ {
		v[i][i] = 1
	}
	offDiag := func() float64 {
		var s float64
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				s += a[i][j] * a[i][j]
			}
		}
		return s
	}
	// Scale-aware tolerance.
	var frob float64
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			frob += a[i][j] * a[i][j]
		}
	}
	tol := 1e-22 * (frob + 1e-300)

	for sweep := 0; sweep < maxSweeps; sweep++ {
		if offDiag() <= tol {
			break
		}
		for p := 0; p < n-1; p++ {
			for q := p + 1; q < n; q++ {
				apq := a[p][q]
				if math.Abs(apq) < 1e-300 {
					continue
				}
				theta := (a[q][q] - a[p][p]) / (2 * apq)
				t := math.Copysign(1, theta) / (math.Abs(theta) + math.Sqrt(theta*theta+1))
				c := 1 / math.Sqrt(t*t+1)
				s := t * c
				// Apply rotation G(p,q,θ) on both sides: a = Gᵀ a G.
				for i := 0; i < n; i++ {
					aip, aiq := a[i][p], a[i][q]
					a[i][p] = c*aip - s*aiq
					a[i][q] = s*aip + c*aiq
				}
				for i := 0; i < n; i++ {
					api, aqi := a[p][i], a[q][i]
					a[p][i] = c*api - s*aqi
					a[q][i] = s*api + c*aqi
				}
				for i := 0; i < n; i++ {
					vip, viq := v[i][p], v[i][q]
					v[i][p] = c*vip - s*viq
					v[i][q] = s*vip + c*viq
				}
			}
		}
	}

	values := make([]float64, n)
	for i := 0; i < n; i++ {
		values[i] = a[i][i]
	}
	// Sort eigenpairs by descending eigenvalue.
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	for i := 0; i < n; i++ {
		best := i
		for j := i + 1; j < n; j++ {
			if values[order[j]] > values[order[best]] {
				best = j
			}
		}
		order[i], order[best] = order[best], order[i]
	}
	sortedVals := make([]float64, n)
	vectors := make([][]float64, n)
	for i, oi := range order {
		sortedVals[i] = values[oi]
		vec := make([]float64, n)
		for r := 0; r < n; r++ {
			vec[r] = v[r][oi]
		}
		vectors[i] = vec
	}
	return sortedVals, vectors, nil
}
