package pca

import (
	"math"
	"testing"

	"rpbeat/internal/rng"
)

func TestJacobiDiagonal(t *testing.T) {
	a := [][]float64{{3, 0, 0}, {0, 1, 0}, {0, 0, 2}}
	vals, vecs, err := JacobiEigen(a, 50)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{3, 2, 1}
	for i := range want {
		if math.Abs(vals[i]-want[i]) > 1e-12 {
			t.Fatalf("eigenvalue %d = %v, want %v", i, vals[i], want[i])
		}
	}
	// Eigenvector of eigenvalue 3 should be e0 (up to sign).
	if math.Abs(math.Abs(vecs[0][0])-1) > 1e-9 {
		t.Fatalf("first eigenvector %v", vecs[0])
	}
}

func TestJacobiKnown2x2(t *testing.T) {
	// [[2,1],[1,2]] has eigenvalues 3 and 1 with vectors (1,1)/√2, (1,-1)/√2.
	a := [][]float64{{2, 1}, {1, 2}}
	vals, vecs, err := JacobiEigen(a, 50)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(vals[0]-3) > 1e-12 || math.Abs(vals[1]-1) > 1e-12 {
		t.Fatalf("eigenvalues %v", vals)
	}
	if math.Abs(math.Abs(vecs[0][0])-1/math.Sqrt2) > 1e-9 ||
		math.Abs(vecs[0][0]-vecs[0][1]) > 1e-9 {
		t.Fatalf("first eigenvector %v", vecs[0])
	}
}

func TestJacobiOrthonormalityAndReconstruction(t *testing.T) {
	r := rng.New(1)
	n := 20
	// Random symmetric matrix.
	orig := make([][]float64, n)
	work := make([][]float64, n)
	for i := range orig {
		orig[i] = make([]float64, n)
		work[i] = make([]float64, n)
	}
	for i := 0; i < n; i++ {
		for j := i; j < n; j++ {
			v := r.Norm()
			orig[i][j], orig[j][i] = v, v
		}
	}
	for i := range orig {
		copy(work[i], orig[i])
	}
	vals, vecs, err := JacobiEigen(work, 100)
	if err != nil {
		t.Fatal(err)
	}
	// Orthonormality.
	for a := 0; a < n; a++ {
		for b := 0; b < n; b++ {
			var dot float64
			for k := 0; k < n; k++ {
				dot += vecs[a][k] * vecs[b][k]
			}
			want := 0.0
			if a == b {
				want = 1
			}
			if math.Abs(dot-want) > 1e-8 {
				t.Fatalf("vec %d . vec %d = %v, want %v", a, b, dot, want)
			}
		}
	}
	// A v = λ v for each pair.
	for e := 0; e < n; e++ {
		for i := 0; i < n; i++ {
			var av float64
			for j := 0; j < n; j++ {
				av += orig[i][j] * vecs[e][j]
			}
			if math.Abs(av-vals[e]*vecs[e][i]) > 1e-7*(1+math.Abs(vals[e])) {
				t.Fatalf("eigenpair %d violates A v = λ v at row %d", e, i)
			}
		}
	}
	// Eigenvalues sorted descending.
	for i := 1; i < n; i++ {
		if vals[i] > vals[i-1]+1e-12 {
			t.Fatalf("eigenvalues not sorted: %v", vals)
		}
	}
}

func TestFitRecoversDominantDirection(t *testing.T) {
	// Data spread along (1,1,0)/√2 with small isotropic noise.
	r := rng.New(2)
	dir := []float64{1 / math.Sqrt2, 1 / math.Sqrt2, 0}
	var data [][]float64
	for i := 0; i < 500; i++ {
		s := 5 * r.Norm()
		row := make([]float64, 3)
		for j := range row {
			row[j] = s*dir[j] + 0.1*r.Norm() + 2 // +2: nonzero mean
		}
		data = append(data, row)
	}
	p, err := Fit(data, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Mean near (2,2,2).
	for j := range p.Mean {
		if math.Abs(p.Mean[j]-2) > 0.5 {
			t.Fatalf("mean[%d] = %v", j, p.Mean[j])
		}
	}
	// First component parallel to dir (up to sign).
	var dot float64
	for j := range dir {
		dot += p.Components[0][j] * dir[j]
	}
	if math.Abs(math.Abs(dot)-1) > 0.02 {
		t.Fatalf("first component %v not aligned with %v (|dot| = %v)", p.Components[0], dir, math.Abs(dot))
	}
	if p.Variances[0] < 15 {
		t.Fatalf("dominant variance %v, want ~25", p.Variances[0])
	}
}

func TestProjectCentersData(t *testing.T) {
	r := rng.New(3)
	var data [][]float64
	for i := 0; i < 100; i++ {
		data = append(data, []float64{r.Norm() + 10, 2 * r.Norm()})
	}
	p, err := Fit(data, 2)
	if err != nil {
		t.Fatal(err)
	}
	// The projection of the mean must be ~0.
	score := p.Project(p.Mean)
	for i, s := range score {
		if math.Abs(s) > 1e-9 {
			t.Fatalf("score[%d] of mean = %v", i, s)
		}
	}
}

func TestProjectionPreservesVarianceOrdering(t *testing.T) {
	r := rng.New(4)
	var data [][]float64
	for i := 0; i < 400; i++ {
		data = append(data, []float64{3 * r.Norm(), 1 * r.Norm(), 0.2 * r.Norm()})
	}
	p, err := Fit(data, 3)
	if err != nil {
		t.Fatal(err)
	}
	// Empirical variance of each score, in order.
	n := len(data)
	vars := make([]float64, 3)
	for _, row := range data {
		s := p.Project(row)
		for j, v := range s {
			vars[j] += v * v / float64(n-1)
		}
	}
	if !(vars[0] > vars[1] && vars[1] > vars[2]) {
		t.Fatalf("score variances not ordered: %v", vars)
	}
}

func TestFitValidation(t *testing.T) {
	if _, err := Fit(nil, 1); err == nil {
		t.Fatal("empty data should fail")
	}
	if _, err := Fit([][]float64{{1}, {2}}, 2); err == nil {
		t.Fatal("k > d should fail")
	}
	if _, err := Fit([][]float64{{1, 2}, {3}}, 1); err == nil {
		t.Fatal("ragged data should fail")
	}
	if _, err := Fit([][]float64{{1, 2}}, 1); err == nil {
		t.Fatal("single observation should fail")
	}
}

func TestProjectPanicsOnBadLength(t *testing.T) {
	p := &Projection{Mean: []float64{0, 0}, Components: [][]float64{{1, 0}}}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	p.Project([]float64{1, 2, 3})
}

func BenchmarkFit_200x450(b *testing.B) {
	r := rng.New(1)
	data := make([][]float64, 450)
	for i := range data {
		data[i] = make([]float64, 200)
		for j := range data[i] {
			data[i][j] = r.Norm()
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Fit(data, 8); err != nil {
			b.Fatal(err)
		}
	}
}
