package pipeline

// Engine multiplexes many independent patient streams over a fixed worker
// pool — the serving shape of the ROADMAP's north star. Each stream owns one
// Pipeline; a stream is only ever run by one worker at a time (so pipelines
// need no locks and per-stream ordering is preserved), while different
// streams run in parallel across the pool. Models come from a
// catalog.Catalog: Open resolves a "name" or "name@vN" reference against
// the catalog's current snapshot (one atomic load) and pins the resolved
// version for the stream's whole life — an admin deleting or superseding a
// model never breaks an in-flight stream, the next Open simply resolves the
// new state. core.Embedded is read-only after Quantize, so any number of
// streams classify against the same tables concurrently.
//
// Scheduling is sharded so that neither Send admission nor worker dispatch
// contends on a process-wide lock (see DESIGN.md, "Sharded engine
// scheduler"):
//
//   - Every worker owns a run-queue shard. A stream is assigned a home shard
//     at Open (round-robin) and is always enqueued there; an idle worker
//     first drains its own shard, then steals from the others, so load
//     imbalance between shards self-corrects.
//   - Stream state (the idle/queued/running/dirty machine, the chunk FIFO,
//     the pending-sample count) is guarded by a per-stream mutex; shard
//     queues are guarded by per-shard mutexes. Two Sends on different
//     streams, or a Send racing a worker on a different stream, share no
//     lock at all.
//   - Workers park on a per-worker wake token when every queue is empty.
//     Parking is two-phase (register as idle, then re-scan all shards) and
//     producers enqueue before consulting the idle list, so a wake-up can
//     never be lost between a worker's last scan and its wait.
//
// Chunk buffers are pooled: Send copies the caller's samples into a
// sync.Pool-recycled buffer and the worker returns it after the drain, so a
// steady-state Send performs zero heap allocations (enforced by
// TestEngineSendZeroAlloc), matching the Pipeline.Push invariant.

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"

	"rpbeat/internal/apierr"
	"rpbeat/internal/catalog"
)

// EngineConfig sizes the engine.
type EngineConfig struct {
	// Workers bounds concurrent stream processing; default NumCPU.
	Workers int
	// MaxPending bounds the per-stream queue of un-processed input, in
	// samples (so the memory bound holds whatever chunk sizes the producer
	// picks). A Send that would exceed it fails with
	// apierr.CodeStreamOverloaded — the producer outran the worker pool
	// and must back off; nothing is dropped silently. A single chunk
	// larger than the bound is still admitted when the queue is empty, so
	// oversized chunks stall rather than starve. Default 1<<20 samples
	// (4 MB of int32, ~48 minutes of one 360 Hz lead); negative means
	// unbounded.
	MaxPending int
	// MaxStreams bounds concurrently open streams (Open through Close). An
	// Open at the bound fails with apierr.CodeServerOverloaded — the
	// process-wide capacity defense behind the serving layer's admission
	// gate, so embedders that bypass HTTP get the same contract. Zero or
	// negative means unlimited.
	MaxStreams int
}

// defaultMaxPending is the per-stream queue bound, in samples, when the
// configuration leaves it zero.
const defaultMaxPending = 1 << 20

// streamState is the scheduling state of a Stream, guarded by Stream.mu.
type streamState uint8

const (
	stateIdle    streamState = iota // no pending work, not queued
	stateQueued                     // in a shard's run queue
	stateRunning                    // a worker is processing it
	stateDirty                      // running, and new work arrived meanwhile
)

// chunk is one pooled Send buffer. The pool hands out *chunk (not []int32)
// so that returning a buffer never re-boxes the slice header.
type chunk struct {
	buf []int32
}

// shard is one worker's run queue. head indexes the logical front so pops
// are O(1) without shrinking the backing array; the array is reset (not
// discarded) whenever the queue drains, so steady-state enqueues reuse it.
type shard struct {
	mu   sync.Mutex
	runq []*Stream
	head int
}

// pop removes and returns the front stream, or nil when the shard is empty.
func (sh *shard) pop() *Stream {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if sh.head == len(sh.runq) {
		return nil
	}
	s := sh.runq[sh.head]
	sh.runq[sh.head] = nil
	sh.head++
	if sh.head == len(sh.runq) {
		sh.runq = sh.runq[:0]
		sh.head = 0
	} else if sh.head >= 32 && sh.head > len(sh.runq)/2 {
		// Compact the consumed prefix once it dominates the array, so a
		// shard that never fully drains (sustained backlog) cannot grow its
		// backing array without bound. The half-full threshold keeps the
		// copy amortized O(1) per pop.
		n := copy(sh.runq, sh.runq[sh.head:])
		for i := n; i < len(sh.runq); i++ {
			sh.runq[i] = nil
		}
		sh.runq = sh.runq[:n]
		sh.head = 0
	}
	return s
}

// push appends a stream to the shard's queue.
func (sh *shard) push(s *Stream) {
	sh.mu.Lock()
	sh.runq = append(sh.runq, s)
	sh.mu.Unlock()
}

// worker is one pool goroutine with its own run-queue shard, wake token and
// drain scratch (the chunk list it copies out of a stream's FIFO, reused
// across iterations so draining allocates nothing).
type worker struct {
	id     int
	shard  shard
	wake   chan struct{} // capacity 1: a binary wake token
	chunks []*chunk      // drain scratch, owned by the worker goroutine
}

// Engine runs streams over its worker pool.
type Engine struct {
	cat        *catalog.Catalog
	maxPending int
	maxStreams int64

	// open counts streams between Open and completion (the done close).
	open atomic.Int64

	workers []*worker
	next    atomic.Uint64 // round-robin home-shard assignment for Open
	chunks  sync.Pool     // of *chunk

	// inflight counts Send/Close calls between admission and enqueue
	// completion. Workers may only exit once shutdown is set, inflight is
	// zero and a full scan finds every shard empty — the counter closes the
	// race where a Send admitted before shutdown publishes its chunk after
	// a worker's final scan.
	inflight atomic.Int64
	shutdown atomic.Bool

	idleMu sync.Mutex
	idle   []*worker // parked workers (LIFO: the most recently parked wakes first)

	wg sync.WaitGroup
}

// NewEngine starts an engine over the catalog's models.
func NewEngine(cat *catalog.Catalog, cfg EngineConfig) *Engine {
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.NumCPU()
	}
	if cfg.MaxPending == 0 {
		cfg.MaxPending = defaultMaxPending
	}
	e := &Engine{cat: cat, maxPending: cfg.MaxPending, maxStreams: int64(cfg.MaxStreams)}
	e.workers = make([]*worker, cfg.Workers)
	for i := range e.workers {
		e.workers[i] = &worker{id: i, wake: make(chan struct{}, 1)}
	}
	e.wg.Add(cfg.Workers)
	for _, w := range e.workers {
		go e.workerLoop(w)
	}
	return e
}

// Catalog returns the engine's model catalog.
func (e *Engine) Catalog() *catalog.Catalog { return e.cat }

// getChunk takes a pooled buffer (or a fresh one on a cold pool).
func (e *Engine) getChunk() *chunk {
	if c, ok := e.chunks.Get().(*chunk); ok {
		return c
	}
	return new(chunk)
}

// putChunk returns a drained buffer to the pool for the next Send.
func (e *Engine) putChunk(c *chunk) {
	c.buf = c.buf[:0]
	e.chunks.Put(c)
}

// Stream is one patient's sample feed into the engine. Send and Close may be
// called from any goroutine (but not concurrently with each other); the sink
// is invoked serially, in input order, from worker goroutines.
type Stream struct {
	eng   *Engine
	entry *catalog.Entry
	pipe  *Pipeline
	sink  func([]BeatResult)
	home  *worker // the shard this stream enqueues to

	// Guarded by mu.
	mu      sync.Mutex
	state   streamState
	fifo    []*chunk // backing array recycled across drains
	pending int      // samples queued or reserved by an in-flight Send
	closing bool
	flushed bool

	done chan struct{}
}

// Open creates a stream classifying against the referenced model ("" for
// the catalog default, "name" for its latest version, "name@vN" pinned).
// The resolved version stays with the stream until Close regardless of
// later catalog mutations. The sink receives every batch of finalized
// beats; the slice passed to it is only valid for the duration of the call.
func (e *Engine) Open(ctx context.Context, model string, cfg Config, sink func([]BeatResult)) (*Stream, error) {
	if err := ctx.Err(); err != nil {
		return nil, apierr.From(err)
	}
	if e.shutdown.Load() {
		return nil, errShuttingDown
	}
	// Reserve a stream slot before any allocation: a refused Open costs the
	// caller (and an overloaded server) nothing but the CAS.
	if !e.reserveStream() {
		return nil, errSlotsExhausted
	}
	entry, err := e.cat.Snapshot().Resolve(model)
	if err != nil {
		e.open.Add(-1)
		return nil, err
	}
	pipe, err := New(entry.Emb, cfg)
	if err != nil {
		e.open.Add(-1)
		return nil, err
	}
	if sink == nil {
		sink = func([]BeatResult) {}
	}
	home := e.workers[int((e.next.Add(1)-1)%uint64(len(e.workers)))]
	return &Stream{eng: e, entry: entry, pipe: pipe, sink: sink, home: home, done: make(chan struct{})}, nil
}

// reserveStream CAS-increments the open-stream count unless it is at the
// bound (maxStreams <= 0 is unlimited).
func (e *Engine) reserveStream() bool {
	for {
		cur := e.open.Load()
		if e.maxStreams > 0 && cur >= e.maxStreams {
			return false
		}
		if e.open.CompareAndSwap(cur, cur+1) {
			return true
		}
	}
}

// OpenStreams reports how many streams are currently open (Open through
// Close completion) — what EngineConfig.MaxStreams bounds.
func (e *Engine) OpenStreams() int { return int(e.open.Load()) }

// Entry returns the catalog entry the stream was opened against (the
// version is pinned, so this is stable for the stream's life).
func (s *Stream) Entry() *catalog.Entry { return s.entry }

// PendingSamples reports how many samples are queued (or reserved by an
// in-flight Send) but not yet drained by a worker — the quantity
// EngineConfig.MaxPending bounds. Zero means every sent sample has been
// pushed through the pipeline.
func (s *Stream) PendingSamples() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.pending
}

// Send enqueues a chunk of raw ADC samples. The slice is copied (into a
// pooled buffer, so a steady-state Send allocates nothing), and the caller
// may reuse it immediately. A canceled context fails the send before the
// chunk is queued; a full stream queue fails it with
// apierr.CodeStreamOverloaded. Admission is decided before the chunk is
// copied, so a rejected Send (e.g. in a backpressure retry loop) costs
// neither an allocation nor a copy.
//
//rpbeat:allocfree
func (s *Stream) Send(ctx context.Context, samples []int32) error {
	if err := ctx.Err(); err != nil {
		return apierr.From(err)
	}
	if len(samples) == 0 {
		return nil
	}
	e := s.eng
	e.inflight.Add(1)
	defer e.inflight.Add(-1)

	// Admission: reserve queue space under the stream lock, without the copy.
	s.mu.Lock()
	if err := s.admitLocked(); err != nil {
		s.mu.Unlock()
		return err
	}
	if e.maxPending > 0 && s.pending > 0 && s.pending+len(samples) > e.maxPending {
		s.mu.Unlock()
		return errStreamOverloaded
	}
	s.pending += len(samples)
	s.mu.Unlock()

	c := e.getChunk()
	c.buf = append(c.buf[:0], samples...)

	s.mu.Lock()
	if err := s.admitLocked(); err != nil {
		// Close or engine shutdown raced the copy: release the reservation.
		s.pending -= len(samples)
		s.mu.Unlock()
		e.putChunk(c)
		return err
	}
	s.fifo = append(s.fifo, c)
	enq := s.scheduleLocked()
	s.mu.Unlock()
	if enq {
		e.enqueue(s)
	}
	return nil
}

// errStreamOverloaded rejects a Send when the stream queue is at
// MaxPending. Preallocated: the refusal fires exactly when the server is
// already at its limit, and Send's contract says a rejected call costs
// neither an allocation nor a copy — building a fresh error (with a
// formatted pending count) per refusal broke that on the one path where
// allocation pressure hurts most. Callers needing the live queue depth
// have Stream.PendingSamples.
var errStreamOverloaded = apierr.New(apierr.CodeStreamOverloaded,
	"stream queue full; back off and retry")

// errSlotsExhausted rejects an Open past MaxStreams — preallocated for the
// same reason: a refused Open costs nothing but the CAS.
var errSlotsExhausted = apierr.New(apierr.CodeServerOverloaded,
	"engine stream slots exhausted; back off or close streams")

// errShuttingDown rejects work arriving after Engine.Close: typed, so the
// serving layer renders a drain as the shutting_down contract error (503 +
// Retry-After), never a reset or an opaque 500.
var errShuttingDown = apierr.New(apierr.CodeShuttingDown,
	"engine is shutting down; no new work is admitted")

// errStreamClosed rejects a Send after the stream's own Close — a caller
// ordering bug, typed as the client's bad_input.
var errStreamClosed = apierr.New(apierr.CodeBadInput, "send on closed stream")

// admitLocked checks the conditions that permanently reject a Send.
// Callers must hold s.mu.
func (s *Stream) admitLocked() error {
	if s.closing {
		return errStreamClosed
	}
	if s.eng.shutdown.Load() {
		return errShuttingDown
	}
	return nil
}

// scheduleLocked advances the state machine for newly arrived work and
// reports whether the caller must enqueue the stream (after releasing s.mu).
// Callers must hold s.mu.
func (s *Stream) scheduleLocked() bool {
	switch s.state {
	case stateIdle:
		s.state = stateQueued
		return true
	case stateRunning:
		s.state = stateDirty
	}
	return false
}

// Close flushes the stream (the final beats reach the sink before Close
// returns) and releases it. Further Sends fail. Streams must be closed
// before the engine is.
func (s *Stream) Close() error {
	e := s.eng
	e.inflight.Add(1)
	s.mu.Lock()
	if s.closing {
		s.mu.Unlock()
		e.inflight.Add(-1)
		<-s.done
		return nil
	}
	if e.shutdown.Load() {
		s.mu.Unlock()
		e.inflight.Add(-1)
		return errShuttingDown
	}
	s.closing = true
	enq := s.scheduleLocked()
	s.mu.Unlock()
	if enq {
		e.enqueue(s)
	}
	e.inflight.Add(-1)
	<-s.done
	return nil
}

// Pipeline exposes the underlying pipeline for delay/memory accounting.
// Mutating calls (Push, Flush) are the engine's alone; callers may only use
// read-only accessors such as Delay and MemoryBytes.
func (s *Stream) Pipeline() *Pipeline { return s.pipe }

// enqueue publishes a stream (already transitioned to stateQueued by the
// caller) on its home shard and wakes a parked worker if there is one. The
// push happens before the idle-list check, pairing with the worker's
// register-then-rescan parking order: whichever side moves second sees the
// other's effect, so the wake-up cannot be lost.
func (e *Engine) enqueue(s *Stream) {
	s.home.shard.push(s)
	e.wakeOne()
}

// wakeOne pops one parked worker and hands it a wake token. The token
// channel has capacity 1 and the send never blocks: a worker that already
// holds an unconsumed token simply isn't re-signaled.
func (e *Engine) wakeOne() {
	e.idleMu.Lock()
	var w *worker
	if n := len(e.idle); n > 0 {
		w = e.idle[n-1]
		e.idle = e.idle[:n-1]
	}
	e.idleMu.Unlock()
	if w != nil {
		select {
		case w.wake <- struct{}{}:
		default:
		}
	}
}

// removeIdle takes the worker off the idle list if it is still there (a
// producer may already have popped it when handing it a token).
func (e *Engine) removeIdle(w *worker) {
	e.idleMu.Lock()
	for i, x := range e.idle {
		if x == w {
			e.idle = append(e.idle[:i], e.idle[i+1:]...)
			break
		}
	}
	e.idleMu.Unlock()
}

// grab finds runnable work: the worker's own shard first, then the other
// shards in ring order (work stealing).
func (e *Engine) grab(w *worker) *Stream {
	if s := w.shard.pop(); s != nil {
		return s
	}
	n := len(e.workers)
	for i := 1; i < n; i++ {
		if s := e.workers[(w.id+i)%n].shard.pop(); s != nil {
			return s
		}
	}
	return nil
}

// Close shuts the worker pool down after the queues drain. Streams should be
// Closed first; chunks still queued are processed, but un-Closed streams are
// never flushed.
func (e *Engine) Close() {
	e.shutdown.Store(true)
	for _, w := range e.workers {
		select {
		case w.wake <- struct{}{}:
		default:
		}
	}
	e.wg.Wait()
}

func (e *Engine) workerLoop(w *worker) {
	defer e.wg.Done()
	for {
		if s := e.grab(w); s != nil {
			e.run(w, s)
			continue
		}
		// Park in two phases: register as idle first, then re-scan every
		// shard. A producer enqueues before consulting the idle list, so an
		// enqueue that the re-scan misses necessarily sees this worker in
		// the list and wakes it — no lost wake-ups.
		e.idleMu.Lock()
		e.idle = append(e.idle, w)
		e.idleMu.Unlock()
		if s := e.grab(w); s != nil {
			e.removeIdle(w)
			e.run(w, s)
			continue
		}
		if e.shutdown.Load() {
			// Never park after shutdown: an in-flight Send that gets
			// rejected at admission decrements the counter without enqueuing
			// anything, so no wake token would ever arrive. The counter is
			// only held across admission + enqueue (microseconds), so
			// yield-spinning until it drains is bounded.
			e.removeIdle(w)
			if e.inflight.Load() != 0 {
				runtime.Gosched()
				continue
			}
			// The scan below runs after the inflight load: any Send or Close
			// admitted before shutdown has either published its work (visible
			// to this scan) or still held the counter (visible above).
			if s := e.grab(w); s != nil {
				e.run(w, s)
				continue
			}
			return
		}
		<-w.wake
		// The token may be stale (work was grabbed in the re-scan of an
		// earlier park); drop any leftover idle registration and re-loop.
		e.removeIdle(w)
	}
}

// maxRunChunks bounds how many queued chunks one dispatch drains. A stream
// with a deep backlog is requeued after this batch instead of holding its
// worker until the FIFO empties, so one slow consumer cannot starve the
// other streams sharing the pool — this is what keeps chunk p99 latency
// bounded under mixed load (measured by the rpbench engine sweep).
const maxRunChunks = 32

// run processes one queued stream: it drains up to maxRunChunks of the FIFO
// into the worker's scratch under the stream lock, then pushes every chunk
// through the pipeline lock-free. The state machine guarantees no other
// worker holds this stream.
func (e *Engine) run(w *worker, s *Stream) {
	s.mu.Lock()
	s.state = stateRunning
	take := len(s.fifo)
	if take > maxRunChunks {
		take = maxRunChunks
	}
	w.chunks = append(w.chunks[:0], s.fifo[:take]...)
	for i := 0; i < take; i++ {
		s.pending -= len(s.fifo[i].buf) // reservations of in-flight Sends stay counted
		s.fifo[i] = nil
	}
	rest := copy(s.fifo, s.fifo[take:])
	for i := rest; i < len(s.fifo); i++ {
		s.fifo[i] = nil
	}
	s.fifo = s.fifo[:rest] // keep the backing array for the next Sends
	flush := s.closing && !s.flushed && rest == 0
	if flush {
		s.flushed = true
	}
	s.mu.Unlock()

	for i, c := range w.chunks {
		s.pipe.PushChunk(c.buf, s.sink)
		e.putChunk(c)
		w.chunks[i] = nil
	}
	if flush {
		if beats := s.pipe.Flush(); len(beats) > 0 {
			s.sink(beats)
		}
	}

	s.mu.Lock()
	requeue := s.state == stateDirty || len(s.fifo) > 0 || (s.closing && !s.flushed)
	if requeue {
		s.state = stateQueued
	} else {
		s.state = stateIdle
	}
	s.mu.Unlock()
	if requeue {
		e.enqueue(s)
	}
	if flush {
		// The stream is complete: its slot frees up for the next Open.
		e.open.Add(-1)
		close(s.done)
	}
}
