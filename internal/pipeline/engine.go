package pipeline

// Engine multiplexes many independent patient streams over a fixed worker
// pool — the serving shape of the ROADMAP's north star. Each stream owns one
// Pipeline; a stream is only ever run by one worker at a time (so pipelines
// need no locks and per-stream ordering is preserved), while different
// streams run in parallel across the pool. Models are shared through a
// Registry: core.Embedded is read-only after Quantize, so any number of
// streams can classify against the same tables concurrently.

import (
	"errors"
	"fmt"
	"runtime"
	"sort"
	"sync"

	"rpbeat/internal/core"
)

// Registry is a concurrency-safe, named collection of embedded models.
type Registry struct {
	mu     sync.RWMutex
	models map[string]*core.Embedded
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{models: make(map[string]*core.Embedded)}
}

// Register validates and adds a model under name, replacing any previous
// holder of the name.
func (r *Registry) Register(name string, emb *core.Embedded) error {
	if name == "" {
		return errors.New("pipeline: empty model name")
	}
	if emb == nil {
		return errors.New("pipeline: nil model")
	}
	if err := emb.Validate(); err != nil {
		return err
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.models[name] = emb
	return nil
}

// Get returns the named model.
func (r *Registry) Get(name string) (*core.Embedded, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	emb, ok := r.models[name]
	if !ok {
		return nil, fmt.Errorf("pipeline: unknown model %q", name)
	}
	return emb, nil
}

// Names returns the registered model names, sorted.
func (r *Registry) Names() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	names := make([]string, 0, len(r.models))
	for n := range r.models {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// EngineConfig sizes the engine.
type EngineConfig struct {
	// Workers bounds concurrent stream processing; default NumCPU.
	Workers int
}

// streamState is the scheduling state of a Stream, guarded by Engine.mu.
type streamState uint8

const (
	stateIdle    streamState = iota // no pending work, not queued
	stateQueued                     // in the run queue
	stateRunning                    // a worker is processing it
	stateDirty                      // running, and new work arrived meanwhile
)

// Engine runs streams over its worker pool.
type Engine struct {
	reg *Registry

	mu       sync.Mutex
	cond     *sync.Cond
	runq     []*Stream
	shutdown bool
	wg       sync.WaitGroup
}

// NewEngine starts an engine over the registry's models.
func NewEngine(reg *Registry, cfg EngineConfig) *Engine {
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.NumCPU()
	}
	e := &Engine{reg: reg}
	e.cond = sync.NewCond(&e.mu)
	e.wg.Add(cfg.Workers)
	for i := 0; i < cfg.Workers; i++ {
		go e.worker()
	}
	return e
}

// Registry returns the engine's model registry.
func (e *Engine) Registry() *Registry { return e.reg }

// Stream is one patient's sample feed into the engine. Send and Close may be
// called from any goroutine (but not concurrently with each other); the sink
// is invoked serially, in input order, from worker goroutines.
type Stream struct {
	eng  *Engine
	pipe *Pipeline
	sink func([]BeatResult)

	// Guarded by eng.mu.
	state   streamState
	fifo    [][]int32
	closing bool
	flushed bool

	done chan struct{}
}

// Open creates a stream classifying against the named model. The sink
// receives every batch of finalized beats; the slice passed to it is only
// valid for the duration of the call.
func (e *Engine) Open(model string, cfg Config, sink func([]BeatResult)) (*Stream, error) {
	emb, err := e.reg.Get(model)
	if err != nil {
		return nil, err
	}
	pipe, err := New(emb, cfg)
	if err != nil {
		return nil, err
	}
	if sink == nil {
		sink = func([]BeatResult) {}
	}
	return &Stream{eng: e, pipe: pipe, sink: sink, done: make(chan struct{})}, nil
}

// Send enqueues a chunk of raw ADC samples. The slice is copied, so the
// caller may reuse it immediately.
func (s *Stream) Send(samples []int32) error {
	if len(samples) == 0 {
		return nil
	}
	chunk := make([]int32, len(samples))
	copy(chunk, samples)

	e := s.eng
	e.mu.Lock()
	defer e.mu.Unlock()
	if s.closing {
		return errors.New("pipeline: send on closed stream")
	}
	if e.shutdown {
		return errors.New("pipeline: engine closed")
	}
	s.fifo = append(s.fifo, chunk)
	e.schedule(s)
	return nil
}

// Close flushes the stream (the final beats reach the sink before Close
// returns) and releases it. Further Sends fail. Streams must be closed
// before the engine is.
func (s *Stream) Close() error {
	e := s.eng
	e.mu.Lock()
	if s.closing {
		e.mu.Unlock()
		<-s.done
		return nil
	}
	if e.shutdown {
		e.mu.Unlock()
		return errors.New("pipeline: engine closed")
	}
	s.closing = true
	e.schedule(s)
	e.mu.Unlock()
	<-s.done
	return nil
}

// Pipeline exposes the underlying pipeline for delay/memory accounting.
// Mutating calls (Push, Flush) are the engine's alone; callers may only use
// read-only accessors such as Delay and MemoryBytes.
func (s *Stream) Pipeline() *Pipeline { return s.pipe }

// schedule queues the stream if it is not already queued or running.
// Callers must hold e.mu.
func (e *Engine) schedule(s *Stream) {
	switch s.state {
	case stateIdle:
		s.state = stateQueued
		e.runq = append(e.runq, s)
		e.cond.Signal()
	case stateRunning:
		s.state = stateDirty
	}
}

// Close shuts the worker pool down after the queue drains. Streams should be
// Closed first; chunks still queued are processed, but un-Closed streams are
// never flushed.
func (e *Engine) Close() {
	e.mu.Lock()
	e.shutdown = true
	e.cond.Broadcast()
	e.mu.Unlock()
	e.wg.Wait()
}

func (e *Engine) worker() {
	defer e.wg.Done()
	for {
		e.mu.Lock()
		for len(e.runq) == 0 && !e.shutdown {
			e.cond.Wait()
		}
		if len(e.runq) == 0 && e.shutdown {
			e.mu.Unlock()
			return
		}
		s := e.runq[0]
		e.runq = e.runq[1:]
		s.state = stateRunning
		chunks := s.fifo
		s.fifo = nil
		flush := s.closing && !s.flushed
		if flush {
			s.flushed = true
		}
		e.mu.Unlock()

		// Exclusive access to the pipeline: the state machine guarantees no
		// other worker holds this stream.
		for _, chunk := range chunks {
			for _, v := range chunk {
				if beats := s.pipe.Push(v); len(beats) > 0 {
					s.sink(beats)
				}
			}
		}
		if flush {
			if beats := s.pipe.Flush(); len(beats) > 0 {
				s.sink(beats)
			}
		}

		e.mu.Lock()
		requeue := s.state == stateDirty || len(s.fifo) > 0 || (s.closing && !s.flushed)
		if requeue {
			s.state = stateQueued
			e.runq = append(e.runq, s)
			e.cond.Signal()
		} else {
			s.state = stateIdle
		}
		e.mu.Unlock()
		if flush {
			close(s.done)
		}
	}
}
