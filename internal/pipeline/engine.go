package pipeline

// Engine multiplexes many independent patient streams over a fixed worker
// pool — the serving shape of the ROADMAP's north star. Each stream owns one
// Pipeline; a stream is only ever run by one worker at a time (so pipelines
// need no locks and per-stream ordering is preserved), while different
// streams run in parallel across the pool. Models come from a
// catalog.Catalog: Open resolves a "name" or "name@vN" reference against
// the catalog's current snapshot (one atomic load) and pins the resolved
// version for the stream's whole life — an admin deleting or superseding a
// model never breaks an in-flight stream, the next Open simply resolves the
// new state. core.Embedded is read-only after Quantize, so any number of
// streams classify against the same tables concurrently.

import (
	"context"
	"errors"
	"runtime"
	"sync"

	"rpbeat/internal/apierr"
	"rpbeat/internal/catalog"
)

// EngineConfig sizes the engine.
type EngineConfig struct {
	// Workers bounds concurrent stream processing; default NumCPU.
	Workers int
	// MaxPending bounds the per-stream queue of un-processed input, in
	// samples (so the memory bound holds whatever chunk sizes the producer
	// picks). A Send that would exceed it fails with
	// apierr.CodeStreamOverloaded — the producer outran the worker pool
	// and must back off; nothing is dropped silently. A single chunk
	// larger than the bound is still admitted when the queue is empty, so
	// oversized chunks stall rather than starve. Default 1<<20 samples
	// (4 MB of int32, ~48 minutes of one 360 Hz lead); negative means
	// unbounded.
	MaxPending int
}

// defaultMaxPending is the per-stream queue bound, in samples, when the
// configuration leaves it zero.
const defaultMaxPending = 1 << 20

// streamState is the scheduling state of a Stream, guarded by Engine.mu.
type streamState uint8

const (
	stateIdle    streamState = iota // no pending work, not queued
	stateQueued                     // in the run queue
	stateRunning                    // a worker is processing it
	stateDirty                      // running, and new work arrived meanwhile
)

// Engine runs streams over its worker pool.
type Engine struct {
	cat        *catalog.Catalog
	maxPending int

	mu       sync.Mutex
	cond     *sync.Cond
	runq     []*Stream
	shutdown bool
	wg       sync.WaitGroup
}

// NewEngine starts an engine over the catalog's models.
func NewEngine(cat *catalog.Catalog, cfg EngineConfig) *Engine {
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.NumCPU()
	}
	if cfg.MaxPending == 0 {
		cfg.MaxPending = defaultMaxPending
	}
	e := &Engine{cat: cat, maxPending: cfg.MaxPending}
	e.cond = sync.NewCond(&e.mu)
	e.wg.Add(cfg.Workers)
	for i := 0; i < cfg.Workers; i++ {
		go e.worker()
	}
	return e
}

// Catalog returns the engine's model catalog.
func (e *Engine) Catalog() *catalog.Catalog { return e.cat }

// Stream is one patient's sample feed into the engine. Send and Close may be
// called from any goroutine (but not concurrently with each other); the sink
// is invoked serially, in input order, from worker goroutines.
type Stream struct {
	eng   *Engine
	entry *catalog.Entry
	pipe  *Pipeline
	sink  func([]BeatResult)

	// Guarded by eng.mu.
	state   streamState
	fifo    [][]int32
	pending int // samples queued or reserved by an in-flight Send
	closing bool
	flushed bool

	done chan struct{}
}

// Open creates a stream classifying against the referenced model ("" for
// the catalog default, "name" for its latest version, "name@vN" pinned).
// The resolved version stays with the stream until Close regardless of
// later catalog mutations. The sink receives every batch of finalized
// beats; the slice passed to it is only valid for the duration of the call.
func (e *Engine) Open(ctx context.Context, model string, cfg Config, sink func([]BeatResult)) (*Stream, error) {
	if err := ctx.Err(); err != nil {
		return nil, apierr.From(err)
	}
	entry, err := e.cat.Snapshot().Resolve(model)
	if err != nil {
		return nil, err
	}
	pipe, err := New(entry.Emb, cfg)
	if err != nil {
		return nil, err
	}
	if sink == nil {
		sink = func([]BeatResult) {}
	}
	return &Stream{eng: e, entry: entry, pipe: pipe, sink: sink, done: make(chan struct{})}, nil
}

// Entry returns the catalog entry the stream was opened against (the
// version is pinned, so this is stable for the stream's life).
func (s *Stream) Entry() *catalog.Entry { return s.entry }

// Send enqueues a chunk of raw ADC samples. The slice is copied, so the
// caller may reuse it immediately. A canceled context fails the send before
// the chunk is queued; a full stream queue fails it with
// apierr.CodeStreamOverloaded. Admission is decided before the chunk is
// copied, so a rejected Send (e.g. in a backpressure retry loop) costs no
// allocation.
func (s *Stream) Send(ctx context.Context, samples []int32) error {
	if err := ctx.Err(); err != nil {
		return apierr.From(err)
	}
	if len(samples) == 0 {
		return nil
	}

	// Admission: reserve queue space under the lock, without the copy.
	e := s.eng
	e.mu.Lock()
	if err := s.admitLocked(); err != nil {
		e.mu.Unlock()
		return err
	}
	if e.maxPending > 0 && s.pending > 0 && s.pending+len(samples) > e.maxPending {
		pending := s.pending
		e.mu.Unlock()
		return apierr.New(apierr.CodeStreamOverloaded,
			"stream queue full (%d samples pending); back off and retry", pending)
	}
	s.pending += len(samples)
	e.mu.Unlock()

	chunk := make([]int32, len(samples))
	copy(chunk, samples)

	e.mu.Lock()
	defer e.mu.Unlock()
	if err := s.admitLocked(); err != nil {
		// Close or engine shutdown raced the copy: release the reservation.
		s.pending -= len(samples)
		return err
	}
	s.fifo = append(s.fifo, chunk)
	e.schedule(s)
	return nil
}

// admitLocked checks the conditions that permanently reject a Send.
// Callers must hold eng.mu.
func (s *Stream) admitLocked() error {
	if s.closing {
		return errors.New("pipeline: send on closed stream")
	}
	if s.eng.shutdown {
		return errors.New("pipeline: engine closed")
	}
	return nil
}

// Close flushes the stream (the final beats reach the sink before Close
// returns) and releases it. Further Sends fail. Streams must be closed
// before the engine is.
func (s *Stream) Close() error {
	e := s.eng
	e.mu.Lock()
	if s.closing {
		e.mu.Unlock()
		<-s.done
		return nil
	}
	if e.shutdown {
		e.mu.Unlock()
		return errors.New("pipeline: engine closed")
	}
	s.closing = true
	e.schedule(s)
	e.mu.Unlock()
	<-s.done
	return nil
}

// Pipeline exposes the underlying pipeline for delay/memory accounting.
// Mutating calls (Push, Flush) are the engine's alone; callers may only use
// read-only accessors such as Delay and MemoryBytes.
func (s *Stream) Pipeline() *Pipeline { return s.pipe }

// schedule queues the stream if it is not already queued or running.
// Callers must hold e.mu.
func (e *Engine) schedule(s *Stream) {
	switch s.state {
	case stateIdle:
		s.state = stateQueued
		e.runq = append(e.runq, s)
		e.cond.Signal()
	case stateRunning:
		s.state = stateDirty
	}
}

// Close shuts the worker pool down after the queue drains. Streams should be
// Closed first; chunks still queued are processed, but un-Closed streams are
// never flushed.
func (e *Engine) Close() {
	e.mu.Lock()
	e.shutdown = true
	e.cond.Broadcast()
	e.mu.Unlock()
	e.wg.Wait()
}

func (e *Engine) worker() {
	defer e.wg.Done()
	for {
		e.mu.Lock()
		for len(e.runq) == 0 && !e.shutdown {
			e.cond.Wait()
		}
		if len(e.runq) == 0 && e.shutdown {
			e.mu.Unlock()
			return
		}
		s := e.runq[0]
		e.runq = e.runq[1:]
		s.state = stateRunning
		chunks := s.fifo
		s.fifo = nil
		for _, c := range chunks {
			s.pending -= len(c) // reservations of in-flight Sends stay counted
		}
		flush := s.closing && !s.flushed
		if flush {
			s.flushed = true
		}
		e.mu.Unlock()

		// Exclusive access to the pipeline: the state machine guarantees no
		// other worker holds this stream.
		for _, chunk := range chunks {
			for _, v := range chunk {
				if beats := s.pipe.Push(v); len(beats) > 0 {
					s.sink(beats)
				}
			}
		}
		if flush {
			if beats := s.pipe.Flush(); len(beats) > 0 {
				s.sink(beats)
			}
		}

		e.mu.Lock()
		requeue := s.state == stateDirty || len(s.fifo) > 0 || (s.closing && !s.flushed)
		if requeue {
			s.state = stateQueued
			e.runq = append(e.runq, s)
			e.cond.Signal()
		} else {
			s.state = stateIdle
		}
		e.mu.Unlock()
		if flush {
			close(s.done)
		}
	}
}
