// Package pipeline chains the library's streaming operators into an online
// heartbeat classification engine: raw ADC samples go in one at a time, and
// classified beats come out as soon as they are final — the deployment shape
// of the paper's WBSN node (sub-systems (1) and (3) of Fig. 6) and the
// substrate the serving layer (cmd/rpserve) builds on.
//
// The stages are the exact streaming counterparts of the batch path that
// internal/wbsn runs over whole records:
//
//	raw ADC sample
//	  └─ millivolt conversion
//	       └─ sigdsp.StreamECGFilter   (noise suppression + baseline removal)
//	            └─ peak.StreamDetector (à trous scales, adaptive thresholds,
//	               modulus-maxima pairing, refractory arbitration)
//	                 └─ beat window from the raw-sample ring
//	                      └─ downsampling → core.Embedded (integer RP + NFC)
//
// Each stage reports its group delay, every buffer is a fixed-size ring, and
// the whole pipeline is bit-identical to the batch reference (BatchClassify)
// except within Delay() samples of the record end, where batch thresholds
// use future samples a stream cannot see. TestPipelineMatchesBatch holds the
// two paths to beat-for-beat equality.
package pipeline

import (
	"context"
	"errors"
	"fmt"

	"rpbeat/internal/core"
	"rpbeat/internal/ecgsyn"
	"rpbeat/internal/nfc"
	"rpbeat/internal/peak"
	"rpbeat/internal/sigdsp"
)

// Config parameterizes a streaming pipeline. The zero value selects the
// paper's deployment: 360 Hz, MIT-BIH ADC geometry, 100+100-sample beat
// windows.
type Config struct {
	// Fs is the sampling frequency; default ecgsyn.Fs (360 Hz).
	Fs float64
	// Gain (ADC units per millivolt) and ADCZero convert raw counts for the
	// detection path; classification consumes raw counts directly, as on
	// the node. Leaving Gain unset (<= 0) selects the MIT-BIH geometry
	// (ecgsyn.Gain / ecgsyn.Baseline). Setting Gain takes ADCZero as given,
	// so a zero baseline (signed, centered ADC counts) is expressible.
	Gain    float64
	ADCZero int32
	// Before/After set the beat window around the R peak; defaults 100/100.
	Before, After int
	// Peak tunes the detector. Fs is filled from Config.Fs and SearchBackOff
	// is forced on: search-back needs the record-wide median RR, which does
	// not exist online (use internal/wbsn for retrospective batch analysis).
	Peak peak.Config
	// Baseline tunes the morphological filter; zero value takes
	// sigdsp.DefaultBaselineConfig(Fs).
	Baseline sigdsp.BaselineConfig
	// BaseSample resumes an interrupted stream mid-record: it is the
	// absolute index of the first sample this pipeline will be fed, and it
	// shifts every emitted BeatResult (Peak, DetectedAt) into the original
	// stream's index space while phase-aligning the detector's threshold
	// windows with an uninterrupted run's (peak.Config.StartSample). Feed
	// the pipeline at least ResyncWarmup(cfg) samples of replayed history
	// before the point of interest and the beats it emits past BaseSample +
	// ResyncWarmup are bit-identical to the uninterrupted run — the contract
	// the gateway's failover replay journal is sized by. Zero (the default)
	// is a stream starting at its true beginning. Batch classification
	// ignores it.
	BaseSample int
}

func (c Config) withDefaults() Config {
	if c.Fs <= 0 {
		c.Fs = ecgsyn.Fs
	}
	if c.Gain <= 0 {
		c.Gain = ecgsyn.Gain
		if c.ADCZero == 0 {
			c.ADCZero = ecgsyn.Baseline
		}
	}
	if c.Before <= 0 {
		c.Before = 100
	}
	if c.After <= 0 {
		c.After = 100
	}
	c.Peak.Fs = c.Fs
	c.Peak.SearchBackOff = true
	if c.BaseSample < 0 {
		c.BaseSample = 0
	}
	// The detector's input index space is aligned with the raw input's (the
	// filter emits output i — the filtered value of raw sample i — once
	// input i+Delay() has arrived), so the window phase of a resumed stream
	// is BaseSample itself.
	c.Peak.StartSample = c.BaseSample
	if c.Baseline.Fs <= 0 {
		c.Baseline = sigdsp.DefaultBaselineConfig(c.Fs)
	}
	return c
}

// BeatResult is one classified beat.
type BeatResult struct {
	// Peak is the R-peak position, as a sample index into the input stream.
	Peak int
	// Decision is the integer classifier's verdict (N, L, V or U).
	Decision nfc.Decision
	// DetectedAt is the index of the input sample whose arrival finalized
	// this beat; DetectedAt-Peak is the end-to-end latency in samples.
	DetectedAt int
}

// Pipeline is a single-stream online classifier. It is not safe for
// concurrent use; Engine multiplexes many pipelines over a worker pool.
type Pipeline struct {
	emb    *core.Embedded
	cfg    Config
	filter *sigdsp.StreamECGFilter
	det    *peak.StreamDetector

	raw     []int32 // ring of raw ADC counts (power-of-two length)
	rawMask int     // len(raw)-1, for mask-indexing the ring
	n       int     // samples consumed
	flushed bool

	window []int32 // scratch: assembled beat window
	ds     []int32 // scratch: downsampled window
	scr    core.Scratch
	out    []BeatResult
}

// New builds a pipeline around a validated embedded classifier.
func New(emb *core.Embedded, cfg Config) (*Pipeline, error) {
	if emb == nil {
		return nil, errors.New("pipeline: nil classifier")
	}
	if err := emb.Validate(); err != nil {
		return nil, err
	}
	c := cfg.withDefaults()
	if want := dimAfter(c.Before+c.After, emb.Downsample); want != emb.D {
		return nil, fmt.Errorf("pipeline: window %d+%d at downsample %d gives dimension %d, model wants %d",
			c.Before, c.After, emb.Downsample, want, emb.D)
	}
	det, err := peak.NewStreamDetector(c.Peak)
	if err != nil {
		return nil, err
	}
	p := &Pipeline{
		emb:    emb,
		cfg:    c,
		filter: sigdsp.NewStreamECGFilter(c.Baseline),
		det:    det,
		window: make([]int32, c.Before+c.After),
		ds:     make([]int32, emb.D),
	}
	p.scr.Grow(emb)
	// The ring must still hold sample max(0, peak-Before) when a peak
	// finalizes, at worst Delay() samples after the peak position.
	p.raw = make([]int32, nextPow2(p.Delay()+c.Before+c.After+64))
	p.rawMask = len(p.raw) - 1
	return p, nil
}

func dimAfter(n, downsample int) int {
	if downsample <= 1 {
		return n
	}
	return (n + downsample - 1) / downsample
}

func nextPow2(n int) int {
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}

// Delay returns the worst-case latency, in input samples, between an R peak
// entering the pipeline and its classified beat being emitted: the filter's
// group delay plus the detector's finalization bound.
func (p *Pipeline) Delay() int {
	return p.filter.Delay() + p.det.Delay()
}

// ResyncWarmup returns W, the replay bound of the deterministic-resume
// contract: a fresh pipeline opened with Config.BaseSample = B and fed the
// original stream's samples from B onward emits beats bit-identical to the
// uninterrupted run for every beat finalized past B + W. A replay journal
// that retains the last W samples of uplink therefore makes mid-stream
// failover invisible (internal/gate sizes its journals with this).
//
// The bound stacks every source of left-border divergence a resumed run
// has, each rounded up to its full support:
//
//   - the morphological filter's border replication (≤ 2x its group delay
//     of input history feeds one output);
//   - the à trous decomposition's border replication and the first,
//     shortened threshold window, whose RMS normalization differs from the
//     original's full window (≤ one detector delay + one window);
//   - carried arbitration state (pairing extremum, refractory candidate)
//     seeded inside the divergent region (≤ one more detector delay);
//   - the classification window and suppression slack: the beat window
//     reaches Before samples behind a peak, and the original run's last
//     delivered beat can trail the failure point by a full pipeline delay.
//
// It is deliberately a safe over-approximation (~a dozen seconds of signal
// at the paper's 360 Hz deployment), not a tight one: journal memory is
// cheap, a divergent beat after failover is not.
func ResyncWarmup(cfg Config) int {
	c := cfg.withDefaults()
	filter := sigdsp.NewStreamECGFilter(c.Baseline)
	// withDefaults forces SearchBackOff, the only constructor error.
	det, err := peak.NewStreamDetector(c.Peak)
	if err != nil {
		panic("pipeline: ResyncWarmup: " + err.Error())
	}
	return 3*filter.Delay() + 2*det.Delay() + det.Window() + c.Before + c.After
}

// MemoryBytes reports the pipeline's fixed working set: the raw ring, the
// classifier tables (including the sparse projection kernel the host hot
// path runs) and the scratch buffers. It does not grow with stream length
// (asserted by TestPipelineBoundedMemory).
func (p *Pipeline) MemoryBytes() int {
	return 4*len(p.raw) + p.emb.HostBytes() +
		4*(len(p.window)+len(p.ds)) + p.scr.MemoryBytes()
}

// Samples returns how many input samples the pipeline has consumed.
func (p *Pipeline) Samples() int { return p.n }

// Push consumes one raw ADC sample and returns the beats it finalized
// (usually none — beats surface in bursts as threshold windows complete).
// The returned slice is reused by the next call; copy it to retain.
//
//rpbeat:allocfree
func (p *Pipeline) Push(sample int32) []BeatResult {
	p.out = p.out[:0]
	p.raw[p.n&p.rawMask] = sample
	p.n++
	mv := float64(sample-p.cfg.ADCZero) / p.cfg.Gain
	y, ok := p.filter.Push(mv)
	if !ok {
		return nil
	}
	for _, pk := range p.det.Push(y) {
		p.classify(pk)
	}
	return p.out
}

// PushChunk consumes a whole chunk of raw ADC samples and invokes emit once
// with every beat the chunk finalized, in input order (emit is not called
// for chunks that finalize nothing). It is bit-identical to calling Push per
// sample and concatenating the results; the per-sample return-slice reset
// and call overhead are amortized over the chunk, which is what the engine's
// workers and /v1/stream run. The slice passed to emit is reused by the next
// Push/PushChunk call; copy it to retain.
//
//rpbeat:allocfree
func (p *Pipeline) PushChunk(samples []int32, emit func([]BeatResult)) {
	p.out = p.out[:0]
	raw, mask := p.raw, p.rawMask
	zero, gain := p.cfg.ADCZero, p.cfg.Gain
	for _, v := range samples {
		raw[p.n&mask] = v
		p.n++
		y, ok := p.filter.Push(float64(v-zero) / gain)
		if !ok {
			continue
		}
		for _, pk := range p.det.Push(y) {
			p.classify(pk)
		}
	}
	if len(p.out) > 0 && emit != nil {
		emit(p.out)
	}
}

// Flush ends the stream, draining the detector's final threshold window and
// pending candidate. Push must not be called afterwards.
func (p *Pipeline) Flush() []BeatResult {
	p.out = p.out[:0]
	if p.flushed {
		return nil
	}
	p.flushed = true
	for _, pk := range p.det.Flush() {
		p.classify(pk)
	}
	return p.out
}

// classify cuts the beat window out of the raw ring (with the same edge
// replication as sigdsp.WindowInt), downsamples and runs the integer
// RP + NFC classifier.
//
//rpbeat:allocfree
func (p *Pipeline) classify(pk int) {
	for i := range p.window {
		j := pk - p.cfg.Before + i
		if j < 0 {
			j = 0
		}
		if j >= p.n {
			j = p.n - 1
		}
		p.window[i] = p.raw[j&p.rawMask]
	}
	sigdsp.DownsampleIntInto(p.ds, p.window, p.emb.Downsample)
	d := p.emb.ClassifyInto(p.ds, &p.scr)
	// Indices are kept relative internally (ring masks, detector state) and
	// re-based on emission, so a resumed stream reports absolute positions.
	p.out = append(p.out, BeatResult{
		Peak:       p.cfg.BaseSample + pk,
		Decision:   d,
		DetectedAt: p.cfg.BaseSample + p.n - 1,
	})
}

// BatchClassify is the whole-record reference path: the exact batch
// operators (sigdsp.FilterECG, peak.Detect with search-back off,
// sigdsp.WindowInt + DownsampleInt, core.Embedded.Classify) in the
// configuration a Pipeline streams. The streaming results are bit-identical
// to it away from the record tail; it also serves the /v1/classify endpoint,
// where the whole record is available up front.
//
// Each call allocates its own working buffers. Request loops should hold a
// BatchScratch (e.g. in a sync.Pool, as internal/serve does) and call
// BatchClassifyInto instead.
func BatchClassify(ctx context.Context, emb *core.Embedded, lead []int32, cfg Config) ([]BeatResult, error) {
	beats, err := BatchClassifyInto(ctx, emb, lead, cfg, new(BatchScratch))
	if err != nil {
		return nil, err
	}
	out := make([]BeatResult, len(beats))
	copy(out, beats)
	return out, nil
}

// BatchScratch holds the reusable working buffers of one batch
// classification: the millivolt conversion of the record, the per-beat
// window/downsample/projection/grade scratch and the result slice. A zero
// value is ready to use; buffers grow to the largest record seen and are
// reused afterwards. Not safe for concurrent use.
type BatchScratch struct {
	// Samples is the request-scoped raw-sample buffer: callers that decode
	// a wire payload (internal/serve) append the decoded lead into
	// Samples[:0] and pass the result back in as lead, so request bodies
	// reuse one buffer across requests just like the classification
	// scratch below. BatchClassifyInto itself never touches it — it is
	// carried here so one pooled object holds a request's entire working
	// set.
	Samples []int32

	mv       []float64
	filtered []float64
	filt     sigdsp.FilterScratch
	det      peak.Scratch
	window   []int32
	ds       []int32
	cls      core.Scratch
	beats    []BeatResult
}

// BatchClassifyInto is BatchClassify running through the caller's scratch
// buffers: the front-end filter and wavelet decomposition, the detector's
// threshold/candidate lists and all O(beats) buffers are reused across
// calls, so a warm scratch classifies a record with O(1) allocations. The
// returned slice aliases s and is valid until the next call with the same
// scratch; copy it to retain.
//
// The context is honored at the record granularity a request cares about:
// checked on entry, after the front-end (filter + detector, the bulk of the
// work) and every classifyCtxStride beats, so an abandoned request stops
// burning the worker quickly without putting a check in the per-beat hot
// loop. Cancellation returns ctx.Err() (typed by the serving layer).
func BatchClassifyInto(ctx context.Context, emb *core.Embedded, lead []int32, cfg Config, s *BatchScratch) ([]BeatResult, error) {
	if emb == nil {
		return nil, errors.New("pipeline: nil classifier")
	}
	if s == nil {
		return nil, errors.New("pipeline: nil scratch")
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if err := emb.Validate(); err != nil {
		return nil, err
	}
	c := cfg.withDefaults()
	if want := dimAfter(c.Before+c.After, emb.Downsample); want != emb.D {
		return nil, fmt.Errorf("pipeline: window %d+%d at downsample %d gives dimension %d, model wants %d",
			c.Before, c.After, emb.Downsample, want, emb.D)
	}
	s.mv = growFloat(s.mv, len(lead))
	mv := s.mv[:len(lead)]
	for i, v := range lead {
		mv[i] = float64(v-c.ADCZero) / c.Gain
	}
	s.filtered = sigdsp.FilterECGInto(s.filtered, mv, c.Baseline, &s.filt)
	peaks := peak.DetectInto(s.filtered, c.Peak, &s.det)
	if err := ctx.Err(); err != nil {
		return nil, err
	}

	s.window = growInt32(s.window, c.Before+c.After)[:c.Before+c.After]
	s.ds = growInt32(s.ds, emb.D)[:emb.D]
	s.cls.Grow(emb)
	s.beats = s.beats[:0]
	for i, pk := range peaks {
		if i%classifyCtxStride == classifyCtxStride-1 {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
		}
		sigdsp.WindowIntInto(s.window, lead, pk, c.Before)
		sigdsp.DownsampleIntInto(s.ds, s.window, emb.Downsample)
		d := emb.ClassifyInto(s.ds, &s.cls)
		s.beats = append(s.beats, BeatResult{Peak: pk, Decision: d, DetectedAt: len(lead) - 1})
	}
	return s.beats, nil
}

// classifyCtxStride is how many beats the batch loop classifies between
// context checks (~64 beats ≈ one minute of signal per check).
const classifyCtxStride = 64

func growFloat(buf []float64, n int) []float64 {
	if cap(buf) < n {
		return make([]float64, n)
	}
	return buf[:n]
}

func growInt32(buf []int32, n int) []int32 {
	if cap(buf) < n {
		return make([]int32, n)
	}
	return buf[:n]
}
