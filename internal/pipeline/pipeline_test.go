package pipeline

import (
	"context"
	"sync"
	"testing"

	"rpbeat/internal/beatset"
	"rpbeat/internal/core"
	"rpbeat/internal/ecgsyn"
	"rpbeat/internal/fixp"
)

var (
	modelOnce  sync.Once
	modelFloat *core.Model
	modelEmb   *core.Embedded
	modelErr   error

	bitembOnce  sync.Once
	bitembFloat *core.Model
	bitembEmb   *core.Embedded
	bitembErr   error
)

// testModel trains one small model per test binary (the same reduced-scale
// configuration the repository's integration tests use).
func testModel(t testing.TB) *core.Embedded {
	t.Helper()
	testFloatModel(t)
	return modelEmb
}

// testBitembFloatModel trains one small binary-embedding model per test
// binary — the second head kind the mixed-fleet engine tests serve next to
// the fuzzy one.
func testBitembFloatModel(t testing.TB) *core.Model {
	t.Helper()
	bitembOnce.Do(func() {
		ds, err := beatset.Build(beatset.Config{Seed: 31, Scale: 0.03})
		if err != nil {
			bitembErr = err
			return
		}
		m, _, err := core.TrainBitemb(ds, core.Config{
			Coeffs: 8, Downsample: 4, PopSize: 4, Generations: 2,
			MinARR: 0.9, Seed: 31,
		})
		if err != nil {
			bitembErr = err
			return
		}
		bitembFloat = m
		bitembEmb, bitembErr = m.Quantize(fixp.MFLinear)
	})
	if bitembErr != nil {
		t.Fatal(bitembErr)
	}
	return bitembFloat
}

func testBitembModel(t testing.TB) *core.Embedded {
	t.Helper()
	testBitembFloatModel(t)
	return bitembEmb
}

// testFloatModel is the float form of the same model — what catalog.Put
// consumes in the engine tests.
func testFloatModel(t testing.TB) *core.Model {
	t.Helper()
	modelOnce.Do(func() {
		ds, err := beatset.Build(beatset.Config{Seed: 31, Scale: 0.03})
		if err != nil {
			modelErr = err
			return
		}
		m, _, err := core.Train(ds, core.Config{
			Coeffs: 8, Downsample: 4, PopSize: 4, Generations: 2,
			SCGIters: 50, MinARR: 0.9, Seed: 31,
		})
		if err != nil {
			modelErr = err
			return
		}
		modelFloat = m
		modelEmb, modelErr = m.Quantize(fixp.MFLinear)
	})
	if modelErr != nil {
		t.Fatal(modelErr)
	}
	return modelFloat
}

func TestPipelineMatchesBatch(t *testing.T) {
	emb := testModel(t)
	for _, tc := range []struct {
		seed uint64
		pvc  float64
	}{{5, 0.2}, {11, 0.05}} {
		rec := ecgsyn.Synthesize(ecgsyn.RecordSpec{Name: "p", Seconds: 120, Seed: tc.seed, PVCRate: tc.pvc})
		lead := rec.Leads[0]

		batch, err := BatchClassify(context.Background(), emb, lead, Config{})
		if err != nil {
			t.Fatal(err)
		}

		pipe, err := New(emb, Config{})
		if err != nil {
			t.Fatal(err)
		}
		var stream []BeatResult
		for _, v := range lead {
			for _, b := range pipe.Push(v) {
				if lat := b.DetectedAt - b.Peak; lat > pipe.Delay() {
					t.Fatalf("seed %d: beat %d finalized %d samples late (> Delay %d)",
						tc.seed, b.Peak, lat, pipe.Delay())
				}
				stream = append(stream, b)
			}
		}
		stream = append(stream, pipe.Flush()...)

		// Beat-for-beat equality away from the record tail: batch thresholds
		// there use windows the stream only sees truncated at Flush.
		limit := len(lead) - pipe.Delay()
		want := keepBefore(batch, limit)
		got := keepBefore(stream, limit)
		if len(want) < 50 {
			t.Fatalf("seed %d: only %d batch beats before the tail margin", tc.seed, len(want))
		}
		if len(got) != len(want) {
			t.Fatalf("seed %d: stream emitted %d beats, batch %d", tc.seed, len(got), len(want))
		}
		for i := range want {
			if got[i].Peak != want[i].Peak || got[i].Decision != want[i].Decision {
				t.Fatalf("seed %d: beat %d: stream (%d,%v) != batch (%d,%v)",
					tc.seed, i, got[i].Peak, got[i].Decision, want[i].Peak, want[i].Decision)
			}
		}
	}
}

func keepBefore(beats []BeatResult, limit int) []BeatResult {
	out := beats[:0:0]
	for _, b := range beats {
		if b.Peak < limit {
			out = append(out, b)
		}
	}
	return out
}

func TestPipelineBoundedMemory(t *testing.T) {
	emb := testModel(t)
	pipe, err := New(emb, Config{})
	if err != nil {
		t.Fatal(err)
	}
	rec := ecgsyn.Synthesize(ecgsyn.RecordSpec{Name: "m", Seconds: 30, Seed: 1})
	for _, v := range rec.Leads[0] {
		pipe.Push(v)
	}
	after30s := pipe.MemoryBytes()
	for i := 0; i < 4; i++ {
		for _, v := range rec.Leads[0] {
			pipe.Push(v)
		}
	}
	if m := pipe.MemoryBytes(); m != after30s {
		t.Fatalf("working set grew with stream length: %d -> %d bytes", after30s, m)
	}
	if pipe.Samples() != 5*len(rec.Leads[0]) {
		t.Fatalf("consumed %d samples, want %d", pipe.Samples(), 5*len(rec.Leads[0]))
	}
}

func TestPipelineRejectsMismatchedGeometry(t *testing.T) {
	emb := testModel(t)
	if _, err := New(emb, Config{Before: 50, After: 50}); err == nil {
		t.Fatal("expected a window/model dimension mismatch error")
	}
	if _, err := BatchClassify(context.Background(), emb, make([]int32, 100), Config{Before: 50, After: 50}); err == nil {
		t.Fatal("expected a window/model dimension mismatch error")
	}
	if _, err := New(nil, Config{}); err == nil {
		t.Fatal("expected an error for a nil model")
	}
}

func TestPipelineFlushIsTerminal(t *testing.T) {
	emb := testModel(t)
	pipe, err := New(emb, Config{})
	if err != nil {
		t.Fatal(err)
	}
	rec := ecgsyn.Synthesize(ecgsyn.RecordSpec{Name: "f", Seconds: 20, Seed: 2})
	for _, v := range rec.Leads[0] {
		pipe.Push(v)
	}
	first := len(pipe.Flush())
	if again := len(pipe.Flush()); again != 0 {
		t.Fatalf("second Flush emitted %d beats (first emitted %d)", again, first)
	}
}

func BenchmarkPipelinePush(b *testing.B) {
	emb := testModel(b)
	pipe, err := New(emb, Config{})
	if err != nil {
		b.Fatal(err)
	}
	rec := ecgsyn.Synthesize(ecgsyn.RecordSpec{Name: "b", Seconds: 60, Seed: 3, PVCRate: 0.1})
	lead := rec.Leads[0]
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pipe.Push(lead[i%len(lead)])
	}
}

func BenchmarkBatchClassify60s(b *testing.B) {
	emb := testModel(b)
	rec := ecgsyn.Synthesize(ecgsyn.RecordSpec{Name: "bb", Seconds: 60, Seed: 3, PVCRate: 0.1})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := BatchClassify(context.Background(), emb, rec.Leads[0], Config{}); err != nil {
			b.Fatal(err)
		}
	}
}
