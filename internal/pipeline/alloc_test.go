package pipeline

import (
	"context"
	"runtime"
	"testing"

	"rpbeat/internal/apierr"
	"rpbeat/internal/ecgsyn"
	"rpbeat/internal/testutil"
)

// TestPipelinePushZeroAlloc holds the steady-state Push path to zero
// allocations: after the warm-up region (ring buffers at capacity, detector
// FIFOs grown to their working size), consuming samples — including ones
// that finalize beats — must not allocate. This is the invariant that lets
// one Engine run thousands of concurrent streams without GC pressure.
func TestPipelinePushZeroAlloc(t *testing.T) {
	emb := testModel(t)
	rec := ecgsyn.Synthesize(ecgsyn.RecordSpec{Name: "za", Seconds: 60, Seed: 7, PVCRate: 0.1})
	lead := rec.Leads[0]

	pipe, err := New(emb, Config{})
	if err != nil {
		t.Fatal(err)
	}
	beats := 0
	// Warm up: one full pass brings every internal buffer to steady state.
	for _, v := range lead {
		beats += len(pipe.Push(v))
	}
	if beats == 0 {
		t.Fatal("warm-up emitted no beats; steady-state measurement would be vacuous")
	}

	next := 0
	testutil.AssertZeroAllocN(t, "steady-state Push (3600 samples per run)", 10, func() {
		for i := 0; i < 3600; i++ { // 10 seconds of stream per run
			pipe.Push(lead[next])
			next++
			if next == len(lead) {
				next = 0
			}
		}
	})
}

// TestEngineSendZeroAlloc holds the steady-state Send path to zero
// allocations: once the chunk pool, the stream's FIFO backing array, the
// shard queue and the pipeline's internal buffers are warm, enqueuing a
// chunk and having a worker drain it must not allocate — on either side of
// the handoff (AllocsPerRun counts the worker goroutine's allocations too).
// This is the pooled-Send counterpart of TestPipelinePushZeroAlloc.
func TestEngineSendZeroAlloc(t *testing.T) {
	eng := NewEngine(testCatalog(t, "m"), EngineConfig{Workers: 1})
	defer eng.Close()
	ctx := context.Background()
	lead := ecgsyn.Synthesize(ecgsyn.RecordSpec{Name: "sza", Seconds: 60, Seed: 8, PVCRate: 0.1}).Leads[0]

	st, err := eng.Open(ctx, "m", Config{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	const chunk = 720
	drain := func() {
		for st.PendingSamples() > 0 {
			runtime.Gosched()
		}
	}
	// Warm up: one full pass brings the pool, FIFO and pipeline to steady
	// state.
	for off := 0; off+chunk <= len(lead); off += chunk {
		if err := st.Send(ctx, lead[off:off+chunk]); err != nil {
			t.Fatal(err)
		}
	}
	drain()

	var sendErr error
	next := 0
	testutil.AssertZeroAllocN(t, "steady-state Send (5 chunks per run)", 10, func() {
		for i := 0; i < 5; i++ {
			if err := st.Send(ctx, lead[next:next+chunk]); err != nil {
				sendErr = err
				return
			}
			next += chunk
			if next+chunk > len(lead) {
				next = 0
			}
			drain()
		}
	})
	if sendErr != nil {
		t.Fatal(sendErr)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestRejectedSendZeroAlloc pins the refusal half of Send's contract: once
// the stream queue sits at MaxPending, a rejected Send costs neither an
// allocation nor a copy. Regression test for the refusal path building a
// fresh error (with a formatted pending count) per rejected call — exactly
// the moment the server is already out of headroom.
func TestRejectedSendZeroAlloc(t *testing.T) {
	eng := NewEngine(testCatalog(t, "m"), EngineConfig{Workers: 1, MaxPending: 16})
	defer eng.Close()
	ctx := context.Background()

	// Park the only worker in the sink so the queue stays full for the
	// whole measurement (the TestEngineOverload setup).
	block := make(chan struct{})
	release := make(chan struct{})
	released := false
	// A test failure must still unpark the worker, or the deferred
	// eng.Close deadlocks on it.
	defer func() {
		if !released {
			close(release)
		}
	}()
	blocked := false
	st, err := eng.Open(ctx, "m", Config{}, func([]BeatResult) {
		if !blocked {
			blocked = true
			close(block)
			<-release
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	lead := ecgsyn.Synthesize(ecgsyn.RecordSpec{Name: "rz", Seconds: 5, Seed: 6, PVCRate: 0.1}).Leads[0]
	if err := st.Send(ctx, lead); err != nil {
		t.Fatal(err)
	}
	<-block
	chunk := make([]int32, 8)
	overloaded := false
	for i := 0; i < 5 && !overloaded; i++ {
		overloaded = apierr.IsCode(st.Send(ctx, chunk), apierr.CodeStreamOverloaded)
	}
	if !overloaded {
		t.Fatal("queue never reported overload")
	}

	// The code check stays outside the closure: apierr.IsCode itself
	// allocates (errors.As target), and only Send is under measurement.
	var got error
	testutil.AssertZeroAlloc(t, "rejected Send at MaxPending", func() {
		got = st.Send(ctx, chunk)
	})
	if !apierr.IsCode(got, apierr.CodeStreamOverloaded) {
		t.Fatalf("rejected Send returned %v, want stream_overloaded", got)
	}
	released = true
	close(release)
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestRejectedOpenZeroAlloc pins the matching Open contract: a refused Open
// past MaxStreams costs nothing but the CAS — no allocation for the typed
// server_overloaded refusal.
func TestRejectedOpenZeroAlloc(t *testing.T) {
	eng := NewEngine(testCatalog(t, "m"), EngineConfig{Workers: 1, MaxStreams: 1})
	defer eng.Close()
	ctx := context.Background()

	st, err := eng.Open(ctx, "m", Config{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	var got error
	testutil.AssertZeroAlloc(t, "rejected Open at MaxStreams", func() {
		_, got = eng.Open(ctx, "m", Config{}, nil)
	})
	if !apierr.IsCode(got, apierr.CodeServerOverloaded) {
		t.Fatalf("rejected Open returned %v, want server_overloaded", got)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestBatchClassifyIntoMatchesBatchClassify checks the scratch-reusing batch
// path against the allocating reference, across repeated reuse of one
// scratch (including a shorter record after a longer one, so stale buffer
// tails would surface).
func TestBatchClassifyIntoMatchesBatchClassify(t *testing.T) {
	emb := testModel(t)
	var scratch BatchScratch
	for _, spec := range []ecgsyn.RecordSpec{
		{Name: "b1", Seconds: 60, Seed: 3, PVCRate: 0.2},
		{Name: "b2", Seconds: 30, Seed: 9, PVCRate: 0.05},
		{Name: "b3", Seconds: 45, Seed: 12},
	} {
		lead := ecgsyn.Synthesize(spec).Leads[0]
		want, err := BatchClassify(context.Background(), emb, lead, Config{})
		if err != nil {
			t.Fatal(err)
		}
		got, err := BatchClassifyInto(context.Background(), emb, lead, Config{}, &scratch)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(want) {
			t.Fatalf("%s: %d beats via scratch, %d via reference", spec.Name, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("%s: beat %d = %+v, want %+v", spec.Name, i, got[i], want[i])
			}
		}
	}
}
