package pipeline

import (
	"context"
	"runtime"
	"testing"

	"rpbeat/internal/ecgsyn"
)

// TestPipelinePushZeroAlloc holds the steady-state Push path to zero
// allocations: after the warm-up region (ring buffers at capacity, detector
// FIFOs grown to their working size), consuming samples — including ones
// that finalize beats — must not allocate. This is the invariant that lets
// one Engine run thousands of concurrent streams without GC pressure.
func TestPipelinePushZeroAlloc(t *testing.T) {
	emb := testModel(t)
	rec := ecgsyn.Synthesize(ecgsyn.RecordSpec{Name: "za", Seconds: 60, Seed: 7, PVCRate: 0.1})
	lead := rec.Leads[0]

	pipe, err := New(emb, Config{})
	if err != nil {
		t.Fatal(err)
	}
	beats := 0
	// Warm up: one full pass brings every internal buffer to steady state.
	for _, v := range lead {
		beats += len(pipe.Push(v))
	}
	if beats == 0 {
		t.Fatal("warm-up emitted no beats; steady-state measurement would be vacuous")
	}

	next := 0
	allocs := testing.AllocsPerRun(10, func() {
		for i := 0; i < 3600; i++ { // 10 seconds of stream per run
			pipe.Push(lead[next])
			next++
			if next == len(lead) {
				next = 0
			}
		}
	})
	if allocs != 0 {
		t.Fatalf("steady-state Push allocated %.1f times per 3600 samples, want 0", allocs)
	}
}

// TestEngineSendZeroAlloc holds the steady-state Send path to zero
// allocations: once the chunk pool, the stream's FIFO backing array, the
// shard queue and the pipeline's internal buffers are warm, enqueuing a
// chunk and having a worker drain it must not allocate — on either side of
// the handoff (AllocsPerRun counts the worker goroutine's allocations too).
// This is the pooled-Send counterpart of TestPipelinePushZeroAlloc.
func TestEngineSendZeroAlloc(t *testing.T) {
	eng := NewEngine(testCatalog(t, "m"), EngineConfig{Workers: 1})
	defer eng.Close()
	ctx := context.Background()
	lead := ecgsyn.Synthesize(ecgsyn.RecordSpec{Name: "sza", Seconds: 60, Seed: 8, PVCRate: 0.1}).Leads[0]

	st, err := eng.Open(ctx, "m", Config{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	const chunk = 720
	drain := func() {
		for st.PendingSamples() > 0 {
			runtime.Gosched()
		}
	}
	// Warm up: one full pass brings the pool, FIFO and pipeline to steady
	// state.
	for off := 0; off+chunk <= len(lead); off += chunk {
		if err := st.Send(ctx, lead[off:off+chunk]); err != nil {
			t.Fatal(err)
		}
	}
	drain()

	var sendErr error
	next := 0
	allocs := testing.AllocsPerRun(10, func() {
		for i := 0; i < 5; i++ {
			if err := st.Send(ctx, lead[next:next+chunk]); err != nil {
				sendErr = err
				return
			}
			next += chunk
			if next+chunk > len(lead) {
				next = 0
			}
			drain()
		}
	})
	if sendErr != nil {
		t.Fatal(sendErr)
	}
	if allocs != 0 {
		t.Fatalf("steady-state Send allocated %.1f times per 5 chunks, want 0", allocs)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestBatchClassifyIntoMatchesBatchClassify checks the scratch-reusing batch
// path against the allocating reference, across repeated reuse of one
// scratch (including a shorter record after a longer one, so stale buffer
// tails would surface).
func TestBatchClassifyIntoMatchesBatchClassify(t *testing.T) {
	emb := testModel(t)
	var scratch BatchScratch
	for _, spec := range []ecgsyn.RecordSpec{
		{Name: "b1", Seconds: 60, Seed: 3, PVCRate: 0.2},
		{Name: "b2", Seconds: 30, Seed: 9, PVCRate: 0.05},
		{Name: "b3", Seconds: 45, Seed: 12},
	} {
		lead := ecgsyn.Synthesize(spec).Leads[0]
		want, err := BatchClassify(context.Background(), emb, lead, Config{})
		if err != nil {
			t.Fatal(err)
		}
		got, err := BatchClassifyInto(context.Background(), emb, lead, Config{}, &scratch)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(want) {
			t.Fatalf("%s: %d beats via scratch, %d via reference", spec.Name, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("%s: beat %d = %+v, want %+v", spec.Name, i, got[i], want[i])
			}
		}
	}
}
