package pipeline

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"rpbeat/internal/apierr"
	"rpbeat/internal/catalog"
	"rpbeat/internal/ecgsyn"
)

// testCatalog builds a memory catalog holding the trained test model under
// the given names (one version each).
func testCatalog(t testing.TB, names ...string) *catalog.Catalog {
	t.Helper()
	m := testFloatModel(t)
	cat := catalog.New()
	for _, name := range names {
		if _, err := cat.Put(name, m, nil); err != nil {
			t.Fatal(err)
		}
	}
	return cat
}

// TestEngineMatchesSequential drives several concurrent patient streams
// through a shared worker pool and checks every stream's output against a
// sequential single-pipeline run of the same record. Run under -race (CI
// does) this is also the engine's race-detector test.
func TestEngineMatchesSequential(t *testing.T) {
	emb := testModel(t)
	eng := NewEngine(testCatalog(t, "a", "b"), EngineConfig{Workers: 4})
	defer eng.Close()
	ctx := context.Background()

	const streams = 6
	type result struct {
		got  []BeatResult
		want []BeatResult
	}
	results := make([]result, streams)

	var wg sync.WaitGroup
	for si := 0; si < streams; si++ {
		wg.Add(1)
		go func(si int) {
			defer wg.Done()
			rec := ecgsyn.Synthesize(ecgsyn.RecordSpec{
				Name: "e", Seconds: 45, Seed: uint64(100 + si), PVCRate: 0.1,
			})
			lead := rec.Leads[0]

			// Sequential reference.
			pipe, err := New(emb, Config{})
			if err != nil {
				t.Error(err)
				return
			}
			for _, v := range lead {
				results[si].want = append(results[si].want, pipe.Push(v)...)
			}
			results[si].want = append(results[si].want, pipe.Flush()...)

			// Engine run, alternating model references (pinned and
			// floating), chunked with uneven sizes.
			model := "a@v1"
			if si%2 == 1 {
				model = "b"
			}
			st, err := eng.Open(ctx, model, Config{}, func(beats []BeatResult) {
				results[si].got = append(results[si].got, beats...)
			})
			if err != nil {
				t.Error(err)
				return
			}
			chunk := 360 + 97*si
			for off := 0; off < len(lead); off += chunk {
				end := off + chunk
				if end > len(lead) {
					end = len(lead)
				}
				if err := st.Send(ctx, lead[off:end]); err != nil {
					t.Error(err)
					return
				}
			}
			if err := st.Close(); err != nil {
				t.Error(err)
			}
		}(si)
	}
	wg.Wait()

	for si, r := range results {
		if len(r.got) != len(r.want) {
			t.Fatalf("stream %d: engine emitted %d beats, sequential %d", si, len(r.got), len(r.want))
		}
		for i := range r.want {
			if r.got[i] != r.want[i] {
				t.Fatalf("stream %d beat %d: engine %+v != sequential %+v", si, i, r.got[i], r.want[i])
			}
		}
		if len(r.want) == 0 {
			t.Fatalf("stream %d: no beats at all", si)
		}
	}
}

// TestEngineMixedKinds runs a fuzzy-head and a bitemb-head model on one
// engine concurrently — streams pinned to different kinds share the worker
// pool and its pooled chunk buffers — and holds each stream beat-exact
// against a sequential single-pipeline run of its own model. Under -race
// (CI) this is also the mixed-fleet race test: the per-stream Scratch must
// never be shared across kinds. Mid-run it deletes the bitemb version from
// the catalog to confirm the pin semantics are kind-independent.
func TestEngineMixedKinds(t *testing.T) {
	fuzzyEmb := testModel(t)
	bitEmb := testBitembModel(t)
	cat := catalog.New()
	if _, err := cat.Put("fz", testFloatModel(t), nil); err != nil {
		t.Fatal(err)
	}
	if _, err := cat.Put("bin", testBitembFloatModel(t), nil); err != nil {
		t.Fatal(err)
	}
	man, err := cat.Snapshot().Resolve("bin@v1")
	if err != nil {
		t.Fatal(err)
	}
	if man.Manifest.Kind != "bitemb" {
		t.Fatalf("bin@v1 manifest kind = %q, want bitemb", man.Manifest.Kind)
	}

	eng := NewEngine(cat, EngineConfig{Workers: 4})
	defer eng.Close()
	ctx := context.Background()

	const streams = 4
	type result struct{ got, want []BeatResult }
	results := make([]result, streams)
	var deleted sync.Once
	var opened sync.WaitGroup // all streams open before the delete fires
	opened.Add(streams)

	var wg sync.WaitGroup
	for si := 0; si < streams; si++ {
		wg.Add(1)
		go func(si int) {
			defer wg.Done()
			emb, model := fuzzyEmb, "fz@v1"
			if si%2 == 1 {
				emb, model = bitEmb, "bin@v1"
			}
			lead := ecgsyn.Synthesize(ecgsyn.RecordSpec{
				Name: "mix", Seconds: 30, Seed: uint64(500 + si), PVCRate: 0.1,
			}).Leads[0]

			pipe, err := New(emb, Config{})
			if err != nil {
				t.Error(err)
				return
			}
			for _, v := range lead {
				results[si].want = append(results[si].want, pipe.Push(v)...)
			}
			results[si].want = append(results[si].want, pipe.Flush()...)

			st, err := eng.Open(ctx, model, Config{}, func(beats []BeatResult) {
				results[si].got = append(results[si].got, beats...)
			})
			opened.Done()
			if err != nil {
				t.Error(err)
				return
			}
			for off := 0; off < len(lead); off += 731 {
				end := off + 731
				if end > len(lead) {
					end = len(lead)
				}
				if err := st.Send(ctx, lead[off:end]); err != nil {
					t.Error(err)
					return
				}
				// Halfway through the first bitemb stream, delete its model:
				// the pin must keep serving it regardless of head kind.
				if si == 1 && off > len(lead)/2 {
					deleted.Do(func() {
						opened.Wait()
						if _, err := cat.Delete("bin", 1); err != nil {
							t.Error(err)
						}
					})
				}
			}
			if err := st.Close(); err != nil {
				t.Error(err)
			}
		}(si)
	}
	wg.Wait()

	for si, r := range results {
		if len(r.want) == 0 {
			t.Fatalf("stream %d: no beats at all", si)
		}
		if len(r.got) != len(r.want) {
			t.Fatalf("stream %d: engine emitted %d beats, sequential %d", si, len(r.got), len(r.want))
		}
		for i := range r.want {
			if r.got[i] != r.want[i] {
				t.Fatalf("stream %d beat %d: engine %+v != sequential %+v", si, i, r.got[i], r.want[i])
			}
		}
	}
	// The deleted bitemb version stays gone for new opens.
	if _, err := eng.Open(ctx, "bin@v1", Config{}, nil); !apierr.IsCode(err, apierr.CodeModelNotFound) {
		t.Fatalf("open of deleted bitemb version: %v", err)
	}
}

func TestEngineStreamLifecycle(t *testing.T) {
	eng := NewEngine(testCatalog(t, "only"), EngineConfig{Workers: 2})
	ctx := context.Background()

	if _, err := eng.Open(ctx, "missing", Config{}, nil); !apierr.IsCode(err, apierr.CodeModelNotFound) {
		t.Fatalf("unknown model: %v", err)
	}
	if _, err := eng.Open(ctx, "only@v9", Config{}, nil); !apierr.IsCode(err, apierr.CodeModelNotFound) {
		t.Fatalf("unknown version: %v", err)
	}
	if _, err := eng.Open(ctx, "only@@", Config{}, nil); !apierr.IsCode(err, apierr.CodeBadInput) {
		t.Fatalf("malformed reference: %v", err)
	}

	st, err := eng.Open(ctx, "only", Config{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := st.Entry().Manifest.Ref(); got != "only@v1" {
		t.Fatalf("stream pinned %q", got)
	}
	if err := st.Send(ctx, make([]int32, 512)); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	if err := st.Send(ctx, make([]int32, 1)); err == nil {
		t.Fatal("expected send-on-closed-stream to fail")
	}
	if err := st.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}

	eng.Close()
	if err := st.Send(ctx, make([]int32, 1)); err == nil {
		t.Fatal("expected send after engine shutdown to fail")
	}
	if _, err := eng.Open(ctx, "only", Config{}, nil); err != nil {
		// Open still works mechanically after Close; streams just cannot run.
		t.Logf("open after close: %v", err)
	}
}

// TestEngineContextCancellation: a canceled context fails Open and Send
// with the typed canceled code before any work is queued.
func TestEngineContextCancellation(t *testing.T) {
	eng := NewEngine(testCatalog(t, "m"), EngineConfig{Workers: 1})
	defer eng.Close()

	canceled, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := eng.Open(canceled, "m", Config{}, nil); !apierr.IsCode(err, apierr.CodeCanceled) {
		t.Fatalf("Open with canceled ctx: %v", err)
	}

	st, err := eng.Open(context.Background(), "m", Config{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Send(canceled, make([]int32, 8)); !apierr.IsCode(err, apierr.CodeCanceled) {
		t.Fatalf("Send with canceled ctx: %v", err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestEngineStreamPinsDeletedModel: a stream opened before its model
// version is deleted keeps classifying against it (snapshot semantics).
func TestEngineStreamPinsDeletedModel(t *testing.T) {
	m := testFloatModel(t)
	cat := catalog.New()
	if _, err := cat.Put("m", m, nil); err != nil {
		t.Fatal(err)
	}
	// Second version with one projection element flipped: different bytes,
	// same shape — v1 becomes deletable (not what the default resolves to).
	m2 := *m
	P2 := m.P.Clone()
	if P2.El[0] == 0 {
		P2.El[0] = 1
	} else {
		P2.El[0] = 0
	}
	m2.P = P2
	if _, err := cat.Put("m", &m2, nil); err != nil {
		t.Fatal(err)
	}

	eng := NewEngine(cat, EngineConfig{Workers: 1})
	defer eng.Close()
	ctx := context.Background()

	beats := 0
	st, err := eng.Open(ctx, "m@v1", Config{}, func(res []BeatResult) { beats += len(res) })
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cat.Delete("m", 1); err != nil {
		t.Fatal(err)
	}
	if _, err := cat.Snapshot().Resolve("m@v1"); err == nil {
		t.Fatal("v1 should be gone from the catalog")
	}

	lead := ecgsyn.Synthesize(ecgsyn.RecordSpec{Name: "pin", Seconds: 30, Seed: 3, PVCRate: 0.1}).Leads[0]
	for off := 0; off < len(lead); off += 720 {
		end := off + 720
		if end > len(lead) {
			end = len(lead)
		}
		if err := st.Send(ctx, lead[off:end]); err != nil {
			t.Fatal(err)
		}
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	if beats == 0 {
		t.Fatal("pinned stream classified nothing after its model was deleted")
	}
	// New opens of the deleted version fail in the typed way.
	if _, err := eng.Open(ctx, "m@v1", Config{}, nil); !apierr.IsCode(err, apierr.CodeModelNotFound) {
		t.Fatalf("open of deleted version: %v", err)
	}
}

// TestEngineOverload: with a tiny queue bound (in samples) and no workers
// draining (the stream is held "running" by a stalled sink), Send reports
// the typed overload error instead of queueing without bound.
func TestEngineOverload(t *testing.T) {
	eng := NewEngine(testCatalog(t, "m"), EngineConfig{Workers: 1, MaxPending: 16})
	defer eng.Close()
	ctx := context.Background()

	block := make(chan struct{})
	release := make(chan struct{})
	blocked := false
	st, err := eng.Open(ctx, "m", Config{}, func([]BeatResult) {
		if !blocked {
			blocked = true
			close(block)
			<-release
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	// A couple of seconds of signal guarantees at least one finalized beat,
	// which parks the only worker in the sink above.
	lead := ecgsyn.Synthesize(ecgsyn.RecordSpec{Name: "ov", Seconds: 5, Seed: 6, PVCRate: 0.1}).Leads[0]
	if err := st.Send(ctx, lead); err != nil {
		t.Fatal(err)
	}
	<-block

	// The worker is parked; every chunk now stays in the FIFO.
	var overloaded bool
	for i := 0; i < 5; i++ {
		err := st.Send(ctx, make([]int32, 8))
		if apierr.IsCode(err, apierr.CodeStreamOverloaded) {
			overloaded = true
			break
		}
		if err != nil {
			t.Fatal(err)
		}
	}
	if !overloaded {
		t.Fatal("queue never reported overload")
	}
	close(release)
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestPushChunkMatchesPush: feeding a record through PushChunk (with uneven
// chunk sizes, including single samples) emits exactly the beats a
// per-sample Push run emits — the bit-identity the engine worker's chunked
// inner loop rests on.
func TestPushChunkMatchesPush(t *testing.T) {
	emb := testModel(t)
	lead := ecgsyn.Synthesize(ecgsyn.RecordSpec{Name: "pc", Seconds: 45, Seed: 21, PVCRate: 0.1}).Leads[0]

	ref, err := New(emb, Config{})
	if err != nil {
		t.Fatal(err)
	}
	var want []BeatResult
	for _, v := range lead {
		want = append(want, ref.Push(v)...)
	}
	want = append(want, ref.Flush()...)

	chunked, err := New(emb, Config{})
	if err != nil {
		t.Fatal(err)
	}
	var got []BeatResult
	emit := func(beats []BeatResult) { got = append(got, beats...) }
	sizes := []int{1, 7, 360, 1024, 3, 719}
	for off, i := 0, 0; off < len(lead); i++ {
		end := off + sizes[i%len(sizes)]
		if end > len(lead) {
			end = len(lead)
		}
		chunked.PushChunk(lead[off:end], emit)
		off = end
	}
	got = append(got, chunked.Flush()...)

	if len(got) != len(want) {
		t.Fatalf("chunked run emitted %d beats, per-sample %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("beat %d: chunked %+v != per-sample %+v", i, got[i], want[i])
		}
	}
	if len(want) == 0 {
		t.Fatal("no beats at all")
	}
}

// TestStreamFIFORecycled: the worker must hand the stream's FIFO backing
// array back instead of discarding it, so steady-state Sends append into
// recycled capacity. The test drives many send/drain cycles and checks the
// capacity settles instead of being re-grown from zero each drain.
func TestStreamFIFORecycled(t *testing.T) {
	eng := NewEngine(testCatalog(t, "m"), EngineConfig{Workers: 1})
	defer eng.Close()
	ctx := context.Background()

	st, err := eng.Open(ctx, "m", Config{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]int32, 64)
	cycle := func() {
		for i := 0; i < 4; i++ {
			if err := st.Send(ctx, buf); err != nil {
				t.Fatal(err)
			}
		}
		for st.PendingSamples() > 0 {
			runtime.Gosched()
		}
	}
	for i := 0; i < 8; i++ { // warm up: FIFO capacity reaches its working size
		cycle()
	}
	st.mu.Lock()
	warm := cap(st.fifo)
	st.mu.Unlock()
	if warm == 0 {
		t.Fatal("warm FIFO has no retained capacity — backing array was discarded")
	}
	for i := 0; i < 64; i++ {
		cycle()
	}
	st.mu.Lock()
	final := cap(st.fifo)
	st.mu.Unlock()
	if final > warm {
		t.Fatalf("FIFO backing array re-grown after warm-up: cap %d -> %d", warm, final)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestEngineStress drives hundreds of streams over a small worker pool (run
// under -race in CI): every stream's beats must match a sequential
// single-pipeline run exactly (ordering and completeness through the
// sharded queues, work stealing and chunk pooling), overloads must surface
// as the typed backpressure error and be survivable by retrying, and the
// worker goroutines must all exit on Engine.Close.
func TestEngineStress(t *testing.T) {
	before := runtime.NumGoroutine()
	eng := NewEngine(testCatalog(t, "m"), EngineConfig{Workers: 4, MaxPending: 2048})
	ctx := context.Background()

	// A few distinct records shared by many streams keeps synthesis cheap
	// while every stream still checks full beat-for-beat equality.
	const (
		streams = 160
		records = 8
	)
	leads := make([][]int32, records)
	refs := make([][]BeatResult, records)
	emb := testModel(t)
	for i := range leads {
		leads[i] = ecgsyn.Synthesize(ecgsyn.RecordSpec{
			Name: "st", Seconds: 8, Seed: uint64(300 + i), PVCRate: 0.15,
		}).Leads[0]
		pipe, err := New(emb, Config{})
		if err != nil {
			t.Fatal(err)
		}
		for _, v := range leads[i] {
			refs[i] = append(refs[i], pipe.Push(v)...)
		}
		refs[i] = append(refs[i], pipe.Flush()...)
		if len(refs[i]) == 0 {
			t.Fatalf("record %d: sequential reference emitted no beats", i)
		}
	}

	var overloads atomic.Int64
	results := make([][]BeatResult, streams)
	var wg sync.WaitGroup
	for si := 0; si < streams; si++ {
		wg.Add(1)
		go func(si int) {
			defer wg.Done()
			lead := leads[si%records]
			st, err := eng.Open(ctx, "m", Config{}, func(beats []BeatResult) {
				results[si] = append(results[si], beats...)
			})
			if err != nil {
				t.Error(err)
				return
			}
			chunk := 97 + 53*(si%7)
			for off := 0; off < len(lead); {
				end := off + chunk
				if end > len(lead) {
					end = len(lead)
				}
				err := st.Send(ctx, lead[off:end])
				if apierr.IsCode(err, apierr.CodeStreamOverloaded) {
					overloads.Add(1)
					runtime.Gosched() // back off and retry the same chunk
					continue
				}
				if err != nil {
					t.Error(err)
					return
				}
				off = end
			}
			if err := st.Close(); err != nil {
				t.Error(err)
			}
		}(si)
	}
	wg.Wait()

	for si := range results {
		want := refs[si%records]
		if len(results[si]) != len(want) {
			t.Fatalf("stream %d: engine emitted %d beats, sequential %d", si, len(results[si]), len(want))
		}
		for i := range want {
			if results[si][i] != want[i] {
				t.Fatalf("stream %d beat %d: engine %+v != sequential %+v", si, i, results[si][i], want[i])
			}
		}
	}
	t.Logf("stress: %d streams, %d overload backoffs", streams, overloads.Load())

	eng.Close()
	// The pool's goroutines must all exit; give the scheduler a moment.
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > before {
		if time.Now().After(deadline) {
			t.Fatalf("goroutine leak after Engine.Close: %d before, %d after", before, runtime.NumGoroutine())
		}
		runtime.Gosched()
		time.Sleep(time.Millisecond)
	}
}

// TestEngineCloseRacesSend: shutting the engine down while producers are
// mid-Send must neither hang Close (a Send rejected at admission decrements
// the in-flight counter without enqueuing — workers must not park waiting
// for a wake that will never come) nor trip the race detector. Repeated to
// give the interleavings a chance to land in the admission window.
func TestEngineCloseRacesSend(t *testing.T) {
	cat := testCatalog(t, "m")
	for iter := 0; iter < 25; iter++ {
		// The small queue bound keeps the backlog Close must drain tiny, so
		// the iterations exercise the shutdown race rather than throughput.
		eng := NewEngine(cat, EngineConfig{Workers: 2, MaxPending: 4096})
		ctx := context.Background()
		var wg sync.WaitGroup
		for i := 0; i < 4; i++ {
			st, err := eng.Open(ctx, "m", Config{}, nil)
			if err != nil {
				t.Fatal(err)
			}
			wg.Add(1)
			go func() {
				defer wg.Done()
				buf := make([]int32, 64)
				for {
					if err := st.Send(ctx, buf); err != nil {
						if !apierr.IsCode(err, apierr.CodeStreamOverloaded) {
							return // engine closed
						}
						runtime.Gosched()
					}
				}
			}()
		}
		runtime.Gosched()
		closed := make(chan struct{})
		go func() {
			eng.Close()
			close(closed)
		}()
		select {
		case <-closed:
		case <-time.After(10 * time.Second):
			t.Fatal("Engine.Close hung with concurrent Sends")
		}
		wg.Wait()
	}
}

func BenchmarkEngineThroughput(b *testing.B) {
	eng := NewEngine(testCatalog(b, "m"), EngineConfig{})
	defer eng.Close()
	ctx := context.Background()
	rec := ecgsyn.Synthesize(ecgsyn.RecordSpec{Name: "bt", Seconds: 30, Seed: 4, PVCRate: 0.1})
	lead := rec.Leads[0]

	b.ReportAllocs()
	b.ResetTimer()
	const streams = 8
	for i := 0; i < b.N; i++ {
		var wg sync.WaitGroup
		for s := 0; s < streams; s++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				st, err := eng.Open(ctx, "m", Config{}, nil)
				if err != nil {
					b.Error(err)
					return
				}
				for off := 0; off < len(lead); off += 1024 {
					end := off + 1024
					if end > len(lead) {
						end = len(lead)
					}
					if err := st.Send(ctx, lead[off:end]); err != nil {
						b.Error(err)
						return
					}
				}
				if err := st.Close(); err != nil {
					b.Error(err)
				}
			}()
		}
		wg.Wait()
	}
	b.SetBytes(int64(streams * len(lead) * 4))
}

// BenchmarkEngineSendSteadyState measures one chunk through the pooled Send
// admission path plus the worker drain (synchronized, so the number is
// chunk latency, not queue-fill throughput). allocs/op must be 0.
func BenchmarkEngineSendSteadyState(b *testing.B) {
	eng := NewEngine(testCatalog(b, "m"), EngineConfig{Workers: 1})
	defer eng.Close()
	ctx := context.Background()
	lead := ecgsyn.Synthesize(ecgsyn.RecordSpec{Name: "bs", Seconds: 60, Seed: 14, PVCRate: 0.1}).Leads[0]

	st, err := eng.Open(ctx, "m", Config{}, nil)
	if err != nil {
		b.Fatal(err)
	}
	const chunk = 720
	for off := 0; off+chunk <= len(lead); off += chunk { // warm up
		if err := st.Send(ctx, lead[off:off+chunk]); err != nil {
			b.Fatal(err)
		}
	}
	for st.PendingSamples() > 0 {
		runtime.Gosched()
	}

	next := 0
	b.ReportAllocs()
	b.SetBytes(chunk * 4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := st.Send(ctx, lead[next:next+chunk]); err != nil {
			b.Fatal(err)
		}
		next += chunk
		if next+chunk > len(lead) {
			next = 0
		}
		for st.PendingSamples() > 0 {
			runtime.Gosched()
		}
	}
	b.StopTimer()
	if err := st.Close(); err != nil {
		b.Fatal(err)
	}
}

// TestEngineMaxStreams holds the engine-level stream cap: Opens beyond
// MaxStreams fail with the typed server_overloaded error, and a completed
// Close frees the slot for the next Open.
func TestEngineMaxStreams(t *testing.T) {
	eng := NewEngine(testCatalog(t, "m"), EngineConfig{Workers: 1, MaxStreams: 2})
	defer eng.Close()
	ctx := context.Background()

	a, err := eng.Open(ctx, "m", Config{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	// A failed resolve must release its reserved slot, not leak it toward
	// the cap.
	if _, err := eng.Open(ctx, "no-such-model", Config{}, nil); !apierr.IsCode(err, apierr.CodeModelNotFound) {
		t.Fatalf("unknown model: %v", err)
	}
	if got := eng.OpenStreams(); got != 1 {
		t.Fatalf("OpenStreams after failed resolve = %d, want 1", got)
	}
	b, err := eng.Open(ctx, "m", Config{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := eng.OpenStreams(); got != 2 {
		t.Fatalf("OpenStreams = %d, want 2", got)
	}
	if _, err := eng.Open(ctx, "m", Config{}, nil); !apierr.IsCode(err, apierr.CodeServerOverloaded) {
		t.Fatalf("Open beyond cap: err = %v, want server_overloaded", err)
	}
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
	// Close completed (done closed), so the slot is free again.
	c, err := eng.Open(ctx, "m", Config{}, nil)
	if err != nil {
		t.Fatalf("Open after Close still refused: %v", err)
	}
	for _, st := range []*Stream{b, c} {
		if err := st.Close(); err != nil {
			t.Fatal(err)
		}
	}
	if got := eng.OpenStreams(); got != 0 {
		t.Fatalf("OpenStreams after all closed = %d, want 0", got)
	}
}

// TestEngineShutdownErrorsTyped pins the drain contract: once the engine is
// closed, Send, Close and Open all fail with the typed shutting_down error
// (the serving layer renders it as 503 + Retry-After), and a Send on a
// stream the caller already closed is the typed bad_input.
func TestEngineShutdownErrorsTyped(t *testing.T) {
	eng := NewEngine(testCatalog(t, "m"), EngineConfig{Workers: 1})
	ctx := context.Background()

	closed, err := eng.Open(ctx, "m", Config{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := closed.Close(); err != nil {
		t.Fatal(err)
	}
	if err := closed.Send(ctx, []int32{1, 2, 3}); !apierr.IsCode(err, apierr.CodeBadInput) {
		t.Fatalf("Send on closed stream: err = %v, want bad_input", err)
	}

	open, err := eng.Open(ctx, "m", Config{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	eng.Close()

	if err := open.Send(ctx, []int32{1, 2, 3}); !apierr.IsCode(err, apierr.CodeShuttingDown) {
		t.Fatalf("Send after engine Close: err = %v, want shutting_down", err)
	}
	if err := open.Close(); !apierr.IsCode(err, apierr.CodeShuttingDown) {
		t.Fatalf("Close after engine Close: err = %v, want shutting_down", err)
	}
	if _, err := eng.Open(ctx, "m", Config{}, nil); !apierr.IsCode(err, apierr.CodeShuttingDown) {
		t.Fatalf("Open after engine Close: err = %v, want shutting_down", err)
	}
}
