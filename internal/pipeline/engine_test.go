package pipeline

import (
	"sync"
	"testing"

	"rpbeat/internal/ecgsyn"
)

// TestEngineMatchesSequential drives several concurrent patient streams
// through a shared worker pool and checks every stream's output against a
// sequential single-pipeline run of the same record. Run under -race (CI
// does) this is also the engine's race-detector test.
func TestEngineMatchesSequential(t *testing.T) {
	emb := testModel(t)
	reg := NewRegistry()
	if err := reg.Register("a", emb); err != nil {
		t.Fatal(err)
	}
	if err := reg.Register("b", emb); err != nil {
		t.Fatal(err)
	}
	eng := NewEngine(reg, EngineConfig{Workers: 4})
	defer eng.Close()

	const streams = 6
	type result struct {
		got  []BeatResult
		want []BeatResult
	}
	results := make([]result, streams)

	var wg sync.WaitGroup
	for si := 0; si < streams; si++ {
		wg.Add(1)
		go func(si int) {
			defer wg.Done()
			rec := ecgsyn.Synthesize(ecgsyn.RecordSpec{
				Name: "e", Seconds: 45, Seed: uint64(100 + si), PVCRate: 0.1,
			})
			lead := rec.Leads[0]

			// Sequential reference.
			pipe, err := New(emb, Config{})
			if err != nil {
				t.Error(err)
				return
			}
			for _, v := range lead {
				results[si].want = append(results[si].want, pipe.Push(v)...)
			}
			results[si].want = append(results[si].want, pipe.Flush()...)

			// Engine run, alternating models, chunked with uneven sizes.
			model := "a"
			if si%2 == 1 {
				model = "b"
			}
			st, err := eng.Open(model, Config{}, func(beats []BeatResult) {
				results[si].got = append(results[si].got, beats...)
			})
			if err != nil {
				t.Error(err)
				return
			}
			chunk := 360 + 97*si
			for off := 0; off < len(lead); off += chunk {
				end := off + chunk
				if end > len(lead) {
					end = len(lead)
				}
				if err := st.Send(lead[off:end]); err != nil {
					t.Error(err)
					return
				}
			}
			if err := st.Close(); err != nil {
				t.Error(err)
			}
		}(si)
	}
	wg.Wait()

	for si, r := range results {
		if len(r.got) != len(r.want) {
			t.Fatalf("stream %d: engine emitted %d beats, sequential %d", si, len(r.got), len(r.want))
		}
		for i := range r.want {
			if r.got[i] != r.want[i] {
				t.Fatalf("stream %d beat %d: engine %+v != sequential %+v", si, i, r.got[i], r.want[i])
			}
		}
		if len(r.want) == 0 {
			t.Fatalf("stream %d: no beats at all", si)
		}
	}
}

func TestEngineStreamLifecycle(t *testing.T) {
	emb := testModel(t)
	reg := NewRegistry()
	if err := reg.Register("only", emb); err != nil {
		t.Fatal(err)
	}
	eng := NewEngine(reg, EngineConfig{Workers: 2})

	if _, err := eng.Open("missing", Config{}, nil); err == nil {
		t.Fatal("expected an unknown-model error")
	}

	st, err := eng.Open("only", Config{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Send(make([]int32, 512)); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	if err := st.Send(make([]int32, 1)); err == nil {
		t.Fatal("expected send-on-closed-stream to fail")
	}
	if err := st.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}

	eng.Close()
	if err := st.Send(make([]int32, 1)); err == nil {
		t.Fatal("expected send after engine shutdown to fail")
	}
	if _, err := eng.Open("only", Config{}, nil); err != nil {
		// Open still works mechanically after Close; streams just cannot run.
		t.Logf("open after close: %v", err)
	}
}

func TestRegistry(t *testing.T) {
	emb := testModel(t)
	reg := NewRegistry()
	if err := reg.Register("", emb); err == nil {
		t.Fatal("expected empty-name rejection")
	}
	if err := reg.Register("x", nil); err == nil {
		t.Fatal("expected nil-model rejection")
	}
	if err := reg.Register("zeta", emb); err != nil {
		t.Fatal(err)
	}
	if err := reg.Register("alpha", emb); err != nil {
		t.Fatal(err)
	}
	names := reg.Names()
	if len(names) != 2 || names[0] != "alpha" || names[1] != "zeta" {
		t.Fatalf("Names() = %v", names)
	}
	if _, err := reg.Get("alpha"); err != nil {
		t.Fatal(err)
	}
	if _, err := reg.Get("nope"); err == nil {
		t.Fatal("expected unknown-model error")
	}
}

func BenchmarkEngineThroughput(b *testing.B) {
	emb := testModel(b)
	reg := NewRegistry()
	if err := reg.Register("m", emb); err != nil {
		b.Fatal(err)
	}
	eng := NewEngine(reg, EngineConfig{})
	defer eng.Close()
	rec := ecgsyn.Synthesize(ecgsyn.RecordSpec{Name: "bt", Seconds: 30, Seed: 4, PVCRate: 0.1})
	lead := rec.Leads[0]

	b.ReportAllocs()
	b.ResetTimer()
	const streams = 8
	for i := 0; i < b.N; i++ {
		var wg sync.WaitGroup
		for s := 0; s < streams; s++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				st, err := eng.Open("m", Config{}, nil)
				if err != nil {
					b.Error(err)
					return
				}
				for off := 0; off < len(lead); off += 1024 {
					end := off + 1024
					if end > len(lead) {
						end = len(lead)
					}
					if err := st.Send(lead[off:end]); err != nil {
						b.Error(err)
						return
					}
				}
				if err := st.Close(); err != nil {
					b.Error(err)
				}
			}()
		}
		wg.Wait()
	}
	b.SetBytes(int64(streams * len(lead) * 4))
}
