package pipeline

// The deterministic-resume contract behind gateway failover: a fresh
// pipeline opened with Config.BaseSample = B and fed the original samples
// from B onward must emit beats bit-identical to the uninterrupted run for
// every beat past B + ResyncWarmup. TestPipelineResyncBitIdentity sweeps
// failure points across threshold-window phases (the alignment machinery's
// hard part); TestPipelineResyncWindowSweep probes replay windows around the
// exported bound — W resyncs exactly, W-1 may diverge but must stay sane
// (monotone, classified, within the stream).

import (
	"fmt"
	"testing"

	"rpbeat/internal/ecgsyn"
)

// pushAll streams lead through p and returns every emitted beat (flush
// included when flush is set).
func pushAll(t *testing.T, p *Pipeline, lead []int32, flush bool) []BeatResult {
	t.Helper()
	var out []BeatResult
	for _, s := range lead {
		out = append(out, p.Push(s)...)
	}
	if flush {
		out = append(out, p.Flush()...)
	}
	return out
}

// beatsAfter filters beats with Peak strictly greater than watermark.
func beatsAfter(beats []BeatResult, watermark int) []BeatResult {
	var out []BeatResult
	for _, b := range beats {
		if b.Peak > watermark {
			out = append(out, b)
		}
	}
	return out
}

func TestPipelineResyncBitIdentity(t *testing.T) {
	emb := testModel(t)
	lead := ecgsyn.Synthesize(ecgsyn.RecordSpec{
		Name: "resync", Seconds: 60, Seed: 17, PVCRate: 0.1,
	}).Leads[0]

	full, err := New(emb, Config{})
	if err != nil {
		t.Fatal(err)
	}
	ref := pushAll(t, full, lead, true)
	if len(ref) < 20 {
		t.Fatalf("reference run found only %d beats", len(ref))
	}
	warm := ResyncWarmup(Config{})
	if warm <= full.Delay() {
		t.Fatalf("ResyncWarmup %d should exceed the pipeline delay %d", warm, full.Delay())
	}

	// Failure points spread across the record and, via the +offset, across
	// threshold-window phases — alignment must not depend on where the
	// stream tore.
	win := 720 // 2 s at 360 Hz, the detector's default threshold window
	for _, fail := range []int{warm + 5000, len(lead) / 2, len(lead)/2 + win/3, len(lead)/2 + 1, len(lead) - warm - 2000} {
		t.Run(fmt.Sprintf("fail_at_%d", fail), func(t *testing.T) {
			base := fail - warm
			if base < 0 {
				t.Fatalf("failure point %d inside the warm-up", fail)
			}
			// The watermark is the last beat the original run delivered by
			// the time sample `fail` had been consumed — exactly what the
			// gateway knows at failover time.
			watermark := -1
			for _, b := range ref {
				if b.DetectedAt < fail {
					watermark = b.Peak
				}
			}

			resumed, err := New(emb, Config{BaseSample: base})
			if err != nil {
				t.Fatal(err)
			}
			got := beatsAfter(pushAll(t, resumed, lead[base:], true), watermark)
			want := beatsAfter(ref, watermark)
			if len(got) != len(want) {
				t.Fatalf("resumed run emits %d beats past watermark %d, reference %d",
					len(got), watermark, len(want))
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("beat %d diverges: resumed %+v, reference %+v", i, got[i], want[i])
				}
			}
		})
	}
}

func TestPipelineResyncWindowSweep(t *testing.T) {
	emb := testModel(t)
	lead := ecgsyn.Synthesize(ecgsyn.RecordSpec{
		Name: "resync-sweep", Seconds: 45, Seed: 23, PVCRate: 0.1,
	}).Leads[0]

	full, err := New(emb, Config{})
	if err != nil {
		t.Fatal(err)
	}
	ref := pushAll(t, full, lead, true)
	warm := ResyncWarmup(Config{})
	fail := len(lead) * 2 / 3
	watermark := -1
	for _, b := range ref {
		if b.DetectedAt < fail {
			watermark = b.Peak
		}
	}

	for _, tc := range []struct {
		name   string
		window int
		exact  bool // replay window >= W: suffix must be bit-identical
	}{
		{"warmup", warm, true},
		{"warmup_minus_1", warm - 1, false},
		{"half_warmup", warm / 2, false},
	} {
		t.Run(tc.name, func(t *testing.T) {
			base := fail - tc.window
			resumed, err := New(emb, Config{BaseSample: base})
			if err != nil {
				t.Fatal(err)
			}
			got := beatsAfter(pushAll(t, resumed, lead[base:], true), watermark)

			// Under-replay safety, window size regardless: positions stay
			// inside the stream and strictly monotone — a short journal may
			// lose resync exactness, never sanity.
			last := watermark
			for _, b := range got {
				if b.Peak <= last {
					t.Fatalf("non-monotone beat %+v after %d", b, last)
				}
				if b.Peak < base || b.Peak >= len(lead) {
					t.Fatalf("beat %+v outside the stream", b)
				}
				last = b.Peak
			}
			if !tc.exact {
				return
			}
			want := beatsAfter(ref, watermark)
			if len(got) != len(want) {
				t.Fatalf("replaying W=%d gives %d beats past watermark, reference %d",
					tc.window, len(got), len(want))
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("beat %d diverges: %+v vs %+v", i, got[i], want[i])
				}
			}
		})
	}
}
