package nfc

import (
	"math"
	"testing"

	"rpbeat/internal/rng"
	"rpbeat/internal/scg"
)

func makeClusters(r *rng.Rand, perClass int, spread float64) ([][]float64, []uint8) {
	centers := [NumClasses][2]float64{{0, 0}, {6, 0}, {0, 6}}
	var u [][]float64
	var label []uint8
	for l := 0; l < NumClasses; l++ {
		for i := 0; i < perClass; i++ {
			u = append(u, []float64{
				centers[l][0] + spread*r.Norm(),
				centers[l][1] + spread*r.Norm(),
			})
			label = append(label, uint8(l))
		}
	}
	return u, label
}

func TestTrainingSetValidate(t *testing.T) {
	ts := &TrainingSet{}
	if ts.Validate(2) == nil {
		t.Fatal("empty set should fail")
	}
	ts = &TrainingSet{U: [][]float64{{1, 2}}, Label: []uint8{0, 1}}
	if ts.Validate(2) == nil {
		t.Fatal("length mismatch should fail")
	}
	ts = &TrainingSet{U: [][]float64{{1}}, Label: []uint8{0}}
	if ts.Validate(2) == nil {
		t.Fatal("wrong coefficient count should fail")
	}
	ts = &TrainingSet{U: [][]float64{{1, 2}}, Label: []uint8{7}}
	if ts.Validate(2) == nil {
		t.Fatal("bad label should fail")
	}
	ts = &TrainingSet{U: [][]float64{{1, 2}}, Label: []uint8{1}}
	if err := ts.Validate(2); err != nil {
		t.Fatal(err)
	}
}

func TestGradientMatchesFiniteDifferences(t *testing.T) {
	r := rng.New(5)
	u, label := makeClusters(r, 15, 1.5)
	ts := &TrainingSet{U: u, Label: label, Weight: [NumClasses]float64{1, 2, 3}}
	k := 2
	p := InitFromData(k, u, label)
	x := p.ToVector()
	// Perturb so we are not at a stationary point.
	for i := range x {
		x[i] += 0.3 * r.Norm()
	}
	n := len(x)
	grad := make([]float64, n)
	LossGrad(k, ts, x, grad)

	const h = 1e-6
	tmp := make([]float64, n)
	scratch := make([]float64, n)
	for i := 0; i < n; i++ {
		copy(tmp, x)
		tmp[i] = x[i] + h
		fp := LossGrad(k, ts, tmp, scratch)
		tmp[i] = x[i] - h
		fm := LossGrad(k, ts, tmp, scratch)
		num := (fp - fm) / (2 * h)
		if diff := math.Abs(num - grad[i]); diff > 1e-5*(1+math.Abs(num)) {
			t.Fatalf("gradient[%d]: analytic %v, numeric %v", i, grad[i], num)
		}
	}
}

func TestSCGTrainingImprovesLoss(t *testing.T) {
	r := rng.New(6)
	u, label := makeClusters(r, 50, 2.5) // overlapping clusters
	ts := &TrainingSet{U: u, Label: label}
	k := 2
	p := InitFromData(k, u, label)
	x0 := p.ToVector()
	grad := make([]float64, len(x0))
	f0 := LossGrad(k, ts, x0, grad)

	res, err := scg.Minimize(scg.Objective(Objective(k, ts)), x0, scg.Options{MaxIter: 150})
	if err != nil {
		t.Fatal(err)
	}
	if res.F >= f0 {
		t.Fatalf("training did not improve loss: %v -> %v", f0, res.F)
	}
	p.FromVector(res.X)
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestTrainedClassifierAccuracy(t *testing.T) {
	r := rng.New(7)
	u, label := makeClusters(r, 80, 1.8)
	ts := &TrainingSet{U: u, Label: label}
	k := 2
	p := InitFromData(k, u, label)
	res, err := scg.Minimize(scg.Objective(Objective(k, ts)), p.ToVector(), scg.Options{MaxIter: 200})
	if err != nil {
		t.Fatal(err)
	}
	p.FromVector(res.X)

	// Fresh data from the same distribution.
	uTest, lTest := makeClusters(rng.New(8), 100, 1.8)
	correct := 0
	for i := range uTest {
		d := p.Classify(uTest[i], 0)
		want := []Decision{DecideN, DecideL, DecideV}[lTest[i]]
		if d == want {
			correct++
		}
	}
	acc := float64(correct) / float64(len(uTest))
	if acc < 0.9 {
		t.Fatalf("test accuracy %.3f, want >= 0.9", acc)
	}
}

func TestClassWeightsShiftDecisionBoundary(t *testing.T) {
	// With strongly weighted abnormal classes, fewer abnormal beats should
	// be misclassified as N compared with uniform weights.
	r := rng.New(9)
	u, label := makeClusters(r, 120, 3.2) // heavy overlap
	k := 2

	train := func(w [NumClasses]float64) *Params {
		ts := &TrainingSet{U: u, Label: label, Weight: w}
		p := InitFromData(k, u, label)
		res, err := scg.Minimize(scg.Objective(Objective(k, ts)), p.ToVector(), scg.Options{MaxIter: 150})
		if err != nil {
			t.Fatal(err)
		}
		p.FromVector(res.X)
		return p
	}
	uniform := train([NumClasses]float64{1, 1, 1})
	skewed := train([NumClasses]float64{1, 8, 8})

	missAsN := func(p *Params) int {
		miss := 0
		for i := range u {
			if label[i] != IdxN && p.Classify(u[i], 0) == DecideN {
				miss++
			}
		}
		return miss
	}
	mu, ms := missAsN(uniform), missAsN(skewed)
	if ms > mu {
		t.Fatalf("abnormal-weighted training misses more abnormals (%d) than uniform (%d)", ms, mu)
	}
}

func TestObjectiveAdapterConsistent(t *testing.T) {
	r := rng.New(10)
	u, label := makeClusters(r, 10, 1)
	ts := &TrainingSet{U: u, Label: label}
	k := 2
	p := InitFromData(k, u, label)
	x := p.ToVector()
	g1 := make([]float64, len(x))
	g2 := make([]float64, len(x))
	f1 := LossGrad(k, ts, x, g1)
	f2 := Objective(k, ts)(x, g2)
	if f1 != f2 {
		t.Fatalf("adapter returned %v, direct %v", f2, f1)
	}
	for i := range g1 {
		if g1[i] != g2[i] {
			t.Fatalf("gradient mismatch at %d", i)
		}
	}
}

func BenchmarkLossGrad_K8_450beats(b *testing.B) {
	r := rng.New(1)
	k := 8
	n := 450
	u := make([][]float64, n)
	label := make([]uint8, n)
	for i := range u {
		u[i] = make([]float64, k)
		for j := range u[i] {
			u[i][j] = r.Norm()
		}
		label[i] = uint8(r.Intn(3))
	}
	ts := &TrainingSet{U: u, Label: label}
	p := InitFromData(k, u, label)
	x := p.ToVector()
	grad := make([]float64, len(x))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		LossGrad(k, ts, x, grad)
	}
}
