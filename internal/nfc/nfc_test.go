package nfc

import (
	"math"
	"testing"

	"rpbeat/internal/rng"
)

func TestDecisionStrings(t *testing.T) {
	if DecideN.String() != "N" || DecideL.String() != "L" || DecideV.String() != "V" || DecideU.String() != "U" {
		t.Fatal("decision mnemonics wrong")
	}
	if Decision(9).String() == "" {
		t.Fatal("unknown decision should format")
	}
}

func TestAbnormal(t *testing.T) {
	if DecideN.Abnormal() {
		t.Fatal("N is not abnormal")
	}
	for _, d := range []Decision{DecideL, DecideV, DecideU} {
		if !d.Abnormal() {
			t.Fatalf("%v should be abnormal", d)
		}
	}
}

func TestNewParamsValid(t *testing.T) {
	p := NewParams(8)
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	if p.VectorLen() != 48 {
		t.Fatalf("vector length %d, want 48", p.VectorLen())
	}
}

func TestValidateRejectsBadSigma(t *testing.T) {
	p := NewParams(2)
	p.Sigma[3] = 0
	if p.Validate() == nil {
		t.Fatal("zero sigma should fail validation")
	}
	p.Sigma[3] = math.NaN()
	if p.Validate() == nil {
		t.Fatal("NaN sigma should fail validation")
	}
}

func TestLogFuzzyPeakAtCenter(t *testing.T) {
	p := NewParams(1)
	p.C[IdxN] = 5
	p.C[IdxL] = -5
	p.C[IdxV] = 0
	var z [NumClasses]float64
	p.LogFuzzy([]float64{5}, &z)
	if z[IdxN] != 0 {
		t.Fatalf("log fuzzy at center = %v, want 0", z[IdxN])
	}
	if z[IdxL] >= z[IdxN] || z[IdxV] >= z[IdxN] {
		t.Fatal("off-center classes should score lower")
	}
}

func TestFuzzyMatchesDirectProduct(t *testing.T) {
	// For small K the direct product of Gaussians must agree with the
	// log-domain computation up to common scaling.
	r := rng.New(1)
	k := 3
	p := NewParams(k)
	for i := range p.C {
		p.C[i] = r.Norm()
		p.Sigma[i] = 0.5 + r.Float64()
	}
	u := []float64{r.Norm(), r.Norm(), r.Norm()}
	direct := [NumClasses]float64{1, 1, 1}
	for kk := 0; kk < k; kk++ {
		for l := 0; l < NumClasses; l++ {
			idx := kk*NumClasses + l
			d := u[kk] - p.C[idx]
			direct[l] *= math.Exp(-d * d / (2 * p.Sigma[idx] * p.Sigma[idx]))
		}
	}
	f := p.Fuzzy(u)
	// Ratios must match.
	for a := 0; a < NumClasses; a++ {
		for b := 0; b < NumClasses; b++ {
			if direct[b] == 0 || f[b] == 0 {
				continue
			}
			got := f[a] / f[b]
			want := direct[a] / direct[b]
			if math.Abs(got-want) > 1e-9*math.Max(1, want) {
				t.Fatalf("ratio %d/%d: got %v want %v", a, b, got, want)
			}
		}
	}
}

func TestFuzzyNoUnderflowLargeK(t *testing.T) {
	// 32 coefficients far from centers: raw products underflow float64, but
	// the normalized computation must keep the max class at 1.
	p := NewParams(32)
	for i := range p.C {
		p.C[i] = 100 // all far away
	}
	u := make([]float64, 32)
	f := p.Fuzzy(u)
	if math.IsNaN(f[0]) || f[0] == 0 && f[1] == 0 && f[2] == 0 {
		t.Fatalf("fuzzy underflowed: %v", f)
	}
	max := math.Max(f[0], math.Max(f[1], f[2]))
	if math.Abs(max-1) > 1e-12 {
		t.Fatalf("max fuzzy = %v, want 1", max)
	}
}

func TestDecideArgmaxAtAlphaZero(t *testing.T) {
	if d := Decide([NumClasses]float64{0.5, 0.9, 0.1}, 0); d != DecideL {
		t.Fatalf("got %v, want L", d)
	}
	if d := Decide([NumClasses]float64{0.9, 0.5, 0.1}, 0); d != DecideN {
		t.Fatalf("got %v, want N", d)
	}
	if d := Decide([NumClasses]float64{0.1, 0.5, 0.9}, 0); d != DecideV {
		t.Fatalf("got %v, want V", d)
	}
}

func TestDecideRejectsCloseCalls(t *testing.T) {
	f := [NumClasses]float64{0.48, 0.52, 0.0}
	// M1-M2 = 0.04, S = 1.0 -> rejected for alpha > 0.04.
	if d := Decide(f, 0.1); d != DecideU {
		t.Fatalf("got %v, want U", d)
	}
	if d := Decide(f, 0.03); d != DecideL {
		t.Fatalf("got %v, want L", d)
	}
}

func TestDecideAlphaMonotone(t *testing.T) {
	// Raising alpha can only move decisions toward U, never change the
	// assigned class.
	r := rng.New(2)
	for i := 0; i < 200; i++ {
		var f [NumClasses]float64
		for l := range f {
			f[l] = r.Float64()
		}
		prev := Decide(f, 0)
		for _, a := range []float64{0.1, 0.3, 0.5, 0.8, 1.0} {
			d := Decide(f, a)
			if d != prev && d != DecideU {
				t.Fatalf("alpha %v changed class from %v to %v", a, prev, d)
			}
			if d == DecideU {
				prev = DecideU
			}
		}
	}
}

func TestDecideDegenerate(t *testing.T) {
	if d := Decide([NumClasses]float64{0, 0, 0}, 0.1); d != DecideU {
		t.Fatalf("all-zero fuzzy values: got %v, want U", d)
	}
	if d := Decide([NumClasses]float64{math.NaN(), 1, 1}, 0.1); d != DecideU {
		t.Fatalf("NaN fuzzy values: got %v, want U", d)
	}
}

func TestVectorRoundTrip(t *testing.T) {
	r := rng.New(3)
	p := NewParams(4)
	for i := range p.C {
		p.C[i] = r.Norm() * 10
		p.Sigma[i] = 0.1 + r.Float64()*5
	}
	x := p.ToVector()
	q := NewParams(4)
	q.FromVector(x)
	for i := range p.C {
		if math.Abs(p.C[i]-q.C[i]) > 1e-12 {
			t.Fatalf("center %d mismatch", i)
		}
		if math.Abs(p.Sigma[i]-q.Sigma[i]) > 1e-12*p.Sigma[i] {
			t.Fatalf("sigma %d mismatch: %v vs %v", i, p.Sigma[i], q.Sigma[i])
		}
	}
}

func TestInitFromData(t *testing.T) {
	r := rng.New(4)
	// Three well-separated clusters in 2-D.
	centers := [NumClasses][2]float64{{0, 0}, {10, 0}, {0, 10}}
	var u [][]float64
	var label []uint8
	for l := 0; l < NumClasses; l++ {
		for i := 0; i < 100; i++ {
			u = append(u, []float64{
				centers[l][0] + r.Norm(),
				centers[l][1] + r.Norm(),
			})
			label = append(label, uint8(l))
		}
	}
	p := InitFromData(2, u, label)
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	for l := 0; l < NumClasses; l++ {
		for kk := 0; kk < 2; kk++ {
			idx := kk*NumClasses + l
			if math.Abs(p.C[idx]-centers[l][kk]) > 0.5 {
				t.Fatalf("class %d coeff %d center %v, want %v", l, kk, p.C[idx], centers[l][kk])
			}
			if p.Sigma[idx] < 0.5 || p.Sigma[idx] > 2 {
				t.Fatalf("class %d coeff %d sigma %v, want ~1", l, kk, p.Sigma[idx])
			}
		}
	}
	// Classification should be near-perfect on such data.
	correct := 0
	for i := range u {
		d := p.Classify(u[i], 0)
		want := []Decision{DecideN, DecideL, DecideV}[label[i]]
		if d == want {
			correct++
		}
	}
	if correct < 295 {
		t.Fatalf("only %d/300 correct on separated clusters", correct)
	}
}

func TestCloneIndependent(t *testing.T) {
	p := NewParams(2)
	q := p.Clone()
	q.C[0] = 99
	if p.C[0] == 99 {
		t.Fatal("clone aliases original")
	}
}
