// Package nfc implements the three-layer neuro-fuzzy classifier of Braojos
// et al. (DATE'13), in the high-precision (floating-point) form used during
// off-line training on the host.
//
// Layer 1 (membership): for each projected coefficient u_k and each class
// l ∈ {N, L, V}, a Gaussian membership function
//
//	µ_k,l(u_k) = exp(-(u_k - c_k,l)² / (2 σ_k,l²))
//
// Layer 2 (fuzzification): per-class product f_l = Π_k µ_k,l, computed in the
// log domain for numerical stability (the ratios between the f_l, which are
// all defuzzification uses, are preserved exactly).
//
// Layer 3 (defuzzification): with M1, M2 the two largest fuzzy values and
// S their sum over classes, the beat is assigned to the arg-max class if
// (M1 - M2) ≥ α·S and to the reject class U ("unknown") otherwise. U, V and
// L count as pathological; only N beats are discarded as normal.
//
// The quantized version deployed on the sensor node lives in internal/fixp.
package nfc

import (
	"errors"
	"fmt"
	"math"
)

// NumClasses is the number of morphology classes the NFC discriminates.
const NumClasses = 3

// Class indices within fuzzy-value vectors, matching ecgsyn.Class order.
const (
	IdxN = 0
	IdxL = 1
	IdxV = 2
)

// Decision is the defuzzification outcome.
type Decision uint8

const (
	DecideN Decision = iota // normal
	DecideL                 // left bundle branch block
	DecideV                 // premature ventricular contraction
	DecideU                 // unknown / rejected
)

// String returns the decision mnemonic.
func (d Decision) String() string {
	switch d {
	case DecideN:
		return "N"
	case DecideL:
		return "L"
	case DecideV:
		return "V"
	case DecideU:
		return "U"
	}
	return fmt.Sprintf("Decision(%d)", uint8(d))
}

// Abnormal reports whether the decision activates the detailed analysis:
// everything except a confident normal.
func (d Decision) Abnormal() bool { return d != DecideN }

// Params holds the membership-function parameters of an NFC with K inputs.
type Params struct {
	K     int
	C     []float64 // centers, K*NumClasses, layout C[k*NumClasses+l]
	Sigma []float64 // standard deviations, same layout, always > 0
}

// NewParams allocates a zero-initialized parameter set (σ = 1).
func NewParams(k int) *Params {
	p := &Params{K: k, C: make([]float64, k*NumClasses), Sigma: make([]float64, k*NumClasses)}
	for i := range p.Sigma {
		p.Sigma[i] = 1
	}
	return p
}

// Validate checks structural invariants.
func (p *Params) Validate() error {
	if p.K <= 0 {
		return errors.New("nfc: non-positive K")
	}
	if len(p.C) != p.K*NumClasses || len(p.Sigma) != p.K*NumClasses {
		return fmt.Errorf("nfc: parameter lengths %d/%d, want %d", len(p.C), len(p.Sigma), p.K*NumClasses)
	}
	for i, s := range p.Sigma {
		if !(s > 0) || math.IsInf(s, 0) || math.IsNaN(s) {
			return fmt.Errorf("nfc: sigma[%d] = %v not positive and finite", i, s)
		}
	}
	return nil
}

// Clone returns a deep copy.
func (p *Params) Clone() *Params {
	q := &Params{K: p.K, C: append([]float64(nil), p.C...), Sigma: append([]float64(nil), p.Sigma...)}
	return q
}

// LogFuzzy computes the log-domain fuzzy values log f_l for the projected
// coefficients u (len K), writing them into out.
func (p *Params) LogFuzzy(u []float64, out *[NumClasses]float64) {
	if len(u) != p.K {
		panic(fmt.Sprintf("nfc: input length %d != K=%d", len(u), p.K))
	}
	var z [NumClasses]float64
	for k := 0; k < p.K; k++ {
		base := k * NumClasses
		for l := 0; l < NumClasses; l++ {
			d := (u[k] - p.C[base+l]) / p.Sigma[base+l]
			z[l] -= 0.5 * d * d
		}
	}
	*out = z
}

// Fuzzy computes the fuzzy values f_l normalized so that max_l f_l = 1
// (a common rescaling of all classes, which leaves the defuzzification
// condition (M1-M2) ≥ α·S unchanged and avoids underflow for large K).
func (p *Params) Fuzzy(u []float64) [NumClasses]float64 {
	var z [NumClasses]float64
	p.LogFuzzy(u, &z)
	m := math.Max(z[0], math.Max(z[1], z[2]))
	var f [NumClasses]float64
	for l := range f {
		f[l] = math.Exp(z[l] - m)
	}
	return f
}

// Decide applies the defuzzification rule with coefficient alpha ∈ [0, 1]:
// assign to the arg-max class when the two largest fuzzy values are separated
// by at least alpha times their sum, otherwise reject as U.
func Decide(f [NumClasses]float64, alpha float64) Decision {
	best, second := 0, -1
	for l := 1; l < NumClasses; l++ {
		if f[l] > f[best] {
			best = l
		}
	}
	for l := 0; l < NumClasses; l++ {
		if l == best {
			continue
		}
		if second == -1 || f[l] > f[second] {
			second = l
		}
	}
	sum := f[0] + f[1] + f[2]
	if sum <= 0 || math.IsNaN(sum) {
		return DecideU
	}
	if f[best]-f[second] >= alpha*sum {
		switch best {
		case IdxN:
			return DecideN
		case IdxL:
			return DecideL
		default:
			return DecideV
		}
	}
	return DecideU
}

// Classify runs the full fuzzify + defuzzify pipeline.
func (p *Params) Classify(u []float64, alpha float64) Decision {
	return Decide(p.Fuzzy(u), alpha)
}

// --- parameter vector codec (for the SCG optimizer) ---

// VectorLen returns the optimizer parameter count: a center and a log-sigma
// per (coefficient, class).
func (p *Params) VectorLen() int { return 2 * p.K * NumClasses }

// ToVector serializes the parameters as [c..., log σ...]. Sigmas are
// optimized in the log domain so positivity is structural.
func (p *Params) ToVector() []float64 {
	n := p.K * NumClasses
	x := make([]float64, 2*n)
	copy(x, p.C)
	for i, s := range p.Sigma {
		x[n+i] = math.Log(s)
	}
	return x
}

// FromVector deserializes ToVector output into p.
func (p *Params) FromVector(x []float64) {
	n := p.K * NumClasses
	if len(x) != 2*n {
		panic(fmt.Sprintf("nfc: vector length %d, want %d", len(x), 2*n))
	}
	copy(p.C, x[:n])
	for i := 0; i < n; i++ {
		p.Sigma[i] = math.Exp(x[n+i])
	}
}

// InitFromData sets each membership function to the empirical mean and
// standard deviation of its class along its coefficient — the standard
// data-driven initialization before gradient refinement. Coefficients with
// no class samples keep (0, 1); degenerate deviations are floored to a small
// fraction of the coefficient's global spread.
func InitFromData(k int, u [][]float64, label []uint8) *Params {
	p := NewParams(k)
	var count [NumClasses]float64
	mean := make([]float64, k*NumClasses)
	m2 := make([]float64, k*NumClasses)
	for i, row := range u {
		l := int(label[i])
		count[l]++
		for kk := 0; kk < k; kk++ {
			idx := kk*NumClasses + l
			delta := row[kk] - mean[idx]
			mean[idx] += delta / count[l]
			m2[idx] += delta * (row[kk] - mean[idx])
		}
	}
	// Global spread per coefficient, for flooring sigmas.
	glob := make([]float64, k)
	for kk := 0; kk < k; kk++ {
		var mn, mx float64 = math.Inf(1), math.Inf(-1)
		for _, row := range u {
			if row[kk] < mn {
				mn = row[kk]
			}
			if row[kk] > mx {
				mx = row[kk]
			}
		}
		spread := mx - mn
		if !(spread > 0) || math.IsInf(spread, 0) {
			spread = 1
		}
		glob[kk] = spread
	}
	for kk := 0; kk < k; kk++ {
		for l := 0; l < NumClasses; l++ {
			idx := kk*NumClasses + l
			if count[l] > 1 {
				p.C[idx] = mean[idx]
				sd := math.Sqrt(m2[idx] / (count[l] - 1))
				floor := 0.02 * glob[kk]
				if sd < floor {
					sd = floor
				}
				p.Sigma[idx] = sd
			} else {
				p.C[idx] = 0
				p.Sigma[idx] = glob[kk]
			}
		}
	}
	return p
}
