package nfc

import (
	"fmt"
	"math"
)

// TrainingSet is a labelled collection of projected beats for supervised
// membership-function training.
type TrainingSet struct {
	U     [][]float64 // projected coefficients, each of length K
	Label []uint8     // class index per beat (IdxN / IdxL / IdxV)
	// Weight applies a per-class loss weight: raising the abnormal-class
	// weights unbalances training toward abnormal recall, the role the paper
	// assigns to the α_train choice. A zero value means uniform weights.
	Weight [NumClasses]float64
}

// Validate checks the set is well formed for an NFC with K inputs.
func (ts *TrainingSet) Validate(k int) error {
	if len(ts.U) == 0 {
		return fmt.Errorf("nfc: empty training set")
	}
	if len(ts.U) != len(ts.Label) {
		return fmt.Errorf("nfc: %d inputs but %d labels", len(ts.U), len(ts.Label))
	}
	for i, row := range ts.U {
		if len(row) != k {
			return fmt.Errorf("nfc: beat %d has %d coefficients, want %d", i, len(row), k)
		}
		if ts.Label[i] >= NumClasses {
			return fmt.Errorf("nfc: beat %d has label %d", i, ts.Label[i])
		}
	}
	return nil
}

func (ts *TrainingSet) weights() [NumClasses]float64 {
	w := ts.Weight
	if w[0] == 0 && w[1] == 0 && w[2] == 0 {
		return [NumClasses]float64{1, 1, 1}
	}
	return w
}

// LossGrad evaluates the training objective and its gradient at the
// parameter vector x (layout per Params.ToVector: centers then log-sigmas).
//
// The objective is the class-weighted sum of squared errors between the
// normalized fuzzy outputs ŷ = softmax(log f) and the one-hot target — the
// classical neuro-fuzzy formulation (Sun & Jang; Cetisli & Barkana) that the
// paper trains with scaled conjugate gradient.
func LossGrad(k int, ts *TrainingSet, x []float64, grad []float64) float64 {
	n := k * NumClasses
	if len(x) != 2*n || len(grad) != 2*n {
		panic("nfc: LossGrad vector length mismatch")
	}
	w := ts.weights()
	for i := range grad {
		grad[i] = 0
	}
	// Decode parameters once per evaluation.
	c := x[:n]
	sigma := make([]float64, n)
	for i := 0; i < n; i++ {
		sigma[i] = math.Exp(x[n+i])
	}

	var loss float64
	var z, y [NumClasses]float64
	for bi, u := range ts.U {
		// forward: z_l = Σ_k -(u_k-c)²/(2σ²)
		for l := range z {
			z[l] = 0
		}
		for kk := 0; kk < k; kk++ {
			base := kk * NumClasses
			for l := 0; l < NumClasses; l++ {
				d := (u[kk] - c[base+l]) / sigma[base+l]
				z[l] -= 0.5 * d * d
			}
		}
		// softmax
		m := math.Max(z[0], math.Max(z[1], z[2]))
		var sum float64
		for l := range y {
			y[l] = math.Exp(z[l] - m)
			sum += y[l]
		}
		inv := 1 / sum
		for l := range y {
			y[l] *= inv
		}
		lbl := int(ts.Label[bi])
		wb := w[lbl]
		// loss and dE/dz
		var dot float64 // Σ_l (y_l - t_l) y_l
		var e [NumClasses]float64
		for l := 0; l < NumClasses; l++ {
			t := 0.0
			if l == lbl {
				t = 1
			}
			e[l] = y[l] - t
			loss += wb * e[l] * e[l]
			dot += e[l] * y[l]
		}
		var dz [NumClasses]float64
		for l := 0; l < NumClasses; l++ {
			dz[l] = 2 * wb * y[l] * (e[l] - dot)
		}
		// backprop into c and log-sigma
		for kk := 0; kk < k; kk++ {
			base := kk * NumClasses
			for l := 0; l < NumClasses; l++ {
				idx := base + l
				diff := u[kk] - c[idx]
				s2 := sigma[idx] * sigma[idx]
				// dz_l/dc = (u-c)/σ² ; dz_l/d(logσ) = (u-c)²/σ²
				grad[idx] += dz[l] * diff / s2
				grad[n+idx] += dz[l] * diff * diff / s2
			}
		}
	}
	invN := 1 / float64(len(ts.U))
	loss *= invN
	for i := range grad {
		grad[i] *= invN
	}
	return loss
}

// Objective adapts LossGrad to the scg.Objective signature for an NFC with
// k coefficients over ts.
func Objective(k int, ts *TrainingSet) func(x, grad []float64) float64 {
	return func(x, grad []float64) float64 {
		return LossGrad(k, ts, x, grad)
	}
}
