// Package serve is the HTTP surface of the classification service, shared
// by cmd/rpserve and examples/serve. Two data paths:
//
//   - POST /v1/classify — whole-record batch classification (the exact batch
//     reference path, pipeline.BatchClassify): one request in, one JSON
//     response out.
//   - POST /v1/stream — online classification: the client sends chunks of
//     samples as they are acquired; the server answers with one NDJSON line
//     per finalized beat, flushed as soon as the streaming pipeline emits it
//     (the engine classifies whole chunks at a time via Pipeline.PushChunk,
//     so beats surface in per-chunk bursts), and a final {"done":true}
//     summary.
//
// Both endpoints negotiate the request encoding on Content-Type:
//
//   - application/x-rpbeat-samples selects the binary sample transport
//     (internal/wire frames; the model is referenced with ?model=), the
//     compact uplink for bandwidth-bound WBSN acquisition clients;
//   - anything else is parsed as JSON — {"model":...,"samples":[...]} on
//     /v1/classify, NDJSON {"samples":[...]} chunk lines on /v1/stream —
//     through the hand-rolled internal/wire parser (encoding/json only
//     remains as the HandlerConfig.StdlibJSON A/B baseline).
//
// Responses are always JSON/NDJSON, built by internal/wire's append-style
// encoders into pooled buffers: byte-identical to what encoding/json would
// emit, without its per-request allocations. Data-path serving is
// allocation-free above the engine once the pools are warm.
//
// Both data paths select a model with a catalog reference — "name" (latest
// version) or "name@vN" (pinned) — and fall back to the catalog default.
//
// The admin surface manages the model catalog while streams are in flight:
//
//   - GET    /v1/models        inventory (every version, manifests, default)
//   - POST   /v1/models?name=n upload a model (JSON or binary codec form,
//     sniffed); the catalog recomputes the manifest and assigns the next
//     version
//   - GET    /v1/models/{ref}  manifest detail of one resolved version
//   - DELETE /v1/models/{ref}  retire one explicit version (ref must be
//     name@vN)
//   - PUT    /v1/default       {"model":"ref"} repoints the default
//
// Plus GET /healthz (liveness + the overload counters). Every failure, on
// every route, is rendered as the uniform typed body
// {"error":{"code":"...","message":"..."}} with the status internal/apierr
// assigns to the code; request contexts are plumbed into the engine, so an
// abandoned request stops consuming workers.
//
// Both data paths run behind admission control (internal/overload): a
// per-tenant token-bucket rate limit (X-Tenant header, client IP fallback;
// typed rate_limited) and a two-rung shed ladder — at HandlerConfig.
// MaxStreams open streams, new /v1/stream requests are refused with the
// typed server_overloaded error while /v1/classify stays admitted (stream
// clients degrade to batch), and at MaxBatch in-flight batch requests the
// data path is refused entirely. Refused requests cost one CAS; every
// retryable refusal (and the engine's shutting_down during a drain) carries
// a Retry-After header. Clients always see contract errors, never resets.
package serve

import (
	"bufio"
	"encoding/json"
	"errors"
	"io"
	"net"
	"net/http"
	"strconv"
	"sync"
	"time"

	"rpbeat/internal/apierr"
	"rpbeat/internal/catalog"
	"rpbeat/internal/core"
	"rpbeat/internal/nfc"
	"rpbeat/internal/overload"
	"rpbeat/internal/pipeline"
	"rpbeat/internal/wire"
)

// maxClassifyBytes bounds a /v1/classify request body (~1 hour of one lead
// as JSON numbers).
const maxClassifyBytes = 64 << 20

// maxStreamLineBytes bounds one NDJSON chunk line on /v1/stream. (Binary
// stream chunks are bounded per frame by wire.MaxFrameSamples instead.)
const maxStreamLineBytes = 8 << 20

// maxClassifySamples bounds the decoded lead of one /v1/classify request
// (~3 hours of one 360 Hz lead). The JSON path is implicitly bounded by
// maxClassifyBytes (≥2 body bytes per sample), but width-1 delta frames
// decode at ~1 byte per sample, so the binary path needs its own sample
// bound or a 64 MiB body could expand to a quarter-gigabyte lead.
const maxClassifySamples = 4 << 20

// HandlerConfig tunes the handler; the zero value is the serving default.
type HandlerConfig struct {
	// MaxUploadBytes bounds a POST /v1/models body; default
	// core.MaxModelBytes (the codec's own ceiling).
	MaxUploadBytes int64
	// StdlibJSON routes the data paths' JSON codecs through encoding/json
	// instead of internal/wire — the A/B baseline the serve benchmarks and
	// the codec-equivalence tests compare against. The wire format is
	// identical either way; only cost differs. Off (fast path) by default.
	StdlibJSON bool
	// MaxStreams bounds concurrently open /v1/stream requests. At the
	// bound, new streams are shed with the typed server_overloaded error
	// while batch /v1/classify stays admitted — the shed ladder's first
	// rung (see internal/overload). Zero means unlimited.
	MaxStreams int
	// MaxBatch bounds in-flight /v1/classify requests — the ladder's second
	// rung. Zero means unlimited.
	MaxBatch int
	// RatePerTenant meters data-path request starts per tenant (the
	// X-Tenant header, or the client IP without one) in requests/second;
	// violations get the typed rate_limited error. Zero disables limiting.
	RatePerTenant float64
	// RateBurst is the token-bucket depth per tenant; default
	// max(1, RatePerTenant).
	RateBurst float64
	// Instance names this server replica. When set, every response — typed
	// refusals included — carries it as the X-Rpbeat-Instance header, so a
	// gateway tier (cmd/rpgate) and its load clients can attribute shedding
	// and results to the backend that produced them.
	Instance string
}

type server struct {
	eng        *pipeline.Engine
	maxUpload  int64
	stdlibJSON bool
	gate       *overload.Gate
	limiter    *overload.Limiter
	// scratch pools the per-request working buffers of /v1/classify: the
	// request body bytes, the decoded sample slice, the millivolt
	// conversion, the morphological filter and wavelet-detector buffers,
	// the per-beat classification scratch and the encoded response are all
	// reused across requests instead of allocated per call, so a steady
	// request rate holds a steady working set (the whole batch path is
	// O(1) allocations on a warm scratch).
	scratch sync.Pool
	// chunks pools /v1/stream's per-connection decoded-chunk slices.
	chunks sync.Pool
}

// lineBufs pools the small response buffers behind writeErr and the
// /v1/stream beat/summary/error lines, so steady-state serving writes
// without allocating encoder state per line.
var lineBufs = sync.Pool{New: func() any { b := make([]byte, 0, 1024); return &b }}

// NewHandler builds the HTTP handler serving the engine's model catalog:
// the data endpoints (POST /v1/classify, POST /v1/stream), the admin
// endpoints (GET|POST /v1/models, GET|DELETE /v1/models/{ref},
// PUT /v1/default) and GET /healthz.
func NewHandler(eng *pipeline.Engine, cfg HandlerConfig) http.Handler {
	s := &server{
		eng: eng, maxUpload: cfg.MaxUploadBytes, stdlibJSON: cfg.StdlibJSON,
		gate: overload.NewGate(overload.GateConfig{MaxStreams: cfg.MaxStreams, MaxBatch: cfg.MaxBatch}),
	}
	if cfg.RatePerTenant > 0 {
		s.limiter = overload.NewLimiter(overload.LimiterConfig{Rate: cfg.RatePerTenant, Burst: cfg.RateBurst})
	}
	if s.maxUpload <= 0 {
		s.maxUpload = core.MaxModelBytes
	}
	s.scratch.New = func() any { return new(classifyScratch) }
	s.chunks.New = func() any { b := make([]int32, 0, 1024); return &b }
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", s.health)
	mux.HandleFunc("GET /v1/models", s.listModels)
	mux.HandleFunc("POST /v1/models", s.uploadModel)
	mux.HandleFunc("GET /v1/models/{ref}", s.modelDetail)
	mux.HandleFunc("DELETE /v1/models/{ref}", s.deleteModel)
	mux.HandleFunc("PUT /v1/default", s.setDefault)
	mux.HandleFunc("POST /v1/classify", s.classify)
	mux.HandleFunc("POST /v1/stream", s.stream)
	// Method fallbacks: a known path with the wrong verb answers with the
	// typed method_not_allowed body instead of the mux's plain-text 405
	// (method-qualified patterns above are more specific and win).
	for _, path := range []string{
		"/healthz", "/v1/models", "/v1/models/{ref}", "/v1/default", "/v1/classify", "/v1/stream",
	} {
		mux.HandleFunc(path, s.methodNotAllowed)
	}
	mux.HandleFunc("/", s.notFound)
	return affinityHeaders{next: mux, instance: cfg.Instance}
}

// affinityHeaders decorates every response with the multi-node attribution
// headers: the replica's X-Rpbeat-Instance identity (when configured) and
// an echo of the client's X-Stream-Id affinity token. Both are set before
// the wrapped handler runs, so they ride along on success bodies, typed
// refusals and streamed NDJSON alike — which is what lets a gateway client
// attribute a shed stream to the backend that refused it.
type affinityHeaders struct {
	next     http.Handler
	instance string
}

func (a affinityHeaders) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if a.instance != "" {
		w.Header().Set("X-Rpbeat-Instance", a.instance)
	}
	if id := r.Header.Get("X-Stream-Id"); id != "" {
		w.Header().Set("X-Stream-Id", id)
	}
	a.next.ServeHTTP(w, r)
}

// classifyScratch is one request's reusable buffer set. The decoded sample
// slice lives in batch.Samples (pipeline.BatchScratch carries the whole
// request working set).
type classifyScratch struct {
	body  []byte // raw request body bytes
	batch pipeline.BatchScratch
	resp  []byte // encoded response (fast path)
	beats []Beat // response beat objects (stdlib path)
}

// ErrorResponse is the uniform JSON error body of every endpoint.
type ErrorResponse struct {
	Error apierr.Error `json:"error"`
}

// writeErr renders any error as the typed JSON body, coercing untyped ones
// through apierr.From. The body is built by wire.AppendError in a pooled
// buffer — byte-identical to the json.Encoder rendering of ErrorResponse,
// without the per-error encoder allocations.
func writeErr(w http.ResponseWriter, err error) {
	ae := apierr.From(err)
	bp := lineBufs.Get().(*[]byte)
	buf := wire.AppendError((*bp)[:0], string(ae.Code), ae.Message)
	if ae.Retryable() {
		w.Header().Set("Retry-After", retryAfter)
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(ae.HTTPStatus())
	w.Write(buf)
	*bp = buf[:0]
	lineBufs.Put(bp)
}

// wireErr maps an internal/wire decode failure onto the apierr contract:
// an oversized frame is payload_too_large, everything else (syntax errors,
// malformed frames) is the client's bad_input.
func wireErr(err error) error {
	if errors.Is(err, wire.ErrFrameTooLarge) {
		return apierr.New(apierr.CodePayloadTooLarge, "%v", err)
	}
	return apierr.New(apierr.CodeBadInput, "%v", err)
}

// retryAfter is the Retry-After header value on every retryable refusal
// (overload, rate limit, drain): long enough to thin a retry storm, short
// enough that a fleet recovers promptly after the pressure clears.
const retryAfter = "1"

// tenant identifies the client for rate limiting: the X-Tenant header when
// present (how a gateway or SDK names the paying principal), the client IP
// otherwise.
func tenant(r *http.Request) string {
	if t := r.Header.Get("X-Tenant"); t != "" {
		return t
	}
	if host, _, err := net.SplitHostPort(r.RemoteAddr); err == nil {
		return host
	}
	return r.RemoteAddr
}

func (s *server) methodNotAllowed(w http.ResponseWriter, r *http.Request) {
	writeErr(w, apierr.New(apierr.CodeMethodNotAllowed, "%s not allowed on %s", r.Method, r.URL.Path))
}

func (s *server) notFound(w http.ResponseWriter, r *http.Request) {
	writeErr(w, apierr.New(apierr.CodeNotFound, "no route %s", r.URL.Path))
}

// HealthResponse is the GET /healthz body: liveness plus the overload
// picture — the admission gate's counters and the engine's open-stream
// count — so an operator (or a load balancer) sees shedding as numbers.
type HealthResponse struct {
	OK            bool           `json:"ok"`
	Overload      overload.Stats `json:"overload"`
	EngineStreams int            `json:"engineStreams"`
}

func (s *server) health(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, HealthResponse{
		OK:            true,
		Overload:      s.gate.Stats(),
		EngineStreams: s.eng.OpenStreams(),
	})
}

// snapshot is the per-request catalog view: one atomic load, consistent for
// the request's whole lifetime.
func (s *server) snapshot() *catalog.Snapshot { return s.eng.Catalog().Snapshot() }

// ModelInfo is one model version of the GET /v1/models inventory: its
// manifest plus the serving-side footprints.
type ModelInfo struct {
	catalog.Manifest
	MemoryBytes int  `json:"memoryBytes"` // node tables (what would be flashed)
	HostBytes   int  `json:"hostBytes"`   // node tables + host-side sparse kernel
	Latest      bool `json:"latest,omitempty"`
	Default     bool `json:"default,omitempty"` // what "" resolves to right now
}

// ModelsResponse is the GET /v1/models reply.
type ModelsResponse struct {
	Default string      `json:"default,omitempty"` // the default reference as configured
	Models  []ModelInfo `json:"models"`
}

// modelInfo renders one entry; def is what the default reference resolves
// to right now (nil when unset) and latest the newest entry of e's name —
// resolved once by the caller, not per entry.
func modelInfo(e, def, latest *catalog.Entry) ModelInfo {
	return ModelInfo{
		Manifest:    e.Manifest,
		MemoryBytes: e.Emb.MemoryBytes(),
		HostBytes:   e.Emb.HostBytes(),
		Latest:      e == latest,
		Default:     e == def,
	}
}

func (s *server) listModels(w http.ResponseWriter, r *http.Request) {
	snap := s.snapshot()
	def, _ := snap.Resolve("") // nil default is fine: no entry is flagged
	out := ModelsResponse{Default: snap.Default(), Models: make([]ModelInfo, 0, snap.Len())}
	for _, name := range snap.Names() {
		versions := snap.Versions(name)
		latest := versions[len(versions)-1]
		for _, e := range versions {
			out.Models = append(out.Models, modelInfo(e, def, latest))
		}
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *server) uploadModel(w http.ResponseWriter, r *http.Request) {
	name := r.URL.Query().Get("name")
	if name == "" {
		writeErr(w, apierr.New(apierr.CodeBadInput, "missing ?name= (the model name to version under)"))
		return
	}
	data, err := io.ReadAll(http.MaxBytesReader(w, r.Body, s.maxUpload))
	if err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			writeErr(w, apierr.New(apierr.CodePayloadTooLarge,
				"model upload exceeds %d bytes", tooBig.Limit))
			return
		}
		writeErr(w, err)
		return
	}
	m, err := core.Decode(data)
	if err != nil {
		writeErr(w, apierr.New(apierr.CodeBadInput, "%v", err))
		return
	}
	man, err := s.eng.Catalog().Put(name, m, nil)
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusCreated, man)
}

// ModelDetail is the GET /v1/models/{ref} reply: the resolved version's
// info plus its name's full version list.
type ModelDetail struct {
	ModelInfo
	Versions []int `json:"versions"` // every live version of the name, ascending
}

func (s *server) modelDetail(w http.ResponseWriter, r *http.Request) {
	snap := s.snapshot()
	e, err := snap.Resolve(r.PathValue("ref"))
	if err != nil {
		writeErr(w, err)
		return
	}
	def, _ := snap.Resolve("")
	versions := snap.Versions(e.Manifest.Name)
	detail := ModelDetail{ModelInfo: modelInfo(e, def, versions[len(versions)-1])}
	for _, v := range versions {
		detail.Versions = append(detail.Versions, v.Manifest.Version)
	}
	writeJSON(w, http.StatusOK, detail)
}

// DeleteResponse is the DELETE /v1/models/{ref} reply.
type DeleteResponse struct {
	Deleted string `json:"deleted"` // the retired name@vN
}

func (s *server) deleteModel(w http.ResponseWriter, r *http.Request) {
	ref := r.PathValue("ref")
	name, version, err := catalog.ParseRef(ref)
	if err != nil {
		writeErr(w, err)
		return
	}
	if version == 0 {
		writeErr(w, apierr.New(apierr.CodeBadInput,
			"delete requires an explicit version (%s@vN), not a floating name", name))
		return
	}
	man, err := s.eng.Catalog().Delete(name, version)
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, DeleteResponse{Deleted: man.Ref()})
}

// DefaultRequest is the PUT /v1/default body.
type DefaultRequest struct {
	Model string `json:"model"` // "name" floats with uploads, "name@vN" pins
}

func (s *server) setDefault(w http.ResponseWriter, r *http.Request) {
	var req DefaultRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 4096)).Decode(&req); err != nil {
		writeErr(w, apierr.New(apierr.CodeBadInput, "bad request body: %v", err))
		return
	}
	if err := s.eng.Catalog().SetDefault(req.Model); err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"default": req.Model})
}

// ClassifyRequest is the POST /v1/classify JSON body: one lead of raw ADC
// samples, classified as a whole record against the referenced model (the
// catalog default when Model is empty). With the binary content type the
// body is wire frames instead and the model is referenced with ?model=.
type ClassifyRequest struct {
	Model   string  `json:"model,omitempty"` // catalog reference: name or name@vN
	Samples []int32 `json:"samples"`
}

// Beat is one classified beat of a /v1/classify response: the R-peak sample
// index and the decided class (N, L, V or U).
type Beat struct {
	Sample int    `json:"sample"`
	Class  string `json:"class"`
}

// ClassifyResponse is the POST /v1/classify reply: every detected beat with
// its class, plus per-class counts. Model is the fully resolved version the
// record was classified against.
type ClassifyResponse struct {
	Model  string         `json:"model"` // resolved name@vN
	Total  int            `json:"total"`
	Counts map[string]int `json:"counts"`
	Beats  []Beat         `json:"beats"`
}

// readBody reads the whole request body into buf[:0], MaxBytesReader
// violations and all — io.ReadAll without the fresh allocation per request.
func readBody(buf []byte, r io.Reader) ([]byte, error) {
	buf = buf[:0]
	for {
		if len(buf) == cap(buf) {
			buf = append(buf, 0)[:len(buf)]
		}
		n, err := r.Read(buf[len(buf):cap(buf)])
		buf = buf[:len(buf)+n]
		if err == io.EOF {
			return buf, nil
		}
		if err != nil {
			return buf, err
		}
	}
}

// decodeClassifyRequest reads and decodes a /v1/classify body per the
// negotiated content type into the request scratch, returning the model
// reference and the decoded lead (aliasing sc.batch.Samples).
func (s *server) decodeClassifyRequest(sc *classifyScratch, r *http.Request, body io.Reader) (string, []int32, error) {
	var err error
	sc.body, err = readBody(sc.body, body)
	if err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			return "", nil, apierr.New(apierr.CodePayloadTooLarge, "request exceeds %d bytes", tooBig.Limit)
		}
		if ctxErr := r.Context().Err(); ctxErr != nil {
			return "", nil, ctxErr // canceled/timed out, not the client's body
		}
		// Anything else mid-body (malformed chunked encoding, aborted
		// upload) is the client's fault, as the old decoder path reported.
		return "", nil, apierr.New(apierr.CodeBadInput, "reading request body: %v", err)
	}
	model := ""
	switch {
	case wire.IsSampleContentType(r.Header.Get("Content-Type")):
		sc.batch.Samples = sc.batch.Samples[:0]
		data := sc.body
		for len(data) > 0 {
			sc.batch.Samples, data, err = wire.DecodeFrame(sc.batch.Samples, data)
			if err != nil {
				return "", nil, wireErr(err)
			}
			if len(sc.batch.Samples) > maxClassifySamples {
				return "", nil, apierr.New(apierr.CodePayloadTooLarge,
					"record exceeds %d samples", maxClassifySamples)
			}
		}
	case s.stdlibJSON:
		req := ClassifyRequest{Samples: sc.batch.Samples[:0]}
		if err := json.Unmarshal(sc.body, &req); err != nil {
			return "", nil, apierr.New(apierr.CodeBadInput, "bad request body: %v", err)
		}
		model, sc.batch.Samples = req.Model, req.Samples
	default:
		model, sc.batch.Samples, err = wire.ParseClassify(sc.batch.Samples, sc.body)
		if err != nil {
			return "", nil, wireErr(err)
		}
	}
	if model == "" {
		// The binary transport has no body field for the model; a ?model=
		// query reference works for every content type.
		model = r.URL.Query().Get("model")
	}
	return model, sc.batch.Samples, nil
}

func (s *server) classify(w http.ResponseWriter, r *http.Request) {
	// Admission first, before the body is read: a shed request costs the
	// server nothing but the refusal.
	if err := s.limiter.Allow(tenant(r)); err != nil {
		writeErr(w, err)
		return
	}
	if err := s.gate.AcquireBatch(); err != nil {
		writeErr(w, err)
		return
	}
	defer s.gate.ReleaseBatch()
	sc := s.scratch.Get().(*classifyScratch)
	defer s.scratch.Put(sc)
	model, samples, err := s.decodeClassifyRequest(sc, r, http.MaxBytesReader(w, r.Body, maxClassifyBytes))
	if err != nil {
		writeErr(w, err)
		return
	}
	if len(samples) == 0 {
		writeErr(w, apierr.New(apierr.CodeBadInput, "no samples"))
		return
	}
	entry, err := s.snapshot().Resolve(model)
	if err != nil {
		writeErr(w, err)
		return
	}
	beats, err := pipeline.BatchClassifyInto(r.Context(), entry.Emb, samples, pipeline.Config{}, &sc.batch)
	if err != nil {
		writeErr(w, err)
		return
	}
	if s.stdlibJSON {
		s.writeClassifyStdlib(w, sc, entry.Manifest.Ref(), beats)
		return
	}
	// The response is encoded before the deferred Put, so the pooled
	// buffers are never aliased by a live request.
	sc.resp = wire.AppendClassifyResponse(sc.resp[:0], entry.Manifest.Ref(), beats)
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	w.Write(sc.resp)
}

// writeClassifyStdlib is the encoding/json response path (the A/B
// baseline): the historical Beat-slice + map rendering through json.Encoder.
func (s *server) writeClassifyStdlib(w http.ResponseWriter, sc *classifyScratch, ref string, beats []pipeline.BeatResult) {
	if sc.beats == nil {
		sc.beats = []Beat{} // encode as [], never null
	}
	sc.beats = sc.beats[:0]
	for _, b := range beats {
		sc.beats = append(sc.beats, Beat{Sample: b.Peak, Class: b.Decision.String()})
	}
	writeJSON(w, http.StatusOK, ClassifyResponse{
		Model: ref, Total: len(beats),
		Counts: countDecisions(beats), Beats: sc.beats,
	})
}

// StreamChunk is one NDJSON request line of POST /v1/stream: the next batch
// of raw ADC samples of the patient stream. With the binary content type
// each wire frame is one chunk instead.
type StreamChunk struct {
	Samples []int32 `json:"samples"`
}

// StreamBeat is one NDJSON response line of POST /v1/stream: a beat the
// online pipeline finalized, flushed as soon as it is known.
type StreamBeat struct {
	Sample     int    `json:"sample"`
	Class      string `json:"class"`
	DetectedAt int    `json:"detectedAt"`
}

// StreamDone is the final NDJSON response line of POST /v1/stream,
// summarizing the whole stream after the pipeline drained. Model is the
// resolved version the stream was pinned to at open.
type StreamDone struct {
	Done    bool   `json:"done"`
	Model   string `json:"model"`
	Beats   int    `json:"beats"`
	Samples int    `json:"samples"`
}

// decodeChunkLine decodes one NDJSON chunk line into buf[:0] through the
// configured JSON codec (wire fast parser, or encoding/json as the A/B
// baseline — both reuse buf's backing array across lines, so steady-state
// chunk decoding never reallocates).
func (s *server) decodeChunkLine(buf []int32, line []byte) ([]int32, error) {
	if s.stdlibJSON {
		chunk := StreamChunk{Samples: buf[:0]}
		if err := json.Unmarshal(line, &chunk); err != nil {
			return buf, apierr.New(apierr.CodeBadInput, "bad chunk: %v", err)
		}
		return chunk.Samples, nil
	}
	out, err := wire.ParseChunk(buf, line)
	if err != nil {
		return out, apierr.New(apierr.CodeBadInput, "bad chunk: %v", err)
	}
	return out, nil
}

// stream is the chunked streaming path: each request is one patient stream,
// classified online by the engine's worker pool while the request body is
// still being read. The stream is opened against the catalog snapshot at
// request start and keeps its model version for the whole request, however
// the catalog changes meanwhile.
func (s *server) stream(w http.ResponseWriter, r *http.Request) {
	// Admission first: the rate limiter meters stream starts per tenant,
	// then the gate decides whether a stream slot exists at all. At the
	// shed threshold new streams are refused with the typed
	// server_overloaded error (batch /v1/classify stays admitted — the
	// ladder's "degrade to batch-only" rung); the client saw a contract
	// error before a single body byte was read.
	if err := s.limiter.Allow(tenant(r)); err != nil {
		writeErr(w, err)
		return
	}
	if err := s.gate.AcquireStream(); err != nil {
		writeErr(w, err)
		return
	}
	defer s.gate.ReleaseStream()

	// Beat lines go out while the request body is still uploading; without
	// full duplex the HTTP/1 server discards the rest of the body on the
	// first response write.
	rc := http.NewResponseController(w)
	if err := rc.EnableFullDuplex(); err != nil && r.ProtoMajor == 1 {
		writeErr(w, apierr.New(apierr.CodeInternal, "full-duplex streaming unsupported: %v", err))
		return
	}

	// wmu guards the response writer, the lazily-written header, the shared
	// line buffer and the stopped gate. stopped cuts the sink off once the
	// handler is done with the stream: on a clean Close the engine has
	// already drained every beat, but when Close fails during engine
	// shutdown, queued chunks may still reach the sink after this handler
	// returned — checking the gate under the same lock that covers the
	// writes makes "no sink writes outlive the handler" airtight, not just
	// likely.
	var (
		wmu           sync.Mutex
		headerWritten bool
		stopped       bool
	)
	// The response lines (beat bursts, errors, the final summary) are
	// encoded into one pooled buffer, one Write per burst; all access is
	// under wmu. The buffer returns to the pool only after the stopped gate
	// closes, so a late sink call can never touch a recycled buffer.
	bp := lineBufs.Get().(*[]byte)
	lineBuf := *bp
	var enc *json.Encoder
	if s.stdlibJSON {
		enc = json.NewEncoder(w)
	}
	defer func() {
		wmu.Lock()
		stopped = true
		*bp = lineBuf[:0]
		wmu.Unlock()
		lineBufs.Put(bp)
	}()

	// ensureHeaderLocked makes the first body write carry the NDJSON
	// content type. Callers hold wmu.
	ensureHeaderLocked := func() {
		if !headerWritten {
			headerWritten = true
			w.Header().Set("Content-Type", wire.ContentTypeNDJSON)
		}
	}
	writeDone := func(d StreamDone) {
		wmu.Lock()
		defer wmu.Unlock()
		ensureHeaderLocked()
		if enc != nil {
			enc.Encode(d)
		} else {
			lineBuf = wire.AppendStreamDone(lineBuf[:0], d.Model, d.Beats, d.Samples)
			w.Write(lineBuf)
		}
		rc.Flush()
	}
	// streamErr renders a typed error: as a plain status+body when nothing
	// has been streamed yet, as a trailing NDJSON error line otherwise.
	// All under wmu, so it never interleaves with a sink's beat line.
	streamErr := func(err error) {
		ae := apierr.From(err)
		wmu.Lock()
		defer wmu.Unlock()
		if !headerWritten {
			headerWritten = true
			if ae.Retryable() {
				w.Header().Set("Retry-After", retryAfter)
			}
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(ae.HTTPStatus())
		}
		lineBuf = wire.AppendError(lineBuf[:0], string(ae.Code), ae.Message)
		w.Write(lineBuf)
		rc.Flush()
	}
	markStopped := func() {
		wmu.Lock()
		stopped = true
		wmu.Unlock()
	}

	// The resume handshake: a gateway replaying its failover journal opens
	// the successor stream with X-Rpbeat-Resume-From: B, the absolute index
	// of the first replayed sample. The pipeline then phase-aligns its
	// detector with the interrupted run and reports absolute beat indices,
	// so replayed beats are bit-identical to the original's and the gateway
	// can suppress the already-delivered prefix by sample index alone.
	resumeFrom, err := resumeBase(r)
	if err != nil {
		writeErr(w, err)
		return
	}

	beats := 0
	st, err := s.eng.Open(r.Context(), r.URL.Query().Get("model"), pipeline.Config{BaseSample: resumeFrom},
		func(res []pipeline.BeatResult) {
			wmu.Lock()
			defer wmu.Unlock()
			if stopped {
				return
			}
			ensureHeaderLocked()
			if enc != nil {
				for _, b := range res {
					enc.Encode(StreamBeat{Sample: b.Peak, Class: b.Decision.String(), DetectedAt: b.DetectedAt})
				}
			} else {
				lineBuf = lineBuf[:0]
				for _, b := range res {
					lineBuf = wire.AppendStreamBeat(lineBuf, b.Peak, b.Decision.String(), b.DetectedAt)
				}
				w.Write(lineBuf)
			}
			rc.Flush()
			beats += len(res) // sink calls are serialized per stream
		})
	if err != nil {
		writeErr(w, err)
		return
	}
	model := st.Entry().Manifest.Ref()
	// abort tears the stream down on an error path: no sink writes may
	// outlive this handler.
	abort := func(err error) {
		st.Close()
		markStopped()
		streamErr(err)
	}

	// The decoded-chunk slice is pooled across connections and reused
	// across every chunk of this one.
	cp := s.chunks.Get().(*[]int32)
	chunkBuf := *cp
	defer func() {
		*cp = chunkBuf[:0]
		s.chunks.Put(cp)
	}()

	samples := 0
	if wire.IsSampleContentType(r.Header.Get("Content-Type")) {
		// Binary uplink: one wire frame per chunk.
		fr := wire.NewFrameReader(r.Body)
		for {
			var err error
			chunkBuf, err = fr.Next(chunkBuf)
			if err == io.EOF {
				break
			}
			if err != nil {
				// Only typed decode failures are the client's bad_input;
				// transport errors (disconnect, cancellation) keep their
				// own classification, as the NDJSON scanner path does.
				var fe *wire.FrameError
				if errors.As(err, &fe) || errors.Is(err, wire.ErrFrameTooLarge) {
					err = wireErr(err)
				}
				abort(err)
				return
			}
			samples += len(chunkBuf)
			if err := s.sendWithBackpressure(r, st, chunkBuf); err != nil {
				abort(err)
				return
			}
		}
	} else {
		sc := bufio.NewScanner(r.Body)
		sc.Buffer(make([]byte, 64*1024), maxStreamLineBytes)
		for sc.Scan() {
			line := sc.Bytes()
			if len(line) == 0 {
				continue
			}
			var err error
			chunkBuf, err = s.decodeChunkLine(chunkBuf, line)
			if err != nil {
				abort(err)
				return
			}
			samples += len(chunkBuf)
			if err := s.sendWithBackpressure(r, st, chunkBuf); err != nil {
				abort(err)
				return
			}
		}
		if err := sc.Err(); err != nil {
			if errors.Is(err, bufio.ErrTooLong) {
				err = apierr.New(apierr.CodePayloadTooLarge,
					"stream line exceeds %d bytes", maxStreamLineBytes)
			}
			abort(err)
			return
		}
	}
	// Close drains the pipeline; every remaining beat hits the sink before
	// it returns, so the summary line is genuinely last.
	if err := st.Close(); err != nil {
		markStopped()
		streamErr(err)
		return
	}
	markStopped()
	writeDone(StreamDone{Done: true, Model: model, Beats: beats, Samples: samples})
}

// ResumeFromHeader carries the resume handshake of POST /v1/stream: the
// absolute sample index the request body starts at. Beat and done lines
// report indices in the original stream's space; the beats/samples counts of
// the done line stay per-connection (the resuming tier does its own total
// accounting).
const ResumeFromHeader = wire.ResumeFromHeader

// resumeBase parses the resume handshake header; absent means 0 (a stream
// starting at its true beginning), malformed or negative is the client's
// bad_input.
func resumeBase(r *http.Request) (int, error) {
	h := r.Header.Get(ResumeFromHeader)
	if h == "" {
		return 0, nil
	}
	base, err := strconv.Atoi(h)
	if err != nil || base < 0 {
		return 0, apierr.New(apierr.CodeBadInput,
			"%s: %q is not a non-negative sample index", ResumeFromHeader, h)
	}
	return base, nil
}

// sendWithBackpressure forwards one chunk to the stream, converting the
// engine's typed stream_overloaded into what HTTP already has for this:
// backpressure. While the per-stream queue is full the handler simply stops
// reading the request body (retrying the send), which stalls the client's
// upload through TCP until the worker pool catches up. Only a queue that
// stays full for a whole overloadPatience — a wedged pool, not a burst —
// surfaces the typed error to the client.
func (s *server) sendWithBackpressure(r *http.Request, st *pipeline.Stream, samples []int32) error {
	err := st.Send(r.Context(), samples)
	if !apierr.IsCode(err, apierr.CodeStreamOverloaded) {
		return err
	}
	deadline := time.Now().Add(overloadPatience)
	for {
		select {
		case <-r.Context().Done():
			return r.Context().Err()
		case <-time.After(overloadRetryDelay):
		}
		if err := st.Send(r.Context(), samples); !apierr.IsCode(err, apierr.CodeStreamOverloaded) {
			return err
		}
		if time.Now().After(deadline) {
			return apierr.New(apierr.CodeStreamOverloaded,
				"stream queue stayed full for %v; worker pool cannot keep up", overloadPatience)
		}
	}
}

const (
	// overloadPatience is how long /v1/stream blocks the request body on a
	// full stream queue before giving up with the typed overload error.
	overloadPatience = 30 * time.Second
	// overloadRetryDelay paces the send retries while backpressuring.
	overloadRetryDelay = 10 * time.Millisecond
)

func countDecisions(beats []pipeline.BeatResult) map[string]int {
	counts := map[string]int{
		nfc.DecideN.String(): 0, nfc.DecideL.String(): 0,
		nfc.DecideV.String(): 0, nfc.DecideU.String(): 0,
	}
	for _, b := range beats {
		counts[b.Decision.String()]++
	}
	return counts
}

// writeJSON renders an admin-surface success body through encoding/json
// (those endpoints are cold; the data paths use internal/wire instead).
func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(v)
}
