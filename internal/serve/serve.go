// Package serve is the HTTP surface of the classification service, shared
// by cmd/rpserve and examples/serve. Two data paths:
//
//   - POST /v1/classify — whole-record batch classification (the exact batch
//     reference path, pipeline.BatchClassify): one JSON request in, one JSON
//     response out.
//   - POST /v1/stream — online classification over NDJSON: the client sends
//     lines of {"samples":[...]} chunks as they are acquired; the server
//     answers with one NDJSON line per finalized beat, flushed as soon as
//     the streaming pipeline emits it (the engine classifies whole chunks
//     at a time via Pipeline.PushChunk, so beats surface in per-chunk
//     bursts), and a final {"done":true} summary.
//
// Both select a model with a catalog reference — "name" (latest version) or
// "name@vN" (pinned) — and fall back to the catalog default.
//
// The admin surface manages the model catalog while streams are in flight:
//
//   - GET    /v1/models        inventory (every version, manifests, default)
//   - POST   /v1/models?name=n upload a model (JSON or binary codec form,
//     sniffed); the catalog recomputes the manifest and assigns the next
//     version
//   - GET    /v1/models/{ref}  manifest detail of one resolved version
//   - DELETE /v1/models/{ref}  retire one explicit version (ref must be
//     name@vN)
//   - PUT    /v1/default       {"model":"ref"} repoints the default
//
// Plus GET /healthz. Every failure, on every route, is rendered as the
// uniform typed body {"error":{"code":"...","message":"..."}} with the
// status internal/apierr assigns to the code; request contexts are plumbed
// into the engine, so an abandoned request stops consuming workers.
package serve

import (
	"bufio"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"sync"
	"time"

	"rpbeat/internal/apierr"
	"rpbeat/internal/catalog"
	"rpbeat/internal/core"
	"rpbeat/internal/nfc"
	"rpbeat/internal/pipeline"
)

// maxClassifyBytes bounds a /v1/classify request body (~1 hour of one lead
// as JSON numbers).
const maxClassifyBytes = 64 << 20

// maxStreamLineBytes bounds one NDJSON chunk line on /v1/stream.
const maxStreamLineBytes = 8 << 20

// HandlerConfig tunes the handler; the zero value is the serving default.
type HandlerConfig struct {
	// MaxUploadBytes bounds a POST /v1/models body; default
	// core.MaxModelBytes (the codec's own ceiling).
	MaxUploadBytes int64
}

type server struct {
	eng       *pipeline.Engine
	maxUpload int64
	// scratch pools the per-request working buffers of /v1/classify: the
	// millivolt conversion, the morphological filter and wavelet-detector
	// buffers, the per-beat classification scratch and the response beat
	// slices are all reused across requests instead of allocated per call,
	// so a steady request rate holds a steady working set (the whole batch
	// path is O(1) allocations on a warm scratch).
	scratch sync.Pool
}

// NewHandler builds the HTTP handler serving the engine's model catalog:
// the data endpoints (POST /v1/classify, POST /v1/stream), the admin
// endpoints (GET|POST /v1/models, GET|DELETE /v1/models/{ref},
// PUT /v1/default) and GET /healthz.
func NewHandler(eng *pipeline.Engine, cfg HandlerConfig) http.Handler {
	s := &server{eng: eng, maxUpload: cfg.MaxUploadBytes}
	if s.maxUpload <= 0 {
		s.maxUpload = core.MaxModelBytes
	}
	s.scratch.New = func() any { return new(classifyScratch) }
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", s.health)
	mux.HandleFunc("GET /v1/models", s.listModels)
	mux.HandleFunc("POST /v1/models", s.uploadModel)
	mux.HandleFunc("GET /v1/models/{ref}", s.modelDetail)
	mux.HandleFunc("DELETE /v1/models/{ref}", s.deleteModel)
	mux.HandleFunc("PUT /v1/default", s.setDefault)
	mux.HandleFunc("POST /v1/classify", s.classify)
	mux.HandleFunc("POST /v1/stream", s.stream)
	// Method fallbacks: a known path with the wrong verb answers with the
	// typed method_not_allowed body instead of the mux's plain-text 405
	// (method-qualified patterns above are more specific and win).
	for _, path := range []string{
		"/healthz", "/v1/models", "/v1/models/{ref}", "/v1/default", "/v1/classify", "/v1/stream",
	} {
		mux.HandleFunc(path, s.methodNotAllowed)
	}
	mux.HandleFunc("/", s.notFound)
	return mux
}

// classifyScratch is one request's reusable buffer set.
type classifyScratch struct {
	batch pipeline.BatchScratch
	beats []Beat
}

// ErrorResponse is the uniform JSON error body of every endpoint.
type ErrorResponse struct {
	Error apierr.Error `json:"error"`
}

// writeErr renders any error as the typed JSON body, coercing untyped ones
// through apierr.From.
func writeErr(w http.ResponseWriter, err error) {
	ae := apierr.From(err)
	writeJSON(w, ae.HTTPStatus(), ErrorResponse{Error: *ae})
}

func (s *server) methodNotAllowed(w http.ResponseWriter, r *http.Request) {
	writeErr(w, apierr.New(apierr.CodeMethodNotAllowed, "%s not allowed on %s", r.Method, r.URL.Path))
}

func (s *server) notFound(w http.ResponseWriter, r *http.Request) {
	writeErr(w, apierr.New(apierr.CodeNotFound, "no route %s", r.URL.Path))
}

func (s *server) health(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"ok": true})
}

// snapshot is the per-request catalog view: one atomic load, consistent for
// the request's whole lifetime.
func (s *server) snapshot() *catalog.Snapshot { return s.eng.Catalog().Snapshot() }

// ModelInfo is one model version of the GET /v1/models inventory: its
// manifest plus the serving-side footprints.
type ModelInfo struct {
	catalog.Manifest
	MemoryBytes int  `json:"memoryBytes"` // node tables (what would be flashed)
	HostBytes   int  `json:"hostBytes"`   // node tables + host-side sparse kernel
	Latest      bool `json:"latest,omitempty"`
	Default     bool `json:"default,omitempty"` // what "" resolves to right now
}

// ModelsResponse is the GET /v1/models reply.
type ModelsResponse struct {
	Default string      `json:"default,omitempty"` // the default reference as configured
	Models  []ModelInfo `json:"models"`
}

// modelInfo renders one entry; def is what the default reference resolves
// to right now (nil when unset) and latest the newest entry of e's name —
// resolved once by the caller, not per entry.
func modelInfo(e, def, latest *catalog.Entry) ModelInfo {
	return ModelInfo{
		Manifest:    e.Manifest,
		MemoryBytes: e.Emb.MemoryBytes(),
		HostBytes:   e.Emb.HostBytes(),
		Latest:      e == latest,
		Default:     e == def,
	}
}

func (s *server) listModels(w http.ResponseWriter, r *http.Request) {
	snap := s.snapshot()
	def, _ := snap.Resolve("") // nil default is fine: no entry is flagged
	out := ModelsResponse{Default: snap.Default(), Models: make([]ModelInfo, 0, snap.Len())}
	for _, name := range snap.Names() {
		versions := snap.Versions(name)
		latest := versions[len(versions)-1]
		for _, e := range versions {
			out.Models = append(out.Models, modelInfo(e, def, latest))
		}
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *server) uploadModel(w http.ResponseWriter, r *http.Request) {
	name := r.URL.Query().Get("name")
	if name == "" {
		writeErr(w, apierr.New(apierr.CodeBadInput, "missing ?name= (the model name to version under)"))
		return
	}
	data, err := io.ReadAll(http.MaxBytesReader(w, r.Body, s.maxUpload))
	if err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			writeErr(w, apierr.New(apierr.CodePayloadTooLarge,
				"model upload exceeds %d bytes", tooBig.Limit))
			return
		}
		writeErr(w, err)
		return
	}
	m, err := core.Decode(data)
	if err != nil {
		writeErr(w, apierr.New(apierr.CodeBadInput, "%v", err))
		return
	}
	man, err := s.eng.Catalog().Put(name, m, nil)
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusCreated, man)
}

// ModelDetail is the GET /v1/models/{ref} reply: the resolved version's
// info plus its name's full version list.
type ModelDetail struct {
	ModelInfo
	Versions []int `json:"versions"` // every live version of the name, ascending
}

func (s *server) modelDetail(w http.ResponseWriter, r *http.Request) {
	snap := s.snapshot()
	e, err := snap.Resolve(r.PathValue("ref"))
	if err != nil {
		writeErr(w, err)
		return
	}
	def, _ := snap.Resolve("")
	versions := snap.Versions(e.Manifest.Name)
	detail := ModelDetail{ModelInfo: modelInfo(e, def, versions[len(versions)-1])}
	for _, v := range versions {
		detail.Versions = append(detail.Versions, v.Manifest.Version)
	}
	writeJSON(w, http.StatusOK, detail)
}

// DeleteResponse is the DELETE /v1/models/{ref} reply.
type DeleteResponse struct {
	Deleted string `json:"deleted"` // the retired name@vN
}

func (s *server) deleteModel(w http.ResponseWriter, r *http.Request) {
	ref := r.PathValue("ref")
	name, version, err := catalog.ParseRef(ref)
	if err != nil {
		writeErr(w, err)
		return
	}
	if version == 0 {
		writeErr(w, apierr.New(apierr.CodeBadInput,
			"delete requires an explicit version (%s@vN), not a floating name", name))
		return
	}
	man, err := s.eng.Catalog().Delete(name, version)
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, DeleteResponse{Deleted: man.Ref()})
}

// DefaultRequest is the PUT /v1/default body.
type DefaultRequest struct {
	Model string `json:"model"` // "name" floats with uploads, "name@vN" pins
}

func (s *server) setDefault(w http.ResponseWriter, r *http.Request) {
	var req DefaultRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 4096)).Decode(&req); err != nil {
		writeErr(w, apierr.New(apierr.CodeBadInput, "bad request body: %v", err))
		return
	}
	if err := s.eng.Catalog().SetDefault(req.Model); err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"default": req.Model})
}

// ClassifyRequest is the POST /v1/classify body: one lead of raw ADC
// samples, classified as a whole record against the referenced model (the
// catalog default when Model is empty).
type ClassifyRequest struct {
	Model   string  `json:"model,omitempty"` // catalog reference: name or name@vN
	Samples []int32 `json:"samples"`
}

// Beat is one classified beat of a /v1/classify response: the R-peak sample
// index and the decided class (N, L, V or U).
type Beat struct {
	Sample int    `json:"sample"`
	Class  string `json:"class"`
}

// ClassifyResponse is the POST /v1/classify reply: every detected beat with
// its class, plus per-class counts. Model is the fully resolved version the
// record was classified against.
type ClassifyResponse struct {
	Model  string         `json:"model"` // resolved name@vN
	Total  int            `json:"total"`
	Counts map[string]int `json:"counts"`
	Beats  []Beat         `json:"beats"`
}

func (s *server) classify(w http.ResponseWriter, r *http.Request) {
	var req ClassifyRequest
	body := http.MaxBytesReader(w, r.Body, maxClassifyBytes)
	if err := json.NewDecoder(body).Decode(&req); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			writeErr(w, apierr.New(apierr.CodePayloadTooLarge, "request exceeds %d bytes", tooBig.Limit))
			return
		}
		writeErr(w, apierr.New(apierr.CodeBadInput, "bad request body: %v", err))
		return
	}
	if len(req.Samples) == 0 {
		writeErr(w, apierr.New(apierr.CodeBadInput, "no samples"))
		return
	}
	entry, err := s.snapshot().Resolve(req.Model)
	if err != nil {
		writeErr(w, err)
		return
	}
	sc := s.scratch.Get().(*classifyScratch)
	defer s.scratch.Put(sc)
	beats, err := pipeline.BatchClassifyInto(r.Context(), entry.Emb, req.Samples, pipeline.Config{}, &sc.batch)
	if err != nil {
		writeErr(w, err)
		return
	}
	if sc.beats == nil {
		sc.beats = []Beat{} // encode as [], never null
	}
	sc.beats = sc.beats[:0]
	for _, b := range beats {
		sc.beats = append(sc.beats, Beat{Sample: b.Peak, Class: b.Decision.String()})
	}
	// The response is encoded before the deferred Put, so the pooled beat
	// slice is never aliased by a live request.
	resp := ClassifyResponse{
		Model: entry.Manifest.Ref(), Total: len(beats),
		Counts: countDecisions(beats), Beats: sc.beats,
	}
	writeJSON(w, http.StatusOK, resp)
}

// StreamChunk is one NDJSON request line of POST /v1/stream: the next batch
// of raw ADC samples of the patient stream.
type StreamChunk struct {
	Samples []int32 `json:"samples"`
}

// StreamBeat is one NDJSON response line of POST /v1/stream: a beat the
// online pipeline finalized, flushed as soon as it is known.
type StreamBeat struct {
	Sample     int    `json:"sample"`
	Class      string `json:"class"`
	DetectedAt int    `json:"detectedAt"`
}

// StreamDone is the final NDJSON response line of POST /v1/stream,
// summarizing the whole stream after the pipeline drained. Model is the
// resolved version the stream was pinned to at open.
type StreamDone struct {
	Done    bool   `json:"done"`
	Model   string `json:"model"`
	Beats   int    `json:"beats"`
	Samples int    `json:"samples"`
}

// stream is the chunked NDJSON path: each request is one patient stream,
// classified online by the engine's worker pool while the request body is
// still being read. The stream is opened against the catalog snapshot at
// request start and keeps its model version for the whole request, however
// the catalog changes meanwhile.
func (s *server) stream(w http.ResponseWriter, r *http.Request) {
	// Beat lines go out while the request body is still uploading; without
	// full duplex the HTTP/1 server discards the rest of the body on the
	// first response write.
	rc := http.NewResponseController(w)
	if err := rc.EnableFullDuplex(); err != nil && r.ProtoMajor == 1 {
		writeErr(w, apierr.New(apierr.CodeInternal, "full-duplex streaming unsupported: %v", err))
		return
	}

	// wmu guards the response writer, the lazily-written header and the
	// stopped gate. stopped cuts the sink off once the handler is done with
	// the stream: on a clean Close the engine has already drained every
	// beat, but when Close fails during engine shutdown, queued chunks may
	// still reach the sink after this handler returned — checking the gate
	// under the same lock that covers the writes makes "no sink writes
	// outlive the handler" airtight, not just likely.
	var (
		wmu           sync.Mutex
		headerWritten bool
		stopped       bool
	)
	enc := json.NewEncoder(w)
	// ensureHeaderLocked makes the first body write carry the NDJSON
	// content type. Callers hold wmu.
	ensureHeaderLocked := func() {
		if !headerWritten {
			headerWritten = true
			w.Header().Set("Content-Type", "application/x-ndjson")
		}
	}
	writeLine := func(v any) {
		wmu.Lock()
		defer wmu.Unlock()
		ensureHeaderLocked()
		enc.Encode(v)
		rc.Flush()
	}
	// streamErr renders a typed error: as a plain status+body when nothing
	// has been streamed yet, as a trailing NDJSON error line otherwise.
	// All under wmu, so it never interleaves with a sink's beat line.
	streamErr := func(err error) {
		ae := apierr.From(err)
		wmu.Lock()
		defer wmu.Unlock()
		if !headerWritten {
			headerWritten = true
			writeJSON(w, ae.HTTPStatus(), ErrorResponse{Error: *ae})
			rc.Flush()
			return
		}
		enc.Encode(ErrorResponse{Error: *ae})
		rc.Flush()
	}
	markStopped := func() {
		wmu.Lock()
		stopped = true
		wmu.Unlock()
	}

	beats := 0
	st, err := s.eng.Open(r.Context(), r.URL.Query().Get("model"), pipeline.Config{},
		func(res []pipeline.BeatResult) {
			wmu.Lock()
			defer wmu.Unlock()
			if stopped {
				return
			}
			ensureHeaderLocked()
			for _, b := range res {
				enc.Encode(StreamBeat{Sample: b.Peak, Class: b.Decision.String(), DetectedAt: b.DetectedAt})
			}
			rc.Flush()
			beats += len(res) // sink calls are serialized per stream
		})
	if err != nil {
		writeErr(w, err)
		return
	}
	model := st.Entry().Manifest.Ref()
	// abort tears the stream down on an error path: no sink writes may
	// outlive this handler.
	abort := func(err error) {
		st.Close()
		markStopped()
		streamErr(err)
	}

	samples := 0
	sc := bufio.NewScanner(r.Body)
	sc.Buffer(make([]byte, 64*1024), maxStreamLineBytes)
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var chunk StreamChunk
		if err := json.Unmarshal(line, &chunk); err != nil {
			abort(apierr.New(apierr.CodeBadInput, "bad chunk: %v", err))
			return
		}
		samples += len(chunk.Samples)
		if err := s.sendWithBackpressure(r, st, chunk.Samples); err != nil {
			abort(err)
			return
		}
	}
	if err := sc.Err(); err != nil {
		if errors.Is(err, bufio.ErrTooLong) {
			err = apierr.New(apierr.CodePayloadTooLarge,
				"stream line exceeds %d bytes", maxStreamLineBytes)
		}
		abort(err)
		return
	}
	// Close drains the pipeline; every remaining beat hits the sink before
	// it returns, so the summary line is genuinely last.
	if err := st.Close(); err != nil {
		markStopped()
		streamErr(err)
		return
	}
	markStopped()
	writeLine(StreamDone{Done: true, Model: model, Beats: beats, Samples: samples})
}

// sendWithBackpressure forwards one chunk to the stream, converting the
// engine's typed stream_overloaded into what HTTP already has for this:
// backpressure. While the per-stream queue is full the handler simply stops
// reading the request body (retrying the send), which stalls the client's
// upload through TCP until the worker pool catches up. Only a queue that
// stays full for a whole overloadPatience — a wedged pool, not a burst —
// surfaces the typed error to the client.
func (s *server) sendWithBackpressure(r *http.Request, st *pipeline.Stream, samples []int32) error {
	err := st.Send(r.Context(), samples)
	if !apierr.IsCode(err, apierr.CodeStreamOverloaded) {
		return err
	}
	deadline := time.Now().Add(overloadPatience)
	for {
		select {
		case <-r.Context().Done():
			return r.Context().Err()
		case <-time.After(overloadRetryDelay):
		}
		if err := st.Send(r.Context(), samples); !apierr.IsCode(err, apierr.CodeStreamOverloaded) {
			return err
		}
		if time.Now().After(deadline) {
			return apierr.New(apierr.CodeStreamOverloaded,
				"stream queue stayed full for %v; worker pool cannot keep up", overloadPatience)
		}
	}
}

const (
	// overloadPatience is how long /v1/stream blocks the request body on a
	// full stream queue before giving up with the typed overload error.
	overloadPatience = 30 * time.Second
	// overloadRetryDelay paces the send retries while backpressuring.
	overloadRetryDelay = 10 * time.Millisecond
)

func countDecisions(beats []pipeline.BeatResult) map[string]int {
	counts := map[string]int{
		nfc.DecideN.String(): 0, nfc.DecideL.String(): 0,
		nfc.DecideV.String(): 0, nfc.DecideU.String(): 0,
	}
	for _, b := range beats {
		counts[b.Decision.String()]++
	}
	return counts
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(v)
}
