// Package serve is the HTTP surface of the classification service, shared
// by cmd/rpserve and examples/serve. Two data paths:
//
//   - POST /v1/classify — whole-record batch classification (the exact batch
//     reference path, pipeline.BatchClassify): one JSON request in, one JSON
//     response out.
//   - POST /v1/stream — online classification over NDJSON: the client sends
//     lines of {"samples":[...]} chunks as they are acquired; the server
//     answers with one NDJSON line per finalized beat, flushed as soon as
//     the streaming pipeline emits it, and a final {"done":true} summary.
//
// Plus GET /v1/models (registry inventory) and GET /healthz.
package serve

import (
	"bufio"
	"encoding/json"
	"fmt"
	"net/http"
	"sync"

	"rpbeat/internal/nfc"
	"rpbeat/internal/pipeline"
)

// maxClassifyBytes bounds a /v1/classify request body (~1 hour of one lead
// as JSON numbers).
const maxClassifyBytes = 64 << 20

// maxStreamLineBytes bounds one NDJSON chunk line on /v1/stream.
const maxStreamLineBytes = 8 << 20

type server struct {
	eng          *pipeline.Engine
	defaultModel string
	// scratch pools the per-request working buffers of /v1/classify: the
	// millivolt conversion, per-beat classification scratch and response
	// beat slices are reused across requests instead of allocated per call,
	// so a steady request rate holds a steady working set.
	scratch sync.Pool
}

// classifyScratch is one request's reusable buffer set.
type classifyScratch struct {
	batch pipeline.BatchScratch
	beats []Beat
}

// NewHandler builds the HTTP handler serving the engine's models:
// POST /v1/classify and /v1/stream, GET /v1/models and /healthz.
// defaultModel names the registry entry used when a request does not pick
// one.
func NewHandler(eng *pipeline.Engine, defaultModel string) http.Handler {
	s := &server{eng: eng, defaultModel: defaultModel}
	s.scratch.New = func() any { return new(classifyScratch) }
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", s.health)
	mux.HandleFunc("GET /v1/models", s.models)
	mux.HandleFunc("POST /v1/classify", s.classify)
	mux.HandleFunc("POST /v1/stream", s.stream)
	return mux
}

func (s *server) health(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"ok": true})
}

// ModelInfo is one entry of the GET /v1/models inventory.
type ModelInfo struct {
	Name        string `json:"name"`
	Coeffs      int    `json:"k"`
	Dim         int    `json:"d"`
	Downsample  int    `json:"downsample"`
	MemoryBytes int    `json:"memoryBytes"`
	Default     bool   `json:"default,omitempty"`
}

func (s *server) models(w http.ResponseWriter, r *http.Request) {
	reg := s.eng.Registry()
	out := make([]ModelInfo, 0)
	for _, name := range reg.Names() {
		emb, err := reg.Get(name)
		if err != nil {
			continue
		}
		out = append(out, ModelInfo{
			Name: name, Coeffs: emb.K, Dim: emb.D, Downsample: emb.Downsample,
			MemoryBytes: emb.MemoryBytes(), Default: name == s.defaultModel,
		})
	}
	writeJSON(w, http.StatusOK, out)
}

// ClassifyRequest is the POST /v1/classify body: one lead of raw ADC
// samples, classified as a whole record against the named model (the
// registry default when Model is empty).
type ClassifyRequest struct {
	Model   string  `json:"model,omitempty"`
	Samples []int32 `json:"samples"`
}

// Beat is one classified beat of a /v1/classify response: the R-peak sample
// index and the decided class (N, L, V or U).
type Beat struct {
	Sample int    `json:"sample"`
	Class  string `json:"class"`
}

// ClassifyResponse is the POST /v1/classify reply: every detected beat with
// its class, plus per-class counts.
type ClassifyResponse struct {
	Model  string         `json:"model"`
	Total  int            `json:"total"`
	Counts map[string]int `json:"counts"`
	Beats  []Beat         `json:"beats"`
}

func (s *server) classify(w http.ResponseWriter, r *http.Request) {
	var req ClassifyRequest
	body := http.MaxBytesReader(w, r.Body, maxClassifyBytes)
	if err := json.NewDecoder(body).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	if len(req.Samples) == 0 {
		httpError(w, http.StatusBadRequest, "no samples")
		return
	}
	name := req.Model
	if name == "" {
		name = s.defaultModel
	}
	emb, err := s.eng.Registry().Get(name)
	if err != nil {
		httpError(w, http.StatusNotFound, "%v", err)
		return
	}
	sc := s.scratch.Get().(*classifyScratch)
	defer s.scratch.Put(sc)
	beats, err := pipeline.BatchClassifyInto(emb, req.Samples, pipeline.Config{}, &sc.batch)
	if err != nil {
		httpError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	if sc.beats == nil {
		sc.beats = []Beat{} // encode as [], never null
	}
	sc.beats = sc.beats[:0]
	for _, b := range beats {
		sc.beats = append(sc.beats, Beat{Sample: b.Peak, Class: b.Decision.String()})
	}
	// The response is encoded before the deferred Put, so the pooled beat
	// slice is never aliased by a live request.
	resp := ClassifyResponse{Model: name, Total: len(beats), Counts: countDecisions(beats), Beats: sc.beats}
	writeJSON(w, http.StatusOK, resp)
}

// StreamChunk is one NDJSON request line of POST /v1/stream: the next batch
// of raw ADC samples of the patient stream.
type StreamChunk struct {
	Samples []int32 `json:"samples"`
}

// StreamBeat is one NDJSON response line of POST /v1/stream: a beat the
// online pipeline finalized, flushed as soon as it is known.
type StreamBeat struct {
	Sample     int    `json:"sample"`
	Class      string `json:"class"`
	DetectedAt int    `json:"detectedAt"`
}

// StreamDone is the final NDJSON response line of POST /v1/stream,
// summarizing the whole stream after the pipeline drained.
type StreamDone struct {
	Done    bool `json:"done"`
	Beats   int  `json:"beats"`
	Samples int  `json:"samples"`
}

// stream is the chunked NDJSON path: each request is one patient stream,
// classified online by the engine's worker pool while the request body is
// still being read.
func (s *server) stream(w http.ResponseWriter, r *http.Request) {
	name := r.URL.Query().Get("model")
	if name == "" {
		name = s.defaultModel
	}
	if _, err := s.eng.Registry().Get(name); err != nil {
		httpError(w, http.StatusNotFound, "%v", err)
		return
	}

	// Beat lines go out while the request body is still uploading; without
	// full duplex the HTTP/1 server discards the rest of the body on the
	// first response write.
	rc := http.NewResponseController(w)
	if err := rc.EnableFullDuplex(); err != nil && r.ProtoMajor == 1 {
		httpError(w, http.StatusInternalServerError, "full-duplex streaming unsupported: %v", err)
		return
	}

	w.Header().Set("Content-Type", "application/x-ndjson")
	var wmu sync.Mutex
	enc := json.NewEncoder(w)
	writeLine := func(v any) {
		wmu.Lock()
		defer wmu.Unlock()
		enc.Encode(v)
		rc.Flush()
	}

	beats := 0
	st, err := s.eng.Open(name, pipeline.Config{}, func(res []pipeline.BeatResult) {
		for _, b := range res {
			writeLine(StreamBeat{Sample: b.Peak, Class: b.Decision.String(), DetectedAt: b.DetectedAt})
		}
		beats += len(res) // sink calls are serialized per stream
	})
	if err != nil {
		httpError(w, http.StatusInternalServerError, "%v", err)
		return
	}

	samples := 0
	sc := bufio.NewScanner(r.Body)
	sc.Buffer(make([]byte, 64*1024), maxStreamLineBytes)
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var chunk StreamChunk
		if err := json.Unmarshal(line, &chunk); err != nil {
			st.Close()
			writeLine(map[string]string{"error": fmt.Sprintf("bad chunk: %v", err)})
			return
		}
		samples += len(chunk.Samples)
		if err := st.Send(chunk.Samples); err != nil {
			st.Close() // no sink writes may outlive this handler
			writeLine(map[string]string{"error": err.Error()})
			return
		}
	}
	if err := sc.Err(); err != nil {
		st.Close()
		writeLine(map[string]string{"error": err.Error()})
		return
	}
	// Close drains the pipeline; every remaining beat hits the sink before
	// it returns, so the summary line is genuinely last.
	if err := st.Close(); err != nil {
		writeLine(map[string]string{"error": err.Error()})
		return
	}
	writeLine(StreamDone{Done: true, Beats: beats, Samples: samples})
}

func countDecisions(beats []pipeline.BeatResult) map[string]int {
	counts := map[string]int{
		nfc.DecideN.String(): 0, nfc.DecideL.String(): 0,
		nfc.DecideV.String(): 0, nfc.DecideU.String(): 0,
	}
	for _, b := range beats {
		counts[b.Decision.String()]++
	}
	return counts
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(v)
}

func httpError(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, map[string]string{"error": fmt.Sprintf(format, args...)})
}
