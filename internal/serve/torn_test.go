package serve

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"rpbeat/internal/apierr"
	"rpbeat/internal/ecgsyn"
	"rpbeat/internal/wire"
)

// tornBody builds a two-frame binary body and returns it with the byte
// offsets that are legitimate frame boundaries (where truncation is a clean
// end of stream, not corruption).
func tornBody(t *testing.T) (body []byte, boundaries map[int]bool) {
	t.Helper()
	lead := ecgsyn.Synthesize(ecgsyn.RecordSpec{Name: "torn", Seconds: 1, Seed: 21, PVCRate: 0}).Leads[0]
	half := len(lead) / 2
	b, err := wire.AppendFrame(nil, lead[:half])
	if err != nil {
		t.Fatal(err)
	}
	boundaries = map[int]bool{0: true, len(b): true}
	b, err = wire.AppendFrame(b, lead[half:])
	if err != nil {
		t.Fatal(err)
	}
	boundaries[len(b)] = true
	return b, boundaries
}

// TestTornFramesClassify truncates a binary /v1/classify body at every byte
// boundary: every mid-frame cut must come back as the typed bad_input error
// — never a hang, a reset, or a 500.
func TestTornFramesClassify(t *testing.T) {
	ts, _, _ := testServer(t)
	body, boundaries := tornBody(t)

	for cut := 0; cut <= len(body); cut++ {
		resp, err := ts.Client().Post(ts.URL+"/v1/classify", wire.ContentTypeSamples, bytes.NewReader(body[:cut]))
		if err != nil {
			t.Fatalf("cut %d: %v", cut, err)
		}
		switch {
		case boundaries[cut] && cut == 0:
			// Empty body: no samples is its own bad_input, message aside.
			wantAPIError(t, resp, http.StatusBadRequest, apierr.CodeBadInput)
		case boundaries[cut]:
			if resp.StatusCode != http.StatusOK {
				raw, _ := io.ReadAll(resp.Body)
				t.Fatalf("clean cut %d: status %d (%s)", cut, resp.StatusCode, raw)
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		default:
			wantAPIError(t, resp, http.StatusBadRequest, apierr.CodeBadInput)
		}
	}
}

// TestTornFramesStream does the same over /v1/stream, the load-driver
// uplink path. A torn frame must surface as a typed bad_input — either as
// the response status (nothing streamed yet) or as a trailing NDJSON error
// line (beats already out) — and the stream must always terminate: no
// stuck handler, no panic.
func TestTornFramesStream(t *testing.T) {
	ts, _, _ := testServer(t)
	body, boundaries := tornBody(t)

	for cut := 0; cut <= len(body); cut++ {
		resp, err := ts.Client().Post(ts.URL+"/v1/stream", wire.ContentTypeSamples, bytes.NewReader(body[:cut]))
		if err != nil {
			t.Fatalf("cut %d: %v", cut, err)
		}
		// Bound the whole read: a stuck stream fails fast instead of
		// hanging the test binary.
		read := make(chan []byte, 1)
		go func() {
			raw, _ := io.ReadAll(resp.Body)
			read <- raw
		}()
		var raw []byte
		select {
		case raw = <-read:
		case <-time.After(30 * time.Second):
			t.Fatalf("cut %d: stream never terminated", cut)
		}
		resp.Body.Close()

		if boundaries[cut] {
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("clean cut %d: status %d (%s)", cut, resp.StatusCode, raw)
			}
			if !strings.Contains(string(raw), `"done":true`) {
				t.Fatalf("clean cut %d: no done line in %q", cut, raw)
			}
			continue
		}
		// Torn: typed bad_input, wherever in the response it lands.
		if resp.StatusCode == http.StatusOK {
			lines := strings.Split(strings.TrimSpace(string(raw)), "\n")
			var last ErrorResponse
			if err := json.Unmarshal([]byte(lines[len(lines)-1]), &last); err != nil || last.Error.Code != apierr.CodeBadInput {
				t.Fatalf("cut %d: last line %q, want trailing bad_input error line", cut, lines[len(lines)-1])
			}
		} else {
			if resp.StatusCode != http.StatusBadRequest {
				t.Fatalf("cut %d: status %d (%s), want 400", cut, resp.StatusCode, raw)
			}
			var body ErrorResponse
			if err := json.Unmarshal(raw, &body); err != nil || body.Error.Code != apierr.CodeBadInput {
				t.Fatalf("cut %d: body %q, want typed bad_input", cut, raw)
			}
		}
	}
}
