package serve

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"

	"rpbeat/internal/apierr"
	"rpbeat/internal/catalog"
	"rpbeat/internal/ecgsyn"
	"rpbeat/internal/pipeline"
	"rpbeat/internal/testutil"
)

// TestModelLifecycleEndToEnd is the full admin story against a live server:
// upload a trained model, classify against it by pinned reference, upload a
// second version, watch the floating name move while the pin stays, retire
// the old version, and get the typed model_not_found afterwards — with the
// pipeline hot path still allocation-free on the uploaded model.
func TestModelLifecycleEndToEnd(t *testing.T) {
	m, _ := testTrainedModel(t)

	// The server starts over an empty catalog: models arrive by upload only.
	cat := catalog.New()
	eng := pipeline.NewEngine(cat, pipeline.EngineConfig{Workers: 2})
	ts := httptest.NewServer(NewHandler(eng, HandlerConfig{}))
	t.Cleanup(func() {
		ts.Close()
		eng.Close()
	})

	lead := ecgsyn.Synthesize(ecgsyn.RecordSpec{Name: "lc", Seconds: 30, Seed: 5, PVCRate: 0.15}).Leads[0]

	classify := func(ref string) (*http.Response, ClassifyResponse) {
		t.Helper()
		body, _ := json.Marshal(ClassifyRequest{Model: ref, Samples: lead})
		resp, err := http.Post(ts.URL+"/v1/classify", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		var out ClassifyResponse
		if resp.StatusCode == http.StatusOK {
			if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
				t.Fatal(err)
			}
			resp.Body.Close()
		}
		return resp, out
	}

	// With nothing uploaded, even the default reference is a typed miss.
	resp, _ := classify("")
	wantAPIError(t, resp, http.StatusNotFound, apierr.CodeModelNotFound)

	// --- upload v1 (binary codec form, as a deployment tool would) ---
	var bin bytes.Buffer
	if err := m.WriteBinary(&bin); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/v1/models?name=ecg", "application/octet-stream", &bin)
	if err != nil {
		t.Fatal(err)
	}
	var man1 catalog.Manifest
	if err := json.NewDecoder(resp.Body).Decode(&man1); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("upload v1: %d", resp.StatusCode)
	}
	if man1.Ref() != "ecg@v1" || man1.Digest == "" {
		t.Fatalf("v1 manifest = %+v", man1)
	}
	wantDigest, err := m.Digest()
	if err != nil {
		t.Fatal(err)
	}
	if man1.Digest != wantDigest {
		t.Fatal("server recomputed a different digest than the client's model")
	}

	// Classify by the pinned reference.
	resp, got := classify("ecg@v1")
	if resp.StatusCode != http.StatusOK || got.Model != "ecg@v1" || got.Total == 0 {
		t.Fatalf("classify ecg@v1: %d, %+v", resp.StatusCode, got)
	}
	v1Total := got.Total

	// Re-uploading identical bytes is a typed conflict, not a new version.
	bin.Reset()
	if err := m.WriteBinary(&bin); err != nil {
		t.Fatal(err)
	}
	resp, err = http.Post(ts.URL+"/v1/models?name=ecg", "application/octet-stream", &bin)
	if err != nil {
		t.Fatal(err)
	}
	wantAPIError(t, resp, http.StatusConflict, apierr.CodeModelExists)

	// --- upload v2: same shape, one projection element flipped (JSON form) ---
	m2 := *m
	P2 := m.P.Clone()
	if P2.El[0] == 0 {
		P2.El[0] = 1
	} else {
		P2.El[0] = 0
	}
	m2.P = P2
	js, err := json.Marshal(&m2)
	if err != nil {
		t.Fatal(err)
	}
	resp, err = http.Post(ts.URL+"/v1/models?name=ecg", "application/json", bytes.NewReader(js))
	if err != nil {
		t.Fatal(err)
	}
	var man2 catalog.Manifest
	if err := json.NewDecoder(resp.Body).Decode(&man2); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated || man2.Ref() != "ecg@v2" {
		t.Fatalf("upload v2: %d, %+v", resp.StatusCode, man2)
	}

	// The floating name now resolves to v2; the pin still serves v1.
	var detail ModelDetail
	resp, err = http.Get(ts.URL + "/v1/models/ecg")
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(resp.Body).Decode(&detail); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if detail.Version != 2 || !detail.Latest || len(detail.Versions) != 2 {
		t.Fatalf("GET /v1/models/ecg = %+v", detail)
	}
	resp, got = classify("ecg")
	if resp.StatusCode != http.StatusOK || got.Model != "ecg@v2" {
		t.Fatalf("classify ecg after v2: %d, model %q", resp.StatusCode, got.Model)
	}
	resp, got = classify("ecg@v1")
	if resp.StatusCode != http.StatusOK || got.Model != "ecg@v1" || got.Total != v1Total {
		t.Fatalf("classify ecg@v1 after v2: %d, %+v", resp.StatusCode, got)
	}

	// --- retire v1 ---
	req, err := http.NewRequest(http.MethodDelete, ts.URL+"/v1/models/ecg@v1", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("delete ecg@v1: %d: %s", resp.StatusCode, raw)
	}
	var del DeleteResponse
	if err := json.Unmarshal(raw, &del); err != nil || del.Deleted != "ecg@v1" {
		t.Fatalf("delete body %s", raw)
	}

	// The retired version is a typed miss; the survivor still serves.
	resp, _ = classify("ecg@v1")
	wantAPIError(t, resp, http.StatusNotFound, apierr.CodeModelNotFound)
	resp, got = classify("ecg")
	if resp.StatusCode != http.StatusOK || got.Model != "ecg@v2" {
		t.Fatalf("survivor broken after delete: %d, %+v", resp.StatusCode, got)
	}

	// --- the uploaded model's hot path is still allocation-free ---
	entry, err := eng.Catalog().Snapshot().Resolve("ecg")
	if err != nil {
		t.Fatal(err)
	}
	pipe, err := pipeline.New(entry.Emb, pipeline.Config{})
	if err != nil {
		t.Fatal(err)
	}
	beats := 0
	for _, v := range lead { // warm-up: rings and FIFOs at capacity
		beats += len(pipe.Push(v))
	}
	if beats == 0 {
		t.Fatal("warm-up emitted no beats")
	}
	next := 0
	testutil.AssertZeroAllocN(t, "steady-state Push on the uploaded model", 10, func() {
		for i := 0; i < 3600; i++ {
			pipe.Push(lead[next])
			next++
			if next == len(lead) {
				next = 0
			}
		}
	})
}
