package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"runtime"
	"testing"

	"rpbeat/internal/apierr"
	"rpbeat/internal/catalog"
	"rpbeat/internal/ecgsyn"
	"rpbeat/internal/pipeline"
	"rpbeat/internal/testutil"
	"rpbeat/internal/wire"
)

// testServerWith boots a handler with an explicit HandlerConfig over the
// shared trained model.
func testServerWith(t *testing.T, cfg HandlerConfig) *httptest.Server {
	t.Helper()
	m, _ := testTrainedModel(t)
	cat := catalog.New()
	if _, err := cat.Put("default", m, nil); err != nil {
		t.Fatal(err)
	}
	eng := pipeline.NewEngine(cat, pipeline.EngineConfig{Workers: 2})
	ts := httptest.NewServer(NewHandler(eng, cfg))
	t.Cleanup(func() {
		ts.Close()
		eng.Close()
	})
	return ts
}

func postBody(t *testing.T, url, contentType string, body []byte) (int, []byte) {
	t.Helper()
	resp, err := http.Post(url, contentType, bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, raw
}

// TestClassifyBinaryMatchesJSON: the same record through the JSON body and
// through binary wire frames must produce byte-identical responses.
func TestClassifyBinaryMatchesJSON(t *testing.T) {
	ts, _, _ := testServer(t)
	lead := ecgsyn.Synthesize(ecgsyn.RecordSpec{Name: "wb", Seconds: 30, Seed: 5, PVCRate: 0.1}).Leads[0]

	jsonBody, _ := json.Marshal(ClassifyRequest{Samples: lead})
	st1, resp1 := postBody(t, ts.URL+"/v1/classify", "application/json", jsonBody)
	if st1 != http.StatusOK {
		t.Fatalf("json classify: %d: %s", st1, resp1)
	}

	binBody := wire.AppendFrames(nil, lead, 1024)
	if len(binBody)*3 > len(jsonBody) {
		t.Fatalf("binary body %d bytes vs json %d: expected at least 3x compaction", len(binBody), len(jsonBody))
	}
	st2, resp2 := postBody(t, ts.URL+"/v1/classify", wire.ContentTypeSamples, binBody)
	if st2 != http.StatusOK {
		t.Fatalf("binary classify: %d: %s", st2, resp2)
	}
	if !bytes.Equal(resp1, resp2) {
		t.Fatalf("binary and JSON responses differ:\njson   %s\nbinary %s", resp1, resp2)
	}

	var got ClassifyResponse
	if err := json.Unmarshal(resp2, &got); err != nil {
		t.Fatal(err)
	}
	if got.Total == 0 || got.Model != "default@v1" {
		t.Fatalf("binary classify response: %+v", got)
	}

	// ?model= selects the model for the binary transport (no body field).
	st3, resp3 := postBody(t, ts.URL+"/v1/classify?model=default@v1", wire.ContentTypeSamples, binBody)
	if st3 != http.StatusOK || !bytes.Equal(resp3, resp2) {
		t.Fatalf("?model= binary classify: %d", st3)
	}
	st4, resp4 := postBody(t, ts.URL+"/v1/classify?model=nope", wire.ContentTypeSamples, binBody)
	if st4 != http.StatusNotFound {
		t.Fatalf("unknown model over binary: %d: %s", st4, resp4)
	}
}

// TestStreamBinaryMatchesNDJSON: the same chunk sequence as NDJSON lines
// and as binary frames must produce byte-identical response streams.
func TestStreamBinaryMatchesNDJSON(t *testing.T) {
	ts, _, _ := testServer(t)
	lead := ecgsyn.Synthesize(ecgsyn.RecordSpec{Name: "ws", Seconds: 30, Seed: 6, PVCRate: 0.1}).Leads[0]

	var ndjson, frames []byte
	for off := 0; off < len(lead); off += 360 {
		end := min(off+360, len(lead))
		line, _ := json.Marshal(StreamChunk{Samples: lead[off:end]})
		ndjson = append(append(ndjson, line...), '\n')
		var err error
		frames, err = wire.AppendFrame(frames, lead[off:end])
		if err != nil {
			t.Fatal(err)
		}
	}
	if len(frames)*3 > len(ndjson) {
		t.Fatalf("binary stream %d bytes vs ndjson %d: expected at least 3x compaction", len(frames), len(ndjson))
	}

	st1, resp1 := postBody(t, ts.URL+"/v1/stream", "application/x-ndjson", ndjson)
	st2, resp2 := postBody(t, ts.URL+"/v1/stream", wire.ContentTypeSamples, frames)
	if st1 != http.StatusOK || st2 != http.StatusOK {
		t.Fatalf("stream statuses: ndjson %d, binary %d", st1, st2)
	}
	if !bytes.Equal(resp1, resp2) {
		t.Fatalf("stream responses differ:\nndjson %s\nbinary %s", resp1, resp2)
	}
	var done StreamDone
	lines := bytes.Split(bytes.TrimSpace(resp2), []byte("\n"))
	if err := json.Unmarshal(lines[len(lines)-1], &done); err != nil {
		t.Fatal(err)
	}
	if !done.Done || done.Samples != len(lead) || done.Beats == 0 {
		t.Fatalf("binary stream summary: %+v", done)
	}
}

// TestStreamBinaryBadFrame: malformed and oversized frames surface as the
// typed error contract.
func TestStreamBinaryBadFrame(t *testing.T) {
	ts, _, _ := testServer(t)

	resp, err := http.Post(ts.URL+"/v1/stream", wire.ContentTypeSamples, bytes.NewReader([]byte("XXXXjunk.....")))
	if err != nil {
		t.Fatal(err)
	}
	wantAPIError(t, resp, http.StatusBadRequest, apierr.CodeBadInput)

	// A declared count beyond MaxFrameSamples: rejected before allocation.
	huge := []byte{'R', 'P', 'B', 'S', 1, 4, 0xff, 0xff, 0xff, 0xff}
	resp, err = http.Post(ts.URL+"/v1/stream", wire.ContentTypeSamples, bytes.NewReader(huge))
	if err != nil {
		t.Fatal(err)
	}
	wantAPIError(t, resp, http.StatusRequestEntityTooLarge, apierr.CodePayloadTooLarge)

	// Truncated mid-frame: typed bad_input, not a hang or a panic.
	good, _ := wire.AppendFrame(nil, []int32{1, 2, 3, 4})
	resp, err = http.Post(ts.URL+"/v1/classify", wire.ContentTypeSamples, bytes.NewReader(good[:len(good)-2]))
	if err != nil {
		t.Fatal(err)
	}
	wantAPIError(t, resp, http.StatusBadRequest, apierr.CodeBadInput)

	// A body of individually-legal frames that decodes past the per-request
	// sample bound: width-1 delta frames expand ~4x beyond what the same
	// bytes could carry as JSON, so the sample count is bounded directly —
	// the decode loop stops at the first frame over the limit.
	flat := make([]int32, 1<<20)
	var big []byte
	for i := 0; i < 5; i++ { // 5 Mi samples > maxClassifySamples (4 Mi)
		if big, err = wire.AppendFrame(big, flat); err != nil {
			t.Fatal(err)
		}
	}
	resp, err = http.Post(ts.URL+"/v1/classify", wire.ContentTypeSamples, bytes.NewReader(big))
	if err != nil {
		t.Fatal(err)
	}
	wantAPIError(t, resp, http.StatusRequestEntityTooLarge, apierr.CodePayloadTooLarge)
}

// TestCodecEquivalenceStdlibVsFast drives identical requests through a fast
// handler and a StdlibJSON handler: every success response — batch and
// stream — must be byte-identical, and every failure must carry the same
// status and machine-readable code (messages may differ: each codec reports
// its own diagnostics). This is the A/B guarantee that makes the fast codec
// invisible on the wire.
func TestCodecEquivalenceStdlibVsFast(t *testing.T) {
	fast := testServerWith(t, HandlerConfig{})
	std := testServerWith(t, HandlerConfig{StdlibJSON: true})
	lead := ecgsyn.Synthesize(ecgsyn.RecordSpec{Name: "ab", Seconds: 20, Seed: 9, PVCRate: 0.2}).Leads[0]

	classifyBody, _ := json.Marshal(ClassifyRequest{Model: "default", Samples: lead})
	var ndjson []byte
	for off := 0; off < len(lead); off += 512 {
		end := min(off+512, len(lead))
		line, _ := json.Marshal(StreamChunk{Samples: lead[off:end]})
		ndjson = append(append(ndjson, line...), '\n')
	}
	cases := []struct {
		name, path, ct string
		body           []byte
	}{
		{"classify", "/v1/classify", "application/json", classifyBody},
		{"classify with whitespace", "/v1/classify", "application/json",
			[]byte(" {\n\t\"samples\" : [ 1017 , 1020, 1013, 998, 1004, 1011, 1002, 997, 1003, 1008," +
				" 1017 , 1020, 1013, 998, 1004, 1011, 1002, 997, 1003, 1008 ] } ")},
		{"classify folded keys", "/v1/classify", "application/json",
			[]byte(`{"SAMPLES":[1017,1020,1013,998,1004,1011,1002,997,1003,1008],"MODEL":"default"}`)},
		{"classify bad json", "/v1/classify", "application/json", []byte(`{"samples":[1,}`)},
		{"classify float sample", "/v1/classify", "application/json", []byte(`{"samples":[1.5]}`)},
		{"classify no samples", "/v1/classify", "application/json", []byte(`{"samples":[]}`)},
		{"classify unknown model", "/v1/classify", "application/json", []byte(`{"model":"nope","samples":[1,2,3]}`)},
		{"stream", "/v1/stream", "application/x-ndjson", ndjson},
		{"stream bad chunk", "/v1/stream", "application/x-ndjson", []byte("{\"samples\":[1,2]}\nnot json\n")},
	}
	for _, c := range cases {
		stF, respF := postBody(t, fast.URL+c.path, c.ct, c.body)
		stS, respS := postBody(t, std.URL+c.path, c.ct, c.body)
		if stF != stS {
			t.Fatalf("%s: status fast %d != stdlib %d", c.name, stF, stS)
		}
		if stF == http.StatusOK && !bytes.HasPrefix(respF, []byte(`{"error"`)) {
			// Success bodies must match byte for byte.
			if !bytes.Equal(respF, respS) {
				t.Fatalf("%s: responses differ:\nfast   %s\nstdlib %s", c.name, respF, respS)
			}
			continue
		}
		// Error bodies carry codec-specific diagnostics in the message;
		// the machine-readable contract (the code) must agree.
		var errF, errS ErrorResponse
		lastF := respF[bytes.LastIndexByte(bytes.TrimSpace(respF), '\n')+1:]
		lastS := respS[bytes.LastIndexByte(bytes.TrimSpace(respS), '\n')+1:]
		if err := json.Unmarshal(lastF, &errF); err != nil {
			t.Fatalf("%s: fast error body %s: %v", c.name, respF, err)
		}
		if err := json.Unmarshal(lastS, &errS); err != nil {
			t.Fatalf("%s: stdlib error body %s: %v", c.name, respS, err)
		}
		if errF.Error.Code != errS.Error.Code {
			t.Fatalf("%s: error code fast %q != stdlib %q", c.name, errF.Error.Code, errS.Error.Code)
		}
	}
}

// TestDecodeChunkLineReusesBuffer pins the satellite contract directly on
// the handler's chunk decoder: across NDJSON lines the decoded samples
// reuse one backing array (both codecs), and the fast path decodes a warm
// line with zero allocations.
func TestDecodeChunkLineReusesBuffer(t *testing.T) {
	lines := [][]byte{
		[]byte(`{"samples":[1017,1020,1013,998]}`),
		[]byte(`{"samples":[1,2,3,4,5,6,7,8]}`),
		[]byte(`{"samples":[-5]}`),
	}
	for _, stdlib := range []bool{false, true} {
		s := &server{stdlibJSON: stdlib}
		buf := make([]int32, 0, 64)
		base := &buf[:1][0]
		for round := 0; round < 10; round++ {
			for _, line := range lines {
				var err error
				buf, err = s.decodeChunkLine(buf, line)
				if err != nil {
					t.Fatal(err)
				}
			}
		}
		if &buf[:1][0] != base {
			t.Fatalf("stdlib=%v: chunk slice was reallocated across lines", stdlib)
		}
	}

	s := &server{}
	buf := make([]int32, 0, 64)
	line := lines[0]
	var decErr error
	testutil.AssertZeroAlloc(t, "fast decodeChunkLine on a warm buffer", func() {
		buf, decErr = s.decodeChunkLine(buf, line)
	})
	if decErr != nil {
		t.Fatal(decErr)
	}
}

// TestStreamServeRowZeroAlloc is the stream serve row's invariant end to
// end above HTTP: decoding a chunk line through the handler's codec and
// pushing it through an engine stream — the whole per-chunk serving path
// between the socket and the classifier — allocates nothing at steady
// state (worker-side allocations included; AllocsPerRun counts globally).
func TestStreamServeRowZeroAlloc(t *testing.T) {
	m, _ := testTrainedModel(t)
	cat := catalog.New()
	if _, err := cat.Put("m", m, nil); err != nil {
		t.Fatal(err)
	}
	eng := pipeline.NewEngine(cat, pipeline.EngineConfig{Workers: 1})
	defer eng.Close()
	ctx := context.Background()
	st, err := eng.Open(ctx, "m", pipeline.Config{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()

	lead := ecgsyn.Synthesize(ecgsyn.RecordSpec{Name: "za", Seconds: 60, Seed: 3, PVCRate: 0.1}).Leads[0]
	var lines [][]byte
	for off := 0; off+360 <= len(lead); off += 360 {
		line, _ := json.Marshal(StreamChunk{Samples: lead[off : off+360]})
		lines = append(lines, line)
	}
	srv := &server{}
	buf := make([]int32, 0, 512)
	drain := func() {
		for st.PendingSamples() > 0 {
			runtime.Gosched()
		}
	}
	// Warm-up: a full pass grows every ring, FIFO and pool to steady state.
	for _, line := range lines {
		if buf, err = srv.decodeChunkLine(buf, line); err != nil {
			t.Fatal(err)
		}
		if err := st.Send(ctx, buf); err != nil {
			t.Fatal(err)
		}
	}
	drain()

	next := 0
	var loopErr error
	testutil.AssertZeroAllocN(t, "steady-state stream serving (5 chunks per run)", 10, func() {
		for i := 0; i < 5; i++ {
			buf, loopErr = srv.decodeChunkLine(buf, lines[next])
			if loopErr != nil {
				return
			}
			if loopErr = st.Send(ctx, buf); loopErr != nil {
				return
			}
			next = (next + 1) % len(lines)
			drain()
		}
	})
	if loopErr != nil {
		t.Fatal(loopErr)
	}
}
