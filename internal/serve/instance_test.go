package serve

import (
	"net/http"
	"testing"
)

// TestInstanceHeader: a replica configured with Instance stamps
// X-Rpbeat-Instance on every response — success, typed refusal, even an
// unknown route — and echoes the client's X-Stream-Id affinity token. This
// is how a gateway tier (internal/gate) and the load harness attribute
// shedding to the backend that did it.
func TestInstanceHeader(t *testing.T) {
	ts := testServerWith(t, HandlerConfig{Instance: "b7"})

	do := func(method, path string, hdr map[string]string) *http.Response {
		t.Helper()
		req, err := http.NewRequest(method, ts.URL+path, nil)
		if err != nil {
			t.Fatal(err)
		}
		for k, v := range hdr {
			req.Header.Set(k, v)
		}
		resp, err := ts.Client().Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp
	}

	cases := []struct {
		name, method, path string
		wantStatus         int
	}{
		{"healthz", http.MethodGet, "/healthz", http.StatusOK},
		{"typed not found", http.MethodGet, "/v1/models/nope", http.StatusNotFound},
		{"unknown route", http.MethodGet, "/v1/bogus", http.StatusNotFound},
		{"wrong method", http.MethodGet, "/v1/classify", http.StatusMethodNotAllowed},
	}
	for _, tc := range cases {
		resp := do(tc.method, tc.path, map[string]string{"X-Stream-Id": "patient-42"})
		if resp.StatusCode != tc.wantStatus {
			t.Fatalf("%s: status %d, want %d", tc.name, resp.StatusCode, tc.wantStatus)
		}
		if got := resp.Header.Get("X-Rpbeat-Instance"); got != "b7" {
			t.Fatalf("%s: X-Rpbeat-Instance %q, want b7", tc.name, got)
		}
		if got := resp.Header.Get("X-Stream-Id"); got != "patient-42" {
			t.Fatalf("%s: X-Stream-Id echo %q, want patient-42", tc.name, got)
		}
	}

	// Without Instance configured, no header is invented.
	plain := testServerWith(t, HandlerConfig{})
	resp, err := plain.Client().Get(plain.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if got := resp.Header.Get("X-Rpbeat-Instance"); got != "" {
		t.Fatalf("unconfigured replica leaked X-Rpbeat-Instance %q", got)
	}
}
