package serve

import (
	"bufio"
	"bytes"
	"encoding/json"
	"net/http"
	"sync"
	"testing"

	"rpbeat/internal/apierr"
	"rpbeat/internal/beatset"
	"rpbeat/internal/catalog"
	"rpbeat/internal/core"
	"rpbeat/internal/ecgsyn"
	"rpbeat/internal/fixp"
	"rpbeat/internal/pipeline"
)

var (
	bitembOnce sync.Once
	bitembVal  *core.Model
	bitembEmb  *core.Embedded
	bitembErr  error
)

// testTrainedBitembModel trains one reduced-scale binary-embedding model per
// test binary — the second head kind served next to the fuzzy default.
func testTrainedBitembModel(t *testing.T) (*core.Model, *core.Embedded) {
	t.Helper()
	bitembOnce.Do(func() {
		ds, err := beatset.Build(beatset.Config{Seed: 31, Scale: 0.03})
		if err != nil {
			bitembErr = err
			return
		}
		m, _, err := core.TrainBitemb(ds, core.Config{
			Coeffs: 8, Downsample: 4, PopSize: 4, Generations: 2,
			MinARR: 0.9, Seed: 31,
		})
		if err != nil {
			bitembErr = err
			return
		}
		bitembVal = m
		bitembEmb, bitembErr = m.Quantize(fixp.MFLinear)
	})
	if bitembErr != nil {
		t.Fatal(bitembErr)
	}
	return bitembVal, bitembEmb
}

// TestBitembUploadAndPinnedStream drives the binary head through the whole
// serving surface: upload through POST /v1/models (the manifest reports the
// kind), inventory through GET /v1/models, then a pinned /v1/stream whose
// beats must be bit-identical to a sequential pipeline run of the same
// model — all while the catalog's default stays the fuzzy model.
func TestBitembUploadAndPinnedStream(t *testing.T) {
	ts, _, _ := testServer(t)
	m, emb := testTrainedBitembModel(t)

	var bin bytes.Buffer
	if err := m.WriteBinary(&bin); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/v1/models?name=bin", "application/octet-stream", &bin)
	if err != nil {
		t.Fatal(err)
	}
	var man catalog.Manifest
	if err := json.NewDecoder(resp.Body).Decode(&man); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("upload: %d", resp.StatusCode)
	}
	if man.Ref() != "bin@v1" || man.Kind != "bitemb" {
		t.Fatalf("upload manifest = %+v", man)
	}
	wantDigest, err := m.Digest()
	if err != nil {
		t.Fatal(err)
	}
	if man.Digest != wantDigest {
		t.Fatal("server recomputed a different digest for the bitemb upload")
	}

	// Inventory carries the kind; the default is still the fuzzy model.
	resp, err = http.Get(ts.URL + "/v1/models")
	if err != nil {
		t.Fatal(err)
	}
	var models ModelsResponse
	if err := json.NewDecoder(resp.Body).Decode(&models); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if models.Default != "default" {
		t.Fatalf("bitemb upload moved the default: %+v", models)
	}
	kinds := map[string]string{}
	for _, mi := range models.Models {
		kinds[mi.Ref()] = mi.Kind
	}
	if kinds["bin@v1"] != "bitemb" || kinds["default@v1"] != "fuzzy" {
		t.Fatalf("inventory kinds = %v", kinds)
	}

	// Pinned stream against the sequential reference.
	lead := ecgsyn.Synthesize(ecgsyn.RecordSpec{Name: "bt", Seconds: 45, Seed: 21, PVCRate: 0.1}).Leads[0]
	pipe, err := pipeline.New(emb, pipeline.Config{})
	if err != nil {
		t.Fatal(err)
	}
	var want []pipeline.BeatResult
	for _, v := range lead {
		want = append(want, pipe.Push(v)...)
	}
	want = append(want, pipe.Flush()...)
	if len(want) == 0 {
		t.Fatal("reference pipeline emitted no beats")
	}

	var body bytes.Buffer
	enc := json.NewEncoder(&body)
	for off := 0; off < len(lead); off += 360 {
		end := off + 360
		if end > len(lead) {
			end = len(lead)
		}
		if err := enc.Encode(StreamChunk{Samples: lead[off:end]}); err != nil {
			t.Fatal(err)
		}
	}
	resp, err = http.Post(ts.URL+"/v1/stream?model=bin@v1", "application/x-ndjson", &body)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("stream: %d", resp.StatusCode)
	}
	var got []StreamBeat
	var done StreamDone
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 64*1024), 1<<20)
	for sc.Scan() {
		line := sc.Bytes()
		if bytes.Contains(line, []byte(`"error"`)) {
			t.Fatalf("server error line: %s", line)
		}
		if bytes.Contains(line, []byte(`"done"`)) {
			if err := json.Unmarshal(line, &done); err != nil {
				t.Fatal(err)
			}
			continue
		}
		var b StreamBeat
		if err := json.Unmarshal(line, &b); err != nil {
			t.Fatal(err)
		}
		got = append(got, b)
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if done.Model != "bin@v1" {
		t.Fatalf("summary model = %q, want bin@v1", done.Model)
	}
	if len(got) != len(want) {
		t.Fatalf("stream emitted %d beats, sequential pipeline %d", len(got), len(want))
	}
	for i, b := range want {
		if got[i].Sample != b.Peak || got[i].Class != b.Decision.String() {
			t.Fatalf("beat %d: endpoint (%d,%s) != pipeline (%d,%v)",
				i, got[i].Sample, got[i].Class, b.Peak, b.Decision)
		}
	}
}

// TestBitembUnderV1FramingIsBadInput uploads a bitemb payload whose version
// field was patched to the fuzzy framing's: the server must reject it with
// the typed bad_input contract (the decoder fails cleanly), never a 500.
func TestBitembUnderV1FramingIsBadInput(t *testing.T) {
	ts, _, _ := testServer(t)
	m, _ := testTrainedBitembModel(t)
	var bin bytes.Buffer
	if err := m.WriteBinary(&bin); err != nil {
		t.Fatal(err)
	}
	data := bin.Bytes()
	data[4], data[5] = 1, 0 // version LE → 1: bitemb bytes under the old framing
	resp, err := http.Post(ts.URL+"/v1/models?name=masq", "application/octet-stream", bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	wantAPIError(t, resp, http.StatusBadRequest, apierr.CodeBadInput)
}
