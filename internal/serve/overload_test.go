package serve

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"rpbeat/internal/apierr"
	"rpbeat/internal/catalog"
	"rpbeat/internal/ecgsyn"
	"rpbeat/internal/pipeline"
	"rpbeat/internal/wire"
)

// overloadFrame builds one binary frame holding a short synthetic lead,
// enough signal for /v1/classify to find beats in.
func overloadFrame(t *testing.T) []byte {
	t.Helper()
	lead := ecgsyn.Synthesize(ecgsyn.RecordSpec{Name: "ov", Seconds: 10, Seed: 11, PVCRate: 0.1}).Leads[0]
	frame, err := wire.AppendFrame(nil, lead)
	if err != nil {
		t.Fatal(err)
	}
	return frame
}

// TestStreamCapShedsToBatchOnly drives the shed ladder end to end: fill the
// stream slots, observe the typed server_overloaded refusal (with
// Retry-After) for the next stream, confirm batch classification is still
// served, then release a slot and see streams admitted again.
func TestStreamCapShedsToBatchOnly(t *testing.T) {
	ts := testServerWith(t, HandlerConfig{MaxStreams: 2})

	// Fill both stream slots with held-open streams: the pipe body never
	// finishes until release, so each handler sits mid-stream.
	type held struct {
		done    chan struct{}
		release func()
	}
	var holds []held
	for i := 0; i < 2; i++ {
		pr, pw := io.Pipe()
		req, err := http.NewRequest("POST", ts.URL+"/v1/stream", pr)
		if err != nil {
			t.Fatal(err)
		}
		req.Header.Set("Content-Type", wire.ContentTypeSamples)
		h := held{done: make(chan struct{}), release: func() { pw.Close() }}
		go func() {
			defer close(h.done)
			resp, err := ts.Client().Do(req)
			if err != nil {
				t.Errorf("held stream: %v", err)
				return
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}()
		holds = append(holds, h)
	}
	// Admission happens before the first body read, so polling healthz for
	// both slots is race-free.
	waitOpenStreams(t, ts, 2)

	// Third stream: refused with the typed error and Retry-After, before
	// any body was read.
	resp, err := http.Post(ts.URL+"/v1/stream", wire.ContentTypeSamples, strings.NewReader(""))
	if err != nil {
		t.Fatal(err)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("shed stream response missing Retry-After")
	}
	wantAPIError(t, resp, http.StatusServiceUnavailable, apierr.CodeServerOverloaded)

	// The ladder's point: batch still works while streams shed.
	frame := overloadFrame(t)
	resp, err = http.Post(ts.URL+"/v1/classify", wire.ContentTypeSamples, strings.NewReader(string(frame)))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch while streams shed: status %d, want 200", resp.StatusCode)
	}

	// Releasing one stream reopens admission.
	holds[0].release()
	<-holds[0].done
	waitOpenStreams(t, ts, 1)
	resp, err = http.Post(ts.URL+"/v1/stream", wire.ContentTypeSamples, strings.NewReader(string(frame)))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("stream after release: status %d, want 200", resp.StatusCode)
	}

	holds[1].release()
	<-holds[1].done
}

// TestEngineSlotExhaustionRendersTyped: the engine's own MaxStreams refusal
// (one layer below the handler's shed ladder) surfaces on the wire as the
// rendered typed body. Regression test pinning the engine's preallocated
// slots-exhausted error to the {"error":{code,...}} contract.
func TestEngineSlotExhaustionRendersTyped(t *testing.T) {
	m, _ := testTrainedModel(t)
	cat := catalog.New()
	if _, err := cat.Put("m", m, nil); err != nil {
		t.Fatal(err)
	}
	eng := pipeline.NewEngine(cat, pipeline.EngineConfig{Workers: 1, MaxStreams: 1})
	ts := httptest.NewServer(NewHandler(eng, HandlerConfig{}))
	t.Cleanup(func() {
		ts.Close()
		eng.Close()
	})

	// Hold the single engine slot with an open-ended stream body.
	pr, pw := io.Pipe()
	req, err := http.NewRequest("POST", ts.URL+"/v1/stream", pr)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", wire.ContentTypeSamples)
	done := make(chan struct{})
	go func() {
		defer close(done)
		resp, err := ts.Client().Do(req)
		if err != nil {
			t.Errorf("held stream: %v", err)
			return
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}()
	waitOpenStreams(t, ts, 1)

	resp, err := http.Post(ts.URL+"/v1/stream", wire.ContentTypeSamples, strings.NewReader(""))
	if err != nil {
		t.Fatal(err)
	}
	raw, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status = %d, want 503 (body %s)", resp.StatusCode, raw)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("engine-slot refusal missing Retry-After")
	}
	var body ErrorResponse
	if err := json.Unmarshal(raw, &body); err != nil {
		t.Fatalf("error body is not the typed contract: %s", raw)
	}
	if body.Error.Code != apierr.CodeServerOverloaded {
		t.Fatalf("error code = %q, want %q (body %s)", body.Error.Code, apierr.CodeServerOverloaded, raw)
	}
	// The message is the engine's, not a handler-level shed: this is the
	// path the preallocated error travels.
	if !strings.Contains(body.Error.Message, "stream slots exhausted") {
		t.Fatalf("message %q does not carry the engine refusal", body.Error.Message)
	}

	pw.Close()
	<-done
}

// TestBatchCap holds the ladder's second rung: with MaxBatch classify
// requests in flight, the next one is refused with the typed
// server_overloaded error. A pipe body keeps the first request in flight
// deterministically.
func TestBatchCap(t *testing.T) {
	ts := testServerWith(t, HandlerConfig{MaxBatch: 1})

	pr, pw := io.Pipe()
	done := make(chan struct{})
	go func() {
		defer close(done)
		req, err := http.NewRequest("POST", ts.URL+"/v1/classify", pr)
		if err != nil {
			t.Errorf("held classify: %v", err)
			return
		}
		req.Header.Set("Content-Type", wire.ContentTypeSamples)
		resp, err := ts.Client().Do(req)
		if err != nil {
			t.Errorf("held classify: %v", err)
			return
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}()
	waitInFlightBatch(t, ts, 1)

	resp, err := http.Post(ts.URL+"/v1/classify", wire.ContentTypeSamples, strings.NewReader(""))
	if err != nil {
		t.Fatal(err)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("shed batch response missing Retry-After")
	}
	wantAPIError(t, resp, http.StatusServiceUnavailable, apierr.CodeServerOverloaded)

	pw.Close() // empty body: the held request finishes (its status is moot)
	<-done
}

// TestPerTenantRateLimit: a tenant that exhausts its bucket gets the typed
// rate_limited 429 (with Retry-After) while a different tenant is untouched,
// and streams are metered by the same limiter.
func TestPerTenantRateLimit(t *testing.T) {
	ts := testServerWith(t, HandlerConfig{RatePerTenant: 0.001, RateBurst: 2})
	frame := overloadFrame(t)

	post := func(path, tenant string) *http.Response {
		req, err := http.NewRequest("POST", ts.URL+path, strings.NewReader(string(frame)))
		if err != nil {
			t.Fatal(err)
		}
		req.Header.Set("Content-Type", wire.ContentTypeSamples)
		req.Header.Set("X-Tenant", tenant)
		resp, err := ts.Client().Do(req)
		if err != nil {
			t.Fatal(err)
		}
		return resp
	}

	// The burst admits exactly two requests; refill at 0.001/s is
	// negligible within the test.
	for i := 0; i < 2; i++ {
		resp := post("/v1/classify", "greedy")
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("burst request %d: status %d", i, resp.StatusCode)
		}
	}
	resp := post("/v1/classify", "greedy")
	if resp.Header.Get("Retry-After") == "" {
		t.Error("rate-limited response missing Retry-After")
	}
	wantAPIError(t, resp, http.StatusTooManyRequests, apierr.CodeRateLimited)

	// Another tenant's bucket is independent.
	resp = post("/v1/classify", "patient")
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("other tenant caught in greedy's limit: status %d", resp.StatusCode)
	}

	// Streams draw from the same bucket.
	sresp := post("/v1/stream", "greedy")
	wantAPIError(t, sresp, http.StatusTooManyRequests, apierr.CodeRateLimited)
}

// TestHealthzReportsOverload: the health body carries the gate counters, so
// shedding is observable without scraping logs.
func TestHealthzReportsOverload(t *testing.T) {
	ts := testServerWith(t, HandlerConfig{MaxStreams: 1})

	pr, pw := io.Pipe()
	done := make(chan struct{})
	go func() {
		defer close(done)
		resp, err := ts.Client().Post(ts.URL+"/v1/stream", wire.ContentTypeSamples, pr)
		if err != nil {
			t.Errorf("held stream: %v", err)
			return
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}()
	waitOpenStreams(t, ts, 1)
	resp, err := http.Post(ts.URL+"/v1/stream", wire.ContentTypeSamples, strings.NewReader(""))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()

	h := getHealth(t, ts)
	if !h.OK {
		t.Fatal("health not ok")
	}
	if h.Overload.OpenStreams != 1 || h.Overload.ShedStreams != 1 {
		t.Fatalf("health overload = %+v, want 1 open, 1 shed", h.Overload)
	}
	pw.Close()
	<-done
}

// --- helpers ---

func getHealth(t *testing.T, ts *httptest.Server) HealthResponse {
	t.Helper()
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var h HealthResponse
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	return h
}

// waitOpenStreams polls /healthz until the gate reports n open streams.
func waitOpenStreams(t *testing.T, ts *httptest.Server, n int64) {
	t.Helper()
	waitHealth(t, ts, func(h HealthResponse) bool { return h.Overload.OpenStreams == n })
}

func waitInFlightBatch(t *testing.T, ts *httptest.Server, n int64) {
	t.Helper()
	waitHealth(t, ts, func(h HealthResponse) bool { return h.Overload.InFlightBatch == n })
}

func waitHealth(t *testing.T, ts *httptest.Server, ok func(HealthResponse) bool) {
	t.Helper()
	for i := 0; i < 4000; i++ {
		if ok(getHealth(t, ts)) {
			return
		}
	}
	t.Fatalf("health condition not reached; last: %+v", getHealth(t, ts))
}
