package serve

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"testing"

	"rpbeat/internal/apierr"
	"rpbeat/internal/beatset"
	"rpbeat/internal/catalog"
	"rpbeat/internal/core"
	"rpbeat/internal/ecgsyn"
	"rpbeat/internal/fixp"
	"rpbeat/internal/pipeline"
)

var (
	modelOnce sync.Once
	modelVal  *core.Model
	embVal    *core.Embedded
	embErr    error
)

// testTrainedModel trains one reduced-scale model per test binary and
// returns its float form (what uploads carry) and quantized form (the
// classification reference).
func testTrainedModel(t *testing.T) (*core.Model, *core.Embedded) {
	t.Helper()
	modelOnce.Do(func() {
		ds, err := beatset.Build(beatset.Config{Seed: 31, Scale: 0.03})
		if err != nil {
			embErr = err
			return
		}
		m, _, err := core.Train(ds, core.Config{
			Coeffs: 8, Downsample: 4, PopSize: 4, Generations: 2,
			SCGIters: 50, MinARR: 0.9, Seed: 31,
		})
		if err != nil {
			embErr = err
			return
		}
		modelVal = m
		embVal, embErr = m.Quantize(fixp.MFLinear)
	})
	if embErr != nil {
		t.Fatal(embErr)
	}
	return modelVal, embVal
}

// testServer boots a handler over a catalog holding the trained model as
// default@v1.
func testServer(t *testing.T) (*httptest.Server, *pipeline.Engine, *core.Embedded) {
	t.Helper()
	m, emb := testTrainedModel(t)
	cat := catalog.New()
	if _, err := cat.Put("default", m, nil); err != nil {
		t.Fatal(err)
	}
	eng := pipeline.NewEngine(cat, pipeline.EngineConfig{Workers: 2})
	ts := httptest.NewServer(NewHandler(eng, HandlerConfig{}))
	t.Cleanup(func() {
		ts.Close()
		eng.Close()
	})
	return ts, eng, emb
}

// wantAPIError asserts a response carries the typed JSON error contract:
// the expected HTTP status and machine-readable code.
func wantAPIError(t *testing.T, resp *http.Response, status int, code apierr.Code) {
	t.Helper()
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != status {
		t.Fatalf("status = %d, want %d (body %s)", resp.StatusCode, status, raw)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Fatalf("error Content-Type = %q, want application/json", ct)
	}
	var body ErrorResponse
	if err := json.Unmarshal(raw, &body); err != nil {
		t.Fatalf("error body is not the typed contract: %s", raw)
	}
	if body.Error.Code != code {
		t.Fatalf("error code = %q, want %q (message %q)", body.Error.Code, code, body.Error.Message)
	}
	if body.Error.Message == "" {
		t.Fatal("error message empty")
	}
}

func TestHealthAndModels(t *testing.T) {
	ts, _, emb := testServer(t)

	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: %d", resp.StatusCode)
	}

	resp, err = http.Get(ts.URL + "/v1/models")
	if err != nil {
		t.Fatal(err)
	}
	var models ModelsResponse
	if err := json.NewDecoder(resp.Body).Decode(&models); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if models.Default != "default" || len(models.Models) != 1 {
		t.Fatalf("models = %+v", models)
	}
	mi := models.Models[0]
	if mi.Name != "default" || mi.Version != 1 || !mi.Default || !mi.Latest {
		t.Fatalf("model info = %+v", mi)
	}
	if mi.K != emb.K || mi.MemoryBytes != emb.MemoryBytes() || mi.HostBytes != emb.HostBytes() {
		t.Fatalf("model info mismatch: %+v", mi)
	}
	if mi.Digest == "" || mi.SizeBytes == 0 || mi.CreatedAt.IsZero() {
		t.Fatalf("manifest fields missing: %+v", mi)
	}
}

func TestClassifyMatchesBatchPath(t *testing.T) {
	ts, _, emb := testServer(t)
	rec := ecgsyn.Synthesize(ecgsyn.RecordSpec{Name: "s", Seconds: 60, Seed: 8, PVCRate: 0.15})

	body, _ := json.Marshal(ClassifyRequest{Samples: rec.Leads[0]})
	resp, err := http.Post(ts.URL+"/v1/classify", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		raw, _ := io.ReadAll(resp.Body)
		t.Fatalf("classify: %d: %s", resp.StatusCode, raw)
	}
	var got ClassifyResponse
	if err := json.NewDecoder(resp.Body).Decode(&got); err != nil {
		t.Fatal(err)
	}
	if got.Model != "default@v1" {
		t.Fatalf("response model = %q, want the resolved default@v1", got.Model)
	}

	want, err := pipeline.BatchClassify(context.Background(), emb, rec.Leads[0], pipeline.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if got.Total != len(want) || len(got.Beats) != len(want) {
		t.Fatalf("server found %d beats, reference %d", got.Total, len(want))
	}
	for i, b := range want {
		if got.Beats[i].Sample != b.Peak || got.Beats[i].Class != b.Decision.String() {
			t.Fatalf("beat %d: server (%d,%s) != reference (%d,%v)",
				i, got.Beats[i].Sample, got.Beats[i].Class, b.Peak, b.Decision)
		}
	}
	if got.Total == 0 {
		t.Fatal("no beats classified")
	}
}

func TestClassifyErrors(t *testing.T) {
	ts, _, _ := testServer(t)

	resp, err := http.Post(ts.URL+"/v1/classify", "application/json", strings.NewReader(`{"samples":[]}`))
	if err != nil {
		t.Fatal(err)
	}
	wantAPIError(t, resp, http.StatusBadRequest, apierr.CodeBadInput)

	resp, err = http.Post(ts.URL+"/v1/classify", "application/json",
		strings.NewReader(`{"model":"nope","samples":[1,2,3]}`))
	if err != nil {
		t.Fatal(err)
	}
	wantAPIError(t, resp, http.StatusNotFound, apierr.CodeModelNotFound)

	// Malformed model reference: syntax error, not a lookup miss.
	resp, err = http.Post(ts.URL+"/v1/classify", "application/json",
		strings.NewReader(`{"model":"default@vX","samples":[1,2,3]}`))
	if err != nil {
		t.Fatal(err)
	}
	wantAPIError(t, resp, http.StatusBadRequest, apierr.CodeBadInput)

	resp, err = http.Post(ts.URL+"/v1/classify", "application/json", strings.NewReader(`{not json`))
	if err != nil {
		t.Fatal(err)
	}
	wantAPIError(t, resp, http.StatusBadRequest, apierr.CodeBadInput)
}

func TestWrongMethodAndUnknownRoute(t *testing.T) {
	ts, _, _ := testServer(t)
	cases := []struct {
		method, path string
	}{
		{http.MethodDelete, "/healthz"},
		{http.MethodGet, "/v1/classify"},
		{http.MethodGet, "/v1/stream"},
		{http.MethodPut, "/v1/models"},
		{http.MethodPost, "/v1/models/default@v1"},
		{http.MethodPost, "/v1/default"},
	}
	for _, tc := range cases {
		req, err := http.NewRequest(tc.method, ts.URL+tc.path, nil)
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		wantAPIError(t, resp, http.StatusMethodNotAllowed, apierr.CodeMethodNotAllowed)
	}

	resp, err := http.Get(ts.URL + "/v2/everything")
	if err != nil {
		t.Fatal(err)
	}
	wantAPIError(t, resp, http.StatusNotFound, apierr.CodeNotFound)
}

func TestAdminErrors(t *testing.T) {
	ts, _, _ := testServer(t)

	// Upload without a name.
	resp, err := http.Post(ts.URL+"/v1/models", "application/octet-stream", strings.NewReader("x"))
	if err != nil {
		t.Fatal(err)
	}
	wantAPIError(t, resp, http.StatusBadRequest, apierr.CodeBadInput)

	// Upload that is neither a binary nor a JSON model.
	resp, err = http.Post(ts.URL+"/v1/models?name=junk", "application/octet-stream",
		strings.NewReader("definitely not a model"))
	if err != nil {
		t.Fatal(err)
	}
	wantAPIError(t, resp, http.StatusBadRequest, apierr.CodeBadInput)

	// Upload under a malformed name.
	resp, err = http.Post(ts.URL+"/v1/models?name=bad@name", "application/octet-stream",
		strings.NewReader("{}"))
	if err != nil {
		t.Fatal(err)
	}
	wantAPIError(t, resp, http.StatusBadRequest, apierr.CodeBadInput)

	// Manifest detail of an unknown model / malformed reference.
	resp, err = http.Get(ts.URL + "/v1/models/ghost")
	if err != nil {
		t.Fatal(err)
	}
	wantAPIError(t, resp, http.StatusNotFound, apierr.CodeModelNotFound)
	resp, err = http.Get(ts.URL + "/v1/models/default@v")
	if err != nil {
		t.Fatal(err)
	}
	wantAPIError(t, resp, http.StatusBadRequest, apierr.CodeBadInput)

	// Delete requires an explicit version; floating and malformed refs fail.
	for ref, want := range map[string]struct {
		status int
		code   apierr.Code
	}{
		"default":    {http.StatusBadRequest, apierr.CodeBadInput},
		"default@v9": {http.StatusNotFound, apierr.CodeModelNotFound},
		"default@v1": {http.StatusBadRequest, apierr.CodeBadInput}, // the default's only version
		"@v1":        {http.StatusBadRequest, apierr.CodeBadInput},
	} {
		req, err := http.NewRequest(http.MethodDelete, ts.URL+"/v1/models/"+ref, nil)
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		wantAPIError(t, resp, want.status, want.code)
	}

	// Default must resolve; body must parse.
	req, err := http.NewRequest(http.MethodPut, ts.URL+"/v1/default", strings.NewReader(`{"model":"ghost"}`))
	if err != nil {
		t.Fatal(err)
	}
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	wantAPIError(t, resp, http.StatusNotFound, apierr.CodeModelNotFound)

	req, err = http.NewRequest(http.MethodPut, ts.URL+"/v1/default", strings.NewReader(`{`))
	if err != nil {
		t.Fatal(err)
	}
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	wantAPIError(t, resp, http.StatusBadRequest, apierr.CodeBadInput)
}

func TestUploadTooLarge(t *testing.T) {
	m, _ := testTrainedModel(t)
	cat := catalog.New()
	if _, err := cat.Put("default", m, nil); err != nil {
		t.Fatal(err)
	}
	eng := pipeline.NewEngine(cat, pipeline.EngineConfig{Workers: 1})
	ts := httptest.NewServer(NewHandler(eng, HandlerConfig{MaxUploadBytes: 1024}))
	t.Cleanup(func() {
		ts.Close()
		eng.Close()
	})

	resp, err := http.Post(ts.URL+"/v1/models?name=big", "application/octet-stream",
		bytes.NewReader(make([]byte, 4096)))
	if err != nil {
		t.Fatal(err)
	}
	wantAPIError(t, resp, http.StatusRequestEntityTooLarge, apierr.CodePayloadTooLarge)
}

func TestStreamMatchesSequentialPipeline(t *testing.T) {
	ts, _, emb := testServer(t)
	rec := ecgsyn.Synthesize(ecgsyn.RecordSpec{Name: "st", Seconds: 60, Seed: 9, PVCRate: 0.1})
	lead := rec.Leads[0]

	// Sequential reference over the same samples.
	pipe, err := pipeline.New(emb, pipeline.Config{})
	if err != nil {
		t.Fatal(err)
	}
	var want []pipeline.BeatResult
	for _, v := range lead {
		want = append(want, pipe.Push(v)...)
	}
	want = append(want, pipe.Flush()...)

	// NDJSON request body: one chunk per second of signal.
	var body bytes.Buffer
	enc := json.NewEncoder(&body)
	for off := 0; off < len(lead); off += 360 {
		end := off + 360
		if end > len(lead) {
			end = len(lead)
		}
		if err := enc.Encode(StreamChunk{Samples: lead[off:end]}); err != nil {
			t.Fatal(err)
		}
	}
	resp, err := http.Post(ts.URL+"/v1/stream", "application/x-ndjson", &body)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("stream: %d", resp.StatusCode)
	}

	var got []StreamBeat
	var done StreamDone
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 64*1024), 1<<20)
	for sc.Scan() {
		line := sc.Bytes()
		if bytes.Contains(line, []byte(`"error"`)) {
			t.Fatalf("server error line: %s", line)
		}
		if bytes.Contains(line, []byte(`"done"`)) {
			if err := json.Unmarshal(line, &done); err != nil {
				t.Fatal(err)
			}
			continue
		}
		var b StreamBeat
		if err := json.Unmarshal(line, &b); err != nil {
			t.Fatal(err)
		}
		got = append(got, b)
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if !done.Done || done.Samples != len(lead) || done.Beats != len(got) {
		t.Fatalf("summary %+v (got %d beats, sent %d samples)", done, len(got), len(lead))
	}
	if done.Model != "default@v1" {
		t.Fatalf("summary model = %q, want the pinned default@v1", done.Model)
	}
	if len(got) != len(want) {
		t.Fatalf("stream endpoint emitted %d beats, sequential pipeline %d", len(got), len(want))
	}
	for i, b := range want {
		if got[i].Sample != b.Peak || got[i].Class != b.Decision.String() {
			t.Fatalf("beat %d: endpoint (%d,%s) != pipeline (%d,%v)",
				i, got[i].Sample, got[i].Class, b.Peak, b.Decision)
		}
	}
	if len(got) == 0 {
		t.Fatal("no beats streamed")
	}
}

func TestStreamUnknownModel(t *testing.T) {
	ts, _, _ := testServer(t)
	resp, err := http.Post(ts.URL+"/v1/stream?model=nope", "application/x-ndjson", strings.NewReader(""))
	if err != nil {
		t.Fatal(err)
	}
	wantAPIError(t, resp, http.StatusNotFound, apierr.CodeModelNotFound)

	resp, err = http.Post(ts.URL+"/v1/stream?model=bad@@ref", "application/x-ndjson", strings.NewReader(""))
	if err != nil {
		t.Fatal(err)
	}
	wantAPIError(t, resp, http.StatusBadRequest, apierr.CodeBadInput)
}

func TestStreamResumeFrom(t *testing.T) {
	ts, _, emb := testServer(t)
	lead := ecgsyn.Synthesize(ecgsyn.RecordSpec{Name: "rs", Seconds: 30, Seed: 11, PVCRate: 0.1}).Leads[0]
	const base = 3000

	// Sequential reference: a pipeline resumed at the same base.
	pipe, err := pipeline.New(emb, pipeline.Config{BaseSample: base})
	if err != nil {
		t.Fatal(err)
	}
	var want []pipeline.BeatResult
	for _, v := range lead[base:] {
		want = append(want, pipe.Push(v)...)
	}
	want = append(want, pipe.Flush()...)
	if len(want) == 0 {
		t.Fatal("reference resumed pipeline found no beats")
	}

	var body bytes.Buffer
	enc := json.NewEncoder(&body)
	for off := base; off < len(lead); off += 360 {
		end := off + 360
		if end > len(lead) {
			end = len(lead)
		}
		if err := enc.Encode(StreamChunk{Samples: lead[off:end]}); err != nil {
			t.Fatal(err)
		}
	}
	req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/stream", &body)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set(ResumeFromHeader, strconv.Itoa(base))
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("resumed stream: %d", resp.StatusCode)
	}
	var got []StreamBeat
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 64*1024), 1<<20)
	for sc.Scan() {
		line := sc.Bytes()
		if bytes.Contains(line, []byte(`"error"`)) {
			t.Fatalf("server error line: %s", line)
		}
		if bytes.Contains(line, []byte(`"done"`)) {
			continue
		}
		var b StreamBeat
		if err := json.Unmarshal(line, &b); err != nil {
			t.Fatal(err)
		}
		got = append(got, b)
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("resumed endpoint emitted %d beats, resumed pipeline %d", len(got), len(want))
	}
	for i, b := range want {
		if got[i].Sample != b.Peak || got[i].DetectedAt != b.DetectedAt {
			t.Fatalf("beat %d: endpoint (%d@%d) != pipeline (%d@%d) — indices must be absolute",
				i, got[i].Sample, got[i].DetectedAt, b.Peak, b.DetectedAt)
		}
	}

	// A malformed header is the client's fault, refused before any compute.
	for _, h := range []string{"x", "-1", "2.5"} {
		req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/stream", strings.NewReader(""))
		if err != nil {
			t.Fatal(err)
		}
		req.Header.Set(ResumeFromHeader, h)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		wantAPIError(t, resp, http.StatusBadRequest, apierr.CodeBadInput)
	}
}

func TestStreamBadChunk(t *testing.T) {
	ts, _, _ := testServer(t)
	resp, err := http.Post(ts.URL+"/v1/stream", "application/x-ndjson", strings.NewReader("{not json}\n"))
	if err != nil {
		t.Fatal(err)
	}
	// Nothing was streamed before the bad chunk, so the error arrives as a
	// plain typed response, status and all.
	wantAPIError(t, resp, http.StatusBadRequest, apierr.CodeBadInput)
}
