package serve

import (
	"bufio"
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"rpbeat/internal/beatset"
	"rpbeat/internal/core"
	"rpbeat/internal/ecgsyn"
	"rpbeat/internal/fixp"
	"rpbeat/internal/pipeline"
)

var (
	embOnce sync.Once
	embVal  *core.Embedded
	embErr  error
)

func testEmbedded(t *testing.T) *core.Embedded {
	t.Helper()
	embOnce.Do(func() {
		ds, err := beatset.Build(beatset.Config{Seed: 31, Scale: 0.03})
		if err != nil {
			embErr = err
			return
		}
		m, _, err := core.Train(ds, core.Config{
			Coeffs: 8, Downsample: 4, PopSize: 4, Generations: 2,
			SCGIters: 50, MinARR: 0.9, Seed: 31,
		})
		if err != nil {
			embErr = err
			return
		}
		embVal, embErr = m.Quantize(fixp.MFLinear)
	})
	if embErr != nil {
		t.Fatal(embErr)
	}
	return embVal
}

func testServer(t *testing.T) (*httptest.Server, *core.Embedded) {
	t.Helper()
	emb := testEmbedded(t)
	reg := pipeline.NewRegistry()
	if err := reg.Register("default", emb); err != nil {
		t.Fatal(err)
	}
	eng := pipeline.NewEngine(reg, pipeline.EngineConfig{Workers: 2})
	ts := httptest.NewServer(NewHandler(eng, "default"))
	t.Cleanup(func() {
		ts.Close()
		eng.Close()
	})
	return ts, emb
}

func TestHealthAndModels(t *testing.T) {
	ts, emb := testServer(t)

	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: %d", resp.StatusCode)
	}

	resp, err = http.Get(ts.URL + "/v1/models")
	if err != nil {
		t.Fatal(err)
	}
	var models []ModelInfo
	if err := json.NewDecoder(resp.Body).Decode(&models); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(models) != 1 || models[0].Name != "default" || !models[0].Default {
		t.Fatalf("models = %+v", models)
	}
	if models[0].Coeffs != emb.K || models[0].MemoryBytes != emb.MemoryBytes() {
		t.Fatalf("model info mismatch: %+v", models[0])
	}
}

func TestClassifyMatchesBatchPath(t *testing.T) {
	ts, emb := testServer(t)
	rec := ecgsyn.Synthesize(ecgsyn.RecordSpec{Name: "s", Seconds: 60, Seed: 8, PVCRate: 0.15})

	body, _ := json.Marshal(ClassifyRequest{Samples: rec.Leads[0]})
	resp, err := http.Post(ts.URL+"/v1/classify", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		raw, _ := io.ReadAll(resp.Body)
		t.Fatalf("classify: %d: %s", resp.StatusCode, raw)
	}
	var got ClassifyResponse
	if err := json.NewDecoder(resp.Body).Decode(&got); err != nil {
		t.Fatal(err)
	}

	want, err := pipeline.BatchClassify(emb, rec.Leads[0], pipeline.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if got.Total != len(want) || len(got.Beats) != len(want) {
		t.Fatalf("server found %d beats, reference %d", got.Total, len(want))
	}
	for i, b := range want {
		if got.Beats[i].Sample != b.Peak || got.Beats[i].Class != b.Decision.String() {
			t.Fatalf("beat %d: server (%d,%s) != reference (%d,%v)",
				i, got.Beats[i].Sample, got.Beats[i].Class, b.Peak, b.Decision)
		}
	}
	if got.Total == 0 {
		t.Fatal("no beats classified")
	}
}

func TestClassifyErrors(t *testing.T) {
	ts, _ := testServer(t)
	resp, err := http.Post(ts.URL+"/v1/classify", "application/json", strings.NewReader(`{"samples":[]}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("empty samples: %d", resp.StatusCode)
	}
	resp, err = http.Post(ts.URL+"/v1/classify", "application/json",
		strings.NewReader(`{"model":"nope","samples":[1,2,3]}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown model: %d", resp.StatusCode)
	}
}

func TestStreamMatchesSequentialPipeline(t *testing.T) {
	ts, emb := testServer(t)
	rec := ecgsyn.Synthesize(ecgsyn.RecordSpec{Name: "st", Seconds: 60, Seed: 9, PVCRate: 0.1})
	lead := rec.Leads[0]

	// Sequential reference over the same samples.
	pipe, err := pipeline.New(emb, pipeline.Config{})
	if err != nil {
		t.Fatal(err)
	}
	var want []pipeline.BeatResult
	for _, v := range lead {
		want = append(want, pipe.Push(v)...)
	}
	want = append(want, pipe.Flush()...)

	// NDJSON request body: one chunk per second of signal.
	var body bytes.Buffer
	enc := json.NewEncoder(&body)
	for off := 0; off < len(lead); off += 360 {
		end := off + 360
		if end > len(lead) {
			end = len(lead)
		}
		if err := enc.Encode(StreamChunk{Samples: lead[off:end]}); err != nil {
			t.Fatal(err)
		}
	}
	resp, err := http.Post(ts.URL+"/v1/stream", "application/x-ndjson", &body)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("stream: %d", resp.StatusCode)
	}

	var got []StreamBeat
	var done StreamDone
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 64*1024), 1<<20)
	for sc.Scan() {
		line := sc.Bytes()
		if bytes.Contains(line, []byte(`"error"`)) {
			t.Fatalf("server error line: %s", line)
		}
		if bytes.Contains(line, []byte(`"done"`)) {
			if err := json.Unmarshal(line, &done); err != nil {
				t.Fatal(err)
			}
			continue
		}
		var b StreamBeat
		if err := json.Unmarshal(line, &b); err != nil {
			t.Fatal(err)
		}
		got = append(got, b)
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if !done.Done || done.Samples != len(lead) || done.Beats != len(got) {
		t.Fatalf("summary %+v (got %d beats, sent %d samples)", done, len(got), len(lead))
	}
	if len(got) != len(want) {
		t.Fatalf("stream endpoint emitted %d beats, sequential pipeline %d", len(got), len(want))
	}
	for i, b := range want {
		if got[i].Sample != b.Peak || got[i].Class != b.Decision.String() {
			t.Fatalf("beat %d: endpoint (%d,%s) != pipeline (%d,%v)",
				i, got[i].Sample, got[i].Class, b.Peak, b.Decision)
		}
	}
	if len(got) == 0 {
		t.Fatal("no beats streamed")
	}
}

func TestStreamUnknownModel(t *testing.T) {
	ts, _ := testServer(t)
	resp, err := http.Post(ts.URL+"/v1/stream?model=nope", "application/x-ndjson", strings.NewReader(""))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown model: %d", resp.StatusCode)
	}
}

func TestStreamBadChunk(t *testing.T) {
	ts, _ := testServer(t)
	resp, err := http.Post(ts.URL+"/v1/stream", "application/x-ndjson", strings.NewReader("{not json}\n"))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	if !bytes.Contains(raw, []byte(`"error"`)) {
		t.Fatalf("expected an error line, got: %s", raw)
	}
}
