package catalog

// Directory persistence. A catalog directory holds, per model version,
//
//	<name>@v<N>.bin            the canonical binary codec form
//	<name>@v<N>.manifest.json  the manifest (digest, provenance, created-at)
//
// plus an optional DEFAULT file carrying the default reference. Writes go
// through a temp file + rename so a crash never leaves a half-written
// model, and loads recompute every digest from the model bytes — a
// manifest that disagrees with its model is a hard error, not a shrug.
//
// The loader also accepts hand-dropped rptrain output: a bare `ecg.json`
// or `ecg.bin` (no @vN) registers as ecg@v1, with `ecg.manifest.json`
// picked up when present. That is the README's
// rptrain → model dir → rpserve -models-dir flow.

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"rpbeat/internal/core"
	"rpbeat/internal/fixp"
)

const (
	manifestSuffix = ".manifest.json"
	defaultFile    = "DEFAULT"
)

func entryPath(dir string, man Manifest) string {
	return filepath.Join(dir, fmt.Sprintf("%s@v%d.bin", man.Name, man.Version))
}

func manifestPathFor(modelPath string) string {
	ext := filepath.Ext(modelPath)
	return strings.TrimSuffix(modelPath, ext) + manifestSuffix
}

// writeFileAtomic writes via a temp file in the same directory + rename.
func writeFileAtomic(path string, data []byte) error {
	tmp, err := os.CreateTemp(filepath.Dir(path), ".tmp-*")
	if err != nil {
		return err
	}
	_, werr := tmp.Write(data)
	merr := tmp.Chmod(0o644) // CreateTemp defaults to 0600
	cerr := tmp.Close()
	if werr != nil || merr != nil || cerr != nil {
		os.Remove(tmp.Name())
		return errors.Join(werr, merr, cerr)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return nil
}

// WriteManifest writes a manifest sidecar next to a model file: for
// `ecg.json` or `ecg@v2.bin` it writes `ecg.manifest.json` /
// `ecg@v2.manifest.json`. cmd/rptrain uses this to emit provenance beside
// its output model.
func WriteManifest(modelPath string, man Manifest) error {
	data, err := json.MarshalIndent(man, "", " ")
	if err != nil {
		return err
	}
	return writeFileAtomic(manifestPathFor(modelPath), append(data, '\n'))
}

// persistEntry writes the model binary and its manifest. Callers hold c.mu.
func (c *Catalog) persistEntry(m *core.Model, man Manifest) error {
	var buf bytes.Buffer
	if err := m.WriteBinary(&buf); err != nil {
		return err
	}
	path := entryPath(c.dir, man)
	if err := writeFileAtomic(path, buf.Bytes()); err != nil {
		return fmt.Errorf("catalog: persist %s: %w", man.Ref(), err)
	}
	if err := WriteManifest(path, man); err != nil {
		return fmt.Errorf("catalog: persist %s manifest: %w", man.Ref(), err)
	}
	return nil
}

// persistDefault writes the DEFAULT file. Callers hold c.mu.
func (c *Catalog) persistDefault(ref string) error {
	if err := writeFileAtomic(filepath.Join(c.dir, defaultFile), []byte(ref+"\n")); err != nil {
		return fmt.Errorf("catalog: persist default: %w", err)
	}
	return nil
}

// removeEntryFiles deletes a version's backing files — whatever file the
// entry was actually loaded from (a bare ecg.json drop-in included), so a
// delete never resurrects on Reload. The model file is authoritative: its
// removal failing fails the call; a leftover manifest sidecar is harmless
// (loadDir skips sidecars without a model file) and is not worth failing
// an otherwise-committed delete over. Callers hold c.mu; memory-only
// entries are a no-op.
func (c *Catalog) removeEntryFiles(e *Entry) error {
	if e.filePath == "" {
		return nil
	}
	if err := os.Remove(e.filePath); err != nil && !errors.Is(err, os.ErrNotExist) {
		return fmt.Errorf("catalog: delete %s: %w", e.Manifest.Ref(), err)
	}
	os.Remove(manifestPathFor(e.filePath)) // best-effort; orphans are ignored on load
	return nil
}

// Reload re-reads the backing directory and atomically swaps the catalog
// to what it holds — the hot-reload path (cmd/rpserve wires it to SIGHUP).
// On error the current snapshot stays in place untouched. Memory-only
// catalogs have nothing to reload from.
func (c *Catalog) Reload() error {
	if c.dir == "" {
		return errors.New("catalog: memory-only catalog has no directory to reload")
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := os.MkdirAll(c.dir, 0o755); err != nil {
		return err
	}
	snap, err := loadDir(c.dir)
	if err != nil {
		return err
	}
	// The on-disk files only witness the versions still alive; the current
	// snapshot's high-water marks also remember deleted ones. Keep the max,
	// so a delete + reload cannot hand a retired version number to new
	// bytes (the never-reuse guarantee of Put).
	for name, v := range c.snap.Load().nextVer {
		if v > snap.nextVer[name] {
			snap.nextVer[name] = v
		}
	}
	c.snap.Store(snap)
	return nil
}

// loadDir builds a snapshot from a directory's model files.
func loadDir(dir string) (*Snapshot, error) {
	dirents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	snap := &Snapshot{models: map[string][]*Entry{}, nextVer: map[string]int{}}
	for _, de := range dirents {
		name := de.Name()
		if de.IsDir() || strings.HasPrefix(name, ".") ||
			strings.HasSuffix(name, manifestSuffix) || name == defaultFile {
			continue
		}
		ext := filepath.Ext(name)
		if ext != ".bin" && ext != ".json" {
			continue
		}
		entry, err := loadEntry(filepath.Join(dir, name), strings.TrimSuffix(name, ext))
		if err != nil {
			return nil, err
		}
		for _, e := range snap.models[entry.Manifest.Name] {
			if e.Manifest.Version == entry.Manifest.Version {
				return nil, fmt.Errorf("catalog: %s: duplicate version %s (two files claim it)",
					dir, entry.Manifest.Ref())
			}
		}
		snap.models[entry.Manifest.Name] = append(snap.models[entry.Manifest.Name], entry)
	}
	for name, versions := range snap.models {
		sort.Slice(versions, func(i, j int) bool {
			return versions[i].Manifest.Version < versions[j].Manifest.Version
		})
		snap.nextVer[name] = versions[len(versions)-1].Manifest.Version + 1
	}

	defRef, err := os.ReadFile(filepath.Join(dir, defaultFile))
	switch {
	case err == nil:
		ref := strings.TrimSpace(string(defRef))
		if _, err := snap.Resolve(ref); err != nil {
			return nil, fmt.Errorf("catalog: %s: DEFAULT %q does not resolve: %w", dir, ref, err)
		}
		snap.defaultRef = ref
	case errors.Is(err, os.ErrNotExist):
		// No DEFAULT file: a single-name directory defaults to that name;
		// anything else waits for an explicit SetDefault.
		if names := snap.Names(); len(names) == 1 {
			snap.defaultRef = names[0]
		}
	default:
		return nil, err
	}
	return snap, nil
}

// loadEntry reads one model file. The stem (filename minus extension) is
// either "name@vN" or a bare "name" (registered as version 1). The digest
// is always recomputed from the bytes; a manifest sidecar contributes
// provenance (CreatedAt, Training) and must agree on the digest.
func loadEntry(path, stem string) (*Entry, error) {
	name, version, err := ParseRef(stem)
	if err != nil {
		return nil, fmt.Errorf("catalog: %s: filename is not a model reference: %w", path, err)
	}
	if version == 0 {
		version = 1
	}
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	m, err := core.Decode(data)
	if err != nil {
		return nil, fmt.Errorf("catalog: %s: %w", path, err)
	}
	man, err := NewManifest(name, version, m, nil)
	if err != nil {
		return nil, fmt.Errorf("catalog: %s: %w", path, err)
	}

	if side, err := os.ReadFile(manifestPathFor(path)); err == nil {
		var prev Manifest
		if err := json.Unmarshal(side, &prev); err != nil {
			return nil, fmt.Errorf("catalog: %s: corrupt manifest sidecar: %w", path, err)
		}
		if prev.Digest != "" && prev.Digest != man.Digest {
			return nil, fmt.Errorf("catalog: %s: digest mismatch (manifest %.12s…, model bytes %.12s…)",
				path, prev.Digest, man.Digest)
		}
		if !prev.CreatedAt.IsZero() {
			man.CreatedAt = prev.CreatedAt
		}
		man.Training = prev.Training
	} else if !errors.Is(err, os.ErrNotExist) {
		return nil, err
	}

	emb, err := m.Quantize(fixp.MFLinear)
	if err != nil {
		return nil, fmt.Errorf("catalog: %s: model does not quantize: %w", path, err)
	}
	return &Entry{Manifest: man, Emb: emb, filePath: path}, nil
}

// ManifestFor recomputes the manifest a model file would register with —
// what cmd/rptrain calls before WriteManifest.
func ManifestFor(name string, version int, m *core.Model, tr *TrainingInfo, created time.Time) (Manifest, error) {
	man, err := NewManifest(name, version, m, tr)
	if err != nil {
		return Manifest{}, err
	}
	if !created.IsZero() {
		man.CreatedAt = created.UTC()
	}
	return man, nil
}
