// Package catalog is the versioned model store behind the serving layer:
// the successor of the old pipeline.Registry, redesigned for a server whose
// models are uploaded, swapped and retired while requests are in flight.
//
// The core shape is copy-on-write over an immutable Snapshot:
//
//   - Readers (every classify/stream request) call Catalog.Snapshot — one
//     atomic pointer load, no locks — and resolve "name" or "name@vN"
//     references against that frozen view. A stream opened against a
//     snapshot keeps its model for its whole life, even if the version is
//     deleted mid-stream.
//   - Writers (admin endpoints, directory reload) serialize on a mutex,
//     build a new Snapshot beside the old one and swap the pointer. In
//     Put/Delete/SetDefault the hot path never observes a half-applied
//     mutation.
//
// Versions are immutable and append-only per name: Put always creates
// max+1, re-uploading identical bytes is rejected by digest
// (CodeModelExists), and "name" floats to the newest version while
// "name@vN" stays pinned. When the catalog is opened over a directory,
// every mutation is persisted (model binary + manifest sidecar, written
// atomically) before it becomes visible, so a restart — or a SIGHUP-style
// Reload — reconstructs the same catalog, digests verified.
package catalog

import (
	"errors"
	"sort"
	"sync"
	"sync/atomic"

	"rpbeat/internal/apierr"
	"rpbeat/internal/core"
	"rpbeat/internal/fixp"
)

// Entry is one resolved model version: its manifest and the quantized
// executable form streams classify against. Entries are immutable and
// shared across snapshots; the embedded classifier is read-only after
// Quantize, so any number of streams may use it concurrently.
type Entry struct {
	Manifest Manifest
	Emb      *core.Embedded

	// filePath is the backing file of a directory catalog ("" for
	// memory-only entries). Deletes remove exactly this file, which may be
	// a hand-dropped bare name (ecg.json) rather than the canonical
	// ecg@v1.bin.
	filePath string
}

// Snapshot is an immutable view of the catalog. All methods are safe for
// concurrent use by construction — nothing mutates a snapshot once
// published.
type Snapshot struct {
	models     map[string][]*Entry // per name, ascending version
	nextVer    map[string]int      // per name, smallest version Put may assign
	defaultRef string              // "" = no default configured
}

// emptySnapshot is what a fresh catalog serves.
var emptySnapshot = &Snapshot{models: map[string][]*Entry{}}

// Resolve returns the entry a reference addresses: "" means the default
// reference, "name" the newest version of name, "name@vN" exactly vN.
func (s *Snapshot) Resolve(ref string) (*Entry, error) {
	if ref == "" {
		if s.defaultRef == "" {
			return nil, apierr.New(apierr.CodeModelNotFound, "no default model configured")
		}
		ref = s.defaultRef
	}
	name, version, err := ParseRef(ref)
	if err != nil {
		return nil, err
	}
	versions := s.models[name]
	if len(versions) == 0 {
		return nil, apierr.New(apierr.CodeModelNotFound, "model %q not found", name)
	}
	if version == 0 {
		return versions[len(versions)-1], nil
	}
	for _, e := range versions {
		if e.Manifest.Version == version {
			return e, nil
		}
	}
	return nil, apierr.New(apierr.CodeModelNotFound, "model %q has no version %d", name, version)
}

// Default returns the configured default reference ("" when unset).
func (s *Snapshot) Default() string { return s.defaultRef }

// Names returns the distinct model names, sorted.
func (s *Snapshot) Names() []string {
	names := make([]string, 0, len(s.models))
	for n := range s.models {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Versions returns the entries of one name, ascending by version (nil for
// an unknown name).
func (s *Snapshot) Versions(name string) []*Entry { return s.models[name] }

// Len counts model versions across all names.
func (s *Snapshot) Len() int {
	n := 0
	for _, v := range s.models {
		n += len(v)
	}
	return n
}

// clone copies the snapshot's maps (and per-name slices) for a writer to
// mutate before publishing. Entries themselves are shared, never copied.
func (s *Snapshot) clone() *Snapshot {
	next := &Snapshot{
		models:     make(map[string][]*Entry, len(s.models)),
		nextVer:    make(map[string]int, len(s.nextVer)),
		defaultRef: s.defaultRef,
	}
	for name, versions := range s.models {
		next.models[name] = append([]*Entry(nil), versions...)
	}
	for name, v := range s.nextVer {
		next.nextVer[name] = v
	}
	return next
}

// Catalog is the mutable, concurrency-safe model store. The zero value is
// not usable; construct with New (memory-only) or Open (directory-backed).
type Catalog struct {
	mu   sync.Mutex // serializes writers
	snap atomic.Pointer[Snapshot]
	dir  string // "" = memory-only
}

// New returns an empty, memory-only catalog (models live and die with the
// process — the shape tests and examples use).
func New() *Catalog {
	c := &Catalog{}
	c.snap.Store(emptySnapshot)
	return c
}

// Open returns a catalog persisted under dir, creating the directory if
// needed and loading every model already there (rptrain output dropped in
// by hand, or the catalog's own persisted uploads).
func Open(dir string) (*Catalog, error) {
	c := &Catalog{dir: dir}
	c.snap.Store(emptySnapshot)
	if err := c.Reload(); err != nil {
		return nil, err
	}
	return c, nil
}

// Dir returns the backing directory ("" for a memory-only catalog).
func (c *Catalog) Dir() string { return c.dir }

// Snapshot returns the current immutable view — one atomic load, safe on
// any hot path.
func (c *Catalog) Snapshot() *Snapshot { return c.snap.Load() }

// Put validates, quantizes and registers a model under the next version of
// name, returning its manifest. The first model put into an empty catalog
// becomes the default (floating, so later versions take over). Identical
// bytes already present under the name are rejected with CodeModelExists.
// Version numbers are never reused within a catalog's lifetime, even after
// the latest version is deleted — a pinned name@vN can go away, but never
// silently change meaning. (Across a restart of a directory catalog,
// numbering resumes from the files still on disk.)
func (c *Catalog) Put(name string, m *core.Model, tr *TrainingInfo) (Manifest, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	cur := c.snap.Load()

	version := 1
	if nv := cur.nextVer[name]; nv > version {
		version = nv
	}
	if versions := cur.models[name]; len(versions) > 0 {
		if v := versions[len(versions)-1].Manifest.Version + 1; v > version {
			version = v
		}
	}
	man, err := NewManifest(name, version, m, tr)
	if err != nil {
		return Manifest{}, err
	}
	for _, e := range cur.models[name] {
		if e.Manifest.Digest == man.Digest {
			return Manifest{}, apierr.New(apierr.CodeModelExists,
				"model %q already holds these exact bytes as version %d (digest %.12s…)",
				name, e.Manifest.Version, man.Digest)
		}
	}
	emb, err := m.Quantize(fixp.MFLinear)
	if err != nil {
		return Manifest{}, apierr.New(apierr.CodeBadInput, "model does not quantize: %v", err)
	}
	entry := &Entry{Manifest: man, Emb: emb}

	if c.dir != "" {
		if err := c.persistEntry(m, man); err != nil {
			return Manifest{}, err
		}
		entry.filePath = entryPath(c.dir, man)
	}
	next := cur.clone()
	next.models[name] = append(next.models[name], entry)
	next.nextVer[name] = version + 1
	// Only a genuinely empty catalog auto-defaults to its first model. A
	// populated catalog without a default (multi-name directory, no DEFAULT
	// file) waits for an explicit SetDefault — an upload must never steal
	// the default traffic.
	if len(cur.models) == 0 && next.defaultRef == "" {
		next.defaultRef = name
		if c.dir != "" {
			if err := c.persistDefault(name); err != nil {
				// Roll the persisted model files back: a failed Put must not
				// resurrect from disk on the next Reload.
				if rmErr := c.removeEntryFiles(entry); rmErr != nil {
					err = errors.Join(err, rmErr)
				}
				return Manifest{}, err
			}
		}
	}
	c.snap.Store(next)
	return man, nil
}

// Delete retires one explicit version. Deleting the version the default
// reference resolves through — a pinned default, or the last version of a
// floating default — is refused (CodeBadInput): repoint the default first,
// so "" never silently stops resolving.
func (c *Catalog) Delete(name string, version int) (Manifest, error) {
	if err := ValidateName(name); err != nil {
		return Manifest{}, err
	}
	if version < 1 {
		return Manifest{}, apierr.New(apierr.CodeBadInput,
			"delete requires an explicit version (name@vN)")
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	cur := c.snap.Load()

	versions := cur.models[name]
	idx := -1
	for i, e := range versions {
		if e.Manifest.Version == version {
			idx = i
			break
		}
	}
	if idx < 0 {
		if len(versions) == 0 {
			return Manifest{}, apierr.New(apierr.CodeModelNotFound, "model %q not found", name)
		}
		return Manifest{}, apierr.New(apierr.CodeModelNotFound, "model %q has no version %d", name, version)
	}
	if defName, defVer, err := ParseRef(cur.defaultRef); cur.defaultRef != "" && err == nil && defName == name {
		if defVer == version || (defVer == 0 && len(versions) == 1) {
			return Manifest{}, apierr.New(apierr.CodeBadInput,
				"model %s@v%d is what the default %q resolves to; set a new default first",
				name, version, cur.defaultRef)
		}
	}
	man := versions[idx].Manifest

	// Remove the authoritative model file first: if that fails, nothing
	// changed (files and snapshot both intact). Once it is gone the delete
	// is committed — the snapshot must follow, and a failure removing the
	// manifest sidecar is tolerated (loadDir ignores orphan sidecars), so
	// memory and disk can never disagree about whether the version exists.
	if err := c.removeEntryFiles(versions[idx]); err != nil {
		return Manifest{}, err
	}
	next := cur.clone()
	left := append(append([]*Entry(nil), versions[:idx]...), versions[idx+1:]...)
	if len(left) == 0 {
		delete(next.models, name)
	} else {
		next.models[name] = left
	}
	c.snap.Store(next)
	return man, nil
}

// SetDefault repoints the default reference. A bare "name" floats with new
// uploads; "name@vN" pins a version. The reference must resolve now.
func (c *Catalog) SetDefault(ref string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	cur := c.snap.Load()
	if ref == "" {
		return apierr.New(apierr.CodeBadInput, "empty default reference")
	}
	if _, err := cur.Resolve(ref); err != nil {
		return err
	}
	if c.dir != "" {
		if err := c.persistDefault(ref); err != nil {
			return err
		}
	}
	next := cur.clone()
	next.defaultRef = ref
	c.snap.Store(next)
	return nil
}
