package catalog

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"rpbeat/internal/apierr"
	"rpbeat/internal/bitemb"
	"rpbeat/internal/core"
	"rpbeat/internal/nfc"
	"rpbeat/internal/rng"
	"rpbeat/internal/rp"
)

// fabricate builds a structurally valid model without training (kernel
// parameters are irrelevant to catalog semantics). Different seeds give
// different digests.
func fabricate(seed uint64) *core.Model {
	r := rng.New(seed)
	const k, d = 4, 16
	P := &rp.Matrix{K: k, D: d, El: make([]int8, k*d)}
	for i := range P.El {
		P.El[i] = r.Trit()
	}
	mf := nfc.NewParams(k)
	for i := range mf.C {
		mf.C[i] = 100 * (r.Float64() - 0.5)
		mf.Sigma[i] = 1 + 20*r.Float64()
	}
	return &core.Model{K: k, D: d, Downsample: 1, P: P, MF: mf, AlphaTrain: 0.5, MinARR: 0.97}
}

// fabricateBitemb is fabricate for the binary-embedding head.
func fabricateBitemb(seed uint64) *core.Model {
	r := rng.New(seed)
	const k, d = 4, 16
	bp := &bitemb.Params{K: k, Thresholds: make([]int32, k)}
	for j := range bp.Thresholds {
		bp.Thresholds[j] = int32(r.Intn(200) - 100)
	}
	for l := range bp.Protos {
		bp.Protos[l] = make([]uint64, bitemb.Words(k))
		for j := 0; j < k; j++ {
			if r.Intn(2) == 1 {
				bp.Protos[l][j/64] |= 1 << uint(j&63)
			}
		}
		bp.Radii[l] = uint16(k)
	}
	return &core.Model{
		Kind: core.KindBitemb, K: k, D: d, Downsample: 1,
		P: rp.NewVerySparse(r, k, d), Bit: bp, AlphaTrain: 0.5, MinARR: 0.97,
	}
}

func wantCode(t *testing.T, err error, code apierr.Code) {
	t.Helper()
	if !apierr.IsCode(err, code) {
		t.Fatalf("err = %v, want code %q", err, code)
	}
}

func TestValidateName(t *testing.T) {
	for _, ok := range []string{"ecg", "a", "model-7_b.v2", "ECG90hz", "0start"} {
		if err := ValidateName(ok); err != nil {
			t.Fatalf("ValidateName(%q) = %v", ok, err)
		}
	}
	bad := []string{"", "-lead", ".hidden", "a@b", "a/b", "a b", strings.Repeat("x", 65), "ümlaut"}
	for _, name := range bad {
		wantCode(t, ValidateName(name), apierr.CodeBadInput)
	}
}

func TestParseRef(t *testing.T) {
	cases := []struct {
		ref     string
		name    string
		version int
	}{
		{"ecg", "ecg", 0},
		{"ecg@v1", "ecg", 1},
		{"a-b.c@v42", "a-b.c", 42},
	}
	for _, tc := range cases {
		name, v, err := ParseRef(tc.ref)
		if err != nil || name != tc.name || v != tc.version {
			t.Fatalf("ParseRef(%q) = %q,%d,%v; want %q,%d", tc.ref, name, v, err, tc.name, tc.version)
		}
	}
	for _, bad := range []string{"", "@v1", "ecg@", "ecg@1", "ecg@v", "ecg@v0", "ecg@v-3", "ecg@vx", "ecg@v1x", "e cg@v1"} {
		if _, _, err := ParseRef(bad); err == nil {
			t.Fatalf("ParseRef(%q) accepted", bad)
		} else {
			wantCode(t, err, apierr.CodeBadInput)
		}
	}
}

func TestPutVersioningAndResolve(t *testing.T) {
	c := New()
	if _, err := c.Snapshot().Resolve(""); !apierr.IsCode(err, apierr.CodeModelNotFound) {
		t.Fatalf("empty catalog default resolve: %v", err)
	}

	m1, err := c.Put("ecg", fabricate(1), &TrainingInfo{Tool: "test", Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if m1.Version != 1 || m1.Ref() != "ecg@v1" || m1.Digest == "" || m1.SizeBytes == 0 {
		t.Fatalf("first manifest: %+v", m1)
	}
	if got := c.Snapshot().Default(); got != "ecg" {
		t.Fatalf("first put should set a floating default, got %q", got)
	}

	m2, err := c.Put("ecg", fabricate(2), nil)
	if err != nil {
		t.Fatal(err)
	}
	if m2.Version != 2 {
		t.Fatalf("second put version = %d", m2.Version)
	}

	snap := c.Snapshot()
	for ref, wantDigest := range map[string]string{
		"":       m2.Digest, // default floats to latest
		"ecg":    m2.Digest,
		"ecg@v2": m2.Digest,
		"ecg@v1": m1.Digest,
	} {
		e, err := snap.Resolve(ref)
		if err != nil {
			t.Fatalf("Resolve(%q): %v", ref, err)
		}
		if e.Manifest.Digest != wantDigest {
			t.Fatalf("Resolve(%q) → v%d, wrong version", ref, e.Manifest.Version)
		}
		if e.Emb == nil {
			t.Fatalf("Resolve(%q): no embedded classifier", ref)
		}
	}

	_, err = snap.Resolve("nope")
	wantCode(t, err, apierr.CodeModelNotFound)
	_, err = snap.Resolve("ecg@v9")
	wantCode(t, err, apierr.CodeModelNotFound)
	_, err = snap.Resolve("ecg@@")
	wantCode(t, err, apierr.CodeBadInput)

	if n := snap.Len(); n != 2 {
		t.Fatalf("Len = %d", n)
	}
	if names := snap.Names(); len(names) != 1 || names[0] != "ecg" {
		t.Fatalf("Names = %v", names)
	}
	if versions := snap.Versions("ecg"); len(versions) != 2 || versions[0].Manifest.Version != 1 {
		t.Fatalf("Versions misordered: %+v", versions)
	}
}

// TestUploadNeverStealsDefault: a populated catalog with no default (e.g. a
// multi-name directory without a DEFAULT file) must not hand the default to
// whatever is uploaded next; only the first model of an empty catalog
// auto-defaults.
func TestUploadNeverStealsDefault(t *testing.T) {
	dir := t.TempDir()
	for _, name := range []string{"a", "b"} {
		data, err := json.Marshal(fabricate(1))
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dir, name+".json"), data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	c, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if def := c.Snapshot().Default(); def != "" {
		t.Fatalf("multi-name dir should boot without a default, got %q", def)
	}
	if _, err := c.Put("canary", fabricate(9), nil); err != nil {
		t.Fatal(err)
	}
	if def := c.Snapshot().Default(); def != "" {
		t.Fatalf("upload into a populated catalog stole the default: %q", def)
	}
	if err := c.SetDefault("a"); err != nil {
		t.Fatal(err)
	}
}

// TestReloadKeepsVersionHighWater: deleting the latest version and then
// hot-reloading must not let the retired number be reassigned — the
// in-memory high-water mark survives the reload.
func TestReloadKeepsVersionHighWater(t *testing.T) {
	dir := t.TempDir()
	c, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Put("ecg", fabricate(1), nil); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Put("ecg", fabricate(2), nil); err != nil {
		t.Fatal(err)
	}
	if err := c.SetDefault("ecg@v1"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Delete("ecg", 2); err != nil {
		t.Fatal(err)
	}
	if err := c.Reload(); err != nil {
		t.Fatal(err)
	}
	man, err := c.Put("ecg", fabricate(3), nil)
	if err != nil {
		t.Fatal(err)
	}
	if man.Version != 3 {
		t.Fatalf("reload reissued a retired version number: got v%d, want v3", man.Version)
	}
}

func TestPutDuplicateDigest(t *testing.T) {
	c := New()
	if _, err := c.Put("ecg", fabricate(1), nil); err != nil {
		t.Fatal(err)
	}
	_, err := c.Put("ecg", fabricate(1), nil)
	wantCode(t, err, apierr.CodeModelExists)
	// Same bytes under a different name are a new lineage, not a conflict.
	if _, err := c.Put("other", fabricate(1), nil); err != nil {
		t.Fatal(err)
	}
}

func TestPutRejectsBadNames(t *testing.T) {
	c := New()
	_, err := c.Put("bad@name", fabricate(1), nil)
	wantCode(t, err, apierr.CodeBadInput)
	_, err = c.Put("", fabricate(1), nil)
	wantCode(t, err, apierr.CodeBadInput)
}

func TestDeleteSemantics(t *testing.T) {
	c := New()
	if _, err := c.Put("ecg", fabricate(1), nil); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Put("ecg", fabricate(2), nil); err != nil {
		t.Fatal(err)
	}

	// v1 is not what the floating default resolves to — deletable.
	man, err := c.Delete("ecg", 1)
	if err != nil {
		t.Fatal(err)
	}
	if man.Version != 1 {
		t.Fatalf("deleted %+v", man)
	}
	_, err = c.Snapshot().Resolve("ecg@v1")
	wantCode(t, err, apierr.CodeModelNotFound)
	if _, err := c.Snapshot().Resolve("ecg"); err != nil {
		t.Fatalf("latest should survive: %v", err)
	}

	// The last version of the default name is protected.
	_, err = c.Delete("ecg", 2)
	wantCode(t, err, apierr.CodeBadInput)

	// Repoint the default, then the delete goes through.
	if _, err := c.Put("spare", fabricate(3), nil); err != nil {
		t.Fatal(err)
	}
	if err := c.SetDefault("spare"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Delete("ecg", 2); err != nil {
		t.Fatal(err)
	}
	_, err = c.Snapshot().Resolve("ecg")
	wantCode(t, err, apierr.CodeModelNotFound)

	// Deleting the unknown and the missing version are typed.
	_, err = c.Delete("ghost", 1)
	wantCode(t, err, apierr.CodeModelNotFound)
	_, err = c.Delete("spare", 9)
	wantCode(t, err, apierr.CodeModelNotFound)
	_, err = c.Delete("spare", 0)
	wantCode(t, err, apierr.CodeBadInput)
}

// TestVersionNumbersNeverReused: deleting the latest version must not free
// its number — a later Put gets a fresh version, so a pinned name@vN can
// disappear but never silently change meaning.
func TestVersionNumbersNeverReused(t *testing.T) {
	c := New()
	if _, err := c.Put("ecg", fabricate(1), nil); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Put("ecg", fabricate(2), nil); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Delete("ecg", 2); err != nil {
		t.Fatal(err)
	}
	man, err := c.Put("ecg", fabricate(3), nil)
	if err != nil {
		t.Fatal(err)
	}
	if man.Version != 3 {
		t.Fatalf("deleted version number was reused: new Put got v%d, want v3", man.Version)
	}
	// Even after every version of a name is gone, its numbering continues.
	if _, err := c.Put("spare", fabricate(4), nil); err != nil {
		t.Fatal(err)
	}
	if err := c.SetDefault("spare"); err != nil {
		t.Fatal(err)
	}
	for _, v := range []int{1, 3} {
		if _, err := c.Delete("ecg", v); err != nil {
			t.Fatal(err)
		}
	}
	man, err = c.Put("ecg", fabricate(5), nil)
	if err != nil {
		t.Fatal(err)
	}
	if man.Version != 4 {
		t.Fatalf("numbering restarted after full deletion: got v%d, want v4", man.Version)
	}
}

// TestDeleteOfBareFilePersists: a model loaded from a hand-dropped bare
// file (ecg.json, not ecg@v1.bin) must have that actual file removed on
// Delete, so the deletion survives Reload and restart.
func TestDeleteOfBareFilePersists(t *testing.T) {
	dir := t.TempDir()
	data, err := json.Marshal(fabricate(4))
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "ecg.json")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	c, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	// The bare file is the default's only version: repoint first.
	if _, err := c.Put("spare", fabricate(5), nil); err != nil {
		t.Fatal(err)
	}
	if err := c.SetDefault("spare"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Delete("ecg", 1); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(path); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("bare model file survived its delete: %v", err)
	}
	if err := c.Reload(); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Snapshot().Resolve("ecg"); !apierr.IsCode(err, apierr.CodeModelNotFound) {
		t.Fatalf("deleted bare-file model resurrected on reload: %v", err)
	}
}

func TestPinnedDefault(t *testing.T) {
	c := New()
	m1, err := c.Put("ecg", fabricate(1), nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.SetDefault("ecg@v1"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Put("ecg", fabricate(2), nil); err != nil {
		t.Fatal(err)
	}
	e, err := c.Snapshot().Resolve("")
	if err != nil {
		t.Fatal(err)
	}
	if e.Manifest.Digest != m1.Digest {
		t.Fatal("pinned default drifted to a newer version")
	}
	// The pinned version is protected from deletion; its sibling is not.
	_, err = c.Delete("ecg", 1)
	wantCode(t, err, apierr.CodeBadInput)
	if _, err := c.Delete("ecg", 2); err != nil {
		t.Fatal(err)
	}

	wantCode(t, c.SetDefault("ghost"), apierr.CodeModelNotFound)
	wantCode(t, c.SetDefault("ecg@v7"), apierr.CodeModelNotFound)
	wantCode(t, c.SetDefault(""), apierr.CodeBadInput)
}

func TestDirPersistAndReload(t *testing.T) {
	dir := t.TempDir()
	c, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	tr := &TrainingInfo{Tool: "rptrain", Seed: 9, PopSize: 4, Generations: 2}
	m1, err := c.Put("ecg", fabricate(1), tr)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Put("ecg", fabricate(2), nil); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Put("holter", fabricate(3), nil); err != nil {
		t.Fatal(err)
	}
	if err := c.SetDefault("holter"); err != nil {
		t.Fatal(err)
	}

	// A fresh Open over the same directory reconstructs everything.
	c2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	snap := c2.Snapshot()
	if snap.Len() != 3 {
		t.Fatalf("reloaded Len = %d", snap.Len())
	}
	if snap.Default() != "holter" {
		t.Fatalf("reloaded default = %q", snap.Default())
	}
	e, err := snap.Resolve("ecg@v1")
	if err != nil {
		t.Fatal(err)
	}
	if e.Manifest.Digest != m1.Digest {
		t.Fatal("digest changed across persist/reload")
	}
	if e.Manifest.Training == nil || e.Manifest.Training.Tool != "rptrain" {
		t.Fatalf("training provenance lost: %+v", e.Manifest.Training)
	}
	if !e.Manifest.CreatedAt.Equal(m1.CreatedAt) {
		t.Fatalf("CreatedAt drifted: %v vs %v", e.Manifest.CreatedAt, m1.CreatedAt)
	}

	// Delete persists too.
	if _, err := c2.Delete("ecg", 1); err != nil {
		t.Fatal(err)
	}
	c3, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c3.Snapshot().Resolve("ecg@v1"); !apierr.IsCode(err, apierr.CodeModelNotFound) {
		t.Fatalf("deleted version survived reload: %v", err)
	}
}

// TestDirMixedKindsPersistAndReload holds a directory catalog carrying both
// head kinds under one name: versions of different kinds coexist, manifests
// carry the kind through persist/reload, digests are stable, and the
// reloaded bitemb entry serves a working binary-head Embedded.
func TestDirMixedKindsPersistAndReload(t *testing.T) {
	dir := t.TempDir()
	c, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Put("ecg", fabricate(1), nil); err != nil {
		t.Fatal(err)
	}
	mb, err := c.Put("ecg", fabricateBitemb(2), nil)
	if err != nil {
		t.Fatal(err)
	}
	if mb.Kind != "bitemb" {
		t.Fatalf("bitemb upload manifest kind = %q", mb.Kind)
	}

	c2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	snap := c2.Snapshot()
	e1, err := snap.Resolve("ecg@v1")
	if err != nil {
		t.Fatal(err)
	}
	if e1.Manifest.Kind != "fuzzy" {
		t.Fatalf("reloaded v1 kind = %q, want fuzzy", e1.Manifest.Kind)
	}
	e2, err := snap.Resolve("ecg@v2")
	if err != nil {
		t.Fatal(err)
	}
	if e2.Manifest.Kind != "bitemb" {
		t.Fatalf("reloaded v2 kind = %q, want bitemb", e2.Manifest.Kind)
	}
	if e2.Manifest.Digest != mb.Digest {
		t.Fatal("bitemb digest changed across persist/reload")
	}
	if e2.Emb.Kind != core.KindBitemb || e2.Emb.Bit == nil {
		t.Fatalf("reloaded bitemb entry quantized to kind %v", e2.Emb.Kind)
	}
	// The reloaded embedded form classifies without error on a zero window.
	if d := e2.Emb.Classify(make([]int32, e2.Emb.D)); d < 0 {
		t.Fatalf("classify returned %v", d)
	}
}

func TestDirLoadsBareTrainOutput(t *testing.T) {
	// The README flow: rptrain writes ecg.json (+ manifest sidecar), the
	// file is dropped into the models dir, rpserve opens it as ecg@v1.
	dir := t.TempDir()
	m := fabricate(4)
	data, err := json.Marshal(m)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "ecg.json")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	man, err := ManifestFor("ecg", 1, m, &TrainingInfo{Tool: "rptrain", Seed: 4}, man0Time())
	if err != nil {
		t.Fatal(err)
	}
	if err := WriteManifest(path, man); err != nil {
		t.Fatal(err)
	}

	c, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	snap := c.Snapshot()
	if snap.Default() != "ecg" {
		t.Fatalf("sole name should be the default, got %q", snap.Default())
	}
	e, err := snap.Resolve("ecg@v1")
	if err != nil {
		t.Fatal(err)
	}
	if e.Manifest.Training == nil || e.Manifest.Training.Seed != 4 {
		t.Fatalf("sidecar provenance not picked up: %+v", e.Manifest.Training)
	}
	if !e.Manifest.CreatedAt.Equal(man0Time()) {
		t.Fatalf("sidecar CreatedAt not picked up: %v", e.Manifest.CreatedAt)
	}
}

func TestDirRejectsDigestMismatch(t *testing.T) {
	dir := t.TempDir()
	c, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	man, err := c.Put("ecg", fabricate(1), nil)
	if err != nil {
		t.Fatal(err)
	}
	// Corrupt the sidecar's digest; reload must refuse, old snapshot stays.
	side := filepath.Join(dir, fmt.Sprintf("ecg@v%d.manifest.json", man.Version))
	man.Digest = strings.Repeat("0", 64)
	data, _ := json.Marshal(man)
	if err := os.WriteFile(side, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := c.Reload(); err == nil || !strings.Contains(err.Error(), "digest mismatch") {
		t.Fatalf("Reload with corrupt manifest: %v", err)
	}
	if _, err := c.Snapshot().Resolve("ecg"); err != nil {
		t.Fatalf("failed reload should leave the old snapshot serving: %v", err)
	}
}

func TestMemoryCatalogHasNoReload(t *testing.T) {
	if err := New().Reload(); err == nil {
		t.Fatal("memory-only Reload should error")
	}
}

// TestConcurrentReadersAndWriters is the copy-on-write race test: readers
// resolve against snapshots while writers put, delete and repoint the
// default. Run under -race (CI does), correctness is "no torn reads": every
// successfully resolved entry is internally consistent.
func TestConcurrentReadersAndWriters(t *testing.T) {
	c := New()
	if _, err := c.Put("base", fabricate(0), nil); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				snap := c.Snapshot()
				for _, ref := range []string{"", "base", "churn"} {
					e, err := snap.Resolve(ref)
					if err != nil {
						continue // churn versions come and go; typed errors are fine
					}
					if e.Emb == nil || e.Manifest.Digest == "" {
						t.Error("torn entry observed")
						return
					}
				}
			}
		}()
	}
	for i := uint64(1); i <= 30; i++ {
		man, err := c.Put("churn", fabricate(i), nil)
		if err != nil {
			t.Fatal(err)
		}
		if i%3 == 0 {
			if err := c.SetDefault("churn@v" + fmt.Sprint(man.Version)); err != nil {
				t.Fatal(err)
			}
			if err := c.SetDefault("base"); err != nil {
				t.Fatal(err)
			}
		}
		if man.Version > 1 {
			if _, err := c.Delete("churn", man.Version-1); err != nil {
				t.Fatal(err)
			}
		}
	}
	close(stop)
	wg.Wait()
}

func man0Time() time.Time {
	t0, _ := time.Parse(time.RFC3339, "2026-07-01T12:00:00Z")
	return t0
}
