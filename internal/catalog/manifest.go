package catalog

import (
	"crypto/sha256"
	"encoding/hex"
	"io"
	"strconv"
	"strings"
	"time"

	"rpbeat/internal/apierr"
	"rpbeat/internal/core"
)

// TrainingInfo records how a model was produced — the provenance half of a
// manifest. It is emitted by cmd/rptrain and carried verbatim through
// uploads and directory loads; the catalog never interprets it.
type TrainingInfo struct {
	Tool        string  `json:"tool,omitempty"` // e.g. "rptrain"
	Seed        uint64  `json:"seed,omitempty"`
	Scale       float64 `json:"scale,omitempty"` // dataset scale
	PopSize     int     `json:"popSize,omitempty"`
	Generations int     `json:"generations,omitempty"`
	MinARR      float64 `json:"minARR,omitempty"`
	AlphaTrain  float64 `json:"alphaTrain,omitempty"`
}

// Manifest is the catalog's description of one model version: identity
// (name@vN), structural dimensions, the SHA-256 digest of the canonical
// binary codec form (recomputed on every upload and directory load — never
// trusted from the wire) and provenance. Manifests are what admin endpoints
// return and what sits next to each model file on disk.
type Manifest struct {
	Name    string `json:"name"`
	Version int    `json:"version"`
	// Kind names the classifier head ("fuzzy" or "bitemb"); empty in
	// manifests written before the field existed, which means fuzzy.
	Kind       string        `json:"kind,omitempty"`
	K          int           `json:"k"`
	D          int           `json:"d"`
	Downsample int           `json:"downsample"`
	Digest     string        `json:"digest"`    // sha256 hex of the binary codec form
	SizeBytes  int           `json:"sizeBytes"` // binary codec size
	CreatedAt  time.Time     `json:"createdAt"`
	Training   *TrainingInfo `json:"training,omitempty"`
}

// Ref returns the fully qualified "name@vN" reference of the manifest.
func (m Manifest) Ref() string { return m.Name + "@v" + strconv.Itoa(m.Version) }

// NewManifest computes the manifest of a model under the given identity:
// digest and size come from the canonical binary encoding (one pass through
// WriteBinary), dimensions from the model itself. CreatedAt is stamped now
// (UTC); pass the moment of training via a pre-filled manifest when
// reloading from disk instead.
func NewManifest(name string, version int, m *core.Model, tr *TrainingInfo) (Manifest, error) {
	if err := ValidateName(name); err != nil {
		return Manifest{}, err
	}
	if version < 1 {
		return Manifest{}, apierr.New(apierr.CodeBadInput, "catalog: version %d < 1", version)
	}
	h := sha256.New()
	var cw countWriter
	if err := m.WriteBinary(io.MultiWriter(h, &cw)); err != nil {
		return Manifest{}, apierr.New(apierr.CodeBadInput, "catalog: invalid model: %v", err)
	}
	return Manifest{
		Name: name, Version: version, Kind: m.Kind.String(),
		K: m.K, D: m.D, Downsample: m.Downsample,
		Digest: hex.EncodeToString(h.Sum(nil)), SizeBytes: cw.n,
		CreatedAt: time.Now().UTC(),
		Training:  tr,
	}, nil
}

type countWriter struct{ n int }

func (c *countWriter) Write(p []byte) (int, error) {
	c.n += len(p)
	return len(p), nil
}

// ValidateName enforces the model-name alphabet: 1–64 characters of
// [a-zA-Z0-9._-], starting alphanumeric. '@' is reserved for version
// references, '/' and '\' for the filesystem the catalog persists to.
func ValidateName(name string) error {
	if name == "" {
		return apierr.New(apierr.CodeBadInput, "catalog: empty model name")
	}
	if len(name) > 64 {
		return apierr.New(apierr.CodeBadInput, "catalog: model name longer than 64 bytes")
	}
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9':
		case (c == '.' || c == '_' || c == '-') && i > 0:
		default:
			return apierr.New(apierr.CodeBadInput,
				"catalog: invalid model name %q (want [a-zA-Z0-9._-], starting alphanumeric)", name)
		}
	}
	return nil
}

// ParseRef splits a model reference: "name" selects the latest version
// (version 0 here), "name@vN" pins version N. Anything else — empty, bad
// name, "name@", "name@v0", "name@3", trailing junk — is CodeBadInput.
func ParseRef(ref string) (name string, version int, err error) {
	if ref == "" {
		return "", 0, apierr.New(apierr.CodeBadInput, "catalog: empty model reference")
	}
	name, ver, found := strings.Cut(ref, "@")
	if err := ValidateName(name); err != nil {
		return "", 0, err
	}
	if !found {
		return name, 0, nil
	}
	digits, ok := strings.CutPrefix(ver, "v")
	if !ok || digits == "" {
		return "", 0, apierr.New(apierr.CodeBadInput,
			"catalog: malformed reference %q (want name or name@vN)", ref)
	}
	n, convErr := strconv.Atoi(digits)
	if convErr != nil || n < 1 {
		return "", 0, apierr.New(apierr.CodeBadInput,
			"catalog: malformed version in %q (want a positive integer after @v)", ref)
	}
	return name, n, nil
}
