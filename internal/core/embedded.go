package core

import (
	"errors"
	"fmt"

	"rpbeat/internal/beatset"
	"rpbeat/internal/fixp"
	"rpbeat/internal/metrics"
	"rpbeat/internal/nfc"
	"rpbeat/internal/rp"
)

// Embedded is the WBSN-ready classifier produced from a trained Model:
// the 2-bit packed projection matrix, the quantized membership functions
// and the Q15 defuzzification coefficient. Everything it executes at
// classification time is integer arithmetic.
type Embedded struct {
	K, D       int
	Downsample int
	P          *rp.PackedMatrix
	// S is the sparse (non-zero index) form of P, the projection kernel the
	// host-side hot path uses: bit-identical to P's, ~d/3 additions per
	// coefficient instead of d element decodes. It is derived from P by
	// Quantize; a hand-built Embedded may leave it nil, in which case the
	// packed kernel is used. Never serialized (P is the ROM image).
	S   *rp.SparseMatrix
	Cls *fixp.Classifier
	// AlphaTest is the run-time defuzzification coefficient. It starts as
	// the quantized α_train but can be retuned independently (Sec. III-B:
	// "it is possible to tune the defuzzification coefficient α_test
	// independently of the α_train chosen during the training phase").
	AlphaTest fixp.AlphaQ15
}

// Quantize converts the model for embedded execution with the given
// membership shape (MFLinear for deployment; MFTriangular and MFGaussianRef
// exist for the Figure 4/5 comparisons).
func (m *Model) Quantize(kind fixp.MFKind) (*Embedded, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	cls, err := fixp.Quantize(m.MF, kind)
	if err != nil {
		return nil, err
	}
	return &Embedded{
		K:          m.K,
		D:          m.D,
		Downsample: m.Downsample,
		P:          rp.Pack(m.P),
		S:          rp.NewSparse(m.P),
		Cls:        cls,
		AlphaTest:  fixp.AlphaToQ15(m.AlphaTrain),
	}, nil
}

// Validate checks structural consistency.
func (e *Embedded) Validate() error {
	if e.P == nil || e.Cls == nil {
		return errors.New("core: embedded model missing projection or classifier")
	}
	if err := e.Cls.Validate(); err != nil {
		return err
	}
	if e.P.K != e.K || e.Cls.K != e.K || e.P.D != e.D {
		return fmt.Errorf("core: embedded dimensions inconsistent (K=%d D=%d, P %dx%d, cls K=%d)",
			e.K, e.D, e.P.K, e.P.D, e.Cls.K)
	}
	if e.S != nil {
		if e.S.K != e.K || e.S.D != e.D {
			return fmt.Errorf("core: sparse projection %dx%d does not match K=%d D=%d",
				e.S.K, e.S.D, e.K, e.D)
		}
		if err := e.S.Validate(); err != nil {
			return err
		}
	}
	return nil
}

// ProjectIntInto runs the integer projection through the fastest available
// representation (sparse when present, packed otherwise) into a caller-owned
// slice of length K. All representations yield bit-identical results.
//
//rpbeat:allocfree
func (e *Embedded) ProjectIntInto(window []int32, u []int32) {
	if e.S != nil {
		e.S.ProjectIntInto(window, u)
		return
	}
	e.P.ProjectIntInto(window, u)
}

// Classify runs the integer pipeline on one beat window of int32 ADC counts
// (already downsampled to length D). It allocates scratch per call; hot
// paths should hold buffers and use ClassifyInto.
func (e *Embedded) Classify(window []int32) nfc.Decision {
	return e.ClassifyInto(window, make([]int32, e.K), make([]uint16, e.Cls.GradeBufLen()))
}

// ClassifyInto is Classify with caller-provided scratch — u of length K and
// grades of length Cls.GradeBufLen() — the zero-allocation per-beat path
// that pipeline.Pipeline and the serving layer run.
//
//rpbeat:allocfree
func (e *Embedded) ClassifyInto(window []int32, u []int32, grades []uint16) nfc.Decision {
	e.ProjectIntInto(window, u)
	return e.Cls.ClassifyInto(u, e.AlphaTest, grades)
}

// Evaluate runs the integer pipeline over the indexed beats, returning
// per-beat fuzzy values (converted to float64 for the shared metrics
// machinery; ratios are what matters and they carry over exactly).
func (e *Embedded) Evaluate(ds *beatset.Dataset, idx []int) []metrics.Eval {
	labels := ds.Labels(idx)
	evals := make([]metrics.Eval, len(idx))
	u := make([]int32, e.K)
	grades := make([]uint16, e.Cls.GradeBufLen())
	for i, b := range idx {
		w := ds.IntWindow(b, e.Downsample)
		e.ProjectIntInto(w, u)
		fv := e.Cls.FuzzyValues(u, grades)
		evals[i] = metrics.Eval{
			Label: labels[i],
			F: [nfc.NumClasses]float64{
				float64(fv[0]), float64(fv[1]), float64(fv[2]),
			},
		}
	}
	return evals
}

// MemoryBytes reports the data footprint the node must hold: the packed
// projection matrix plus the MF parameter tables. The host-side sparse
// kernel is not part of it — see HostBytes.
func (e *Embedded) MemoryBytes() int {
	return e.P.ByteSize() + e.Cls.TableBytes()
}

// HostBytes reports the server-side data footprint: the node tables plus
// the sparse projection form the host hot path actually runs. This is the
// per-model figure capacity planning for a many-streams Engine should use.
func (e *Embedded) HostBytes() int {
	n := e.MemoryBytes()
	if e.S != nil {
		n += e.S.ByteSize()
	}
	return n
}
