package core

import (
	"errors"
	"fmt"

	"rpbeat/internal/beatset"
	"rpbeat/internal/bitemb"
	"rpbeat/internal/fixp"
	"rpbeat/internal/metrics"
	"rpbeat/internal/nfc"
	"rpbeat/internal/rp"
)

// Embedded is the WBSN-ready classifier produced from a trained Model: the
// 2-bit packed projection matrix, one integer head (quantized membership
// functions for KindFuzzy, thresholds + packed prototypes for KindBitemb) and
// the Q15 defuzzification coefficient. Everything it executes at
// classification time is integer arithmetic.
type Embedded struct {
	Kind       Kind
	K, D       int
	Downsample int
	P          *rp.PackedMatrix
	// S is the sparse (non-zero index) form of P, the projection kernel the
	// host-side hot path uses: bit-identical to P's, ~d/3 additions per
	// coefficient instead of d element decodes. It is derived from P by
	// Quantize; a hand-built Embedded may leave it nil, in which case the
	// packed kernel is used. Never serialized (P is the ROM image).
	S *rp.SparseMatrix
	// Cls is the quantized fuzzy head; nil for KindBitemb.
	Cls *fixp.Classifier
	// Bit is the binary embedding head; nil for KindFuzzy. It needs no
	// quantization: its thresholds are already in the node's integer units.
	Bit *bitemb.Params
	// AlphaTest is the run-time defuzzification coefficient. It starts as
	// the quantized α_train but can be retuned independently (Sec. III-B:
	// "it is possible to tune the defuzzification coefficient α_test
	// independently of the α_train chosen during the training phase").
	AlphaTest fixp.AlphaQ15
}

// Scratch holds the caller-owned per-beat buffers ClassifyInto writes into.
// One Scratch serves models of either kind: Grow sizes whichever buffers the
// model's head needs, never shrinking, so a Scratch can be reused across
// models of different kinds and dimensions (the Engine's per-stream reuse
// pattern).
type Scratch struct {
	U      []int32  // projected coefficients, K
	Grades []uint16 // fuzzy membership grades, Cls.GradeBufLen() (fuzzy only)
	Code   []uint64 // packed embedding bits, bitemb.Words(K) (bitemb only)
	Pre    []int32  // fused-kernel prefix sums, bitemb.PreLen(S) (bitemb only)
}

// NewScratch allocates scratch sized for e.
func NewScratch(e *Embedded) *Scratch {
	s := &Scratch{}
	s.Grow(e)
	return s
}

// Grow ensures the scratch is large enough for e, reallocating only buffers
// that are too small.
func (s *Scratch) Grow(e *Embedded) {
	if len(s.U) < e.K {
		s.U = make([]int32, e.K)
	}
	if e.Cls != nil {
		if n := e.Cls.GradeBufLen(); len(s.Grades) < n {
			s.Grades = make([]uint16, n)
		}
	}
	if e.Bit != nil {
		if n := bitemb.Words(e.Bit.K); len(s.Code) < n {
			s.Code = make([]uint64, n)
		}
		if e.S != nil {
			if n := bitemb.PreLen(e.S); len(s.Pre) < n {
				s.Pre = make([]int32, n)
			}
		}
	}
}

// MemoryBytes reports the scratch footprint.
func (s *Scratch) MemoryBytes() int {
	return 4*len(s.U) + 2*len(s.Grades) + 8*len(s.Code) + 4*len(s.Pre)
}

// Quantize converts the model for embedded execution with the given
// membership shape (MFLinear for deployment; MFTriangular and MFGaussianRef
// exist for the Figure 4/5 comparisons). For KindBitemb models the shape is
// irrelevant — the binary head has no membership functions to quantize — and
// is ignored.
func (m *Model) Quantize(kind fixp.MFKind) (*Embedded, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	e := &Embedded{
		Kind:       m.Kind,
		K:          m.K,
		D:          m.D,
		Downsample: m.Downsample,
		P:          rp.Pack(m.P),
		S:          rp.NewSparse(m.P),
		AlphaTest:  fixp.AlphaToQ15(m.AlphaTrain),
	}
	switch m.Kind {
	case KindFuzzy:
		cls, err := fixp.Quantize(m.MF, kind)
		if err != nil {
			return nil, err
		}
		e.Cls = cls
	case KindBitemb:
		e.Bit = m.Bit
	}
	return e, nil
}

// Validate checks structural consistency.
func (e *Embedded) Validate() error {
	if e.P == nil {
		return errors.New("core: embedded model missing projection")
	}
	if e.P.K != e.K || e.P.D != e.D {
		return fmt.Errorf("core: embedded dimensions inconsistent (K=%d D=%d, P %dx%d)",
			e.K, e.D, e.P.K, e.P.D)
	}
	switch e.Kind {
	case KindFuzzy:
		if e.Cls == nil {
			return errors.New("core: embedded fuzzy model missing classifier")
		}
		if e.Bit != nil {
			return errors.New("core: embedded fuzzy model carries a binary head")
		}
		if err := e.Cls.Validate(); err != nil {
			return err
		}
		if e.Cls.K != e.K {
			return fmt.Errorf("core: classifier K=%d does not match K=%d", e.Cls.K, e.K)
		}
	case KindBitemb:
		if e.Bit == nil {
			return errors.New("core: embedded bitemb model missing head")
		}
		if e.Cls != nil {
			return errors.New("core: embedded bitemb model carries a fuzzy classifier")
		}
		if err := e.Bit.Validate(); err != nil {
			return err
		}
		if e.Bit.K != e.K {
			return fmt.Errorf("core: binary head K=%d does not match K=%d", e.Bit.K, e.K)
		}
	default:
		return fmt.Errorf("core: unknown embedded model kind %d", e.Kind)
	}
	if e.S != nil {
		if e.S.K != e.K || e.S.D != e.D {
			return fmt.Errorf("core: sparse projection %dx%d does not match K=%d D=%d",
				e.S.K, e.S.D, e.K, e.D)
		}
		if err := e.S.Validate(); err != nil {
			return err
		}
	}
	return nil
}

// ProjectIntInto runs the integer projection through the fastest available
// representation (sparse when present, packed otherwise) into a caller-owned
// slice of length K. All representations yield bit-identical results.
//
//rpbeat:allocfree
func (e *Embedded) ProjectIntInto(window []int32, u []int32) {
	if e.S != nil {
		e.S.ProjectIntInto(window, u)
		return
	}
	e.P.ProjectIntInto(window, u)
}

// Classify runs the integer pipeline on one beat window of int32 ADC counts
// (already downsampled to length D). It allocates scratch per call; hot
// paths should hold a Scratch and use ClassifyInto.
func (e *Embedded) Classify(window []int32) nfc.Decision {
	return e.ClassifyInto(window, NewScratch(e))
}

// ClassifyInto is Classify with caller-provided scratch (sized by Grow) —
// the zero-allocation per-beat path that pipeline.Pipeline and the serving
// layer run. It dispatches on the model's head: fuzzification + Q15
// defuzzification for KindFuzzy, the fused project+threshold+popcount kernel
// for KindBitemb.
//
//rpbeat:allocfree
func (e *Embedded) ClassifyInto(window []int32, s *Scratch) nfc.Decision {
	if e.Bit != nil {
		code := s.Code[:bitemb.Words(e.K)]
		if e.S != nil {
			return e.Bit.ClassifySparseInto(e.S, window, e.AlphaTest, code, s.Pre)
		}
		u := s.U[:e.K]
		e.P.ProjectIntInto(window, u)
		return e.Bit.ClassifyInto(u, e.AlphaTest, code)
	}
	u := s.U[:e.K]
	e.ProjectIntInto(window, u)
	return e.Cls.ClassifyInto(u, e.AlphaTest, s.Grades[:e.Cls.GradeBufLen()])
}

// Evaluate runs the integer pipeline over the indexed beats, returning
// per-beat fuzzy values (converted to float64 for the shared metrics
// machinery; ratios are what matters and they carry over exactly). For
// bitemb models F is the similarity vector K - dist, the same values the α
// calibration was derived over.
func (e *Embedded) Evaluate(ds *beatset.Dataset, idx []int) []metrics.Eval {
	labels := ds.Labels(idx)
	evals := make([]metrics.Eval, len(idx))
	s := NewScratch(e)
	u := s.U[:e.K]
	for i, b := range idx {
		w := ds.IntWindow(b, e.Downsample)
		e.ProjectIntInto(w, u)
		var fv [nfc.NumClasses]uint32
		if e.Bit != nil {
			code := s.Code[:bitemb.Words(e.K)]
			e.Bit.PackInto(u, code)
			fv = e.Bit.Similarity(code)
		} else {
			fv = e.Cls.FuzzyValues(u, s.Grades[:e.Cls.GradeBufLen()])
		}
		evals[i] = metrics.Eval{
			Label: labels[i],
			F: [nfc.NumClasses]float64{
				float64(fv[0]), float64(fv[1]), float64(fv[2]),
			},
		}
	}
	return evals
}

// MemoryBytes reports the data footprint the node must hold: the packed
// projection matrix plus the head's parameter tables. The host-side sparse
// kernel is not part of it — see HostBytes.
func (e *Embedded) MemoryBytes() int {
	n := e.P.ByteSize()
	if e.Cls != nil {
		n += e.Cls.TableBytes()
	}
	if e.Bit != nil {
		n += e.Bit.TableBytes()
	}
	return n
}

// HostBytes reports the server-side data footprint: the node tables plus
// the sparse projection form the host hot path actually runs. This is the
// per-model figure capacity planning for a many-streams Engine should use.
func (e *Embedded) HostBytes() int {
	n := e.MemoryBytes()
	if e.S != nil {
		n += e.S.ByteSize()
	}
	return n
}
