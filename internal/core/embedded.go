package core

import (
	"errors"
	"fmt"

	"rpbeat/internal/beatset"
	"rpbeat/internal/fixp"
	"rpbeat/internal/metrics"
	"rpbeat/internal/nfc"
	"rpbeat/internal/rp"
)

// Embedded is the WBSN-ready classifier produced from a trained Model:
// the 2-bit packed projection matrix, the quantized membership functions
// and the Q15 defuzzification coefficient. Everything it executes at
// classification time is integer arithmetic.
type Embedded struct {
	K, D       int
	Downsample int
	P          *rp.PackedMatrix
	Cls        *fixp.Classifier
	// AlphaTest is the run-time defuzzification coefficient. It starts as
	// the quantized α_train but can be retuned independently (Sec. III-B:
	// "it is possible to tune the defuzzification coefficient α_test
	// independently of the α_train chosen during the training phase").
	AlphaTest fixp.AlphaQ15
}

// Quantize converts the model for embedded execution with the given
// membership shape (MFLinear for deployment; MFTriangular and MFGaussianRef
// exist for the Figure 4/5 comparisons).
func (m *Model) Quantize(kind fixp.MFKind) (*Embedded, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	cls, err := fixp.Quantize(m.MF, kind)
	if err != nil {
		return nil, err
	}
	return &Embedded{
		K:          m.K,
		D:          m.D,
		Downsample: m.Downsample,
		P:          rp.Pack(m.P),
		Cls:        cls,
		AlphaTest:  fixp.AlphaToQ15(m.AlphaTrain),
	}, nil
}

// Validate checks structural consistency.
func (e *Embedded) Validate() error {
	if e.P == nil || e.Cls == nil {
		return errors.New("core: embedded model missing projection or classifier")
	}
	if err := e.Cls.Validate(); err != nil {
		return err
	}
	if e.P.K != e.K || e.Cls.K != e.K || e.P.D != e.D {
		return fmt.Errorf("core: embedded dimensions inconsistent (K=%d D=%d, P %dx%d, cls K=%d)",
			e.K, e.D, e.P.K, e.P.D, e.Cls.K)
	}
	return nil
}

// Classify runs the integer pipeline on one beat window of int32 ADC counts
// (already downsampled to length D).
func (e *Embedded) Classify(window []int32) nfc.Decision {
	u := e.P.ProjectInt(window)
	return e.Cls.Classify(u, e.AlphaTest)
}

// Evaluate runs the integer pipeline over the indexed beats, returning
// per-beat fuzzy values (converted to float64 for the shared metrics
// machinery; ratios are what matters and they carry over exactly).
func (e *Embedded) Evaluate(ds *beatset.Dataset, idx []int) []metrics.Eval {
	labels := ds.Labels(idx)
	evals := make([]metrics.Eval, len(idx))
	u := make([]int32, e.K)
	grades := make([]uint16, e.K*fixp.NumClasses)
	for i, b := range idx {
		w := ds.IntWindow(b, e.Downsample)
		e.P.ProjectIntInto(w, u)
		fv := e.Cls.FuzzyValues(u, grades)
		evals[i] = metrics.Eval{
			Label: labels[i],
			F: [nfc.NumClasses]float64{
				float64(fv[0]), float64(fv[1]), float64(fv[2]),
			},
		}
	}
	return evals
}

// MemoryBytes reports the data footprint the node must hold: the packed
// projection matrix plus the MF parameter tables.
func (e *Embedded) MemoryBytes() int {
	return e.P.ByteSize() + e.Cls.TableBytes()
}
