package core

import (
	"rpbeat/internal/beatset"
	"rpbeat/internal/bitemb"
)

// TrainBitemb runs the two-step methodology with the binary adaptive
// embedding head substituted for the neuro-fuzzy classifier (see
// internal/bitemb). The SCG fields of Config are ignored — the binary head
// is derived in closed form from order statistics, not trained by gradient.
// The returned model is KindBitemb and flows through Quantize, the codec,
// the catalog and the serving stack like any other.
func TrainBitemb(ds *beatset.Dataset, cfg Config) (*Model, TrainStats, error) {
	c := cfg.withDefaults()
	P, par, bs, err := bitemb.Train(ds, bitemb.Config{
		Coeffs:       c.Coeffs,
		Downsample:   c.Downsample,
		PopSize:      c.PopSize,
		Generations:  c.Generations,
		MutationRate: c.MutationRate,
		MinARR:       c.MinARR,
		Seed:         c.Seed,
		Parallel:     c.Parallel,
	})
	stats := TrainStats{
		BestFitness:  bs.BestFitness,
		History:      bs.History,
		FitnessEvals: bs.FitnessEvals,
		AlphaTrain:   bs.AlphaTrain,
		Train2Point:  bs.Train2Point,
	}
	if err != nil {
		return nil, stats, err
	}
	m := &Model{
		Kind:       KindBitemb,
		K:          c.Coeffs,
		D:          ds.Dim(c.Downsample),
		Downsample: c.Downsample,
		P:          P,
		Bit:        par,
		AlphaTrain: bs.AlphaTrain,
		MinARR:     c.MinARR,
	}
	return m, stats, m.Validate()
}
