package core

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"

	"rpbeat/internal/nfc"
	"rpbeat/internal/rp"
)

// modelJSON is the on-disk JSON form of a trained model. The projection is
// stored as a flat row-major array of -1/0/+1 values.
type modelJSON struct {
	Format     string    `json:"format"`
	K          int       `json:"k"`
	D          int       `json:"d"`
	Downsample int       `json:"downsample"`
	AlphaTrain float64   `json:"alpha_train"`
	MinARR     float64   `json:"min_arr"`
	P          []int8    `json:"projection"`
	Centers    []float64 `json:"centers"`
	Sigmas     []float64 `json:"sigmas"`
}

const jsonFormat = "rpbeat-model-v1"

// MarshalJSON implements json.Marshaler for Model.
func (m *Model) MarshalJSON() ([]byte, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	return json.Marshal(modelJSON{
		Format:     jsonFormat,
		K:          m.K,
		D:          m.D,
		Downsample: m.Downsample,
		AlphaTrain: m.AlphaTrain,
		MinARR:     m.MinARR,
		P:          m.P.El,
		Centers:    m.MF.C,
		Sigmas:     m.MF.Sigma,
	})
}

// UnmarshalJSON implements json.Unmarshaler for Model.
func (m *Model) UnmarshalJSON(data []byte) error {
	var j modelJSON
	if err := json.Unmarshal(data, &j); err != nil {
		return err
	}
	if j.Format != jsonFormat {
		return fmt.Errorf("core: unknown model format %q", j.Format)
	}
	m.K, m.D, m.Downsample = j.K, j.D, j.Downsample
	m.AlphaTrain, m.MinARR = j.AlphaTrain, j.MinARR
	m.P = &rp.Matrix{K: j.K, D: j.D, El: j.P}
	m.MF = &nfc.Params{K: j.K, C: j.Centers, Sigma: j.Sigmas}
	return m.Validate()
}

// Binary model format:
//
//	magic   [4]byte "RPBT"
//	version uint16 (1)
//	k, d, downsample uint16
//	alphaTrain, minARR float64
//	packed projection: ceil(k*d/4) bytes (2-bit codes, rp.Pack layout)
//	centers, sigmas: k*3 float64 each
//
// All integers little-endian. The binary form is what a deployment tool
// would flash to the node (the packed matrix bytes are the exact ROM image).
var binMagic = [4]byte{'R', 'P', 'B', 'T'}

const binVersion = 1

// WriteBinary serializes the model in the compact binary format.
func (m *Model) WriteBinary(w io.Writer) error {
	if err := m.Validate(); err != nil {
		return err
	}
	if m.K > math.MaxUint16 || m.D > math.MaxUint16 || m.Downsample > math.MaxUint16 {
		return errors.New("core: dimensions exceed binary format range")
	}
	var buf bytes.Buffer
	buf.Write(binMagic[:])
	le := binary.LittleEndian
	var u16 [2]byte
	put16 := func(v uint16) {
		le.PutUint16(u16[:], v)
		buf.Write(u16[:])
	}
	put16(binVersion)
	put16(uint16(m.K))
	put16(uint16(m.D))
	put16(uint16(m.Downsample))
	var u64 [8]byte
	putF := func(v float64) {
		le.PutUint64(u64[:], math.Float64bits(v))
		buf.Write(u64[:])
	}
	putF(m.AlphaTrain)
	putF(m.MinARR)
	buf.Write(rp.Pack(m.P).Bits)
	for _, v := range m.MF.C {
		putF(v)
	}
	for _, v := range m.MF.Sigma {
		putF(v)
	}
	_, err := w.Write(buf.Bytes())
	return err
}

// MaxModelBytes bounds any serialized model this package will read: larger
// inputs are rejected before buffering, not after. The largest legitimate
// model (k=d=MaxDim) is well under it.
const MaxModelBytes = 16 << 20

// MaxDim bounds each header dimension (k, d) of a model read from untrusted
// bytes. The paper's deployed points are k≈8, d≤200; the cap leaves three
// orders of magnitude of headroom while keeping the worst-case decode
// allocation (the k*d unpacked matrix) a few MB instead of the ~4 GB a
// corrupt uint16 pair could otherwise demand.
const MaxDim = 1 << 12

// ReadBinary deserializes a model written by WriteBinary. Input is
// untrusted: the reader is capped at MaxModelBytes and header dimensions
// are bounds-checked before any size derived from them is allocated.
func ReadBinary(r io.Reader) (*Model, error) {
	data, err := io.ReadAll(io.LimitReader(r, MaxModelBytes+1))
	if err != nil {
		return nil, err
	}
	if len(data) > MaxModelBytes {
		return nil, fmt.Errorf("core: binary model exceeds %d bytes", MaxModelBytes)
	}
	if len(data) < 4+2*4+2*8 {
		return nil, errors.New("core: binary model truncated")
	}
	if !bytes.Equal(data[:4], binMagic[:]) {
		return nil, errors.New("core: bad magic (not an rpbeat model)")
	}
	le := binary.LittleEndian
	off := 4
	get16 := func() int {
		v := int(le.Uint16(data[off:]))
		off += 2
		return v
	}
	version := get16()
	if version != binVersion {
		return nil, fmt.Errorf("core: unsupported binary version %d", version)
	}
	k, d, down := get16(), get16(), get16()
	if k == 0 || d == 0 {
		return nil, errors.New("core: zero dimensions in binary model")
	}
	if k > MaxDim || d > MaxDim {
		return nil, fmt.Errorf("core: implausible model dimensions %dx%d (max %d)", k, d, MaxDim)
	}
	getF := func() float64 {
		v := math.Float64frombits(le.Uint64(data[off:]))
		off += 8
		return v
	}
	alphaTrain := getF()
	minARR := getF()
	packedLen := (k*d + 3) / 4
	need := off + packedLen + 2*k*nfc.NumClasses*8
	if len(data) < need {
		return nil, fmt.Errorf("core: binary model truncated (%d bytes, need %d)", len(data), need)
	}
	packed := &rp.PackedMatrix{K: k, D: d, Bits: data[off : off+packedLen]}
	off += packedLen
	P, err := packed.Unpack()
	if err != nil {
		return nil, err
	}
	mf := nfc.NewParams(k)
	for i := range mf.C {
		mf.C[i] = getF()
	}
	for i := range mf.Sigma {
		mf.Sigma[i] = getF()
	}
	m := &Model{K: k, D: d, Downsample: down, P: P, MF: mf, AlphaTrain: alphaTrain, MinARR: minARR}
	return m, m.Validate()
}

// Digest returns the lowercase-hex SHA-256 of the model's binary codec form.
// The binary form is canonical (fixed field order, little-endian, packed
// matrix bytes), so the digest identifies the model's exact parameters
// regardless of which encoding (JSON or binary) it traveled in — the
// provenance key the model catalog versions by.
func (m *Model) Digest() (string, error) {
	h := sha256.New()
	if err := m.WriteBinary(h); err != nil {
		return "", err
	}
	return hex.EncodeToString(h.Sum(nil)), nil
}

// Decode parses a serialized model in either supported encoding, sniffed by
// the binary magic. It is the single entry point for model bytes of unknown
// provenance (file loads, HTTP uploads) and applies the same bounds as
// ReadBinary.
func Decode(data []byte) (*Model, error) {
	if len(data) > MaxModelBytes {
		return nil, fmt.Errorf("core: model exceeds %d bytes", MaxModelBytes)
	}
	if bytes.HasPrefix(data, binMagic[:]) {
		return ReadBinary(bytes.NewReader(data))
	}
	var m Model
	if err := json.Unmarshal(data, &m); err != nil {
		return nil, fmt.Errorf("core: model is neither binary (no %q magic) nor valid JSON: %w", string(binMagic[:]), err)
	}
	if m.K > MaxDim || m.D > MaxDim {
		return nil, fmt.Errorf("core: implausible model dimensions %dx%d (max %d)", m.K, m.D, MaxDim)
	}
	return &m, nil
}
