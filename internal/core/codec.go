package core

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"strconv"

	"rpbeat/internal/bitemb"
	"rpbeat/internal/nfc"
	"rpbeat/internal/rp"
)

// modelJSON is the on-disk JSON form of a trained model. The projection is
// stored as a flat row-major array of -1/0/+1 values.
type modelJSON struct {
	Format     string    `json:"format"`
	K          int       `json:"k"`
	D          int       `json:"d"`
	Downsample int       `json:"downsample"`
	AlphaTrain float64   `json:"alpha_train"`
	MinARR     float64   `json:"min_arr"`
	P          []int8    `json:"projection"`
	Centers    []float64 `json:"centers"`
	Sigmas     []float64 `json:"sigmas"`
}

const jsonFormat = "rpbeat-model-v1"

// bitembJSON is the on-disk JSON form of a binary-embedding model. Prototype
// words are 16-digit hex strings: JSON numbers are float64 and cannot carry
// a uint64 exactly.
type bitembJSON struct {
	Format     string                   `json:"format"`
	K          int                      `json:"k"`
	D          int                      `json:"d"`
	Downsample int                      `json:"downsample"`
	AlphaTrain float64                  `json:"alpha_train"`
	MinARR     float64                  `json:"min_arr"`
	P          []int8                   `json:"projection"`
	Thresholds []int32                  `json:"thresholds"`
	Protos     [nfc.NumClasses][]string `json:"protos"`
	Radii      [nfc.NumClasses]uint16   `json:"radii"`
}

const jsonFormatBitemb = "rpbeat-bitemb-v1"

// MarshalJSON implements json.Marshaler for Model, dispatching on the head
// kind.
func (m *Model) MarshalJSON() ([]byte, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	if m.Kind == KindBitemb {
		j := bitembJSON{
			Format:     jsonFormatBitemb,
			K:          m.K,
			D:          m.D,
			Downsample: m.Downsample,
			AlphaTrain: m.AlphaTrain,
			MinARR:     m.MinARR,
			P:          m.P.El,
			Thresholds: m.Bit.Thresholds,
			Radii:      m.Bit.Radii,
		}
		for l := range j.Protos {
			j.Protos[l] = make([]string, len(m.Bit.Protos[l]))
			for w, v := range m.Bit.Protos[l] {
				j.Protos[l][w] = fmt.Sprintf("%016x", v)
			}
		}
		return json.Marshal(j)
	}
	return json.Marshal(modelJSON{
		Format:     jsonFormat,
		K:          m.K,
		D:          m.D,
		Downsample: m.Downsample,
		AlphaTrain: m.AlphaTrain,
		MinARR:     m.MinARR,
		P:          m.P.El,
		Centers:    m.MF.C,
		Sigmas:     m.MF.Sigma,
	})
}

// UnmarshalJSON implements json.Unmarshaler for Model. The format field
// routes to the head-specific layout.
func (m *Model) UnmarshalJSON(data []byte) error {
	var probe struct {
		Format string `json:"format"`
	}
	if err := json.Unmarshal(data, &probe); err != nil {
		return err
	}
	switch probe.Format {
	case jsonFormat:
		var j modelJSON
		if err := json.Unmarshal(data, &j); err != nil {
			return err
		}
		*m = Model{
			Kind: KindFuzzy, K: j.K, D: j.D, Downsample: j.Downsample,
			AlphaTrain: j.AlphaTrain, MinARR: j.MinARR,
			P:  &rp.Matrix{K: j.K, D: j.D, El: j.P},
			MF: &nfc.Params{K: j.K, C: j.Centers, Sigma: j.Sigmas},
		}
	case jsonFormatBitemb:
		var j bitembJSON
		if err := json.Unmarshal(data, &j); err != nil {
			return err
		}
		bp := &bitemb.Params{K: j.K, Thresholds: j.Thresholds, Radii: j.Radii}
		for l := range j.Protos {
			bp.Protos[l] = make([]uint64, len(j.Protos[l]))
			for w, s := range j.Protos[l] {
				v, err := strconv.ParseUint(s, 16, 64)
				if err != nil {
					return fmt.Errorf("core: bad prototype word %q: %w", s, err)
				}
				bp.Protos[l][w] = v
			}
		}
		*m = Model{
			Kind: KindBitemb, K: j.K, D: j.D, Downsample: j.Downsample,
			AlphaTrain: j.AlphaTrain, MinARR: j.MinARR,
			P:   &rp.Matrix{K: j.K, D: j.D, El: j.P},
			Bit: bp,
		}
	default:
		return fmt.Errorf("core: unknown model format %q", probe.Format)
	}
	return m.Validate()
}

// Binary model format, version 1 (fuzzy head):
//
//	magic   [4]byte "RPBT"
//	version uint16 (1)
//	k, d, downsample uint16
//	alphaTrain, minARR float64
//	packed projection: ceil(k*d/4) bytes (2-bit codes, rp.Pack layout)
//	centers, sigmas: k*3 float64 each
//
// Version 2 (binary embedding head) inserts a kind discriminator after the
// version and replaces the membership tables with the binary head:
//
//	magic   [4]byte "RPBT"
//	version uint16 (2)
//	kind    uint16 (1 = bitemb)
//	k, d, downsample uint16
//	alphaTrain, minARR float64
//	packed projection: ceil(k*d/4) bytes
//	thresholds: k int32
//	prototypes: 3 × Words(k) uint64
//	radii: 3 uint16
//
// Fuzzy models keep writing version 1 byte-for-byte — their digests are
// provenance keys the catalog and gateway fan-out verify, so the v1 encoding
// is frozen. All integers little-endian. The binary form is what a
// deployment tool would flash to the node (the packed matrix bytes are the
// exact ROM image).
var binMagic = [4]byte{'R', 'P', 'B', 'T'}

const (
	binVersion       = 1 // fuzzy head
	binVersionBitemb = 2 // bitemb head, with kind discriminator
)

// WriteBinary serializes the model in the compact binary format.
func (m *Model) WriteBinary(w io.Writer) error {
	if err := m.Validate(); err != nil {
		return err
	}
	if m.K > math.MaxUint16 || m.D > math.MaxUint16 || m.Downsample > math.MaxUint16 {
		return errors.New("core: dimensions exceed binary format range")
	}
	var buf bytes.Buffer
	buf.Write(binMagic[:])
	le := binary.LittleEndian
	var u16 [2]byte
	put16 := func(v uint16) {
		le.PutUint16(u16[:], v)
		buf.Write(u16[:])
	}
	if m.Kind == KindBitemb {
		put16(binVersionBitemb)
		put16(uint16(KindBitemb))
	} else {
		put16(binVersion)
	}
	put16(uint16(m.K))
	put16(uint16(m.D))
	put16(uint16(m.Downsample))
	var u64 [8]byte
	put64 := func(v uint64) {
		le.PutUint64(u64[:], v)
		buf.Write(u64[:])
	}
	putF := func(v float64) { put64(math.Float64bits(v)) }
	putF(m.AlphaTrain)
	putF(m.MinARR)
	buf.Write(rp.Pack(m.P).Bits)
	switch m.Kind {
	case KindFuzzy:
		for _, v := range m.MF.C {
			putF(v)
		}
		for _, v := range m.MF.Sigma {
			putF(v)
		}
	case KindBitemb:
		var u32 [4]byte
		for _, t := range m.Bit.Thresholds {
			le.PutUint32(u32[:], uint32(t))
			buf.Write(u32[:])
		}
		for l := 0; l < nfc.NumClasses; l++ {
			for _, v := range m.Bit.Protos[l] {
				put64(v)
			}
		}
		for _, r := range m.Bit.Radii {
			put16(r)
		}
	}
	_, err := w.Write(buf.Bytes())
	return err
}

// MaxModelBytes bounds any serialized model this package will read: larger
// inputs are rejected before buffering, not after. The largest legitimate
// model (k=d=MaxDim) is well under it.
const MaxModelBytes = 16 << 20

// MaxDim bounds each header dimension (k, d) of a model read from untrusted
// bytes. The paper's deployed points are k≈8, d≤200; the cap leaves three
// orders of magnitude of headroom while keeping the worst-case decode
// allocation (the k*d unpacked matrix) a few MB instead of the ~4 GB a
// corrupt uint16 pair could otherwise demand.
const MaxDim = 1 << 12

// ReadBinary deserializes a model written by WriteBinary. Input is
// untrusted: the reader is capped at MaxModelBytes and header dimensions
// are bounds-checked before any size derived from them is allocated.
func ReadBinary(r io.Reader) (*Model, error) {
	data, err := io.ReadAll(io.LimitReader(r, MaxModelBytes+1))
	if err != nil {
		return nil, err
	}
	if len(data) > MaxModelBytes {
		return nil, fmt.Errorf("core: binary model exceeds %d bytes", MaxModelBytes)
	}
	if !bytes.HasPrefix(data, binMagic[:]) {
		return nil, errors.New("core: bad magic (not an rpbeat model)")
	}
	le := binary.LittleEndian
	off := 4
	get16 := func() int {
		v := int(le.Uint16(data[off:]))
		off += 2
		return v
	}
	getF := func() float64 {
		v := math.Float64frombits(le.Uint64(data[off:]))
		off += 8
		return v
	}
	if len(data) < off+2 {
		return nil, errors.New("core: binary model truncated")
	}
	version := get16()
	var kind Kind
	var header int
	switch version {
	case binVersion:
		kind = KindFuzzy
		header = off + 3*2 + 2*8
	case binVersionBitemb:
		if len(data) < off+2 {
			return nil, errors.New("core: binary model truncated")
		}
		if kd := get16(); kd != int(KindBitemb) {
			return nil, fmt.Errorf("core: unknown model kind %d in binary v2", kd)
		}
		kind = KindBitemb
		header = off + 3*2 + 2*8
	default:
		return nil, fmt.Errorf("core: unsupported binary version %d", version)
	}
	if len(data) < header {
		return nil, errors.New("core: binary model truncated")
	}
	k, d, down := get16(), get16(), get16()
	if k == 0 || d == 0 {
		return nil, errors.New("core: zero dimensions in binary model")
	}
	if k > MaxDim || d > MaxDim {
		return nil, fmt.Errorf("core: implausible model dimensions %dx%d (max %d)", k, d, MaxDim)
	}
	alphaTrain := getF()
	minARR := getF()
	packedLen := (k*d + 3) / 4

	// Bound the full body length *before* allocating anything sized by the
	// header: a corrupt header fails here, not in make().
	var body int
	if kind == KindFuzzy {
		body = packedLen + 2*k*nfc.NumClasses*8
	} else {
		body = packedLen + 4*k + 8*nfc.NumClasses*bitemb.Words(k) + 2*nfc.NumClasses
	}
	if need := off + body; len(data) < need {
		return nil, fmt.Errorf("core: binary model truncated (%d bytes, need %d)", len(data), need)
	}
	packed := &rp.PackedMatrix{K: k, D: d, Bits: data[off : off+packedLen]}
	off += packedLen
	P, err := packed.Unpack()
	if err != nil {
		return nil, err
	}
	m := &Model{Kind: kind, K: k, D: d, Downsample: down, P: P, AlphaTrain: alphaTrain, MinARR: minARR}
	switch kind {
	case KindFuzzy:
		mf := nfc.NewParams(k)
		for i := range mf.C {
			mf.C[i] = getF()
		}
		for i := range mf.Sigma {
			mf.Sigma[i] = getF()
		}
		m.MF = mf
	case KindBitemb:
		bp := &bitemb.Params{K: k, Thresholds: make([]int32, k)}
		for i := range bp.Thresholds {
			bp.Thresholds[i] = int32(le.Uint32(data[off:]))
			off += 4
		}
		w := bitemb.Words(k)
		for l := 0; l < nfc.NumClasses; l++ {
			bp.Protos[l] = make([]uint64, w)
			for j := range bp.Protos[l] {
				bp.Protos[l][j] = le.Uint64(data[off:])
				off += 8
			}
		}
		for l := range bp.Radii {
			bp.Radii[l] = uint16(get16())
		}
		m.Bit = bp
	}
	return m, m.Validate()
}

// Digest returns the lowercase-hex SHA-256 of the model's binary codec form.
// The binary form is canonical (fixed field order, little-endian, packed
// matrix bytes), so the digest identifies the model's exact parameters
// regardless of which encoding (JSON or binary) it traveled in — the
// provenance key the model catalog versions by.
func (m *Model) Digest() (string, error) {
	h := sha256.New()
	if err := m.WriteBinary(h); err != nil {
		return "", err
	}
	return hex.EncodeToString(h.Sum(nil)), nil
}

// Decode parses a serialized model in either supported encoding, sniffed by
// the binary magic. It is the single entry point for model bytes of unknown
// provenance (file loads, HTTP uploads) and applies the same bounds as
// ReadBinary.
func Decode(data []byte) (*Model, error) {
	if len(data) > MaxModelBytes {
		return nil, fmt.Errorf("core: model exceeds %d bytes", MaxModelBytes)
	}
	if bytes.HasPrefix(data, binMagic[:]) {
		return ReadBinary(bytes.NewReader(data))
	}
	var m Model
	if err := json.Unmarshal(data, &m); err != nil {
		return nil, fmt.Errorf("core: model is neither binary (no %q magic) nor valid JSON: %w", string(binMagic[:]), err)
	}
	if m.K > MaxDim || m.D > MaxDim {
		return nil, fmt.Errorf("core: implausible model dimensions %dx%d (max %d)", m.K, m.D, MaxDim)
	}
	return &m, nil
}
