package core

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"io"
	"math"
	"strings"
	"testing"

	"rpbeat/internal/bitemb"
	"rpbeat/internal/nfc"
	"rpbeat/internal/rng"
	"rpbeat/internal/rp"
)

// randomModel fabricates a structurally valid model with the given
// dimensions: Achlioptas-family matrix elements and positive finite MF
// parameters, all drawn from the deterministic PRNG.
func randomModel(r *rng.Rand, k, d, down int) *Model {
	P := &rp.Matrix{K: k, D: d, El: make([]int8, k*d)}
	for i := range P.El {
		P.El[i] = r.Trit()
	}
	mf := nfc.NewParams(k)
	for i := range mf.C {
		mf.C[i] = 200 * (r.Float64() - 0.5)
		mf.Sigma[i] = 0.1 + 50*r.Float64()
	}
	return &Model{
		K: k, D: d, Downsample: down, P: P, MF: mf,
		AlphaTrain: r.Float64(), MinARR: 0.9 + 0.09*r.Float64(),
	}
}

// randomBitembModel fabricates a structurally valid binary-embedding model:
// very-sparse matrix, random thresholds/prototypes/radii.
func randomBitembModel(r *rng.Rand, k, d, down int) *Model {
	bp := &bitemb.Params{K: k, Thresholds: make([]int32, k)}
	for j := range bp.Thresholds {
		bp.Thresholds[j] = int32(r.Intn(4000) - 2000)
	}
	w := bitemb.Words(k)
	for l := range bp.Protos {
		bp.Protos[l] = make([]uint64, w)
		for j := 0; j < k; j++ {
			if r.Intn(2) == 1 {
				bp.Protos[l][j/64] |= 1 << uint(j&63)
			}
		}
		bp.Radii[l] = uint16(r.Intn(k + 1))
	}
	return &Model{
		Kind: KindBitemb, K: k, D: d, Downsample: down,
		P: rp.NewVerySparse(r, k, d), Bit: bp,
		AlphaTrain: r.Float64(), MinARR: 0.9 + 0.09*r.Float64(),
	}
}

// TestCodecRoundTripFuzz drives randomized models through both encodings:
// JSON and binary must each round-trip to an identical model, and the
// digest must be stable across the trip (digest is computed over the
// canonical binary form, so equal parameters ⇒ equal digest regardless of
// the encoding the model traveled in).
func TestCodecRoundTripFuzz(t *testing.T) {
	r := rng.New(77)
	dims := []struct{ k, d, down int }{
		{1, 1, 1}, {8, 50, 4}, {8, 200, 1}, {3, 7, 2}, {32, 50, 4}, {13, 33, 3},
	}
	for round := 0; round < 3; round++ {
		for _, dim := range dims {
			m := randomModel(r, dim.k, dim.d, dim.down)
			wantDigest, err := m.Digest()
			if err != nil {
				t.Fatal(err)
			}

			// JSON round trip.
			js, err := json.Marshal(m)
			if err != nil {
				t.Fatal(err)
			}
			var fromJSON Model
			if err := json.Unmarshal(js, &fromJSON); err != nil {
				t.Fatal(err)
			}
			assertModelsEqual(t, m, &fromJSON)

			// Binary round trip.
			var buf bytes.Buffer
			if err := m.WriteBinary(&buf); err != nil {
				t.Fatal(err)
			}
			fromBin, err := ReadBinary(bytes.NewReader(buf.Bytes()))
			if err != nil {
				t.Fatal(err)
			}
			assertModelsEqual(t, m, fromBin)

			// Decode sniffs both encodings.
			viaDecodeJSON, err := Decode(js)
			if err != nil {
				t.Fatal(err)
			}
			viaDecodeBin, err := Decode(buf.Bytes())
			if err != nil {
				t.Fatal(err)
			}

			// Digest stability across every path.
			for _, got := range []*Model{&fromJSON, fromBin, viaDecodeJSON, viaDecodeBin} {
				dg, err := got.Digest()
				if err != nil {
					t.Fatal(err)
				}
				if dg != wantDigest {
					t.Fatalf("k=%d d=%d: digest drifted across codec round trip", dim.k, dim.d)
				}
			}
		}
	}
}

// TestBitembCodecRoundTripFuzz is TestCodecRoundTripFuzz for the binary
// embedding head: JSON (hex-string prototype words) and binary v2 must each
// round-trip exactly, with a stable digest across every path, including
// multi-word prototypes (k > 64).
func TestBitembCodecRoundTripFuzz(t *testing.T) {
	r := rng.New(101)
	dims := []struct{ k, d, down int }{
		{1, 1, 1}, {8, 50, 4}, {32, 50, 4}, {63, 100, 1}, {64, 100, 1}, {65, 100, 1}, {130, 200, 2},
	}
	for round := 0; round < 3; round++ {
		for _, dim := range dims {
			m := randomBitembModel(r, dim.k, dim.d, dim.down)
			wantDigest, err := m.Digest()
			if err != nil {
				t.Fatal(err)
			}

			js, err := json.Marshal(m)
			if err != nil {
				t.Fatal(err)
			}
			var fromJSON Model
			if err := json.Unmarshal(js, &fromJSON); err != nil {
				t.Fatal(err)
			}
			assertModelsEqual(t, m, &fromJSON)

			var buf bytes.Buffer
			if err := m.WriteBinary(&buf); err != nil {
				t.Fatal(err)
			}
			fromBin, err := ReadBinary(bytes.NewReader(buf.Bytes()))
			if err != nil {
				t.Fatal(err)
			}
			assertModelsEqual(t, m, fromBin)

			viaDecodeJSON, err := Decode(js)
			if err != nil {
				t.Fatal(err)
			}
			viaDecodeBin, err := Decode(buf.Bytes())
			if err != nil {
				t.Fatal(err)
			}
			for _, got := range []*Model{&fromJSON, fromBin, viaDecodeJSON, viaDecodeBin} {
				dg, err := got.Digest()
				if err != nil {
					t.Fatal(err)
				}
				if dg != wantDigest {
					t.Fatalf("k=%d d=%d: digest drifted across codec round trip", dim.k, dim.d)
				}
			}
		}
	}
}

// TestFuzzyDigestStable pins the digest of a deterministic fuzzy model: the
// v1 binary encoding is frozen (digests are the provenance keys the catalog
// versions by and the gateway fan-out verifies), so any byte-level change to
// the fuzzy codec — including an accidental migration to the v2 framing —
// fails here.
func TestFuzzyDigestStable(t *testing.T) {
	m := randomModel(rng.New(1234), 8, 50, 4)
	got, err := m.Digest()
	if err != nil {
		t.Fatal(err)
	}
	const want = "c612e1a6ad29240b9ab49d42728b00c1931c6a70b7e44e81e965a9f0c7f9b63c"
	if got != want {
		t.Fatalf("fuzzy digest drifted:\n got %s\nwant %s", got, want)
	}
}

// TestBitembUnderV1MagicRejected presents a bitemb payload with its version
// field patched to 1 — a binary head masquerading under the old fuzzy
// framing. The decoder must fail cleanly (the v1 layout reads nonsense
// dimensions and fails bounds or validation), never panic, and never return
// a usable model.
func TestBitembUnderV1MagicRejected(t *testing.T) {
	r := rng.New(55)
	for trial := 0; trial < 50; trial++ {
		m := randomBitembModel(r, 8, 50, 4)
		var buf bytes.Buffer
		if err := m.WriteBinary(&buf); err != nil {
			t.Fatal(err)
		}
		data := buf.Bytes()
		binary.LittleEndian.PutUint16(data[4:], 1) // lie about the version
		if got, err := ReadBinary(bytes.NewReader(data)); err == nil {
			t.Fatalf("trial %d: bitemb payload under v1 framing decoded to %+v", trial, got)
		}
	}
}

// TestReadBinaryRejectsCorruptHeaders feeds headers claiming absurd
// dimensions and checks they are rejected by bounds checking, not by
// attempting the multi-GB allocations the headers imply.
func TestReadBinaryRejectsCorruptHeaders(t *testing.T) {
	header := func(k, d, down uint16) []byte {
		var buf bytes.Buffer
		buf.Write([]byte("RPBT"))
		le := binary.LittleEndian
		for _, v := range []uint16{1, k, d, down} {
			var u [2]byte
			le.PutUint16(u[:], v)
			buf.Write(u[:])
		}
		var f [8]byte
		le.PutUint64(f[:], math.Float64bits(0.5))
		buf.Write(f[:]) // alphaTrain
		buf.Write(f[:]) // minARR
		return buf.Bytes()
	}

	cases := []struct {
		name string
		data []byte
		want string
	}{
		{"max-uint16-dims", header(math.MaxUint16, math.MaxUint16, 1), "implausible"},
		{"huge-k", header(math.MaxUint16, 50, 4), "implausible"},
		{"huge-d", header(8, math.MaxUint16, 4), "implausible"},
		{"zero-k", header(0, 50, 4), "zero dimensions"},
		{"truncated", []byte("RPBT"), "truncated"},
		{"bad-magic", bytes.Repeat([]byte{0xff}, 64), "bad magic"},
		{"truncated-body", header(8, 50, 4), "truncated"},
	}
	for _, tc := range cases {
		_, err := ReadBinary(bytes.NewReader(tc.data))
		if err == nil {
			t.Fatalf("%s: corrupt input accepted", tc.name)
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Fatalf("%s: error %q does not mention %q", tc.name, err, tc.want)
		}
	}
}

// TestReadBinaryBoundsReader verifies the reader itself is capped: a stream
// longer than MaxModelBytes errors out instead of being buffered whole.
func TestReadBinaryBoundsReader(t *testing.T) {
	r := io_LimitedZeros{n: MaxModelBytes + 1024}
	if _, err := ReadBinary(&r); err == nil || !strings.Contains(err.Error(), "exceeds") {
		t.Fatalf("oversized stream: err = %v", err)
	}
}

// io_LimitedZeros yields n zero bytes then EOF, without holding them.
type io_LimitedZeros struct{ n int }

func (z *io_LimitedZeros) Read(p []byte) (int, error) {
	if z.n <= 0 {
		return 0, io.EOF
	}
	if len(p) > z.n {
		p = p[:z.n]
	}
	for i := range p {
		p[i] = 0
	}
	z.n -= len(p)
	return len(p), nil
}
