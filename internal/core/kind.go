package core

import "fmt"

// Kind discriminates the classifier head a model carries. The zero value is
// the paper's neuro-fuzzy head, so every pre-existing Model (and every v1
// serialized form) is KindFuzzy without migration.
type Kind uint8

const (
	// KindFuzzy is the neuro-fuzzy head: k×3 membership functions, product
	// fuzzification, Q15 defuzzification (the paper's classifier).
	KindFuzzy Kind = iota
	// KindBitemb is the binary adaptive embedding head: per-coefficient
	// thresholds, packed 1-bit codes, XOR+popcount Hamming classification
	// against per-class prototypes (internal/bitemb).
	KindBitemb
)

// String returns the kind's wire/manifest name.
func (k Kind) String() string {
	switch k {
	case KindFuzzy:
		return "fuzzy"
	case KindBitemb:
		return "bitemb"
	}
	return fmt.Sprintf("Kind(%d)", uint8(k))
}

// ParseKind is String's inverse; it accepts the empty string as KindFuzzy so
// manifests written before the kind field existed keep loading.
func ParseKind(s string) (Kind, error) {
	switch s {
	case "", "fuzzy":
		return KindFuzzy, nil
	case "bitemb":
		return KindBitemb, nil
	}
	return 0, fmt.Errorf("core: unknown model kind %q", s)
}
