// Package core implements the paper's primary contribution: the complete
// design methodology for a real-time, lightweight heartbeat classifier based
// on random projections and a neuro-fuzzy classifier (Braojos, Ansaloni,
// Atienza — DATE 2013).
//
// The two-step training of Sec. III-A runs off-line in floating point:
//
//  1. an initial population of Achlioptas projection matrices is drawn;
//  2. for each candidate matrix, the NFC membership functions are trained
//     with scaled conjugate gradient on *training set 1* (projected beats);
//  3. the candidate's fitness is the score of that NFC on *training set 2*:
//     the NDR at the smallest defuzzification coefficient α that achieves a
//     minimum ARR (97% in the paper);
//  4. a genetic algorithm (population 20, 30 generations) evolves the
//     matrices by crossover and mutation toward higher-performance
//     projections.
//
// The trained (P, MF, α_train) triple is the Model. Quantize converts it to
// the embedded form of Sec. III-B (packed matrix, linearized integer MFs,
// Q15 α) that internal/fixp executes with integer arithmetic only.
package core

import (
	"errors"
	"fmt"
	"runtime"

	"rpbeat/internal/beatset"
	"rpbeat/internal/bitemb"
	"rpbeat/internal/ga"
	"rpbeat/internal/metrics"
	"rpbeat/internal/nfc"
	"rpbeat/internal/rng"
	"rpbeat/internal/rp"
	"rpbeat/internal/scg"
)

// Config parameterizes the training methodology. Zero values select the
// paper's settings where it states them.
type Config struct {
	// Coeffs is k, the number of projected coefficients; default 8.
	Coeffs int
	// Downsample reduces the beat window rate before projection: 1 for the
	// PC (float) configuration, 4 for the WBSN configuration (90 Hz,
	// 50-sample windows). Default 1.
	Downsample int
	// PopSize and Generations configure the GA; defaults 20 and 30 (paper).
	PopSize     int
	Generations int
	// MutationRate is the per-element resampling probability; default 0.02.
	MutationRate float64
	// MinARR is the abnormal-recognition constraint used to pick α_train;
	// default 0.97 (paper).
	MinARR float64
	// SCGIters bounds membership-function training; default 120.
	SCGIters int
	// AbnormalWeight is the loss weight of classes L and V during MF
	// training, implementing the paper's unbalancing toward abnormal
	// recall; default 3.
	AbnormalWeight float64
	// Seed drives matrix generation and the GA.
	Seed uint64
	// Parallel bounds concurrent fitness evaluations; default NumCPU.
	Parallel int
}

func (c Config) withDefaults() Config {
	if c.Coeffs <= 0 {
		c.Coeffs = 8
	}
	if c.Downsample <= 0 {
		c.Downsample = 1
	}
	if c.PopSize <= 0 {
		c.PopSize = 20
	}
	if c.Generations <= 0 {
		c.Generations = 30
	}
	if c.MutationRate <= 0 {
		c.MutationRate = 0.02
	}
	if c.MinARR <= 0 {
		c.MinARR = 0.97
	}
	if c.SCGIters <= 0 {
		c.SCGIters = 120
	}
	if c.AbnormalWeight <= 0 {
		c.AbnormalWeight = 3
	}
	if c.Parallel <= 0 {
		c.Parallel = runtime.NumCPU()
	}
	return c
}

// Model is a trained float-level classifier: projection matrix, one head
// (membership functions for KindFuzzy, binary embedding parameters for
// KindBitemb) and the training-time operating point.
type Model struct {
	Kind       Kind
	K          int // projected coefficients
	D          int // input dimensionality (after downsampling)
	Downsample int // sampling-rate divisor relative to 360 Hz
	P          *rp.Matrix
	MF         *nfc.Params    // fuzzy head; nil for KindBitemb
	Bit        *bitemb.Params // binary head; nil for KindFuzzy
	AlphaTrain float64        // α chosen on training set 2 for MinARR
	MinARR     float64
}

// Validate checks structural consistency.
func (m *Model) Validate() error {
	if m.P == nil {
		return errors.New("core: model missing projection")
	}
	if err := m.P.Validate(); err != nil {
		return err
	}
	if m.P.D != m.D {
		return fmt.Errorf("core: inconsistent D (%d vs P %d)", m.D, m.P.D)
	}
	switch m.Kind {
	case KindFuzzy:
		if m.MF == nil {
			return errors.New("core: fuzzy model missing membership functions")
		}
		if m.Bit != nil {
			return errors.New("core: fuzzy model carries a binary embedding head")
		}
		if err := m.MF.Validate(); err != nil {
			return err
		}
		if m.P.K != m.K || m.MF.K != m.K {
			return fmt.Errorf("core: inconsistent K (%d, P %d, MF %d)", m.K, m.P.K, m.MF.K)
		}
	case KindBitemb:
		if m.Bit == nil {
			return errors.New("core: bitemb model missing embedding parameters")
		}
		if m.MF != nil {
			return errors.New("core: bitemb model carries membership functions")
		}
		if err := m.Bit.Validate(); err != nil {
			return err
		}
		if m.P.K != m.K || m.Bit.K != m.K {
			return fmt.Errorf("core: inconsistent K (%d, P %d, bitemb %d)", m.K, m.P.K, m.Bit.K)
		}
	default:
		return fmt.Errorf("core: unknown model kind %d", m.Kind)
	}
	return nil
}

// TrainStats reports what the two-step training did.
type TrainStats struct {
	BestFitness  float64   // NDR on training set 2 at the ARR constraint
	History      []float64 // best fitness per GA generation
	FitnessEvals int
	AlphaTrain   float64
	Train2Point  metrics.Point // operating point of the final model on training set 2
}

// Train runs the full methodology on the dataset's standard splits.
func Train(ds *beatset.Dataset, cfg Config) (*Model, TrainStats, error) {
	c := cfg.withDefaults()
	var stats TrainStats

	d := ds.Dim(c.Downsample)
	train1U := windows(ds, ds.Train1, c.Downsample)
	train1L := ds.Labels(ds.Train1)
	train2U := windows(ds, ds.Train2, c.Downsample)
	train2L := ds.Labels(ds.Train2)
	if len(train1U) == 0 || len(train2U) == 0 {
		return nil, stats, errors.New("core: empty training split")
	}

	fitness := func(P *rp.Matrix) float64 {
		params, err := fitNFC(P, train1U, train1L, c)
		if err != nil {
			return -2
		}
		evals := evalParams(P, params, train2U, train2L)
		alpha, achieved, err := metrics.MinAlphaForARR(evals, c.MinARR)
		if err != nil {
			return -2
		}
		p, _ := metrics.Evaluate(evals, alpha)
		if !achieved {
			// Rank unachievable candidates below all achievable ones, by
			// how close they get to the ARR target.
			return -1 + (p.ARR - c.MinARR)
		}
		return p.NDR
	}

	seedRng := rng.New(c.Seed)
	initial := make([]*rp.Matrix, c.PopSize)
	for i := range initial {
		initial[i] = rp.NewRandom(seedRng.Split(), c.Coeffs, d)
	}

	gaRes, err := ga.Run(initial, ga.Config[*rp.Matrix]{
		Generations:  c.Generations,
		MutationRate: c.MutationRate,
		Fitness:      fitness,
		Crossover:    crossoverMatrices,
		Mutate:       mutateMatrix,
		Parallel:     c.Parallel,
		Seed:         seedRng.Uint64(),
	})
	if err != nil {
		return nil, stats, err
	}
	stats.BestFitness = gaRes.BestFitness
	stats.History = gaRes.History
	stats.FitnessEvals = gaRes.Evaluations

	// Final model: retrain the NFC for the winning projection and fix
	// α_train on training set 2.
	best := gaRes.Best
	params, err := fitNFC(best, train1U, train1L, c)
	if err != nil {
		return nil, stats, err
	}
	evals := evalParams(best, params, train2U, train2L)
	alpha, achieved, err := metrics.MinAlphaForARR(evals, c.MinARR)
	if err != nil {
		return nil, stats, err
	}
	if !achieved {
		return nil, stats, fmt.Errorf("core: final model cannot reach ARR %.3f on training set 2", c.MinARR)
	}
	stats.AlphaTrain = alpha
	stats.Train2Point, _ = metrics.Evaluate(evals, alpha)

	m := &Model{
		K:          c.Coeffs,
		D:          d,
		Downsample: c.Downsample,
		P:          best,
		MF:         params,
		AlphaTrain: alpha,
		MinARR:     c.MinARR,
	}
	return m, stats, m.Validate()
}

// windows extracts the float windows of the indexed beats.
func windows(ds *beatset.Dataset, idx []int, downsample int) [][]float64 {
	out := make([][]float64, len(idx))
	for i, b := range idx {
		out[i] = ds.FloatWindow(b, downsample)
	}
	return out
}

// fitNFC projects the training beats with P, initializes membership
// functions from per-class statistics and refines them with SCG.
func fitNFC(P *rp.Matrix, u [][]float64, labels []uint8, c Config) (*nfc.Params, error) {
	proj := make([][]float64, len(u))
	for i, row := range u {
		proj[i] = P.Project(row)
	}
	ts := &nfc.TrainingSet{
		U:     proj,
		Label: labels,
		Weight: [nfc.NumClasses]float64{
			nfc.IdxN: 1, nfc.IdxL: c.AbnormalWeight, nfc.IdxV: c.AbnormalWeight,
		},
	}
	if err := ts.Validate(P.K); err != nil {
		return nil, err
	}
	params := nfc.InitFromData(P.K, proj, labels)
	res, err := scg.Minimize(scg.Objective(nfc.Objective(P.K, ts)), params.ToVector(),
		scg.Options{MaxIter: c.SCGIters})
	if err != nil {
		return nil, err
	}
	params.FromVector(res.X)
	if err := params.Validate(); err != nil {
		return nil, err
	}
	return params, nil
}

// evalParams computes per-beat fuzzy values of (P, params) over the beats.
func evalParams(P *rp.Matrix, params *nfc.Params, u [][]float64, labels []uint8) []metrics.Eval {
	evals := make([]metrics.Eval, len(u))
	for i, row := range u {
		f := params.Fuzzy(P.Project(row))
		evals[i] = metrics.Eval{Label: labels[i], F: f}
	}
	return evals
}

// Evaluate runs the float pipeline of the model over the indexed beats and
// returns per-beat fuzzy values for metric computation.
func (m *Model) Evaluate(ds *beatset.Dataset, idx []int) []metrics.Eval {
	u := windows(ds, idx, m.Downsample)
	return evalParams(m.P, m.MF, u, ds.Labels(idx))
}

// Classify runs the float pipeline on one beat window (already downsampled
// to length D) at the given α.
func (m *Model) Classify(window []float64, alpha float64) nfc.Decision {
	return m.MF.Classify(m.P.Project(window), alpha)
}

// --- GA operators over projection matrices ---

// crossoverMatrices performs uniform row crossover: each output coefficient
// (matrix row) is inherited whole from one parent, preserving the sample
// subsets that make a coefficient informative.
func crossoverMatrices(r *rng.Rand, a, b *rp.Matrix) *rp.Matrix {
	child := a.Clone()
	for row := 0; row < child.K; row++ {
		if r.Float64() < 0.5 {
			copy(child.El[row*child.D:(row+1)*child.D], b.El[row*b.D:(row+1)*b.D])
		}
	}
	return child
}

// mutateMatrix resamples each element with the configured probability from
// the Achlioptas distribution, keeping the matrix in the valid family.
func mutateMatrix(r *rng.Rand, m *rp.Matrix, rate float64) *rp.Matrix {
	out := m.Clone()
	for i := range out.El {
		if r.Float64() < rate {
			out.El[i] = r.Trit()
		}
	}
	return out
}
