package core

import (
	"testing"
	"testing/quick"

	"rpbeat/internal/rng"
	"rpbeat/internal/rp"
)

func TestCrossoverKeepsMatrixValid(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		a := rp.NewRandom(r, 8, 50)
		b := rp.NewRandom(r, 8, 50)
		child := crossoverMatrices(r, a, b)
		return child.Validate() == nil && child.K == 8 && child.D == 50
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestCrossoverInheritsWholeRows(t *testing.T) {
	r := rng.New(1)
	a := rp.NewRandom(r, 6, 40)
	b := rp.NewRandom(r, 6, 40)
	child := crossoverMatrices(r, a, b)
	for row := 0; row < 6; row++ {
		fromA, fromB := true, true
		for c := 0; c < 40; c++ {
			if child.At(row, c) != a.At(row, c) {
				fromA = false
			}
			if child.At(row, c) != b.At(row, c) {
				fromB = false
			}
		}
		if !fromA && !fromB {
			t.Fatalf("row %d is a mixture, want whole-row inheritance", row)
		}
	}
}

func TestCrossoverDoesNotMutateParents(t *testing.T) {
	r := rng.New(2)
	a := rp.NewRandom(r, 4, 20)
	b := rp.NewRandom(r, 4, 20)
	aCopy := a.Clone()
	bCopy := b.Clone()
	_ = crossoverMatrices(r, a, b)
	for i := range a.El {
		if a.El[i] != aCopy.El[i] || b.El[i] != bCopy.El[i] {
			t.Fatal("crossover mutated a parent")
		}
	}
}

func TestMutateKeepsMatrixValid(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		m := rp.NewRandom(r, 8, 50)
		out := mutateMatrix(r, m, 0.1)
		return out.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestMutateRateControlsChanges(t *testing.T) {
	r := rng.New(3)
	m := rp.NewRandom(r, 8, 200)
	count := func(rate float64) int {
		out := mutateMatrix(rng.New(9), m, rate)
		diff := 0
		for i := range m.El {
			if m.El[i] != out.El[i] {
				diff++
			}
		}
		return diff
	}
	zero := count(0)
	low := count(0.02)
	high := count(0.5)
	if zero != 0 {
		t.Fatalf("rate 0 changed %d elements", zero)
	}
	if !(low < high) {
		t.Fatalf("rate ordering violated: %d (0.02) vs %d (0.5)", low, high)
	}
	// At rate 0.02 over 1600 elements, resampling changes an element with
	// probability 0.02*(2/3 of draws differ on average) — expect a handful.
	if low == 0 || low > 120 {
		t.Fatalf("rate 0.02 changed %d elements, implausible", low)
	}
}

func TestMutateDoesNotAliasInput(t *testing.T) {
	r := rng.New(4)
	m := rp.NewRandom(r, 4, 30)
	copyBefore := m.Clone()
	_ = mutateMatrix(r, m, 0.9)
	for i := range m.El {
		if m.El[i] != copyBefore.El[i] {
			t.Fatal("mutate modified its input")
		}
	}
}
