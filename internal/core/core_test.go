package core

import (
	"bytes"
	"encoding/json"
	"math"
	"testing"

	"rpbeat/internal/beatset"
	"rpbeat/internal/fixp"
	"rpbeat/internal/metrics"
)

// smallDataset builds a reduced dataset once per test binary.
var cachedDS *beatset.Dataset

func smallDataset(t testing.TB) *beatset.Dataset {
	t.Helper()
	if cachedDS == nil {
		ds, err := beatset.Build(beatset.Config{Seed: 11, Scale: 0.04})
		if err != nil {
			t.Fatal(err)
		}
		cachedDS = ds
	}
	return cachedDS
}

// quickConfig keeps training fast for unit tests: tiny GA, short SCG.
func quickConfig() Config {
	return Config{
		Coeffs:      8,
		PopSize:     6,
		Generations: 4,
		SCGIters:    60,
		MinARR:      0.95,
		Seed:        3,
	}
}

func trainQuick(t testing.TB) (*Model, TrainStats) {
	t.Helper()
	ds := smallDataset(t)
	m, stats, err := Train(ds, quickConfig())
	if err != nil {
		t.Fatal(err)
	}
	return m, stats
}

func TestTrainProducesValidModel(t *testing.T) {
	m, stats := trainQuick(t)
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	if m.K != 8 || m.D != 200 || m.Downsample != 1 {
		t.Fatalf("model dims K=%d D=%d down=%d", m.K, m.D, m.Downsample)
	}
	if stats.BestFitness <= 0.5 {
		t.Fatalf("best fitness (NDR at ARR>=0.95) = %v, want > 0.5", stats.BestFitness)
	}
	if stats.Train2Point.ARR < 0.95 {
		t.Fatalf("train2 ARR %v below constraint", stats.Train2Point.ARR)
	}
	if len(stats.History) != 4 {
		t.Fatalf("history length %d", len(stats.History))
	}
}

func TestTrainEndToEndAccuracy(t *testing.T) {
	// The whole methodology on the reduced set must reach a useful
	// operating point on the full (test) split: the regression guard for
	// the pipeline as a whole.
	m, _ := trainQuick(t)
	ds := smallDataset(t)
	evals := m.Evaluate(ds, ds.Test)
	pt, _, err := metrics.NDRAtARR(evals, 0.95)
	if err != nil {
		t.Fatal(err)
	}
	if pt.NDR < 0.80 {
		t.Fatalf("test NDR %.4f at ARR>=0.95, want >= 0.80", pt.NDR)
	}
	if pt.ARR < 0.95 {
		t.Fatalf("test ARR %.4f", pt.ARR)
	}
}

func TestTrainDeterministic(t *testing.T) {
	ds := smallDataset(t)
	cfg := quickConfig()
	cfg.PopSize, cfg.Generations = 4, 2
	a, _, err := Train(ds, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, _, err := Train(ds, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.P.El {
		if a.P.El[i] != b.P.El[i] {
			t.Fatal("same seed produced different projections")
		}
	}
	if a.AlphaTrain != b.AlphaTrain {
		t.Fatal("same seed produced different alpha")
	}
}

func TestGAImprovesOverInitialGeneration(t *testing.T) {
	_, stats := trainQuick(t)
	first, last := stats.History[0], stats.History[len(stats.History)-1]
	if last < first {
		t.Fatalf("GA best regressed: %v -> %v", first, last)
	}
}

func TestDownsampledTraining(t *testing.T) {
	ds := smallDataset(t)
	cfg := quickConfig()
	cfg.Downsample = 4
	m, _, err := Train(ds, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if m.D != 50 {
		t.Fatalf("downsampled D = %d, want 50", m.D)
	}
	evals := m.Evaluate(ds, ds.Test)
	pt, _, err := metrics.NDRAtARR(evals, 0.95)
	if err != nil {
		t.Fatal(err)
	}
	if pt.NDR < 0.7 {
		t.Fatalf("downsampled NDR %.4f too low", pt.NDR)
	}
}

func TestQuantizeAndEmbeddedEvaluation(t *testing.T) {
	m, _ := trainQuick(t)
	ds := smallDataset(t)
	e, err := m.Quantize(fixp.MFLinear)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Validate(); err != nil {
		t.Fatal(err)
	}
	evals := e.Evaluate(ds, ds.Test)
	pt, _, err := metrics.NDRAtARR(evals, 0.95)
	if err != nil {
		t.Fatal(err)
	}
	if pt.NDR < 0.7 {
		t.Fatalf("embedded NDR %.4f at ARR>=0.95, want >= 0.7", pt.NDR)
	}
	// Embedded should track the float pipeline within a few points (Table
	// II shows 1-3 percentage points of gap).
	floatEvals := m.Evaluate(ds, ds.Test)
	fpt, _, err := metrics.NDRAtARR(floatEvals, 0.95)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(fpt.NDR-pt.NDR) > 0.15 {
		t.Fatalf("float/embedded NDR gap too large: %.4f vs %.4f", fpt.NDR, pt.NDR)
	}
}

func TestEmbeddedClassifySingleBeat(t *testing.T) {
	m, _ := trainQuick(t)
	ds := smallDataset(t)
	e, err := m.Quantize(fixp.MFLinear)
	if err != nil {
		t.Fatal(err)
	}
	w := ds.IntWindow(ds.Test[0], e.Downsample)
	d := e.Classify(w)
	_ = d.String() // must be a valid decision
}

func TestEmbeddedMemoryFootprint(t *testing.T) {
	m, _ := trainQuick(t)
	e, err := m.Quantize(fixp.MFLinear)
	if err != nil {
		t.Fatal(err)
	}
	// 8x200 matrix packed = 400 bytes; MF tables 8*3*16 = 384 bytes.
	if e.MemoryBytes() != 400+384 {
		t.Fatalf("memory bytes = %d, want 784", e.MemoryBytes())
	}
	// Sanity against the paper's claim of ~2 KB data for the classifier.
	if e.MemoryBytes() > 2048 {
		t.Fatalf("classifier data %d B exceeds the ~2 KB envelope", e.MemoryBytes())
	}
}

func TestJSONRoundTrip(t *testing.T) {
	m, _ := trainQuick(t)
	data, err := json.Marshal(m)
	if err != nil {
		t.Fatal(err)
	}
	var back Model
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	assertModelsEqual(t, m, &back)
}

func TestBinaryRoundTrip(t *testing.T) {
	m, _ := trainQuick(t)
	var buf bytes.Buffer
	if err := m.WriteBinary(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	assertModelsEqual(t, m, back)
}

func assertModelsEqual(t *testing.T, a, b *Model) {
	t.Helper()
	if a.Kind != b.Kind {
		t.Fatal("kinds differ")
	}
	if a.K != b.K || a.D != b.D || a.Downsample != b.Downsample {
		t.Fatal("dimensions differ")
	}
	if a.AlphaTrain != b.AlphaTrain || a.MinARR != b.MinARR {
		t.Fatal("operating points differ")
	}
	for i := range a.P.El {
		if a.P.El[i] != b.P.El[i] {
			t.Fatal("projection differs")
		}
	}
	if a.Kind == KindBitemb {
		for i := range a.Bit.Thresholds {
			if a.Bit.Thresholds[i] != b.Bit.Thresholds[i] {
				t.Fatal("thresholds differ")
			}
		}
		for l := range a.Bit.Protos {
			for w := range a.Bit.Protos[l] {
				if a.Bit.Protos[l][w] != b.Bit.Protos[l][w] {
					t.Fatal("prototypes differ")
				}
			}
		}
		if a.Bit.Radii != b.Bit.Radii {
			t.Fatal("radii differ")
		}
		return
	}
	for i := range a.MF.C {
		if a.MF.C[i] != b.MF.C[i] || a.MF.Sigma[i] != b.MF.Sigma[i] {
			t.Fatal("membership functions differ")
		}
	}
}

func TestBinaryRejectsGarbage(t *testing.T) {
	if _, err := ReadBinary(bytes.NewReader([]byte("not a model"))); err == nil {
		t.Fatal("garbage should be rejected")
	}
	if _, err := ReadBinary(bytes.NewReader(nil)); err == nil {
		t.Fatal("empty input should be rejected")
	}
	// Valid magic but truncated body.
	if _, err := ReadBinary(bytes.NewReader([]byte{'R', 'P', 'B', 'T', 1, 0, 8, 0})); err == nil {
		t.Fatal("truncated model should be rejected")
	}
}

func TestJSONRejectsWrongFormat(t *testing.T) {
	var m Model
	if err := json.Unmarshal([]byte(`{"format":"other"}`), &m); err == nil {
		t.Fatal("wrong format tag should be rejected")
	}
}

func TestModelValidate(t *testing.T) {
	var m Model
	if m.Validate() == nil {
		t.Fatal("empty model should fail validation")
	}
}
